# ctest helper: a serve daemon whose seed workers are being crashed, thrown
# at, and hung by BYTEROBUST_HARNESS_FAULTS must still answer every request
# with a body byte-identical to a clean CLI run — the supervisor retries and
# watchdog-cancels inside each request, and fault draws are keyed on
# (campaign seed, index, attempt, kind), so injected faults never leak into
# response bytes. The daemon must then drain cleanly (exit 30).
#
#   cmake -DCLI=<byterobust binary> -DWORK_DIR=<scratch dir> -P check_serve_harness_faults.cmake

foreach(var CLI WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "${var} is required")
  endif()
endforeach()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

# Same fault spec + scenario as ctest cli_campaign_harness_faults: verified
# quarantine-free for these seeds, with at least one watchdog cancel/retry.
set(faults "crash:0.2,throw:0.15,hang:0.5")

execute_process(
    COMMAND ${CLI} campaign --scenario dense --seeds 6 --days 0.3 --stream
        --out ${WORK_DIR}/ref.json
    OUTPUT_QUIET RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "clean reference campaign failed: ${rc}")
endif()

set(sock ${WORK_DIR}/serve.sock)
execute_process(
    COMMAND bash -c "(BYTEROBUST_HARNESS_FAULTS='${faults}' BYTEROBUST_SEED_RETRIES=8 BYTEROBUST_SEED_TIMEOUT_S=0.5 \"${CLI}\" serve --socket \"${sock}\" --workers 2 --jobs 8 </dev/null >\"${WORK_DIR}/serve.log\" 2>&1; echo -n $? > \"${WORK_DIR}/serve.exit\") </dev/null >/dev/null 2>&1 &"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "could not launch faulted serve daemon")
endif()

set(req "{\"op\":\"campaign\",\"scenario\":\"dense\",\"seeds\":6,\"days\":0.3,\"jobs\":8}")
execute_process(
    COMMAND bash -c "\
pids=; \
for i in 1 2; do \
  \"${CLI}\" request --socket \"${sock}\" --body '${req}' --wait-s 15 --timeout-s 300 --out \"${WORK_DIR}/faulted_$i.json\" >/dev/null & \
  pids=\"$pids $!\"; \
done; \
rc=0; for p in $pids; do wait $p || rc=1; done; exit $rc"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "a request against the faulted daemon failed")
endif()

foreach(i 1 2)
  execute_process(
      COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/ref.json ${WORK_DIR}/faulted_${i}.json
      RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR
        "faulted serve body (client ${i}) is not byte-identical to the clean CLI run")
  endif()
endforeach()

execute_process(
    COMMAND ${CLI} request --socket ${sock} --body "{\"op\":\"shutdown\"}" --raw
        --wait-s 5 --timeout-s 30
    OUTPUT_QUIET RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "shutdown request failed: ${rc}")
endif()
execute_process(
    COMMAND bash -c "for i in $(seq 100); do [ -f \"${WORK_DIR}/serve.exit\" ] && exit 0; sleep 0.1; done; exit 1"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "faulted serve daemon did not exit after shutdown")
endif()
file(READ ${WORK_DIR}/serve.exit daemon_exit)
if(NOT daemon_exit STREQUAL "30")
  message(FATAL_ERROR
      "faulted serve daemon exited '${daemon_exit}', expected 30 (graceful drain)")
endif()

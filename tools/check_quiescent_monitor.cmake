# ctest helper: quiescence-driven monitoring (the default) and the periodic
# reference path (BYTEROBUST_QUIESCENT_MONITOR=0) must emit byte-identical
# campaign JSON for the same scenario and seeds — the quiescent schedule only
# skips passes that provably find nothing, on the same time grid. Two
# scenarios are compared: a full production-mix campaign (dense) and a
# targeted single-symptom campaign (gpu-fault), covering both campaign
# engines and both watchdog paths (crash + hang).
#
#   cmake -DCLI=<byterobust binary> -DWORK_DIR=<scratch dir> -P check_quiescent_monitor.cmake

foreach(var CLI WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "${var} is required")
  endif()
endforeach()

file(MAKE_DIRECTORY ${WORK_DIR})

set(scenario_dense "campaign;--scenario;dense;--seeds;2;--days;0.5")
set(scenario_targeted "campaign;--scenario;gpu-fault;--seeds;4;--days;0.2")

foreach(name dense targeted)
  foreach(quiescent 0 1)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E env BYTEROBUST_QUIESCENT_MONITOR=${quiescent}
            ${CLI} ${scenario_${name}}
            --out ${WORK_DIR}/quiescent_${name}_${quiescent}.json
        OUTPUT_QUIET
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR "${name} campaign with QUIESCENT_MONITOR=${quiescent} failed: ${rc}")
    endif()
  endforeach()
  execute_process(
      COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/quiescent_${name}_0.json ${WORK_DIR}/quiescent_${name}_1.json
      RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR
        "${name} campaign JSON differs between quiescent and periodic monitoring")
  endif()
endforeach()

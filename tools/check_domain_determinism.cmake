# ctest helper: the correlated fault-domain scenarios must compose with the
# campaign machinery deterministically —
#   - `campaign --scenario spine-flap --seeds 8` must emit byte-identical JSON
#     at --jobs 1 and --jobs 8 (seeds map to fixed output slots, seed-ordered
#     merge);
#   - --stream (incremental layout, aggregate trailing) must carry the exact
#     same runs and aggregate values, compared as parsed JSON when python3 is
#     available, with a structural fallback otherwise;
#   - every run must report its per-domain blast-radius block.
#
#   cmake -DCLI=<byterobust binary> -DWORK_DIR=<scratch dir> -P check_domain_determinism.cmake

foreach(var CLI WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "${var} is required")
  endif()
endforeach()

file(MAKE_DIRECTORY ${WORK_DIR})

set(scenario "campaign;--scenario;spine-flap;--seeds;8;--days;2")

foreach(jobs 1 8)
  execute_process(
      COMMAND ${CLI} ${scenario} --jobs ${jobs} --out ${WORK_DIR}/domain_jobs${jobs}.json
      OUTPUT_QUIET
      RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "spine-flap --jobs ${jobs} failed with ${rc}")
  endif()
endforeach()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
        ${WORK_DIR}/domain_jobs1.json ${WORK_DIR}/domain_jobs8.json
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR "spine-flap JSON differs between --jobs 1 and --jobs 8")
endif()

# Every run of a domain scenario must carry the blast-radius block.
file(READ ${WORK_DIR}/domain_jobs1.json reference)
string(REGEX MATCHALL "\"fault_domains\":" blast_fields "${reference}")
list(LENGTH blast_fields blast_count)
if(NOT blast_count EQUAL 8)
  message(FATAL_ERROR "expected 8 fault_domains blocks, found ${blast_count}")
endif()

# --stream: same content, incremental layout.
execute_process(
    COMMAND ${CLI} ${scenario} --jobs 2 --stream --out ${WORK_DIR}/domain_stream.json
    OUTPUT_QUIET
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "spine-flap --stream failed with ${rc}")
endif()

find_program(PYTHON3 NAMES python3 python)
if(PYTHON3)
  execute_process(
      COMMAND ${PYTHON3} -c "
import json, sys
a = json.load(open(sys.argv[1]))
b = json.load(open(sys.argv[2]))
assert a['runs'] == b['runs'], 'runs differ between --stream and reference'
assert a['aggregate'] == b['aggregate'], 'aggregate differs between --stream and reference'
for k in ('tool', 'command', 'scenario', 'seeds', 'base_seed', 'days'):
    assert a[k] == b[k], 'header field %s differs' % k
for run in a['runs']:
    levels = run['fault_domains']['levels']
    assert levels, 'run %d has an empty blast-radius block' % run['seed']
" ${WORK_DIR}/domain_stream.json ${WORK_DIR}/domain_jobs1.json
      RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR "spine-flap --stream content differs from the reference layout")
  endif()
else()
  file(READ ${WORK_DIR}/domain_stream.json direct)
  string(REGEX MATCHALL "\"fault_domains\":" blast_fields "${direct}")
  list(LENGTH blast_fields blast_count)
  if(NOT blast_count EQUAL 8)
    message(FATAL_ERROR "--stream output holds ${blast_count} blast blocks, expected 8")
  endif()
  string(FIND "${direct}" "\"aggregate\":" agg_pos)
  if(agg_pos EQUAL -1)
    message(FATAL_ERROR "--stream output is missing the aggregate block")
  endif()
endif()

// byterobust: the campaign CLI for the ByteRobust reproduction.
//
// Subcommands:
//   run          run one named scenario for one seed, emit a JSON summary
//   campaign     run a scenario across N seeds, emit per-seed + aggregate JSON
//   fleet        run a named multi-job fleet scenario across N seeds
//   serve        host campaigns as a service on a local socket (src/serve)
//   request      send one request line to a serve daemon and print the reply
//   bench-report emit the restart-cost / WAS model as JSON across scales
//   list         list the named scenarios (single-job and fleet)
//
//   ./build/tools/byterobust run --preset quickstart --seed 2024
//   ./build/tools/byterobust campaign --scenario gpu-fault --seeds 8
//   ./build/tools/byterobust fleet --scenario fleet-contention --seeds 4
//   ./build/tools/byterobust serve --socket /tmp/br.sock --workers 2 --jobs 8
//   ./build/tools/byterobust request --socket /tmp/br.sock
//       --body '{"op":"campaign","scenario":"quickstart","seeds":2}'
//
// The scenario registries and per-seed runners live in src/campaign/
// (scenarios.{h,cc}); the seed-parallel worker pool and streaming merger in
// src/campaign/engine.{h,cc}; the serve daemon in src/serve/. `campaign`,
// `fleet` and every serve request share the engine, so output is
// byte-identical across --jobs values, --stream on/off, and CLI vs service.
//
// Campaigns run under the src/harness fault-tolerance layer: every seed is
// supervised (watchdog + deterministic retry/backoff), persistently failing
// seeds are quarantined into a "failed_runs" block instead of aborting the
// campaign, --journal/--resume give crash-safe restartability, and
// SIGINT/SIGTERM drain in-flight seeds before exiting.
//
// Exit codes (src/harness/exit_codes.h): kExitOk 0 success; kExitIoError 1
// I/O or worker error; kExitUsage 2 usage/setup error; kExitQuarantine 20
// campaign completed with quarantined seeds; kExitInterrupted 30 campaign or
// daemon interrupted (signal, deadline or injected stop) after a graceful
// drain; kExitShed 75 a serve request was load-shed.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <vector>

#include "src/campaign/engine.h"
#include "src/campaign/json_writer.h"
#include "src/campaign/scenarios.h"
#include "src/common/sim_time.h"
#include "src/harness/exit_codes.h"
#include "src/metrics/report.h"
#include "src/obs/dashboard.h"
#include "src/obs/trace.h"
#include "src/recovery/restart_model.h"
#include "src/recovery/was_model.h"
#include "src/serve/client.h"
#include "src/serve/protocol.h"
#include "src/serve/server.h"

namespace byterobust {
namespace {

int Emit(JsonWriter* w, const std::string& out_path) {
  std::string text = w->Take();
  text += '\n';
  // SIGPIPE is ignored, so a closed pipe surfaces here as a short write.
  if (std::fwrite(text.data(), 1, text.size(), stdout) != text.size() ||
      std::fflush(stdout) != 0) {
    std::fprintf(stderr, "error: short write on stdout\n");
    return kExitIoError;
  }
  if (!out_path.empty() && !WriteFile(out_path, text)) {
    std::fprintf(stderr, "error: could not write %s\n", out_path.c_str());
    return kExitIoError;
  }
  return kExitOk;
}

// ---------------------------------------------------------------------------
// Graceful shutdown: SIGINT/SIGTERM flip one lock-free flag that the worker
// pool (and the serve supervision loop) polls — in-flight seeds finish, the
// journal and any partial --stream output are flushed, and the process exits
// kExitInterrupted. A second signal falls through to the default disposition
// (immediate kill).
// ---------------------------------------------------------------------------
std::atomic<bool> g_signal_stop{false};

void HandleStopSignal(int sig) {
  g_signal_stop.store(true, std::memory_order_release);
  std::signal(sig, SIG_DFL);
}

// Options shared by every subcommand (parsed below).
struct Options {
  std::string scenario;
  std::uint64_t seed = 42;
  int seeds = 4;
  int jobs = 1;
  double days = -1.0;  // < 0: use the scenario default
  bool stream = false;  // campaign/fleet: fully incremental output (--stream)
  std::string out_path;
  std::string journal_path;  // --journal: crash-safe manifest of committed seeds
  std::string resume_path;   // --resume: skip seeds already in this journal
  int retries = -1;          // --retries; < 0 defers to env/default
  bool journal_sync = false; // --journal-sync: fdatasync per committed record
  // Observability side channels (never change output bytes; see src/obs/).
  std::string trace_path;      // --trace: Chrome trace_event JSON span file
  std::string dashboard_path;  // --dashboard: sliding ETTR/MFU series export
  // serve
  std::string socket_path;   // --socket (also used by request)
  int workers = 2;           // --workers: concurrent requests executing
  int max_queue = 16;        // --max-queue: waiting slots beyond the workers' (0 = none)
  int max_seeds = 4096;      // --max-seeds: per-request seed cap
  std::string pid_file;      // --pid-file
  // request
  std::string body;          // --body: one request line
  std::string body_file;     // --body-file: read the request line from a file
  bool raw = false;          // --raw: print the whole response envelope
  double wait_s = 10.0;      // --wait-s: connect-retry window (daemon starting)
  double timeout_s = 300.0;  // --timeout-s: response wait bound
};

int Usage() {
  std::fprintf(stderr,
               "usage: byterobust <run|campaign|fleet|serve|request|bench-report|list> "
               "[options]\n"
               "\n"
               "  run          --preset NAME   [--seed S] [--days D] [--out FILE]\n"
               "  campaign     --scenario NAME [--seeds N] [--base-seed S] [--days D]\n"
               "               [--jobs N] [--stream] [--out FILE] [--retries N]\n"
               "               [--journal FILE [--journal-sync] | --resume FILE]\n"
               "               [--trace FILE] [--dashboard FILE]\n"
               "  fleet        --scenario NAME [--seeds N] [--base-seed S] [--days D]\n"
               "               [--jobs N] [--stream] [--out FILE] [--retries N]\n"
               "               [--journal FILE [--journal-sync] | --resume FILE]\n"
               "               [--trace FILE] [--dashboard FILE]\n"
               "  serve        --socket PATH   [--workers N] [--jobs N] [--max-queue N]\n"
               "               [--max-seeds N] [--pid-file FILE] [--trace FILE]\n"
               "  request      --socket PATH   (--body JSON | --body-file FILE) [--raw]\n"
               "               [--wait-s S] [--timeout-s S] [--out FILE]\n"
               "  bench-report [--out FILE]\n"
               "  list\n"
               "\n"
               "  --stream emits each seed's JSON as soon as it is next in seed order\n"
               "  (the aggregate block then follows the runs array instead of preceding\n"
               "  it); without it, workers spill finished seeds to temp files and the\n"
               "  merger emits the standard layout with O(window) memory.\n"
               "\n"
               "  --journal FILE appends each committed seed to a crash-safe manifest\n"
               "  (--journal-sync additionally fdatasyncs every record, surviving\n"
               "  machine crashes, not just process crashes); --resume FILE skips the\n"
               "  seeds that manifest already holds and appends the rest, producing\n"
               "  byte-identical merged output. --retries N bounds per-seed retry\n"
               "  attempts (also BYTEROBUST_SEED_RETRIES); seeds that still fail are\n"
               "  quarantined into a \"failed_runs\" block (exit 20). SIGINT/SIGTERM\n"
               "  drain in-flight seeds and exit 30. See also BYTEROBUST_SEED_TIMEOUT_S\n"
               "  / _FACTOR and BYTEROBUST_HARNESS_FAULTS.\n"
               "\n"
               "  --trace FILE (or BYTEROBUST_TRACE=FILE) records Chrome trace_event\n"
               "  JSON spans (harness attempts/retries/watchdog, engine workers and\n"
               "  commit waits, serve request lifecycle) viewable in Perfetto or\n"
               "  chrome://tracing; --dashboard FILE exports per-job sliding-window\n"
               "  ETTR/MFU series. Both are side channels: output bytes are identical\n"
               "  with or without them.\n"
               "\n"
               "  serve hosts campaigns as a service: newline-delimited JSON requests\n"
               "  (ops campaign / fleet / status / shutdown) over a local socket, each\n"
               "  run as a supervised campaign. Admission control sheds structured\n"
               "  responses when the queue or seed cap is exceeded; per-request\n"
               "  deadline_s (or a client disconnect) cancels cooperatively into a\n"
               "  valid partial document; SIGTERM drains the daemon and exits 30.\n"
               "  request sends one body and exits with the response's exit_code.\n"
               "\nscenarios:\n");
  for (const ScenarioSpec& s : Specs()) {
    std::fprintf(stderr, "  %-12s %s\n", s.name, s.summary);
  }
  std::fprintf(stderr, "\nfleet scenarios:\n");
  for (const FleetSpec& s : FleetSpecs()) {
    std::fprintf(stderr, "  %-18s %s\n", s.name, s.summary);
  }
  return kExitUsage;
}

bool ParseNumber(const char* flag, const char* text, double* out) {
  char* end = nullptr;
  *out = std::strtod(text, &end);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "error: %s expects a number, got '%s'\n", flag, text);
    return false;
  }
  return true;
}

// Which flags each subcommand accepts; anything else is rejected so a typo'd
// or misplaced flag (e.g. `run --seeds 8`) fails loudly instead of being
// silently ignored.
bool FlagAllowed(const std::string& command, const std::string& flag) {
  if (flag == "--out") {
    return true;
  }
  if (command == "run") {
    return flag == "--preset" || flag == "--scenario" || flag == "--seed" ||
           flag == "--days";
  }
  if (command == "campaign" || command == "fleet") {
    return flag == "--preset" || flag == "--scenario" || flag == "--seed" ||
           flag == "--base-seed" || flag == "--seeds" || flag == "--days" ||
           flag == "--jobs" || flag == "--stream" || flag == "--journal" ||
           flag == "--resume" || flag == "--retries" || flag == "--journal-sync" ||
           flag == "--trace" || flag == "--dashboard";
  }
  if (command == "serve") {
    return flag == "--socket" || flag == "--workers" || flag == "--jobs" ||
           flag == "--max-queue" || flag == "--max-seeds" || flag == "--pid-file" ||
           flag == "--trace";
  }
  if (command == "request") {
    return flag == "--socket" || flag == "--body" || flag == "--body-file" ||
           flag == "--raw" || flag == "--wait-s" || flag == "--timeout-s";
  }
  return false;  // bench-report / list take only --out
}

bool ParseOptions(const std::string& command, int argc, char** argv, Options* opts) {
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    double value = 0.0;
    if (arg.rfind("--", 0) == 0 && !FlagAllowed(command, arg)) {
      std::fprintf(stderr, "error: option '%s' is not valid for '%s'\n", arg.c_str(),
                   command.c_str());
      return false;
    }
    if ((arg == "--preset" || arg == "--scenario") && has_value) {
      opts->scenario = argv[++i];
    } else if ((arg == "--seed" || arg == "--base-seed") && has_value) {
      if (!ParseNumber(arg.c_str(), argv[++i], &value)) {
        return false;
      }
      if (value < 0.0 || value > 9.0e15) {
        std::fprintf(stderr, "error: %s must be in [0, 9e15]\n", arg.c_str());
        return false;
      }
      opts->seed = static_cast<std::uint64_t>(value);
    } else if (arg == "--seeds" && has_value) {
      if (!ParseNumber(arg.c_str(), argv[++i], &value)) {
        return false;
      }
      if (value < 1.0 || value > 100000.0) {
        std::fprintf(stderr, "error: --seeds must be in [1, 100000]\n");
        return false;
      }
      opts->seeds = static_cast<int>(value);
    } else if (arg == "--jobs" && has_value) {
      if (!ParseNumber(arg.c_str(), argv[++i], &value)) {
        return false;
      }
      if (value < 1.0 || value > 256.0) {
        std::fprintf(stderr, "error: --jobs must be in [1, 256]\n");
        return false;
      }
      opts->jobs = static_cast<int>(value);
    } else if (arg == "--days" && has_value) {
      if (!ParseNumber(arg.c_str(), argv[++i], &value)) {
        return false;
      }
      if (value <= 0.0) {
        std::fprintf(stderr, "error: --days must be > 0\n");
        return false;
      }
      opts->days = value;
    } else if (arg == "--stream") {
      opts->stream = true;
    } else if (arg == "--out" && has_value) {
      opts->out_path = argv[++i];
    } else if (arg == "--journal" && has_value) {
      opts->journal_path = argv[++i];
    } else if (arg == "--resume" && has_value) {
      opts->resume_path = argv[++i];
    } else if (arg == "--journal-sync") {
      opts->journal_sync = true;
    } else if (arg == "--retries" && has_value) {
      if (!ParseNumber(arg.c_str(), argv[++i], &value)) {
        return false;
      }
      if (value < 0.0 || value > 100.0) {
        std::fprintf(stderr, "error: --retries must be in [0, 100]\n");
        return false;
      }
      opts->retries = static_cast<int>(value);
    } else if (arg == "--socket" && has_value) {
      opts->socket_path = argv[++i];
    } else if (arg == "--workers" && has_value) {
      if (!ParseNumber(arg.c_str(), argv[++i], &value)) {
        return false;
      }
      if (value < 1.0 || value > 64.0) {
        std::fprintf(stderr, "error: --workers must be in [1, 64]\n");
        return false;
      }
      opts->workers = static_cast<int>(value);
    } else if (arg == "--max-queue" && has_value) {
      if (!ParseNumber(arg.c_str(), argv[++i], &value)) {
        return false;
      }
      if (value < 0.0 || value > 1024.0) {
        std::fprintf(stderr, "error: --max-queue must be in [0, 1024]\n");
        return false;
      }
      opts->max_queue = static_cast<int>(value);
    } else if (arg == "--max-seeds" && has_value) {
      if (!ParseNumber(arg.c_str(), argv[++i], &value)) {
        return false;
      }
      if (value < 1.0 || value > 100000.0) {
        std::fprintf(stderr, "error: --max-seeds must be in [1, 100000]\n");
        return false;
      }
      opts->max_seeds = static_cast<int>(value);
    } else if (arg == "--pid-file" && has_value) {
      opts->pid_file = argv[++i];
    } else if (arg == "--trace" && has_value) {
      opts->trace_path = argv[++i];
    } else if (arg == "--dashboard" && has_value) {
      opts->dashboard_path = argv[++i];
    } else if (arg == "--body" && has_value) {
      opts->body = argv[++i];
    } else if (arg == "--body-file" && has_value) {
      opts->body_file = argv[++i];
    } else if (arg == "--raw") {
      opts->raw = true;
    } else if (arg == "--wait-s" && has_value) {
      if (!ParseNumber(arg.c_str(), argv[++i], &value) || value < 0.0) {
        std::fprintf(stderr, "error: --wait-s must be >= 0\n");
        return false;
      }
      opts->wait_s = value;
    } else if (arg == "--timeout-s" && has_value) {
      if (!ParseNumber(arg.c_str(), argv[++i], &value) || value < 0.0) {
        std::fprintf(stderr, "error: --timeout-s must be >= 0\n");
        return false;
      }
      opts->timeout_s = value;
    } else {
      std::fprintf(stderr, "error: unknown or incomplete option '%s'\n", arg.c_str());
      return false;
    }
  }
  if (!opts->journal_path.empty() && !opts->resume_path.empty()) {
    std::fprintf(stderr,
                 "error: --journal and --resume are mutually exclusive "
                 "(--resume already appends to the journal it resumes)\n");
    return false;
  }
  return true;
}

int CmdRun(const Options& opts) {
  const ScenarioSpec* spec = FindSpec(opts.scenario);
  if (spec == nullptr) {
    std::fprintf(stderr, "error: unknown scenario '%s' (try: byterobust list)\n",
                 opts.scenario.c_str());
    return kExitUsage;
  }
  const double days = opts.days > 0.0 ? opts.days : spec->default_days;
  const RunResult r = RunOne(*spec, days, opts.seed);
  JsonWriter w;
  w.BeginObject();
  w.Field("tool", "byterobust");
  w.Field("command", "run");
  w.Key("result");
  WriteRun(&w, r);
  w.EndObject();
  return Emit(&w, opts.out_path);
}

// campaign / fleet: one shared body, differing only in the registry the
// request resolves against (src/campaign/scenarios.cc).
int RunCampaignCommand(const char* command, const Options& opts) {
  CampaignRequest req;
  req.command = command;
  req.scenario = opts.scenario;
  req.seeds = opts.seeds;
  req.base_seed = opts.seed;
  req.days = opts.days;
  req.jobs = opts.jobs;
  req.stream = opts.stream;
  req.out_path = opts.out_path;
  req.journal_path = opts.journal_path;
  req.resume_path = opts.resume_path;
  req.retries = opts.retries;
  req.journal_sync = opts.journal_sync;
  CampaignEngineSpec engine;
  std::string error;
  if (!BuildCampaignEngineSpec(req, &engine, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return kExitUsage;
  }
  engine.external_stop = &g_signal_stop;
  if (!opts.dashboard_path.empty()) {
    obs::EnableDashboard();
  }
  int code = RunCampaignEngine(engine);
  if (!opts.dashboard_path.empty()) {
    // Written after the campaign document is complete, like --out; a
    // dashboard I/O failure taints an otherwise-clean exit but never masks
    // a more specific engine code.
    if (!obs::WriteDashboard(opts.dashboard_path, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      if (code == kExitOk) {
        code = kExitIoError;
      }
    }
  }
  return code;
}

int CmdServe(const Options& opts) {
  if (opts.socket_path.empty()) {
    std::fprintf(stderr, "error: serve requires --socket PATH\n");
    return kExitUsage;
  }
  ServeOptions sopts;
  sopts.socket_path = opts.socket_path;
  sopts.workers = opts.workers;
  sopts.jobs = opts.jobs;
  sopts.max_queue = opts.max_queue;
  sopts.max_seeds = opts.max_seeds;
  ServeDaemon daemon(sopts);
  std::string error;
  if (!daemon.Start(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return kExitIoError;
  }
  if (!opts.pid_file.empty()) {
    std::FILE* f = std::fopen(opts.pid_file.c_str(), "wb");
    if (f == nullptr || std::fprintf(f, "%d\n", static_cast<int>(getpid())) < 0 ||
        std::fclose(f) != 0) {
      std::fprintf(stderr, "error: could not write pid file %s\n",
                   opts.pid_file.c_str());
      daemon.Drain();
      return kExitIoError;
    }
  }
  std::fprintf(stderr,
               "note: byterobust serve listening on %s "
               "(workers=%d, jobs<=%d, queue<=%d, seeds<=%d)\n",
               opts.socket_path.c_str(), std::max(1, opts.workers), opts.jobs,
               opts.max_queue, opts.max_seeds);
  return daemon.RunUntilStopped(&g_signal_stop);
}

int CmdRequest(const Options& opts) {
  if (opts.socket_path.empty()) {
    std::fprintf(stderr, "error: request requires --socket PATH\n");
    return kExitUsage;
  }
  if (!opts.body.empty() && !opts.body_file.empty()) {
    std::fprintf(stderr, "error: --body and --body-file are mutually exclusive\n");
    return kExitUsage;
  }
  std::string body = opts.body;
  if (!opts.body_file.empty()) {
    std::FILE* f = std::fopen(opts.body_file.c_str(), "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "error: could not read %s\n", opts.body_file.c_str());
      return kExitIoError;
    }
    char chunk[4096];
    std::size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
      body.append(chunk, n);
    }
    std::fclose(f);
    while (!body.empty() && (body.back() == '\n' || body.back() == '\r')) {
      body.pop_back();
    }
  }
  if (body.empty()) {
    std::fprintf(stderr, "error: request requires --body JSON or --body-file FILE\n");
    return kExitUsage;
  }
  std::string response;
  std::string error;
  if (!ServeRoundtrip(opts.socket_path, body, opts.wait_s, opts.timeout_s, &response,
                      &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return kExitIoError;
  }
  long exit_code = kExitIoError;
  if (!ExtractJsonIntField(response, "exit_code", &exit_code)) {
    std::fprintf(stderr, "error: response carries no exit_code: %s\n", response.c_str());
    return kExitIoError;
  }
  std::string text;
  std::string decoded;
  if (!opts.raw && ExtractJsonStringField(response, "body", &decoded)) {
    text = decoded;  // the campaign document, byte-identical to CLI --stream
  } else {
    text = response + "\n";  // envelope (status/shed/error, or --raw)
  }
  if (std::fwrite(text.data(), 1, text.size(), stdout) != text.size() ||
      std::fflush(stdout) != 0) {
    std::fprintf(stderr, "error: short write on stdout\n");
    return kExitIoError;
  }
  if (!opts.out_path.empty() && !WriteFile(opts.out_path, text)) {
    std::fprintf(stderr, "error: could not write %s\n", opts.out_path.c_str());
    return kExitIoError;
  }
  if (exit_code != kExitOk) {
    std::string status;
    std::string message;
    ExtractJsonStringField(response, "status", &status);
    if (!ExtractJsonStringField(response, "error", &message)) {
      message = "see response";
    }
    std::fprintf(stderr, "note: serve response status=%s (%s)\n",
                 status.empty() ? "?" : status.c_str(), message.c_str());
  }
  return static_cast<int>(exit_code);
}

int CmdBenchReport(const Options& opts) {
  const RestartCostModel model;
  JsonWriter w;
  w.BeginObject();
  w.Field("tool", "byterobust");
  w.Field("command", "bench-report");
  w.Key("restart_cost_model");
  w.BeginArray();
  for (int machines : {128, 256, 512, 1024}) {
    const WasEstimate est = EstimateWas(machines);
    w.BeginObject();
    w.Field("machines", machines);
    w.Field("requeue_s", ToSeconds(model.RequeueTime(machines)));
    w.Field("reschedule_1_s", ToSeconds(model.RescheduleTime(machines, 1)));
    w.Field("standby_wake_1_s", ToSeconds(model.StandbyWakeTime(1)));
    w.Field("hot_update_s", ToSeconds(model.HotUpdateTime(machines)));
    w.Field("p99_evictions", est.p99_evictions);
    w.Field("was_byterobust_s", est.byterobust_s);
    w.Field("was_requeue_s", est.requeue_s);
    w.Field("was_reschedule_s", est.reschedule_s);
    w.Field("was_oracle_s", est.oracle_s);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return Emit(&w, opts.out_path);
}

int CmdList(const Options& opts) {
  JsonWriter w;
  w.BeginObject();
  w.Field("tool", "byterobust");
  w.Field("command", "list");
  w.Key("scenarios");
  w.BeginArray();
  for (const ScenarioSpec& s : Specs()) {
    w.BeginObject();
    w.Field("name", s.name);
    w.Field("summary", s.summary);
    w.Field("targeted", s.targeted);
    w.Field("default_days", s.default_days);
    w.EndObject();
  }
  w.EndArray();
  w.Key("fleet_scenarios");
  w.BeginArray();
  for (const FleetSpec& s : FleetSpecs()) {
    w.BeginObject();
    w.Field("name", s.name);
    w.Field("summary", s.summary);
    w.Field("default_days", s.default_days);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return Emit(&w, opts.out_path);
}

int Main(int argc, char** argv) {
  // A reader hanging up must surface as a short write (checked at every
  // sink), not a SIGPIPE kill mid-campaign; SIGINT/SIGTERM drain gracefully.
  std::signal(SIGPIPE, SIG_IGN);
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  Options opts;
  if (!ParseOptions(command, argc - 2, argv + 2, &opts)) {
    return Usage();
  }
  // Tracing starts before the command and stops after it, so a graceful
  // SIGTERM drain still closes the trace file properly (--trace wins over
  // BYTEROBUST_TRACE when both are set).
  {
    std::string trace_error;
    const bool trace_ok =
        opts.trace_path.empty()
            ? obs::StartTraceFromEnv(&trace_error)
            : obs::StartTrace(opts.trace_path, &trace_error);
    if (!trace_ok) {
      std::fprintf(stderr, "error: %s\n", trace_error.c_str());
      return kExitIoError;
    }
  }
  int code = kExitUsage;
  if (command == "run") {
    code = CmdRun(opts);
  } else if (command == "campaign") {
    code = RunCampaignCommand("campaign", opts);
  } else if (command == "fleet") {
    code = RunCampaignCommand("fleet", opts);
  } else if (command == "serve") {
    code = CmdServe(opts);
  } else if (command == "request") {
    code = CmdRequest(opts);
  } else if (command == "bench-report") {
    code = CmdBenchReport(opts);
  } else if (command == "list") {
    code = CmdList(opts);
  } else {
    code = Usage();
  }
  obs::StopTrace();
  return code;
}

}  // namespace
}  // namespace byterobust

int main(int argc, char** argv) {
  // Single exit funnel: worker-pool exceptions (already wrapped with
  // campaign/seed/worker context by the failure latch) print exactly once.
  try {
    return byterobust::Main(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return byterobust::kExitIoError;
  }
}

// byterobust: the campaign CLI for the ByteRobust reproduction.
//
// Subcommands:
//   run          run one named scenario for one seed, emit a JSON summary
//   campaign     run a scenario across N seeds, emit per-seed + aggregate JSON
//   fleet        run a named multi-job fleet scenario across N seeds
//   bench-report emit the restart-cost / WAS model as JSON across scales
//   list         list the named scenarios (single-job and fleet)
//
//   ./build/tools/byterobust run --preset quickstart --seed 2024
//   ./build/tools/byterobust campaign --scenario gpu-fault --seeds 8
//   ./build/tools/byterobust fleet --scenario fleet-contention --seeds 4
//   ./build/tools/byterobust bench-report
//
// Mixed scenarios drive the full Scenario engine (Table 1 fault mix, hot
// updates, re-fail ground truth); targeted scenarios inject a single symptom
// at exponential intervals to isolate one detection/resolution pipeline;
// fleet scenarios host several concurrent jobs on one shared machine pool
// with a contended spare arbiter (src/fleet). `campaign` and `fleet` share
// the seed-parallel worker pool and the spill/direct streaming merger, so
// both are byte-identical across --jobs values and --stream on/off.
//
// Campaigns run under the src/harness fault-tolerance layer: every seed is
// supervised (watchdog + deterministic retry/backoff), persistently failing
// seeds are quarantined into a "failed_runs" block instead of aborting the
// campaign, --journal/--resume give crash-safe restartability, and
// SIGINT/SIGTERM drain in-flight seeds before exiting.
//
// Exit codes: 0 success; 1 I/O or worker error; 2 usage/setup error;
// 20 campaign completed with quarantined seeds; 30 campaign interrupted
// (signal or injected stop) after a graceful drain.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/common/sync.h"
#include "src/common/thread_annotations.h"
#include "src/harness/journal.h"
#include "src/harness/supervisor.h"
#include "src/core/production_presets.h"
#include "src/core/scenario.h"
#include "src/faults/domain_injector.h"
#include "src/faults/fault_injector.h"
#include "src/metrics/domain_blast.h"
#include "src/fleet/fleet.h"
#include "src/fleet/fleet_presets.h"
#include "src/metrics/report.h"
#include "src/recovery/restart_model.h"
#include "src/recovery/was_model.h"
#include "src/topology/fault_domains.h"

namespace byterobust {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON writer: enough for flat objects, nested objects and arrays.
// ---------------------------------------------------------------------------
class JsonWriter {
 public:
  JsonWriter() = default;

  // Primed writer: emits text as if `depth` scopes were already open, with
  // `need_comma` saying whether the enclosing scope already holds a value.
  // Lets workers render one "runs" array element (depth 2) byte-identically
  // to an element written inline by the full-document writer.
  JsonWriter(int depth, bool need_comma) : depth_(depth) { need_comma_.push_back(need_comma); }

  std::string Take() { return out_.str(); }

  void BeginObject() { Open('{'); }
  void EndObject() { Close('}'); }
  void BeginArray() { Open('['); }
  void EndArray() { Close(']'); }

  void Key(const std::string& k) {
    Comma();
    Indent();
    out_ << '"' << Escape(k) << "\": ";
    pending_value_ = true;
  }

  void Value(const std::string& v) { Scalar('"' + Escape(v) + '"'); }
  void Value(const char* v) { Value(std::string(v)); }
  void Value(double v) {
    if (!std::isfinite(v)) {
      Scalar("null");
      return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    Scalar(buf);
  }
  void Value(std::int64_t v) { Scalar(std::to_string(v)); }
  void Value(int v) { Scalar(std::to_string(v)); }
  void Value(std::uint64_t v) { Scalar(std::to_string(v)); }
  void Value(bool v) { Scalar(v ? "true" : "false"); }

  template <typename T>
  void Field(const std::string& k, T v) {
    Key(k);
    Value(v);
  }

 private:
  static std::string Escape(const std::string& s) {
    std::string r;
    for (char c : s) {
      if (c == '"' || c == '\\') {
        r += '\\';
        r += c;
      } else if (c == '\n') {
        r += "\\n";
      } else {
        r += c;
      }
    }
    return r;
  }

  void Open(char c) {
    if (!pending_value_) {
      Comma();
      Indent();
    }
    pending_value_ = false;
    out_ << c;
    ++depth_;
    need_comma_.push_back(false);
  }

  void Close(char c) {
    --depth_;
    need_comma_.pop_back();
    out_ << '\n';
    Indent();
    out_ << c;
    if (!need_comma_.empty()) {
      need_comma_.back() = true;
    }
    pending_value_ = false;
  }

  void Scalar(const std::string& text) {
    if (!pending_value_) {
      Comma();
      Indent();
    }
    pending_value_ = false;
    out_ << text;
    if (!need_comma_.empty()) {
      need_comma_.back() = true;
    }
  }

  void Comma() {
    if (!need_comma_.empty() && need_comma_.back()) {
      out_ << ',';
    }
    if (depth_ > 0) {
      out_ << '\n';
    }
    if (!need_comma_.empty()) {
      need_comma_.back() = false;
    }
  }

  void Indent() {
    for (int i = 0; i < depth_; ++i) {
      out_ << "  ";
    }
  }

  std::ostringstream out_;
  int depth_ = 0;
  bool pending_value_ = false;
  std::vector<bool> need_comma_;
};

// ---------------------------------------------------------------------------
// Named scenarios.
// ---------------------------------------------------------------------------
struct ScenarioSpec {
  const char* name;
  const char* summary;
  bool targeted;                  // single-symptom campaign vs full mix
  IncidentSymptom symptom;        // targeted only
  double default_days;
  // Correlated fault-domain campaigns: when set, the scenario's dominant
  // stream is a Poisson process of *domain* faults of this kind over the
  // hierarchical topology graph (src/topology/fault_domains.h), with a sparse
  // background Table 1 mix underneath.
  bool domain = false;
  DomainFaultKind domain_kind = DomainFaultKind::kSpineFlap;
};

const std::vector<ScenarioSpec>& Specs() {
  static const std::vector<ScenarioSpec> specs = {
      {"quickstart", "16-machine 7B job with the full Table 1 fault mix", false,
       IncidentSymptom::kCudaError, 0.5},
      {"dense", "9,600-GPU dense 70+B production campaign (Sec. 8.1)", false,
       IncidentSymptom::kCudaError, 7.0},
      {"dense-month", "30-day 9,600-GPU dense robustness campaign (month scale)", false,
       IncidentSymptom::kCudaError, 30.0},
      {"moe", "9,600-GPU MoE 200+B production campaign (Sec. 8.1)", false,
       IncidentSymptom::kCudaError, 7.0},
      {"fig2", "1,000-GPU job with heavy manual adjustment (Fig. 2)", false,
       IncidentSymptom::kCudaError, 10.0},
      {"gpu-fault", "targeted kGpuUnavailable injection campaign", true,
       IncidentSymptom::kGpuUnavailable, 0.5},
      {"nic-fault", "targeted kInfinibandError injection campaign", true,
       IncidentSymptom::kInfinibandError, 0.5},
      {"cuda-error", "targeted kCudaError injection campaign", true,
       IncidentSymptom::kCudaError, 0.5},
      {"job-hang", "targeted kJobHang injection campaign", true,
       IncidentSymptom::kJobHang, 0.5},
      {"nan-loss", "targeted kNanValue injection campaign", true,
       IncidentSymptom::kNanValue, 0.5},
      {"spine-flap", "correlated spine flaps: gray network faults over whole sub-trees", false,
       IncidentSymptom::kInfinibandError, 0.5, true, DomainFaultKind::kSpineFlap},
      {"power-domain", "pod power-domain losses killing every machine beneath", false,
       IncidentSymptom::kOsKernelPanic, 0.5, true, DomainFaultKind::kPowerLoss},
      {"link-failslow", "silent ToR fail-slow: congestion backpressure, MFU-only signal", false,
       IncidentSymptom::kMfuDecline, 0.5, true, DomainFaultKind::kLinkFailSlow},
  };
  return specs;
}

const ScenarioSpec* FindSpec(const std::string& name) {
  for (const ScenarioSpec& s : Specs()) {
    if (name == s.name) {
      return &s;
    }
  }
  return nullptr;
}

// Named fleet scenarios (multi-job, shared spare pool; see src/fleet).
struct FleetSpec {
  const char* name;
  const char* summary;
  FleetConfig (*make)(double days, std::uint64_t seed);
  double default_days;
};

const std::vector<FleetSpec>& FleetSpecs() {
  static const std::vector<FleetSpec> specs = {
      {"fleet-mixed",
       "three heterogeneous jobs (priorities, staggered starts) on one shared spare pool",
       &FleetMixedConfig, 0.5},
      {"fleet-contention",
       "four jobs, one shared spare, accelerated faults: claims preempt and queue",
       &FleetContentionConfig, 0.5},
      {"fleet-switch-storm",
       "two rack-adjacent jobs under ToR switch storms whose bands span both",
       &FleetSwitchStormConfig, 1.0},
  };
  return specs;
}

const FleetSpec* FindFleetSpec(const std::string& name) {
  for (const FleetSpec& s : FleetSpecs()) {
    if (name == s.name) {
      return &s;
    }
  }
  return nullptr;
}

// Escape hatch for the batched-stepping equivalence ctest: BYTEROBUST_STEP_BATCHING=0
// pins the per-step reference path. Output must be byte-identical either way.
bool StepBatchingEnabled() {
  const char* env = std::getenv("BYTEROBUST_STEP_BATCHING");
  return env == nullptr || std::string(env) != "0";
}

// BYTEROBUST_STREAM_CAMPAIGN=0 pins the buffered reference path (all
// RunResults held in memory before emission) so the streaming merger can be
// byte-compared against it. The default streams per-seed JSON through
// per-worker spill files, bounding campaign memory at O(window) per worker
// regardless of --seeds.
bool StreamCampaignEnabled() {
  const char* env = std::getenv("BYTEROBUST_STREAM_CAMPAIGN");
  return env == nullptr || std::string(env) != "0";
}

// Trailing retention window for per-run ETTR-span / MFU-sample compaction.
// BYTEROBUST_METRIC_WINDOW gives seconds (0 = unbounded); the default keeps
// two hours, comfortably above the 1 h sliding-ETTR window, so campaign
// metrics are bit-identical windowed or not while month-scale runs hold
// O(window) metric state instead of O(steps).
SimDuration MetricsRetentionFromEnv() {
  static const SimDuration retention = [] {
    const char* env = std::getenv("BYTEROBUST_METRIC_WINDOW");
    if (env == nullptr) {
      return Hours(2);
    }
    const double seconds = std::strtod(env, nullptr);
    return seconds <= 0.0 ? SimDuration{0} : Seconds(seconds);
  }();
  return retention;
}

SystemConfig QuickstartSystem(std::uint64_t seed) {
  SystemConfig config;
  config.job.name = "quickstart-7B";
  config.job.model_params_b = 7.0;
  config.job.parallelism.tp = 2;
  config.job.parallelism.pp = 4;
  config.job.parallelism.dp = 4;
  config.job.parallelism.gpus_per_machine = 2;
  config.job.base_step_time = Seconds(10);
  config.seed = seed;
  config.spare_machines = 4;
  config.job.batched_stepping = StepBatchingEnabled();
  config.metrics_retention = MetricsRetentionFromEnv();
  return config;
}

ScenarioConfig MixedConfig(const std::string& name, double days, std::uint64_t seed) {
  if (name == "dense" || name == "dense-month") {
    return DenseCampaignConfig(days, seed);
  }
  if (name == "moe") {
    return MoeCampaignConfig(days, seed);
  }
  if (name == "fig2") {
    ScenarioConfig cfg = Fig2CampaignConfig(seed);
    cfg.duration = Days(days);
    return cfg;
  }
  // quickstart: small cluster, accelerated fault clock so a half-day run
  // still sees a handful of incidents.
  ScenarioConfig cfg;
  cfg.system = QuickstartSystem(seed);
  cfg.duration = Days(days);
  cfg.injector.reference_mtbf = Hours(1.0);
  cfg.injector.reference_machines = 64;
  cfg.planned_updates = 2;
  return cfg;
}

// Correlated fault-domain campaigns: the quickstart cluster with the domain
// stream dominant and the Table 1 background mix throttled way down, so the
// blast-radius metrics reflect the correlated faults rather than the mix.
ScenarioConfig DomainConfig(const ScenarioSpec& spec, double days, std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.system = QuickstartSystem(seed);
  cfg.duration = Days(days);
  // Quickstart has 20 machines (16 serving + 4 spares); the default 6/4 tree
  // would collapse to a single spine covering everything. 4 machines per ToR
  // and 2 ToRs per spine gives 5 ToRs / 3 spines / 2 pods, so domain faults
  // strike proper sub-trees instead of the whole cluster.
  cfg.system.fault_domains.machines_per_tor = 4;
  cfg.system.fault_domains.tors_per_spine = 2;
  cfg.injector.reference_mtbf = Hours(6.0);
  cfg.injector.reference_machines = 64;
  cfg.planned_updates = 0;
  cfg.domain_faults.kind = spec.domain_kind;
  cfg.domain_faults.mean_gap = Minutes(45);
  switch (spec.domain_kind) {
    case DomainFaultKind::kPowerLoss:
      // Power loss never self-heals inside a debounce; every event is a
      // persistent whole-pod outage (shortened so a half-day run recovers).
      cfg.domain_faults.transient_fraction = 0.0;
      cfg.domain_faults.persistent_hold = Hours(1);
      break;
    case DomainFaultKind::kLinkFailSlow:
      cfg.domain_faults.transient_fraction = 0.5;
      cfg.domain_faults.persistent_hold = Hours(1);
      cfg.domain_faults.degradation_factor = 0.55;
      break;
    default:
      break;  // spine-flap: default 70% transient, healing inside the debounce
  }
  return cfg;
}

// ---------------------------------------------------------------------------
// One campaign run -> metrics.
// ---------------------------------------------------------------------------
struct LatencyStats {
  double mean_s = 0.0;
  double max_s = 0.0;
  int count = 0;
};

struct RunResult {
  std::string scenario;
  std::uint64_t seed = 0;
  double days = 0.0;
  int machines = 0;
  int world_size = 0;
  std::int64_t steps = 0;
  int runs = 0;
  int evictions = 0;
  int incidents_injected = 0;
  int incidents_resolved = 0;
  int refails = 0;
  int updates_submitted = 0;
  double ettr_cumulative = 0.0;
  double productive_s = 0.0;
  double recompute_s = 0.0;
  double final_mfu = 0.0;
  LatencyStats detection;
  LatencyStats localization;
  LatencyStats failover;
  LatencyStats resolution;  // total unproductive time per incident
  double was_byterobust_s = 0.0;
  double was_requeue_s = 0.0;
  std::map<std::string, int> mechanisms;
  int domain_faults_injected = 0;
  DomainBlastStats domain_blast;  // empty unless the scenario injects domain faults
};

LatencyStats Summarize(const std::vector<double>& xs) {
  LatencyStats s;
  s.count = static_cast<int>(xs.size());
  for (double x : xs) {
    s.mean_s += x;
    s.max_s = std::max(s.max_s, x);
  }
  if (s.count > 0) {
    s.mean_s /= s.count;
  }
  return s;
}

// Weighted-average scheduling time at this scale under the Sec. 6.2 binomial
// failure model (the Fig. 12 methodology, src/recovery/was_model.h).
void ComputeWas(int machines, RunResult* r) {
  const WasEstimate est = EstimateWas(machines);
  r->was_byterobust_s = est.byterobust_s;
  r->was_requeue_s = est.requeue_s;
}

void CollectSystemMetrics(ByteRobustSystem& sys, RunResult* r) {
  r->machines = sys.config().job.parallelism.num_machines();
  r->world_size = sys.config().job.parallelism.world_size();
  r->steps = sys.job().max_step_reached();
  r->runs = sys.job().run_count();
  r->evictions = sys.controller().evictions_total();
  r->ettr_cumulative = sys.ettr().CumulativeEttr(sys.sim().Now());
  r->productive_s = ToSeconds(sys.ettr().productive_time());
  r->recompute_s = ToSeconds(sys.ettr().recompute_time());
  r->final_mfu = sys.job().CurrentMfu();

  std::vector<double> detect;
  std::vector<double> localize;
  std::vector<double> failover;
  std::vector<double> total;
  for (const IncidentResolution& res : sys.controller().log().entries()) {
    detect.push_back(ToSeconds(res.DetectionTime()));
    localize.push_back(ToSeconds(res.LocalizationTime()));
    failover.push_back(ToSeconds(res.FailoverTime()));
    total.push_back(ToSeconds(res.TotalUnproductive()));
    if (res.resolved) {
      ++r->incidents_resolved;
    }
    ++r->mechanisms[MechanismName(res.mechanism)];
  }
  r->detection = Summarize(detect);
  r->localization = Summarize(localize);
  r->failover = Summarize(failover);
  r->resolution = Summarize(total);
  ComputeWas(r->machines, r);
}

RunResult RunMixed(const ScenarioSpec& spec, double days, std::uint64_t seed) {
  RunResult r;
  r.scenario = spec.name;
  r.seed = seed;
  r.days = days;
  ScenarioConfig cfg =
      spec.domain ? DomainConfig(spec, days, seed) : MixedConfig(spec.name, days, seed);
  cfg.system.job.batched_stepping = StepBatchingEnabled();
  cfg.system.metrics_retention = MetricsRetentionFromEnv();
  Scenario scenario(cfg);
  scenario.Run();
  r.incidents_injected = scenario.stats().incidents_injected;
  r.refails = scenario.stats().refails;
  r.updates_submitted = scenario.stats().updates_submitted;
  r.domain_faults_injected = scenario.stats().domain_faults_injected;
  r.domain_blast = scenario.domain_blast();
  CollectSystemMetrics(scenario.system(), &r);
  return r;
}

// A targeted campaign: one symptom, injected at exponential intervals onto a
// random serving machine, with the infrastructure root cause (the controller
// must evict the machine to clear it).
class TargetedCampaign {
 public:
  TargetedCampaign(const ScenarioSpec& spec, double days, std::uint64_t seed)
      : spec_(spec),
        sys_(QuickstartSystem(seed)),
        rng_(seed ^ 0xF00DULL),
        duration_(Days(days)),
        mean_gap_(Minutes(40)) {}

  int Run() {
    sys_.Start();
    ScheduleNext();
    sys_.sim().RunUntil(duration_);
    return injected_;
  }

  ByteRobustSystem& system() { return sys_; }

 private:
  void ScheduleNext() {
    const SimDuration delay =
        static_cast<SimDuration>(rng_.Exponential(static_cast<double>(mean_gap_)));
    sys_.sim().Schedule(delay, [this] { Inject(); });
  }

  void Inject() {
    if (sys_.job().state() != JobRunState::kRunning) {
      sys_.sim().Schedule(Minutes(2), [this] { Inject(); });
      return;
    }
    // Same slot-ordered membership as ServingMachines(), without the
    // per-incident copy.
    const std::vector<MachineId>& serving = sys_.cluster().serving_slots();
    if (serving.empty()) {
      return;
    }
    Incident inc;
    inc.id = static_cast<std::uint64_t>(++injected_);
    inc.symptom = spec_.symptom;
    inc.root_cause = RootCause::kInfrastructure;
    inc.faulty_machines = {serving[static_cast<std::size_t>(
        rng_.UniformInt(0, static_cast<std::int64_t>(serving.size()) - 1))]};
    inc.gpu_index = spec_.symptom == IncidentSymptom::kGpuUnavailable
                        ? static_cast<int>(rng_.UniformInt(
                              0, sys_.config().job.parallelism.gpus_per_machine - 1))
                        : -1;
    inc.inject_time = sys_.sim().Now();
    FaultInjector::ApplyToCluster(inc, &sys_.cluster());
    sys_.controller().NotifyIncidentInjected(inc);
    switch (inc.symptom) {
      case IncidentSymptom::kJobHang: {
        const Topology& topo = sys_.job().topology();
        const int slot = sys_.cluster().SlotOfMachine(inc.faulty_machines.front());
        sys_.job().Hang(std::max(slot, 0) * topo.config().gpus_per_machine);
        break;
      }
      case IncidentSymptom::kNanValue:
        sys_.job().SetNanLoss(true);
        break;
      case IncidentSymptom::kMfuDecline:
        break;  // monitor picks up the degraded clock on the next step
      default:
        sys_.job().Crash();
        break;
    }
    ScheduleNext();
  }

  ScenarioSpec spec_;
  ByteRobustSystem sys_;
  Rng rng_;
  SimDuration duration_;
  SimDuration mean_gap_;
  int injected_ = 0;
};

RunResult RunTargeted(const ScenarioSpec& spec, double days, std::uint64_t seed) {
  RunResult r;
  r.scenario = spec.name;
  r.seed = seed;
  r.days = days;
  TargetedCampaign campaign(spec, days, seed);
  r.incidents_injected = campaign.Run();
  CollectSystemMetrics(campaign.system(), &r);
  return r;
}

RunResult RunOne(const ScenarioSpec& spec, double days, std::uint64_t seed) {
  return spec.targeted ? RunTargeted(spec, days, seed) : RunMixed(spec, days, seed);
}

// ---------------------------------------------------------------------------
// JSON emission.
// ---------------------------------------------------------------------------
void WriteLatency(JsonWriter* w, const std::string& key, const LatencyStats& s) {
  w->Key(key);
  w->BeginObject();
  w->Field("mean_s", s.mean_s);
  w->Field("max_s", s.max_s);
  w->Field("count", s.count);
  w->EndObject();
}

// Per-domain-level blast-radius block, shared by campaign runs and the fleet
// seed element. Only emitted when at least one domain fault fired, so flat
// (or BYTEROBUST_FAULT_DOMAINS=0) campaigns keep their PR 6 byte layout.
void WriteDomainBlast(JsonWriter* w, const std::string& key, const DomainBlastStats& stats) {
  w->Key(key);
  w->BeginObject();
  w->Field("events", static_cast<int>(stats.events().size()));
  w->Key("levels");
  w->BeginObject();
  for (const auto& [level, s] : stats.SummaryByLevel()) {
    w->Key(DomainLevelName(static_cast<DomainLevel>(level)));
    w->BeginObject();
    w->Field("events", s.events);
    w->Field("transient", s.transient_events);
    w->Field("healed", s.healed_events);
    w->Field("mean_ettr_delta", s.MeanEttrDelta());
    w->Key("machines_hist");
    w->BeginObject();
    for (const auto& [machines, count] : s.machines_hist) {
      w->Field(std::to_string(machines), count);
    }
    w->EndObject();
    w->Key("jobs_hist");
    w->BeginObject();
    for (const auto& [jobs, count] : s.jobs_hist) {
      w->Field(std::to_string(jobs), count);
    }
    w->EndObject();
    w->EndObject();
  }
  w->EndObject();
  w->EndObject();
}

void WriteRunFields(JsonWriter* w, const RunResult& r) {
  w->Field("scenario", r.scenario);
  w->Field("seed", r.seed);
  w->Field("days", r.days);
  w->Field("machines", r.machines);
  w->Field("world_size", r.world_size);
  w->Field("steps", r.steps);
  w->Field("runs", r.runs);
  w->Field("evictions", r.evictions);
  w->Key("incidents");
  w->BeginObject();
  w->Field("injected", r.incidents_injected);
  w->Field("resolved", r.incidents_resolved);
  w->Field("refails", r.refails);
  w->Field("updates_submitted", r.updates_submitted);
  w->EndObject();
  w->Key("ettr");
  w->BeginObject();
  w->Field("cumulative", r.ettr_cumulative);
  w->Field("productive_s", r.productive_s);
  w->Field("recompute_s", r.recompute_s);
  w->EndObject();
  WriteLatency(w, "detection_s", r.detection);
  WriteLatency(w, "localization_s", r.localization);
  WriteLatency(w, "failover_s", r.failover);
  WriteLatency(w, "resolution_s", r.resolution);
  w->Key("was_s");
  w->BeginObject();
  w->Field("byterobust", r.was_byterobust_s);
  w->Field("requeue", r.was_requeue_s);
  w->EndObject();
  w->Field("final_mfu", r.final_mfu);
  w->Key("mechanisms");
  w->BeginObject();
  for (const auto& [name, count] : r.mechanisms) {
    w->Field(name, count);
  }
  w->EndObject();
  if (!r.domain_blast.empty()) {
    w->Field("domain_faults_injected", r.domain_faults_injected);
    WriteDomainBlast(w, "fault_domains", r.domain_blast);
  }
}

void WriteRun(JsonWriter* w, const RunResult& r) {
  w->BeginObject();
  WriteRunFields(w, r);
  w->EndObject();
}

struct Aggregate {
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
};

void WriteAggregate(JsonWriter* w, const std::string& key, const Aggregate& a) {
  w->Key(key);
  w->BeginObject();
  w->Field("mean", a.mean);
  w->Field("min", a.min);
  w->Field("max", a.max);
  w->EndObject();
}

int Emit(JsonWriter* w, const std::string& out_path) {
  std::string text = w->Take();
  text += '\n';
  // SIGPIPE is ignored, so a closed pipe surfaces here as a short write.
  if (std::fwrite(text.data(), 1, text.size(), stdout) != text.size() ||
      std::fflush(stdout) != 0) {
    std::fprintf(stderr, "error: short write on stdout\n");
    return 1;
  }
  if (!out_path.empty() && !WriteFile(out_path, text)) {
    std::fprintf(stderr, "error: could not write %s\n", out_path.c_str());
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Graceful shutdown: SIGINT/SIGTERM flip one lock-free flag that the worker
// pool polls between seed claims — in-flight seeds finish, the journal and
// any partial --stream output are flushed, and the campaign exits 30. A
// second signal falls through to the default disposition (immediate kill).
// ---------------------------------------------------------------------------
std::atomic<bool> g_signal_stop{false};

void HandleStopSignal(int sig) {
  g_signal_stop.store(true, std::memory_order_release);
  std::signal(sig, SIG_DFL);
}

// ---------------------------------------------------------------------------
// Campaign engine, generic over the per-seed runner so `campaign` (one
// RunResult per seed) and `fleet` (a whole multi-job fleet per seed) share
// the worker pool and the streaming merger byte-identically.
//
// Workers render each finished seed's JSON and hand it off (spill file or
// in-order committer) instead of buffering results, so campaign memory is
// O(window), not O(seeds). The aggregate block folds from tiny per-seed
// summary vectors in seed order — the identical arithmetic, in the identical
// order, as the buffered reference path, so output is byte-equal.
// ---------------------------------------------------------------------------

// What one seed contributes to the document: its rendered "runs" array
// element (depth 2, byte-identical to the same element written inline by a
// full-document writer) and the numbers the aggregate block consumes, in a
// fixed per-command order.
struct SeedOutcome {
  std::string element;
  std::vector<double> summary;
  bool failed = false;  // quarantined: no element, no summary slot
};

struct CampaignEngineSpec {
  int seeds = 0;
  int jobs = 1;
  bool stream = false;
  std::string out_path;
  std::string label;           // "campaign:dense" etc — exception context
  CampaignIdentity identity;   // what --journal records / --resume verifies
  std::string journal_path;    // --journal: record committed seeds here
  std::string resume_path;     // --resume: skip seeds already journaled here
  int retries_override = -1;   // --retries; < 0 defers to env/default
  // Runs seed index i (workers call this concurrently; every run must bind
  // only thread-local / run-local state).
  std::function<SeedOutcome(int)> run_seed;
  std::function<void(JsonWriter*)> header_fields;
  std::function<void(JsonWriter*, const std::vector<std::vector<double>>&)> aggregates;
};

// A setup-stage problem (bad env knob, unreadable or mismatched journal):
// reported before any worker spawns, exit code 2.
class EngineSetupError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// One quarantined seed, rendered into the document's "failed_runs" block.
struct FailedRun {
  int index = 0;
  std::uint64_t seed = 0;
  int attempts = 0;
  bool timed_out = false;
  std::string error;
};

// Rendered as a primed depth-1 block so it splices after the closed "runs"
// array; emitted only when non-empty, so clean campaigns keep their exact
// byte layout.
std::string RenderFailedRuns(const std::vector<FailedRun>& failures) {
  JsonWriter w(/*depth=*/1, /*need_comma=*/true);
  w.Key("failed_runs");
  w.BeginArray();
  for (const FailedRun& f : failures) {
    w.BeginObject();
    w.Field("index", f.index);
    w.Field("seed", f.seed);
    w.Field("attempts", f.attempts);
    w.Field("timed_out", f.timed_out);
    w.Field("error", f.error);
    w.EndObject();
  }
  w.EndArray();
  return w.Take();
}

// ---------------------------------------------------------------------------
// Worker-pool plumbing. All cross-thread mutable state lives in the two small
// classes below with BR_GUARDED_BY-annotated members, so the clang
// `-Wthread-safety` CI job statically proves every access holds the right
// lock. (Annotations only attach to members and globals — lambda-captured
// locals are invisible to the analysis — which is why this state is hoisted
// out of the engine functions.) Per-seed slots such as `summaries[i]` and the
// spill index are written by exactly one worker each (disjoint indices of
// pre-sized vectors) and read only after the pool joins; they need no lock.
// ---------------------------------------------------------------------------

// First-failure latch for a worker pool: the first captured exception wins,
// and failed() flips so the other workers stop claiming seeds.
class FailureLatch {
 public:
  // Records an exception (usually std::current_exception(), or one re-wrapped
  // with seed/worker context); the first capture wins.
  void Capture(std::exception_ptr error) {
    failed_.store(true, std::memory_order_relaxed);
    const MutexLock lock(&mu_);
    if (!first_error_) {
      first_error_ = std::move(error);
    }
  }

  bool failed() const { return failed_.load(std::memory_order_relaxed); }

  // Rethrows the first captured exception, if any. Call after the pool joined.
  void RethrowIfFailed() {
    std::exception_ptr error;
    {
      const MutexLock lock(&mu_);
      error = first_error_;
    }
    if (error) {
      std::rethrow_exception(error);
    }
  }

 private:
  Mutex mu_;
  std::atomic<bool> failed_{false};
  std::exception_ptr first_error_ BR_GUARDED_BY(mu_);
};

// Claims seed indices off the shared ticket until they run out, a worker has
// failed, or `stop` asks for a graceful drain (in-flight seeds finish, no new
// claims); runs `run` for each claim, latching the first exception wrapped
// with campaign/seed/worker context. The optional `on_failure` hook runs
// after the latch captures (e.g. to wake a committer blocked on a condition
// variable).
void DrainSeeds(int seeds, std::atomic<int>* next_seed, FailureLatch* latch,
                const std::string& label, int worker,
                const std::function<bool()>& stop,
                const std::function<void(int)>& run,
                const std::function<void()>& on_failure = {}) {
  for (int i = next_seed->fetch_add(1); i < seeds && !latch->failed();
       i = next_seed->fetch_add(1)) {
    if (stop && stop()) {
      return;
    }
    try {
      run(i);
    } catch (const std::exception& e) {
      latch->Capture(std::make_exception_ptr(std::runtime_error(
          label + ", seed index " + std::to_string(i) + ", worker " +
          std::to_string(worker) + ": " + e.what())));
      if (on_failure) {
        on_failure();
      }
      return;
    } catch (...) {
      latch->Capture(std::current_exception());
      if (on_failure) {
        on_failure();
      }
      return;
    }
  }
}

// Out-of-order producers, strictly seed-ordered consumer: workers Push each
// rendered element as it finishes; the committer Pops 0, 1, 2, ... so the
// document is written in seed order while only the out-of-order tail is ever
// resident. A latched failure wakes the committer immediately.
class OrderedCommitQueue {
 public:
  OrderedCommitQueue(const FailureLatch* latch, int producers)
      : latch_(latch), active_producers_(producers) {}

  void Push(int index, std::string element) {
    {
      const MutexLock lock(&mu_);
      done_.emplace(index, std::move(element));
    }
    cv_.NotifyOne();
  }

  // Each producer thread calls this exactly once on exit. When the last one
  // leaves, any committer still waiting for an unproduced seed (graceful
  // stop, or a quarantine race) unblocks instead of waiting forever.
  void ProducerExited() {
    {
      const MutexLock lock(&mu_);
      --active_producers_;
      if (active_producers_ > 0) {
        return;
      }
    }
    cv_.NotifyAll();
  }

  // Wakes the committer after the latch recorded a failure. Acquiring mu_
  // (even briefly) orders the notification after the committer's failed()
  // check in Pop(): either the committer already observed the failure, or it
  // has released mu_ inside cv_.Wait() and the NotifyAll cannot be lost.
  // Notifying without the lock could fire between the check and the wait,
  // leaving the committer blocked forever once producers stop pushing.
  void NotifyFailure() {
    { const MutexLock lock(&mu_); }
    cv_.NotifyAll();
  }

  // Blocks until element `index` is available (true), or until it can never
  // arrive — the pool failed, or every producer exited without pushing it
  // (false).
  bool Pop(int index, std::string* element) {
    const MutexLock lock(&mu_);
    while (true) {
      const auto it = done_.find(index);
      if (it != done_.end()) {
        *element = std::move(it->second);
        done_.erase(it);
        return true;
      }
      if (latch_->failed() || active_producers_ == 0) {
        return false;
      }
      cv_.Wait(&mu_);
    }
  }

 private:
  const FailureLatch* latch_;
  Mutex mu_;
  CondVar cv_;
  int active_producers_ BR_GUARDED_BY(mu_);
  std::map<int, std::string> done_ BR_GUARDED_BY(mu_);
};

// Runs `body(worker_index)` on `workers` threads — the calling thread doubles
// as worker 0 unless `caller_participates` is false — and joins them all.
void RunWorkerPool(int workers, bool caller_participates,
                   const std::function<void(int)>& body) {
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int t = caller_participates ? 1 : 0; t < workers; ++t) {
    pool.emplace_back(body, t);
  }
  if (caller_participates) {
    body(0);
  }
  for (std::thread& t : pool) {
    t.join();
  }
}

// Seed-order fold over one summary slot, shared by the buffered and
// streaming paths — one implementation, so byte-identity cannot drift.
Aggregate FoldAggregateAt(const std::vector<std::vector<double>>& summaries, std::size_t slot) {
  Aggregate a;
  if (summaries.empty()) {
    return a;
  }
  a.min = a.max = summaries.front().at(slot);
  for (const std::vector<double>& s : summaries) {
    const double v = s.at(slot);
    a.mean += v;
    a.min = std::min(a.min, v);
    a.max = std::max(a.max, v);
  }
  a.mean /= static_cast<double>(summaries.size());
  return a;
}

// Campaign aggregate slots: one source of truth for the pairing between the
// per-seed summary vector (CampaignSummaryOf) and the emitted labels
// (WriteCampaignAggregates) — reordering one without the other cannot happen.
enum CampaignAggSlot : std::size_t {
  kCampaignAggEttr = 0,
  kCampaignAggDetection,
  kCampaignAggResolution,
  kCampaignAggFailover,
  kCampaignAggIncidents,
  kCampaignAggEvictions,
  kCampaignAggCount,
};

std::vector<double> CampaignSummaryOf(const RunResult& r) {
  std::vector<double> s(kCampaignAggCount);
  s[kCampaignAggEttr] = r.ettr_cumulative;
  s[kCampaignAggDetection] = r.detection.mean_s;
  s[kCampaignAggResolution] = r.resolution.mean_s;
  s[kCampaignAggFailover] = r.failover.mean_s;
  s[kCampaignAggIncidents] = static_cast<double>(r.incidents_injected);
  s[kCampaignAggEvictions] = static_cast<double>(r.evictions);
  return s;
}

// One "runs" array element, byte-identical to the same element rendered
// inline by the full-document writer (leading newline + indent, no comma).
std::string RenderRunElement(const RunResult& r) {
  JsonWriter w(/*depth=*/2, /*need_comma=*/false);
  WriteRun(&w, r);
  return w.Take();
}

void WriteCampaignAggregates(JsonWriter* w, const std::vector<std::vector<double>>& summaries) {
  w->Key("aggregate");
  w->BeginObject();
  WriteAggregate(w, "ettr_cumulative", FoldAggregateAt(summaries, kCampaignAggEttr));
  WriteAggregate(w, "detection_mean_s", FoldAggregateAt(summaries, kCampaignAggDetection));
  WriteAggregate(w, "resolution_mean_s", FoldAggregateAt(summaries, kCampaignAggResolution));
  WriteAggregate(w, "failover_mean_s", FoldAggregateAt(summaries, kCampaignAggFailover));
  WriteAggregate(w, "incidents_injected", FoldAggregateAt(summaries, kCampaignAggIncidents));
  WriteAggregate(w, "evictions", FoldAggregateAt(summaries, kCampaignAggEvictions));
  w->EndObject();
}

// Options shared by every subcommand (parsed below).
struct Options {
  std::string scenario;
  std::uint64_t seed = 42;
  int seeds = 4;
  int jobs = 1;
  double days = -1.0;  // < 0: use the scenario default
  bool stream = false;  // campaign/fleet: fully incremental output (--stream)
  std::string out_path;
  std::string journal_path;  // --journal: crash-safe manifest of committed seeds
  std::string resume_path;   // --resume: skip seeds already in this journal
  int retries = -1;          // --retries; < 0 defers to env/default
};

// Header fields shared by every seed-campaign document (campaign and fleet).
void WriteRunSetHeaderFields(JsonWriter* w, const char* command, const char* scenario,
                             const Options& opts, double days) {
  w->Field("tool", "byterobust");
  w->Field("command", command);
  w->Field("scenario", scenario);
  w->Field("seeds", opts.seeds);
  w->Field("base_seed", opts.seed);
  w->Field("days", days);
}

void WriteCampaignHeaderFields(JsonWriter* w, const ScenarioSpec& spec, const Options& opts,
                               double days) {
  WriteRunSetHeaderFields(w, "campaign", spec.name, opts, days);
}

// Incremental output: everything goes to stdout and (optionally) to --out,
// written as produced instead of accumulated in one string. Construct — and
// check ok() — BEFORE spawning workers, so an unwritable --out fails fast
// instead of after minutes of simulation.
class OutputSink {
 public:
  explicit OutputSink(const std::string& out_path) : path_(out_path) {
    if (!path_.empty()) {
      file_ = std::fopen(path_.c_str(), "wb");
      if (file_ == nullptr) {
        ok_ = false;
      }
    }
  }
  ~OutputSink() {
    if (file_ != nullptr) {
      std::fclose(file_);
    }
  }
  OutputSink(const OutputSink&) = delete;
  OutputSink& operator=(const OutputSink&) = delete;

  // False when --out could not be opened; Finish() reports it.
  bool ok() const { return ok_; }

  void Write(const std::string& text) {
    // SIGPIPE is ignored, so a reader hanging up surfaces as a short write
    // here instead of killing the process mid-campaign.
    if (std::fwrite(text.data(), 1, text.size(), stdout) != text.size()) {
      stdout_ok_ = false;
    }
    if (file_ != nullptr && std::fwrite(text.data(), 1, text.size(), file_) != text.size()) {
      ok_ = false;
    }
  }

  // 0 on success, mirroring Emit()'s contract.
  int Finish() {
    if (std::fflush(stdout) != 0 || std::ferror(stdout) != 0) {
      stdout_ok_ = false;
    }
    if (!stdout_ok_) {
      std::fprintf(stderr, "error: short write on stdout\n");
      return 1;
    }
    if (!ok_) {
      std::fprintf(stderr, "error: could not write %s\n", path_.c_str());
      return 1;
    }
    return 0;
  }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  bool ok_ = true;
  bool stdout_ok_ = true;
};

// ---------------------------------------------------------------------------
// CampaignHarness: the per-seed fault-tolerance wrapper shared by all three
// engine paths. RunSeed(i) short-circuits seeds already committed in a
// --resume journal, runs fresh seeds under the SeedSupervisor (watchdog,
// deterministic retry/backoff, self-fault-injection), journals each success,
// and converts persistent failures into quarantine outcomes instead of
// exceptions. Thread-safe: workers call RunSeed concurrently.
// ---------------------------------------------------------------------------
class CampaignHarness {
 public:
  explicit CampaignHarness(const CampaignEngineSpec& spec) : spec_(spec) {
    SupervisorConfig config;
    std::string error;
    if (!SupervisorConfig::FromEnv(spec.identity.base_seed, &config, &error)) {
      throw EngineSetupError(error);
    }
    if (spec.retries_override >= 0) {
      config.max_attempts = 1 + spec.retries_override;
    }
    config.external_stop = &g_signal_stop;
    supervisor_.emplace(config);
    if (!spec.resume_path.empty()) {
      if (!journal_.OpenForResume(spec.resume_path, spec.identity, &resumed_, &error)) {
        throw EngineSetupError(error);
      }
    } else if (!spec.journal_path.empty()) {
      if (!journal_.Create(spec.journal_path, spec.identity, &error)) {
        throw EngineSetupError(error);
      }
    }
  }

  SeedOutcome RunSeed(int i) {
    // resumed_ is read-only after construction — safe without a lock.
    const auto it = resumed_.find(i);
    if (it != resumed_.end()) {
      return SeedOutcome{it->second.element, it->second.summary, false};
    }
    SeedOutcome outcome;
    SeedFailure failure;
    const std::function<SeedOutcome(const CancelToken&)> attempt =
        [this, i](const CancelToken&) { return spec_.run_seed(i); };
    if (supervisor_->Supervise<SeedOutcome>(i, attempt, &outcome, &failure)) {
      if (journal_.open() &&
          !journal_.Append({i, outcome.summary, outcome.element})) {
        throw std::runtime_error("journal append failed for seed index " +
                                 std::to_string(i));
      }
      supervisor_->NoteCommitted();
      return outcome;
    }
    {
      const MutexLock lock(&mu_);
      failures_.push_back({i,
                           spec_.identity.base_seed + static_cast<std::uint64_t>(i),
                           failure.attempts, failure.timed_out, failure.error});
    }
    outcome.element.clear();
    outcome.summary.clear();
    outcome.failed = true;
    return outcome;
  }

  bool stop_requested() const { return supervisor_->stop_requested(); }

  // Quarantined seeds in index order. Call after the pool joins.
  std::vector<FailedRun> failures() const {
    const MutexLock lock(&mu_);
    std::vector<FailedRun> sorted = failures_;
    std::sort(sorted.begin(), sorted.end(),
              [](const FailedRun& a, const FailedRun& b) { return a.index < b.index; });
    return sorted;
  }

  // Where to point the user when a run was interrupted mid-campaign.
  std::string ResumeHint() const {
    const std::string& path =
        spec_.resume_path.empty() ? spec_.journal_path : spec_.resume_path;
    if (path.empty()) {
      return "; rerun with --journal FILE to make campaigns resumable";
    }
    return "; resume with --resume " + path;
  }

 private:
  const CampaignEngineSpec& spec_;
  std::optional<SeedSupervisor> supervisor_;
  CampaignJournal journal_;
  std::map<int, JournalEntry> resumed_;
  mutable Mutex mu_;
  std::vector<FailedRun> failures_ BR_GUARDED_BY(mu_);
};

// Reports a graceful interrupt (stderr note + exit 30), shared by the three
// engine paths.
int FinishInterrupted(const CampaignHarness& harness, int processed, int seeds) {
  std::fprintf(stderr, "note: campaign interrupted after %d of %d seeds%s\n",
               processed, seeds, harness.ResumeHint().c_str());
  return 30;
}

// Exit code for a campaign that ran to completion: any I/O error wins, then
// quarantined seeds map to the distinct completed-with-failures code.
int FinishCompleted(OutputSink* sink, const std::vector<FailedRun>& failures) {
  const int io = sink->Finish();
  if (io != 0) {
    return io;
  }
  return failures.empty() ? 0 : 20;
}

// Where one rendered seed landed inside its worker's spill file.
struct SpillLocation {
  std::uint32_t worker = 0;
  long offset = 0;
  std::uint32_t length = 0;
};

// Owns the per-worker spill tmpfiles; every exit path (success, spill I/O
// error, worker exception, interrupt) closes them through this one
// destructor instead of hand-rolled cleanup loops.
class SpillSet {
 public:
  explicit SpillSet(int workers) : files_(static_cast<std::size_t>(workers), nullptr) {
    for (std::FILE*& f : files_) {
      f = std::tmpfile();
      if (f == nullptr) {
        ok_ = false;
        return;
      }
    }
  }
  ~SpillSet() {
    for (std::FILE* f : files_) {
      if (f != nullptr) {
        std::fclose(f);
      }
    }
  }
  SpillSet(const SpillSet&) = delete;
  SpillSet& operator=(const SpillSet&) = delete;

  bool ok() const { return ok_; }
  std::FILE* at(std::size_t worker) const { return files_[worker]; }

  void FlushAll() {
    for (std::FILE* f : files_) {
      std::fflush(f);
    }
  }

 private:
  std::vector<std::FILE*> files_;
  bool ok_ = true;
};

// Default streaming path: each worker appends its finished seeds' JSON to a
// private tmpfile; the merger then concatenates the elements in seed order
// (seeking by the per-seed index) while the aggregate block folds from the
// per-seed summaries. Peak memory: one rendered element per worker.
int RunEngineSpillStreaming(const CampaignEngineSpec& spec) {
  const int seeds = spec.seeds;
  const int workers = std::max(1, std::min(spec.jobs, seeds));
  CampaignHarness harness(spec);
  OutputSink sink(spec.out_path);
  if (!sink.ok()) {
    return sink.Finish();  // fail fast: --out unwritable, nothing simulated
  }
  SpillSet spills(workers);
  if (!spills.ok()) {
    std::fprintf(stderr, "error: could not create campaign spill file\n");
    return 1;
  }
  std::vector<std::vector<double>> summaries(static_cast<std::size_t>(seeds));
  std::vector<SpillLocation> index(static_cast<std::size_t>(seeds));
  std::vector<unsigned char> failed(static_cast<std::size_t>(seeds), 0);

  std::atomic<int> next{0};
  std::atomic<int> processed{0};
  FailureLatch latch;
  const auto worker = [&](int w) {
    // Each worker appends to its own spill file and writes disjoint
    // summaries/index/failed slots; only the latch is cross-thread state.
    long offset = 0;
    DrainSeeds(seeds, &next, &latch, spec.label, w,
               [&] { return harness.stop_requested(); }, [&](int i) {
      SeedOutcome outcome = harness.RunSeed(i);
      processed.fetch_add(1, std::memory_order_relaxed);
      if (outcome.failed) {
        failed[static_cast<std::size_t>(i)] = 1;
        return;
      }
      summaries[static_cast<std::size_t>(i)] = std::move(outcome.summary);
      const std::string element = std::move(outcome.element);
      if (std::fwrite(element.data(), 1, element.size(),
                      spills.at(static_cast<std::size_t>(w))) != element.size()) {
        throw std::runtime_error("campaign spill write failed");
      }
      index[static_cast<std::size_t>(i)] = {static_cast<std::uint32_t>(w), offset,
                                            static_cast<std::uint32_t>(element.size())};
      offset += static_cast<long>(element.size());
    });
  };
  RunWorkerPool(workers, /*caller_participates=*/true, worker);
  latch.RethrowIfFailed();
  if (harness.stop_requested() && processed.load(std::memory_order_relaxed) < seeds) {
    // Interrupted before every seed finished: nothing merged — the journal
    // (not a half-document) is the restart artifact.
    return FinishInterrupted(harness, processed.load(std::memory_order_relaxed), seeds);
  }

  spills.FlushAll();
  std::vector<std::vector<double>> folded;
  folded.reserve(summaries.size());
  for (int i = 0; i < seeds; ++i) {
    if (failed[static_cast<std::size_t>(i)] == 0) {
      folded.push_back(std::move(summaries[static_cast<std::size_t>(i)]));
    }
  }
  JsonWriter header;
  header.BeginObject();
  spec.header_fields(&header);
  spec.aggregates(&header, folded);
  header.Key("runs");
  header.BeginArray();
  sink.Write(header.Take());
  std::string element;
  int emitted = 0;
  for (int i = 0; i < seeds; ++i) {
    if (failed[static_cast<std::size_t>(i)] != 0) {
      continue;
    }
    const SpillLocation& loc = index[static_cast<std::size_t>(i)];
    element.resize(loc.length);
    std::FILE* f = spills.at(loc.worker);
    if (std::fseek(f, loc.offset, SEEK_SET) != 0 ||
        std::fread(element.data(), 1, element.size(), f) != element.size()) {
      std::fprintf(stderr, "error: campaign spill read failed\n");
      return 1;
    }
    if (emitted++ > 0) {
      sink.Write(",");
    }
    sink.Write(element);
  }
  sink.Write("\n  ]");
  const std::vector<FailedRun> failures = harness.failures();
  if (!failures.empty()) {
    sink.Write(RenderFailedRuns(failures));
  }
  sink.Write("\n}\n");
  return FinishCompleted(&sink, failures);
}

// --stream: fully incremental document for live consumption. Runs are written
// the moment their seed is next in order (nothing is spilled), so the
// "aggregate" block — which needs every seed — moves to the end of the
// document; all values are identical to the default layout's.
int RunEngineDirectStreaming(const CampaignEngineSpec& spec) {
  const int seeds = spec.seeds;
  CampaignHarness harness(spec);
  OutputSink sink(spec.out_path);
  if (!sink.ok()) {
    return sink.Finish();  // fail fast: --out unwritable, nothing simulated
  }
  JsonWriter header;
  header.BeginObject();
  spec.header_fields(&header);
  header.Key("runs");
  header.BeginArray();
  sink.Write(header.Take());

  std::vector<std::vector<double>> summaries(static_cast<std::size_t>(seeds));
  std::vector<unsigned char> failed(static_cast<std::size_t>(seeds), 0);
  int emitted = 0;
  // Quarantined seeds travel through the queue as empty sentinels so the
  // in-order committer advances past them without emitting an element.
  const auto commit = [&](const std::string& element) {
    if (element.empty()) {
      return;
    }
    if (emitted++ > 0) {
      sink.Write(",");
    }
    sink.Write(element);
  };

  const int workers = std::max(1, std::min(spec.jobs, seeds));
  int committed = 0;  // seeds whose outcome reached the committer, in order
  if (workers <= 1) {
    for (; committed < seeds; ++committed) {
      if (harness.stop_requested()) {
        break;
      }
      SeedOutcome outcome = harness.RunSeed(committed);
      if (outcome.failed) {
        failed[static_cast<std::size_t>(committed)] = 1;
      } else {
        summaries[static_cast<std::size_t>(committed)] = std::move(outcome.summary);
      }
      commit(outcome.element);
    }
  } else {
    // Workers render out of order; the main thread commits strictly in seed
    // order, holding at most the out-of-order tail in memory.
    std::atomic<int> next{0};
    FailureLatch latch;
    OrderedCommitQueue queue(&latch, workers);
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int t = 0; t < workers; ++t) {
      pool.emplace_back([&, t] {
        DrainSeeds(
            seeds, &next, &latch, spec.label, t,
            [&] { return harness.stop_requested(); },
            [&](int i) {
              SeedOutcome outcome = harness.RunSeed(i);
              if (outcome.failed) {
                failed[static_cast<std::size_t>(i)] = 1;
              } else {
                summaries[static_cast<std::size_t>(i)] = std::move(outcome.summary);
              }
              queue.Push(i, std::move(outcome.element));
            },
            /*on_failure=*/[&] { queue.NotifyFailure(); });
        queue.ProducerExited();
      });
    }
    std::string element;
    for (; committed < seeds; ++committed) {
      if (!queue.Pop(committed, &element)) {
        break;  // failed, or drained out before producing this seed
      }
      commit(element);
    }
    for (std::thread& t : pool) {
      t.join();
    }
    latch.RethrowIfFailed();
  }

  // Close a valid (possibly partial) document either way: aggregates fold
  // over exactly the seeds that made it into the runs array.
  std::vector<std::vector<double>> folded;
  folded.reserve(static_cast<std::size_t>(committed));
  for (int i = 0; i < committed; ++i) {
    if (failed[static_cast<std::size_t>(i)] == 0) {
      folded.push_back(std::move(summaries[static_cast<std::size_t>(i)]));
    }
  }
  sink.Write("\n  ]");
  const std::vector<FailedRun> failures = harness.failures();
  if (!failures.empty()) {
    sink.Write(RenderFailedRuns(failures));
  }
  JsonWriter tail(/*depth=*/1, /*need_comma=*/true);
  spec.aggregates(&tail, folded);
  sink.Write(tail.Take());
  sink.Write("\n}\n");
  if (harness.stop_requested() && committed < seeds) {
    sink.Finish();
    return FinishInterrupted(harness, committed, seeds);
  }
  return FinishCompleted(&sink, failures);
}

// Buffered reference path (BYTEROBUST_STREAM_CAMPAIGN=0): every rendered
// element held in memory, emitted in one pass. The streaming paths above must
// be byte-identical to this (ctest cli_campaign_streaming_equivalence).
int RunEngineBuffered(const CampaignEngineSpec& spec) {
  const int seeds = spec.seeds;
  CampaignHarness harness(spec);
  OutputSink sink(spec.out_path);
  if (!sink.ok()) {
    return sink.Finish();  // fail fast: --out unwritable, nothing simulated
  }
  std::vector<SeedOutcome> outcomes(static_cast<std::size_t>(seeds));
  std::atomic<int> next{0};
  std::atomic<int> processed{0};
  FailureLatch latch;
  const auto worker = [&](int w) {
    DrainSeeds(seeds, &next, &latch, spec.label, w,
               [&] { return harness.stop_requested(); }, [&](int i) {
                 outcomes[static_cast<std::size_t>(i)] = harness.RunSeed(i);
                 processed.fetch_add(1, std::memory_order_relaxed);
               });
  };
  const int workers = std::max(1, std::min(spec.jobs, seeds));
  RunWorkerPool(workers, /*caller_participates=*/true, worker);
  latch.RethrowIfFailed();
  if (harness.stop_requested() && processed.load(std::memory_order_relaxed) < seeds) {
    return FinishInterrupted(harness, processed.load(std::memory_order_relaxed), seeds);
  }

  std::vector<std::vector<double>> summaries;
  summaries.reserve(outcomes.size());
  for (const SeedOutcome& o : outcomes) {
    if (!o.failed) {
      summaries.push_back(o.summary);
    }
  }
  JsonWriter header;
  header.BeginObject();
  spec.header_fields(&header);
  spec.aggregates(&header, summaries);
  header.Key("runs");
  header.BeginArray();
  sink.Write(header.Take());
  int emitted = 0;
  for (int i = 0; i < seeds; ++i) {
    if (outcomes[static_cast<std::size_t>(i)].failed) {
      continue;
    }
    if (emitted++ > 0) {
      sink.Write(",");
    }
    sink.Write(outcomes[static_cast<std::size_t>(i)].element);
  }
  sink.Write("\n  ]");
  const std::vector<FailedRun> failures = harness.failures();
  if (!failures.empty()) {
    sink.Write(RenderFailedRuns(failures));
  }
  sink.Write("\n}\n");
  return FinishCompleted(&sink, failures);
}

int RunCampaignEngine(const CampaignEngineSpec& spec) {
  try {
    if (spec.stream) {
      return RunEngineDirectStreaming(spec);
    }
    if (StreamCampaignEnabled()) {
      return RunEngineSpillStreaming(spec);
    }
    return RunEngineBuffered(spec);
  } catch (const EngineSetupError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}

// ---------------------------------------------------------------------------
// Subcommands.
// ---------------------------------------------------------------------------
int Usage() {
  std::fprintf(stderr,
               "usage: byterobust <run|campaign|fleet|bench-report|list> [options]\n"
               "\n"
               "  run          --preset NAME   [--seed S] [--days D] [--out FILE]\n"
               "  campaign     --scenario NAME [--seeds N] [--base-seed S] [--days D]\n"
               "               [--jobs N] [--stream] [--out FILE] [--retries N]\n"
               "               [--journal FILE | --resume FILE]\n"
               "  fleet        --scenario NAME [--seeds N] [--base-seed S] [--days D]\n"
               "               [--jobs N] [--stream] [--out FILE] [--retries N]\n"
               "               [--journal FILE | --resume FILE]\n"
               "  bench-report [--out FILE]\n"
               "  list\n"
               "\n"
               "  --stream emits each seed's JSON as soon as it is next in seed order\n"
               "  (the aggregate block then follows the runs array instead of preceding\n"
               "  it); without it, workers spill finished seeds to temp files and the\n"
               "  merger emits the standard layout with O(window) memory.\n"
               "\n"
               "  --journal FILE appends each committed seed to a crash-safe manifest;\n"
               "  --resume FILE skips the seeds that manifest already holds and appends\n"
               "  the rest, producing byte-identical merged output. --retries N bounds\n"
               "  per-seed retry attempts (also BYTEROBUST_SEED_RETRIES); seeds that\n"
               "  still fail are quarantined into a \"failed_runs\" block (exit 20).\n"
               "  SIGINT/SIGTERM drain in-flight seeds and exit 30. See also\n"
               "  BYTEROBUST_SEED_TIMEOUT_S / _FACTOR and BYTEROBUST_HARNESS_FAULTS.\n"
               "\nscenarios:\n");
  for (const ScenarioSpec& s : Specs()) {
    std::fprintf(stderr, "  %-12s %s\n", s.name, s.summary);
  }
  std::fprintf(stderr, "\nfleet scenarios:\n");
  for (const FleetSpec& s : FleetSpecs()) {
    std::fprintf(stderr, "  %-18s %s\n", s.name, s.summary);
  }
  return 2;
}

bool ParseNumber(const char* flag, const char* text, double* out) {
  char* end = nullptr;
  *out = std::strtod(text, &end);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "error: %s expects a number, got '%s'\n", flag, text);
    return false;
  }
  return true;
}

// Which flags each subcommand accepts; anything else is rejected so a typo'd
// or misplaced flag (e.g. `run --seeds 8`) fails loudly instead of being
// silently ignored.
bool FlagAllowed(const std::string& command, const std::string& flag) {
  if (flag == "--out") {
    return true;
  }
  if (command == "run") {
    return flag == "--preset" || flag == "--scenario" || flag == "--seed" ||
           flag == "--days";
  }
  if (command == "campaign" || command == "fleet") {
    return flag == "--preset" || flag == "--scenario" || flag == "--seed" ||
           flag == "--base-seed" || flag == "--seeds" || flag == "--days" ||
           flag == "--jobs" || flag == "--stream" || flag == "--journal" ||
           flag == "--resume" || flag == "--retries";
  }
  return false;  // bench-report / list take only --out
}

bool ParseOptions(const std::string& command, int argc, char** argv, Options* opts) {
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    double value = 0.0;
    if (arg.rfind("--", 0) == 0 && !FlagAllowed(command, arg)) {
      std::fprintf(stderr, "error: option '%s' is not valid for '%s'\n", arg.c_str(),
                   command.c_str());
      return false;
    }
    if ((arg == "--preset" || arg == "--scenario") && has_value) {
      opts->scenario = argv[++i];
    } else if ((arg == "--seed" || arg == "--base-seed") && has_value) {
      if (!ParseNumber(arg.c_str(), argv[++i], &value)) {
        return false;
      }
      if (value < 0.0 || value > 9.0e15) {
        std::fprintf(stderr, "error: %s must be in [0, 9e15]\n", arg.c_str());
        return false;
      }
      opts->seed = static_cast<std::uint64_t>(value);
    } else if (arg == "--seeds" && has_value) {
      if (!ParseNumber(arg.c_str(), argv[++i], &value)) {
        return false;
      }
      if (value < 1.0 || value > 100000.0) {
        std::fprintf(stderr, "error: --seeds must be in [1, 100000]\n");
        return false;
      }
      opts->seeds = static_cast<int>(value);
    } else if (arg == "--jobs" && has_value) {
      if (!ParseNumber(arg.c_str(), argv[++i], &value)) {
        return false;
      }
      if (value < 1.0 || value > 256.0) {
        std::fprintf(stderr, "error: --jobs must be in [1, 256]\n");
        return false;
      }
      opts->jobs = static_cast<int>(value);
    } else if (arg == "--days" && has_value) {
      if (!ParseNumber(arg.c_str(), argv[++i], &value)) {
        return false;
      }
      if (value <= 0.0) {
        std::fprintf(stderr, "error: --days must be > 0\n");
        return false;
      }
      opts->days = value;
    } else if (arg == "--stream") {
      opts->stream = true;
    } else if (arg == "--out" && has_value) {
      opts->out_path = argv[++i];
    } else if (arg == "--journal" && has_value) {
      opts->journal_path = argv[++i];
    } else if (arg == "--resume" && has_value) {
      opts->resume_path = argv[++i];
    } else if (arg == "--retries" && has_value) {
      if (!ParseNumber(arg.c_str(), argv[++i], &value)) {
        return false;
      }
      if (value < 0.0 || value > 100.0) {
        std::fprintf(stderr, "error: --retries must be in [0, 100]\n");
        return false;
      }
      opts->retries = static_cast<int>(value);
    } else {
      std::fprintf(stderr, "error: unknown or incomplete option '%s'\n", arg.c_str());
      return false;
    }
  }
  if (!opts->journal_path.empty() && !opts->resume_path.empty()) {
    std::fprintf(stderr,
                 "error: --journal and --resume are mutually exclusive "
                 "(--resume already appends to the journal it resumes)\n");
    return false;
  }
  return true;
}

int CmdRun(const Options& opts) {
  const ScenarioSpec* spec = FindSpec(opts.scenario);
  if (spec == nullptr) {
    std::fprintf(stderr, "error: unknown scenario '%s' (try: byterobust list)\n",
                 opts.scenario.c_str());
    return 2;
  }
  const double days = opts.days > 0.0 ? opts.days : spec->default_days;
  const RunResult r = RunOne(*spec, days, opts.seed);
  JsonWriter w;
  w.BeginObject();
  w.Field("tool", "byterobust");
  w.Field("command", "run");
  w.Key("result");
  WriteRun(&w, r);
  w.EndObject();
  return Emit(&w, opts.out_path);
}

int CmdCampaign(const Options& opts) {
  const ScenarioSpec* spec = FindSpec(opts.scenario);
  if (spec == nullptr) {
    std::fprintf(stderr, "error: unknown scenario '%s' (try: byterobust list)\n",
                 opts.scenario.c_str());
    return 2;
  }
  if (opts.seeds < 1) {
    std::fprintf(stderr, "error: --seeds must be >= 1\n");
    return 2;
  }
  const double days = opts.days > 0.0 ? opts.days : spec->default_days;
  CampaignEngineSpec engine;
  engine.seeds = opts.seeds;
  engine.jobs = opts.jobs;
  engine.stream = opts.stream;
  engine.out_path = opts.out_path;
  engine.label = std::string("campaign:") + spec->name;
  engine.identity = {"campaign", spec->name, opts.seeds, opts.seed, days,
                     BinaryFingerprint()};
  engine.journal_path = opts.journal_path;
  engine.resume_path = opts.resume_path;
  engine.retries_override = opts.retries;
  engine.run_seed = [spec, days, &opts](int i) {
    const RunResult r = RunOne(*spec, days, opts.seed + static_cast<std::uint64_t>(i));
    return SeedOutcome{RenderRunElement(r), CampaignSummaryOf(r)};
  };
  engine.header_fields = [spec, &opts, days](JsonWriter* w) {
    WriteCampaignHeaderFields(w, *spec, opts, days);
  };
  engine.aggregates = [](JsonWriter* w, const std::vector<std::vector<double>>& summaries) {
    WriteCampaignAggregates(w, summaries);
  };
  return RunCampaignEngine(engine);
}

// ---------------------------------------------------------------------------
// Fleet emission: N concurrent jobs on one shared pool (src/fleet).
// ---------------------------------------------------------------------------

// Fleet aggregate slots: same single-sourcing as the campaign slots above.
enum FleetAggSlot : std::size_t {
  kFleetAggGpuRatio = 0,
  kFleetAggPreemptions,
  kFleetAggQueuedClaims,
  kFleetAggStorms,
  kFleetAggCrossJobStorms,
  kFleetAggIncidents,
  kFleetAggEvictions,
  kFleetAggCount,
};

void WriteFleetAggregates(JsonWriter* w, const std::vector<std::vector<double>>& summaries) {
  w->Key("aggregate");
  w->BeginObject();
  WriteAggregate(w, "effective_gpu_time_ratio", FoldAggregateAt(summaries, kFleetAggGpuRatio));
  WriteAggregate(w, "preemptions", FoldAggregateAt(summaries, kFleetAggPreemptions));
  WriteAggregate(w, "queued_claims", FoldAggregateAt(summaries, kFleetAggQueuedClaims));
  WriteAggregate(w, "storms_injected", FoldAggregateAt(summaries, kFleetAggStorms));
  WriteAggregate(w, "cross_job_storms", FoldAggregateAt(summaries, kFleetAggCrossJobStorms));
  WriteAggregate(w, "incidents_injected", FoldAggregateAt(summaries, kFleetAggIncidents));
  WriteAggregate(w, "evictions", FoldAggregateAt(summaries, kFleetAggEvictions));
  w->EndObject();
}

// Runs one fleet seed and renders its "runs" element: fleet-level metrics
// (effective GPU-time ratio, spare-pool occupancy timeline, blast radius)
// plus one per-job block reusing the campaign RunResult schema extended with
// priority / start time / spare-claim counters.
SeedOutcome RunFleetSeed(const FleetSpec& spec, double days, std::uint64_t seed) {
  FleetConfig cfg = spec.make(days, seed);
  for (FleetJobSpec& job : cfg.jobs) {
    job.scenario.system.job.batched_stepping = StepBatchingEnabled();
    job.scenario.system.metrics_retention = MetricsRetentionFromEnv();
  }
  Fleet fleet(cfg);
  fleet.Run();

  int incidents_total = 0;
  int evictions_total = 0;
  JsonWriter w(/*depth=*/2, /*need_comma=*/false);
  w.BeginObject();
  w.Field("scenario", spec.name);
  w.Field("seed", seed);
  w.Field("days", days);
  w.Field("num_jobs", fleet.num_jobs());
  w.Key("fleet");
  w.BeginObject();
  w.Field("machines_total", static_cast<int>(fleet.pool().total_machines()));
  w.Field("effective_gpu_time_ratio", fleet.EffectiveGpuTimeRatio());
  w.Field("storms_injected", fleet.storms_injected());
  w.Field("cross_job_storms", fleet.cross_job_storms());
  w.Key("blast_radius");
  w.BeginObject();
  for (const auto& [radius, count] : fleet.blast_radius_counts()) {
    w.Field(std::to_string(radius), count);
  }
  w.EndObject();
  if (!fleet.domain_blast().empty()) {
    WriteDomainBlast(&w, "domain_blast", fleet.domain_blast());
  }
  const SpareOccupancySummary occ = fleet.OccupancySummary();
  w.Key("spare_pool");
  w.BeginObject();
  w.Field("preemptions", fleet.arbiter().preemptions_total());
  w.Field("queued_claims", fleet.arbiter().queued_claims_total());
  w.Field("ready_mean", occ.mean_ready);
  w.Field("ready_min", occ.min_ready);
  w.Field("ready_max", occ.max_ready);
  w.Field("occupancy_samples", occ.samples);
  // Occupancy timeline: every pool mutation up to a fixed emission cap.
  const std::vector<SpareOccupancySample>& timeline = fleet.arbiter().occupancy();
  constexpr std::size_t kTimelineCap = 256;
  w.Field("timeline_truncated", timeline.size() > kTimelineCap);
  w.Key("timeline");
  w.BeginArray();
  for (std::size_t i = 0; i < timeline.size() && i < kTimelineCap; ++i) {
    w.BeginObject();
    w.Field("t_s", ToSeconds(timeline[i].time));
    w.Field("ready", timeline[i].ready);
    w.Field("provisioning", timeline[i].provisioning);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();  // spare_pool
  w.EndObject();  // fleet
  w.Key("jobs");
  w.BeginArray();
  for (int i = 0; i < fleet.num_jobs(); ++i) {
    const FleetJobSpec& job_spec = fleet.spec(i);
    RunResult r;
    r.scenario = spec.name;
    r.seed = fleet.system(i).config().seed;
    r.days = ToDays(std::max<SimDuration>(cfg.duration - job_spec.start_time, 0));
    r.incidents_injected = fleet.scenario(i).stats().incidents_injected;
    r.refails = fleet.scenario(i).stats().refails;
    r.updates_submitted = fleet.scenario(i).stats().updates_submitted;
    CollectSystemMetrics(fleet.system(i), &r);
    if (fleet.system(i).job().run_count() == 0) {
      // A job that never launched inside the campaign window has no
      // availability to report; CumulativeEttr's zero-wall convention would
      // otherwise claim a perfect 1.0 for it.
      r.ettr_cumulative = 0.0;
    }
    incidents_total += r.incidents_injected;
    evictions_total += r.evictions;
    const SpareJobStats& spares = fleet.arbiter().job_stats(i);
    w.BeginObject();
    w.Field("name", job_spec.name);
    w.Field("priority", job_spec.priority);
    w.Field("start_day", ToDays(job_spec.start_time));
    WriteRunFields(&w, r);
    w.Key("spares");
    w.BeginObject();
    w.Field("claims", spares.claims);
    w.Field("machines_requested", spares.machines_requested);
    w.Field("machines_granted", spares.machines_granted);
    w.Field("preemptions_gained", spares.preemptions_gained);
    w.Field("preemptions_lost", spares.preemptions_lost);
    w.Field("queued_claims", spares.queued_claims);
    w.Field("shortfall_machines", spares.shortfall_machines);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();

  SeedOutcome outcome;
  outcome.element = w.Take();
  outcome.summary.resize(kFleetAggCount);
  outcome.summary[kFleetAggGpuRatio] = fleet.EffectiveGpuTimeRatio();
  outcome.summary[kFleetAggPreemptions] = fleet.arbiter().preemptions_total();
  outcome.summary[kFleetAggQueuedClaims] = fleet.arbiter().queued_claims_total();
  outcome.summary[kFleetAggStorms] = fleet.storms_injected();
  outcome.summary[kFleetAggCrossJobStorms] = fleet.cross_job_storms();
  outcome.summary[kFleetAggIncidents] = incidents_total;
  outcome.summary[kFleetAggEvictions] = evictions_total;
  return outcome;
}

int CmdFleet(const Options& opts) {
  const FleetSpec* spec = FindFleetSpec(opts.scenario);
  if (spec == nullptr) {
    std::fprintf(stderr, "error: unknown fleet scenario '%s' (try: byterobust list)\n",
                 opts.scenario.c_str());
    return 2;
  }
  if (opts.seeds < 1) {
    std::fprintf(stderr, "error: --seeds must be >= 1\n");
    return 2;
  }
  const double days = opts.days > 0.0 ? opts.days : spec->default_days;
  CampaignEngineSpec engine;
  engine.seeds = opts.seeds;
  engine.jobs = opts.jobs;
  engine.stream = opts.stream;
  engine.out_path = opts.out_path;
  engine.label = std::string("fleet:") + spec->name;
  engine.identity = {"fleet", spec->name, opts.seeds, opts.seed, days,
                     BinaryFingerprint()};
  engine.journal_path = opts.journal_path;
  engine.resume_path = opts.resume_path;
  engine.retries_override = opts.retries;
  engine.run_seed = [spec, days, &opts](int i) {
    return RunFleetSeed(*spec, days, opts.seed + static_cast<std::uint64_t>(i));
  };
  engine.header_fields = [spec, &opts, days](JsonWriter* w) {
    WriteRunSetHeaderFields(w, "fleet", spec->name, opts, days);
  };
  engine.aggregates = [](JsonWriter* w, const std::vector<std::vector<double>>& summaries) {
    WriteFleetAggregates(w, summaries);
  };
  return RunCampaignEngine(engine);
}

int CmdBenchReport(const Options& opts) {
  const RestartCostModel model;
  JsonWriter w;
  w.BeginObject();
  w.Field("tool", "byterobust");
  w.Field("command", "bench-report");
  w.Key("restart_cost_model");
  w.BeginArray();
  for (int machines : {128, 256, 512, 1024}) {
    const WasEstimate est = EstimateWas(machines);
    w.BeginObject();
    w.Field("machines", machines);
    w.Field("requeue_s", ToSeconds(model.RequeueTime(machines)));
    w.Field("reschedule_1_s", ToSeconds(model.RescheduleTime(machines, 1)));
    w.Field("standby_wake_1_s", ToSeconds(model.StandbyWakeTime(1)));
    w.Field("hot_update_s", ToSeconds(model.HotUpdateTime(machines)));
    w.Field("p99_evictions", est.p99_evictions);
    w.Field("was_byterobust_s", est.byterobust_s);
    w.Field("was_requeue_s", est.requeue_s);
    w.Field("was_reschedule_s", est.reschedule_s);
    w.Field("was_oracle_s", est.oracle_s);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return Emit(&w, opts.out_path);
}

int CmdList(const Options& opts) {
  JsonWriter w;
  w.BeginObject();
  w.Field("tool", "byterobust");
  w.Field("command", "list");
  w.Key("scenarios");
  w.BeginArray();
  for (const ScenarioSpec& s : Specs()) {
    w.BeginObject();
    w.Field("name", s.name);
    w.Field("summary", s.summary);
    w.Field("targeted", s.targeted);
    w.Field("default_days", s.default_days);
    w.EndObject();
  }
  w.EndArray();
  w.Key("fleet_scenarios");
  w.BeginArray();
  for (const FleetSpec& s : FleetSpecs()) {
    w.BeginObject();
    w.Field("name", s.name);
    w.Field("summary", s.summary);
    w.Field("default_days", s.default_days);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return Emit(&w, opts.out_path);
}

int Main(int argc, char** argv) {
  // A reader hanging up must surface as a short write (checked at every
  // sink), not a SIGPIPE kill mid-campaign; SIGINT/SIGTERM drain gracefully.
  std::signal(SIGPIPE, SIG_IGN);
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  Options opts;
  if (!ParseOptions(command, argc - 2, argv + 2, &opts)) {
    return Usage();
  }
  if (command == "run") {
    return CmdRun(opts);
  }
  if (command == "campaign") {
    return CmdCampaign(opts);
  }
  if (command == "fleet") {
    return CmdFleet(opts);
  }
  if (command == "bench-report") {
    return CmdBenchReport(opts);
  }
  if (command == "list") {
    return CmdList(opts);
  }
  return Usage();
}

}  // namespace
}  // namespace byterobust

int main(int argc, char** argv) {
  // Single exit funnel: worker-pool exceptions (already wrapped with
  // campaign/seed/worker context by the failure latch) print exactly once.
  try {
    return byterobust::Main(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

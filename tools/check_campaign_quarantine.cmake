# ctest helper: a seed that fails every attempt must be quarantined — the
# campaign completes, reports the poisoned seed in a structured "failed_runs"
# block, exits with the completed-with-quarantined code (20), and the
# surviving seeds are unchanged. Verified on the default (spill) path and the
# --stream path, and the two must agree on the surviving runs.
#
#   cmake -DCLI=<byterobust binary> -DWORK_DIR=<scratch dir> -P check_campaign_quarantine.cmake

foreach(var CLI WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "${var} is required")
  endif()
endforeach()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

set(scenario "campaign;--scenario;gpu-fault;--seeds;4;--days;0.2;--seed;42")

execute_process(
    COMMAND ${CLI} ${scenario} --out ${WORK_DIR}/clean.json
    OUTPUT_QUIET
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "clean reference campaign failed: ${rc}")
endif()

foreach(mode default stream)
  set(extra "")
  if(mode STREQUAL "stream")
    set(extra "--stream")
  endif()
  execute_process(
      COMMAND ${CMAKE_COMMAND} -E env BYTEROBUST_HARNESS_FAULTS=crash_seed:2
          ${CLI} ${scenario} --jobs 2 ${extra}
          --out ${WORK_DIR}/quarantine_${mode}.json
      OUTPUT_QUIET
      ERROR_QUIET
      RESULT_VARIABLE rc)
  if(NOT rc EQUAL 20)
    message(FATAL_ERROR
        "quarantined campaign (${mode}) exited ${rc}, expected 20")
  endif()
endforeach()

find_program(PYTHON3 NAMES python3 python)
if(PYTHON3)
  execute_process(
      COMMAND ${PYTHON3} -c "
import json, sys
clean = json.load(open(sys.argv[1]))
for path in sys.argv[2:]:
    doc = json.load(open(path))
    failed = doc.get('failed_runs')
    assert failed and len(failed) == 1, '%s: expected exactly one failed run' % path
    entry = failed[0]
    assert entry['index'] == 2, '%s: wrong quarantined index' % path
    assert entry['seed'] == 44, '%s: wrong quarantined seed' % path
    assert entry['attempts'] >= 1, '%s: missing attempt count' % path
    assert 'error' in entry and entry['error'], '%s: missing error text' % path
    survivors = [r['seed'] for r in doc['runs']]
    assert survivors == [42, 43, 45], '%s: surviving seeds %r' % (path, survivors)
    expected = [r for r in clean['runs'] if r['seed'] != 44]
    assert doc['runs'] == expected, '%s: surviving runs were perturbed' % path
" ${WORK_DIR}/clean.json
        ${WORK_DIR}/quarantine_default.json ${WORK_DIR}/quarantine_stream.json
      RESULT_VARIABLE check)
  if(NOT check EQUAL 0)
    message(FATAL_ERROR "quarantine output failed structural validation")
  endif()
else()
  foreach(mode default stream)
    file(READ ${WORK_DIR}/quarantine_${mode}.json doc)
    string(FIND "${doc}" "\"failed_runs\":" pos)
    if(pos EQUAL -1)
      message(FATAL_ERROR "quarantine output (${mode}) is missing failed_runs")
    endif()
    string(REGEX MATCHALL "\"seed\": 44" poisoned "${doc}")
    list(LENGTH poisoned poisoned_count)
    if(NOT poisoned_count EQUAL 1)
      message(FATAL_ERROR
          "quarantine output (${mode}) mentions seed 44 ${poisoned_count} times, expected 1")
    endif()
  endforeach()
endif()

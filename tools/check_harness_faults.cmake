# ctest helper: a campaign that rides through injected harness faults
# (probabilistic crashes, throws, and cooperative hangs, with retries and a
# short watchdog deadline) must complete with exit 0 and emit output
# byte-identical to a clean run — on all three output paths (buffered, spill
# streaming, --stream) at --jobs 1 and --jobs 8. Fault draws are keyed on
# (campaign seed, seed index, attempt, kind), so the same seeds fault the same
# way regardless of worker count, and retries absorb every fault.
#
#   cmake -DCLI=<byterobust binary> -DWORK_DIR=<scratch dir> -P check_harness_faults.cmake

foreach(var CLI WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "${var} is required")
  endif()
endforeach()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

set(scenario "campaign;--scenario;dense;--seeds;6;--days;0.3;--seed;42")
# With 8 retries (9 attempts) per seed, the per-seed chance that all attempts
# fault is tiny — and the draws are deterministic, so this exact spec is
# verified quarantine-free (and hang-exercising: at least one watchdog
# cancel/retry) for this scenario once and stays so.
set(faults "crash:0.2,throw:0.15,hang:0.5")

# Clean references for the two output layouts.
execute_process(
    COMMAND ${CLI} ${scenario} --out ${WORK_DIR}/clean_default.json
    OUTPUT_QUIET
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "clean reference campaign failed: ${rc}")
endif()
execute_process(
    COMMAND ${CLI} ${scenario} --stream --out ${WORK_DIR}/clean_stream.json
    OUTPUT_QUIET
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "clean --stream reference campaign failed: ${rc}")
endif()

foreach(jobs 1 8)
  foreach(path buffered spill stream)
    set(ref ${WORK_DIR}/clean_default.json)
    set(stream_env BYTEROBUST_STREAM_CAMPAIGN=1)
    set(extra "")
    if(path STREQUAL "buffered")
      set(stream_env BYTEROBUST_STREAM_CAMPAIGN=0)
    elseif(path STREQUAL "stream")
      set(extra "--stream")
      set(ref ${WORK_DIR}/clean_stream.json)
    endif()
    set(out ${WORK_DIR}/faulted_${path}_${jobs}.json)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E env
            BYTEROBUST_HARNESS_FAULTS=${faults}
            BYTEROBUST_SEED_RETRIES=8
            BYTEROBUST_SEED_TIMEOUT_S=0.5
            ${stream_env}
            ${CLI} ${scenario} --jobs ${jobs} ${extra} --out ${out}
        OUTPUT_QUIET
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
          "faulted campaign (${path}, --jobs ${jobs}) exited ${rc}, expected 0")
    endif()
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files ${ref} ${out}
        RESULT_VARIABLE diff)
    if(NOT diff EQUAL 0)
      message(FATAL_ERROR
          "faulted campaign (${path}, --jobs ${jobs}) is not byte-identical to the clean run")
    endif()
  endforeach()
endforeach()

# ctest helper: observability is a strict side channel. Campaign, fleet and
# serve outputs must be byte-identical with --trace/--dashboard (or
# BYTEROBUST_TRACE) enabled vs. disabled — across all three campaign output
# paths (buffered, spill streaming, --stream) at --jobs 1 and 8 — and every
# emitted trace must pass tools/trace_validate.py (balanced B/E spans,
# monotone per-track timestamps). Dashboards must themselves be
# byte-identical across --jobs and output paths (they sample the simulation,
# not the scheduler).
#
#   cmake -DCLI=<byterobust binary> -DWORK_DIR=<scratch dir> -P check_observability.cmake

foreach(var CLI WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "${var} is required")
  endif()
endforeach()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

get_filename_component(TOOLS_DIR ${CMAKE_SCRIPT_MODE_FILE} DIRECTORY)
find_program(PYTHON3 python3)

function(validate_trace trace)
  if(NOT PYTHON3)
    return()  # trace structure is still exercised; validation needs python3
  endif()
  execute_process(
      COMMAND ${PYTHON3} ${TOOLS_DIR}/trace_validate.py ${ARGN} ${trace}
      RESULT_VARIABLE rc OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "trace ${trace} failed trace_validate.py")
  endif()
endfunction()

set(campaign_cmd "campaign;--scenario;quickstart;--seeds;3;--days;0.1")
set(fleet_cmd "fleet;--scenario;fleet-mixed;--seeds;2")

# Clean references for both document layouts, per command.
foreach(kind campaign fleet)
  foreach(layout default stream)
    set(extra "")
    if(layout STREQUAL "stream")
      set(extra "--stream")
    endif()
    execute_process(
        COMMAND ${CLI} ${${kind}_cmd} ${extra} --out ${WORK_DIR}/ref_${kind}_${layout}.json
        OUTPUT_QUIET RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR "clean ${kind} ${layout} reference failed: ${rc}")
    endif()
  endforeach()
endforeach()

# Observability on: every path x jobs combination must reproduce the clean
# bytes, emit a valid trace, and emit the same dashboard as every other
# combination of the same command.
foreach(kind campaign fleet)
  set(first_dash "")
  foreach(jobs 1 8)
    foreach(path buffered spill stream)
      set(tag ${kind}_${path}_${jobs})
      set(ref ${WORK_DIR}/ref_${kind}_default.json)
      set(stream_env BYTEROBUST_STREAM_CAMPAIGN=1)
      set(extra "")
      if(path STREQUAL "buffered")
        set(stream_env BYTEROBUST_STREAM_CAMPAIGN=0)
      elseif(path STREQUAL "stream")
        set(extra "--stream")
        set(ref ${WORK_DIR}/ref_${kind}_stream.json)
      endif()
      execute_process(
          COMMAND ${CMAKE_COMMAND} -E env ${stream_env}
              ${CLI} ${${kind}_cmd} --jobs ${jobs} ${extra}
              --trace ${WORK_DIR}/trace_${tag}.json
              --dashboard ${WORK_DIR}/dash_${tag}.json
              --out ${WORK_DIR}/out_${tag}.json
          OUTPUT_QUIET RESULT_VARIABLE rc)
      if(NOT rc EQUAL 0)
        message(FATAL_ERROR "observed ${kind} (${path}, --jobs ${jobs}) exited ${rc}")
      endif()
      execute_process(
          COMMAND ${CMAKE_COMMAND} -E compare_files ${ref} ${WORK_DIR}/out_${tag}.json
          RESULT_VARIABLE diff)
      if(NOT diff EQUAL 0)
        message(FATAL_ERROR
            "${kind} output (${path}, --jobs ${jobs}) changed with observability on")
      endif()
      validate_trace(${WORK_DIR}/trace_${tag}.json)
      if(first_dash STREQUAL "")
        set(first_dash ${WORK_DIR}/dash_${tag}.json)
      else()
        execute_process(
            COMMAND ${CMAKE_COMMAND} -E compare_files
                ${first_dash} ${WORK_DIR}/dash_${tag}.json
            RESULT_VARIABLE diff)
        if(NOT diff EQUAL 0)
          message(FATAL_ERROR
              "${kind} dashboard (${path}, --jobs ${jobs}) differs across runs")
        endif()
      endif()
    endforeach()
  endforeach()
endforeach()

# BYTEROBUST_TRACE (the env knob) must behave exactly like --trace.
execute_process(
    COMMAND ${CMAKE_COMMAND} -E env BYTEROBUST_TRACE=${WORK_DIR}/trace_env.json
        ${CLI} ${campaign_cmd} --jobs 8 --out ${WORK_DIR}/out_env.json
    OUTPUT_QUIET RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "BYTEROBUST_TRACE campaign exited ${rc}")
endif()
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
        ${WORK_DIR}/ref_campaign_default.json ${WORK_DIR}/out_env.json
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR "campaign output changed under BYTEROBUST_TRACE")
endif()
validate_trace(${WORK_DIR}/trace_env.json)

# Serve: a traced daemon's response body must match the clean CLI --stream
# reference, and the daemon's drain must close its trace properly.
set(sock ${WORK_DIR}/serve.sock)
execute_process(
    COMMAND bash -c "(\"${CLI}\" serve --socket \"${sock}\" --workers 2 --jobs 8 --trace \"${WORK_DIR}/trace_serve.json\" </dev/null >\"${WORK_DIR}/serve.log\" 2>&1; echo -n $? > \"${WORK_DIR}/serve.exit\") </dev/null >/dev/null 2>&1 &"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "could not launch traced serve daemon")
endif()
execute_process(
    COMMAND ${CLI} request --socket ${sock}
        --body "{\"op\":\"campaign\",\"scenario\":\"quickstart\",\"seeds\":3,\"days\":0.1,\"jobs\":8}"
        --wait-s 15 --timeout-s 300 --out ${WORK_DIR}/serve_body.json
    OUTPUT_QUIET RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "traced serve request failed: ${rc}")
endif()
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
        ${WORK_DIR}/ref_campaign_stream.json ${WORK_DIR}/serve_body.json
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR "serve body changed with tracing on")
endif()
execute_process(
    COMMAND ${CLI} request --socket ${sock} --body "{\"op\":\"shutdown\"}" --raw
        --wait-s 5 --timeout-s 30
    OUTPUT_QUIET RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serve shutdown failed: ${rc}")
endif()
execute_process(
    COMMAND bash -c "for i in $(seq 100); do [ -f \"${WORK_DIR}/serve.exit\" ] && exit 0; sleep 0.1; done; exit 1"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "traced serve daemon did not exit after shutdown")
endif()
file(READ ${WORK_DIR}/serve.exit daemon_exit)
if(NOT daemon_exit STREQUAL "30")
  message(FATAL_ERROR "traced serve daemon exited '${daemon_exit}', expected 30")
endif()
validate_trace(${WORK_DIR}/trace_serve.json)

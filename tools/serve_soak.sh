#!/usr/bin/env bash
# Serve soak: a fault-injected daemon serving rounds of concurrent clients,
# then a SIGTERM drain / restart / resume cycle. Passes only if
#   - every response body is byte-identical to the clean CLI reference,
#   - the daemon never dies uncleanly (every exit is 30, graceful drain),
#   - a journaled request interrupted by the drain resumes on the restarted
#     daemon to byte-identical merged output,
#   - the daemon's own {"op":"status"} accounting agrees with the soak: every
#     request completed, none shed or cancelled, not draining mid-soak.
# Also reports sustained service throughput (campaigns/sec) over the soak
# rounds — the wall-clock companion to BM_ServeThroughput.
#
#   tools/serve_soak.sh <byterobust binary> <scratch dir> [rounds]

set -u

CLI=$1
WORK=$2
ROUNDS=${3:-3}

rm -rf "$WORK"
mkdir -p "$WORK"

FAULTS="crash:0.2,throw:0.15,hang:0.5"
SOCK="$WORK/soak.sock"

fail() {
  echo "serve_soak: FAIL: $*" >&2
  [ -f "$WORK/serve.log" ] && sed 's/^/serve_soak: daemon: /' "$WORK/serve.log" >&2
  exit 1
}

start_daemon() { # $1: exit-code file
  local exit_file=$1
  (BYTEROBUST_HARNESS_FAULTS="$FAULTS" BYTEROBUST_SEED_RETRIES=8 \
   BYTEROBUST_SEED_TIMEOUT_S=0.5 \
   "$CLI" serve --socket "$SOCK" --workers 4 --jobs 4 \
       --pid-file "$WORK/serve.pid" >"$WORK/serve.log" 2>&1
   echo -n $? > "$exit_file") &
}

await_exit() { # $1: exit-code file
  local exit_file=$1
  for _ in $(seq 150); do
    [ -f "$exit_file" ] && break
    sleep 0.1
  done
  [ -f "$exit_file" ] || fail "daemon did not exit (no $exit_file)"
  local code
  code=$(cat "$exit_file")
  [ "$code" = "30" ] || fail "daemon exited $code, expected 30 (graceful drain)"
}

# Clean CLI references the fault-injected daemon must still reproduce.
"$CLI" campaign --scenario dense --seeds 6 --days 0.3 --stream \
    --out "$WORK/ref_campaign.json" >/dev/null || fail "reference campaign"
"$CLI" fleet --scenario fleet-mixed --seeds 4 --stream \
    --out "$WORK/ref_fleet.json" >/dev/null || fail "reference fleet"
"$CLI" campaign --scenario dense-month --seeds 24 --jobs 1 --stream \
    --out "$WORK/ref_resume.json" >/dev/null || fail "reference resume campaign"

start_daemon "$WORK/serve_1.exit"

CAMPAIGN_REQ='{"op":"campaign","scenario":"dense","seeds":6,"days":0.3,"jobs":4}'
FLEET_REQ='{"op":"fleet","scenario":"fleet-mixed","seeds":4,"jobs":4}'

soak_start=$(date +%s.%N)
for round in $(seq "$ROUNDS"); do
  pids=""
  for i in 1 2 3; do
    "$CLI" request --socket "$SOCK" --body "$CAMPAIGN_REQ" --wait-s 15 \
        --timeout-s 300 --out "$WORK/r${round}_c${i}.json" >/dev/null 2>&1 &
    pids="$pids $!"
  done
  "$CLI" request --socket "$SOCK" --body "$FLEET_REQ" --wait-s 15 \
      --timeout-s 300 --out "$WORK/r${round}_fleet.json" >/dev/null 2>&1 &
  pids="$pids $!"
  for p in $pids; do
    wait "$p" || fail "round $round: a concurrent client failed"
  done
  for i in 1 2 3; do
    cmp -s "$WORK/ref_campaign.json" "$WORK/r${round}_c${i}.json" ||
        fail "round $round client $i: campaign body not byte-identical"
  done
  cmp -s "$WORK/ref_fleet.json" "$WORK/r${round}_fleet.json" ||
      fail "round $round: fleet body not byte-identical"
  echo "serve_soak: round $round/$ROUNDS byte-stable"
done
soak_end=$(date +%s.%N)

# Throughput over the soak rounds: 4 campaign/fleet requests per round.
total_reqs=$((ROUNDS * 4))
awk -v n="$total_reqs" -v t0="$soak_start" -v t1="$soak_end" 'BEGIN {
  dt = t1 - t0
  if (dt <= 0) dt = 0.001
  printf "serve_soak: throughput %d requests in %.2fs (%.2f campaigns/sec)\n", n, dt, n / dt
}'

# The daemon's own accounting must agree with what the soak just did: every
# request admitted and completed, nothing shed or cancelled, latency histogram
# populated, and not draining.
status=$("$CLI" request --socket "$SOCK" --body '{"op":"status"}' --raw \
    --wait-s 5 --timeout-s 30 2>/dev/null) || fail "status request failed"
echo "$status" > "$WORK/status_soak.json"
case "$status" in
  *'"draining":false'*) ;;
  *) fail "status reports draining mid-soak: $status" ;;
esac
case "$status" in
  *"\"completed\":$total_reqs,"*) ;;
  *) fail "status completed != $total_reqs: $status" ;;
esac
case "$status" in
  *'"shed":0,'*) ;;
  *) fail "status reports sheds during the soak: $status" ;;
esac
case "$status" in
  *'"cancelled":0,'*) ;;
  *) fail "status reports cancels during the soak: $status" ;;
esac
case "$status" in
  *"\"latency_count\":$total_reqs,"*) ;;
  *) fail "status latency_count != $total_reqs: $status" ;;
esac
echo "serve_soak: status accounting consistent ($total_reqs completed, 0 shed, 0 cancelled)"

# SIGTERM drain mid-request: the journaled request is cancelled cooperatively
# (a partial response or, if the race finished first, a complete one) and the
# daemon exits 30.
"$CLI" request --socket "$SOCK" \
    --body "{\"op\":\"campaign\",\"scenario\":\"dense-month\",\"seeds\":24,\"jobs\":1,\"journal\":\"$WORK/soak.journal\"}" \
    --raw --timeout-s 300 >"$WORK/journaled.json" 2>/dev/null &
cpid=$!
sleep 0.5
kill -TERM "$(cat "$WORK/serve.pid")" || fail "could not signal daemon"
# The daemon keeps serving status while draining, so the drain must become
# visible as draining:true. Poll: the signal lands asynchronously (an early
# probe can still see draining:false), and the daemon may finish the drain
# and exit before any probe connects — both races resolve within the loop.
for _ in $(seq 50); do
  if drain_status=$("$CLI" request --socket "$SOCK" --body '{"op":"status"}' \
      --raw --wait-s 0 --timeout-s 10 2>/dev/null); then
    case "$drain_status" in
      *'"draining":true'*) echo "serve_soak: drain visible in status"; break ;;
    esac
    sleep 0.1
  else
    break  # daemon already drained and exited; await_exit checks the code
  fi
done
wait "$cpid"
client_rc=$?
[ "$client_rc" = "30" ] || [ "$client_rc" = "0" ] ||
    fail "journaled client exited $client_rc across the drain, expected 30 or 0"
await_exit "$WORK/serve_1.exit"
echo "serve_soak: SIGTERM drain clean (journaled client exit $client_rc)"

# Restart; the resumed request must merge to the straight-CLI bytes even with
# fault injection still active.
start_daemon "$WORK/serve_2.exit"
"$CLI" request --socket "$SOCK" \
    --body "{\"op\":\"campaign\",\"scenario\":\"dense-month\",\"seeds\":24,\"jobs\":1,\"resume\":\"$WORK/soak.journal\"}" \
    --wait-s 15 --timeout-s 300 --out "$WORK/resumed.json" >/dev/null 2>&1 ||
    fail "resume request failed"
cmp -s "$WORK/ref_resume.json" "$WORK/resumed.json" ||
    fail "resumed body not byte-identical to the straight CLI run"
"$CLI" request --socket "$SOCK" --body '{"op":"shutdown"}' --raw \
    --wait-s 5 --timeout-s 30 >/dev/null || fail "shutdown request failed"
await_exit "$WORK/serve_2.exit"

echo "serve_soak: PASS ($ROUNDS rounds, drain/restart/resume byte-identical)"

# ctest helper: `campaign --jobs 1` and `--jobs 8` must emit byte-identical
# JSON for the same scenario and base seed.
#
#   cmake -DCLI=<byterobust binary> -DWORK_DIR=<scratch dir> -P check_jobs_determinism.cmake

foreach(var CLI WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "${var} is required")
  endif()
endforeach()

file(MAKE_DIRECTORY ${WORK_DIR})

foreach(jobs 1 8)
  execute_process(
      COMMAND ${CLI} campaign --scenario gpu-fault --seeds 4 --days 0.2
              --jobs ${jobs} --out ${WORK_DIR}/campaign_jobs${jobs}.json
      OUTPUT_QUIET
      RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "campaign --jobs ${jobs} failed with ${rc}")
  endif()
endforeach()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
        ${WORK_DIR}/campaign_jobs1.json ${WORK_DIR}/campaign_jobs8.json
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR "campaign JSON differs between --jobs 1 and --jobs 8")
endif()

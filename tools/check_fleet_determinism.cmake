# ctest helper: the fleet runner must compose with the campaign machinery
# deterministically —
#   - `fleet --scenario fleet-mixed --seeds 8` must emit byte-identical JSON
#     at --jobs 1 and --jobs 8 (seeds map to fixed output slots, seed-ordered
#     merge), and byte-identical to the buffered reference path
#     (BYTEROBUST_STREAM_CAMPAIGN=0);
#   - --stream (incremental layout, aggregate trailing) must carry the exact
#     same runs and aggregate values, compared as parsed JSON when python3 is
#     available, with a structural fallback otherwise.
#
#   cmake -DCLI=<byterobust binary> -DWORK_DIR=<scratch dir> -P check_fleet_determinism.cmake

foreach(var CLI WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "${var} is required")
  endif()
endforeach()

file(MAKE_DIRECTORY ${WORK_DIR})

set(scenario "fleet;--scenario;fleet-mixed;--seeds;8;--days;0.3")

foreach(jobs 1 8)
  execute_process(
      COMMAND ${CLI} ${scenario} --jobs ${jobs} --out ${WORK_DIR}/fleet_jobs${jobs}.json
      OUTPUT_QUIET
      RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "fleet --jobs ${jobs} failed with ${rc}")
  endif()
endforeach()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
        ${WORK_DIR}/fleet_jobs1.json ${WORK_DIR}/fleet_jobs8.json
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR "fleet JSON differs between --jobs 1 and --jobs 8")
endif()

# Buffered reference path must match the default spill-streaming output.
execute_process(
    COMMAND ${CMAKE_COMMAND} -E env BYTEROBUST_STREAM_CAMPAIGN=0
        ${CLI} ${scenario} --out ${WORK_DIR}/fleet_buffered.json
    OUTPUT_QUIET
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "buffered fleet reference failed with ${rc}")
endif()
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
        ${WORK_DIR}/fleet_jobs1.json ${WORK_DIR}/fleet_buffered.json
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR "fleet JSON differs between spill-streaming and buffered paths")
endif()

# --stream: same content, incremental layout.
execute_process(
    COMMAND ${CLI} ${scenario} --jobs 2 --stream --out ${WORK_DIR}/fleet_stream.json
    OUTPUT_QUIET
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "fleet --stream failed with ${rc}")
endif()

find_program(PYTHON3 NAMES python3 python)
if(PYTHON3)
  execute_process(
      COMMAND ${PYTHON3} -c "
import json, sys
a = json.load(open(sys.argv[1]))
b = json.load(open(sys.argv[2]))
assert a['runs'] == b['runs'], 'runs differ between --stream and reference'
assert a['aggregate'] == b['aggregate'], 'aggregate differs between --stream and reference'
for k in ('tool', 'command', 'scenario', 'seeds', 'base_seed', 'days'):
    assert a[k] == b[k], 'header field %s differs' % k
" ${WORK_DIR}/fleet_stream.json ${WORK_DIR}/fleet_jobs1.json
      RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR "fleet --stream content differs from the reference layout")
  endif()
else()
  file(READ ${WORK_DIR}/fleet_stream.json direct)
  string(REGEX MATCHALL "\"num_jobs\":" job_fields "${direct}")
  list(LENGTH job_fields seed_count)
  if(NOT seed_count EQUAL 8)
    message(FATAL_ERROR "fleet --stream output holds ${seed_count} runs, expected 8")
  endif()
  string(FIND "${direct}" "\"aggregate\":" agg_pos)
  if(agg_pos EQUAL -1)
    message(FATAL_ERROR "fleet --stream output is missing the aggregate block")
  endif()
endif()

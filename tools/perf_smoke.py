#!/usr/bin/env python3
"""Perf-smoke gate: fail when hot-path microbenchmarks or memory regress.

Compares a fresh google-benchmark JSON report against the checked-in
baseline (bench/perf_baseline.json) and fails when any selected benchmark's
real_time exceeds the baseline by more than --max-ratio. Absolute numbers
vary across machines, so the gate is a coarse regression tripwire (default
2x), not a precise budget.

    perf_smoke.py current.json baseline.json [--max-ratio 2.0] [name ...]
    perf_smoke.py current.json baseline.json --tight BM_DenseCampaignSeed=1.5
    perf_smoke.py current.json baseline.json --cli build/tools/byterobust

--tight NAME=RATIO (repeatable) overrides --max-ratio for one benchmark:
use it where the coarse 2x tripwire is too loose — e.g. the disabled-path
observability overhead budget on the campaign hot loop, which must stay
within 1.5x of the pre-instrumentation baseline.

Benchmark selection, in priority order: names given on the command line; the
baseline's "gated" list (so the set of gated benchmarks is versioned next to
the numbers themselves); otherwise every benchmark present in both files.

With --cli, the baseline's RSS gates are also enforced: the given byterobust
binary runs each recorded streaming-campaign command ("rss_gates" list, or
the legacy single "rss_gate" object) and the child's peak RSS must stay under
that gate's max_rss_mb. This is what keeps campaign memory O(window) — an
accidental return to O(steps) metric growth or O(seeds) run buffering trips
it just like a speed regression. Gates must be ordered by ascending
max_rss_mb: ru_maxrss is a monotone high-water across children, so a larger
earlier peak would mask a later gate's measurement.

Stdlib-only, like every Python tool in CI — tools/ci_python_requirements.txt
is the shared (deliberately package-free) requirements file CI installs for
this script, the determinism lint, and the clang-tidy runner.
"""

import argparse
import json
import resource
import subprocess
import sys

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_report(path):
    """Returns ({name: real_time_ns}, full_json)."""
    with open(path) as f:
        data = json.load(f)
    times = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue  # skip aggregate rows (mean/median/stddev)
        unit = _UNIT_NS.get(bench.get("time_unit", "ns"))
        if unit is None:
            raise SystemExit(f"{path}: unknown time_unit in {bench['name']}")
        times[bench["name"]] = bench["real_time"] * unit
    return times, data


def check_rss_gate(cli, gate):
    """Runs the gated campaign command and checks the child's peak RSS."""
    cmd = [cli] + gate["args"]
    limit_mb = gate["max_rss_mb"]
    # ru_maxrss is KiB on Linux but bytes on macOS.
    rss_per_mb = 1024.0 * 1024.0 if sys.platform == "darwin" else 1024.0
    # ru_maxrss is a monotone high-water over all reaped children, so a prior
    # child bigger than the limit would mask the CLI's actual peak — refuse
    # to measure through that.
    before_mb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss / rss_per_mb
    if before_mb > limit_mb:
        print(f"rss gate: a prior subprocess already peaked at {before_mb:.1f} MB "
              f"(> limit {limit_mb:.1f} MB); measurement would be masked", file=sys.stderr)
        return False
    proc = subprocess.run(cmd, stdout=subprocess.DEVNULL)
    if proc.returncode != 0:
        print(f"rss gate: {' '.join(cmd)} exited {proc.returncode}", file=sys.stderr)
        return False
    peak_mb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss / rss_per_mb
    verdict = "OK" if peak_mb <= limit_mb else "REGRESSION"
    print(f"rss gate ({' '.join(gate['args'])}): peak {peak_mb:.1f} MB, "
          f"limit {limit_mb:.1f} MB [{verdict}]")
    return peak_mb <= limit_mb


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("names", nargs="*")
    parser.add_argument("--max-ratio", type=float, default=2.0)
    parser.add_argument("--tight", action="append", default=[], metavar="NAME=RATIO",
                        help="per-benchmark ratio tighter than --max-ratio (repeatable)")
    parser.add_argument("--cli", help="byterobust binary; enables the baseline's rss_gate")
    args = parser.parse_intermixed_args()

    tight = {}
    for spec in args.tight:
        name, sep, ratio = spec.rpartition("=")
        if not sep or not name:
            raise SystemExit(f"error: --tight expects NAME=RATIO, got {spec!r}")
        try:
            tight[name] = float(ratio)
        except ValueError:
            raise SystemExit(f"error: --tight ratio is not a number in {spec!r}")

    current, _ = load_report(args.current)
    baseline, baseline_data = load_report(args.baseline)
    gated = baseline_data.get("gated")
    names = args.names or gated or sorted(current.keys() & baseline.keys())

    failures = []
    for name in names:
        if name not in baseline:
            raise SystemExit(f"error: {name} missing from baseline {args.baseline}")
        if name not in current:
            raise SystemExit(f"error: {name} missing from current run {args.current}")
        ratio = current[name] / baseline[name]
        limit = tight.get(name, args.max_ratio)
        verdict = "OK" if ratio <= limit else "REGRESSION"
        print(f"{name}: baseline {baseline[name] / 1e6:.3f} ms, "
              f"current {current[name] / 1e6:.3f} ms, ratio {ratio:.2f}x "
              f"(limit {limit:.2f}x) [{verdict}]")
        if ratio > limit:
            failures.append(name)

    rss_gates = list(baseline_data.get("rss_gates") or [])
    legacy_gate = baseline_data.get("rss_gate")
    if legacy_gate:
        rss_gates.append(legacy_gate)
    # Ascending budgets regardless of baseline order: a larger earlier peak
    # would mask every smaller gate behind it (ru_maxrss is a high-water).
    rss_gates.sort(key=lambda gate: gate["max_rss_mb"])
    if args.cli:
        for i, gate in enumerate(rss_gates):
            if not check_rss_gate(args.cli, gate):
                failures.append(f"rss_gate[{i}]")

    if failures:
        print(f"perf smoke FAILED: {', '.join(failures)} regressed more than "
              f"the gated budget", file=sys.stderr)
        return 1
    print(f"perf smoke passed ({len(names)} benchmarks within {args.max_ratio:.1f}x"
          + (f", {len(rss_gates)} rss gate(s) ok" if args.cli and rss_gates else "") + ")")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Perf-smoke gate: fail when hot-path microbenchmarks regress.

Compares a fresh google-benchmark JSON report against the checked-in
baseline (bench/perf_baseline.json) and fails when any selected benchmark's
real_time exceeds the baseline by more than --max-ratio. Absolute numbers
vary across machines, so the gate is a coarse regression tripwire (default
2x), not a precise budget.

    perf_smoke.py current.json baseline.json [--max-ratio 2.0] [name ...]

Benchmark selection, in priority order: names given on the command line; the
baseline's "gated" list (so the set of gated benchmarks is versioned next to
the numbers themselves); otherwise every benchmark present in both files.
"""

import argparse
import json
import sys

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_report(path):
    """Returns ({name: real_time_ns}, gated_names_or_None)."""
    with open(path) as f:
        data = json.load(f)
    times = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue  # skip aggregate rows (mean/median/stddev)
        unit = _UNIT_NS.get(bench.get("time_unit", "ns"))
        if unit is None:
            raise SystemExit(f"{path}: unknown time_unit in {bench['name']}")
        times[bench["name"]] = bench["real_time"] * unit
    return times, data.get("gated")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("names", nargs="*")
    parser.add_argument("--max-ratio", type=float, default=2.0)
    args = parser.parse_intermixed_args()

    current, _ = load_report(args.current)
    baseline, gated = load_report(args.baseline)
    names = args.names or gated or sorted(current.keys() & baseline.keys())

    failures = []
    for name in names:
        if name not in baseline:
            raise SystemExit(f"error: {name} missing from baseline {args.baseline}")
        if name not in current:
            raise SystemExit(f"error: {name} missing from current run {args.current}")
        ratio = current[name] / baseline[name]
        verdict = "OK" if ratio <= args.max_ratio else "REGRESSION"
        print(f"{name}: baseline {baseline[name] / 1e6:.3f} ms, "
              f"current {current[name] / 1e6:.3f} ms, ratio {ratio:.2f}x [{verdict}]")
        if ratio > args.max_ratio:
            failures.append(name)

    if failures:
        print(f"perf smoke FAILED: {', '.join(failures)} regressed more than "
              f"{args.max_ratio:.1f}x", file=sys.stderr)
        return 1
    print(f"perf smoke passed ({len(names)} benchmarks within {args.max_ratio:.1f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

# ctest helper: the serve daemon's response bodies are a pure function of the
# request parameters. For a campaign and a fleet request, four concurrent
# clients against a daemon at --jobs 1 and at --jobs 8 must all receive bodies
# byte-identical to what the CLI's `campaign --stream` / `fleet --stream`
# prints for the same parameters. The daemon is shut down via {"op":"shutdown"}
# and must exit 30 (graceful drain).
#
#   cmake -DCLI=<byterobust binary> -DWORK_DIR=<scratch dir> -P check_serve_determinism.cmake

foreach(var CLI WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "${var} is required")
  endif()
endforeach()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

# CLI references (engine direct, --stream layout == serve body layout).
execute_process(
    COMMAND ${CLI} campaign --scenario gpu-fault --seeds 6 --stream
        --out ${WORK_DIR}/ref_campaign.json
    OUTPUT_QUIET RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "reference campaign failed: ${rc}")
endif()
execute_process(
    COMMAND ${CLI} fleet --scenario fleet-mixed --seeds 4 --stream
        --out ${WORK_DIR}/ref_fleet.json
    OUTPUT_QUIET RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "reference fleet failed: ${rc}")
endif()

set(campaign_req "{\"op\":\"campaign\",\"scenario\":\"gpu-fault\",\"seeds\":6,\"jobs\":8}")
set(fleet_req "{\"op\":\"fleet\",\"scenario\":\"fleet-mixed\",\"seeds\":4,\"jobs\":8}")

foreach(jobs 1 8)
  set(sock ${WORK_DIR}/serve_${jobs}.sock)
  execute_process(
      COMMAND bash -c "(\"${CLI}\" serve --socket \"${sock}\" --workers 4 --jobs ${jobs} </dev/null >\"${WORK_DIR}/serve_${jobs}.log\" 2>&1; echo -n $? > \"${WORK_DIR}/serve_${jobs}.exit\") </dev/null >/dev/null 2>&1 &"
      RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "could not launch serve daemon (--jobs ${jobs})")
  endif()

  # Four concurrent clients: 3x the campaign request + 1 fleet request. The
  # first client's --wait-s also covers daemon startup.
  execute_process(
      COMMAND bash -c "\
pids=; \
for i in 1 2 3; do \
  \"${CLI}\" request --socket \"${sock}\" --body '${campaign_req}' --wait-s 15 --timeout-s 300 --out \"${WORK_DIR}/campaign_${jobs}_$i.json\" >/dev/null & \
  pids=\"$pids $!\"; \
done; \
\"${CLI}\" request --socket \"${sock}\" --body '${fleet_req}' --wait-s 15 --timeout-s 300 --out \"${WORK_DIR}/fleet_${jobs}.json\" >/dev/null & \
pids=\"$pids $!\"; \
rc=0; for p in $pids; do wait $p || rc=1; done; exit $rc"
      RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "a concurrent serve client failed (--jobs ${jobs})")
  endif()

  foreach(i 1 2 3)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORK_DIR}/ref_campaign.json ${WORK_DIR}/campaign_${jobs}_${i}.json
        RESULT_VARIABLE diff)
    if(NOT diff EQUAL 0)
      message(FATAL_ERROR
          "serve campaign body (--jobs ${jobs}, client ${i}) is not byte-identical to the CLI")
    endif()
  endforeach()
  execute_process(
      COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/ref_fleet.json ${WORK_DIR}/fleet_${jobs}.json
      RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR
        "serve fleet body (--jobs ${jobs}) is not byte-identical to the CLI")
  endif()

  execute_process(
      COMMAND ${CLI} request --socket ${sock} --body "{\"op\":\"shutdown\"}" --raw
          --wait-s 5 --timeout-s 30
      OUTPUT_QUIET RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "shutdown request failed (--jobs ${jobs}): ${rc}")
  endif()
  # The daemon drains and records its exit code; give it a bounded window.
  execute_process(
      COMMAND bash -c "for i in $(seq 100); do [ -f \"${WORK_DIR}/serve_${jobs}.exit\" ] && exit 0; sleep 0.1; done; exit 1"
      RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "serve daemon (--jobs ${jobs}) did not exit after shutdown")
  endif()
  file(READ ${WORK_DIR}/serve_${jobs}.exit daemon_exit)
  if(NOT daemon_exit STREQUAL "30")
    message(FATAL_ERROR
        "serve daemon (--jobs ${jobs}) exited '${daemon_exit}', expected 30 (graceful drain)")
  endif()
endforeach()

# ctest helper: the fleet-contention scenario must exhibit measurable
# spare-pool contention — at least one preemption or queued claim across the
# campaign's per-job JSON (the PR 5 acceptance criterion).
#
#   cmake -DCLI=<byterobust binary> -DWORK_DIR=<scratch dir> -P check_fleet_contention.cmake

foreach(var CLI WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "${var} is required")
  endif()
endforeach()

file(MAKE_DIRECTORY ${WORK_DIR})

execute_process(
    COMMAND ${CLI} fleet --scenario fleet-contention --seeds 4
            --out ${WORK_DIR}/fleet_contention.json
    OUTPUT_QUIET
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "fleet-contention campaign failed with ${rc}")
endif()

find_program(PYTHON3 NAMES python3 python)
if(PYTHON3)
  execute_process(
      COMMAND ${PYTHON3} -c "
import json, sys
doc = json.load(open(sys.argv[1]))
contention = 0
for run in doc['runs']:
    for job in run['jobs']:
        spares = job['spares']
        contention += spares['preemptions_gained'] + spares['queued_claims']
assert contention >= 1, 'no preemption or queued claim across %d seeds' % len(doc['runs'])
print('fleet-contention: %d contention events' % contention)
" ${WORK_DIR}/fleet_contention.json
      RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "fleet-contention shows no spare-pool contention")
  endif()
else()
  # Structural fallback: the aggregate preemptions block must not be all-zero.
  file(READ ${WORK_DIR}/fleet_contention.json doc)
  string(REGEX MATCH
      "\"preemptions\": \\{\n      \"mean\": 0,\n      \"min\": 0,\n      \"max\": 0"
      zero_preemptions "${doc}")
  string(REGEX MATCH
      "\"queued_claims\": \\{\n      \"mean\": 0,\n      \"min\": 0,\n      \"max\": 0"
      zero_queued "${doc}")
  if(zero_preemptions AND zero_queued)
    message(FATAL_ERROR "fleet-contention shows no spare-pool contention")
  endif()
endif()

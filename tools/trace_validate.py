#!/usr/bin/env python3
"""Validate a byterobust Chrome trace_event JSON file (stdlib only).

Checks:
  - the file parses as a JSON array of event objects (a torn tail — the
    daemon was hard-killed mid-line — is repaired by dropping the partial
    final line and closing the array, and reported);
  - every event carries ph/ts/pid/tid (and a name for span phases);
  - B/E spans are balanced and properly nested per (pid, tid) track, with
    matching names;
  - timestamps are monotone non-decreasing per track for B/E events
    ("X" complete events are emitted retroactively and "C"/"M"/"i" events
    only need ts >= 0);
  - "X" events carry a non-negative dur.

Exit 0 when the trace is valid (complete, or an acceptably torn tail with
--allow-torn); exit 1 otherwise, with one diagnostic per problem.

Usage: trace_validate.py [--allow-torn] [--strict] TRACE...
  --allow-torn   accept a torn-tail file when the intact prefix validates
                 (unclosed B spans at EOF are then also accepted)
  --strict       require a properly closed file (default unless --allow-torn)
"""

import json
import sys


def repair_torn(text):
    """Drop a partial trailing line and close the array. Returns (text, torn)."""
    stripped = text.rstrip()
    if stripped.endswith("]"):
        return text, False
    # Keep only complete lines, then strip the trailing comma of the last
    # event and close the array the writer never got to close.
    lines = text.split("\n")
    if lines and not text.endswith("\n"):
        lines = lines[:-1]  # partial final line: torn mid-write
    while lines and lines[-1].strip() == "":
        lines = lines[:-1]
    if lines and lines[-1].rstrip().endswith(","):
        lines[-1] = lines[-1].rstrip()[:-1]
    return "\n".join(lines) + "\n]\n", True


def validate(path, allow_torn):
    problems = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        return ["%s: cannot read: %s" % (path, e)]

    text, torn = repair_torn(text)
    if torn and not allow_torn:
        problems.append("%s: torn tail (file does not end with ']'); "
                        "pass --allow-torn if a hard kill is expected" % path)
    try:
        events = json.loads(text)
    except ValueError as e:
        problems.append("%s: not valid JSON%s: %s" %
                        (path, " after torn-tail repair" if torn else "", e))
        return problems
    if not isinstance(events, list):
        return ["%s: top level is not an array" % path]

    span_phases = ("B", "E", "X", "i")
    stacks = {}     # (pid, tid) -> [names of open B spans]
    last_ts = {}    # (pid, tid) -> last B/E timestamp
    for n, ev in enumerate(events):
        where = "%s: event %d" % (path, n)
        if not isinstance(ev, dict):
            problems.append("%s: not an object" % where)
            continue
        ph = ev.get("ph")
        if not isinstance(ph, str):
            problems.append("%s: missing ph" % where)
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append("%s: bad ts %r" % (where, ts))
            continue
        if not isinstance(ev.get("pid"), int) or not isinstance(ev.get("tid"), int):
            problems.append("%s: missing pid/tid" % where)
            continue
        name = ev.get("name")
        if ph in span_phases and not isinstance(name, str):
            problems.append("%s: %s event without a name" % (where, ph))
            continue
        track = (ev["pid"], ev["tid"])
        if ph in ("B", "E"):
            if ts < last_ts.get(track, 0):
                problems.append("%s: ts %s goes backwards on track %s" %
                                (where, ts, track))
            last_ts[track] = ts
            if ph == "B":
                stacks.setdefault(track, []).append(name)
            else:
                stack = stacks.get(track) or []
                if not stack:
                    problems.append("%s: E '%s' with no open span on track %s" %
                                    (where, name, track))
                elif stack[-1] != name:
                    problems.append(
                        "%s: E '%s' does not match open B '%s' on track %s" %
                        (where, name, stack[-1], track))
                else:
                    stack.pop()
        elif ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append("%s: X event with bad dur %r" % (where, dur))

    for track, stack in sorted(stacks.items()):
        if stack and not (torn and allow_torn):
            problems.append("%s: unclosed span(s) %s on track %s at EOF" %
                            (path, stack, track))

    if not problems:
        print("%s: OK (%d events%s)" %
              (path, len(events), ", torn tail repaired" if torn else ""))
    return problems


def main(argv):
    allow_torn = "--allow-torn" in argv
    args = [a for a in argv if a not in ("--allow-torn", "--strict")]
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    problems = []
    for path in args:
        problems.extend(validate(path, allow_torn))
    for p in problems:
        print("error: %s" % p, file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

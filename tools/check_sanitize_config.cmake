# Unit-level check of cmake/SanitizeFlags.cmake (ctest
# `cmake_sanitize_exclusion`): drives the module's script-mode hook through
# accept and reject cases, asserting that BYTEROBUST_SANITIZE=thread combined
# with ambient ASan flags (and vice versa) fails the configure with the
# mutual-exclusion message, while each mode alone resolves cleanly.
#
#   cmake -DSANITIZE_MODULE=<path to cmake/SanitizeFlags.cmake> \
#         -P tools/check_sanitize_config.cmake

if(NOT DEFINED SANITIZE_MODULE)
  message(FATAL_ERROR "pass -DSANITIZE_MODULE=<path to cmake/SanitizeFlags.cmake>")
endif()

# resolve_case(<mode> <ambient-flags> <expect>) where <expect> is OK or FAIL;
# for FAIL, <expect_message> must appear in the error output.
function(resolve_case mode ambient expect expect_message)
  execute_process(
      COMMAND ${CMAKE_COMMAND}
          "-DBR_SANITIZE_MODE=${mode}"
          "-DBR_AMBIENT_FLAGS=${ambient}"
          -P "${SANITIZE_MODULE}"
      RESULT_VARIABLE rc
      OUTPUT_VARIABLE out
      ERROR_VARIABLE err)
  if(expect STREQUAL "OK")
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
          "mode='${mode}' ambient='${ambient}' should resolve cleanly but "
          "failed (rc=${rc}):\n${err}")
    endif()
    if(NOT "${out}${err}" MATCHES "${expect_message}")
      message(FATAL_ERROR
          "mode='${mode}' ambient='${ambient}' resolved but did not report "
          "'${expect_message}':\n${out}${err}")
    endif()
  else()
    if(rc EQUAL 0)
      message(FATAL_ERROR
          "mode='${mode}' ambient='${ambient}' must FAIL the configure but "
          "succeeded:\n${out}")
    endif()
    if(NOT err MATCHES "${expect_message}")
      message(FATAL_ERROR
          "mode='${mode}' ambient='${ambient}' failed, but without the "
          "expected message '${expect_message}':\n${err}")
    endif()
  endif()
endfunction()

# The headline case: TSan mode + ambient ASan flags is rejected with a clear
# mutual-exclusion message.
resolve_case(thread "-O2 -fsanitize=address" FAIL "mutually exclusive")
resolve_case(thread "-fsanitize=undefined,address" FAIL "mutually exclusive")
# The mirror image: address mode + ambient TSan flags.
resolve_case(address "-fsanitize=thread" FAIL "mutually exclusive")
resolve_case(ON "-fsanitize=thread" FAIL "mutually exclusive")
# Unknown modes are rejected, not silently ignored.
resolve_case(bogus "" FAIL "not a recognized sanitizer mode")
# Each mode alone resolves to the right flag set.
resolve_case(thread "-O2" OK "-fsanitize=thread")
resolve_case(thread "" OK "mode=thread")
resolve_case(address "" OK "-fsanitize=address,undefined")
resolve_case(ON "" OK "mode=address")
resolve_case(OFF "" OK "mode=off")

message(STATUS "cmake_sanitize_exclusion: all sanitize-mode cases passed")

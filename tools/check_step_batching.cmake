# ctest helper: batched stepping (the default) and the per-step reference
# path (BYTEROBUST_STEP_BATCHING=0) must emit byte-identical campaign JSON
# for the same scenario and seeds. Two scenarios are compared: a full
# production-mix campaign (dense) and a targeted single-symptom campaign
# (gpu-fault), covering both campaign engines.
#
#   cmake -DCLI=<byterobust binary> -DWORK_DIR=<scratch dir> -P check_step_batching.cmake

foreach(var CLI WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "${var} is required")
  endif()
endforeach()

file(MAKE_DIRECTORY ${WORK_DIR})

set(scenario_dense "campaign;--scenario;dense;--seeds;2;--days;0.5")
set(scenario_targeted "campaign;--scenario;gpu-fault;--seeds;4;--days;0.2")

foreach(name dense targeted)
  foreach(batching 0 1)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E env BYTEROBUST_STEP_BATCHING=${batching}
            ${CLI} ${scenario_${name}}
            --out ${WORK_DIR}/batch_${name}_${batching}.json
        OUTPUT_QUIET
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR "${name} campaign with STEP_BATCHING=${batching} failed: ${rc}")
    endif()
  endforeach()
  execute_process(
      COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/batch_${name}_0.json ${WORK_DIR}/batch_${name}_1.json
      RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR
        "${name} campaign JSON differs between batched and per-step stepping")
  endif()
endforeach()

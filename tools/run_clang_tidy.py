#!/usr/bin/env python3
"""Run clang-tidy over the project's compile_commands.json and diff the
warning set against the checked-in baseline (tools/clang_tidy_baseline.txt).

The baseline is empty — the tree is expected to hold zero clang-tidy
warnings under .clang-tidy's check set — and exists as a file so that any
future, deliberately accepted exception is a reviewed, versioned change
rather than a silent accumulation.

    run_clang_tidy.py [--build-dir build] [--jobs N] [--require] [files...]

Behaviour:
  * Finds clang-tidy (plain or versioned, newest first). Without --require a
    missing binary is a SKIP (exit 0) so the tier-1 ctest run stays green on
    GCC-only machines; the dedicated CI job passes --require.
  * Needs CMAKE_EXPORT_COMPILE_COMMANDS (on by default in CMakeLists.txt).
  * Runs over every src/ and tools/ translation unit in the compile database
    (or just the files given), normalizes diagnostics to
    "relative/path:line: warning-id", and fails on any diagnostic not in the
    baseline. Stale baseline lines (matching nothing) also fail, so the
    baseline can only shrink.

Stdlib-only (see tools/ci_python_requirements.txt).
"""

import argparse
import json
import multiprocessing
import os
import re
import shutil
import subprocess
import sys
from multiprocessing.pool import ThreadPool

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE = os.path.join(REPO_ROOT, "tools", "clang_tidy_baseline.txt")

# Newest first; plain name last resort (its version is unknown).
TIDY_CANDIDATES = [f"clang-tidy-{v}" for v in range(21, 13, -1)] + ["clang-tidy"]

DIAG_RE = re.compile(
    r"^(?P<path>[^\s:][^:]*):(?P<line>\d+):\d+:\s+(?:warning|error):\s+"
    r".*\[(?P<check>[\w.,-]+)\]\s*$"
)


def find_clang_tidy():
    for name in TIDY_CANDIDATES:
        path = shutil.which(name)
        if path:
            return path
    return None


def load_compile_db(build_dir):
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        sys.exit(f"error: {db_path} not found — configure with CMake first "
                 "(CMAKE_EXPORT_COMPILE_COMMANDS is on by default)")
    with open(db_path, encoding="utf-8") as f:
        return json.load(f), db_path


def project_sources(db, only=None):
    """src/ and tools/ TUs from the compile database, repo-relative."""
    wanted = set()
    for entry in db:
        path = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"]))
        rel = os.path.relpath(path, REPO_ROOT).replace(os.sep, "/")
        if rel.startswith(("src/", "tools/")):
            wanted.add(rel)
    if only:
        requested = {o.replace(os.sep, "/") for o in only}
        missing = requested - wanted
        if missing:
            sys.exit(f"error: not in compile database: {', '.join(sorted(missing))}")
        wanted = requested
    return sorted(wanted)


def run_tidy(tidy, build_dir, files, jobs):
    """Returns the normalized set of diagnostics across all files."""
    diagnostics = set()

    def tidy_one(rel):
        proc = subprocess.run(
            [tidy, "-p", build_dir, "--quiet", rel],
            cwd=REPO_ROOT, capture_output=True, text=True, check=False)
        found = set()
        for line in proc.stdout.splitlines():
            m = DIAG_RE.match(line)
            if not m:
                continue
            path = os.path.relpath(os.path.join(REPO_ROOT, m.group("path")),
                                   REPO_ROOT).replace(os.sep, "/")
            if not path.startswith(("src/", "tools/")):
                continue  # system/third-party headers are not ours to fix
            found.add(f"{path}:{m.group('line')}: {m.group('check')}")
        # clang-tidy exits non-zero with WarningsAsErrors; only a crash or
        # config error (nothing parseable, stderr output) is fatal.
        if proc.returncode != 0 and not found and "error" in proc.stderr.lower():
            sys.stderr.write(proc.stderr)
            sys.exit(f"error: clang-tidy failed on {rel}")
        return found

    with ThreadPool(jobs) as pool:
        for found in pool.map(tidy_one, files):
            diagnostics |= found
    return diagnostics


def load_baseline():
    accepted = set()
    if os.path.exists(BASELINE):
        with open(BASELINE, encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if line and not line.startswith("#"):
                    accepted.add(line)
    return accepted


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--build-dir", default=os.path.join(REPO_ROOT, "build"))
    parser.add_argument("--jobs", type=int, default=max(1, multiprocessing.cpu_count()))
    parser.add_argument("--require", action="store_true",
                        help="fail (exit 1) when clang-tidy is not installed "
                             "instead of skipping")
    parser.add_argument("files", nargs="*",
                        help="restrict to these repo-relative sources")
    args = parser.parse_args(argv)

    tidy = find_clang_tidy()
    if tidy is None:
        message = ("run_clang_tidy: clang-tidy not found "
                   f"(tried {', '.join(TIDY_CANDIDATES)})")
        if args.require:
            print(f"{message} and --require was given", file=sys.stderr)
            return 1
        print(f"{message}; SKIP — the clang-tidy CI job runs this gate")
        return 0

    db, _ = load_compile_db(args.build_dir)
    files = project_sources(db, args.files)
    if not files:
        sys.exit("error: no src/ or tools/ sources in the compile database")

    diagnostics = run_tidy(tidy, args.build_dir, files, args.jobs)
    accepted = load_baseline()

    new = sorted(diagnostics - accepted)
    stale = sorted(accepted - diagnostics)
    for diag in new:
        print(f"NEW: {diag}")
    for line in stale:
        print(f"STALE baseline line (fix no longer needed — remove it): {line}")
    if new or stale:
        print(f"run_clang_tidy: {len(new)} new diagnostic(s), {len(stale)} "
              f"stale baseline line(s) over {len(files)} files "
              f"[{os.path.basename(tidy)}]")
        return 1
    print(f"run_clang_tidy: clean ({len(files)} files, "
          f"{len(accepted)} baselined) [{os.path.basename(tidy)}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())

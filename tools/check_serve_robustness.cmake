# ctest helper: serve robustness end-to-end, through real processes and a
# real socket.
#
#  1. Admission control: on a 1-worker / 0-queue daemon whose seeds are pinned
#     by an injected cooperative hang, a per-request seed-cap violation is
#     rejected (exit 2), and a probe while the slot is occupied is load-shed
#     (exit 75) while the occupying request is unaffected.
#  2. Deadlines: a request whose deadline_s expires mid-campaign returns
#     exit 30 with a valid partial document.
#  3. Graceful drain + resume: SIGTERM mid-request drains the daemon (exit 30),
#     the journaled request's partial response is valid, and a restarted
#     daemon resuming that journal produces output byte-identical to a
#     straight CLI run.
#
#   cmake -DCLI=<byterobust binary> -DWORK_DIR=<scratch dir> -P check_serve_robustness.cmake

foreach(var CLI WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "${var} is required")
  endif()
endforeach()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

# ---------------------------------------------------------------------------
# 1. Admission control under a pinned worker.
# ---------------------------------------------------------------------------
set(sock_a ${WORK_DIR}/serve_a.sock)
# hang:1.0 pins every seed until the 5s watchdog; retries=0 quarantines it.
# The occupier therefore holds the only in-system slot for ~5s — a stable
# window to probe admission — and then completes as a quarantined response.
execute_process(
    COMMAND bash -c "(BYTEROBUST_HARNESS_FAULTS='hang:1.0' BYTEROBUST_SEED_TIMEOUT_S=5 BYTEROBUST_SEED_RETRIES=0 \"${CLI}\" serve --socket \"${sock_a}\" --workers 1 --jobs 1 --max-queue 0 --max-seeds 8 </dev/null >\"${WORK_DIR}/serve_a.log\" 2>&1; echo -n $? > \"${WORK_DIR}/serve_a.exit\") </dev/null >/dev/null 2>&1 &"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "could not launch admission daemon")
endif()

execute_process(
    COMMAND ${CLI} request --socket ${sock_a}
        --body "{\"op\":\"campaign\",\"scenario\":\"quickstart\",\"seeds\":64}"
        --raw --wait-s 15 --timeout-s 30
    OUTPUT_QUIET ERROR_QUIET RESULT_VARIABLE rc)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "seed-cap violation exited ${rc}, expected 2 (rejected)")
endif()

execute_process(
    COMMAND bash -c "\
\"${CLI}\" request --socket \"${sock_a}\" --body '{\"op\":\"campaign\",\"scenario\":\"quickstart\",\"seeds\":1}' --raw --timeout-s 60 >\"${WORK_DIR}/occupier.json\" 2>/dev/null & \
opid=$!; \
for i in $(seq 100); do \
  st=$(\"${CLI}\" request --socket \"${sock_a}\" --body '{\"op\":\"status\"}' --raw --timeout-s 30 2>/dev/null); \
  case \"$st\" in *'\"active_requests\":1'*) break;; esac; \
  sleep 0.05; \
done; \
\"${CLI}\" request --socket \"${sock_a}\" --body '{\"op\":\"campaign\",\"scenario\":\"quickstart\",\"seeds\":1}' --raw >\"${WORK_DIR}/shed.json\" 2>/dev/null; \
shed_rc=$?; \
wait $opid; occ_rc=$?; \
echo \"shed_rc=$shed_rc occ_rc=$occ_rc\" > \"${WORK_DIR}/admission.txt\"; \
[ $shed_rc -eq 75 ] && [ $occ_rc -eq 20 ]"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  file(READ ${WORK_DIR}/admission.txt admission)
  message(FATAL_ERROR
      "admission check failed (want shed_rc=75 occ_rc=20): ${admission}")
endif()
file(READ ${WORK_DIR}/shed.json shed_response)
if(NOT shed_response MATCHES "request queue is full")
  message(FATAL_ERROR "shed response lacks the structured reason: ${shed_response}")
endif()
file(READ ${WORK_DIR}/occupier.json occupier_response)
if(NOT occupier_response MATCHES "failed_runs")
  message(FATAL_ERROR
      "occupier (quarantined) response lacks failed_runs: ${occupier_response}")
endif()

execute_process(
    COMMAND ${CLI} request --socket ${sock_a} --body "{\"op\":\"shutdown\"}" --raw
        --wait-s 5 --timeout-s 30
    OUTPUT_QUIET RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "admission daemon shutdown failed: ${rc}")
endif()

# ---------------------------------------------------------------------------
# 2 + 3. Deadlines, SIGTERM drain, journal resume.
# ---------------------------------------------------------------------------
set(sock_b ${WORK_DIR}/serve_b.sock)
set(journal ${WORK_DIR}/request.journal)
execute_process(
    COMMAND bash -c "(\"${CLI}\" serve --socket \"${sock_b}\" --workers 1 --jobs 1 --pid-file \"${WORK_DIR}/serve_b.pid\" </dev/null >\"${WORK_DIR}/serve_b.log\" 2>&1; echo -n $? > \"${WORK_DIR}/serve_b.exit\") </dev/null >/dev/null 2>&1 &"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "could not launch drain daemon")
endif()

execute_process(
    COMMAND ${CLI} request --socket ${sock_b}
        --body "{\"op\":\"campaign\",\"scenario\":\"dense-month\",\"seeds\":64,\"deadline_s\":0.3}"
        --wait-s 15 --timeout-s 120 --out ${WORK_DIR}/deadline.json
    OUTPUT_QUIET ERROR_QUIET RESULT_VARIABLE rc)
if(NOT rc EQUAL 30)
  message(FATAL_ERROR "deadline request exited ${rc}, expected 30 (interrupted)")
endif()
file(READ ${WORK_DIR}/deadline.json deadline_body)
if(NOT deadline_body MATCHES "\"runs\"" OR NOT deadline_body MATCHES "\"aggregate\"")
  message(FATAL_ERROR "deadline partial document is not a valid campaign doc")
endif()

# Journaled request, SIGTERM mid-flight. Whether the kill lands before, during
# or after the request, the daemon must exit 30 and the later resume must
# merge to byte-identical output.
execute_process(
    COMMAND bash -c "\
\"${CLI}\" request --socket \"${sock_b}\" --body '{\"op\":\"campaign\",\"scenario\":\"dense-month\",\"seeds\":24,\"jobs\":1,\"journal\":\"${journal}\"}' --raw --timeout-s 120 >\"${WORK_DIR}/journaled.json\" 2>/dev/null & \
cpid=$!; \
sleep 0.4; \
kill -TERM $(cat \"${WORK_DIR}/serve_b.pid\"); \
wait $cpid; client_rc=$?; \
echo \"client_rc=$client_rc\" > \"${WORK_DIR}/drain.txt\"; \
[ $client_rc -eq 30 ] || [ $client_rc -eq 0 ]"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  file(READ ${WORK_DIR}/drain.txt drain)
  message(FATAL_ERROR "journaled client failed across the drain: ${drain}")
endif()
execute_process(
    COMMAND bash -c "for i in $(seq 100); do [ -f \"${WORK_DIR}/serve_b.exit\" ] && exit 0; sleep 0.1; done; exit 1"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "drain daemon did not exit after SIGTERM")
endif()
file(READ ${WORK_DIR}/serve_b.exit daemon_exit)
if(NOT daemon_exit STREQUAL "30")
  message(FATAL_ERROR "SIGTERM'd daemon exited '${daemon_exit}', expected 30")
endif()

# Restarted daemon resumes the journal; the merged body must be byte-identical
# to a straight CLI run of the same campaign.
execute_process(
    COMMAND ${CLI} campaign --scenario dense-month --seeds 24 --jobs 1 --stream
        --out ${WORK_DIR}/ref_resume.json
    OUTPUT_QUIET RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "resume reference campaign failed: ${rc}")
endif()
set(sock_c ${WORK_DIR}/serve_c.sock)
execute_process(
    COMMAND bash -c "(\"${CLI}\" serve --socket \"${sock_c}\" --workers 1 --jobs 1 </dev/null >\"${WORK_DIR}/serve_c.log\" 2>&1; echo -n $? > \"${WORK_DIR}/serve_c.exit\") </dev/null >/dev/null 2>&1 &"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "could not launch resume daemon")
endif()
execute_process(
    COMMAND ${CLI} request --socket ${sock_c}
        --body "{\"op\":\"campaign\",\"scenario\":\"dense-month\",\"seeds\":24,\"jobs\":1,\"resume\":\"${journal}\"}"
        --wait-s 15 --timeout-s 300 --out ${WORK_DIR}/resumed.json
    OUTPUT_QUIET RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "resume request exited ${rc}, expected 0")
endif()
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
        ${WORK_DIR}/ref_resume.json ${WORK_DIR}/resumed.json
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
      "resumed serve body is not byte-identical to the straight CLI run")
endif()
execute_process(
    COMMAND ${CLI} request --socket ${sock_c} --body "{\"op\":\"shutdown\"}" --raw
        --wait-s 5 --timeout-s 30
    OUTPUT_QUIET RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "resume daemon shutdown failed: ${rc}")
endif()

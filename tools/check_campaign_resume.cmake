# ctest helper: an interrupted, journalled campaign must resume to output
# byte-identical with an uninterrupted run — across every output path:
#   1. a --journal run is itself byte-identical to a plain run (the journal
#      never perturbs campaign JSON);
#   2. a run interrupted after 2 committed seeds (stop_after harness fault, the
#      deterministic stand-in for SIGINT) exits with the interrupted code (30)
#      and leaves a resumable journal;
#   3. resuming that journal — at --jobs 1, --jobs 8, and under --stream —
#      completes with exit 0 and byte-identical merged output (the --stream
#      resume is compared against a straight --stream run, since --stream uses
#      the incremental document layout).
#
#   cmake -DCLI=<byterobust binary> -DWORK_DIR=<scratch dir> -P check_campaign_resume.cmake

foreach(var CLI WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "${var} is required")
  endif()
endforeach()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

set(scenario "campaign;--scenario;gpu-fault;--seeds;6;--days;0.2;--seed;42")

# References: plain (spill-streaming default) and --stream layouts.
execute_process(
    COMMAND ${CLI} ${scenario} --out ${WORK_DIR}/ref_default.json
    OUTPUT_QUIET
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "reference campaign failed: ${rc}")
endif()
execute_process(
    COMMAND ${CLI} ${scenario} --stream --out ${WORK_DIR}/ref_stream.json
    OUTPUT_QUIET
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "reference --stream campaign failed: ${rc}")
endif()

# A journalled (but uninterrupted) run must not perturb output bytes.
execute_process(
    COMMAND ${CLI} ${scenario} --journal ${WORK_DIR}/full.journal
        --out ${WORK_DIR}/journalled.json
    OUTPUT_QUIET
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "journalled campaign failed: ${rc}")
endif()
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
        ${WORK_DIR}/ref_default.json ${WORK_DIR}/journalled.json
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR "--journal changed campaign output bytes")
endif()

# Interrupt a journalled run after 2 committed seeds; expect the distinct
# interrupted exit code (30) and a journal holding the committed prefix.
execute_process(
    COMMAND ${CMAKE_COMMAND} -E env BYTEROBUST_HARNESS_FAULTS=stop_after:2
        ${CLI} ${scenario} --jobs 1 --journal ${WORK_DIR}/partial.journal
        --out ${WORK_DIR}/interrupted.json
    OUTPUT_QUIET
    ERROR_QUIET
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 30)
  message(FATAL_ERROR "interrupted campaign exited ${rc}, expected 30")
endif()

# Resume the same partial journal three ways. Each resume works on its own
# copy: completing a resume completes the journal, and we want every variant
# to start from the interrupted state.
foreach(mode jobs1 jobs8 stream)
  configure_file(${WORK_DIR}/partial.journal ${WORK_DIR}/resume_${mode}.journal COPYONLY)
endforeach()

foreach(jobs 1 8)
  execute_process(
      COMMAND ${CLI} ${scenario} --jobs ${jobs}
          --resume ${WORK_DIR}/resume_jobs${jobs}.journal
          --out ${WORK_DIR}/resumed_jobs${jobs}.json
      OUTPUT_QUIET
      RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "resume (--jobs ${jobs}) failed: ${rc}")
  endif()
  execute_process(
      COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/ref_default.json ${WORK_DIR}/resumed_jobs${jobs}.json
      RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR
        "resumed campaign (--jobs ${jobs}) is not byte-identical to the reference")
  endif()
endforeach()

execute_process(
    COMMAND ${CLI} ${scenario} --jobs 8 --stream
        --resume ${WORK_DIR}/resume_stream.journal
        --out ${WORK_DIR}/resumed_stream.json
    OUTPUT_QUIET
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "resume (--stream) failed: ${rc}")
endif()
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
        ${WORK_DIR}/ref_stream.json ${WORK_DIR}/resumed_stream.json
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
      "resumed --stream campaign is not byte-identical to the --stream reference")
endif()

# A completed journal resumes to the same bytes again without re-running seeds.
execute_process(
    COMMAND ${CLI} ${scenario} --resume ${WORK_DIR}/resume_jobs1.journal
        --out ${WORK_DIR}/resumed_again.json
    OUTPUT_QUIET
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "full-resume of a completed journal failed: ${rc}")
endif()
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
        ${WORK_DIR}/ref_default.json ${WORK_DIR}/resumed_again.json
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR "full-resume output is not byte-identical to the reference")
endif()

# Identity mismatch must be rejected as a setup error (exit 2), not silently
# merged into the wrong campaign.
execute_process(
    COMMAND ${CLI} campaign --scenario gpu-fault --seeds 7 --days 0.2 --seed 42
        --resume ${WORK_DIR}/resume_jobs8.journal
        --out ${WORK_DIR}/mismatch.json
    OUTPUT_QUIET
    ERROR_QUIET
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR
      "resume with a mismatched campaign identity exited ${rc}, expected 2")
endif()

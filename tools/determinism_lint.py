#!/usr/bin/env python3
"""Determinism lint: static checks for nondeterminism hazards in C++ sources.

Every result this repo ships rests on campaign JSON being byte-identical
across --jobs 1/8, --stream, and every env-pinned fast path. The ctest
equivalence gates catch regressions after the fact on the seeds they run;
this lint rejects the classic *sources* of nondeterminism before they land:

  BR-UNORDERED-OUTPUT   iteration over std::unordered_map/unordered_set in a
                        function reachable from JSON/report rendering or
                        aggregate folding (bucket order is
                        implementation-defined and seed-dependent)
  BR-WALL-CLOCK         wall-clock reads (std::chrono::*_clock::now, time(),
                        clock(), gettimeofday, ...) outside allowlisted
                        wall-clock shims — simulated time only
  BR-UNSEEDED-RNG       std::random_device, rand()/srand(), drand48():
                        nondeterministic or hidden-global-state RNG (use
                        src/common/rng.h, seeded explicitly)
  BR-POINTER-ORDER      pointer values used as ordering or hash keys
                        (std::hash<T*>, pointer-to-integer casts, std::sort
                        of a pointer container without a comparator): heap
                        addresses change run to run under ASLR
  BR-FLOAT-ORDER        accumulation-order hazards for floats: std::reduce /
                        std::transform_reduce, std::execution parallel
                        policies, std::accumulate over an unordered container

The checker is deliberately "AST-lite": comment/string-stripped sources,
bracket-matched template types, a regex-extracted function table and a
name-matched call graph. It overapproximates (e.g. all overloads of a name
are merged), so genuine false positives are suppressed via the allowlist —
each entry carries a written justification:

    tools/determinism_lint_allow.txt
    RULE-ID | path-glob | line-substring-or-* | justification

Stale entries (matching nothing) and entries without a justification fail
the lint, so the allowlist can only shrink to exactly what is justified.

Usage:
    determinism_lint.py [--root DIR] [--allowlist FILE] [paths...]

Default paths: src tools (files: .h .hpp .cc .cpp). Exit codes: 0 clean,
1 findings (or stale/invalid allowlist entries), 2 usage errors.

Runs as ctest `lint_determinism`; tests/lint_selftest.py proves each rule
fires on its fixture in tests/lint_fixtures/. Stdlib-only (see
tools/ci_python_requirements.txt).
"""

import argparse
import fnmatch
import os
import re
import sys

CXX_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp", ".cxx")

# Functions whose (unqualified) name marks them as producing externally
# visible output or folding aggregates: the seeds of the reachability pass.
OUTPUT_SEED_NAME = re.compile(
    r"(Json|Render|Write|Emit|Report|Print|Dump|Serializ|Aggregate|Fold|"
    r"Summar|ToString|Key\b)"
)
# Files whose whole content is output-adjacent (every function is a seed).
OUTPUT_SEED_FILE = re.compile(r"(report|json|writer|_cli|render)", re.IGNORECASE)

UNORDERED_DECL = re.compile(r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<")
PTR_CONTAINER_DECL = re.compile(
    r"\bstd\s*::\s*(?:vector|array|deque)\s*<[^<>;()]*\*[^<>;()]*>\s*(?:&\s*)?"
    r"(?P<name>[A-Za-z_]\w*)\s*[;({=,)]"
)

WALL_CLOCK = re.compile(
    r"\bstd\s*::\s*chrono\s*::\s*(?:steady_clock|system_clock|high_resolution_clock)"
    r"\s*::\s*now\b"
    r"|(?<![\w.:>])(?:time|clock)\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
    r"|\b(?:gettimeofday|clock_gettime|localtime(?:_r)?|gmtime(?:_r)?|mktime)\s*\("
)
UNSEEDED_RNG = re.compile(
    # Seeding calls match regardless of how the argument is spelled —
    # srand(seed) still routes everything through hidden global state.
    r"\bstd\s*::\s*random_device\b"
    r"|(?<![\w.:>])(?:srand|srand48|srandom|seed48)\s*\("
    r"|(?<![\w.:>])(?:rand|drand48|lrand48|mrand48|random)\s*\(\s*\)"
)
POINTER_HASH = re.compile(
    r"\bstd\s*::\s*hash\s*<[^<>;]*\*\s*(?:const\s*)?>"
    r"|\breinterpret_cast\s*<\s*(?:std\s*::\s*)?(?:size_t|uintptr_t|intptr_t)\s*>\s*\("
)
FLOAT_ORDER = re.compile(
    r"\bstd\s*::\s*(?:transform_)?reduce\s*\("
    r"|\bstd\s*::\s*execution\s*::\s*(?:par\b|par_unseq\b|unseq\b)"
)
RANGE_FOR = re.compile(
    r"\bfor\s*\(\s*[^;()]*?[:\s&*\w>\]]\s*:\s*(?P<expr>[^)]+)\)"
)
ITER_CALL = re.compile(r"(?P<obj>[A-Za-z_][\w.\->]*)\s*\.\s*c?r?begin\s*\(\s*\)")
ACCUMULATE = re.compile(r"\bstd\s*::\s*accumulate\s*\(\s*(?P<obj>[A-Za-z_][\w.\->]*)\s*\.")
# A function definition header: qualified name, argument list, then an
# opening brace (constructor initializer lists tolerated via [^;{}]*).
FUNC_DEF = re.compile(
    r"(?:^|[\s*&])(?P<name>~?[A-Za-z_]\w*(?:\s*::\s*~?[A-Za-z_]\w*)*)\s*"
    r"\((?P<args>[^;{}()]*(?:\([^()]*\)[^;{}()]*)*)\)\s*"
    r"(?:const|noexcept|override|final|mutable|->\s*[\w:<>,&*\s]+|\s)*\{",
    re.MULTILINE,
)
CALL_SITE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
NON_CALL_KEYWORDS = frozenset(
    "if while for switch return sizeof static_cast dynamic_cast const_cast "
    "reinterpret_cast catch throw new delete alignof decltype noexcept "
    "defined assert".split()
)


class Finding:
    def __init__(self, rule, path, line, text, message):
        self.rule = rule
        self.path = path  # repo-relative, posix separators
        self.line = line  # 1-indexed
        self.text = text  # stripped source line content
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


RAW_STRING_OPEN = re.compile(r'"(?P<delim>[^()\\\s"]{0,16})\(')


def raw_string_prefix_at(source, quote_idx):
    """True if the `"` at quote_idx carries a raw-literal prefix (R, u8R, LR, ...)."""
    m = re.search(r"(?:u8|[uUL])?R\Z", source[max(0, quote_idx - 3) : quote_idx])
    if not m:
        return False
    start = max(0, quote_idx - 3) + m.start()
    prev = source[start - 1] if start > 0 else ""
    return not (prev.isalnum() or prev == "_")


def strip_comments_and_strings(source):
    """Blanks out comments and string/char literals, preserving newlines."""
    out = []
    i, n = 0, len(source)
    while i < n:
        c = source[i]
        nxt = source[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = source.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = source.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            chunk = source[i : j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in chunk))
            i = j + 2
        elif c == '"' and raw_string_prefix_at(source, i):
            # Raw string literal R"delim( ... )delim": embedded quotes and
            # backslashes are literal content, so scan for the closing
            # )delim" instead of the plain quote scanner.
            open_m = RAW_STRING_OPEN.match(source, i)
            if open_m:
                closer = ")" + open_m.group("delim") + '"'
                j = source.find(closer, open_m.end())
                j = n if j < 0 else j + len(closer)
                chunk = source[i:j]
                out.append("".join(ch if ch == "\n" else " " for ch in chunk))
                i = j
            else:  # malformed open sequence: treat as an ordinary string
                out.append(c)
                i += 1
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and source[j] != quote:
                j += 2 if source[j] == "\\" else 1
            j = min(j, n - 1)
            out.append(quote + " " * (j - i - 1) + quote)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def match_template_close(text, open_idx):
    """Index just past the `>` matching the `<` at open_idx, or -1."""
    depth = 0
    for i in range(open_idx, len(text)):
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif c in ";{}" and depth > 0:
            return -1  # not a template after all (e.g. operator<)
    return -1


def line_of(text, idx):
    return text.count("\n", 0, idx) + 1


def line_text(lines, lineno):
    return lines[lineno - 1].strip() if 0 < lineno <= len(lines) else ""


def unordered_container_names(text):
    """Names declared with an unordered container type in this file."""
    names = set()
    for m in UNORDERED_DECL.finditer(text):
        close = match_template_close(text, m.end() - 1)
        if close < 0:
            continue
        # `std::unordered_map<K, V> name` or `...>& name` / `...>* name`.
        tail = re.match(r"\s*[&*]*\s*(?:const\s+)?([A-Za-z_]\w*)\s*[;({=,]", text[close:])
        if tail:
            names.add(tail.group(1))
    return names


def pointer_container_names(text):
    return {m.group("name") for m in PTR_CONTAINER_DECL.finditer(text)}


def last_identifier(expr):
    """Trailing identifier of an expression like `obj.member` / `p->items_`."""
    ids = re.findall(r"[A-Za-z_]\w*", expr)
    return ids[-1] if ids else ""


class FunctionSpan:
    def __init__(self, name, path, start, end):
        self.name = name  # unqualified
        self.path = path
        self.start = start  # character offsets into the stripped text
        self.end = end
        self.calls = set()
        self.is_seed = False


def extract_functions(text, path):
    """Regex + brace-matched function definition spans, with call sites."""
    spans = []
    file_is_seed = bool(OUTPUT_SEED_FILE.search(path))
    for m in FUNC_DEF.finditer(text):
        name = m.group("name").split("::")[-1].strip()
        if name in NON_CALL_KEYWORDS or not name:
            continue
        brace = m.end() - 1
        depth = 0
        end = len(text)
        for i in range(brace, len(text)):
            if text[i] == "{":
                depth += 1
            elif text[i] == "}":
                depth -= 1
                if depth == 0:
                    end = i + 1
                    break
        span = FunctionSpan(name, path, brace, end)
        body = text[brace:end]
        for call in CALL_SITE.finditer(body):
            callee = call.group(1)
            if callee not in NON_CALL_KEYWORDS:
                span.calls.add(callee)
        span.is_seed = file_is_seed or bool(OUTPUT_SEED_NAME.search(name))
        spans.append(span)
    return spans


def reachable_from_output(all_spans):
    """Unqualified names of functions reachable (callee-wise) from any seed."""
    by_name = {}
    for span in all_spans:
        by_name.setdefault(span.name, []).append(span)
    reachable = set()
    work = [s.name for s in all_spans if s.is_seed]
    while work:
        name = work.pop()
        if name in reachable:
            continue
        reachable.add(name)
        for span in by_name.get(name, ()):
            for callee in span.calls:
                if callee not in reachable and callee in by_name:
                    work.append(callee)
    return reachable


def enclosing_function(spans, idx):
    best = None
    for span in spans:
        if span.start <= idx < span.end:
            if best is None or span.start > best.start:
                best = span  # innermost (e.g. local struct methods)
    return best


def scan_file(rel, text, reachable, spans_by_file):
    findings = []
    lines = text.split("\n")
    spans = spans_by_file.get(rel, [])

    def add(rule, idx, message):
        lineno = line_of(text, idx)
        findings.append(Finding(rule, rel, lineno, line_text(lines, lineno), message))

    unordered = unordered_container_names(text)
    ptr_containers = pointer_container_names(text)

    # BR-UNORDERED-OUTPUT: iteration over an unordered container inside a
    # function reachable from rendering/aggregation.
    def iteration_hit(idx, obj_name):
        if obj_name not in unordered:
            return
        span = enclosing_function(spans, idx)
        where = span.name if span else "file scope"
        if span is None or span.name in reachable or span.is_seed:
            add(
                "BR-UNORDERED-OUTPUT",
                idx,
                f"iteration over unordered container '{obj_name}' in '{where}', "
                "which is reachable from output rendering/aggregation — bucket "
                "order is not deterministic; use an ordered container or sort "
                "before emitting",
            )

    for m in RANGE_FOR.finditer(text):
        iteration_hit(m.start(), last_identifier(m.group("expr")))
    for m in ITER_CALL.finditer(text):
        iteration_hit(m.start(), last_identifier(m.group("obj")))

    # BR-WALL-CLOCK / BR-UNSEEDED-RNG / BR-POINTER-ORDER / BR-FLOAT-ORDER.
    for m in WALL_CLOCK.finditer(text):
        add(
            "BR-WALL-CLOCK",
            m.start(),
            "wall-clock read — simulation code must use SimTime; if this is a "
            "deliberate wall-clock shim, allowlist it with a justification",
        )
    for m in UNSEEDED_RNG.finditer(text):
        add(
            "BR-UNSEEDED-RNG",
            m.start(),
            "nondeterministic / hidden-global-state RNG — use the explicitly "
            "seeded generators in src/common/rng.h",
        )
    for m in POINTER_HASH.finditer(text):
        add(
            "BR-POINTER-ORDER",
            m.start(),
            "pointer value hashed or cast to an integer — heap addresses vary "
            "run to run (ASLR); key on stable identifiers instead",
        )
    for m in re.finditer(
        r"\bstd\s*::\s*(?:stable_)?sort\s*\(\s*(?P<obj>[A-Za-z_][\w.\->]*)\s*\.\s*"
        r"c?begin\s*\(\s*\)\s*,\s*(?P=obj)\s*\.\s*c?end\s*\(\s*\)\s*\)",
        text,
    ):
        if last_identifier(m.group("obj")) in ptr_containers:
            add(
                "BR-POINTER-ORDER",
                m.start(),
                f"std::sort over pointer container '{m.group('obj')}' without a "
                "comparator sorts by address — supply a comparator over stable "
                "fields",
            )
    for m in FLOAT_ORDER.finditer(text):
        add(
            "BR-FLOAT-ORDER",
            m.start(),
            "std::reduce / parallel execution policy reorders accumulation — "
            "floating-point folds must use a fixed left-to-right order "
            "(std::accumulate over an ordered range)",
        )
    for m in ACCUMULATE.finditer(text):
        if last_identifier(m.group("obj")) in unordered:
            add(
                "BR-FLOAT-ORDER",
                m.start(),
                f"std::accumulate over unordered container '{m.group('obj')}' "
                "folds in bucket order — accumulate over an ordered range",
            )
    return findings


class AllowEntry:
    def __init__(self, rule, path_glob, needle, justification, source_line):
        self.rule = rule
        self.path_glob = path_glob
        self.needle = needle  # substring of the flagged source line, or "*"
        self.justification = justification
        self.source_line = source_line
        self.used = False

    def matches(self, finding):
        if self.rule != finding.rule:
            return False
        if not fnmatch.fnmatch(finding.path, self.path_glob):
            return False
        return self.needle == "*" or self.needle in finding.text


def parse_allowlist(path):
    entries, errors = [], []
    if not os.path.exists(path):
        return entries, errors
    with open(path, encoding="utf-8") as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = [p.strip() for p in line.split("|", 3)]
            if len(parts) != 4 or not all(parts[:3]):
                errors.append(
                    f"{path}:{lineno}: malformed allowlist entry (want "
                    "'RULE | path-glob | line-substring-or-* | justification')"
                )
                continue
            rule, glob, needle, justification = parts
            if len(justification) < 10:
                errors.append(
                    f"{path}:{lineno}: allowlist entry for {rule} needs a real "
                    "written justification (got "
                    f"{justification!r})"
                )
                continue
            entries.append(AllowEntry(rule, glob, needle, justification, lineno))
    return entries, errors


def collect_files(root, paths):
    files = []
    for p in paths:
        full = os.path.join(root, p)
        if os.path.isfile(full):
            files.append(p)
        elif os.path.isdir(full):
            for dirpath, _, names in os.walk(full):
                for name in sorted(names):
                    if name.endswith(CXX_EXTENSIONS):
                        rel = os.path.relpath(os.path.join(dirpath, name), root)
                        files.append(rel.replace(os.sep, "/"))
        else:
            raise FileNotFoundError(full)
    return sorted(set(files))


def run(root, paths, allowlist_path):
    files = collect_files(root, paths)
    stripped = {}
    spans_by_file = {}
    all_spans = []
    for rel in files:
        with open(os.path.join(root, rel), encoding="utf-8", errors="replace") as f:
            text = strip_comments_and_strings(f.read())
        stripped[rel] = text
        spans = extract_functions(text, rel)
        spans_by_file[rel] = spans
        all_spans.extend(spans)

    reachable = reachable_from_output(all_spans)
    findings = []
    for rel in files:
        findings.extend(scan_file(rel, stripped[rel], reachable, spans_by_file))

    entries, errors = parse_allowlist(allowlist_path)
    kept = []
    for finding in findings:
        suppressed = False
        for entry in entries:
            if entry.matches(finding):
                entry.used = True
                suppressed = True
        if not suppressed:
            kept.append(finding)
    for entry in entries:
        if not entry.used:
            errors.append(
                f"{allowlist_path}:{entry.source_line}: stale allowlist entry "
                f"({entry.rule} | {entry.path_glob} | {entry.needle}) matches "
                "nothing — remove it"
            )
    return kept, errors, len(files)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--root", default=os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), help="repository root (default: repo)")
    parser.add_argument("--allowlist", default=None,
                        help="allowlist file (default: tools/determinism_lint_allow.txt "
                             "under --root)")
    parser.add_argument("paths", nargs="*", default=None,
                        help="files/directories relative to --root (default: src tools)")
    args = parser.parse_args(argv)

    root = os.path.abspath(args.root)
    paths = args.paths or ["src", "tools"]
    allowlist = args.allowlist or os.path.join(root, "tools", "determinism_lint_allow.txt")

    try:
        findings, errors, file_count = run(root, paths, allowlist)
    except FileNotFoundError as err:
        print(f"determinism_lint: no such path: {err}", file=sys.stderr)
        return 2

    for finding in findings:
        print(finding)
    for error in errors:
        print(f"error: {error}")
    if findings or errors:
        print(
            f"determinism_lint: {len(findings)} finding(s), "
            f"{len(errors)} allowlist error(s). Fix the hazard or add an "
            "allowlist entry with a written justification "
            "(tools/determinism_lint_allow.txt)."
        )
        return 1
    print(f"determinism_lint: clean ({file_count} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

# ctest helper: the streaming campaign paths must be observably equivalent to
# the buffered reference path (BYTEROBUST_STREAM_CAMPAIGN=0):
#   - spill streaming (the default), at --jobs 1 and --jobs 4, must emit
#     byte-identical JSON to the buffered path;
#   - windowed metric compaction (the default 2 h retention) must emit
#     byte-identical JSON to the unbounded tracker (BYTEROBUST_METRIC_WINDOW=0);
#   - --stream (incremental layout, aggregate trailing) must carry the exact
#     same runs and aggregate values as the reference layout — compared as
#     parsed JSON when python3 is available, with a structural fallback
#     (every seed present + aggregate block) otherwise.
#
#   cmake -DCLI=<byterobust binary> -DWORK_DIR=<scratch dir> -P check_campaign_streaming.cmake

foreach(var CLI WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "${var} is required")
  endif()
endforeach()

file(MAKE_DIRECTORY ${WORK_DIR})

set(scenario "campaign;--scenario;dense;--seeds;3;--days;0.4")

# Reference: buffered, unbounded metrics.
execute_process(
    COMMAND ${CMAKE_COMMAND} -E env BYTEROBUST_STREAM_CAMPAIGN=0 BYTEROBUST_METRIC_WINDOW=0
        ${CLI} ${scenario} --out ${WORK_DIR}/stream_ref.json
    OUTPUT_QUIET
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "buffered reference campaign failed: ${rc}")
endif()

# Spill streaming + windowed metrics, single- and multi-worker.
foreach(jobs 1 4)
  execute_process(
      COMMAND ${CLI} ${scenario} --jobs ${jobs} --out ${WORK_DIR}/stream_spill_${jobs}.json
      OUTPUT_QUIET
      RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "spill-streaming campaign (--jobs ${jobs}) failed: ${rc}")
  endif()
  execute_process(
      COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/stream_ref.json ${WORK_DIR}/stream_spill_${jobs}.json
      RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR
        "campaign JSON differs between buffered and spill-streaming (--jobs ${jobs})")
  endif()
endforeach()

# --stream: incremental layout; must succeed and carry exactly the reference
# document's runs and aggregate values, just reordered.
execute_process(
    COMMAND ${CLI} ${scenario} --jobs 2 --stream --out ${WORK_DIR}/stream_direct.json
    OUTPUT_QUIET
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--stream campaign failed: ${rc}")
endif()

find_program(PYTHON3 NAMES python3 python)
if(PYTHON3)
  execute_process(
      COMMAND ${PYTHON3} -c "
import json, sys
a = json.load(open(sys.argv[1]))
b = json.load(open(sys.argv[2]))
assert a['runs'] == b['runs'], 'runs differ between --stream and reference'
assert a['aggregate'] == b['aggregate'], 'aggregate differs between --stream and reference'
for k in ('tool', 'command', 'scenario', 'seeds', 'base_seed', 'days'):
    assert a[k] == b[k], 'header field %s differs' % k
" ${WORK_DIR}/stream_direct.json ${WORK_DIR}/stream_ref.json
      RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR "--stream content differs from the reference layout")
  endif()
else()
  file(READ ${WORK_DIR}/stream_direct.json direct)
  string(REGEX MATCHALL "\"seed\":" seed_fields "${direct}")
  list(LENGTH seed_fields seed_count)
  if(NOT seed_count EQUAL 3)
    message(FATAL_ERROR "--stream output holds ${seed_count} runs, expected 3")
  endif()
  string(FIND "${direct}" "\"aggregate\":" agg_pos)
  if(agg_pos EQUAL -1)
    message(FATAL_ERROR "--stream output is missing the aggregate block")
  endif()
endif()

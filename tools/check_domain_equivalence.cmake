# ctest helper: attaching the fault-domain graph must not perturb flat-topology
# campaigns. With no correlated domain stream configured, the graph is pure
# bookkeeping — every RNG draw, event and JSON byte must match the legacy path
# (BYTEROBUST_FAULT_DOMAINS=0, which skips the graph attach entirely):
#   - `campaign --scenario dense` byte-identical with the graph on and off;
#   - `fleet --scenario fleet-mixed` byte-identical with the graph on and off.
#
#   cmake -DCLI=<byterobust binary> -DWORK_DIR=<scratch dir> -P check_domain_equivalence.cmake

foreach(var CLI WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "${var} is required")
  endif()
endforeach()

file(MAKE_DIRECTORY ${WORK_DIR})

set(case_dense "campaign;--scenario;dense;--seeds;4;--days;2")
set(case_fleet_mixed "fleet;--scenario;fleet-mixed;--seeds;4;--days;0.3")

foreach(name dense fleet_mixed)
  set(case ${case_${name}})
  execute_process(
      COMMAND ${CLI} ${case} --out ${WORK_DIR}/equiv_${name}_graph.json
      OUTPUT_QUIET
      RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${name} with fault domains failed with ${rc}")
  endif()
  execute_process(
      COMMAND ${CMAKE_COMMAND} -E env BYTEROBUST_FAULT_DOMAINS=0
          ${CLI} ${case} --out ${WORK_DIR}/equiv_${name}_legacy.json
      OUTPUT_QUIET
      RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${name} with BYTEROBUST_FAULT_DOMAINS=0 failed with ${rc}")
  endif()
  execute_process(
      COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/equiv_${name}_graph.json ${WORK_DIR}/equiv_${name}_legacy.json
      RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR
        "${name} JSON differs between the fault-domain graph and the legacy flat path")
  endif()
endforeach()

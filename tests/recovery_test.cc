// Unit tests for the recovery module: restart-cost model (Table 7 / Fig. 12),
// warm-standby pool (Sec. 6.2) and hot-update manager (Sec. 6.1).

#include <gtest/gtest.h>

#include "src/cluster/cluster.h"
#include "src/recovery/hot_update.h"
#include "src/recovery/restart_model.h"
#include "src/recovery/warm_standby.h"
#include "src/sim/simulator.h"

namespace byterobust {
namespace {

TEST(RestartModelTest, RequeueMatchesTable7Shape) {
  RestartCostModel model;
  // Table 7 requeue: 454 / 545 / 635 / 768 s at 128/256/512/1024 machines.
  EXPECT_NEAR(ToSeconds(model.RequeueTime(128)), 454.0, 1.0);
  EXPECT_NEAR(ToSeconds(model.RequeueTime(256)), 559.0, 10.0);
  EXPECT_NEAR(ToSeconds(model.RequeueTime(512)), 664.0, 30.0);
  EXPECT_NEAR(ToSeconds(model.RequeueTime(1024)), 769.0, 10.0);
}

TEST(RestartModelTest, HotUpdateIsAboutElevenTimesFaster) {
  RestartCostModel model;
  for (int machines : {128, 256, 512, 1024}) {
    const double ratio = ToSeconds(model.RequeueTime(machines)) /
                         ToSeconds(model.HotUpdateTime(machines));
    EXPECT_GT(ratio, 8.0) << machines;
    EXPECT_LT(ratio, 13.0) << machines;
  }
  // Table 7 hot update: 46..65 s across scales.
  EXPECT_NEAR(ToSeconds(model.HotUpdateTime(128)), 46.0, 1.0);
  EXPECT_LT(ToSeconds(model.HotUpdateTime(1024)), 70.0);
}

TEST(RestartModelTest, OrderingStandbyLtRescheduleLtRequeue) {
  RestartCostModel model;
  for (int machines : {128, 512, 1024}) {
    for (int evicted : {1, 4, 8}) {
      const double wake = ToSeconds(model.StandbyWakeTime(evicted));
      const double resched = ToSeconds(model.RescheduleTime(machines, evicted));
      const double requeue = ToSeconds(model.RequeueTime(machines));
      EXPECT_LT(wake, resched);
      EXPECT_LT(resched, requeue);
    }
  }
}

TEST(RestartModelTest, CostsGrowMonotonicallyWithScale) {
  RestartCostModel model;
  EXPECT_LT(model.RequeueTime(128), model.RequeueTime(1024));
  EXPECT_LT(model.HotUpdateTime(128), model.HotUpdateTime(1024));
  EXPECT_LE(model.RescheduleTime(128, 2), model.RescheduleTime(1024, 2));
  // Below the 128-machine reference, costs never go negative.
  EXPECT_GT(model.RequeueTime(4), 0);
}

TEST(WarmStandbyTest, TargetSizeReproducesTable5P99Column) {
  Simulator sim;
  Cluster cluster(1024, 16, 0);
  WarmStandbyPool pool(StandbyConfig{}, &sim, &cluster);
  // Table 5 "#P99": 2x16, 2x16(*), 3x16, 4x16 backups across the four scales.
  // (*The 256-machine row of the paper lists 2 backups.)
  EXPECT_EQ(pool.TargetSize(128), 2);
  EXPECT_EQ(pool.TargetSize(256), 2);
  EXPECT_EQ(pool.TargetSize(512), 3);
  EXPECT_EQ(pool.TargetSize(1024), 4);
}

TEST(WarmStandbyTest, ProvisioningTakesTimeThenReady) {
  Simulator sim;
  Cluster cluster(8, 8, 4);
  StandbyConfig cfg;
  cfg.provision_time = Minutes(20);
  WarmStandbyPool pool(cfg, &sim, &cluster);
  pool.Replenish(3);
  EXPECT_EQ(pool.ready_count(), 0);
  EXPECT_EQ(pool.provisioning_count(), 3);
  sim.RunUntil(Minutes(21));
  EXPECT_EQ(pool.ready_count(), 3);
  EXPECT_EQ(pool.provisioning_count(), 0);
}

TEST(WarmStandbyTest, ClaimReturnsUpToAvailable) {
  Simulator sim;
  Cluster cluster(8, 8, 4);
  WarmStandbyPool pool(StandbyConfig{}, &sim, &cluster);
  pool.Replenish(2);
  sim.RunUntil(Hours(1));
  const auto claimed = pool.Claim(5);
  EXPECT_EQ(claimed.size(), 2u);
  EXPECT_EQ(pool.ready_count(), 0);
  for (MachineId id : claimed) {
    EXPECT_EQ(cluster.machine(id).state(), MachineState::kStandbySleep);
  }
}

TEST(WarmStandbyTest, ReplenishGrowsClusterWhenNoIdleMachines) {
  Simulator sim;
  Cluster cluster(4, 8, 0);  // no spares at all
  WarmStandbyPool pool(StandbyConfig{}, &sim, &cluster);
  pool.Replenish(2);
  EXPECT_EQ(cluster.total_machines(), 6u);  // two fresh machines requested
  sim.RunUntil(Hours(1));
  EXPECT_EQ(pool.ready_count(), 2);
}

TEST(WarmStandbyTest, ReplenishIsIdempotentWhileProvisioning) {
  Simulator sim;
  Cluster cluster(4, 8, 4);
  WarmStandbyPool pool(StandbyConfig{}, &sim, &cluster);
  pool.Replenish(2);
  pool.Replenish(2);  // should not double-provision
  EXPECT_EQ(pool.provisioning_count(), 2);
}

TEST(HotUpdateTest, UrgentUpdateTriggersImmediateRestart) {
  Simulator sim;
  HotUpdateManager mgr(HotUpdateConfig{}, &sim);
  int restarts = 0;
  mgr.SetRestartRequester([&] { ++restarts; });
  CodeVersion v{1, 1.1, false, 0, /*urgent=*/true, "bug fix"};
  mgr.Submit(v);
  EXPECT_EQ(restarts, 1);
  EXPECT_TRUE(mgr.HasPending());
}

TEST(HotUpdateTest, LazyUpdateWaitsForRecovery) {
  Simulator sim;
  HotUpdateManager mgr(HotUpdateConfig{}, &sim);
  int restarts = 0;
  mgr.SetRestartRequester([&] { ++restarts; });
  mgr.Submit({1, 1.1, false, 0, /*urgent=*/false, "optimization"});
  EXPECT_EQ(restarts, 0);
  EXPECT_EQ(mgr.pending_count(), 1);
  const auto taken = mgr.TakePending(/*merged_into_recovery=*/true);
  ASSERT_EQ(taken.size(), 1u);
  EXPECT_EQ(taken[0].id, 1);
  EXPECT_FALSE(mgr.HasPending());
  EXPECT_EQ(mgr.applied_count(), 1);
  EXPECT_EQ(mgr.merged_count(), 1);
}

TEST(HotUpdateTest, TriggerWindowForcesApply) {
  Simulator sim;
  HotUpdateConfig cfg;
  cfg.trigger_window = Hours(24);
  HotUpdateManager mgr(cfg, &sim);
  int restarts = 0;
  mgr.SetRestartRequester([&] { ++restarts; });
  mgr.Submit({1, 1.1, false, 0, false, "lazy"});
  sim.RunUntil(Hours(23));
  EXPECT_EQ(restarts, 0);
  sim.RunUntil(Hours(25));
  EXPECT_EQ(restarts, 1);
}

TEST(HotUpdateTest, TakePendingCancelsWindowTimer) {
  Simulator sim;
  HotUpdateManager mgr(HotUpdateConfig{}, &sim);
  int restarts = 0;
  mgr.SetRestartRequester([&] { ++restarts; });
  mgr.Submit({1, 1.1, false, 0, false, "lazy"});
  mgr.TakePending(true);  // merged into an early failure recovery
  sim.RunUntil(Hours(48));
  EXPECT_EQ(restarts, 0) << "window expiry after merge must not fire";
}

TEST(HotUpdateTest, HistoryRecordsTimeline) {
  Simulator sim;
  HotUpdateManager mgr(HotUpdateConfig{}, &sim);
  sim.Schedule(Hours(1), [&] { mgr.Submit({3, 1.2, false, 0, false, "x"}); });
  sim.RunUntil(Hours(1));
  sim.Schedule(Hours(1), [&] { mgr.TakePending(false); });
  sim.RunUntil(Hours(2));
  ASSERT_EQ(mgr.history().size(), 1u);
  EXPECT_EQ(mgr.history()[0].submitted, Hours(1));
  EXPECT_EQ(mgr.history()[0].applied, Hours(2));
  EXPECT_FALSE(mgr.history()[0].merged_into_failure_recovery);
}

}  // namespace
}  // namespace byterobust

// Unit tests for src/common: time formatting, RNG, statistics, tables.

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/common/stats.h"
#include "src/common/table.h"

namespace byterobust {
namespace {

TEST(SimTimeTest, UnitConversionsRoundTrip) {
  EXPECT_EQ(Seconds(1.0), kSecond);
  EXPECT_EQ(Minutes(2.0), 2 * kMinute);
  EXPECT_EQ(Hours(1.5), 90 * kMinute);
  EXPECT_EQ(Days(1.0), 24 * kHour);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(3.5)), 3.5);
  EXPECT_DOUBLE_EQ(ToHours(Hours(7.25)), 7.25);
  EXPECT_DOUBLE_EQ(ToDays(Days(90)), 90.0);
}

TEST(SimTimeTest, FormatDurationPicksUnits) {
  EXPECT_EQ(FormatDuration(Hours(2) + Minutes(3)), "2h03m");
  EXPECT_EQ(FormatDuration(Seconds(45)), "45.00s");
  EXPECT_EQ(FormatDuration(Milliseconds(120)), "120.00ms");
  EXPECT_EQ(FormatDuration(5), "5us");
  EXPECT_EQ(FormatDuration(Minutes(1) + Seconds(30)), "1m30.0s");
}

TEST(SimTimeTest, FormatDurationNegative) {
  EXPECT_EQ(FormatDuration(-Seconds(45)), "-45.00s");
}

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, ForkDecorrelatesButStaysDeterministic) {
  Rng a(7);
  Rng b(7);
  Rng fa = a.Fork();
  Rng fb = b.Fork();
  // Forks of identically-seeded parents agree with each other...
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(fa.Uniform(), fb.Uniform());
  }
  // ...but differ from the parent stream.
  Rng parent(7);
  Rng fork = Rng(7).Fork();
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (parent.Uniform() != fork.Uniform()) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.UniformInt(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(1);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  EXPECT_FALSE(rng.Bernoulli(-0.5));
  EXPECT_TRUE(rng.Bernoulli(1.5));
}

TEST(RngTest, ExponentialMeanConverges) {
  Rng rng(42);
  RunningStat stat;
  for (int i = 0; i < 20000; ++i) {
    stat.Add(rng.Exponential(10.0));
  }
  EXPECT_NEAR(stat.mean(), 10.0, 0.3);
}

TEST(RngTest, ExponentialRejectsNonPositiveMean) {
  Rng rng(1);
  EXPECT_THROW(rng.Exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.Exponential(-1.0), std::invalid_argument);
}

TEST(RngTest, WeightedIndexFollowsWeights) {
  Rng rng(9);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) {
    ++counts[rng.WeightedIndex(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(RngTest, WeightedIndexRejectsEmpty) {
  Rng rng(1);
  EXPECT_THROW(rng.WeightedIndex({}), std::invalid_argument);
}

TEST(BinomialQuantileTest, DegenerateCases) {
  EXPECT_EQ(BinomialQuantile(0, 0.5, 0.99), 0);
  EXPECT_EQ(BinomialQuantile(100, 0.0, 0.99), 0);
  EXPECT_EQ(BinomialQuantile(100, 1.0, 0.99), 100);
}

TEST(BinomialQuantileTest, MatchesKnownValues) {
  // Binomial(1024, 0.004): mean 4.1; P99 should land near 10.
  const int q99 = BinomialQuantile(1024, 0.004, 0.99);
  EXPECT_GE(q99, 8);
  EXPECT_LE(q99, 12);
  // Median of Binomial(100, 0.5) is 50.
  EXPECT_EQ(BinomialQuantile(100, 0.5, 0.5), 50);
}

struct QuantileCase {
  int n;
  double p;
};

class BinomialQuantileProperty : public ::testing::TestWithParam<QuantileCase> {};

TEST_P(BinomialQuantileProperty, QuantileIsMonotoneInQ) {
  const auto& c = GetParam();
  int prev = 0;
  for (double q : {0.1, 0.5, 0.9, 0.99, 0.999}) {
    const int k = BinomialQuantile(c.n, c.p, q);
    EXPECT_GE(k, prev);
    EXPECT_LE(k, c.n);
    prev = k;
  }
}

TEST_P(BinomialQuantileProperty, QuantileCoversEmpirically) {
  const auto& c = GetParam();
  const int k99 = BinomialQuantile(c.n, c.p, 0.99);
  Rng rng(c.n * 1000 + static_cast<int>(c.p * 1e6));
  int covered = 0;
  const int trials = 3000;
  for (int i = 0; i < trials; ++i) {
    if (rng.Binomial(c.n, c.p) <= k99) {
      ++covered;
    }
  }
  EXPECT_GE(static_cast<double>(covered) / trials, 0.975);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BinomialQuantileProperty,
                         ::testing::Values(QuantileCase{128, 0.004}, QuantileCase{256, 0.004},
                                           QuantileCase{512, 0.004}, QuantileCase{1024, 0.004},
                                           QuantileCase{1200, 0.01}, QuantileCase{64, 0.1}));

TEST(RunningStatTest, MeanVarianceMinMax) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(v);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.571428, 1e-5);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
}

TEST(PercentileTest, InterpolatesBetweenOrderStats) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.25), 2.0);
}

TEST(PercentileTest, RejectsOutOfRangeQ) {
  EXPECT_THROW(Percentile({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW(Percentile({1.0}, 1.1), std::invalid_argument);
  EXPECT_DOUBLE_EQ(Percentile({}, 0.5), 0.0);
}

TEST(HistogramTest, ClampsAndCounts) {
  Histogram h(0.0, 10.0, 5);
  h.Add(-1.0);   // clamps into bucket 0
  h.Add(0.5);
  h.Add(9.9);
  h.Add(100.0);  // clamps into last bucket
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[4], 2u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(1), 4.0);
}

TEST(HistogramTest, RejectsBadBounds) {
  EXPECT_THROW(Histogram(5.0, 5.0, 3), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22222"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TablePrinterTest, ShortRowsArePadded) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"x"});
  EXPECT_NE(t.Render().find("| x |"), std::string::npos);
}

TEST(FormatHelpersTest, Formats) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatPercent(0.973, 1), "97.3%");
  EXPECT_EQ(FormatInt(12345), "12345");
}

}  // namespace
}  // namespace byterobust

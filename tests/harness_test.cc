// Harness fault-tolerance suite: deterministic backoff jitter, the resumable
// campaign journal's round-trip / truncation / corruption contracts, the seed
// supervisor's watchdog + retry + quarantine state machine, and the
// BYTEROBUST_HARNESS_FAULTS self-fault-injection grammar.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/harness/backoff.h"
#include "src/harness/journal.h"
#include "src/harness/supervisor.h"
#include "src/harness/wallclock.h"

namespace byterobust {
namespace {

// --------------------------------------------------------------------------
// Backoff
// --------------------------------------------------------------------------
TEST(BackoffTest, SameSeedAndAttemptYieldSameDelay) {
  const BackoffConfig config;
  const BackoffPolicy a(config, 1234);
  const BackoffPolicy b(config, 1234);
  for (int attempt = 1; attempt <= 6; ++attempt) {
    EXPECT_EQ(a.DelayMs(attempt), b.DelayMs(attempt)) << "attempt " << attempt;
  }
}

TEST(BackoffTest, DifferentSeedsDecorrelate) {
  const BackoffConfig config;
  const BackoffPolicy a(config, 1);
  const BackoffPolicy b(config, 2);
  bool any_differs = false;
  for (int attempt = 1; attempt <= 6; ++attempt) {
    any_differs = any_differs || a.DelayMs(attempt) != b.DelayMs(attempt);
  }
  EXPECT_TRUE(any_differs);
}

TEST(BackoffTest, GrowsGeometricallyAndCapsWithoutJitter) {
  BackoffConfig config;
  config.base_ms = 4.0;
  config.multiplier = 2.0;
  config.max_ms = 20.0;
  config.jitter = 0.0;
  const BackoffPolicy policy(config, 7);
  EXPECT_DOUBLE_EQ(policy.DelayMs(1), 4.0);
  EXPECT_DOUBLE_EQ(policy.DelayMs(2), 8.0);
  EXPECT_DOUBLE_EQ(policy.DelayMs(3), 16.0);
  EXPECT_DOUBLE_EQ(policy.DelayMs(4), 20.0);  // capped
  EXPECT_DOUBLE_EQ(policy.DelayMs(9), 20.0);
}

TEST(BackoffTest, JitterStaysInsideBand) {
  BackoffConfig config;
  config.base_ms = 10.0;
  config.multiplier = 1.0;
  config.max_ms = 10.0;
  config.jitter = 0.5;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const BackoffPolicy policy(config, seed);
    const double d = policy.DelayMs(1);
    EXPECT_GE(d, 5.0);
    EXPECT_LE(d, 15.0);
  }
}

TEST(BackoffTest, NoDelayBeforeFirstRetry) {
  const BackoffPolicy policy(BackoffConfig{}, 3);
  EXPECT_DOUBLE_EQ(policy.DelayMs(0), 0.0);
}

// --------------------------------------------------------------------------
// Journal
// --------------------------------------------------------------------------
class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/harness_journal_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".log";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  static CampaignIdentity Identity() {
    CampaignIdentity id;
    id.command = "campaign";
    id.scenario = "dense";
    id.seeds = 8;
    id.base_seed = 42;
    id.days = 0.4;
    id.fingerprint = "fnv1a:00000000deadbeef";
    return id;
  }

  std::string path_;
};

TEST_F(JournalTest, RoundTripPreservesElementsAndSummaryBits) {
  CampaignJournal journal;
  std::string error;
  ASSERT_TRUE(journal.Create(path_, Identity(), &error)) << error;

  JournalEntry a;
  a.index = 3;
  a.summary = {0.1, -0.0, 1e-308, 12345.6789};  // bit-exact, not %g-rounded
  a.element = "\n    {\n      \"seed\": 45,\n      \"note\": \"quote \\\" pipe | ok\"\n    }";
  JournalEntry b;
  b.index = 0;
  b.summary = {};
  b.element = "";
  ASSERT_TRUE(journal.Append(a));
  ASSERT_TRUE(journal.Append(b));
  journal.Close();

  CampaignIdentity loaded;
  std::map<int, JournalEntry> completed;
  long valid_end = 0;
  ASSERT_TRUE(CampaignJournal::Load(path_, &loaded, &completed, &valid_end, &error))
      << error;
  std::string why;
  EXPECT_TRUE(loaded.Matches(Identity(), &why)) << why;
  ASSERT_EQ(completed.size(), 2u);
  EXPECT_EQ(completed.at(3).element, a.element);
  ASSERT_EQ(completed.at(3).summary.size(), a.summary.size());
  for (std::size_t i = 0; i < a.summary.size(); ++i) {
    EXPECT_EQ(completed.at(3).summary[i], a.summary[i]) << "slot " << i;
    EXPECT_EQ(std::signbit(completed.at(3).summary[i]), std::signbit(a.summary[i]));
  }
  EXPECT_TRUE(completed.at(0).summary.empty());
  EXPECT_TRUE(completed.at(0).element.empty());
}

TEST_F(JournalTest, TruncatedTrailingRecordIsDroppedAndResumable) {
  CampaignJournal journal;
  std::string error;
  ASSERT_TRUE(journal.Create(path_, Identity(), &error)) << error;
  ASSERT_TRUE(journal.Append({0, {1.0}, "first element"}));
  journal.Close();

  long complete_size = 0;
  {
    CampaignIdentity id;
    std::map<int, JournalEntry> completed;
    ASSERT_TRUE(CampaignJournal::Load(path_, &id, &completed, &complete_size, &error));
  }
  // Simulate a crash mid-append: a second record whose payload never fully
  // landed.
  {
    std::FILE* f = std::fopen(path_.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const std::string partial =
        "seed|index=1|summary=-|bytes=500|digest=fnv1a:0000000000000000\npart";
    std::fwrite(partial.data(), 1, partial.size(), f);
    std::fclose(f);
  }
  CampaignIdentity id;
  std::map<int, JournalEntry> completed;
  long valid_end = 0;
  ASSERT_TRUE(CampaignJournal::Load(path_, &id, &completed, &valid_end, &error)) << error;
  EXPECT_EQ(completed.size(), 1u);
  EXPECT_EQ(valid_end, complete_size);

  // OpenForResume truncates the tail and appends cleanly after it.
  CampaignJournal resumed;
  std::map<int, JournalEntry> prior;
  ASSERT_TRUE(resumed.OpenForResume(path_, Identity(), &prior, &error)) << error;
  EXPECT_EQ(prior.size(), 1u);
  ASSERT_TRUE(resumed.Append({1, {2.0}, "second element"}));
  resumed.Close();
  ASSERT_TRUE(CampaignJournal::Load(path_, &id, &completed, &valid_end, &error)) << error;
  EXPECT_EQ(completed.size(), 2u);
  EXPECT_EQ(completed.at(1).element, "second element");
}

TEST_F(JournalTest, SyncModeSurvivesTornTailAndResumesSynced) {
  // --journal-sync path: every committed record is fdatasync'd, but the
  // torn-tail contract is unchanged — a partial record after the last synced
  // one is dropped on load and truncated away by a (still-synced) resume.
  CampaignJournal journal;
  std::string error;
  ASSERT_TRUE(journal.Create(path_, Identity(), &error, /*sync=*/true)) << error;
  ASSERT_TRUE(journal.Append({0, {1.0}, "synced element"}));
  journal.Close();

  long complete_size = 0;
  {
    CampaignIdentity id;
    std::map<int, JournalEntry> completed;
    ASSERT_TRUE(CampaignJournal::Load(path_, &id, &completed, &complete_size, &error));
  }
  {
    std::FILE* f = std::fopen(path_.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const std::string partial =
        "seed|index=1|summary=-|bytes=500|digest=fnv1a:0000000000000000\ntorn";
    std::fwrite(partial.data(), 1, partial.size(), f);
    std::fclose(f);
  }
  CampaignIdentity id;
  std::map<int, JournalEntry> completed;
  long valid_end = 0;
  ASSERT_TRUE(CampaignJournal::Load(path_, &id, &completed, &valid_end, &error)) << error;
  EXPECT_EQ(completed.size(), 1u);
  EXPECT_EQ(valid_end, complete_size);

  CampaignJournal resumed;
  std::map<int, JournalEntry> prior;
  ASSERT_TRUE(resumed.OpenForResume(path_, Identity(), &prior, &error, /*sync=*/true))
      << error;
  EXPECT_EQ(prior.size(), 1u);
  ASSERT_TRUE(resumed.Append({1, {2.0}, "second synced element"}));
  resumed.Close();
  ASSERT_TRUE(CampaignJournal::Load(path_, &id, &completed, &valid_end, &error)) << error;
  EXPECT_EQ(completed.size(), 2u);
  EXPECT_EQ(completed.at(1).element, "second synced element");
}

TEST_F(JournalTest, CorruptedElementIsRejected) {
  CampaignJournal journal;
  std::string error;
  ASSERT_TRUE(journal.Create(path_, Identity(), &error)) << error;
  ASSERT_TRUE(journal.Append({0, {1.0}, "payload-that-will-be-corrupted"}));
  journal.Close();
  {
    std::FILE* f = std::fopen(path_.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, -4, SEEK_END);  // inside the element payload
    std::fputc('X', f);
    std::fclose(f);
  }
  CampaignIdentity id;
  std::map<int, JournalEntry> completed;
  long valid_end = 0;
  EXPECT_FALSE(CampaignJournal::Load(path_, &id, &completed, &valid_end, &error));
  EXPECT_NE(error.find("digest"), std::string::npos) << error;
}

TEST_F(JournalTest, MalformedHeaderAndDuplicateIndexAreRejected) {
  std::string error;
  {
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a journal\n", f);
    std::fclose(f);
  }
  CampaignIdentity id;
  std::map<int, JournalEntry> completed;
  long valid_end = 0;
  EXPECT_FALSE(CampaignJournal::Load(path_, &id, &completed, &valid_end, &error));
  EXPECT_NE(error.find("magic"), std::string::npos) << error;

  CampaignJournal journal;
  ASSERT_TRUE(journal.Create(path_, Identity(), &error)) << error;
  ASSERT_TRUE(journal.Append({2, {}, "one"}));
  ASSERT_TRUE(journal.Append({2, {}, "two"}));
  journal.Close();
  EXPECT_FALSE(CampaignJournal::Load(path_, &id, &completed, &valid_end, &error));
  EXPECT_NE(error.find("twice"), std::string::npos) << error;
}

TEST_F(JournalTest, IdentityAndFingerprintMismatchRejectResume) {
  CampaignJournal journal;
  std::string error;
  ASSERT_TRUE(journal.Create(path_, Identity(), &error)) << error;
  journal.Close();

  CampaignIdentity other = Identity();
  other.seeds = 16;
  CampaignJournal resumed;
  std::map<int, JournalEntry> completed;
  EXPECT_FALSE(resumed.OpenForResume(path_, other, &completed, &error));
  EXPECT_NE(error.find("seeds"), std::string::npos) << error;

  other = Identity();
  other.fingerprint = "fnv1a:1111111111111111";
  EXPECT_FALSE(resumed.OpenForResume(path_, other, &completed, &error));
  EXPECT_NE(error.find("fingerprint"), std::string::npos) << error;

  // "unknown" on either side disables the fingerprint check only.
  other.fingerprint = "unknown";
  EXPECT_TRUE(resumed.OpenForResume(path_, other, &completed, &error)) << error;
  resumed.Close();
}

// --------------------------------------------------------------------------
// Fault spec grammar
// --------------------------------------------------------------------------
TEST(HarnessFaultSpecTest, ParsesFullGrammar) {
  HarnessFaultSpec spec;
  std::string error;
  ASSERT_TRUE(HarnessFaultSpec::Parse("crash:0.25,hang:0.1,throw:0.5,crash_seed:3,stop_after:2",
                                      &spec, &error))
      << error;
  EXPECT_DOUBLE_EQ(spec.crash_p, 0.25);
  EXPECT_DOUBLE_EQ(spec.hang_p, 0.1);
  EXPECT_DOUBLE_EQ(spec.throw_p, 0.5);
  EXPECT_EQ(spec.crash_seed, 3);
  EXPECT_EQ(spec.stop_after, 2);
  EXPECT_TRUE(spec.any());

  ASSERT_TRUE(HarnessFaultSpec::Parse("", &spec, &error));
  EXPECT_FALSE(spec.any());
}

TEST(HarnessFaultSpecTest, RejectsMalformedSpecs) {
  HarnessFaultSpec spec;
  std::string error;
  EXPECT_FALSE(HarnessFaultSpec::Parse("explode:0.5", &spec, &error));
  EXPECT_FALSE(HarnessFaultSpec::Parse("crash", &spec, &error));
  EXPECT_FALSE(HarnessFaultSpec::Parse("crash:1.5", &spec, &error));
  EXPECT_FALSE(HarnessFaultSpec::Parse("crash:-0.1", &spec, &error));
  EXPECT_FALSE(HarnessFaultSpec::Parse("crash_seed:x", &spec, &error));
}

TEST(HarnessFaultSpecTest, InjectionIsDeterministicPerIndexAttemptKind) {
  HarnessFaultSpec spec;
  spec.crash_p = 0.5;
  const CancelToken token;
  for (int index = 0; index < 16; ++index) {
    for (int attempt = 1; attempt <= 3; ++attempt) {
      bool first = false;
      bool second = false;
      try {
        InjectHarnessFault(spec, 42, index, attempt, token);
      } catch (const InjectedFaultError&) {
        first = true;
      }
      try {
        InjectHarnessFault(spec, 42, index, attempt, token);
      } catch (const InjectedFaultError&) {
        second = true;
      }
      EXPECT_EQ(first, second) << "index " << index << " attempt " << attempt;
    }
  }
}

// --------------------------------------------------------------------------
// Supervisor
// --------------------------------------------------------------------------
SupervisorConfig FastConfig() {
  SupervisorConfig config;
  config.max_attempts = 3;
  config.backoff.base_ms = 1.0;
  config.backoff.max_ms = 2.0;
  config.timeout_override_s = 5.0;  // generous: tests below never hit it
  config.cancel_grace_s = 0.5;
  config.seed = 42;
  return config;
}

TEST(SeedSupervisorTest, SuccessPassesResultThrough) {
  SeedSupervisor supervisor(FastConfig());
  std::string result;
  SeedFailure failure;
  const bool ok = supervisor.Supervise<std::string>(
      0, [](const CancelToken&) { return std::string("seed-output"); }, &result, &failure);
  ASSERT_TRUE(ok) << failure.error;
  EXPECT_EQ(result, "seed-output");
}

TEST(SeedSupervisorTest, TransientFailureIsRetriedToSuccess) {
  SeedSupervisor supervisor(FastConfig());
  auto attempts = std::make_shared<std::atomic<int>>(0);
  std::string result;
  SeedFailure failure;
  const bool ok = supervisor.Supervise<std::string>(
      5,
      [attempts](const CancelToken&) {
        if (attempts->fetch_add(1) < 2) {
          throw std::runtime_error("transient worker death");
        }
        return std::string("recovered");
      },
      &result, &failure);
  ASSERT_TRUE(ok) << failure.error;
  EXPECT_EQ(result, "recovered");
  EXPECT_EQ(attempts->load(), 3);
}

TEST(SeedSupervisorTest, PersistentFailureQuarantinesWithAttemptCount) {
  SeedSupervisor supervisor(FastConfig());
  std::string result;
  SeedFailure failure;
  const bool ok = supervisor.Supervise<std::string>(
      7,
      [](const CancelToken&) -> std::string { throw std::runtime_error("always broken"); },
      &result, &failure);
  EXPECT_FALSE(ok);
  EXPECT_EQ(failure.index, 7);
  EXPECT_EQ(failure.attempts, 3);
  EXPECT_FALSE(failure.timed_out);
  EXPECT_NE(failure.error.find("always broken"), std::string::npos);
}

TEST(SeedSupervisorTest, WatchdogFiresOnlyPastDeadline) {
  SupervisorConfig config = FastConfig();
  config.max_attempts = 1;
  config.timeout_override_s = 0.15;
  SeedSupervisor supervisor(config);
  EXPECT_DOUBLE_EQ(supervisor.AttemptTimeoutS(), 0.15);

  // A cooperative hang: never finishes on its own, yields when cancelled.
  std::string result;
  SeedFailure failure;
  const double start = WallSeconds();
  const bool ok = supervisor.Supervise<std::string>(
      0,
      [](const CancelToken& token) -> std::string {
        while (!token.cancelled()) {
          SleepMs(1.0);
        }
        throw SeedCancelledError("yielded to watchdog");
      },
      &result, &failure);
  const double elapsed = WallSeconds() - start;
  EXPECT_FALSE(ok);
  EXPECT_TRUE(failure.timed_out);
  EXPECT_GE(elapsed, 0.15);  // never fires before the deadline

  // A fast seed under the same deadline is never cancelled.
  auto cancelled_seen = std::make_shared<std::atomic<bool>>(false);
  const bool fast_ok = supervisor.Supervise<std::string>(
      1,
      [cancelled_seen](const CancelToken& token) {
        cancelled_seen->store(token.cancelled());
        return std::string("fast");
      },
      &result, &failure);
  ASSERT_TRUE(fast_ok) << failure.error;
  EXPECT_FALSE(cancelled_seen->load());
}

TEST(SeedSupervisorTest, TrailingEstimateScalesDeadline) {
  SupervisorConfig config = FastConfig();
  config.timeout_override_s = 0.0;
  config.timeout_floor_s = 0.001;
  config.timeout_factor = 10.0;
  SeedSupervisor supervisor(config);
  std::string result;
  SeedFailure failure;
  ASSERT_TRUE(supervisor.Supervise<std::string>(
      0,
      [](const CancelToken&) {
        SleepMs(20.0);
        return std::string("slow");
      },
      &result, &failure));
  // EWMA seeded at ~20ms; deadline = factor * estimate >= 100ms.
  EXPECT_GE(supervisor.AttemptTimeoutS(), 0.1);
  EXPECT_LE(supervisor.AttemptTimeoutS(), 10.0);
}

TEST(SeedSupervisorTest, StopAfterFaultRequestsExternalStop) {
  std::atomic<bool> stop{false};
  SupervisorConfig config = FastConfig();
  config.faults.stop_after = 2;
  config.external_stop = &stop;
  SeedSupervisor supervisor(config);
  EXPECT_FALSE(supervisor.stop_requested());
  supervisor.NoteCommitted();
  EXPECT_FALSE(supervisor.stop_requested());
  supervisor.NoteCommitted();
  EXPECT_TRUE(supervisor.stop_requested());
  EXPECT_TRUE(stop.load());
  EXPECT_EQ(supervisor.committed(), 2);
}

TEST(SeedSupervisorTest, CrashSeedFaultQuarantinesThatSeedOnly) {
  SupervisorConfig config = FastConfig();
  config.faults.crash_seed = 2;
  SeedSupervisor supervisor(config);
  std::string result;
  SeedFailure failure;
  EXPECT_TRUE(supervisor.Supervise<std::string>(
      1, [](const CancelToken&) { return std::string("ok"); }, &result, &failure));
  EXPECT_FALSE(supervisor.Supervise<std::string>(
      2, [](const CancelToken&) { return std::string("never"); }, &result, &failure));
  EXPECT_EQ(failure.attempts, config.max_attempts);
  EXPECT_NE(failure.error.find("persistent crash"), std::string::npos);
}

}  // namespace
}  // namespace byterobust

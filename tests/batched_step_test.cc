// Batched-stepping equivalence suite: the inline batched step loop
// (JobConfig::batched_stepping, the default) must be observationally
// indistinguishable from the per-step reference path — identical StepRecord
// streams, identical anomaly detect times, identical campaign metrics — while
// dispatching strictly fewer simulator events. Also covers the epoch-keyed
// perf-model cache and the O(log w) sliding median against their full-scan
// references.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <deque>
#include <optional>
#include <vector>

#include "src/common/rng.h"
#include "src/core/scenario.h"
#include "src/monitor/metrics_rules.h"
#include "src/training/train_job.h"

namespace byterobust {
namespace {

JobConfig SmallJob(bool batched) {
  JobConfig cfg;
  cfg.name = "batch-test";
  cfg.parallelism.tp = 2;
  cfg.parallelism.pp = 2;
  cfg.parallelism.dp = 2;
  cfg.parallelism.gpus_per_machine = 2;
  cfg.base_step_time = Seconds(10);
  cfg.batched_stepping = batched;
  return cfg;
}

bool SameRecord(const StepRecord& a, const StepRecord& b) {
  const bool loss_same = (std::isnan(a.loss) && std::isnan(b.loss)) || a.loss == b.loss;
  const bool grad_same =
      (std::isnan(a.grad_norm) && std::isnan(b.grad_norm)) || a.grad_norm == b.grad_norm;
  return a.step == b.step && a.start == b.start && a.end == b.end && a.mfu == b.mfu &&
         loss_same && grad_same && a.is_nan == b.is_nan && a.recompute == b.recompute &&
         a.run_id == b.run_id;
}

struct StepStreamRun {
  std::vector<StepRecord> records;
  std::uint64_t dispatched = 0;
};

// A job alone with a periodic interfering event: batches must split exactly at
// the event boundaries and the records must not care.
StepStreamRun RunStepStream(bool batched) {
  Simulator sim;
  Cluster cluster(4, 2, 2);
  TrainJob job(SmallJob(batched), &sim, &cluster, 42);
  StepStreamRun out;
  job.AddStepObserver([&out](const StepRecord& r) { out.records.push_back(r); });
  // Interfering events at a cadence coprime with the 10 s step time, one of
  // which degrades a machine mid-run (stretching later steps through the
  // epoch-invalidated perf cache) and one of which heals it.
  for (int i = 1; i <= 20; ++i) {
    sim.ScheduleAt(Seconds(37) * i, [] {});
  }
  sim.ScheduleAt(Seconds(205), [&cluster] {
    cluster.machine(1).gpu(0).clock_ratio = 0.5;
  });
  sim.ScheduleAt(Seconds(505), [&cluster] {
    cluster.machine(1).ResetHealth();
  });
  job.Start();
  sim.RunUntil(Seconds(700));
  out.dispatched = sim.events_dispatched();
  return out;
}

TEST(BatchedStepTest, StepStreamMatchesPerStepReference) {
  const StepStreamRun batched = RunStepStream(true);
  const StepStreamRun reference = RunStepStream(false);
  ASSERT_EQ(batched.records.size(), reference.records.size());
  ASSERT_FALSE(batched.records.empty());
  for (std::size_t i = 0; i < batched.records.size(); ++i) {
    EXPECT_TRUE(SameRecord(batched.records[i], reference.records[i])) << "step " << i;
  }
  // The whole point: batching elides step-completion events.
  EXPECT_LT(batched.dispatched, reference.dispatched);
}

TEST(BatchedStepTest, MidRunDegradeStretchesStepsIdentically) {
  const StepStreamRun batched = RunStepStream(true);
  // The 0.5x downclock at t=205 doubles step time until the heal at t=505.
  bool saw_slow = false;
  for (const StepRecord& r : batched.records) {
    if (r.start >= Seconds(205) && r.end <= Seconds(505)) {
      EXPECT_EQ(r.end - r.start, Seconds(20));
      saw_slow = true;
    }
  }
  EXPECT_TRUE(saw_slow);
}

ScenarioConfig CampaignConfig(std::uint64_t seed, bool batched) {
  ScenarioConfig cfg;
  cfg.system.job.name = "batch-equivalence-7B";
  cfg.system.job.model_params_b = 7.0;
  cfg.system.job.parallelism.tp = 2;
  cfg.system.job.parallelism.pp = 4;
  cfg.system.job.parallelism.dp = 4;
  cfg.system.job.parallelism.gpus_per_machine = 2;
  cfg.system.job.base_step_time = Seconds(10);
  cfg.system.job.batched_stepping = batched;
  cfg.system.seed = seed;
  cfg.system.spare_machines = 4;
  cfg.duration = Days(0.5);
  cfg.injector.reference_mtbf = Hours(1.0);
  cfg.injector.reference_machines = 64;
  cfg.planned_updates = 2;
  return cfg;
}

struct CampaignObservables {
  int incidents = 0;
  int refails = 0;
  std::int64_t steps = 0;
  int runs = 0;
  int evictions = 0;
  double ettr = 0.0;
  SimDuration productive = 0;
  std::vector<SimDuration> detect_times;
  std::vector<SimDuration> total_times;

  bool operator==(const CampaignObservables&) const = default;
};

CampaignObservables RunCampaign(std::uint64_t seed, bool batched) {
  Scenario scenario(CampaignConfig(seed, batched));
  scenario.Run();
  ByteRobustSystem& sys = scenario.system();
  CampaignObservables obs;
  obs.incidents = scenario.stats().incidents_injected;
  obs.refails = scenario.stats().refails;
  obs.steps = sys.job().max_step_reached();
  obs.runs = sys.job().run_count();
  obs.evictions = sys.controller().evictions_total();
  obs.ettr = sys.ettr().CumulativeEttr(sys.sim().Now());
  obs.productive = sys.ettr().productive_time();
  for (const IncidentResolution& res : sys.controller().log().entries()) {
    obs.detect_times.push_back(res.DetectionTime());
    obs.total_times.push_back(res.TotalUnproductive());
  }
  return obs;
}

// Full control-plane campaign (fault mix, monitor, diagnoser, restarts):
// every campaign metric — including per-incident anomaly detect times — must
// be identical with batching on and off.
TEST(BatchedStepTest, CampaignObservablesMatchPerStepReference) {
  for (const std::uint64_t seed : {2024ull, 7ull}) {
    const CampaignObservables batched = RunCampaign(seed, true);
    const CampaignObservables reference = RunCampaign(seed, false);
    EXPECT_EQ(batched, reference) << "seed " << seed;
    EXPECT_GT(batched.incidents, 0) << "campaign too quiet to be a meaningful check";
    EXPECT_FALSE(batched.detect_times.empty());
  }
}

TEST(PerfModelCacheTest, CachedQueriesTrackHealthEpoch) {
  Cluster cluster(4, 2);
  const PerfModel model(SmallJob(true));
  EXPECT_EQ(model.StepTime(1.0, cluster), Seconds(10));
  // Cached call returns the same without a rescan (same epoch).
  EXPECT_EQ(model.StepTime(1.0, cluster), Seconds(10));
  cluster.machine(2).gpu(1).clock_ratio = 0.5;  // bumps the health epoch
  EXPECT_EQ(model.StepTime(1.0, cluster), Seconds(20));
  EXPECT_DOUBLE_EQ(model.Mfu(1.0, cluster), model.config().base_mfu * 0.5);
  // Efficiency changes re-key the derived cache without a cluster mutation.
  EXPECT_EQ(model.StepTime(2.0, cluster), Seconds(10));
  cluster.machine(2).ResetHealth();
  EXPECT_EQ(model.StepTime(2.0, cluster), Seconds(5));
  EXPECT_DOUBLE_EQ(model.Mfu(1.0, cluster), model.config().base_mfu);
}

// The dual-multiset sliding median must reproduce the copy-and-sort reference
// rule decision-for-decision on a noisy loss stream with spikes and NaNs.
TEST(MetricsRulesMedianTest, MatchesCopySortReference) {
  const MetricsRulesConfig cfg;
  MetricsRules rules(cfg);

  // Reference: the pre-optimization implementation, verbatim semantics.
  std::deque<double> window;
  const auto reference_on_step = [&](const StepRecord& rec) -> std::optional<AnomalySource> {
    if (rec.is_nan || std::isnan(rec.loss)) {
      return AnomalySource::kMetricNan;
    }
    if (static_cast<int>(window.size()) >= cfg.trailing_window / 2) {
      std::vector<double> v(window.begin(), window.end());
      std::sort(v.begin(), v.end());
      const double median = v.empty() ? 0.0 : v[v.size() / 2];
      if (median > 0.0 && rec.loss > cfg.spike_factor * median) {
        window.clear();
        return AnomalySource::kMetricSpike;
      }
    }
    window.push_back(rec.loss);
    while (static_cast<int>(window.size()) > cfg.trailing_window) {
      window.pop_front();
    }
    return std::nullopt;
  };

  Rng rng(99);
  for (int i = 0; i < 4000; ++i) {
    StepRecord rec;
    rec.step = i;
    rec.end = Seconds(10) * i;
    rec.mfu = 0.3;  // constant: keep the MFU rule quiet
    rec.loss = 2.0 + rng.Uniform() * 0.5;
    if (i % 97 == 0) {
      rec.loss *= 50.0;  // spike
    }
    if (i % 531 == 0 && i > 0) {
      rec.is_nan = true;
      rec.loss = std::nan("");
      rec.grad_norm = std::nan("");
    }
    const auto expected = reference_on_step(rec);
    const auto actual = rules.OnStep(rec);
    ASSERT_EQ(actual.has_value(), expected.has_value()) << "step " << i;
    if (actual.has_value()) {
      EXPECT_EQ(actual->source, *expected) << "step " << i;
      EXPECT_EQ(actual->detect_time, rec.end);
    }
  }
}

}  // namespace
}  // namespace byterobust

// Fleet-mode tests: cluster views over a shared pool, the spare arbiter's
// claim/preempt/replenish semantics (including the no-double-assignment
// invariant), fleet determinism, and cross-job switch-storm blast radius.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/fleet/fleet.h"
#include "src/fleet/fleet_presets.h"

namespace byterobust {
namespace {

// ---------------------------------------------------------------------------
// Cluster views over a shared core.
// ---------------------------------------------------------------------------

TEST(ClusterViewTest, ViewsCarveDisjointContiguousSlots) {
  Cluster pool(kFleetPool, 12, 2);
  Cluster a(pool, 4);
  Cluster b(pool, 6);
  EXPECT_EQ(a.num_training_slots(), 4);
  EXPECT_EQ(b.num_training_slots(), 6);
  std::set<MachineId> seen;
  for (int s = 0; s < 4; ++s) {
    EXPECT_TRUE(seen.insert(a.MachineAtSlot(s)).second);
  }
  for (int s = 0; s < 6; ++s) {
    EXPECT_TRUE(seen.insert(b.MachineAtSlot(s)).second);
  }
  // Job A got the lowest ids, job B the next band (rack-contiguous layout).
  EXPECT_EQ(a.MachineAtSlot(0), 0);
  EXPECT_EQ(a.MachineAtSlot(3), 3);
  EXPECT_EQ(b.MachineAtSlot(0), 4);
  // Two machines remain idle in the shared pool.
  EXPECT_EQ(pool.IdleMachines().size(), 2u);
  // A machine serving job B is not part of job A's slot space.
  EXPECT_EQ(a.SlotOfMachine(b.MachineAtSlot(0)), -1);
  EXPECT_EQ(b.SlotOfMachine(4), 0);
}

TEST(ClusterViewTest, ViewThrowsWhenPoolCannotSupplyDemand) {
  Cluster pool(kFleetPool, 4, 2);
  Cluster a(pool, 3);
  EXPECT_THROW(Cluster(pool, 2), std::invalid_argument);
  // A failed carve leaves no trace: no machine claimed, and later health
  // mutations dispatch only to live views (regression: the half-built view
  // used to stay registered with the shared core behind the exception).
  EXPECT_EQ(pool.IdleMachines().size(), 1u);
  int fired = 0;
  a.RequestMutationWake([&fired] { ++fired; });
  pool.machine(0).host().nic_up = false;
  EXPECT_EQ(fired, 1);
}

TEST(ClusterViewTest, SuspectIndexIsPerViewButEpochIsShared) {
  Cluster pool(kFleetPool, 8, 2);
  Cluster a(pool, 3);
  Cluster b(pool, 3);
  const std::uint64_t epoch = pool.health_epoch();
  // Dirty one of B's machines: shared epoch bumps, but only B lists a suspect.
  pool.machine(b.MachineAtSlot(1)).gpu(0).clock_ratio = 0.5;
  EXPECT_GT(pool.health_epoch(), epoch);
  EXPECT_EQ(a.health_epoch(), b.health_epoch());
  EXPECT_TRUE(a.SuspectServingMachines().empty());
  ASSERT_EQ(b.SuspectServingMachines().size(), 1u);
  EXPECT_EQ(b.SuspectServingMachines().front(), b.MachineAtSlot(1));
}

TEST(ClusterViewTest, PerViewMutationWakersAllFire) {
  Cluster pool(kFleetPool, 6, 2);
  Cluster a(pool, 2);
  Cluster b(pool, 2);
  int fired_a = 0;
  int fired_b = 0;
  a.RequestMutationWake([&fired_a] { ++fired_a; });
  b.RequestMutationWake([&fired_b] { ++fired_b; });
  pool.machine(a.MachineAtSlot(0)).host().nic_up = false;  // any mutation wakes all views
  EXPECT_EQ(fired_a, 1);
  EXPECT_EQ(fired_b, 1);
  // One-shot: a second mutation without re-registration fires nothing.
  pool.machine(b.MachineAtSlot(0)).host().nic_up = false;
  EXPECT_EQ(fired_a, 1);
  EXPECT_EQ(fired_b, 1);
}

TEST(ClusterViewTest, DetachSlotMachineTransfersWithoutBlacklisting) {
  Cluster pool(kFleetPool, 6, 2);
  Cluster a(pool, 3);
  const MachineId fresh = pool.AddMachine();
  const MachineId taken = a.DetachSlotMachine(2, fresh);
  EXPECT_FALSE(pool.IsBlacklisted(taken));
  EXPECT_EQ(a.SlotOfMachine(taken), -1);
  EXPECT_EQ(a.MachineAtSlot(2), fresh);
  EXPECT_EQ(pool.machine(taken).state(), MachineState::kIdle);
  EXPECT_EQ(pool.machine(fresh).state(), MachineState::kActive);
}

// ---------------------------------------------------------------------------
// Spare arbiter.
// ---------------------------------------------------------------------------

struct ArbiterFixture {
  // Two tiny jobs (high priority job 0, low priority job 1) on a shared pool
  // with `spares` extra machines.
  explicit ArbiterFixture(int spares, bool preemption = true) {
    SpareArbiterConfig cfg;
    cfg.allow_preemption = preemption;
    pool = std::make_unique<Cluster>(kFleetPool, 4 + 4 + spares, 2);
    arbiter = std::make_unique<SpareArbiter>(cfg, &sim, pool.get());
    high = arbiter->RegisterJob("high", /*priority=*/2);
    low = arbiter->RegisterJob("low", /*priority=*/0);
    JobConfig jc;
    jc.parallelism.tp = 2;
    jc.parallelism.pp = 2;
    jc.parallelism.dp = 2;
    jc.parallelism.gpus_per_machine = 2;  // 4 machines
    view_high = std::make_unique<Cluster>(*pool, 4);
    view_low = std::make_unique<Cluster>(*pool, 4);
    job_high = std::make_unique<TrainJob>(jc, &sim, view_high.get(), 1);
    job_low = std::make_unique<TrainJob>(jc, &sim, view_low.get(), 2);
    arbiter->AttachJobRuntime(0, view_high.get(), job_high.get());
    arbiter->AttachJobRuntime(1, view_low.get(), job_low.get());
  }

  Simulator sim;
  std::unique_ptr<Cluster> pool;
  std::unique_ptr<SpareArbiter> arbiter;
  SparePool* high = nullptr;
  SparePool* low = nullptr;
  std::unique_ptr<Cluster> view_high;
  std::unique_ptr<Cluster> view_low;
  std::unique_ptr<TrainJob> job_high;
  std::unique_ptr<TrainJob> job_low;
};

TEST(SpareArbiterTest, ReplenishProvisionsTowardFleetTarget) {
  ArbiterFixture f(/*spares=*/4);
  f.arbiter->Replenish();
  EXPECT_GE(f.arbiter->provisioning_count(), 1);
  f.sim.RunUntil(Hours(1));
  EXPECT_EQ(f.arbiter->ready_count(), f.arbiter->FleetTargetSize());
  // Claims drain the ready pool in provision order.
  const std::vector<MachineId> got = f.high->Claim(1);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(f.arbiter->job_stats(0).machines_granted, 1);
}

TEST(SpareArbiterTest, PreemptionNeverDoubleAssignsAMachine) {
  ArbiterFixture f(/*spares=*/0);  // empty pool: claims must preempt
  f.job_low->Start();
  f.job_high->Start();
  const std::vector<MachineId> got = f.high->Claim(2);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(f.arbiter->job_stats(0).preemptions_gained, 2);
  EXPECT_EQ(f.arbiter->job_stats(1).preemptions_lost, 2);
  // The machines came from the low job and are no longer in any slot table.
  std::set<MachineId> all_serving;
  for (int s = 0; s < 4; ++s) {
    EXPECT_TRUE(all_serving.insert(f.view_high->MachineAtSlot(s)).second);
  }
  for (int s = 0; s < 4; ++s) {
    EXPECT_TRUE(all_serving.insert(f.view_low->MachineAtSlot(s)).second);
  }
  for (MachineId m : got) {
    EXPECT_EQ(all_serving.count(m), 0u)
        << "claimed machine " << m << " still serves a job";
    EXPECT_FALSE(f.pool->IsBlacklisted(m));
  }
  // Installing the claims keeps every slot assignment unique fleet-wide.
  f.view_high->ReplaceSlot(0, got[0]);
  f.view_high->ReplaceSlot(1, got[1]);
  std::set<MachineId> after;
  for (int s = 0; s < 4; ++s) {
    EXPECT_TRUE(after.insert(f.view_high->MachineAtSlot(s)).second);
    EXPECT_TRUE(after.insert(f.view_low->MachineAtSlot(s)).second);
  }
  // The victim job was crashed by the preemption.
  EXPECT_EQ(f.job_low->state(), JobRunState::kCrashed);
  EXPECT_EQ(f.job_high->state(), JobRunState::kRunning);
}

TEST(SpareArbiterTest, PreemptionFallsBackPastVictimsWithNoNominalMachine) {
  Simulator sim;
  Cluster pool(kFleetPool, 8, 2);
  SpareArbiter arbiter(SpareArbiterConfig{}, &sim, &pool);
  SparePool* high = arbiter.RegisterJob("high", /*priority=*/2);
  arbiter.RegisterJob("mid", /*priority=*/1);
  arbiter.RegisterJob("low", /*priority=*/0);
  JobConfig jc;
  jc.parallelism.tp = 2;
  jc.parallelism.pp = 2;
  jc.parallelism.dp = 1;
  jc.parallelism.gpus_per_machine = 2;  // 2 machines per job
  Cluster view_high(pool, 2);
  Cluster view_mid(pool, 2);
  Cluster view_low(pool, 2);
  TrainJob job_high(jc, &sim, &view_high, 1);
  TrainJob job_mid(jc, &sim, &view_mid, 2);
  TrainJob job_low(jc, &sim, &view_low, 3);
  arbiter.AttachJobRuntime(0, &view_high, &job_high);
  arbiter.AttachJobRuntime(1, &view_mid, &job_mid);
  arbiter.AttachJobRuntime(2, &view_low, &job_low);
  job_mid.Start();
  job_low.Start();
  // The preferred (lowest-priority) victim has no nominal machine to give;
  // the claim must fall back to the next-lowest donor instead of queueing.
  for (int s = 0; s < 2; ++s) {
    pool.machine(view_low.MachineAtSlot(s)).gpu(0).clock_ratio = 0.5;
  }
  const std::vector<MachineId> got = high->Claim(1);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(arbiter.job_stats(2).preemptions_lost, 0);
  EXPECT_EQ(arbiter.job_stats(1).preemptions_lost, 1);
  EXPECT_EQ(job_mid.state(), JobRunState::kCrashed);
  EXPECT_EQ(job_low.state(), JobRunState::kRunning);
}

TEST(SpareArbiterTest, LowPriorityCannotPreemptAndQueuesInstead) {
  ArbiterFixture f(/*spares=*/0);
  f.job_low->Start();
  f.job_high->Start();
  const std::vector<MachineId> got = f.low->Claim(1);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(f.arbiter->job_stats(1).queued_claims, 1);
  EXPECT_EQ(f.arbiter->job_stats(1).shortfall_machines, 1);
  EXPECT_EQ(f.arbiter->preemptions_total(), 0);
  EXPECT_EQ(f.job_high->state(), JobRunState::kRunning);
}

TEST(SpareArbiterTest, PreemptionDisabledFallsBackToQueuedClaim) {
  ArbiterFixture f(/*spares=*/0, /*preemption=*/false);
  f.job_low->Start();
  f.job_high->Start();
  const std::vector<MachineId> got = f.high->Claim(1);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(f.arbiter->job_stats(0).queued_claims, 1);
  EXPECT_EQ(f.job_low->state(), JobRunState::kRunning);
}

TEST(SpareArbiterTest, OccupancyTimelineRecordsPoolMutations) {
  ArbiterFixture f(/*spares=*/2);
  f.arbiter->Replenish();
  f.sim.RunUntil(Hours(1));
  f.high->Claim(1);
  ASSERT_GE(f.arbiter->occupancy().size(), 2u);
  // Samples are time-ordered and end with the post-claim state.
  SimTime prev = -1;
  for (const SpareOccupancySample& s : f.arbiter->occupancy()) {
    EXPECT_GE(s.time, prev);
    prev = s.time;
  }
  EXPECT_EQ(f.arbiter->occupancy().back().ready, f.arbiter->ready_count());
}

// ---------------------------------------------------------------------------
// Fleet end-to-end.
// ---------------------------------------------------------------------------

struct FleetDigest {
  std::vector<std::int64_t> steps;
  std::vector<int> runs;
  std::vector<int> incidents;
  std::vector<int> evictions;
  int preemptions = 0;
  int queued = 0;
  int storms = 0;
  int cross_job = 0;
  double effective_gpu_ratio = 0.0;

  bool operator==(const FleetDigest&) const = default;
};

FleetDigest RunFleet(const FleetConfig& cfg) {
  Fleet fleet(cfg);
  fleet.Run();
  FleetDigest d;
  for (int i = 0; i < fleet.num_jobs(); ++i) {
    d.steps.push_back(fleet.system(i).job().max_step_reached());
    d.runs.push_back(fleet.system(i).job().run_count());
    d.incidents.push_back(fleet.scenario(i).stats().incidents_injected);
    d.evictions.push_back(fleet.system(i).controller().evictions_total());
  }
  d.preemptions = fleet.arbiter().preemptions_total();
  d.queued = fleet.arbiter().queued_claims_total();
  d.storms = fleet.storms_injected();
  d.cross_job = fleet.cross_job_storms();
  d.effective_gpu_ratio = fleet.EffectiveGpuTimeRatio();
  return d;
}

TEST(FleetTest, MixedFleetRunsAllJobsAndStaysDeterministic) {
  const FleetConfig cfg = FleetMixedConfig(/*days=*/0.3, /*seed=*/42);
  const FleetDigest a = RunFleet(cfg);
  const FleetDigest b = RunFleet(cfg);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.steps.size(), 3u);
  for (std::int64_t steps : a.steps) {
    EXPECT_GT(steps, 0);
  }
  EXPECT_GT(a.effective_gpu_ratio, 0.3);
  EXPECT_LE(a.effective_gpu_ratio, 1.0);
}

TEST(FleetTest, ContentionFleetShowsSparePoolContention) {
  const FleetDigest d = RunFleet(FleetContentionConfig(/*days=*/0.5, /*seed=*/42));
  EXPECT_GE(d.preemptions + d.queued, 1)
      << "fleet-contention must exhibit at least one preemption or queued claim";
}

TEST(FleetTest, SwitchStormSpansJobs) {
  FleetConfig cfg = FleetSwitchStormConfig(/*days=*/1.0, /*seed=*/7);
  const FleetDigest d = RunFleet(cfg);
  EXPECT_GE(d.storms, 1);
  EXPECT_GE(d.cross_job, 1) << "expected at least one storm hitting both jobs";
}

TEST(FleetTest, StartTimesStaggerJobLaunches) {
  FleetConfig cfg = FleetMixedConfig(/*days=*/0.3, /*seed=*/11);
  Fleet fleet(cfg);
  fleet.Run();
  // All three jobs eventually launched (start times 0h / 2h / 6h < 7.2h).
  for (int i = 0; i < fleet.num_jobs(); ++i) {
    EXPECT_GE(fleet.system(i).job().run_count(), 1) << "job " << i;
  }
  // The later job had strictly less wall-clock to step through.
  EXPECT_GT(fleet.system(0).job().max_step_reached(),
            fleet.system(2).job().max_step_reached());
}

// ---------------------------------------------------------------------------
// Fault-domain graph integration.
// ---------------------------------------------------------------------------

TEST(FleetTest, TorBandsMatchLegacySwitchStormLayout) {
  // The storm generator migrated from flat `machines_per_switch` band math to
  // ToR domains of the fault-domain graph. The preset keeps machines_per_tor
  // equal to machines_per_switch, so the graph must reproduce the legacy
  // bands exactly: same count, same [lo, hi) per band.
  FleetConfig cfg = FleetSwitchStormConfig(/*days=*/1.0, /*seed=*/7);
  ASSERT_EQ(cfg.fault_domains.machines_per_tor, cfg.storm.machines_per_switch);
  Fleet fleet(cfg);
  const FaultDomains* domains = fleet.pool().fault_domains();
  ASSERT_NE(domains, nullptr);

  const int total = static_cast<int>(fleet.pool().total_machines());
  const int per = cfg.storm.machines_per_switch;
  const int legacy_bands = (total + per - 1) / per;
  ASSERT_EQ(domains->CountAtLevel(DomainLevel::kTor), legacy_bands);
  for (int s = 0; s < legacy_bands; ++s) {
    const DomainId tor = domains->DomainIdAt(DomainLevel::kTor, s);
    EXPECT_EQ(domains->machine_begin(tor), s * per) << "band " << s;
    EXPECT_EQ(std::min<MachineId>(domains->machine_end(tor), total),
              std::min<MachineId>((s + 1) * per, total))
        << "band " << s;
  }
}

TEST(FleetTest, GraphAndLegacyStormPathsAreByteIdentical) {
  // With machines_per_tor == machines_per_switch the graph-backed storm path
  // must reproduce the legacy flat-band run bit for bit — switch storms flip
  // per-machine health only (no domain state), so disabling the graph cannot
  // change a single RNG draw or event.
  FleetConfig graph_cfg = FleetSwitchStormConfig(/*days=*/1.0, /*seed=*/7);
  FleetConfig legacy_cfg = graph_cfg;
  legacy_cfg.fault_domains.enabled = false;
  const FleetDigest graph = RunFleet(graph_cfg);
  const FleetDigest legacy = RunFleet(legacy_cfg);
  EXPECT_EQ(graph, legacy);
  EXPECT_GE(graph.storms, 1);
}

}  // namespace
}  // namespace byterobust

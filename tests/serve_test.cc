// Campaign-service suite: the serve wire protocol's strict-parse /
// render / extract contracts, and in-process end-to-end daemon tests —
// request bodies byte-identical to the CLI engine, admission control
// (seed cap, queue shed), deadline cancel into a valid partial document,
// and graceful drain.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/campaign/engine.h"
#include "src/campaign/scenarios.h"
#include "src/harness/exit_codes.h"
#include "src/harness/wallclock.h"
#include "src/serve/client.h"
#include "src/serve/protocol.h"
#include "src/serve/server.h"

namespace byterobust {
namespace {

// --------------------------------------------------------------------------
// Protocol: strict request parsing
// --------------------------------------------------------------------------
TEST(ServeProtocolTest, ParsesSparseAndFullRequests) {
  ServeRequest req;
  std::string error;
  ASSERT_TRUE(ParseServeRequest("{\"op\":\"status\"}", &req, &error)) << error;
  EXPECT_EQ(req.op, "status");

  req = ServeRequest();
  ASSERT_TRUE(ParseServeRequest(
      "{\"op\":\"campaign\",\"scenario\":\"quickstart\",\"seeds\":8,"
      "\"base_seed\":7,\"days\":0.25,\"jobs\":4,\"deadline_s\":2.5,"
      "\"journal\":\"/tmp/j.log\",\"retries\":3,\"journal_sync\":true}",
      &req, &error))
      << error;
  EXPECT_EQ(req.op, "campaign");
  EXPECT_EQ(req.scenario, "quickstart");
  EXPECT_EQ(req.seeds, 8);
  EXPECT_EQ(req.base_seed, 7u);
  EXPECT_DOUBLE_EQ(req.days, 0.25);
  EXPECT_EQ(req.jobs, 4);
  EXPECT_DOUBLE_EQ(req.deadline_s, 2.5);
  EXPECT_EQ(req.journal, "/tmp/j.log");
  EXPECT_EQ(req.retries, 3);
  EXPECT_TRUE(req.journal_sync);

  // null means "use the scenario default", same as omitting --days.
  req = ServeRequest();
  ASSERT_TRUE(ParseServeRequest("{\"op\":\"fleet\",\"scenario\":\"fleet-mixed\","
                                "\"days\":null}",
                                &req, &error))
      << error;
  EXPECT_LT(req.days, 0.0);
}

TEST(ServeProtocolTest, RejectsMalformedAndHostileRequests) {
  const struct {
    const char* line;
    const char* needle;  // must appear in the error
  } kCases[] = {
      {"", "JSON object"},
      {"not json", "JSON object"},
      {"{\"scenario\":\"quickstart\"}", "op"},
      {"{\"op\":\"evil\"}", "op"},
      {"{\"op\":\"campaign\",\"seeds\":0}", "seeds"},
      {"{\"op\":\"campaign\",\"seeds\":100001}", "seeds"},
      {"{\"op\":\"campaign\",\"jobs\":257}", "jobs"},
      {"{\"op\":\"campaign\",\"days\":-1}", "days"},
      {"{\"op\":\"campaign\",\"deadline_s\":-2}", "deadline_s"},
      {"{\"op\":\"campaign\",\"retries\":101}", "retries"},
      {"{\"op\":\"campaign\",\"bogus\":1}", "unknown request field 'bogus'"},
      {"{\"op\":\"campaign\",\"seeds\":{\"nested\":1}}", "nested"},
      {"{\"op\":\"campaign\",\"journal\":\"a\",\"resume\":\"b\"}",
       "mutually exclusive"},
      {"{\"op\":\"status\"} trailing", "trailing"},
      // All four \u characters must be hex digits; strtol-style leniency
      // (leading whitespace, signs) is a parse error here.
      {"{\"op\":\"campaign\",\"scenario\":\"\\u+12f\"}", "malformed \\u escape"},
      {"{\"op\":\"campaign\",\"scenario\":\"\\u 12f\"}", "malformed \\u escape"},
      {"{\"op\":\"campaign\",\"scenario\":\"\\u00g1\"}", "malformed \\u escape"},
  };
  for (const auto& c : kCases) {
    ServeRequest req;
    std::string error;
    EXPECT_FALSE(ParseServeRequest(c.line, &req, &error)) << c.line;
    EXPECT_NE(error.find(c.needle), std::string::npos)
        << "line: " << c.line << " error: " << error;
  }
}

TEST(ServeProtocolTest, EscapeRoundTripsThroughExtract) {
  // The campaign document travels escaped in "body"; extraction must return
  // the exact original bytes, including control characters and quotes.
  const std::string body =
      "{\n  \"k\": \"v\\\"q\"\n}\n\ttab\rcr\x01\x1f backslash \\ end\n";
  const std::string response =
      RenderResultResponse("campaign", "quickstart", kExitOk, 2, 2, body);
  EXPECT_EQ(response.find('\n'), response.size() - 1)  // single line + '\n'
      << response;
  std::string out;
  ASSERT_TRUE(ExtractJsonStringField(response, "body", &out));
  EXPECT_EQ(out, body);
  long code = -1;
  ASSERT_TRUE(ExtractJsonIntField(response, "exit_code", &code));
  EXPECT_EQ(code, kExitOk);
  ASSERT_TRUE(ExtractJsonStringField(response, "status", &out));
  EXPECT_EQ(out, "ok");
}

TEST(ServeProtocolTest, StatusLabelsMatchExitCodes) {
  EXPECT_STREQ(ServeStatusLabel(kExitOk), "ok");
  EXPECT_STREQ(ServeStatusLabel(kExitQuarantine), "quarantined");
  EXPECT_STREQ(ServeStatusLabel(kExitInterrupted), "interrupted");
  EXPECT_STREQ(ServeStatusLabel(kExitUsage), "rejected");
  EXPECT_STREQ(ServeStatusLabel(kExitShed), "shed");
  EXPECT_STREQ(ServeStatusLabel(kExitIoError), "error");
}

TEST(ServeProtocolTest, ShedAndStatusEnvelopesCarryTheContract) {
  const std::string shed = RenderShedResponse("campaign", "request queue is full", 3, 3);
  long code = -1;
  ASSERT_TRUE(ExtractJsonIntField(shed, "exit_code", &code));
  EXPECT_EQ(code, kExitShed);
  ASSERT_TRUE(ExtractJsonIntField(shed, "queue_depth", &code));
  EXPECT_EQ(code, 3);
  std::string s;
  ASSERT_TRUE(ExtractJsonStringField(shed, "error", &s));
  EXPECT_EQ(s, "request queue is full");

  ServeStatus status;
  status.draining = true;
  status.uptime_ticks = 17;
  status.inflight_seeds = 5;
  const std::string line = RenderStatusResponse(status);
  ASSERT_TRUE(ExtractJsonIntField(line, "uptime_ticks", &code));
  EXPECT_EQ(code, 17);
  ASSERT_TRUE(ExtractJsonIntField(line, "inflight_seeds", &code));
  EXPECT_EQ(code, 5);
  EXPECT_NE(line.find("\"draining\":true"), std::string::npos) << line;
}

// --------------------------------------------------------------------------
// Daemon end-to-end (in-process): a real unix socket under TempDir.
// --------------------------------------------------------------------------
class ServeDaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // sun_path is ~108 bytes; keep the path short and per-process unique.
    socket_path_ = "/tmp/byterobust_serve_test_" + std::to_string(getpid()) + ".sock";
    std::remove(socket_path_.c_str());
  }
  void TearDown() override { std::remove(socket_path_.c_str()); }

  std::string Roundtrip(const std::string& body) {
    std::string response;
    std::string error;
    EXPECT_TRUE(ServeRoundtrip(socket_path_, body, /*connect_wait_s=*/5.0,
                               /*io_timeout_s=*/120.0, &response, &error))
        << error;
    return response;
  }

  // What the CLI's `campaign --stream` would print for the same parameters.
  static std::string EngineReference(const char* command, const char* scenario,
                                     int seeds) {
    CampaignRequest req;
    req.command = command;
    req.scenario = scenario;
    req.seeds = seeds;
    req.stream = true;
    CampaignEngineSpec spec;
    std::string error;
    EXPECT_TRUE(BuildCampaignEngineSpec(req, &spec, &error)) << error;
    std::string captured;
    spec.capture = &captured;
    EXPECT_EQ(RunCampaignEngine(spec), kExitOk);
    return captured;
  }

  std::string socket_path_;
};

TEST_F(ServeDaemonTest, StatusAndCampaignBodyMatchesEngine) {
  ServeOptions opts;
  opts.socket_path = socket_path_;
  opts.workers = 2;
  opts.jobs = 2;
  ServeDaemon daemon(opts);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  const std::string status = Roundtrip("{\"op\":\"status\"}");
  long v = -1;
  ASSERT_TRUE(ExtractJsonIntField(status, "exit_code", &v));
  EXPECT_EQ(v, kExitOk);
  ASSERT_TRUE(ExtractJsonIntField(status, "active_requests", &v));
  EXPECT_EQ(v, 0);

  const std::string response =
      Roundtrip("{\"op\":\"campaign\",\"scenario\":\"quickstart\",\"seeds\":2}");
  std::string body;
  ASSERT_TRUE(ExtractJsonStringField(response, "body", &body)) << response;
  EXPECT_EQ(body, EngineReference("campaign", "quickstart", 2));
  ASSERT_TRUE(ExtractJsonIntField(response, "seeds_done", &v));
  EXPECT_EQ(v, 2);

  const std::string fleet =
      Roundtrip("{\"op\":\"fleet\",\"scenario\":\"fleet-mixed\",\"seeds\":2}");
  ASSERT_TRUE(ExtractJsonStringField(fleet, "body", &body)) << fleet;
  EXPECT_EQ(body, EngineReference("fleet", "fleet-mixed", 2));

  const ServeStatus snapshot = daemon.Snapshot();
  EXPECT_EQ(snapshot.admitted, 2u);
  EXPECT_EQ(snapshot.completed, 2u);
  EXPECT_EQ(snapshot.shed, 0u);
  EXPECT_EQ(daemon.Drain(), kExitInterrupted);
}

TEST_F(ServeDaemonTest, ConcurrentIdenticalRequestsAreByteIdentical) {
  ServeOptions opts;
  opts.socket_path = socket_path_;
  opts.workers = 4;
  opts.jobs = 4;
  ServeDaemon daemon(opts);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  const std::string body =
      "{\"op\":\"campaign\",\"scenario\":\"gpu-fault\",\"seeds\":6,\"jobs\":4}";
  std::vector<std::string> responses(4);
  std::vector<std::thread> clients;
  for (std::size_t i = 0; i < responses.size(); ++i) {
    clients.emplace_back([this, &body, &responses, i] {
      responses[i] = Roundtrip(body);
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  for (std::size_t i = 1; i < responses.size(); ++i) {
    EXPECT_EQ(responses[i], responses[0]) << "client " << i;
  }
  std::string doc;
  ASSERT_TRUE(ExtractJsonStringField(responses[0], "body", &doc));
  EXPECT_EQ(doc, EngineReference("campaign", "gpu-fault", 6));
  EXPECT_EQ(daemon.Drain(), kExitInterrupted);
}

TEST_F(ServeDaemonTest, SeedCapRejectsAndUnknownScenarioRejects) {
  ServeOptions opts;
  opts.socket_path = socket_path_;
  opts.workers = 1;
  opts.max_seeds = 4;
  ServeDaemon daemon(opts);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  const std::string capped =
      Roundtrip("{\"op\":\"campaign\",\"scenario\":\"quickstart\",\"seeds\":5}");
  long code = -1;
  std::string s;
  ASSERT_TRUE(ExtractJsonIntField(capped, "exit_code", &code));
  EXPECT_EQ(code, kExitUsage);
  ASSERT_TRUE(ExtractJsonStringField(capped, "status", &s));
  EXPECT_EQ(s, "rejected");

  const std::string unknown =
      Roundtrip("{\"op\":\"campaign\",\"scenario\":\"nope\",\"seeds\":1}");
  ASSERT_TRUE(ExtractJsonIntField(unknown, "exit_code", &code));
  EXPECT_EQ(code, kExitUsage);
  ASSERT_TRUE(ExtractJsonStringField(unknown, "error", &s));
  EXPECT_NE(s.find("unknown scenario 'nope'"), std::string::npos) << s;

  // A cap rejection is not a shed: nothing about it is load-dependent.
  EXPECT_EQ(daemon.Snapshot().shed, 0u);
  EXPECT_EQ(daemon.Drain(), kExitInterrupted);
}

TEST_F(ServeDaemonTest, QueueFullShedsWhileInFlightRequestIsUnaffected) {
  ServeOptions opts;
  opts.socket_path = socket_path_;
  opts.workers = 1;   // one in-system slot...
  opts.max_queue = 0; // ...and no waiting room
  opts.jobs = 1;
  ServeDaemon daemon(opts);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  // Occupy the only slot with a deadline-bounded long request, then shed a
  // second one; the first must still complete as a valid partial document.
  std::string long_response;
  std::thread occupier([this, &long_response] {
    long_response = Roundtrip(
        "{\"op\":\"campaign\",\"scenario\":\"dense-month\",\"seeds\":64,"
        "\"jobs\":1,\"deadline_s\":0.8}");
  });
  // Wait until the occupier is actually executing before probing admission.
  for (int i = 0; i < 100 && daemon.Snapshot().active_requests == 0; ++i) {
    SleepMs(10.0);
  }
  ASSERT_EQ(daemon.Snapshot().active_requests, 1);

  const std::string shed =
      Roundtrip("{\"op\":\"campaign\",\"scenario\":\"quickstart\",\"seeds\":1}");
  long code = -1;
  ASSERT_TRUE(ExtractJsonIntField(shed, "exit_code", &code));
  EXPECT_EQ(code, kExitShed);
  std::string s;
  ASSERT_TRUE(ExtractJsonStringField(shed, "error", &s));
  EXPECT_EQ(s, "request queue is full");

  occupier.join();
  ASSERT_TRUE(ExtractJsonIntField(long_response, "exit_code", &code));
  EXPECT_EQ(code, kExitInterrupted);  // deadline, not the shed, ended it
  ASSERT_TRUE(ExtractJsonStringField(long_response, "body", &s));
  EXPECT_NE(s.find("\"runs\""), std::string::npos);  // valid partial document
  EXPECT_EQ(daemon.Snapshot().shed, 1u);
  EXPECT_EQ(daemon.Drain(), kExitInterrupted);
}

TEST_F(ServeDaemonTest, ConcurrentRequestsOnOneJournalPathAreRejected) {
  ServeOptions opts;
  opts.socket_path = socket_path_;
  opts.workers = 2;  // both requests could run — only the path collides
  opts.jobs = 1;
  ServeDaemon daemon(opts);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  const std::string journal =
      "/tmp/byterobust_serve_test_" + std::to_string(getpid()) + ".journal";
  std::remove(journal.c_str());

  // Occupy the journal path with a deadline-bounded long request; a second
  // request naming the same path must be rejected, not allowed to truncate
  // and interleave the first one's records.
  std::string long_response;
  std::thread occupier([this, &journal, &long_response] {
    long_response = Roundtrip(
        "{\"op\":\"campaign\",\"scenario\":\"dense-month\",\"seeds\":64,"
        "\"jobs\":1,\"deadline_s\":0.8,\"journal\":\"" + journal + "\"}");
  });
  for (int i = 0; i < 100 && daemon.Snapshot().active_requests == 0; ++i) {
    SleepMs(10.0);
  }
  ASSERT_EQ(daemon.Snapshot().active_requests, 1);

  const std::string conflict = Roundtrip(
      "{\"op\":\"campaign\",\"scenario\":\"quickstart\",\"seeds\":1,"
      "\"journal\":\"" + journal + "\"}");
  long code = -1;
  ASSERT_TRUE(ExtractJsonIntField(conflict, "exit_code", &code));
  EXPECT_EQ(code, kExitUsage);
  std::string s;
  ASSERT_TRUE(ExtractJsonStringField(conflict, "error", &s));
  EXPECT_NE(s.find("already in use"), std::string::npos) << s;

  occupier.join();
  // Completion released the reservation: the same path admits again.
  const std::string after = Roundtrip(
      "{\"op\":\"campaign\",\"scenario\":\"quickstart\",\"seeds\":1,"
      "\"journal\":\"" + journal + "\"}");
  ASSERT_TRUE(ExtractJsonIntField(after, "exit_code", &code));
  EXPECT_EQ(code, kExitOk);
  // A path conflict is a client error, not load: nothing was shed.
  EXPECT_EQ(daemon.Snapshot().shed, 0u);
  EXPECT_EQ(daemon.Drain(), kExitInterrupted);
  std::remove(journal.c_str());
}

TEST_F(ServeDaemonTest, DrainShedsNewRequestsAndExitsInterrupted) {
  ServeOptions opts;
  opts.socket_path = socket_path_;
  opts.workers = 2;
  ServeDaemon daemon(opts);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  daemon.RequestDrain();
  const std::string shed =
      Roundtrip("{\"op\":\"campaign\",\"scenario\":\"quickstart\",\"seeds\":1}");
  long code = -1;
  ASSERT_TRUE(ExtractJsonIntField(shed, "exit_code", &code));
  EXPECT_EQ(code, kExitShed);
  std::string s;
  ASSERT_TRUE(ExtractJsonStringField(shed, "error", &s));
  EXPECT_EQ(s, "daemon is draining");
  EXPECT_EQ(daemon.Drain(), kExitInterrupted);
}

}  // namespace
}  // namespace byterobust

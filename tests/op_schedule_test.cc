// Unit tests for the Fig. 8 checkpoint operation schedule.

#include <gtest/gtest.h>

#include "src/ckpt/op_schedule.h"

namespace byterobust {
namespace {

OpScheduleInputs DefaultInputs() {
  OpScheduleInputs in;
  in.forward = Seconds(1.4);
  in.backward = Seconds(2.6);
  in.optimizer = Seconds(0.1);
  in.model_bytes = 2.2e9;
  in.optimizer_bytes = 0.4e9;
  return in;
}

TEST(OpScheduleTest, InterleavedScheduleIsResourceFeasible) {
  const OpSchedule schedule = BuildCheckpointSchedule(DefaultInputs(), true);
  EXPECT_TRUE(schedule.ResourceFeasible()) << schedule.Render();
}

TEST(OpScheduleTest, BulkScheduleIsResourceFeasible) {
  const OpSchedule schedule = BuildCheckpointSchedule(DefaultInputs(), false);
  EXPECT_TRUE(schedule.ResourceFeasible()) << schedule.Render();
}

TEST(OpScheduleTest, InterleavingHidesTheBackupTraffic) {
  const OpSchedule interleaved = BuildCheckpointSchedule(DefaultInputs(), true);
  const OpSchedule bulk = BuildCheckpointSchedule(DefaultInputs(), false);
  // Chunked interleaving hides backup sends in idle comm windows; the bulk
  // baseline extends the step by (almost) the whole transfer.
  EXPECT_LT(interleaved.BlockingTime(), bulk.BlockingTime());
  EXPECT_GE(bulk.BlockingTime(), Milliseconds(100));
  EXPECT_LE(interleaved.BlockingTime(), Milliseconds(20));
}

TEST(OpScheduleTest, D2hRunsOnDedicatedStreamDuringCompute) {
  const OpSchedule schedule = BuildCheckpointSchedule(DefaultInputs(), true);
  // D2H ops overlap forward/backward compute but never touch the compute
  // stream or the training collectives' channel.
  for (const ScheduledOp& op : schedule.ops) {
    if (op.name.rfind("D2H", 0) == 0) {
      EXPECT_EQ(op.resource, OpResource::kCkptStream);
      EXPECT_LT(op.start, Seconds(1.4) + Seconds(2.6)) << "D2H should overlap compute";
    }
  }
}

TEST(OpScheduleTest, OptimizerWaitsForOwnSave) {
  // Make D2H artificially slow so it outlasts forward+backward: the
  // optimizer must be pushed back to the D2H completion point.
  OpScheduleInputs in = DefaultInputs();
  in.pcie_gbps = 0.5;  // 2.6 GB at 0.5 GB/s = 5.2 s > 4.0 s of compute
  const OpSchedule schedule = BuildCheckpointSchedule(in, true);
  SimTime d2h_done = 0;
  SimTime opt_start = 0;
  for (const ScheduledOp& op : schedule.ops) {
    if (op.name == "D2H optimizer shard") {
      d2h_done = op.end;
    }
    if (op.name == "optimizer step") {
      opt_start = op.start;
    }
  }
  EXPECT_EQ(opt_start, d2h_done);
  EXPECT_GT(schedule.BlockingTime(), Seconds(1.0));
}

TEST(OpScheduleTest, SerializationIsPipelinedBehindD2h) {
  const OpSchedule schedule = BuildCheckpointSchedule(DefaultInputs(), true);
  SimTime model_d2h_end = 0;
  SimTime model_ser_start = 0;
  for (const ScheduledOp& op : schedule.ops) {
    if (op.name == "D2H model shard") {
      model_d2h_end = op.end;
    }
    if (op.name == "serialize model shard") {
      model_ser_start = op.start;
    }
  }
  EXPECT_EQ(model_ser_start, model_d2h_end);
}

TEST(OpScheduleTest, ChunkCountControlsGranularity) {
  OpScheduleInputs in = DefaultInputs();
  in.backup_chunks = 4;
  const OpSchedule s4 = BuildCheckpointSchedule(in, true);
  int chunks = 0;
  for (const ScheduledOp& op : s4.ops) {
    if (op.name.rfind("backup send chunk", 0) == 0) {
      ++chunks;
    }
  }
  EXPECT_EQ(chunks, 4);
}

TEST(OpScheduleTest, StepTimeAccounting) {
  const OpSchedule schedule = BuildCheckpointSchedule(DefaultInputs(), true);
  EXPECT_EQ(schedule.step_time_without_ckpt, Seconds(1.4) + Seconds(2.6) + Seconds(0.1));
  EXPECT_GE(schedule.step_time_with_ckpt, schedule.step_time_without_ckpt);
  EXPECT_FALSE(schedule.Render().empty());
}

}  // namespace
}  // namespace byterobust

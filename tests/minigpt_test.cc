// Unit tests for the MiniGPT bit-wise verification suite (Sec. 4.3 / 9).

#include <gtest/gtest.h>

#include "src/diagnoser/minigpt.h"

namespace byterobust {
namespace {

TEST(MiniGptTest, GoldenOutputIsDeterministic) {
  MiniGptVerifier a;
  MiniGptVerifier b;
  EXPECT_EQ(a.GoldenOutput(), b.GoldenOutput());
  EXPECT_EQ(a.GoldenOutput().size(), 16u);
}

TEST(MiniGptTest, DifferentWeightSeedsChangeTheGolden) {
  MiniGptConfig cfg;
  cfg.weight_seed = 123;
  MiniGptVerifier a(cfg);
  cfg.weight_seed = 456;
  MiniGptVerifier b(cfg);
  EXPECT_NE(a.GoldenOutput(), b.GoldenOutput());
}

TEST(MiniGptTest, HealthyMachineReproducesGoldenBitwise) {
  MiniGptVerifier verifier;
  Machine healthy(0, 8);
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(verifier.RunOnMachine(healthy, &rng), verifier.GoldenOutput());
  }
}

TEST(MiniGptTest, SdcMachineDivergesWithManifestProbability) {
  MiniGptConfig cfg;
  cfg.sdc_manifest_prob = 0.9;
  MiniGptVerifier verifier(cfg);
  Machine sdc(0, 8);
  sdc.gpu(3).sdc = true;
  Rng rng(2);
  int diverged = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    if (verifier.RunOnMachine(sdc, &rng) != verifier.GoldenOutput()) {
      ++diverged;
    }
  }
  EXPECT_NEAR(static_cast<double>(diverged) / trials, 0.9, 0.03);
}

TEST(MiniGptTest, SingleBitFlipPropagatesToOutput) {
  // Property: any single corrupted accumulator must change the final output
  // (otherwise the test would silently miss that corruption site). The
  // residual connection plus multiplicative mixing make every lane live.
  MiniGptConfig cfg;
  cfg.sdc_manifest_prob = 1.0;
  MiniGptVerifier verifier(cfg);
  Machine sdc(0, 8);
  sdc.gpu(0).sdc = true;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    EXPECT_NE(verifier.RunOnMachine(sdc, &rng), verifier.GoldenOutput());
  }
}

TEST(MiniGptTest, FindMismatchedMachinesIsolatesOnlySdc) {
  MiniGptConfig cfg;
  cfg.sdc_manifest_prob = 1.0;
  MiniGptVerifier verifier(cfg);
  Cluster cluster(6, 8);
  cluster.machine(2).gpu(1).sdc = true;
  cluster.machine(4).gpu(0).sdc = true;
  // Non-SDC faults do not corrupt arithmetic and must not be flagged.
  cluster.machine(1).host().nic_up = false;
  cluster.machine(3).gpu(0).dcgm_responsive = false;
  Rng rng(4);
  EXPECT_EQ(verifier.FindMismatchedMachines(cluster, &rng),
            (std::vector<MachineId>{2, 4}));
}

TEST(MiniGptTest, LargerConfigsStillDeterministic) {
  MiniGptConfig cfg;
  cfg.layers = 8;
  cfg.dim = 32;
  MiniGptVerifier a(cfg);
  MiniGptVerifier b(cfg);
  EXPECT_EQ(a.GoldenOutput(), b.GoldenOutput());
  EXPECT_EQ(a.GoldenOutput().size(), 32u);
}

}  // namespace
}  // namespace byterobust

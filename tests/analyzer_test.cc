// Unit tests for the runtime analyzer: aggregation analysis and fail-slow
// voting (paper Sec. 5, Fig. 7).

#include <gtest/gtest.h>

#include <set>

#include "src/analyzer/aggregation.h"
#include "src/tracer/stack_synth.h"

namespace byterobust {
namespace {

Topology Fig7Topology() {
  ParallelismConfig cfg;
  cfg.tp = 2;
  cfg.pp = 4;
  cfg.dp = 4;
  cfg.gpus_per_machine = 2;
  return Topology(cfg);
}

TEST(AggregationTest, Fig7HangIsolatesThePipelineGroup) {
  const Topology topo = Fig7Topology();
  const auto stacks = SynthesizeHangStacks(topo, 30, HangSite::kTensorCollective);
  AggregationAnalyzer analyzer;
  const AggregationResult result = analyzer.Analyze(stacks, topo);

  // Outliers: machines 12, 13 (irecv), 14 (isend), 15 (all-gather).
  EXPECT_EQ(result.outlier_machines, (std::vector<MachineId>{12, 13, 14, 15}));
  ASSERT_TRUE(result.found_group);
  EXPECT_EQ(result.isolated_group.kind, GroupKind::kPipeline);
  EXPECT_EQ(result.machines_to_evict, (std::vector<MachineId>{12, 13, 14, 15}));
  // The dominant group is the 24 healthy reduce-scatter ranks.
  EXPECT_TRUE(result.groups.front().healthy);
  EXPECT_EQ(result.groups.front().ranks.size(), 24u);
}

TEST(AggregationTest, SubprocessOutliersAreDetected) {
  const Topology topo = Fig7Topology();
  const auto stacks = SynthesizeFullPodStacks(topo, 6, HangSite::kDataLoader);
  AggregationAnalyzer analyzer;
  const AggregationResult result = analyzer.Analyze(stacks, topo);
  // Rank 6 lives on machine 3; its wedged dataloader makes the machine an
  // outlier even though most of its processes look healthy.
  const MachineId culprit_machine = topo.MachineOfRank(6);
  bool found = false;
  for (MachineId m : result.outlier_machines) {
    if (m == culprit_machine) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_FALSE(result.machines_to_evict.empty());
}

TEST(AggregationTest, AllHealthyYieldsNothing) {
  const Topology topo = Fig7Topology();
  std::vector<ProcessStack> stacks;
  for (Rank r = 0; r < topo.world_size(); ++r) {
    stacks.push_back({r, topo.MachineOfRank(r), ProcessKind::kTrainer, HealthyGradSyncStack()});
  }
  AggregationAnalyzer analyzer;
  const AggregationResult result = analyzer.Analyze(stacks, topo);
  EXPECT_TRUE(result.outlier_machines.empty());
  EXPECT_TRUE(result.machines_to_evict.empty());
  EXPECT_FALSE(result.found_group);
}

TEST(AggregationTest, EmptyInputIsSafe) {
  const Topology topo = Fig7Topology();
  AggregationAnalyzer analyzer;
  const AggregationResult result = analyzer.Analyze({}, topo);
  EXPECT_TRUE(result.groups.empty());
  EXPECT_TRUE(result.machines_to_evict.empty());
}

TEST(AggregationTest, DominantFractionControlsHealthyCutoff) {
  const Topology topo = Fig7Topology();
  // Two groups of similar size: with dominant_fraction 0.5 both count as
  // healthy; with 0.95 the smaller one becomes an outlier.
  std::vector<ProcessStack> stacks;
  for (Rank r = 0; r < topo.world_size(); ++r) {
    const bool minority = r >= 20;  // 20 vs 12 split
    stacks.push_back({r, topo.MachineOfRank(r), ProcessKind::kTrainer,
                      minority ? TensorCollectiveStack() : HealthyGradSyncStack()});
  }
  AggregationAnalyzer loose(AggregationConfig{0.5});
  EXPECT_TRUE(loose.Analyze(stacks, topo).outlier_machines.empty());
  AggregationAnalyzer strict(AggregationConfig{0.95});
  EXPECT_FALSE(strict.Analyze(stacks, topo).outlier_machines.empty());
}

TEST(FailSlowVoterTest, VotingSeesThroughSamplingNoise) {
  const Topology topo = Fig7Topology();
  AggregationAnalyzer analyzer;
  FailSlowVoter voter(5);
  // Machine 7 is the true degrader; the synthesized rounds add a noisy false
  // outlier every ~3rd round.
  for (int round = 0; round < 5; ++round) {
    const auto stacks = SynthesizeFailSlowStacks(topo, 7, static_cast<std::uint64_t>(round));
    voter.AddRound(analyzer.Analyze(stacks, topo));
  }
  ASSERT_TRUE(voter.Ready());
  GroupKind kind;
  int index;
  ASSERT_TRUE(voter.Decide(&kind, &index));
  // The winning group must contain machine 7.
  bool contains = false;
  for (const ParallelGroup& g : topo.Groups(kind)) {
    if (g.index != index) {
      continue;
    }
    for (MachineId m : topo.MachinesOfGroup(g)) {
      if (m == 7) {
        contains = true;
      }
    }
  }
  EXPECT_TRUE(contains);
}

TEST(FailSlowVoterTest, NotReadyBeforeEnoughRounds) {
  FailSlowVoter voter(5);
  AggregationResult empty;
  EXPECT_FALSE(voter.AddRound(empty));
  EXPECT_FALSE(voter.Ready());
  EXPECT_EQ(voter.rounds_seen(), 1);
}

TEST(FailSlowVoterTest, UndecidedWithoutFlags) {
  FailSlowVoter voter(2);
  AggregationResult empty;
  voter.AddRound(empty);
  voter.AddRound(empty);
  ASSERT_TRUE(voter.Ready());
  GroupKind kind;
  int index;
  EXPECT_FALSE(voter.Decide(&kind, &index));
}

TEST(AggregationTest, DeterministicGroupOrdering) {
  const Topology topo = Fig7Topology();
  const auto stacks = SynthesizeHangStacks(topo, 30, HangSite::kTensorCollective);
  AggregationAnalyzer analyzer;
  const auto a = analyzer.Analyze(stacks, topo);
  const auto b = analyzer.Analyze(stacks, topo);
  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (std::size_t i = 0; i < a.groups.size(); ++i) {
    EXPECT_EQ(a.groups[i].key, b.groups[i].key);
  }
}

// The memoized fail-slow rounds must be observably identical to a fresh
// synthesis + aggregation for every (slow machine, round seed) combination,
// including rounds with sampling jitter and repeated cache hits.
TEST(FailSlowVoteCacheTest, MatchesReferenceSynthesisAcrossRoundsAndSlowMachines) {
  const Topology topo = Fig7Topology();
  AggregationAnalyzer analyzer;
  FailSlowVoteCache cache;
  for (MachineId slow : {0, 7, 15}) {
    for (std::uint64_t seed = 0; seed < 24; ++seed) {
      const auto reference =
          analyzer.Analyze(SynthesizeFailSlowStacks(topo, slow, seed), topo);
      const AggregationResult& cached = cache.Round(analyzer, topo, slow, seed);
      ASSERT_EQ(cached.groups.size(), reference.groups.size()) << slow << "/" << seed;
      for (std::size_t g = 0; g < cached.groups.size(); ++g) {
        EXPECT_EQ(cached.groups[g].key, reference.groups[g].key);
        EXPECT_EQ(cached.groups[g].ranks, reference.groups[g].ranks);
        EXPECT_EQ(cached.groups[g].machines, reference.groups[g].machines);
        EXPECT_EQ(cached.groups[g].healthy, reference.groups[g].healthy);
      }
      EXPECT_EQ(cached.outlier_machines, reference.outlier_machines);
      EXPECT_EQ(cached.found_group, reference.found_group);
      EXPECT_EQ(cached.machines_to_evict, reference.machines_to_evict);
      if (cached.found_group) {
        EXPECT_EQ(cached.isolated_group.kind, reference.isolated_group.kind);
        EXPECT_EQ(cached.isolated_group.index, reference.isolated_group.index);
      }
    }
  }
}

TEST(FailSlowVoteCacheTest, NoiseMachineMatchesSynthesizedJitter) {
  const Topology topo = Fig7Topology();
  // FailSlowNoiseMachine must predict exactly which machine the synthesized
  // round flags beyond the slow one.
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    const MachineId noisy = FailSlowNoiseMachine(seed, topo.num_machines());
    const MachineId slow = 3;
    const auto stacks = SynthesizeFailSlowStacks(topo, slow, seed);
    std::set<MachineId> laggards;
    for (const ProcessStack& ps : stacks) {
      if (ps.stack == ComputeKernelStack()) {
        laggards.insert(ps.machine);
      }
    }
    std::set<MachineId> expected{slow};
    if (noisy >= 0 && noisy != slow) {
      expected.insert(noisy);
    }
    EXPECT_EQ(laggards, expected) << "seed " << seed;
  }
}

}  // namespace
}  // namespace byterobust

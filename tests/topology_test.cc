// Unit + property tests for the 3D-parallel topology. The concrete expectations
// come straight from the paper's figures: Fig. 7 (TP=2, PP=4, DP=4 on 16
// two-GPU machines) and Fig. 9 (TP=2, PP=4, DP=2 backup exchange).

#include <gtest/gtest.h>

#include <set>

#include "src/topology/parallelism.h"

namespace byterobust {
namespace {

ParallelismConfig Fig7Config() {
  ParallelismConfig cfg;
  cfg.tp = 2;
  cfg.pp = 4;
  cfg.dp = 4;
  cfg.gpus_per_machine = 2;
  return cfg;
}

ParallelismConfig Fig9Config() {
  ParallelismConfig cfg;
  cfg.tp = 2;
  cfg.pp = 4;
  cfg.dp = 2;
  cfg.gpus_per_machine = 2;
  return cfg;
}

TEST(ParallelismConfigTest, Validity) {
  EXPECT_TRUE(Fig7Config().Valid());
  ParallelismConfig bad = Fig7Config();
  bad.gpus_per_machine = 3;  // 32 % 3 != 0
  EXPECT_FALSE(bad.Valid());
  bad = Fig7Config();
  bad.tp = 0;
  EXPECT_FALSE(bad.Valid());
  EXPECT_THROW(Topology{bad}, std::invalid_argument);
}

TEST(TopologyTest, Fig7MachinePlacement) {
  Topology topo(Fig7Config());
  EXPECT_EQ(topo.world_size(), 32);
  EXPECT_EQ(topo.num_machines(), 16);
  // Machine 15 hosts ranks 30, 31 (the last pipeline stage of dp group 3).
  EXPECT_EQ(topo.RanksOnMachine(15), (std::vector<Rank>{30, 31}));
  EXPECT_EQ(topo.MachineOfRank(30), 15);
}

TEST(TopologyTest, Fig7PipelineGroupSpansMachines12To15) {
  Topology topo(Fig7Config());
  // Rank 30 = (tp=0, pp=3, dp=3); its PP group walks pp = 0..3 at dp=3.
  const std::vector<Rank> pp_group = topo.PipelineGroupOf(30);
  EXPECT_EQ(pp_group, (std::vector<Rank>{24, 26, 28, 30}));
  std::set<MachineId> machines;
  for (Rank r : pp_group) {
    machines.insert(topo.MachineOfRank(r));
  }
  EXPECT_EQ(machines, (std::set<MachineId>{12, 13, 14, 15}));
}

TEST(TopologyTest, CoordRoundTripFig7) {
  Topology topo(Fig7Config());
  const RankCoord c = topo.CoordOf(30);
  EXPECT_EQ(c.tp, 0);
  EXPECT_EQ(c.pp, 3);
  EXPECT_EQ(c.dp, 3);
  EXPECT_EQ(topo.RankOf(c), 30);
}

TEST(TopologyTest, Fig9BackupPartnerIsRanks8To2) {
  Topology topo(Fig9Config());
  // Paper: "ranks 8 and 9 exchange their optimizer states with ranks 2 and 3,
  // ensuring that none share the same PP, DP, or TP groups."
  EXPECT_EQ(topo.BackupPartnerOf(8), 2);
  EXPECT_EQ(topo.BackupPartnerOf(9), 3);
  EXPECT_FALSE(topo.SharesAnyGroup(8, 2));
  EXPECT_FALSE(topo.SharesAnyGroup(9, 3));
}

TEST(TopologyTest, GroupIndexingIsDense) {
  Topology topo(Fig7Config());
  for (GroupKind kind : {GroupKind::kTensor, GroupKind::kPipeline, GroupKind::kData}) {
    const int n = topo.NumGroups(kind);
    std::set<int> seen;
    for (Rank r = 0; r < topo.world_size(); ++r) {
      const int idx = topo.GroupIndexOf(r, kind);
      EXPECT_GE(idx, 0);
      EXPECT_LT(idx, n);
      seen.insert(idx);
    }
    EXPECT_EQ(static_cast<int>(seen.size()), n);
  }
}

TEST(TopologyTest, GroupsPartitionTheWorld) {
  Topology topo(Fig7Config());
  for (GroupKind kind : {GroupKind::kTensor, GroupKind::kPipeline, GroupKind::kData}) {
    std::set<Rank> covered;
    for (const ParallelGroup& g : topo.Groups(kind)) {
      for (Rank r : g.ranks) {
        EXPECT_TRUE(covered.insert(r).second) << "rank in two groups of same kind";
      }
    }
    EXPECT_EQ(static_cast<int>(covered.size()), topo.world_size());
  }
}

TEST(TopologyTest, FindCoveringGroupPrefersPipeline) {
  Topology topo(Fig7Config());
  // Machines 12-15 are exactly one PP group (see Fig. 7).
  ParallelGroup group;
  ASSERT_TRUE(topo.FindCoveringGroup({12, 13, 14, 15}, &group));
  EXPECT_EQ(group.kind, GroupKind::kPipeline);
  EXPECT_EQ(topo.MachinesOfGroup(group), (std::vector<MachineId>{12, 13, 14, 15}));
}

TEST(TopologyTest, FindCoveringGroupSingleMachine) {
  Topology topo(Fig7Config());
  ParallelGroup group;
  ASSERT_TRUE(topo.FindCoveringGroup({5}, &group));
  const std::vector<MachineId> machines = topo.MachinesOfGroup(group);
  EXPECT_NE(std::find(machines.begin(), machines.end(), 5), machines.end());
}

TEST(TopologyTest, FindCoveringGroupFailsAcrossUnrelatedMachines) {
  Topology topo(Fig7Config());
  ParallelGroup group;
  // Machines 0 and 15 share no single TP/PP/DP group (different tp columns,
  // different dp, different pp rows at machine granularity).
  EXPECT_FALSE(topo.FindCoveringGroup({0, 5, 10, 15}, &group));
}

TEST(TopologyTest, OutOfRangeThrows) {
  Topology topo(Fig7Config());
  EXPECT_THROW(topo.CoordOf(-1), std::out_of_range);
  EXPECT_THROW(topo.CoordOf(32), std::out_of_range);
  EXPECT_THROW(topo.MachineOfRank(32), std::out_of_range);
  EXPECT_THROW(topo.RanksOnMachine(16), std::out_of_range);
}

// ---- Parameterized properties over a spread of configurations -------------

struct TopoCase {
  int tp, pp, dp, gpm;
};

class TopologyProperty : public ::testing::TestWithParam<TopoCase> {
 protected:
  Topology MakeTopo() const {
    const auto& c = GetParam();
    ParallelismConfig cfg;
    cfg.tp = c.tp;
    cfg.pp = c.pp;
    cfg.dp = c.dp;
    cfg.gpus_per_machine = c.gpm;
    return Topology(cfg);
  }
};

TEST_P(TopologyProperty, CoordRoundTripsForAllRanks) {
  Topology topo = MakeTopo();
  for (Rank r = 0; r < topo.world_size(); ++r) {
    EXPECT_EQ(topo.RankOf(topo.CoordOf(r)), r);
  }
}

TEST_P(TopologyProperty, GroupSizesMatchDegrees) {
  Topology topo = MakeTopo();
  const auto& cfg = topo.config();
  for (Rank r = 0; r < topo.world_size(); ++r) {
    EXPECT_EQ(topo.TensorGroupOf(r).size(), static_cast<std::size_t>(cfg.tp));
    EXPECT_EQ(topo.PipelineGroupOf(r).size(), static_cast<std::size_t>(cfg.pp));
    EXPECT_EQ(topo.DataGroupOf(r).size(), static_cast<std::size_t>(cfg.dp));
  }
}

TEST_P(TopologyProperty, BackupPartnerCrossesAllGroupsWhenNonDegenerate) {
  Topology topo = MakeTopo();
  const auto& cfg = topo.config();
  if (cfg.pp < 2 || cfg.dp < 2) {
    GTEST_SKIP() << "degenerate config uses neighbor fallback";
  }
  for (Rank r = 0; r < topo.world_size(); ++r) {
    const Rank partner = topo.BackupPartnerOf(r);
    EXPECT_NE(partner, r);
    EXPECT_FALSE(topo.SharesAnyGroup(r, partner))
        << "rank " << r << " backs up into its own parallel group";
  }
}

TEST_P(TopologyProperty, MachineMappingIsContiguousAndComplete) {
  Topology topo = MakeTopo();
  std::set<Rank> all;
  for (MachineId m = 0; m < topo.num_machines(); ++m) {
    for (Rank r : topo.RanksOnMachine(m)) {
      EXPECT_EQ(topo.MachineOfRank(r), m);
      all.insert(r);
    }
  }
  EXPECT_EQ(static_cast<int>(all.size()), topo.world_size());
}

INSTANTIATE_TEST_SUITE_P(
    Configs, TopologyProperty,
    ::testing::Values(TopoCase{2, 4, 4, 2}, TopoCase{2, 4, 2, 2}, TopoCase{8, 8, 4, 16},
                      TopoCase{4, 2, 8, 8}, TopoCase{1, 4, 4, 4}, TopoCase{2, 1, 8, 4},
                      TopoCase{8, 1, 1, 8}, TopoCase{1, 1, 16, 8}, TopoCase{8, 16, 4, 16},
                      // The Sec. 8.1 production shapes: 9,600-GPU dense and MoE.
                      TopoCase{8, 8, 150, 8}, TopoCase{8, 10, 120, 8}));

// The constructor-time lookup tables must answer exactly what the closed-form
// expressions answered before the precomputation refactor.
TEST_P(TopologyProperty, TableLookupsMatchFormulas) {
  Topology topo = MakeTopo();
  const auto& cfg = topo.config();
  for (Rank r = 0; r < topo.world_size(); ++r) {
    const RankCoord c = topo.CoordOf(r);
    EXPECT_EQ(c.tp, r % cfg.tp);
    EXPECT_EQ(c.pp, (r / cfg.tp) % cfg.pp);
    EXPECT_EQ(c.dp, r / (cfg.tp * cfg.pp));
    EXPECT_EQ(topo.MachineOfRank(r), r / cfg.gpus_per_machine);

    std::vector<Rank> want_pp;
    for (int p = 0; p < cfg.pp; ++p) {
      want_pp.push_back(topo.RankOf({c.tp, p, c.dp}));
    }
    EXPECT_EQ(topo.PipelineGroupOf(r), want_pp);
    std::vector<Rank> want_dp;
    for (int d = 0; d < cfg.dp; ++d) {
      want_dp.push_back(topo.RankOf({c.tp, c.pp, d}));
    }
    EXPECT_EQ(topo.DataGroupOf(r), want_dp);
    std::vector<Rank> want_tp;
    for (int t = 0; t < cfg.tp; ++t) {
      want_tp.push_back(topo.RankOf({t, c.pp, c.dp}));
    }
    EXPECT_EQ(topo.TensorGroupOf(r), want_tp);
  }
}

// The precomputed machine lists and bitmasks must agree with a direct
// recomputation from group membership.
TEST_P(TopologyProperty, GroupMachineTablesMatchDirectComputation) {
  Topology topo = MakeTopo();
  for (GroupKind kind : {GroupKind::kTensor, GroupKind::kPipeline, GroupKind::kData}) {
    for (const ParallelGroup& g : topo.AllGroups(kind)) {
      std::set<MachineId> want;
      for (Rank r : g.ranks) {
        want.insert(topo.MachineOfRank(r));
      }
      const std::vector<MachineId> expect(want.begin(), want.end());
      EXPECT_EQ(topo.MachinesOfGroup(g), expect);
      EXPECT_EQ(topo.GroupMachines(kind, g.index), expect);
      const MachineSet& mask = topo.GroupMachineSet(kind, g.index);
      EXPECT_EQ(mask.Count(), static_cast<int>(want.size()));
      for (MachineId m = 0; m < topo.num_machines(); ++m) {
        EXPECT_EQ(mask.Contains(m), want.count(m) > 0);
      }
    }
  }
}

TEST(TopologyTest, MachinesOfGroupHandlesForeignGroups) {
  Topology topo(Fig7Config());
  // A hand-built group (index does not correspond to its ranks) still gets a
  // correct, deduplicated, sorted machine list via the fallback path.
  ParallelGroup custom;
  custom.kind = GroupKind::kPipeline;
  custom.index = 0;
  custom.ranks = {31, 0, 1, 30};
  EXPECT_EQ(topo.MachinesOfGroup(custom), (std::vector<MachineId>{0, 15}));
}

// Frozen campaign template: equal configs share one immutable instance;
// distinct configs get distinct instances with the right tables.
TEST(TopologyTest, SharedTopologyCachesPerConfig) {
  ParallelismConfig cfg;
  cfg.tp = 2;
  cfg.pp = 4;
  cfg.dp = 4;
  cfg.gpus_per_machine = 2;
  const auto a = SharedTopology(cfg);
  const auto b = SharedTopology(cfg);
  EXPECT_EQ(a.get(), b.get());  // one frozen instance per config

  ParallelismConfig other = cfg;
  other.dp = 8;
  const auto c = SharedTopology(other);
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(c->world_size(), 64);

  // The shared instance answers exactly like a freshly built topology.
  const Topology fresh(cfg);
  for (Rank r = 0; r < fresh.world_size(); ++r) {
    EXPECT_EQ(a->MachineOfRank(r), fresh.MachineOfRank(r));
    EXPECT_TRUE(a->CoordOf(r) == fresh.CoordOf(r));
  }
}

}  // namespace
}  // namespace byterobust

// Determinism suite: the simulator rewrite (bucket queue, slab, tombstone
// cancellation) must not change observable behavior for a fixed seed. Two
// runs of the same campaign must agree on every metric, and cancel-heavy
// event patterns must dispatch in exactly (time, schedule order).

#include <gtest/gtest.h>

#include <vector>

#include "src/core/scenario.h"
#include "src/sim/simulator.h"

namespace byterobust {
namespace {

ScenarioConfig SmallCampaign(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.system.job.name = "determinism-7B";
  cfg.system.job.model_params_b = 7.0;
  cfg.system.job.parallelism.tp = 2;
  cfg.system.job.parallelism.pp = 4;
  cfg.system.job.parallelism.dp = 4;
  cfg.system.job.parallelism.gpus_per_machine = 2;
  cfg.system.job.base_step_time = Seconds(10);
  cfg.system.seed = seed;
  cfg.system.spare_machines = 4;
  cfg.duration = Days(0.5);
  cfg.injector.reference_mtbf = Hours(1.0);
  cfg.injector.reference_machines = 64;
  cfg.planned_updates = 2;
  return cfg;
}

struct CampaignFingerprint {
  int incidents = 0;
  int refails = 0;
  int updates = 0;
  std::int64_t steps = 0;
  int runs = 0;
  int evictions = 0;
  double ettr = 0.0;
  SimDuration productive = 0;
  std::uint64_t dispatched = 0;
  std::vector<SimDuration> resolution_times;

  bool operator==(const CampaignFingerprint&) const = default;
};

CampaignFingerprint RunCampaign(std::uint64_t seed) {
  Scenario scenario(SmallCampaign(seed));
  scenario.Run();
  ByteRobustSystem& sys = scenario.system();
  CampaignFingerprint fp;
  fp.incidents = scenario.stats().incidents_injected;
  fp.refails = scenario.stats().refails;
  fp.updates = scenario.stats().updates_submitted;
  fp.steps = sys.job().max_step_reached();
  fp.runs = sys.job().run_count();
  fp.evictions = sys.controller().evictions_total();
  fp.ettr = sys.ettr().CumulativeEttr(sys.sim().Now());
  fp.productive = sys.ettr().productive_time();
  fp.dispatched = sys.sim().events_dispatched();
  for (const IncidentResolution& res : sys.controller().log().entries()) {
    fp.resolution_times.push_back(res.TotalUnproductive());
  }
  return fp;
}

TEST(DeterminismTest, SameSeedCampaignsAreIdentical) {
  const CampaignFingerprint a = RunCampaign(2024);
  const CampaignFingerprint b = RunCampaign(2024);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.incidents, 0) << "campaign too quiet to be a meaningful check";
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  // Sanity check that the fingerprint actually captures campaign behavior.
  const CampaignFingerprint a = RunCampaign(2024);
  const CampaignFingerprint b = RunCampaign(2025);
  EXPECT_FALSE(a == b);
}

// A cancel-heavy interleaving replayed twice must yield the same dispatch
// sequence, and that sequence must honor (time, schedule order).
TEST(DeterminismTest, CancelHeavyInterleavingReplaysExactly) {
  const auto run = [] {
    Simulator sim;
    std::vector<int> order;
    std::vector<EventId> ids;
    for (int i = 0; i < 200; ++i) {
      const SimTime t = Seconds((i * 37) % 50);
      ids.push_back(sim.ScheduleAt(t, [&order, i] { order.push_back(i); }));
    }
    for (int i = 0; i < 200; i += 3) {
      sim.Cancel(ids[static_cast<std::size_t>(i)]);
    }
    sim.Run();
    return order;
  };
  const std::vector<int> first = run();
  const std::vector<int> second = run();
  EXPECT_EQ(first, second);
  ASSERT_FALSE(first.empty());
  // Reconstruct the expected order from the schedule: sort by (time, index)
  // over the surviving events.
  std::vector<int> expected;
  for (SimTime t = 0; t < 50; ++t) {
    for (int i = 0; i < 200; ++i) {
      if ((i * 37) % 50 == t && i % 3 != 0) {
        expected.push_back(i);
      }
    }
  }
  EXPECT_EQ(first, expected);
}

}  // namespace
}  // namespace byterobust

// Lint fixture: a deliberate wall-clock shim, suppressed by the fixture
// allowlist (tests/lint_fixtures/fixture_allow.txt).
// Expected: no finding when run with that allowlist; BR-WALL-CLOCK without it.
#include <chrono>

namespace fixture {

// The one place wall time is allowed: progress reporting to the operator,
// never fed into simulation state or JSON output.
double OperatorWallSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace fixture

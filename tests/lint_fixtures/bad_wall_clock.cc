// Lint fixture: wall-clock reads in simulation code.
// Expected: BR-WALL-CLOCK (system_clock::now and time(nullptr)).
#include <chrono>
#include <ctime>

namespace fixture {

double StepDurationSeconds() {
  const auto start = std::chrono::system_clock::now();
  const std::time_t stamp = time(nullptr);
  (void)stamp;
  const auto end = std::chrono::system_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace fixture

// Lint fixture: nondeterministic / hidden-global-state RNG.
// Expected: BR-UNSEEDED-RNG (std::random_device and rand()).
#include <cstdlib>
#include <random>

namespace fixture {

int PickMachine(int machines) {
  std::random_device entropy;  // hardware entropy: differs every run
  std::mt19937 gen(entropy());
  (void)gen;
  return rand() % machines;  // hidden global state, unpinned seed
}

}  // namespace fixture

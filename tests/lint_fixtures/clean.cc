// Lint fixture: determinism-safe patterns the lint must NOT flag.
// Expected: no findings.
#include <algorithm>
#include <map>
#include <numeric>
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture {

struct Sample {
  int machine = 0;
  double value = 0.0;
};

std::string RenderSamplesJson(const std::vector<Sample>& samples) {
  // Unordered map used for point lookups only — no iteration.
  std::unordered_map<int, double> by_machine;
  for (const Sample& s : samples) {
    by_machine[s.machine] = s.value;
  }
  // Output iterates the ordered input; folds run left to right.
  std::vector<Sample> sorted = samples;
  std::sort(sorted.begin(), sorted.end(),
            [](const Sample& a, const Sample& b) { return a.machine < b.machine; });
  const double total =
      std::accumulate(sorted.begin(), sorted.end(), 0.0,
                      [](double acc, const Sample& s) { return acc + s.value; });
  std::string out = "[";
  for (const Sample& s : sorted) {
    out += std::to_string(by_machine.count(s.machine) ? s.value : 0.0) + ",";
  }
  out += "]," + std::to_string(total);
  return out;
}

}  // namespace fixture

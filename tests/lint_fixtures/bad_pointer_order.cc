// Lint fixture: pointer values as sort/hash keys.
// Expected: BR-POINTER-ORDER (sort without comparator, std::hash<T*>,
// reinterpret_cast to uintptr_t).
#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

namespace fixture {

struct Machine {
  int id = 0;
};

std::size_t MachineDigest(const Machine* m) {
  std::hash<const Machine*> hasher;  // hashes the address, not the machine
  return hasher(m) ^ reinterpret_cast<std::uintptr_t>(m);
}

void OrderMachines(std::vector<Machine*>& fleet) {
  std::sort(fleet.begin(), fleet.end());  // sorts by heap address (ASLR)
}

}  // namespace fixture

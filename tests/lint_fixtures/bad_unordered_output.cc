// Lint fixture: iterating an unordered_map inside a JSON-rendering function.
// Expected: BR-UNORDERED-OUTPUT (twice: range-for and .begin()).
#include <string>
#include <unordered_map>

namespace fixture {

std::string RenderReportJson(const std::unordered_map<std::string, double>& metrics) {
  std::unordered_map<std::string, double> totals = metrics;
  std::string out = "{";
  for (const auto& [name, value] : totals) {  // bucket order leaks into output
    out += "\"" + name + "\":" + std::to_string(value) + ",";
  }
  auto it = totals.begin();  // same hazard via explicit iterators
  (void)it;
  out += "}";
  return out;
}

}  // namespace fixture

// Lint fixture: accumulation-order hazards for floating point.
// Expected: BR-FLOAT-ORDER (std::reduce and std::accumulate over an
// unordered container).
#include <numeric>
#include <unordered_set>
#include <vector>

namespace fixture {

double TotalLoss(const std::vector<double>& losses,
                 const std::unordered_set<double>& penalties) {
  std::unordered_set<double> pending = penalties;
  double total = std::reduce(losses.begin(), losses.end());  // unspecified order
  total += std::accumulate(pending.begin(), pending.end(), 0.0);  // bucket order
  return total;
}

}  // namespace fixture

// Unit tests for the training-job runtime, perf model and loss model.

#include <gtest/gtest.h>

#include <cmath>

#include "src/cluster/cluster.h"
#include "src/sim/simulator.h"
#include "src/training/train_job.h"

namespace byterobust {
namespace {

JobConfig SmallJob() {
  JobConfig cfg;
  cfg.name = "test-job";
  cfg.parallelism.tp = 2;
  cfg.parallelism.pp = 2;
  cfg.parallelism.dp = 2;
  cfg.parallelism.gpus_per_machine = 2;
  cfg.base_step_time = Seconds(10);
  cfg.base_mfu = 0.30;
  return cfg;
}

class TrainJobTest : public ::testing::Test {
 protected:
  TrainJobTest() : cluster_(4, 2, 2), job_(SmallJob(), &sim_, &cluster_, 42) {}

  Simulator sim_;
  Cluster cluster_;
  TrainJob job_;
};

TEST_F(TrainJobTest, StepsAdvanceOnSchedule) {
  job_.Start();
  sim_.RunUntil(Seconds(35));
  EXPECT_EQ(job_.steps_completed(), 3);
  EXPECT_EQ(job_.resume_step(), 3);
  EXPECT_EQ(job_.max_step_reached(), 3);
  EXPECT_EQ(job_.state(), JobRunState::kRunning);
}

TEST_F(TrainJobTest, ObserversSeeEveryStep) {
  std::vector<StepRecord> records;
  job_.AddStepObserver([&](const StepRecord& r) { records.push_back(r); });
  job_.Start();
  sim_.RunUntil(Seconds(25));
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].step, 0);
  EXPECT_EQ(records[1].step, 1);
  EXPECT_EQ(records[0].end - records[0].start, Seconds(10));
  EXPECT_FALSE(records[0].recompute);
  EXPECT_FALSE(records[0].is_nan);
  EXPECT_GT(records[0].loss, 0.0);
}

TEST_F(TrainJobTest, StopCancelsInFlightStep) {
  job_.Start();
  sim_.RunUntil(Seconds(15));
  job_.Stop();
  sim_.RunUntil(Seconds(60));
  EXPECT_EQ(job_.steps_completed(), 1);
  EXPECT_EQ(job_.state(), JobRunState::kStopped);
}

TEST_F(TrainJobTest, CrashAndHangStopProgress) {
  job_.Start();
  sim_.RunUntil(Seconds(15));
  job_.Crash();
  EXPECT_EQ(job_.state(), JobRunState::kCrashed);
  sim_.RunUntil(Seconds(60));
  EXPECT_EQ(job_.steps_completed(), 1);

  job_.Start();
  EXPECT_EQ(job_.state(), JobRunState::kRunning);
  sim_.RunUntil(Seconds(75));
  job_.Hang(5);
  EXPECT_EQ(job_.state(), JobRunState::kHung);
  EXPECT_EQ(job_.hang_culprit(), 5);
  sim_.RunUntil(Seconds(200));
  EXPECT_EQ(job_.steps_completed(), 2);
}

TEST_F(TrainJobTest, RollbackReplaysStepsAsRecompute) {
  std::vector<StepRecord> records;
  job_.AddStepObserver([&](const StepRecord& r) { records.push_back(r); });
  job_.Start();
  sim_.RunUntil(Seconds(45));  // 4 steps done (0..3)
  job_.Stop();
  job_.RollbackToStep(2);
  job_.Start();
  sim_.RunUntil(Seconds(70));  // replays 2,3 then new 4 (capped by time)
  ASSERT_GE(records.size(), 6u);
  EXPECT_EQ(records[4].step, 2);
  EXPECT_TRUE(records[4].recompute);
  EXPECT_EQ(records[5].step, 3);
  EXPECT_TRUE(records[5].recompute);
  // Bit-wise curve overlap: the replayed loss equals the original (Fig. 2).
  EXPECT_DOUBLE_EQ(records[4].loss, records[2].loss);
  EXPECT_DOUBLE_EQ(records[5].loss, records[3].loss);
}

TEST_F(TrainJobTest, RollbackValidatesRange) {
  job_.Start();
  sim_.RunUntil(Seconds(25));
  job_.Stop();
  EXPECT_THROW(job_.RollbackToStep(-1), std::invalid_argument);
  EXPECT_THROW(job_.RollbackToStep(10), std::invalid_argument);
  job_.RollbackToStep(0);
  EXPECT_EQ(job_.resume_step(), 0);
}

TEST_F(TrainJobTest, CodeVersionStackAndRollback) {
  EXPECT_EQ(job_.current_version().id, 0);
  EXPECT_FALSE(job_.RollbackCodeVersion());  // cannot pop the base
  job_.ApplyCodeVersion({1, 1.2, false, 0, false, "fused kernels"});
  EXPECT_EQ(job_.current_version().id, 1);
  EXPECT_TRUE(job_.HasVersion(1));
  EXPECT_TRUE(job_.HasVersion(0));
  EXPECT_TRUE(job_.RollbackCodeVersion());
  EXPECT_EQ(job_.current_version().id, 0);
  EXPECT_FALSE(job_.HasVersion(1));
}

TEST_F(TrainJobTest, EfficiencyShortensStepsAndRaisesMfu) {
  const SimDuration base_step = job_.CurrentStepTime();
  const double base_mfu = job_.CurrentMfu();
  job_.ApplyCodeVersion({1, 1.25, false, 0, false, ""});
  EXPECT_EQ(job_.CurrentStepTime(), static_cast<SimDuration>(base_step / 1.25));
  EXPECT_NEAR(job_.CurrentMfu(), base_mfu * 1.25, 1e-9);
}

TEST_F(TrainJobTest, SlowGpuDragsWholeJob) {
  cluster_.machine(2).gpu(1).clock_ratio = 0.5;
  EXPECT_DOUBLE_EQ(PerfModel::SlowestClockRatio(cluster_), 0.5);
  EXPECT_EQ(job_.CurrentStepTime(), Seconds(20));
  EXPECT_NEAR(job_.CurrentMfu(), 0.15, 1e-9);
}

TEST_F(TrainJobTest, NanLossPropagatesToRecords) {
  std::vector<StepRecord> records;
  job_.AddStepObserver([&](const StepRecord& r) { records.push_back(r); });
  job_.SetNanLoss(true);
  job_.Start();  // Start() clears transient NaN inputs
  sim_.RunUntil(Seconds(15));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_FALSE(records[0].is_nan);
  job_.SetNanLoss(true);
  sim_.RunUntil(Seconds(25));
  ASSERT_EQ(records.size(), 2u);
  EXPECT_TRUE(records[1].is_nan);
  EXPECT_TRUE(std::isnan(records[1].loss));
}

TEST_F(TrainJobTest, RunCountIncrements) {
  EXPECT_EQ(job_.run_count(), 0);
  job_.Start();
  EXPECT_EQ(job_.run_count(), 1);
  job_.Start();  // already running: no-op
  EXPECT_EQ(job_.run_count(), 1);
  job_.Stop();
  job_.Start();
  EXPECT_EQ(job_.run_count(), 2);
}

TEST(JobConfigTest, Table5SetupsMatchPaper) {
  const JobConfig j70_128 = Table5Job70B(128);
  EXPECT_EQ(j70_128.parallelism.tp, 8);
  EXPECT_EQ(j70_128.parallelism.pp, 8);
  EXPECT_EQ(j70_128.parallelism.dp, 32);
  EXPECT_EQ(j70_128.parallelism.num_machines(), 128);
  EXPECT_EQ(j70_128.global_batch_size, 512);

  const JobConfig j256_1024 = Table5Job256B(1024);
  EXPECT_EQ(j256_1024.parallelism.pp, 16);
  EXPECT_EQ(j256_1024.parallelism.dp, 128);
  EXPECT_EQ(j256_1024.parallelism.num_machines(), 1024);
  EXPECT_EQ(j256_1024.global_batch_size, 2048);

  EXPECT_THROW(Table5Job70B(512), std::invalid_argument);
  EXPECT_THROW(Table5Job256B(128), std::invalid_argument);
}

TEST(JobConfigTest, ProductionJobsUse9600Gpus) {
  EXPECT_EQ(ProductionDenseJob().parallelism.world_size(), 9600);
  EXPECT_EQ(ProductionMoeJob().parallelism.world_size(), 9600);
  EXPECT_EQ(ProductionDenseJob().parallelism.num_machines(), 1200);
}

TEST(LossModelTest, DeterministicAndDecreasing) {
  const JobConfig cfg = SmallJob();
  LossModel a(cfg, 7);
  LossModel b(cfg, 7);
  EXPECT_DOUBLE_EQ(a.LossAt(100), b.LossAt(100));
  // Long-run trend decreases even with noise.
  EXPECT_GT(a.LossAt(0), a.LossAt(5000));
  EXPECT_GT(a.LossAt(5000), a.LossAt(50000));
  EXPECT_GT(a.LossAt(1000000), cfg.loss_floor * 0.9);
  EXPECT_GT(a.GradNormAt(100), 0.0);
}

TEST(LossModelTest, DifferentSeedsDiffer) {
  const JobConfig cfg = SmallJob();
  LossModel a(cfg, 1);
  LossModel b(cfg, 2);
  EXPECT_NE(a.LossAt(123), b.LossAt(123));
}

TEST(TrainJobTest2, RejectsClusterSmallerThanJob) {
  Simulator sim;
  Cluster tiny(2, 2);
  EXPECT_THROW(TrainJob(SmallJob(), &sim, &tiny, 1), std::invalid_argument);
}

}  // namespace
}  // namespace byterobust

// Unit tests for the CSV report export.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/metrics/report.h"

namespace byterobust {
namespace {

StepRecord MakeStep(std::int64_t step, SimTime start, SimTime end, double mfu, double loss,
                    int run) {
  StepRecord rec;
  rec.step = step;
  rec.start = start;
  rec.end = end;
  rec.mfu = mfu;
  rec.loss = loss;
  rec.run_id = run;
  return rec;
}

int CountLines(const std::string& s) {
  int n = 0;
  for (char c : s) {
    if (c == '\n') {
      ++n;
    }
  }
  return n;
}

TEST(ReportTest, MfuSeriesCsvHasHeaderAndRows) {
  MfuSeries series;
  series.OnStep(MakeStep(0, 0, Seconds(10), 0.30, 5.0, 1));
  series.OnStep(MakeStep(1, Seconds(10), Seconds(20), 0.36, 4.8, 1));
  const std::string csv = MfuSeriesCsv(series);
  EXPECT_EQ(CountLines(csv), 3);
  EXPECT_NE(csv.find("time_s,step,loss,mfu,relative_mfu,run_id"), std::string::npos);
  // Relative MFU is baselined on the first sample.
  EXPECT_NE(csv.find("1.2000"), std::string::npos);
}

TEST(ReportTest, MfuSeriesCsvStrideDownsamples) {
  MfuSeries series;
  for (int i = 0; i < 10; ++i) {
    series.OnStep(MakeStep(i, Seconds(i * 10), Seconds((i + 1) * 10), 0.3, 2.0, 1));
  }
  EXPECT_EQ(CountLines(MfuSeriesCsv(series, 5)), 1 + 2);
  EXPECT_EQ(CountLines(MfuSeriesCsv(series, 0)), 1 + 10);  // stride clamped to 1
}

TEST(ReportTest, EttrCurveCsvSamplesRequestedPoints) {
  EttrTracker tracker(0);
  for (int i = 0; i < 100; ++i) {
    tracker.OnStep(MakeStep(i, Seconds(i * 10), Seconds((i + 1) * 10), 0.3, 2.0, 1));
  }
  const std::string csv = EttrCurveCsv(tracker, Seconds(1000), 10);
  EXPECT_EQ(CountLines(csv), 11);
  // A fully productive run shows cumulative ETTR 1 at the end.
  EXPECT_NE(csv.find("1000.0,1.00000"), std::string::npos);
}

TEST(ReportTest, EttrCurveCsvHandlesDegenerateInputs) {
  EttrTracker tracker(0);
  EXPECT_EQ(CountLines(EttrCurveCsv(tracker, 0, 10)), 1);
  EXPECT_EQ(CountLines(EttrCurveCsv(tracker, Seconds(100), 0)), 1);
}

TEST(ReportTest, ResolutionLogCsvSerializesEntries) {
  ResolutionLog log;
  IncidentResolution r;
  r.incident.symptom = IncidentSymptom::kJobHang;
  r.incident.root_cause = RootCause::kInfrastructure;
  r.mechanism = ResolutionMechanism::kAnalyzerEvictRestart;
  r.inject_time = 0;
  r.detect_time = Minutes(10);
  r.localize_done_time = Minutes(12);
  r.restart_done_time = Minutes(14);
  r.escalations = 1;
  r.resolved = true;
  log.Add(r);
  const std::string csv = ResolutionLogCsv(log);
  EXPECT_EQ(CountLines(csv), 2);
  EXPECT_NE(csv.find("Job Hang,Implicit,Analyzer-ER,Infrastructure,600.0,120.0,120.0,840.0,1,1"),
            std::string::npos);
}

TEST(ReportTest, WriteFileRoundTrips) {
  const std::string path = "/tmp/byterobust_report_test.csv";
  ASSERT_TRUE(WriteFile(path, "a,b\n1,2\n"));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), "a,b\n1,2\n");
  std::remove(path.c_str());
}

TEST(ReportTest, WriteFileFailsOnBadPath) {
  EXPECT_FALSE(WriteFile("/nonexistent-dir-xyz/file.csv", "x"));
}

}  // namespace
}  // namespace byterobust

// Escalation-ladder tests: the Fig. 5 paths that require multiple stages
// (replay after rollback, human fallback, episode separation, stability
// window semantics).

#include <gtest/gtest.h>

#include "src/core/byterobust_system.h"
#include "src/faults/fault_injector.h"

namespace byterobust {
namespace {

SystemConfig LadderSystem(std::uint64_t seed) {
  SystemConfig cfg;
  cfg.job.parallelism = {2, 4, 4, 2};
  cfg.job.base_step_time = Seconds(10);
  cfg.job.model_params_b = 0.7;
  cfg.seed = seed;
  cfg.spare_machines = 12;
  cfg.standby.provision_time = Minutes(5);
  cfg.controller.replay_reproduce_prob = 1.0;
  return cfg;
}

// An SDC machine that defeats every stop-time check must eventually be
// isolated by dual-phase replay (Fig. 5 steps 8-9). We simulate the
// recurrence loop by re-crashing the job after each restart while the
// machine is still serving.
TEST(EscalationTest, ReplayIsolatesUndiagnosableFault) {
  SystemConfig cfg = LadderSystem(3);
  // All diagnostics blind: only replay (which reproduces by running the
  // actual workload) can find the machine.
  cfg.diagnoser.eud_recall_explicit = 0.0;
  cfg.diagnoser.eud_recall_sdc = 0.0;
  cfg.diagnoser.intra_recall = 0.0;
  cfg.diagnoser.intra_recall_comm_defect = 0.0;
  cfg.diagnoser.inter_recall = 0.0;
  cfg.diagnoser.bitwise_recall_sdc = 0.0;
  cfg.controller.log_attribution_recall = 0.0;  // logs never pinpoint it

  ByteRobustSystem sys(cfg);
  sys.Start();
  sys.sim().RunUntil(Minutes(30));

  // An SDC machine: invisible to inspections, and with the bit-wise suite's
  // recall forced to zero, invisible to every stop-time check too. Only
  // replaying the actual workload (dual-phase replay) reproduces it.
  const MachineId faulty = 6;
  Incident inc;
  inc.id = 1;
  inc.symptom = IncidentSymptom::kNanValue;
  inc.root_cause = RootCause::kSdc;
  inc.faulty_machines = {faulty};
  inc.gpu_index = 0;
  inc.inject_time = sys.sim().Now();
  FaultInjector::ApplyToCluster(inc, &sys.cluster());
  sys.controller().NotifyIncidentInjected(inc);
  sys.job().SetNanLoss(true);

  // Re-manifest the fault after every restart while the machine serves.
  sys.controller().SetRestartListener([&sys, faulty](ResolutionMechanism) {
    if (sys.cluster().SlotOfMachine(faulty) >= 0) {
      sys.sim().Schedule(Seconds(90), [&sys, faulty] {
        if (sys.cluster().SlotOfMachine(faulty) >= 0 &&
            sys.job().state() == JobRunState::kRunning) {
          sys.job().SetNanLoss(true);
        }
      });
    }
  });

  sys.sim().RunUntil(Hours(8));
  EXPECT_TRUE(sys.cluster().IsBlacklisted(faulty));
  EXPECT_EQ(sys.job().state(), JobRunState::kRunning);
  // The ladder went through stop-time checks -> reattempt -> rollback ->
  // replay; the final resolution is the replay (or, at worst, human).
  bool replay_used = false;
  for (const auto& r : sys.controller().log().entries()) {
    if (r.mechanism == ResolutionMechanism::kDualPhaseReplay) {
      replay_used = true;
      EXPECT_GE(r.escalations, 2);
    }
  }
  EXPECT_TRUE(replay_used);
}

// When even replay cannot reproduce (reproduce_prob = 0), the episode lands
// with humans, who isolate the ground-truth machines after offline work.
TEST(EscalationTest, HumanFallbackIsTerminal) {
  SystemConfig cfg = LadderSystem(5);
  cfg.diagnoser.eud_recall_explicit = 0.0;
  cfg.diagnoser.eud_recall_sdc = 0.0;
  cfg.diagnoser.intra_recall = 0.0;
  cfg.diagnoser.intra_recall_comm_defect = 0.0;
  cfg.diagnoser.inter_recall = 0.0;
  cfg.diagnoser.bitwise_recall_sdc = 0.0;
  cfg.controller.log_attribution_recall = 0.0;
  cfg.controller.replay_reproduce_prob = 0.0;

  ByteRobustSystem sys(cfg);
  sys.Start();
  sys.sim().RunUntil(Minutes(30));

  const MachineId faulty = 4;
  Incident inc;
  inc.id = 1;
  inc.symptom = IncidentSymptom::kContainerError;
  inc.root_cause = RootCause::kInfrastructure;
  inc.faulty_machines = {faulty};
  inc.inject_time = sys.sim().Now();
  FaultInjector::ApplyToCluster(inc, &sys.cluster());
  sys.controller().NotifyIncidentInjected(inc);
  sys.job().Crash();

  sys.controller().SetRestartListener([&sys, faulty](ResolutionMechanism) {
    if (sys.cluster().SlotOfMachine(faulty) >= 0) {
      sys.sim().Schedule(Seconds(90), [&sys, faulty] {
        if (sys.cluster().SlotOfMachine(faulty) >= 0 &&
            sys.job().state() == JobRunState::kRunning) {
          sys.job().Crash();
        }
      });
    }
  });

  sys.sim().RunUntil(Hours(10));
  EXPECT_TRUE(sys.cluster().IsBlacklisted(faulty));
  EXPECT_GE(sys.controller().log().CountBy(ResolutionMechanism::kUnresolvedHuman), 1);
  EXPECT_EQ(sys.job().state(), JobRunState::kRunning);
}

// Two unrelated incidents close together must produce two episodes, not one
// escalating mega-episode.
TEST(EscalationTest, ConcurrentIncidentsOpenSeparateEpisodes) {
  SystemConfig cfg = LadderSystem(7);
  cfg.diagnoser.eud_recall_explicit = 1.0;
  cfg.controller.log_attribution_recall = 1.0;
  ByteRobustSystem sys(cfg);
  sys.Start();
  sys.sim().RunUntil(Minutes(30));

  Incident first;
  first.id = 1;
  first.symptom = IncidentSymptom::kGpuUnavailable;
  first.root_cause = RootCause::kInfrastructure;
  first.faulty_machines = {3};
  first.gpu_index = 0;
  first.inject_time = sys.sim().Now();
  FaultInjector::ApplyToCluster(first, &sys.cluster());
  sys.controller().NotifyIncidentInjected(first);
  sys.job().Crash();

  // Second incident lands shortly after the first recovery.
  sys.sim().Schedule(Minutes(8), [&sys] {
    Incident second;
    second.id = 2;
    second.symptom = IncidentSymptom::kOsKernelPanic;
    second.root_cause = RootCause::kInfrastructure;
    second.faulty_machines = {11};
    second.inject_time = sys.sim().Now();
    FaultInjector::ApplyToCluster(second, &sys.cluster());
    sys.controller().NotifyIncidentInjected(second);
    sys.job().Crash();
  });

  sys.sim().RunUntil(Hours(3));
  EXPECT_TRUE(sys.cluster().IsBlacklisted(3));
  EXPECT_TRUE(sys.cluster().IsBlacklisted(11));
  // Both incidents resolved by plain eviction, no escalations.
  int er = 0;
  for (const auto& r : sys.controller().log().entries()) {
    if (r.mechanism == ResolutionMechanism::kAutoFtEvictRestart) {
      ++er;
      EXPECT_EQ(r.escalations, 0);
    }
  }
  EXPECT_EQ(er, 2);
}

// A resolution record's timestamps must be ordered: inject <= detect <=
// localize <= restart, across every campaign entry.
TEST(EscalationTest, ResolutionTimestampsAreOrdered) {
  SystemConfig cfg = LadderSystem(11);
  ByteRobustSystem sys(cfg);
  sys.Start();
  sys.sim().RunUntil(Minutes(20));

  for (int i = 0; i < 4; ++i) {
    Incident inc;
    inc.id = static_cast<std::uint64_t>(i) + 1;
    inc.symptom = IncidentSymptom::kGpuUnavailable;
    inc.root_cause = RootCause::kInfrastructure;
    inc.faulty_machines = {static_cast<MachineId>(2 + i * 3)};
    inc.gpu_index = 0;
    inc.inject_time = sys.sim().Now();
    FaultInjector::ApplyToCluster(inc, &sys.cluster());
    sys.controller().NotifyIncidentInjected(inc);
    sys.job().Crash();
    sys.sim().RunUntil(sys.sim().Now() + Hours(1));
  }

  ASSERT_GE(sys.controller().log().size(), 4u);
  for (const auto& r : sys.controller().log().entries()) {
    EXPECT_LE(r.inject_time, r.detect_time);
    EXPECT_LE(r.detect_time, r.localize_done_time);
    EXPECT_LE(r.localize_done_time, r.restart_done_time);
  }
}

}  // namespace
}  // namespace byterobust

// End-to-end parameterized sweep: every incident symptom of Table 1 is
// injected into a live ByteRobustSystem, which must recover training and
// (for persistent infrastructure faults) isolate the faulty machine.

#include <gtest/gtest.h>

#include "src/core/byterobust_system.h"
#include "src/faults/fault_injector.h"

namespace byterobust {
namespace {

struct SymptomCase {
  IncidentSymptom symptom;
  RootCause root_cause;
  // Whether the true faulty machine must end up blacklisted.
  bool expect_eviction;
};

class SymptomEndToEnd : public ::testing::TestWithParam<SymptomCase> {};

TEST_P(SymptomEndToEnd, SystemRecoversTraining) {
  const SymptomCase& c = GetParam();

  SystemConfig cfg;
  cfg.job.parallelism = {2, 4, 4, 2};
  cfg.job.base_step_time = Seconds(10);
  cfg.job.model_params_b = 0.7;
  cfg.seed = 100 + static_cast<std::uint64_t>(c.symptom);
  cfg.spare_machines = 10;
  cfg.standby.provision_time = Minutes(5);
  cfg.monitor.hang_grace = Minutes(5);
  // Deterministic diagnostics for the sweep.
  cfg.diagnoser.eud_recall_explicit = 1.0;
  cfg.diagnoser.inter_recall = 1.0;
  cfg.diagnoser.bitwise_recall_sdc = 1.0;
  cfg.controller.log_attribution_recall = 1.0;
  cfg.controller.replay_reproduce_prob = 1.0;

  ByteRobustSystem sys(cfg);
  sys.Start();
  sys.sim().RunUntil(Minutes(30));

  const MachineId faulty = 9;
  Incident inc;
  inc.id = 1;
  inc.symptom = c.symptom;
  inc.root_cause = c.root_cause;
  if (c.root_cause != RootCause::kUserCode) {
    inc.faulty_machines = {faulty};
  }
  inc.gpu_index = 1;
  inc.inject_time = sys.sim().Now();
  FaultInjector::ApplyToCluster(inc, &sys.cluster());
  sys.controller().NotifyIncidentInjected(inc);
  switch (c.symptom) {
    case IncidentSymptom::kJobHang:
      sys.job().Hang(/*culprit=*/faulty * 2);
      break;
    case IncidentSymptom::kMfuDecline:
      break;  // perf model slows down; the monitor notices
    case IncidentSymptom::kNanValue:
      sys.job().SetNanLoss(true);
      break;
    default:
      sys.job().Crash();
      break;
  }

  sys.sim().RunUntil(sys.sim().Now() + Hours(4));

  // Training is back and productive.
  EXPECT_EQ(sys.job().state(), JobRunState::kRunning) << SymptomName(c.symptom);
  EXPECT_GT(sys.ettr().CumulativeEttr(sys.sim().Now()), 0.5) << SymptomName(c.symptom);

  if (c.expect_eviction) {
    EXPECT_TRUE(sys.cluster().IsBlacklisted(faulty))
        << SymptomName(c.symptom) << ": faulty machine still serving";
  }

  // A resolution was recorded and the slowest path still finished within the
  // paper's worst-case envelope (~50 min of unproductive time per incident;
  // the analyzer-driven hang path includes a 5-12 min detection window).
  ASSERT_FALSE(sys.controller().log().entries().empty());
  const IncidentResolution& res = sys.controller().log().entries().front();
  EXPECT_TRUE(res.resolved);
  EXPECT_LE(res.TotalUnproductive(), Minutes(50)) << SymptomName(c.symptom);
}

INSTANTIATE_TEST_SUITE_P(
    AllSymptoms, SymptomEndToEnd,
    ::testing::Values(
        SymptomCase{IncidentSymptom::kCudaError, RootCause::kInfrastructure, true},
        SymptomCase{IncidentSymptom::kCpuOverload, RootCause::kInfrastructure, true},
        SymptomCase{IncidentSymptom::kCpuOom, RootCause::kInfrastructure, true},
        SymptomCase{IncidentSymptom::kInsufficientDiskSpace, RootCause::kInfrastructure, true},
        SymptomCase{IncidentSymptom::kInfinibandError, RootCause::kInfrastructure, true},
        SymptomCase{IncidentSymptom::kFilesystemMount, RootCause::kInfrastructure, true},
        SymptomCase{IncidentSymptom::kHdfsError, RootCause::kInfrastructure, true},
        SymptomCase{IncidentSymptom::kContainerError, RootCause::kInfrastructure, true},
        SymptomCase{IncidentSymptom::kOsKernelPanic, RootCause::kInfrastructure, true},
        SymptomCase{IncidentSymptom::kGpuMemoryError, RootCause::kInfrastructure, true},
        SymptomCase{IncidentSymptom::kExternalServiceError, RootCause::kInfrastructure, true},
        SymptomCase{IncidentSymptom::kGpuUnavailable, RootCause::kInfrastructure, true},
        SymptomCase{IncidentSymptom::kDiskFault, RootCause::kInfrastructure, true},
        SymptomCase{IncidentSymptom::kJobHang, RootCause::kInfrastructure, true},
        SymptomCase{IncidentSymptom::kMfuDecline, RootCause::kInfrastructure, true},
        SymptomCase{IncidentSymptom::kNanValue, RootCause::kSdc, true},
        SymptomCase{IncidentSymptom::kCudaError, RootCause::kTransient, false},
        SymptomCase{IncidentSymptom::kCudaError, RootCause::kUserCode, false}));

}  // namespace
}  // namespace byterobust

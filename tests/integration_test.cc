// Integration tests: full campaign runs through the Scenario runner,
// exercising injector -> monitor -> controller -> recovery -> metrics.

#include <gtest/gtest.h>

#include "src/core/scenario.h"

namespace byterobust {
namespace {

ScenarioConfig SmallCampaign(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.system.job.name = "integration";
  cfg.system.job.parallelism.tp = 2;
  cfg.system.job.parallelism.pp = 4;
  cfg.system.job.parallelism.dp = 4;
  cfg.system.job.parallelism.gpus_per_machine = 2;
  cfg.system.job.base_step_time = Seconds(15);
  cfg.system.job.model_params_b = 0.7;
  cfg.system.seed = seed;
  cfg.system.spare_machines = 24;
  cfg.system.monitor = CampaignMonitorConfig();
  cfg.system.monitor.hang_grace = Minutes(5);
  cfg.system.standby.provision_time = Minutes(10);
  cfg.duration = Days(3);
  // A 16-machine job fails rarely; crank the rate so a 3-day window sees a
  // representative incident mix.
  cfg.injector.reference_mtbf = Hours(2.0);
  cfg.injector.reference_machines = 16;
  cfg.planned_updates = 6;
  cfg.final_efficiency = 1.25;
  return cfg;
}

TEST(ScenarioIntegrationTest, CampaignRunsAndRecovers) {
  Scenario scenario(SmallCampaign(11));
  scenario.Run();
  ByteRobustSystem& sys = scenario.system();

  // Dozens of incidents were injected and training still progresses.
  EXPECT_GT(scenario.stats().incidents_injected, 10);
  EXPECT_GT(sys.job().max_step_reached(), 1000);

  // The controller resolved incidents across multiple mechanisms.
  const ResolutionLog& log = sys.controller().log();
  EXPECT_GT(log.size(), 5u);
  int resolved = 0;
  for (const auto& r : log.entries()) {
    if (r.resolved) {
      ++resolved;
    }
  }
  EXPECT_GT(resolved, 0);
  EXPECT_GE(static_cast<double>(resolved) / static_cast<double>(log.size()), 0.9);
}

TEST(ScenarioIntegrationTest, EttrStaysHigh) {
  Scenario scenario(SmallCampaign(12));
  scenario.Run();
  ByteRobustSystem& sys = scenario.system();
  const double ettr = sys.ettr().CumulativeEttr(sys.sim().Now());
  // The paper sustains ~0.97 at production fault rates; with our deliberately
  // cranked fault rate the campaign should still stay clearly productive.
  EXPECT_GT(ettr, 0.75);
  EXPECT_LE(ettr, 1.0);
}

TEST(ScenarioIntegrationTest, HotUpdatesRaiseMfu) {
  Scenario scenario(SmallCampaign(13));
  scenario.Run();
  ByteRobustSystem& sys = scenario.system();
  EXPECT_GT(scenario.stats().updates_submitted, 0);
  // All submitted updates eventually applied (possibly minus a rollback).
  EXPECT_GE(sys.hot_updates().applied_count(), scenario.stats().updates_submitted - 1);
  // Relative MFU improved over the campaign (Fig. 11's staircase).
  const auto& samples = sys.mfu_series().samples();
  ASSERT_FALSE(samples.empty());
  EXPECT_GT(samples.back().mfu, samples.front().mfu);
}

TEST(ScenarioIntegrationTest, DeterministicForFixedSeed) {
  Scenario a(SmallCampaign(42));
  a.Run();
  Scenario b(SmallCampaign(42));
  b.Run();
  EXPECT_EQ(a.stats().incidents_injected, b.stats().incidents_injected);
  EXPECT_EQ(a.system().job().max_step_reached(), b.system().job().max_step_reached());
  EXPECT_EQ(a.system().controller().log().size(), b.system().controller().log().size());
  EXPECT_DOUBLE_EQ(a.system().ettr().CumulativeEttr(a.system().sim().Now()),
                   b.system().ettr().CumulativeEttr(b.system().sim().Now()));
}

TEST(ScenarioIntegrationTest, DifferentSeedsDiverge) {
  Scenario a(SmallCampaign(1));
  a.Run();
  Scenario b(SmallCampaign(2));
  b.Run();
  // Not bitwise-identical campaigns (fault times differ).
  EXPECT_NE(a.system().job().max_step_reached(), b.system().job().max_step_reached());
}

TEST(ScenarioIntegrationTest, BlacklistedMachinesNeverServeAgain) {
  Scenario scenario(SmallCampaign(21));
  scenario.Run();
  ByteRobustSystem& sys = scenario.system();
  for (MachineId m : sys.cluster().ServingMachines()) {
    EXPECT_FALSE(sys.cluster().IsBlacklisted(m));
    // The campaign may end mid-incident (a serving machine can be kFaulty
    // while its episode is being handled), but an evicted machine must never
    // still hold a slot.
    EXPECT_NE(sys.cluster().machine(m).state(), MachineState::kEvicted);
  }
}

TEST(ScenarioIntegrationTest, RecomputeIsBoundedByEveryStepCheckpointing) {
  Scenario scenario(SmallCampaign(31));
  scenario.Run();
  ByteRobustSystem& sys = scenario.system();
  // With every-step in-memory checkpointing, lost work per incident is at
  // most ~2 steps; across the whole campaign recompute stays tiny relative
  // to productive time.
  EXPECT_LT(static_cast<double>(sys.ettr().recompute_time()),
            0.02 * static_cast<double>(sys.ettr().productive_time()));
}

}  // namespace
}  // namespace byterobust

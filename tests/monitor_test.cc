// Unit tests for the data-plane monitor: inspections (Table 3), metric rules
// and the hang/crash watchdogs.

#include <gtest/gtest.h>

#include <cmath>

#include "src/monitor/monitor.h"

namespace byterobust {
namespace {

JobConfig SmallJob() {
  JobConfig cfg;
  cfg.parallelism.tp = 2;
  cfg.parallelism.pp = 2;
  cfg.parallelism.dp = 2;
  cfg.parallelism.gpus_per_machine = 2;
  cfg.base_step_time = Seconds(10);
  return cfg;
}

class MonitorTest : public ::testing::Test {
 protected:
  MonitorTest()
      : cluster_(4, 2, 1), job_(SmallJob(), &sim_, &cluster_, 1), monitor_(MakeConfig(), &sim_,
                                                                           &cluster_, &job_) {
    monitor_.SetAnomalyHandler([this](const AnomalyReport& r) { reports_.push_back(r); });
  }

  static MonitorConfig MakeConfig() {
    MonitorConfig cfg;
    cfg.hang_grace = Minutes(10);
    return cfg;
  }

  Simulator sim_;
  Cluster cluster_;
  TrainJob job_;
  Monitor monitor_;
  std::vector<AnomalyReport> reports_;
};

TEST_F(MonitorTest, GpuUnavailableDetectedWithinGpuInterval) {
  monitor_.Start();
  job_.Start();
  sim_.RunUntil(Seconds(5));
  cluster_.machine(2).gpu(1).available = false;
  sim_.RunUntil(Seconds(25));
  ASSERT_FALSE(reports_.empty());
  const AnomalyReport& r = reports_.front();
  EXPECT_EQ(r.source, AnomalySource::kInspection);
  EXPECT_EQ(r.symptom_hint, IncidentSymptom::kGpuUnavailable);
  EXPECT_TRUE(r.high_confidence);
  EXPECT_EQ(r.machines, (std::vector<MachineId>{2}));
  // Detection within one 10 s GPU inspection interval of the fault (Table 3).
  EXPECT_LE(r.detect_time - Seconds(5), Seconds(10));
}

TEST_F(MonitorTest, KernelPanicDetectedWithinHostInterval) {
  monitor_.Start();
  sim_.RunUntil(Seconds(3));
  cluster_.machine(0).host().os_kernel_ok = false;
  sim_.RunUntil(Seconds(6));
  ASSERT_FALSE(reports_.empty());
  EXPECT_EQ(reports_.front().symptom_hint, IncidentSymptom::kOsKernelPanic);
  // Host items are polled every 2 s (Table 3).
  EXPECT_LE(reports_.front().detect_time - Seconds(3), Seconds(2) + 1);
}

TEST_F(MonitorTest, NicCrashDetectedWithinNetworkInterval) {
  monitor_.Start();
  cluster_.machine(1).host().nic_up = false;
  sim_.RunUntil(Seconds(31));
  ASSERT_FALSE(reports_.empty());
  EXPECT_EQ(reports_.front().symptom_hint, IncidentSymptom::kInfinibandError);
  EXPECT_LE(reports_.front().detect_time, Seconds(30) + 1);
}

TEST_F(MonitorTest, SwitchDownNeedsTwoConsecutiveEvents) {
  monitor_.Start();
  cluster_.machine(1).host().switch_reachable = false;
  sim_.RunUntil(Seconds(31));
  EXPECT_TRUE(reports_.empty()) << "first switch event must not alert";
  sim_.RunUntil(Seconds(61));
  ASSERT_FALSE(reports_.empty());
  EXPECT_EQ(reports_.front().symptom_hint, IncidentSymptom::kInfinibandError);
}

TEST_F(MonitorTest, FindingsAreDedupedPerRun) {
  monitor_.Start();
  cluster_.machine(2).gpu(0).available = false;
  sim_.RunUntil(Minutes(5));
  EXPECT_EQ(reports_.size(), 1u);
  monitor_.OnJobRestart();  // new run: the outstanding set clears
  sim_.RunUntil(Minutes(6));
  EXPECT_EQ(reports_.size(), 2u);
}

TEST_F(MonitorTest, HighTemperatureFlagsMfuDecline) {
  monitor_.Start();
  cluster_.machine(3).gpu(1).temperature_c = 93.0;
  sim_.RunUntil(Seconds(11));
  ASSERT_FALSE(reports_.empty());
  EXPECT_EQ(reports_.front().symptom_hint, IncidentSymptom::kMfuDecline);
  EXPECT_FALSE(reports_.front().high_confidence);
}

TEST_F(MonitorTest, SdcAndCommDefectAreInvisibleToInspection) {
  monitor_.Start();
  cluster_.machine(0).gpu(0).sdc = true;
  cluster_.machine(1).gpu(1).comm_defect = true;
  sim_.RunUntil(Minutes(3));
  EXPECT_TRUE(reports_.empty());
}

TEST_F(MonitorTest, CrashDetectedViaLogScrape) {
  monitor_.Start();
  job_.Start();
  sim_.RunUntil(Seconds(15));
  job_.Crash();
  sim_.RunUntil(Seconds(15) + Minutes(3));
  ASSERT_FALSE(reports_.empty());
  EXPECT_EQ(reports_.front().source, AnomalySource::kCrashLog);
  // Watchdog tick (30 s) + log scrape latency (60 s).
  EXPECT_LE(reports_.front().detect_time - Seconds(15), Seconds(95));
}

TEST_F(MonitorTest, HangDetectedAfterGracePeriod) {
  monitor_.Start();
  job_.Start();
  sim_.RunUntil(Seconds(25));
  job_.Hang(0);
  sim_.RunUntil(Seconds(25) + Minutes(11));
  ASSERT_FALSE(reports_.empty());
  EXPECT_EQ(reports_.front().source, AnomalySource::kHangSuspect);
  EXPECT_EQ(reports_.front().symptom_hint, IncidentSymptom::kJobHang);
  // Not before the 10-minute grace.
  EXPECT_GE(reports_.front().detect_time - Seconds(20), Minutes(10));
}

TEST_F(MonitorTest, NanLossReportedImmediately) {
  monitor_.Start();
  job_.Start();
  sim_.RunUntil(Seconds(15));
  job_.SetNanLoss(true);
  sim_.RunUntil(Seconds(26));
  ASSERT_FALSE(reports_.empty());
  EXPECT_EQ(reports_.front().source, AnomalySource::kMetricNan);
  EXPECT_EQ(reports_.front().symptom_hint, IncidentSymptom::kNanValue);
}

TEST_F(MonitorTest, MfuDeclineRuleFiresAfterSustainedDrop) {
  monitor_.Start();
  job_.Start();
  sim_.RunUntil(Minutes(2));  // establish the high-water mark
  cluster_.machine(0).gpu(0).clock_ratio = 0.55;  // silent downclock
  sim_.RunUntil(Minutes(2) + Seconds(10 / 0.55 * 7));
  ASSERT_FALSE(reports_.empty());
  EXPECT_EQ(reports_.front().source, AnomalySource::kMfuDecline);
}

TEST(MetricsRulesTest, SpikeRuleNeedsHistory) {
  MetricsRules rules(MetricsRulesConfig{});
  StepRecord rec;
  rec.mfu = 0.3;
  rec.loss = 2.0;
  rec.grad_norm = 0.5;
  // Below half the trailing window: no spike detection yet.
  for (int i = 0; i < 20; ++i) {
    rec.step = i;
    EXPECT_FALSE(rules.OnStep(rec).has_value());
  }
  rec.loss = 11.0;  // > 5x the median of 2.0
  const auto report = rules.OnStep(rec);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->source, AnomalySource::kMetricSpike);
}

TEST(MetricsRulesTest, ResetClearsBaselines) {
  MetricsRules rules(MetricsRulesConfig{});
  StepRecord rec;
  rec.mfu = 0.3;
  rec.loss = 2.0;
  rec.grad_norm = 0.5;
  for (int i = 0; i < 20; ++i) {
    rules.OnStep(rec);
  }
  rules.Reset();
  rec.loss = 11.0;  // no history anymore: not a spike
  EXPECT_FALSE(rules.OnStep(rec).has_value());
}

TEST(MetricsRulesTest, NanWinsOverEverything) {
  MetricsRules rules(MetricsRulesConfig{});
  StepRecord rec;
  rec.is_nan = true;
  rec.loss = std::nan("");
  const auto report = rules.OnStep(rec);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->source, AnomalySource::kMetricNan);
}

}  // namespace
}  // namespace byterobust

// Unit tests for ETTR accounting, MFU series and the resolution log.

#include <gtest/gtest.h>

#include "src/metrics/ettr.h"
#include "src/metrics/resolution.h"

namespace byterobust {
namespace {

StepRecord MakeStep(std::int64_t step, SimTime start, SimTime end, bool recompute = false,
                    double mfu = 0.3) {
  StepRecord rec;
  rec.step = step;
  rec.start = start;
  rec.end = end;
  rec.recompute = recompute;
  rec.mfu = mfu;
  rec.loss = 2.0;
  return rec;
}

TEST(EttrTrackerTest, CumulativeEttrIsProductiveOverWall) {
  EttrTracker tracker(0);
  tracker.OnStep(MakeStep(0, 0, Seconds(10)));
  tracker.OnStep(MakeStep(1, Seconds(10), Seconds(20)));
  // 20 s productive over 40 s wall.
  EXPECT_DOUBLE_EQ(tracker.CumulativeEttr(Seconds(40)), 0.5);
  EXPECT_EQ(tracker.productive_time(), Seconds(20));
  EXPECT_EQ(tracker.productive_steps(), 2);
}

TEST(EttrTrackerTest, RecomputeIsNotProductive) {
  EttrTracker tracker(0);
  tracker.OnStep(MakeStep(0, 0, Seconds(10)));
  tracker.OnStep(MakeStep(0, Seconds(20), Seconds(30), /*recompute=*/true));
  EXPECT_EQ(tracker.productive_time(), Seconds(10));
  EXPECT_EQ(tracker.recompute_time(), Seconds(10));
  EXPECT_EQ(tracker.productive_steps(), 1);
}

TEST(EttrTrackerTest, SlidingWindowClipsSpans) {
  EttrTracker tracker(0);
  tracker.OnStep(MakeStep(0, 0, Minutes(30)));
  // Window [30m, 90m): only half the step's span falls inside... none, the
  // step ended exactly at the window start.
  EXPECT_DOUBLE_EQ(tracker.SlidingEttr(Minutes(90), Hours(1)), 0.0);
  tracker.OnStep(MakeStep(1, Minutes(30), Minutes(75)));
  // [30m, 90m) window at t=90m: step 1 contributes 45 of 60 minutes.
  EXPECT_NEAR(tracker.SlidingEttr(Minutes(90), Hours(1)), 0.75, 1e-9);
}

TEST(EttrTrackerTest, PerfectTrainingGivesEttrOne) {
  EttrTracker tracker(0);
  for (int i = 0; i < 100; ++i) {
    tracker.OnStep(MakeStep(i, Seconds(i * 10), Seconds((i + 1) * 10)));
  }
  EXPECT_DOUBLE_EQ(tracker.CumulativeEttr(Seconds(1000)), 1.0);
  EXPECT_DOUBLE_EQ(tracker.SlidingEttr(Seconds(1000), Seconds(500)), 1.0);
}

TEST(EttrTrackerTest, ZeroWallClockIsSafe) {
  EttrTracker tracker(0);
  EXPECT_DOUBLE_EQ(tracker.CumulativeEttr(0), 1.0);
}

TEST(MfuSeriesTest, RelativeMfuIsRatioToMinimum) {
  MfuSeries series;
  series.OnStep(MakeStep(0, 0, Seconds(10), false, 0.2));
  series.OnStep(MakeStep(1, Seconds(10), Seconds(20), false, 0.3));
  series.OnStep(MakeStep(2, Seconds(20), Seconds(30), false, 0.25));
  EXPECT_DOUBLE_EQ(series.MinMfu(), 0.2);
  EXPECT_DOUBLE_EQ(series.MaxMfu(), 0.3);
  const auto rel = series.RelativeMfu();
  ASSERT_EQ(rel.size(), 3u);
  EXPECT_DOUBLE_EQ(rel[0], 1.0);
  EXPECT_DOUBLE_EQ(rel[1], 1.5);
}

TEST(MfuSeriesTest, RecomputeStepsAreExcluded) {
  MfuSeries series;
  series.OnStep(MakeStep(0, 0, Seconds(10), true, 0.1));
  EXPECT_TRUE(series.samples().empty());
  EXPECT_TRUE(series.RelativeMfu().empty());
}

// Deterministic jittered step stream across several runs, with restarts
// (gaps + recompute) sprinkled in — the shape campaigns feed the trackers.
template <typename Fn>
void FeedSyntheticCampaign(Fn&& feed) {
  SimTime t = 0;
  std::int64_t step = 0;
  int run = 1;
  for (int i = 0; i < 3000; ++i) {
    const SimDuration dur = Seconds(8 + (i * 7) % 9);
    if (i % 500 == 499) {
      t += Minutes(7);  // incident: unproductive gap, then a new run
      ++run;
      step -= 20;  // rollback: the next 20 steps are recompute
    }
    StepRecord rec = MakeStep(step, t, t + dur, /*recompute=*/false,
                              /*mfu=*/0.25 + 0.1 * ((i * 13) % 50) / 50.0);
    rec.recompute = i % 500 >= 480;
    rec.run_id = run;
    feed(rec);
    t += dur;
    ++step;
  }
}

TEST(EttrTrackerTest, WindowedCompactionIsBitIdenticalAtTheLiveEdge) {
  EttrTracker unbounded(0);
  EttrTracker windowed(0, Hours(2));
  FeedSyntheticCampaign([&](const StepRecord& rec) {
    unbounded.OnStep(rec);
    windowed.OnStep(rec);
    // Sliding queries at the live edge with window <= retention must be
    // bit-identical (same spans walked, same summation order).
    EXPECT_EQ(unbounded.SlidingEttr(rec.end, Hours(1)), windowed.SlidingEttr(rec.end, Hours(1)));
    EXPECT_EQ(unbounded.SlidingEttr(rec.end, Hours(2)), windowed.SlidingEttr(rec.end, Hours(2)));
  });
  EXPECT_EQ(unbounded.productive_time(), windowed.productive_time());
  EXPECT_EQ(unbounded.recompute_time(), windowed.recompute_time());
  EXPECT_EQ(unbounded.productive_steps(), windowed.productive_steps());
  EXPECT_EQ(unbounded.CumulativeEttr(Hours(11)), windowed.CumulativeEttr(Hours(11)));
  EXPECT_EQ(unbounded.productive_by_run(), windowed.productive_by_run());
  // Memory actually stayed bounded: the 2 h window holds at most ~900 spans
  // of >= 8 s; everything older was folded into the running aggregates.
  EXPECT_GT(windowed.spans_folded(), 0);
  EXPECT_LT(windowed.retained_spans(), 1000u);
  EXPECT_EQ(windowed.retained_spans() + static_cast<std::size_t>(windowed.spans_folded()),
            unbounded.retained_spans());
  EXPECT_GT(windowed.folded_productive(), 0);
  EXPECT_LE(windowed.folded_productive(), windowed.productive_time());
}

TEST(MfuSeriesTest, WindowedCompactionKeepsRunningAggregatesExact) {
  MfuSeries unbounded;
  MfuSeries windowed;
  windowed.SetRetention(Hours(2));
  FeedSyntheticCampaign([&](const StepRecord& rec) {
    unbounded.OnStep(rec);
    windowed.OnStep(rec);
  });
  EXPECT_EQ(unbounded.MinMfu(), windowed.MinMfu());
  EXPECT_EQ(unbounded.MaxMfu(), windowed.MaxMfu());
  EXPECT_EQ(unbounded.mfu_sum(), windowed.mfu_sum());
  EXPECT_EQ(unbounded.total_samples(), windowed.total_samples());
  EXPECT_GT(windowed.samples_folded(), 0);
  EXPECT_LT(windowed.samples().size(), 1000u);
  EXPECT_EQ(windowed.samples().size() + static_cast<std::size_t>(windowed.samples_folded()),
            unbounded.samples().size());
  // The retained tail is the suffix of the unbounded series.
  const std::size_t offset = unbounded.samples().size() - windowed.samples().size();
  for (std::size_t i = 0; i < windowed.samples().size(); ++i) {
    EXPECT_EQ(unbounded.samples()[offset + i].time, windowed.samples()[i].time);
    EXPECT_EQ(unbounded.samples()[offset + i].mfu, windowed.samples()[i].mfu);
  }
}

IncidentResolution MakeResolution(IncidentSymptom symptom, ResolutionMechanism mech,
                                  SimTime inject, SimDuration detect, SimDuration localize,
                                  SimDuration failover) {
  IncidentResolution r;
  r.incident.symptom = symptom;
  r.mechanism = mech;
  r.inject_time = inject;
  r.detect_time = inject + detect;
  r.localize_done_time = r.detect_time + localize;
  r.restart_done_time = r.localize_done_time + failover;
  r.resolved = true;
  return r;
}

TEST(ResolutionLogTest, CountsByMechanismAndCategory) {
  ResolutionLog log;
  log.Add(MakeResolution(IncidentSymptom::kCudaError, ResolutionMechanism::kAutoFtEvictRestart,
                         0, Seconds(60), Minutes(5), Seconds(90)));
  log.Add(MakeResolution(IncidentSymptom::kJobHang, ResolutionMechanism::kAnalyzerEvictRestart,
                         Hours(1), Minutes(10), Minutes(2), Seconds(120)));
  log.Add(MakeResolution(IncidentSymptom::kCodeDataAdjustment,
                         ResolutionMechanism::kAutoFtHotUpdate, Hours(2), 0, 0, Seconds(50)));
  EXPECT_EQ(log.CountBy(ResolutionMechanism::kAutoFtEvictRestart), 1);
  EXPECT_EQ(log.CountBy(ResolutionMechanism::kAnalyzerEvictRestart,
                        IncidentCategory::kImplicit),
            1);
  EXPECT_EQ(log.CountBy(ResolutionMechanism::kAnalyzerEvictRestart,
                        IncidentCategory::kExplicit),
            0);
  EXPECT_EQ(log.CountBy(IncidentCategory::kManualRestart), 1);
  EXPECT_EQ(log.size(), 3u);
}

TEST(ResolutionLogTest, BreakdownArithmetic) {
  const auto r = MakeResolution(IncidentSymptom::kCudaError,
                                ResolutionMechanism::kAutoFtEvictRestart, Hours(1), Seconds(60),
                                Minutes(5), Seconds(90));
  EXPECT_EQ(r.DetectionTime(), Seconds(60));
  EXPECT_EQ(r.LocalizationTime(), Minutes(5));
  EXPECT_EQ(r.FailoverTime(), Seconds(90));
  EXPECT_EQ(r.TotalUnproductive(), Seconds(60) + Minutes(5) + Seconds(90));
}

TEST(ResolutionLogTest, MeanMaxResolutionPerSymptom) {
  ResolutionLog log;
  log.Add(MakeResolution(IncidentSymptom::kCudaError, ResolutionMechanism::kAutoFtEvictRestart,
                         0, 0, 0, Seconds(60)));
  log.Add(MakeResolution(IncidentSymptom::kCudaError, ResolutionMechanism::kAutoFtEvictRestart,
                         0, 0, 0, Seconds(120)));
  const auto [mean, max] = log.MeanMaxResolution(IncidentSymptom::kCudaError);
  EXPECT_EQ(mean, Seconds(90));
  EXPECT_EQ(max, Seconds(120));
  const auto [mean0, max0] = log.MeanMaxResolution(IncidentSymptom::kDiskFault);
  EXPECT_EQ(mean0, 0);
  EXPECT_EQ(max0, 0);
}

TEST(ResolutionLogTest, MechanismNames) {
  EXPECT_STREQ(MechanismName(ResolutionMechanism::kAutoFtEvictRestart), "AutoFT-ER");
  EXPECT_STREQ(MechanismName(ResolutionMechanism::kAutoFtHotUpdate), "AutoFT-HU");
  EXPECT_STREQ(MechanismName(ResolutionMechanism::kAnalyzerEvictRestart), "Analyzer-ER");
  EXPECT_STREQ(MechanismName(ResolutionMechanism::kRollback), "Rollback");
}

}  // namespace
}  // namespace byterobust

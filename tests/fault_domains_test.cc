// Tests for the hierarchical fault-domain topology (src/topology), the
// correlated domain injector (src/faults/domain_injector.h), and the graceful
// degradation ladder end to end: transient domain faults heal inside the
// controller's network debounce without eviction, persistent ones evict
// exactly the serving sub-tree, and fail-slow links backpressure step time
// through the perf model's congestion term.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/core/byterobust_system.h"
#include "src/core/scenario.h"
#include "src/faults/domain_injector.h"
#include "src/metrics/domain_blast.h"
#include "src/topology/fault_domains.h"

namespace byterobust {
namespace {

FaultDomainConfig SmallTree() {
  FaultDomainConfig cfg;
  cfg.machines_per_tor = 4;
  cfg.tors_per_spine = 2;
  cfg.spines_per_pod = 2;
  return cfg;
}

// ---------------------------------------------------------------------------
// Tree construction and id layout.
// ---------------------------------------------------------------------------

TEST(FaultDomainsTest, TreeShapeMatchesConfig) {
  // 20 machines / 4 per ToR / 2 ToRs per spine / 2 spines per pod:
  // 5 ToRs (last one ragged), 3 spines, 2 pods.
  FaultDomains domains(SmallTree(), 20);
  EXPECT_EQ(domains.CountAtLevel(DomainLevel::kNic), 20);
  EXPECT_EQ(domains.CountAtLevel(DomainLevel::kTor), 5);
  EXPECT_EQ(domains.CountAtLevel(DomainLevel::kSpine), 3);
  EXPECT_EQ(domains.CountAtLevel(DomainLevel::kPod), 2);
  EXPECT_EQ(domains.num_domains(), 20 + 5 + 3 + 2);

  // ToR machine bands are contiguous with a ragged tail.
  EXPECT_EQ(domains.DomainAt(DomainLevel::kTor, 0).machine_begin, 0);
  EXPECT_EQ(domains.DomainAt(DomainLevel::kTor, 0).machine_end, 4);
  EXPECT_EQ(domains.DomainAt(DomainLevel::kTor, 4).machine_begin, 16);
  EXPECT_EQ(domains.DomainAt(DomainLevel::kTor, 4).machine_end, 20);
  // Spine 1 aggregates ToRs 2..3 -> machines [8, 16); spine 2 is ragged.
  EXPECT_EQ(domains.DomainAt(DomainLevel::kSpine, 1).machine_begin, 8);
  EXPECT_EQ(domains.DomainAt(DomainLevel::kSpine, 1).machine_end, 16);
  EXPECT_EQ(domains.DomainAt(DomainLevel::kSpine, 2).machine_end, 20);
  // Pod 0 feeds spines 0..1 -> machines [0, 16).
  EXPECT_EQ(domains.DomainAt(DomainLevel::kPod, 0).machine_begin, 0);
  EXPECT_EQ(domains.DomainAt(DomainLevel::kPod, 0).machine_end, 16);
}

TEST(FaultDomainsTest, ParentChainWalksNicToPod) {
  FaultDomains domains(SmallTree(), 20);
  // Machine 9: NIC 9 -> ToR 2 -> spine 1 -> pod 0.
  const Domain& nic = domains.DomainAt(DomainLevel::kNic, 9);
  const Domain& tor = domains.domain(nic.parent);
  EXPECT_EQ(tor.level, DomainLevel::kTor);
  EXPECT_EQ(tor.index, 2);
  const Domain& spine = domains.domain(tor.parent);
  EXPECT_EQ(spine.level, DomainLevel::kSpine);
  EXPECT_EQ(spine.index, 1);
  const Domain& pod = domains.domain(spine.parent);
  EXPECT_EQ(pod.level, DomainLevel::kPod);
  EXPECT_EQ(pod.index, 0);
  EXPECT_EQ(pod.parent, -1);
}

TEST(FaultDomainsTest, TorBandsMatchLegacySwitchStormLayout) {
  // The graph's ToR bands must coincide with the legacy fleet storm band math
  // (machines_per_switch = 6 over 35 machines) that they replace.
  FaultDomainConfig cfg;
  cfg.machines_per_tor = 6;
  FaultDomains domains(cfg, 35);
  const int legacy_num_switches = (35 + 6 - 1) / 6;
  ASSERT_EQ(domains.CountAtLevel(DomainLevel::kTor), legacy_num_switches);
  for (int s = 0; s < legacy_num_switches; ++s) {
    const Domain& tor = domains.DomainAt(DomainLevel::kTor, s);
    EXPECT_EQ(tor.machine_begin, s * 6);
    EXPECT_EQ(tor.machine_end, std::min((s + 1) * 6, 35));
  }
}

TEST(FaultDomainsTest, PathOfMachineClampsLateMachines) {
  FaultDomains domains(SmallTree(), 20);
  const std::vector<DomainId> path = domains.PathOfMachine(9);
  ASSERT_EQ(path.size(), static_cast<std::size_t>(kNumDomainLevels));
  for (DomainId id : path) {
    const Domain& d = domains.domain(id);
    EXPECT_LE(d.machine_begin, 9);
    EXPECT_GT(d.machine_end, 9);
  }
  // A machine provisioned after construction clamps into the last domain at
  // every level instead of throwing.
  const std::vector<DomainId> late = domains.PathOfMachine(27);
  ASSERT_EQ(late.size(), static_cast<std::size_t>(kNumDomainLevels));
  EXPECT_EQ(domains.domain(late[1]).index, 4);  // last ToR
  EXPECT_EQ(domains.domain(late[3]).index, 1);  // last pod
}

// ---------------------------------------------------------------------------
// Congestion crossing semantics.
// ---------------------------------------------------------------------------

TEST(FaultDomainsTest, CongestionAppliesOnlyToCrossingSets) {
  FaultDomains domains(SmallTree(), 20);
  const DomainId tor0 = domains.DomainIdAt(DomainLevel::kTor, 0);  // [0, 4)
  domains.SetState(tor0, DomainState::kDegraded, 0.5, /*now=*/0);

  // Fully inside the degraded band: collectives never traverse the uplink.
  EXPECT_DOUBLE_EQ(domains.CongestionFactorFor({0, 1, 2, 3}), 1.0);
  // Fully outside: unaffected.
  EXPECT_DOUBLE_EQ(domains.CongestionFactorFor({4, 5, 6}), 1.0);
  // Crossing: members on both sides pay the degradation factor.
  EXPECT_DOUBLE_EQ(domains.CongestionFactorFor({0, 1, 4, 5}), 0.5);
  // A single machine has no collective to slow.
  EXPECT_DOUBLE_EQ(domains.CongestionFactorFor({0}), 1.0);

  // Two impaired links: the crossing set pays the worst factor.
  const DomainId tor1 = domains.DomainIdAt(DomainLevel::kTor, 1);  // [4, 8)
  domains.SetState(tor1, DomainState::kDegraded, 0.8, /*now=*/0);
  EXPECT_DOUBLE_EQ(domains.CongestionFactorFor({0, 4, 8}), 0.5);

  // Degraded state without a slowdown factor (spine flap) adds no congestion.
  domains.Heal(tor0, /*now=*/0);
  domains.Heal(tor1, /*now=*/0);
  const DomainId spine0 = domains.DomainIdAt(DomainLevel::kSpine, 0);
  domains.SetState(spine0, DomainState::kDegraded, 1.0, /*now=*/0);
  EXPECT_DOUBLE_EQ(domains.CongestionFactorFor({0, 9}), 1.0);
}

TEST(FaultDomainsTest, ImpairedListTracksStateChanges) {
  FaultDomains domains(SmallTree(), 20);
  EXPECT_FALSE(domains.AnyImpaired());
  const DomainId tor2 = domains.DomainIdAt(DomainLevel::kTor, 2);
  const DomainId pod1 = domains.DomainIdAt(DomainLevel::kPod, 1);
  domains.SetState(pod1, DomainState::kDown, 1.0, Seconds(5));
  domains.SetState(tor2, DomainState::kDegraded, 0.7, Seconds(6));
  EXPECT_EQ(domains.impaired(), (std::vector<DomainId>{tor2, pod1}));  // ascending
  EXPECT_EQ(domains.domain(pod1).state_since, Seconds(5));
  domains.Heal(pod1, Seconds(9));
  EXPECT_EQ(domains.impaired(), (std::vector<DomainId>{tor2}));
  EXPECT_DOUBLE_EQ(domains.domain(pod1).degradation_factor, 1.0);
  domains.Heal(tor2, Seconds(10));
  EXPECT_FALSE(domains.AnyImpaired());
}

// ---------------------------------------------------------------------------
// Cluster attachment: paths, epoch plumbing, congestion caching.
// ---------------------------------------------------------------------------

TEST(FaultDomainsClusterTest, AttachAssignsPathsAndIsEpochNeutral) {
  Cluster cluster(8, 2);
  const std::uint64_t epoch_before = cluster.health_epoch();
  cluster.AttachFaultDomains(SmallTree());
  EXPECT_EQ(cluster.health_epoch(), epoch_before);  // attach is not a fault
  ASSERT_NE(cluster.fault_domains(), nullptr);
  for (MachineId m = 0; m < 8; ++m) {
    const std::vector<DomainId>& path = cluster.machine(m).domain_path();
    ASSERT_EQ(path.size(), static_cast<std::size_t>(kNumDomainLevels));
    EXPECT_EQ(cluster.fault_domains()->domain(path[0]).machine_begin, m);
  }
}

TEST(FaultDomainsClusterTest, DisabledConfigAttachesNothing) {
  Cluster cluster(8, 2);
  FaultDomainConfig cfg = SmallTree();
  cfg.enabled = false;
  cluster.AttachFaultDomains(cfg);
  EXPECT_EQ(cluster.fault_domains(), nullptr);
  EXPECT_DOUBLE_EQ(cluster.CongestionFactor(), 1.0);
}

TEST(FaultDomainsClusterTest, DomainStateBumpsSharedEpochAndCongestion) {
  Cluster cluster(8, 2);
  cluster.AttachFaultDomains(SmallTree());
  EXPECT_DOUBLE_EQ(cluster.CongestionFactor(), 1.0);
  const std::uint64_t epoch_before = cluster.health_epoch();
  FaultDomains* domains = cluster.fault_domains();
  // ToR 0 covers [0, 4); all 8 serving machines straddle it.
  domains->SetState(domains->DomainIdAt(DomainLevel::kTor, 0), DomainState::kDegraded, 0.55,
                    /*now=*/0);
  EXPECT_GT(cluster.health_epoch(), epoch_before);
  EXPECT_DOUBLE_EQ(cluster.CongestionFactor(), 0.55);
  domains->Heal(domains->DomainIdAt(DomainLevel::kTor, 0), /*now=*/0);
  EXPECT_DOUBLE_EQ(cluster.CongestionFactor(), 1.0);
}

// ---------------------------------------------------------------------------
// DomainInjector: per-kind machine health effects.
// ---------------------------------------------------------------------------

TEST(DomainInjectorTest, SpineFlapDegradesEveryMachineBeneath) {
  Cluster cluster(8, 2);
  cluster.AttachFaultDomains(SmallTree());
  const DomainId spine0 = cluster.fault_domains()->DomainIdAt(DomainLevel::kSpine, 0);
  const DomainFaultEffect effect =
      DomainInjector::ApplyToDomain(DomainFaultKind::kSpineFlap, spine0, 1.0, &cluster,
                                    /*now=*/0);
  EXPECT_EQ(effect.affected.size(), 8u);  // spine 0 covers [0, 8)
  for (MachineId m = 0; m < 8; ++m) {
    EXPECT_FALSE(cluster.machine(m).host().switch_reachable);
    EXPECT_GT(cluster.machine(m).host().packet_loss_rate, 0.1);
    EXPECT_EQ(cluster.machine(m).state(), MachineState::kDegraded);  // gray: still serving
  }
  EXPECT_EQ(cluster.fault_domains()->domain(spine0).state, DomainState::kDegraded);

  DomainInjector::HealDomain(DomainFaultKind::kSpineFlap, spine0, &cluster, /*now=*/0);
  for (MachineId m = 0; m < 8; ++m) {
    EXPECT_TRUE(cluster.machine(m).host().switch_reachable);
    EXPECT_EQ(cluster.machine(m).state(), MachineState::kActive);
  }
  EXPECT_FALSE(cluster.fault_domains()->AnyImpaired());
}

TEST(DomainInjectorTest, PowerLossKillsThePodButSkipsBlacklisted) {
  Cluster cluster(8, 2);
  cluster.AttachFaultDomains(SmallTree());
  cluster.Blacklist(2);
  const DomainId pod0 = cluster.fault_domains()->DomainIdAt(DomainLevel::kPod, 0);
  const DomainFaultEffect effect =
      DomainInjector::ApplyToDomain(DomainFaultKind::kPowerLoss, pod0, 1.0, &cluster,
                                    /*now=*/0);
  EXPECT_EQ(std::count(effect.affected.begin(), effect.affected.end(), 2), 0);
  for (MachineId m = 0; m < 8; ++m) {
    if (m == 2) {
      continue;  // already evicted: untouched
    }
    EXPECT_FALSE(cluster.machine(m).host().os_kernel_ok) << m;
    EXPECT_EQ(cluster.machine(m).state(), MachineState::kFaulty) << m;
  }
  EXPECT_EQ(cluster.fault_domains()->domain(pod0).state, DomainState::kDown);
}

TEST(DomainInjectorTest, LinkFailSlowFlipsNoMachineHealth) {
  Cluster cluster(8, 2);
  cluster.AttachFaultDomains(SmallTree());
  const DomainId tor0 = cluster.fault_domains()->DomainIdAt(DomainLevel::kTor, 0);
  const DomainFaultEffect effect =
      DomainInjector::ApplyToDomain(DomainFaultKind::kLinkFailSlow, tor0, 0.5, &cluster,
                                    /*now=*/0);
  EXPECT_TRUE(effect.affected.empty());  // silent: the hallmark gray failure
  for (MachineId m = 0; m < 8; ++m) {
    EXPECT_TRUE(cluster.machine(m).host().switch_reachable);
    EXPECT_EQ(cluster.machine(m).state(), MachineState::kActive);
  }
  // ...but crossing collectives pay for it.
  EXPECT_DOUBLE_EQ(cluster.CongestionFactor(), 0.5);
}

TEST(DomainInjectorTest, ServingUnderReturnsSlotMachinesInRange) {
  Cluster pool(kFleetPool, 12, 2);
  pool.AttachFaultDomains(SmallTree());
  Cluster job(pool, 6);  // serves machines 0..5
  const DomainId tor1 = pool.fault_domains()->DomainIdAt(DomainLevel::kTor, 1);  // [4, 8)
  EXPECT_EQ(DomainInjector::ServingUnder(job, tor1), (std::vector<MachineId>{4, 5}));
  EXPECT_EQ(DomainInjector::ServingUnder(pool, tor1), (std::vector<MachineId>{}));
}

// ---------------------------------------------------------------------------
// End-to-end graceful degradation through the controller.
// ---------------------------------------------------------------------------

SystemConfig SmallSystem(std::uint64_t seed) {
  SystemConfig config;
  config.job.name = "domain-test";
  config.job.parallelism.tp = 2;
  config.job.parallelism.pp = 2;
  config.job.parallelism.dp = 4;
  config.job.parallelism.gpus_per_machine = 2;
  config.job.base_step_time = Seconds(10);
  config.seed = seed;
  config.spare_machines = 4;  // 8 serving + 4 spares
  config.fault_domains = SmallTree();
  return config;
}

Incident SpineIncident(const std::vector<MachineId>& machines, RootCause cause, SimTime now) {
  Incident inc;
  inc.id = 9001;
  inc.symptom = IncidentSymptom::kInfinibandError;
  inc.root_cause = cause;
  inc.faulty_machines = machines;
  inc.inject_time = now;
  return inc;
}

TEST(DomainFaultE2eTest, TransientSpineFlapHealsInsideDebounceWithoutEviction) {
  ByteRobustSystem sys(SmallSystem(11));
  sys.Start();
  sys.sim().RunUntil(Minutes(5));
  ASSERT_NE(sys.cluster().fault_domains(), nullptr);
  const DomainId spine0 = sys.cluster().fault_domains()->DomainIdAt(DomainLevel::kSpine, 0);

  const SimTime inject = sys.sim().Now();
  DomainInjector::ApplyToDomain(DomainFaultKind::kSpineFlap, spine0, 1.0, &sys.cluster(),
                                inject);
  sys.controller().NotifyIncidentInjected(
      SpineIncident(DomainInjector::ServingUnder(sys.cluster(), spine0),
                    RootCause::kTransient, inject));
  // Heal before the 150 s network debounce expires: the post-debounce recheck
  // must see nominal machines and reattempt instead of evicting.
  sys.sim().Schedule(Seconds(90), [&sys, spine0] {
    DomainInjector::HealDomain(DomainFaultKind::kSpineFlap, spine0, &sys.cluster(),
                               sys.sim().Now());
  });
  sys.sim().RunUntil(inject + Minutes(30));

  EXPECT_EQ(sys.controller().evictions_total(), 0);
  EXPECT_EQ(sys.job().state(), JobRunState::kRunning);
  EXPECT_GE(sys.job().run_count(), 2);  // stopped for the debounce, reattempted
}

TEST(DomainFaultE2eTest, PersistentSpineFaultEvictsExactlyTheSubTree) {
  ByteRobustSystem sys(SmallSystem(12));
  sys.Start();
  sys.sim().RunUntil(Minutes(5));
  const FaultDomains* domains = sys.cluster().fault_domains();
  const DomainId spine0 = domains->DomainIdAt(DomainLevel::kSpine, 0);
  const MachineId begin = domains->machine_begin(spine0);
  const MachineId end = domains->machine_end(spine0);
  const std::vector<MachineId> serving = DomainInjector::ServingUnder(sys.cluster(), spine0);
  ASSERT_FALSE(serving.empty());

  const SimTime inject = sys.sim().Now();
  DomainInjector::ApplyToDomain(DomainFaultKind::kSpineFlap, spine0, 1.0, &sys.cluster(),
                                inject);
  sys.controller().NotifyIncidentInjected(
      SpineIncident(serving, RootCause::kInfrastructure, inject));
  // Never healed: every post-debounce recheck still sees the flap, so the
  // controller works through the sub-tree round by round.
  sys.sim().RunUntil(inject + Hours(6));

  std::set<MachineId> blacklisted;
  for (MachineId m = 0; m < static_cast<MachineId>(sys.cluster().total_machines()); ++m) {
    if (sys.cluster().IsBlacklisted(m)) {
      blacklisted.insert(m);
    }
  }
  // Exactly the machines that were serving under the spine — nothing outside
  // the domain, and no survivor within it.
  EXPECT_EQ(blacklisted, std::set<MachineId>(serving.begin(), serving.end()));
  for (MachineId m : blacklisted) {
    EXPECT_GE(m, begin);
    EXPECT_LT(m, end);
  }
  // The job recovered onto replacement machines outside the faulted spine.
  EXPECT_EQ(sys.job().state(), JobRunState::kRunning);
}

TEST(DomainFaultE2eTest, LinkFailSlowBackpressuresStepTime) {
  ByteRobustSystem sys(SmallSystem(13));
  sys.Start();
  sys.sim().RunUntil(Minutes(2));
  const SimDuration nominal = sys.job().CurrentStepTime();
  ASSERT_GT(nominal, 0);

  // ToR 0 covers half the serving set: the job's collectives cross it.
  FaultDomains* domains = sys.cluster().fault_domains();
  const DomainId tor0 = domains->DomainIdAt(DomainLevel::kTor, 0);
  DomainInjector::ApplyToDomain(DomainFaultKind::kLinkFailSlow, tor0, 0.5, &sys.cluster(),
                                sys.sim().Now());
  const SimDuration congested = sys.job().CurrentStepTime();
  // Factor 0.5 doubles the step time (and halves MFU) while the link is bad.
  EXPECT_NEAR(static_cast<double>(congested), static_cast<double>(nominal) / 0.5,
              static_cast<double>(nominal) * 0.01);

  DomainInjector::HealDomain(DomainFaultKind::kLinkFailSlow, tor0, &sys.cluster(),
                             sys.sim().Now());
  EXPECT_EQ(sys.job().CurrentStepTime(), nominal);
}

// ---------------------------------------------------------------------------
// Scenario-level domain-fault stream.
// ---------------------------------------------------------------------------

ScenarioConfig DomainScenario(DomainFaultKind kind, std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.system = SmallSystem(seed);
  cfg.duration = Hours(8);
  // Background per-machine mix effectively off: evictions can then only come
  // from the domain stream. Keep MTBF * reference_machines/slots well under
  // INT64_MAX microseconds so exponential draws never overflow the cast.
  cfg.injector.reference_mtbf = Hours(1.0e5);
  cfg.injector.reference_machines = 12;
  cfg.planned_updates = 0;
  cfg.domain_faults.kind = kind;
  cfg.domain_faults.mean_gap = Minutes(40);
  return cfg;
}

struct ScenarioDigest {
  int domain_faults = 0;
  int incidents = 0;
  int evictions = 0;
  std::int64_t steps = 0;
  int blast_events = 0;

  bool operator==(const ScenarioDigest&) const = default;
};

ScenarioDigest RunDomainScenario(const ScenarioConfig& cfg) {
  Scenario scenario(cfg);
  scenario.Run();
  ScenarioDigest d;
  d.domain_faults = scenario.stats().domain_faults_injected;
  d.incidents = scenario.stats().incidents_injected;
  d.evictions = scenario.system().controller().evictions_total();
  d.steps = scenario.system().job().max_step_reached();
  d.blast_events = static_cast<int>(scenario.domain_blast().events().size());
  return d;
}

TEST(DomainScenarioTest, AllTransientFlapsNeverEvict) {
  ScenarioConfig cfg = DomainScenario(DomainFaultKind::kSpineFlap, 21);
  cfg.domain_faults.transient_fraction = 1.0;
  const ScenarioDigest d = RunDomainScenario(cfg);
  EXPECT_GE(d.domain_faults, 3);
  EXPECT_EQ(d.evictions, 0) << "transient domain faults must heal inside the debounce";
  EXPECT_GT(d.steps, 0);
}

TEST(DomainScenarioTest, PersistentFlapsEscalateToEviction) {
  ScenarioConfig cfg = DomainScenario(DomainFaultKind::kSpineFlap, 22);
  cfg.domain_faults.transient_fraction = 0.0;
  cfg.domain_faults.persistent_hold = Hours(1);
  const ScenarioDigest d = RunDomainScenario(cfg);
  EXPECT_GE(d.domain_faults, 1);
  EXPECT_GT(d.evictions, 0) << "persistent domain faults must escalate to eviction";
}

TEST(DomainScenarioTest, StreamIsDeterministic) {
  const ScenarioConfig cfg = DomainScenario(DomainFaultKind::kPowerLoss, 23);
  const ScenarioDigest a = RunDomainScenario(cfg);
  const ScenarioDigest b = RunDomainScenario(cfg);
  EXPECT_EQ(a, b);
  EXPECT_GE(a.blast_events, 1);
}

TEST(DomainScenarioTest, DisabledStreamLeavesLegacyRunsUntouched) {
  // The domain stream draws from its own RNG: a config with the graph
  // attached but mean_gap = 0 must replay the legacy scenario exactly.
  ScenarioConfig base = DomainScenario(DomainFaultKind::kSpineFlap, 24);
  base.injector.reference_mtbf = Hours(1);  // real background mix
  base.injector.reference_machines = 12;    // scaled to this cluster's size
  base.domain_faults.mean_gap = 0;
  const ScenarioDigest with_graph = RunDomainScenario(base);

  ScenarioConfig flat = base;
  flat.system.fault_domains.enabled = false;
  const ScenarioDigest without_graph = RunDomainScenario(flat);
  EXPECT_EQ(with_graph, without_graph);
  EXPECT_GT(with_graph.incidents, 0);
  EXPECT_EQ(with_graph.blast_events, 0);
}

TEST(DomainScenarioTest, BlastStatsRecordLevelAndHeals) {
  ScenarioConfig cfg = DomainScenario(DomainFaultKind::kLinkFailSlow, 25);
  cfg.domain_faults.transient_fraction = 1.0;
  Scenario scenario(cfg);
  scenario.Run();
  ASSERT_FALSE(scenario.domain_blast().empty());
  const auto by_level = scenario.domain_blast().SummaryByLevel();
  ASSERT_EQ(by_level.size(), 1u);
  const DomainBlastLevelSummary& tor = by_level.at(static_cast<int>(DomainLevel::kTor));
  EXPECT_EQ(tor.events, scenario.stats().domain_faults_injected);
  EXPECT_EQ(tor.transient_events, tor.events);
  EXPECT_GE(tor.healed_events, tor.events - 1);  // last may straddle the end
  EXPECT_EQ(scenario.system().controller().evictions_total(), 0);  // silent fault
}

}  // namespace
}  // namespace byterobust

// Unit + property tests for load-time checkpoint resharding.

#include <gtest/gtest.h>

#include <numeric>

#include "src/ckpt/reshard.h"

namespace byterobust {
namespace {

ParallelismConfig Config(int tp, int pp, int dp, int gpm = 2) {
  ParallelismConfig cfg;
  cfg.tp = tp;
  cfg.pp = pp;
  cfg.dp = dp;
  cfg.gpus_per_machine = gpm;
  return cfg;
}

TEST(ReshardTest, ShardsTileTheSpaceExactly) {
  const ParallelismConfig cfg = Config(2, 4, 2);
  const std::int64_t total = 1000;  // deliberately not divisible by 8
  std::int64_t covered = 0;
  std::int64_t prev_hi = 0;
  for (int s = 0; s < cfg.tp * cfg.pp; ++s) {
    // Model shards keyed by (tp, pp) at dp=0.
    const Rank rank = s;  // ranks 0..7 are exactly the dp=0 grid
    const ByteInterval shard = ReshardPlanner::ModelShard(cfg, rank, total);
    EXPECT_EQ(shard.lo, prev_hi) << "gap or overlap at shard " << s;
    prev_hi = shard.hi;
    covered += shard.size();
  }
  EXPECT_EQ(prev_hi, total);
  EXPECT_EQ(covered, total);
}

TEST(ReshardTest, DpReplicasHoldIdenticalModelShards) {
  const ParallelismConfig cfg = Config(2, 4, 4);
  const Topology topo(cfg);
  const std::int64_t total = 1 << 20;
  for (Rank r = 0; r < topo.world_size(); ++r) {
    const RankCoord c = topo.CoordOf(r);
    RankCoord replica = c;
    replica.dp = 0;
    EXPECT_EQ(ReshardPlanner::ModelShard(cfg, r, total),
              ReshardPlanner::ModelShard(cfg, topo.RankOf(replica), total));
  }
}

TEST(ReshardTest, IdentityReshardReadsExactlyOwnShard) {
  const ParallelismConfig cfg = Config(2, 4, 2);
  ReshardPlanner planner(cfg, cfg, 1 << 20, 1 << 18);
  for (Rank r = 0; r < cfg.world_size(); ++r) {
    const auto opt_sources = planner.OptimizerSourcesFor(r);
    ASSERT_EQ(opt_sources.size(), 1u);
    EXPECT_EQ(opt_sources[0].old_rank, r);
    EXPECT_EQ(opt_sources[0].range, ReshardPlanner::OptimizerShard(cfg, r, 1 << 18));
  }
}

TEST(ReshardTest, DpExpansionSplitsOptimizerShards) {
  // Long-context stage: DP grows 2 -> 4 (Sec. 2.1); every new optimizer
  // shard is half of an old one.
  const ParallelismConfig old_cfg = Config(2, 4, 2);
  const ParallelismConfig new_cfg = Config(2, 4, 4);
  const std::int64_t opt_bytes = 1 << 20;
  ReshardPlanner planner(old_cfg, new_cfg, 1 << 22, opt_bytes);
  for (Rank r = 0; r < new_cfg.world_size(); ++r) {
    const auto sources = planner.OptimizerSourcesFor(r);
    ASSERT_EQ(sources.size(), 1u) << "aligned split should read one old shard";
    const ByteInterval want = ReshardPlanner::OptimizerShard(new_cfg, r, opt_bytes);
    EXPECT_EQ(sources[0].range, want);
  }
}

struct ReshardCase {
  ParallelismConfig old_cfg;
  ParallelismConfig new_cfg;
};

class ReshardProperty : public ::testing::TestWithParam<ReshardCase> {};

TEST_P(ReshardProperty, SourcesExactlyCoverEveryNewShard) {
  const auto& c = GetParam();
  const std::int64_t model_bytes = 10'000'019;  // prime: stresses boundaries
  const std::int64_t opt_bytes = 7'000'003;
  ReshardPlanner planner(c.old_cfg, c.new_cfg, model_bytes, opt_bytes);

  for (Rank r = 0; r < c.new_cfg.world_size(); ++r) {
    // Optimizer: sources must tile the wanted interval in order.
    const ByteInterval opt_want = ReshardPlanner::OptimizerShard(c.new_cfg, r, opt_bytes);
    std::int64_t cursor = opt_want.lo;
    for (const ShardSource& s : planner.OptimizerSourcesFor(r)) {
      EXPECT_EQ(s.range.lo, cursor);
      // The source range must lie inside the old rank's shard.
      const ByteInterval old_shard =
          ReshardPlanner::OptimizerShard(c.old_cfg, s.old_rank, opt_bytes);
      EXPECT_GE(s.range.lo, old_shard.lo);
      EXPECT_LE(s.range.hi, old_shard.hi);
      cursor = s.range.hi;
    }
    EXPECT_EQ(cursor, opt_want.hi);

    // Model: same tiling property.
    const ByteInterval model_want = ReshardPlanner::ModelShard(c.new_cfg, r, model_bytes);
    cursor = model_want.lo;
    for (const ShardSource& s : planner.ModelSourcesFor(r)) {
      EXPECT_EQ(s.range.lo, cursor);
      const ByteInterval old_shard =
          ReshardPlanner::ModelShard(c.old_cfg, s.old_rank, model_bytes);
      EXPECT_GE(s.range.lo, old_shard.lo);
      EXPECT_LE(s.range.hi, old_shard.hi);
      cursor = s.range.hi;
    }
    EXPECT_EQ(cursor, model_want.hi);
  }
}

TEST_P(ReshardProperty, TotalBytesMovedMatchTheStateSizes) {
  const auto& c = GetParam();
  const std::int64_t model_bytes = 1 << 22;
  const std::int64_t opt_bytes = 1 << 20;
  ReshardPlanner planner(c.old_cfg, c.new_cfg, model_bytes, opt_bytes);
  const ReshardStats stats = planner.Stats();
  // Optimizer state is read exactly once in total; model state once per new
  // DP replica set.
  EXPECT_EQ(stats.optimizer_bytes_moved, opt_bytes);
  EXPECT_EQ(stats.model_bytes_moved, model_bytes * c.new_cfg.dp);
  EXPECT_GE(stats.max_fan_in, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Transitions, ReshardProperty,
    ::testing::Values(ReshardCase{Config(2, 4, 2), Config(2, 4, 4)},   // DP growth
                      ReshardCase{Config(2, 4, 4), Config(2, 4, 2)},   // DP shrink
                      ReshardCase{Config(2, 4, 2), Config(4, 2, 2)},   // TP/PP reshape
                      ReshardCase{Config(4, 2, 2), Config(2, 2, 4)},   // mixed
                      ReshardCase{Config(2, 4, 2), Config(2, 4, 2)},   // identity
                      ReshardCase{Config(8, 8, 4, 16), Config(8, 8, 8, 16)}));

TEST(ReshardTest, RejectsInvalidInputs) {
  EXPECT_THROW(ReshardPlanner(Config(0, 1, 1), Config(2, 2, 2), 1, 1), std::invalid_argument);
  EXPECT_THROW(ReshardPlanner(Config(2, 2, 2), Config(2, 2, 2), -1, 1), std::invalid_argument);
}

}  // namespace
}  // namespace byterobust

// Unit tests for the incident taxonomy (Table 1 / Table 2) and fault injector.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "src/faults/fault_injector.h"
#include "src/faults/incident.h"

namespace byterobust {
namespace {

TEST(IncidentTest, CategoryTaxonomyMatchesTable1) {
  EXPECT_EQ(CategoryOf(IncidentSymptom::kCudaError), IncidentCategory::kExplicit);
  EXPECT_EQ(CategoryOf(IncidentSymptom::kDiskFault), IncidentCategory::kExplicit);
  EXPECT_EQ(CategoryOf(IncidentSymptom::kJobHang), IncidentCategory::kImplicit);
  EXPECT_EQ(CategoryOf(IncidentSymptom::kMfuDecline), IncidentCategory::kImplicit);
  EXPECT_EQ(CategoryOf(IncidentSymptom::kNanValue), IncidentCategory::kImplicit);
  EXPECT_EQ(CategoryOf(IncidentSymptom::kCodeDataAdjustment), IncidentCategory::kManualRestart);
}

TEST(IncidentTest, PaperStatsCoverAllSymptomsAndSumToOne) {
  const auto& stats = PaperSymptomStats();
  EXPECT_EQ(stats.size(), static_cast<std::size_t>(kNumIncidentSymptoms));
  double fraction_sum = 0.0;
  int count_sum = 0;
  for (const auto& s : stats) {
    fraction_sum += s.paper_fraction;
    count_sum += s.paper_count;
  }
  EXPECT_NEAR(fraction_sum, 1.0, 0.01);  // Table 1 percentages round to 100%
  EXPECT_EQ(count_sum, 55365);           // total incidents in Table 1
}

TEST(IncidentTest, Table2RootCauseMix) {
  EXPECT_NEAR(UserCodeProbability(IncidentSymptom::kJobHang), 5.0 / 26.0, 1e-9);
  EXPECT_NEAR(UserCodeProbability(IncidentSymptom::kCudaError), 41.0 / 62.0, 1e-9);
  EXPECT_NEAR(UserCodeProbability(IncidentSymptom::kNanValue), 0.25, 1e-9);
  EXPECT_DOUBLE_EQ(UserCodeProbability(IncidentSymptom::kCodeDataAdjustment), 1.0);
  EXPECT_DOUBLE_EQ(UserCodeProbability(IncidentSymptom::kDiskFault), 0.0);
}

TEST(IncidentTest, ToStringIncludesEssentials) {
  Incident inc;
  inc.id = 7;
  inc.symptom = IncidentSymptom::kJobHang;
  inc.root_cause = RootCause::kInfrastructure;
  inc.faulty_machines = {3, 4};
  const std::string s = inc.ToString();
  EXPECT_NE(s.find("Job Hang"), std::string::npos);
  EXPECT_NE(s.find("Implicit"), std::string::npos);
  EXPECT_NE(s.find("3,4"), std::string::npos);
}

TEST(FaultInjectorTest, MtbfScalesInverselyWithMachines) {
  FaultInjectorConfig cfg;
  cfg.reference_mtbf = Hours(2.78);
  cfg.reference_machines = 2048;
  FaultInjector inj(cfg, Rng(1));
  EXPECT_EQ(inj.MtbfFor(2048), Hours(2.78));
  EXPECT_EQ(inj.MtbfFor(1024), 2 * Hours(2.78));
  EXPECT_NEAR(static_cast<double>(inj.MtbfFor(4096)),
              static_cast<double>(Hours(2.78)) / 2.0, 1.0);
  EXPECT_THROW(inj.MtbfFor(0), std::invalid_argument);
}

TEST(FaultInjectorTest, SymptomMixConvergesToTable1) {
  FaultInjector inj(FaultInjectorConfig{}, Rng(99));
  std::vector<MachineId> serving(128);
  for (int i = 0; i < 128; ++i) {
    serving[static_cast<std::size_t>(i)] = i;
  }
  std::map<IncidentSymptom, int> counts;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) {
    ++counts[inj.SampleFailure(0, serving).symptom];
  }
  // CUDA errors are 36.1% of all incidents => 43.7% of non-manual incidents.
  const double cuda = static_cast<double>(counts[IncidentSymptom::kCudaError]) / trials;
  EXPECT_NEAR(cuda, 0.361 / 0.827, 0.02);
  const double hang = static_cast<double>(counts[IncidentSymptom::kJobHang]) / trials;
  EXPECT_NEAR(hang, 0.099 / 0.827, 0.02);
  // Manual restarts never come from SampleFailure.
  EXPECT_EQ(counts[IncidentSymptom::kCodeDataAdjustment], 0);
}

TEST(FaultInjectorTest, UserCodeIncidentsHaveNoFaultyMachine) {
  FaultInjector inj(FaultInjectorConfig{}, Rng(5));
  std::vector<MachineId> serving = {0, 1, 2, 3};
  for (int i = 0; i < 2000; ++i) {
    const Incident inc = inj.SampleFailure(0, serving);
    if (inc.root_cause == RootCause::kUserCode) {
      EXPECT_TRUE(inc.faulty_machines.empty());
    } else {
      ASSERT_EQ(inc.faulty_machines.size(), 1u);
      EXPECT_GE(inc.faulty_machines[0], 0);
      EXPECT_LE(inc.faulty_machines[0], 3);
    }
  }
}

TEST(FaultInjectorTest, ManualRestartIncident) {
  FaultInjector inj(FaultInjectorConfig{}, Rng(5));
  const Incident inc = inj.SampleManualRestart(Seconds(100));
  EXPECT_EQ(inc.symptom, IncidentSymptom::kCodeDataAdjustment);
  EXPECT_EQ(inc.root_cause, RootCause::kUserCode);
  EXPECT_EQ(inc.inject_time, Seconds(100));
}

TEST(FaultInjectorTest, SampleFailureRejectsEmptyServingSet) {
  FaultInjector inj(FaultInjectorConfig{}, Rng(5));
  EXPECT_THROW(inj.SampleFailure(0, {}), std::invalid_argument);
}

struct ApplyCase {
  IncidentSymptom symptom;
  MachineState expected_state;
};

class ApplyToClusterTest : public ::testing::TestWithParam<ApplyCase> {};

TEST_P(ApplyToClusterTest, SetsObservableFlagsAndState) {
  Cluster cluster(4, 8);
  Incident inc;
  inc.symptom = GetParam().symptom;
  inc.root_cause = inc.symptom == IncidentSymptom::kNanValue ? RootCause::kSdc
                                                             : RootCause::kInfrastructure;
  inc.faulty_machines = {2};
  inc.gpu_index = 1;
  FaultInjector::ApplyToCluster(inc, &cluster);
  EXPECT_EQ(cluster.machine(2).state(), GetParam().expected_state);
  EXPECT_EQ(cluster.machine(2).incident_count, 1);
  // Other machines untouched.
  EXPECT_EQ(cluster.machine(0).state(), MachineState::kActive);

  FaultInjector::ClearFromCluster(inc, &cluster);
  EXPECT_EQ(cluster.machine(2).state(), MachineState::kActive);
  EXPECT_FALSE(cluster.machine(2).HasSdc());
}

INSTANTIATE_TEST_SUITE_P(
    Symptoms, ApplyToClusterTest,
    ::testing::Values(ApplyCase{IncidentSymptom::kCudaError, MachineState::kFaulty},
                      ApplyCase{IncidentSymptom::kGpuUnavailable, MachineState::kFaulty},
                      ApplyCase{IncidentSymptom::kGpuMemoryError, MachineState::kFaulty},
                      ApplyCase{IncidentSymptom::kInfinibandError, MachineState::kFaulty},
                      ApplyCase{IncidentSymptom::kOsKernelPanic, MachineState::kFaulty},
                      ApplyCase{IncidentSymptom::kDiskFault, MachineState::kFaulty},
                      ApplyCase{IncidentSymptom::kCpuOom, MachineState::kFaulty},
                      ApplyCase{IncidentSymptom::kJobHang, MachineState::kDegraded},
                      ApplyCase{IncidentSymptom::kMfuDecline, MachineState::kDegraded},
                      ApplyCase{IncidentSymptom::kNanValue, MachineState::kDegraded}));

TEST(ApplyToClusterEdge, TransientLeavesNoTrace) {
  Cluster cluster(4, 8);
  Incident inc;
  inc.symptom = IncidentSymptom::kInfinibandError;
  inc.root_cause = RootCause::kTransient;
  inc.faulty_machines = {1};
  FaultInjector::ApplyToCluster(inc, &cluster);
  EXPECT_EQ(cluster.machine(1).state(), MachineState::kActive);
  EXPECT_TRUE(cluster.machine(1).host().nic_up);
}

TEST(ApplyToClusterEdge, SdcNanIsInvisibleToHostChecks) {
  Cluster cluster(4, 8);
  Incident inc;
  inc.symptom = IncidentSymptom::kNanValue;
  inc.root_cause = RootCause::kSdc;
  inc.faulty_machines = {0};
  inc.gpu_index = 3;
  FaultInjector::ApplyToCluster(inc, &cluster);
  const Machine& m = cluster.machine(0);
  EXPECT_TRUE(m.HasSdc());
  // All inspection-visible attributes remain nominal.
  EXPECT_TRUE(m.gpu(3).dcgm_responsive);
  EXPECT_TRUE(m.gpu(3).available);
  EXPECT_TRUE(m.gpu(3).hbm_ok);
  EXPECT_TRUE(m.host().nic_up);
}

TEST(ApplyToClusterEdge, JobHangSetsSilentCommDefect) {
  Cluster cluster(4, 8);
  Incident inc;
  inc.symptom = IncidentSymptom::kJobHang;
  inc.root_cause = RootCause::kInfrastructure;
  inc.faulty_machines = {3};
  inc.gpu_index = 0;
  FaultInjector::ApplyToCluster(inc, &cluster);
  EXPECT_TRUE(cluster.machine(3).gpu(0).comm_defect);
  EXPECT_TRUE(cluster.machine(3).gpu(0).dcgm_responsive);
}

TEST(FaultInjectorTest, DelaysAreExponentialWithScaledMean) {
  FaultInjectorConfig cfg;
  cfg.reference_mtbf = Hours(2.78);
  cfg.reference_machines = 2048;
  FaultInjector inj(cfg, Rng(77));
  double total = 0.0;
  const int trials = 5000;
  for (int i = 0; i < trials; ++i) {
    total += static_cast<double>(inj.NextFailureDelay(1024));
  }
  const double mean_hours = ToHours(static_cast<SimDuration>(total / trials));
  EXPECT_NEAR(mean_hours, 5.56, 0.3);  // 2.78 h * 2048/1024
}

}  // namespace
}  // namespace byterobust

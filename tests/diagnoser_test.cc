// Unit tests for stop-time diagnostics and the selective-stress baseline.

#include <gtest/gtest.h>

#include "src/diagnoser/diagnoser.h"
#include "src/diagnoser/stress_baseline.h"

namespace byterobust {
namespace {

DiagnoserConfig PerfectRecall() {
  DiagnoserConfig cfg;
  cfg.eud_recall_explicit = 1.0;
  cfg.eud_recall_sdc = 0.0;
  cfg.intra_recall = 1.0;
  cfg.inter_recall = 1.0;
  cfg.bitwise_recall_sdc = 1.0;
  return cfg;
}

TEST(DiagnoserTest, EudCatchesExplicitGpuFaults) {
  Cluster cluster(4, 8);
  cluster.machine(1).gpu(3).hbm_ok = false;
  Diagnoser diag(PerfectRecall(), Rng(1));
  const DiagnosisResult result = diag.RunNcclSuite(cluster);
  EXPECT_EQ(result.suspects, (std::vector<MachineId>{1}));
  // EUD found it; the suite stops there.
  EXPECT_EQ(result.tests_run, (std::vector<std::string>{"EUD"}));
  EXPECT_EQ(result.elapsed, diag.config().eud_duration);
}

TEST(DiagnoserTest, InterMachineTestCatchesNetworkFaults) {
  Cluster cluster(4, 8);
  cluster.machine(2).host().nic_up = false;
  Diagnoser diag(PerfectRecall(), Rng(1));
  const DiagnosisResult result = diag.RunNcclSuite(cluster);
  EXPECT_EQ(result.suspects, (std::vector<MachineId>{2}));
  ASSERT_EQ(result.tests_run.size(), 3u);
  EXPECT_EQ(result.tests_run.back(), "inter-machine all-gather");
  EXPECT_EQ(result.elapsed, diag.config().eud_duration + diag.config().intra_machine_duration +
                                diag.config().inter_machine_duration);
}

TEST(DiagnoserTest, CleanClusterYieldsNoSuspects) {
  Cluster cluster(4, 8);
  Diagnoser diag(PerfectRecall(), Rng(1));
  const DiagnosisResult result = diag.RunNcclSuite(cluster);
  EXPECT_FALSE(result.HasSuspects());
  EXPECT_EQ(result.tests_run.size(), 3u);  // the whole ladder ran
}

TEST(DiagnoserTest, NanSuiteBitwiseAlignmentCatchesSdc) {
  Cluster cluster(4, 8);
  cluster.machine(3).gpu(0).sdc = true;
  Diagnoser diag(PerfectRecall(), Rng(1));
  const DiagnosisResult result = diag.RunNanSuite(cluster);
  EXPECT_EQ(result.suspects, (std::vector<MachineId>{3}));
  EXPECT_EQ(result.tests_run.back(), "bit-wise alignment (MiniGPT)");
}

TEST(DiagnoserTest, NcclSuiteMissesSdc) {
  // SDC is invisible to EUD/NCCL testing (the paper's motivation for the
  // MiniGPT suite); only the NaN suite escalates to bit-wise alignment.
  Cluster cluster(4, 8);
  cluster.machine(3).gpu(0).sdc = true;
  Diagnoser diag(PerfectRecall(), Rng(1));
  EXPECT_FALSE(diag.RunNcclSuite(cluster).HasSuspects());
}

TEST(DiagnoserTest, ZeroRecallFindsNothing) {
  DiagnoserConfig cfg;
  cfg.eud_recall_explicit = 0.0;
  cfg.eud_recall_sdc = 0.0;
  cfg.intra_recall = 0.0;
  cfg.intra_recall_comm_defect = 0.0;
  cfg.inter_recall = 0.0;
  cfg.bitwise_recall_sdc = 0.0;
  Cluster cluster(4, 8);
  cluster.machine(0).gpu(0).hbm_ok = false;
  cluster.machine(1).host().nic_up = false;
  cluster.machine(2).gpu(0).sdc = true;
  Diagnoser diag(cfg, Rng(1));
  EXPECT_FALSE(diag.RunNanSuite(cluster).HasSuspects());
}

TEST(DiagnoserTest, InterPacketLossThresholdIsConfigurable) {
  // The inter-machine test flags lossy-but-up NICs via a named threshold
  // instead of a hard-coded constant: the same 30% loss rate is a suspect
  // under the default 5% bar and clean under a relaxed 50% bar.
  Cluster lossy(4, 8);
  lossy.machine(1).host().packet_loss_rate = 0.3;

  Diagnoser strict(PerfectRecall(), Rng(1));
  EXPECT_EQ(strict.RunNcclSuite(lossy).suspects, (std::vector<MachineId>{1}));

  DiagnoserConfig relaxed_cfg = PerfectRecall();
  relaxed_cfg.inter_packet_loss_threshold = 0.5;
  Cluster lossy2(4, 8);
  lossy2.machine(1).host().packet_loss_rate = 0.3;
  Diagnoser relaxed(relaxed_cfg, Rng(1));
  EXPECT_FALSE(relaxed.RunNcclSuite(lossy2).HasSuspects());
}

TEST(DiagnoserTest, ImperfectEudRecallIsStochastic) {
  DiagnoserConfig cfg = PerfectRecall();
  cfg.eud_recall_explicit = 0.7;  // Sec. 9: EUD achieves ~70% recall
  int found = 0;
  const int trials = 2000;
  Rng rng(7);
  for (int i = 0; i < trials; ++i) {
    Cluster cluster(2, 8);
    cluster.machine(0).gpu(0).dcgm_responsive = false;
    Diagnoser diag(cfg, rng.Fork());
    if (!diag.RunEud(cluster).empty()) {
      ++found;
    }
  }
  EXPECT_NEAR(static_cast<double>(found) / trials, 0.7, 0.05);
}

TEST(DiagnoserTest, CommDefectRarelyTripsIntraTest) {
  DiagnoserConfig cfg = PerfectRecall();
  cfg.intra_recall_comm_defect = 0.1;
  int found = 0;
  const int trials = 2000;
  Rng rng(11);
  for (int i = 0; i < trials; ++i) {
    Cluster cluster(2, 8);
    cluster.machine(1).gpu(2).comm_defect = true;
    Diagnoser diag(cfg, rng.Fork());
    if (!diag.RunIntraMachineAllToAll(cluster).empty()) {
      ++found;
    }
  }
  EXPECT_NEAR(static_cast<double>(found) / trials, 0.1, 0.04);
}

TEST(StressBaselineTest, Table6Durations) {
  using S = IncidentSymptom;
  const RootCause infra = RootCause::kInfrastructure;
  EXPECT_EQ(SelectiveStressResolutionTime(S::kCudaError, infra), Seconds(518));
  EXPECT_EQ(SelectiveStressResolutionTime(S::kInfinibandError, infra), Seconds(288));
  EXPECT_EQ(SelectiveStressResolutionTime(S::kOsKernelPanic, infra), Seconds(168));
  EXPECT_EQ(SelectiveStressResolutionTime(S::kGpuMemoryError, infra), Seconds(600));
  EXPECT_EQ(SelectiveStressResolutionTime(S::kNanValue, RootCause::kSdc), Seconds(7200));
  EXPECT_EQ(SelectiveStressResolutionTime(S::kGpuUnavailable, infra), Seconds(120));
}

TEST(StressBaselineTest, HumanMistakesAndStorageAreUnresolvable) {
  using S = IncidentSymptom;
  EXPECT_FALSE(SelectiveStressResolutionTime(S::kCudaError, RootCause::kUserCode).has_value());
  EXPECT_FALSE(SelectiveStressResolutionTime(S::kNanValue, RootCause::kUserCode).has_value());
  EXPECT_FALSE(
      SelectiveStressResolutionTime(S::kHdfsError, RootCause::kInfrastructure).has_value());
  EXPECT_FALSE(SelectiveStressResolutionTime(S::kCodeDataAdjustment, RootCause::kUserCode)
                   .has_value());
}

}  // namespace
}  // namespace byterobust

// Unit tests for the MegaScale-style RDMA hang detector and the Sec. 7
// unified event bus.

#include <gtest/gtest.h>

#include "src/analyzer/event_bus.h"
#include "src/monitor/rdma_monitor.h"

namespace byterobust {
namespace {

TEST(RdmaTrafficTest, RunningJobHasTrafficHungJobDoesNot) {
  for (SimTime t = 0; t < Minutes(5); t += Seconds(10)) {
    EXPECT_GT(SyntheticRdmaTraffic(JobRunState::kRunning, t, 7), 0.5);
    EXPECT_LT(SyntheticRdmaTraffic(JobRunState::kHung, t, 7), 0.05);
    EXPECT_LT(SyntheticRdmaTraffic(JobRunState::kCrashed, t, 7), 0.05);
  }
}

TEST(RdmaDetectorTest, FiresAfterConsecutiveLowSamples) {
  RdmaHangDetector detector;
  SimTime now = 0;
  // Healthy traffic: never fires.
  for (int i = 0; i < 20; ++i) {
    now += Seconds(10);
    EXPECT_FALSE(detector.OnSample(now, 0.9).has_value());
  }
  // Traffic collapses: fires on exactly the 6th low sample (60 s).
  std::optional<SimTime> fired;
  const SimTime collapse = now;
  for (int i = 0; i < 10 && !fired; ++i) {
    now += Seconds(10);
    fired = detector.OnSample(now, 0.01);
  }
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(*fired - collapse, Seconds(60));
  EXPECT_TRUE(detector.fired());
}

TEST(RdmaDetectorTest, OneAlertPerQuietPeriodAndRecovery) {
  RdmaHangDetector detector;
  SimTime now = 0;
  int alerts = 0;
  for (int i = 0; i < 30; ++i) {
    now += Seconds(10);
    if (detector.OnSample(now, 0.0)) {
      ++alerts;
    }
  }
  EXPECT_EQ(alerts, 1);
  // Traffic recovers, then collapses again: a second alert is allowed.
  detector.OnSample(now += Seconds(10), 0.9);
  for (int i = 0; i < 10; ++i) {
    if (detector.OnSample(now += Seconds(10), 0.0)) {
      ++alerts;
    }
  }
  EXPECT_EQ(alerts, 2);
}

TEST(RdmaDetectorTest, NoisyBlipsDoNotAccumulate) {
  RdmaHangDetector detector;
  SimTime now = 0;
  for (int i = 0; i < 50; ++i) {
    now += Seconds(10);
    // Alternating low/high never reaches 6 consecutive lows.
    EXPECT_FALSE(detector.OnSample(now, i % 2 == 0 ? 0.0 : 0.8).has_value());
  }
}

TEST(EventBusTest, PublishDispatchesToKindAndAllSubscribers) {
  EventBus bus;
  int host_events = 0;
  int all_events = 0;
  bus.Subscribe(UnifiedEventKind::kHostAnomaly, [&](const UnifiedEvent&) { ++host_events; });
  bus.SubscribeAll([&](const UnifiedEvent&) { ++all_events; });
  bus.Publish({UnifiedEventKind::kHostAnomaly, Seconds(1), 3, IncidentSymptom::kOsKernelPanic,
               "xid in dmesg"});
  bus.Publish({UnifiedEventKind::kMetric, Seconds(2), -1, IncidentSymptom::kMfuDecline, ""});
  EXPECT_EQ(host_events, 1);
  EXPECT_EQ(all_events, 2);
  EXPECT_EQ(bus.published(), 2u);
}

TEST(EventBusTest, HistoryIsBounded) {
  EventBus bus(/*history_capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    bus.Publish({UnifiedEventKind::kLog, Seconds(i), -1, IncidentSymptom::kCudaError, ""});
  }
  EXPECT_EQ(bus.history().size(), 4u);
  EXPECT_EQ(bus.history().front().time, Seconds(6));
}

TEST(EventBusTest, HistoryRingPreservesOrderAcrossWraparound) {
  EventBus bus(/*history_capacity=*/3);
  for (int i = 0; i < 8; ++i) {
    bus.Publish({UnifiedEventKind::kLog, Seconds(i), i, IncidentSymptom::kCudaError, ""});
  }
  // Retained: events 5, 6, 7 oldest-first, with the ring reusing slots.
  ASSERT_EQ(bus.history().size(), 3u);
  EXPECT_EQ(bus.history().front().time, Seconds(5));
  EXPECT_EQ(bus.history()[1].time, Seconds(6));
  EXPECT_EQ(bus.history().back().time, Seconds(7));
  EXPECT_EQ(bus.published(), 8u);
  // Correlate walks newest-first across the wrapped boundary.
  const auto hits = bus.Correlate(6, Seconds(7), Seconds(5));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].time, Seconds(6));
}

TEST(EventBusTest, CorrelateFiltersByMachineAndWindow) {
  EventBus bus;
  bus.Publish({UnifiedEventKind::kHostAnomaly, Minutes(1), 5, IncidentSymptom::kMfuDecline,
               "gpu 92C"});
  bus.Publish({UnifiedEventKind::kMetric, Minutes(2), 5, IncidentSymptom::kMfuDecline, ""});
  bus.Publish({UnifiedEventKind::kMetric, Minutes(2), 6, IncidentSymptom::kMfuDecline, ""});
  bus.Publish({UnifiedEventKind::kLog, Minutes(30), 5, IncidentSymptom::kCudaError, ""});

  const auto hits = bus.Correlate(5, Minutes(3), Minutes(5));
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].kind, UnifiedEventKind::kMetric);  // newest first
  EXPECT_EQ(hits[1].kind, UnifiedEventKind::kHostAnomaly);
}

TEST(EventBusTest, GrayFailureCorrelationRule) {
  // Sec. 8.1.1: overheating (host anomaly) + MFU degradation (metric) on the
  // same machine within the window verifies a thermal gray failure.
  EventBus bus;
  bus.Publish({UnifiedEventKind::kHostAnomaly, Minutes(10), 7, IncidentSymptom::kMfuDecline,
               "gpu over 85C"});
  bus.Publish({UnifiedEventKind::kMetric, Minutes(11), 7, IncidentSymptom::kMfuDecline,
               "mfu -25%"});
  EXPECT_TRUE(bus.HasCorrelatedPair(7, Minutes(12), Minutes(5), UnifiedEventKind::kHostAnomaly,
                                    UnifiedEventKind::kMetric));
  EXPECT_FALSE(bus.HasCorrelatedPair(8, Minutes(12), Minutes(5),
                                     UnifiedEventKind::kHostAnomaly,
                                     UnifiedEventKind::kMetric));
  // Outside the window the pair no longer correlates.
  EXPECT_FALSE(bus.HasCorrelatedPair(7, Hours(2), Minutes(5), UnifiedEventKind::kHostAnomaly,
                                     UnifiedEventKind::kMetric));
}

}  // namespace
}  // namespace byterobust

// Unit tests for the flight recorder and its cross-rank mismatch analysis.

#include <gtest/gtest.h>

#include "src/tracer/flight_recorder.h"

namespace byterobust {
namespace {

Topology Fig7Topology() {
  ParallelismConfig cfg;
  cfg.tp = 2;
  cfg.pp = 4;
  cfg.dp = 4;
  cfg.gpus_per_machine = 2;
  return Topology(cfg);
}

TEST(FlightRecorderTest, RingBufferEvictsOldest) {
  FlightRecorder rec(3);
  for (std::uint64_t s = 1; s <= 5; ++s) {
    rec.Record({s, CollectiveOp::kAllReduce, GroupKind::kData, 0, true});
  }
  EXPECT_EQ(rec.records().size(), 3u);
  EXPECT_EQ(rec.records().front().seq, 3u);
  EXPECT_EQ(rec.LatestSeq(GroupKind::kData, 0), 5u);
}

TEST(FlightRecorderTest, LatestSeqIsPerGroup) {
  FlightRecorder rec;
  rec.Record({7, CollectiveOp::kAllGather, GroupKind::kTensor, 2, true});
  rec.Record({9, CollectiveOp::kReduceScatter, GroupKind::kData, 1, true});
  EXPECT_EQ(rec.LatestSeq(GroupKind::kTensor, 2), 7u);
  EXPECT_EQ(rec.LatestSeq(GroupKind::kData, 1), 9u);
  EXPECT_EQ(rec.LatestSeq(GroupKind::kPipeline, 0), 0u);
}

TEST(FlightRecorderTest, ConsistentRanksProduceNoMismatch) {
  const Topology topo = Fig7Topology();
  std::vector<FlightRecorder> recorders(static_cast<std::size_t>(topo.world_size()));
  for (Rank r = 0; r < topo.world_size(); ++r) {
    recorders[static_cast<std::size_t>(r)].Record(
        {50, CollectiveOp::kReduceScatter, GroupKind::kData,
         topo.GroupIndexOf(r, GroupKind::kData), true});
  }
  EXPECT_TRUE(AnalyzeFlightRecords(recorders, topo).empty());
}

TEST(FlightRecorderTest, HangAnalysisFindsCulpritTpGroup) {
  const Topology topo = Fig7Topology();
  const Rank culprit = 30;  // machine 15, last stage of dp column 3
  const auto recorders = SynthesizeHangFlightRecords(topo, culprit);
  const auto mismatches = AnalyzeFlightRecords(recorders, topo);
  ASSERT_FALSE(mismatches.empty());

  // Every lagging machine across all mismatches belongs to the culprit's DP
  // column (machines 12-15) — the same fault domain aggregation isolates.
  bool culprit_machine_flagged = false;
  for (const CollectiveMismatch& m : mismatches) {
    for (MachineId machine : m.lagging_machines) {
      EXPECT_GE(machine, 12);
      EXPECT_LE(machine, 15);
      if (machine == 15) {
        culprit_machine_flagged = true;
      }
    }
  }
  EXPECT_TRUE(culprit_machine_flagged);
}

TEST(FlightRecorderTest, MismatchReportsExpectedSeqAndLaggards) {
  const Topology topo = Fig7Topology();
  std::vector<FlightRecorder> recorders(static_cast<std::size_t>(topo.world_size()));
  // DP group of rank 0: ranks {0, 8, 16, 24}; rank 16 lags two collectives.
  for (Rank r : topo.DataGroupOf(0)) {
    recorders[static_cast<std::size_t>(r)].Record(
        {r == 16 ? 98u : 100u, CollectiveOp::kAllReduce, GroupKind::kData,
         topo.GroupIndexOf(0, GroupKind::kData), r != 16});
  }
  const auto mismatches = AnalyzeFlightRecords(recorders, topo);
  ASSERT_EQ(mismatches.size(), 1u);
  EXPECT_EQ(mismatches[0].group_kind, GroupKind::kData);
  EXPECT_EQ(mismatches[0].expected_seq, 100u);
  EXPECT_EQ(mismatches[0].lagging_ranks, (std::vector<Rank>{16}));
  EXPECT_EQ(mismatches[0].lagging_machines, (std::vector<MachineId>{8}));
}

TEST(FlightRecorderTest, SynthesizedHealthyGroupsAreConsistent) {
  const Topology topo = Fig7Topology();
  const auto recorders = SynthesizeHangFlightRecords(topo, 30);
  // TP groups outside the culprit's DP column must be internally consistent.
  for (const ParallelGroup& g : topo.Groups(GroupKind::kTensor)) {
    bool has_culprit_column = false;
    for (Rank r : g.ranks) {
      const RankCoord c = topo.CoordOf(r);
      if (c.dp == 3 && c.pp == 3) {
        has_culprit_column = true;
      }
    }
    std::uint64_t first =
        recorders[static_cast<std::size_t>(g.ranks[0])].LatestSeq(GroupKind::kTensor, g.index);
    for (Rank r : g.ranks) {
      EXPECT_EQ(recorders[static_cast<std::size_t>(r)].LatestSeq(GroupKind::kTensor, g.index),
                first)
          << (has_culprit_column ? "culprit group" : "healthy group");
    }
  }
}

TEST(FlightRecorderTest, OpNames) {
  EXPECT_STREQ(CollectiveOpName(CollectiveOp::kAllGather), "all_gather");
  EXPECT_STREQ(CollectiveOpName(CollectiveOp::kSend), "send");
}

}  // namespace
}  // namespace byterobust

#!/usr/bin/env python3
"""Self-test for tools/determinism_lint.py against tests/lint_fixtures/.

Proves each lint rule fires on its known-bad fixture, that clean code and
allowlisted findings pass, and that the allowlist stays strict (mandatory
justifications, stale entries rejected). Written as unittest so it runs with
the stdlib alone (`python3 tests/lint_selftest.py`, ctest `lint_selftest`)
and is equally discoverable by pytest where available.
"""

import os
import subprocess
import sys
import tempfile
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINT = os.path.join(REPO_ROOT, "tools", "determinism_lint.py")
FIXTURES = "tests/lint_fixtures"
FIXTURE_ALLOW = os.path.join(REPO_ROOT, FIXTURES, "fixture_allow.txt")
EMPTY_ALLOW = os.devnull


def run_lint(paths, allowlist=EMPTY_ALLOW):
    """Returns (exit_code, stdout) of the lint over repo-relative paths."""
    proc = subprocess.run(
        [sys.executable, LINT, "--root", REPO_ROOT, "--allowlist", allowlist, *paths],
        capture_output=True,
        text=True,
        check=False,
    )
    return proc.returncode, proc.stdout + proc.stderr


class RuleFiresOnFixture(unittest.TestCase):
    """Each rule must catch its fixture (with no allowlist in play)."""

    def assert_rule(self, fixture, rule, min_hits=1):
        code, out = run_lint([f"{FIXTURES}/{fixture}"])
        self.assertEqual(code, 1, f"lint should fail on {fixture}:\n{out}")
        hits = [line for line in out.splitlines() if f"[{rule}]" in line]
        self.assertGreaterEqual(
            len(hits), min_hits,
            f"expected >= {min_hits} {rule} finding(s) in {fixture}:\n{out}")
        for hit in hits:
            self.assertIn(fixture, hit)

    def test_unordered_iteration_into_output(self):
        self.assert_rule("bad_unordered_output.cc", "BR-UNORDERED-OUTPUT", min_hits=2)

    def test_wall_clock(self):
        self.assert_rule("bad_wall_clock.cc", "BR-WALL-CLOCK", min_hits=2)

    def test_unseeded_rng(self):
        self.assert_rule("bad_unseeded_rng.cc", "BR-UNSEEDED-RNG", min_hits=2)

    def test_pointer_sort_key(self):
        self.assert_rule("bad_pointer_order.cc", "BR-POINTER-ORDER", min_hits=3)

    def test_float_accumulation_order(self):
        self.assert_rule("bad_float_order.cc", "BR-FLOAT-ORDER", min_hits=2)


class CleanAndSuppressed(unittest.TestCase):
    def test_clean_fixture_passes(self):
        code, out = run_lint([f"{FIXTURES}/clean.cc"])
        self.assertEqual(code, 0, f"clean fixture must not be flagged:\n{out}")

    def test_allowlisted_fixture_is_suppressed(self):
        # Without the allowlist the shim is a finding...
        code, out = run_lint([f"{FIXTURES}/suppressed_wall_clock.cc"])
        self.assertEqual(code, 1)
        self.assertIn("[BR-WALL-CLOCK]", out)
        # ...and with it, the file is clean.
        code, out = run_lint([f"{FIXTURES}/suppressed_wall_clock.cc"],
                             allowlist=FIXTURE_ALLOW)
        self.assertEqual(code, 0, f"allowlist entry must suppress the shim:\n{out}")


class AllowlistStrictness(unittest.TestCase):
    def run_with_entries(self, entries, paths):
        with tempfile.NamedTemporaryFile("w", suffix=".txt", delete=False) as f:
            f.write("\n".join(entries) + "\n")
            path = f.name
        try:
            return run_lint(paths, allowlist=path)
        finally:
            os.unlink(path)

    def test_justification_is_mandatory(self):
        code, out = self.run_with_entries(
            ["BR-WALL-CLOCK | tests/lint_fixtures/suppressed_wall_clock.cc | steady_clock | no"],
            [f"{FIXTURES}/suppressed_wall_clock.cc"],
        )
        self.assertEqual(code, 1)
        self.assertIn("justification", out)

    def test_stale_entry_fails(self):
        code, out = self.run_with_entries(
            ["BR-WALL-CLOCK | tests/lint_fixtures/clean.cc | * | Entry matching "
             "nothing at all must be reported as stale."],
            [f"{FIXTURES}/clean.cc"],
        )
        self.assertEqual(code, 1)
        self.assertIn("stale allowlist entry", out)


class WholeTreeGate(unittest.TestCase):
    def test_src_and_tools_are_clean_with_checked_in_allowlist(self):
        """The same invocation ctest `lint_determinism` gates on."""
        proc = subprocess.run([sys.executable, LINT, "--root", REPO_ROOT],
                              capture_output=True, text=True, check=False)
        self.assertEqual(
            proc.returncode, 0,
            f"src/ + tools/ must lint clean:\n{proc.stdout}{proc.stderr}")


if __name__ == "__main__":
    unittest.main(verbosity=2)

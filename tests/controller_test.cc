// End-to-end tests for the robust controller's Fig. 5 paths, driving a small
// ByteRobustSystem with hand-injected incidents.

#include <gtest/gtest.h>

#include "src/core/byterobust_system.h"
#include "src/faults/fault_injector.h"

namespace byterobust {
namespace {

SystemConfig SmallSystem(std::uint64_t seed = 7) {
  SystemConfig cfg;
  cfg.job.name = "ctl-test";
  cfg.job.parallelism.tp = 2;
  cfg.job.parallelism.pp = 4;
  cfg.job.parallelism.dp = 4;
  cfg.job.parallelism.gpus_per_machine = 2;
  cfg.job.base_step_time = Seconds(10);
  cfg.job.model_params_b = 0.7;
  cfg.seed = seed;
  cfg.spare_machines = 8;
  // Perfect diagnostics keep these tests deterministic.
  cfg.diagnoser.eud_recall_explicit = 1.0;
  cfg.diagnoser.inter_recall = 1.0;
  cfg.diagnoser.bitwise_recall_sdc = 1.0;
  cfg.controller.log_attribution_recall = 1.0;
  cfg.controller.replay_reproduce_prob = 1.0;
  cfg.standby.provision_time = Minutes(5);
  return cfg;
}

Incident MakeIncident(IncidentSymptom symptom, RootCause cause, std::vector<MachineId> machines,
                      int gpu, SimTime now) {
  Incident inc;
  inc.id = 1;
  inc.symptom = symptom;
  inc.root_cause = cause;
  inc.faulty_machines = std::move(machines);
  inc.gpu_index = gpu;
  inc.inject_time = now;
  return inc;
}

TEST(ControllerTest, HighConfidenceInspectionEvictsAndRestarts) {
  ByteRobustSystem sys(SmallSystem());
  sys.Start();
  sys.sim().RunUntil(Minutes(30));  // standby pool provisioned, job stepping

  const Incident inc = MakeIncident(IncidentSymptom::kGpuUnavailable,
                                    RootCause::kInfrastructure, {5}, 1, sys.sim().Now());
  FaultInjector::ApplyToCluster(inc, &sys.cluster());
  sys.controller().NotifyIncidentInjected(inc);
  sys.job().Crash();

  sys.sim().RunUntil(Minutes(60));
  // Machine 5 evicted, a standby installed, training resumed.
  EXPECT_TRUE(sys.cluster().IsBlacklisted(5));
  EXPECT_NE(sys.cluster().MachineAtSlot(5), 5);
  EXPECT_EQ(sys.job().state(), JobRunState::kRunning);
  EXPECT_GE(sys.job().run_count(), 2);

  // The episode closes as an AutoFT-ER resolution.
  ASSERT_GE(sys.controller().log().size(), 1u);
  const IncidentResolution& res = sys.controller().log().entries().front();
  EXPECT_EQ(res.mechanism, ResolutionMechanism::kAutoFtEvictRestart);
  EXPECT_TRUE(res.resolved);
  EXPECT_EQ(res.incident.symptom, IncidentSymptom::kGpuUnavailable);
  // Detection within one GPU inspection interval (10 s).
  EXPECT_LE(res.DetectionTime(), Seconds(11));
}

TEST(ControllerTest, TransientCrashIsReattempted) {
  ByteRobustSystem sys(SmallSystem());
  sys.Start();
  sys.sim().RunUntil(Minutes(30));

  // Transient fault: no machine flags, job crashes once.
  const Incident inc = MakeIncident(IncidentSymptom::kInfinibandError, RootCause::kTransient,
                                    {3}, 0, sys.sim().Now());
  sys.controller().NotifyIncidentInjected(inc);
  sys.job().Crash();

  sys.sim().RunUntil(Minutes(90));
  EXPECT_EQ(sys.job().state(), JobRunState::kRunning);
  EXPECT_FALSE(sys.cluster().IsBlacklisted(3)) << "no eviction for transients";
  ASSERT_GE(sys.controller().log().size(), 1u);
  EXPECT_EQ(sys.controller().log().entries().front().mechanism,
            ResolutionMechanism::kReattempt);
}

TEST(ControllerTest, UserCodeCrashRollsBack) {
  ByteRobustSystem sys(SmallSystem());
  sys.Start();
  sys.sim().RunUntil(Minutes(20));
  sys.job().ApplyCodeVersion({5, 1.3, true, Minutes(5), false, "buggy kernels"});
  EXPECT_EQ(sys.job().current_version().id, 5);

  const Incident inc = MakeIncident(IncidentSymptom::kCudaError, RootCause::kUserCode, {}, -1,
                                    sys.sim().Now());
  sys.controller().NotifyIncidentInjected(inc);
  sys.job().Crash();

  sys.sim().RunUntil(Minutes(60));
  EXPECT_EQ(sys.job().state(), JobRunState::kRunning);
  EXPECT_EQ(sys.job().current_version().id, 0) << "buggy version rolled back";
  ASSERT_GE(sys.controller().log().size(), 1u);
  EXPECT_EQ(sys.controller().log().entries().front().mechanism,
            ResolutionMechanism::kRollback);
}

TEST(ControllerTest, HangTriggersAggregationOverEviction) {
  SystemConfig cfg = SmallSystem();
  cfg.monitor.hang_grace = Minutes(2);  // speed the test up
  ByteRobustSystem sys(cfg);
  sys.Start();
  sys.sim().RunUntil(Minutes(30));

  // Infrastructure hang: comm defect on machine 13's GPU, culprit rank 26.
  const Incident inc = MakeIncident(IncidentSymptom::kJobHang, RootCause::kInfrastructure, {13},
                                    0, sys.sim().Now());
  FaultInjector::ApplyToCluster(inc, &sys.cluster());
  sys.controller().NotifyIncidentInjected(inc);
  sys.job().Hang(26);

  sys.sim().RunUntil(Minutes(90));
  EXPECT_EQ(sys.job().state(), JobRunState::kRunning);
  // Over-eviction: the whole PP group's machines (12-15) are gone, including
  // the true culprit.
  EXPECT_TRUE(sys.cluster().IsBlacklisted(13));
  EXPECT_GE(sys.controller().evictions_total(), 2) << "over-eviction evicts a group";
  ASSERT_GE(sys.controller().log().size(), 1u);
  EXPECT_EQ(sys.controller().log().entries().front().mechanism,
            ResolutionMechanism::kAnalyzerEvictRestart);
}

TEST(ControllerTest, NanFromSdcIsCaughtByBitwiseAlignment) {
  ByteRobustSystem sys(SmallSystem());
  sys.Start();
  sys.sim().RunUntil(Minutes(30));

  const Incident inc =
      MakeIncident(IncidentSymptom::kNanValue, RootCause::kSdc, {7}, 1, sys.sim().Now());
  FaultInjector::ApplyToCluster(inc, &sys.cluster());
  sys.controller().NotifyIncidentInjected(inc);
  sys.job().SetNanLoss(true);

  sys.sim().RunUntil(Minutes(120));
  EXPECT_EQ(sys.job().state(), JobRunState::kRunning);
  EXPECT_TRUE(sys.cluster().IsBlacklisted(7)) << "SDC machine isolated";
  ASSERT_GE(sys.controller().log().size(), 1u);
  EXPECT_EQ(sys.controller().log().entries().front().mechanism,
            ResolutionMechanism::kAutoFtEvictRestart);
}

TEST(ControllerTest, LazyHotUpdateMergesIntoFailureRecovery) {
  ByteRobustSystem sys(SmallSystem());
  sys.Start();
  sys.sim().RunUntil(Minutes(20));
  sys.hot_updates().Submit({9, 1.4, false, 0, /*urgent=*/false, "comm overlap"});
  EXPECT_EQ(sys.job().current_version().id, 0) << "lazy update not yet applied";

  // A failure arrives; its recovery should carry the update along.
  const Incident inc = MakeIncident(IncidentSymptom::kGpuUnavailable,
                                    RootCause::kInfrastructure, {2}, 0, sys.sim().Now());
  FaultInjector::ApplyToCluster(inc, &sys.cluster());
  sys.controller().NotifyIncidentInjected(inc);
  sys.job().Crash();

  sys.sim().RunUntil(Minutes(60));
  EXPECT_EQ(sys.job().current_version().id, 9);
  EXPECT_EQ(sys.hot_updates().merged_count(), 1);
  // The merged update is logged as an AutoFT-HU resolution (Table 4 row).
  EXPECT_EQ(sys.controller().log().CountBy(ResolutionMechanism::kAutoFtHotUpdate), 1);
}

TEST(ControllerTest, UrgentHotUpdateRestartsInPlace) {
  ByteRobustSystem sys(SmallSystem());
  sys.Start();
  sys.sim().RunUntil(Minutes(20));
  const int runs_before = sys.job().run_count();
  sys.hot_updates().Submit({4, 1.2, false, 0, /*urgent=*/true, "hotfix"});
  sys.sim().RunUntil(Minutes(30));
  EXPECT_EQ(sys.job().current_version().id, 4);
  EXPECT_EQ(sys.job().run_count(), runs_before + 1);
  EXPECT_EQ(sys.controller().log().CountBy(ResolutionMechanism::kAutoFtHotUpdate), 1);
  // In-place: no machine was evicted.
  EXPECT_EQ(sys.controller().evictions_total(), 0);
}

TEST(ControllerTest, SilentMfuDeclineResolvedByFailSlowVoting) {
  ByteRobustSystem sys(SmallSystem());
  sys.Start();
  sys.sim().RunUntil(Minutes(30));

  // Silent downclock (odd gpu_index: no thermal signal) on machine 9.
  Incident inc = MakeIncident(IncidentSymptom::kMfuDecline, RootCause::kInfrastructure, {9}, 1,
                              sys.sim().Now());
  FaultInjector::ApplyToCluster(inc, &sys.cluster());
  EXPECT_LT(sys.cluster().machine(9).gpu(1).clock_ratio, 1.0);
  EXPECT_LT(sys.cluster().machine(9).gpu(1).temperature_c, 85.0);
  sys.controller().NotifyIncidentInjected(inc);

  sys.sim().RunUntil(Hours(2));
  EXPECT_TRUE(sys.cluster().IsBlacklisted(9)) << "degrader over-evicted";
  EXPECT_EQ(sys.job().state(), JobRunState::kRunning);
  EXPECT_GE(sys.controller().log().CountBy(ResolutionMechanism::kAnalyzerEvictRestart), 1);
  // After eviction the job runs at full speed again.
  EXPECT_DOUBLE_EQ(PerfModel::SlowestClockRatio(sys.cluster()), 1.0);
}

TEST(ControllerTest, ThermalMfuDeclineEvictedViaInspection) {
  ByteRobustSystem sys(SmallSystem());
  sys.Start();
  sys.sim().RunUntil(Minutes(30));

  // Even gpu_index: overheating visible to the 10 s GPU inspection.
  Incident inc = MakeIncident(IncidentSymptom::kMfuDecline, RootCause::kInfrastructure, {4}, 0,
                              sys.sim().Now());
  FaultInjector::ApplyToCluster(inc, &sys.cluster());
  EXPECT_GT(sys.cluster().machine(4).gpu(0).temperature_c, 85.0);
  sys.controller().NotifyIncidentInjected(inc);

  sys.sim().RunUntil(Hours(1));
  EXPECT_TRUE(sys.cluster().IsBlacklisted(4));
  EXPECT_GE(sys.controller().log().CountBy(ResolutionMechanism::kAutoFtEvictRestart), 1);
}

TEST(ControllerTest, NetworkFlapHealsWithoutEviction) {
  ByteRobustSystem sys(SmallSystem());
  sys.Start();
  sys.sim().RunUntil(Minutes(30));

  // NIC goes down, the job crashes; the flap heals before the debounce check.
  Incident inc = MakeIncident(IncidentSymptom::kInfinibandError, RootCause::kInfrastructure, {6},
                              0, sys.sim().Now());
  FaultInjector::ApplyToCluster(inc, &sys.cluster());
  sys.controller().NotifyIncidentInjected(inc);
  sys.job().Crash();
  sys.sim().Schedule(Minutes(1), [&] {
    FaultInjector::ClearFromCluster(inc, &sys.cluster());
  });

  sys.sim().RunUntil(Minutes(90));
  EXPECT_FALSE(sys.cluster().IsBlacklisted(6));
  EXPECT_EQ(sys.job().state(), JobRunState::kRunning);
  EXPECT_GE(sys.controller().log().CountBy(ResolutionMechanism::kReattempt), 1);
}

TEST(ControllerTest, PersistentNicFailureIsEvictedAfterDebounce) {
  ByteRobustSystem sys(SmallSystem());
  sys.Start();
  sys.sim().RunUntil(Minutes(30));

  Incident inc = MakeIncident(IncidentSymptom::kInfinibandError, RootCause::kInfrastructure, {6},
                              0, sys.sim().Now());
  FaultInjector::ApplyToCluster(inc, &sys.cluster());
  sys.controller().NotifyIncidentInjected(inc);
  sys.job().Crash();

  sys.sim().RunUntil(Minutes(90));
  EXPECT_TRUE(sys.cluster().IsBlacklisted(6));
  EXPECT_EQ(sys.job().state(), JobRunState::kRunning);
}

TEST(ControllerTest, RestartResumesFromDurableCheckpoint) {
  ByteRobustSystem sys(SmallSystem());
  sys.Start();
  sys.sim().RunUntil(Minutes(30));
  const std::int64_t progress = sys.job().max_step_reached();
  EXPECT_GT(progress, 100);

  const Incident inc = MakeIncident(IncidentSymptom::kGpuUnavailable,
                                    RootCause::kInfrastructure, {1}, 0, sys.sim().Now());
  FaultInjector::ApplyToCluster(inc, &sys.cluster());
  sys.controller().NotifyIncidentInjected(inc);
  sys.job().Crash();

  sys.sim().RunUntil(Minutes(60));
  // With every-step checkpointing, at most a couple of steps recompute.
  EXPECT_GE(sys.job().max_step_reached(), progress);
  EXPECT_LE(sys.ettr().recompute_time(), Seconds(30));
  // ETTR stays high: unproductive time is only detection + failover.
  EXPECT_GT(sys.ettr().CumulativeEttr(sys.sim().Now()), 0.9);
}

}  // namespace
}  // namespace byterobust

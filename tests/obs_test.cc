// Observability suite: the sharded metrics registry (counter exactness
// under contention, histogram bucket boundaries and quantile accuracy,
// node-stable registry pointers) and the trace-span writer (structural
// shape of the emitted Chrome trace_event JSON, torn-tail line discipline).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace byterobust {
namespace {

// Every test that records must enable metrics; the flag is process-global
// and off by default (the CLI only flips it for --trace / serve).
class ObsMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::SetMetricsEnabled(true); }
  void TearDown() override { obs::SetMetricsEnabled(false); }
};

// --------------------------------------------------------------------------
// Counter
// --------------------------------------------------------------------------
TEST_F(ObsMetricsTest, CounterIsExactUnderContention) {
  obs::Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter.Add();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST_F(ObsMetricsTest, CounterDisabledPathIsANoOp) {
  obs::Counter counter;
  obs::SetMetricsEnabled(false);
  counter.Add(42);
  EXPECT_EQ(counter.Value(), 0u);
  obs::SetMetricsEnabled(true);
  counter.Add(42);
  EXPECT_EQ(counter.Value(), 42u);
}

// --------------------------------------------------------------------------
// Gauge
// --------------------------------------------------------------------------
TEST_F(ObsMetricsTest, GaugeSetAndAdd) {
  obs::Gauge gauge;
  gauge.Set(7);
  EXPECT_EQ(gauge.Value(), 7);
  gauge.Add(-10);
  EXPECT_EQ(gauge.Value(), -3);
  obs::SetMetricsEnabled(false);
  gauge.Set(99);
  EXPECT_EQ(gauge.Value(), -3);
}

// --------------------------------------------------------------------------
// LatencyHistogram
// --------------------------------------------------------------------------
TEST_F(ObsMetricsTest, HistogramBucketBoundsDouble) {
  EXPECT_DOUBLE_EQ(obs::LatencyHistogram::BucketUpperBoundS(0),
                   obs::LatencyHistogram::kFirstBucketS);
  for (std::size_t i = 1; i + 1 < obs::LatencyHistogram::kBuckets; ++i) {
    EXPECT_DOUBLE_EQ(obs::LatencyHistogram::BucketUpperBoundS(i),
                     2.0 * obs::LatencyHistogram::BucketUpperBoundS(i - 1));
  }
  EXPECT_TRUE(std::isinf(obs::LatencyHistogram::BucketUpperBoundS(
      obs::LatencyHistogram::kBuckets - 1)));
}

TEST_F(ObsMetricsTest, HistogramBoundaryObservationsLandInclusive) {
  // An observation exactly on a bucket's upper bound belongs to that bucket.
  obs::LatencyHistogram hist;
  hist.Observe(obs::LatencyHistogram::kFirstBucketS);        // bucket 0
  hist.Observe(obs::LatencyHistogram::kFirstBucketS * 1.01);  // bucket 1
  hist.Observe(obs::LatencyHistogram::BucketUpperBoundS(3));  // bucket 3
  hist.Observe(1e9);                                          // overflow
  const auto snap = hist.Snap();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[3], 1u);
  EXPECT_EQ(snap.buckets[obs::LatencyHistogram::kBuckets - 1], 1u);
}

TEST_F(ObsMetricsTest, HistogramQuantilesTrackSortedReference) {
  // Quantile error is bounded by the width of the holding bucket; check
  // p50/p90/p99 against the exact sorted reference with that tolerance.
  obs::LatencyHistogram hist;
  std::vector<double> values;
  std::uint64_t state = 0x243f6a8885a308d3ULL;  // deterministic xorshift
  for (int i = 0; i < 5000; ++i) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    // Latencies spread over ~[0.1ms, 6.5s), log-uniform-ish.
    const double v = obs::LatencyHistogram::kFirstBucketS *
                     std::pow(2.0, static_cast<double>(state % 1600) / 100.0);
    values.push_back(v);
    hist.Observe(v);
  }
  std::sort(values.begin(), values.end());
  const auto snap = hist.Snap();
  ASSERT_EQ(snap.count, values.size());
  for (const double q : {0.5, 0.9, 0.99}) {
    const double exact =
        values[static_cast<std::size_t>(q * (values.size() - 1))];
    const double est = snap.QuantileS(q);
    // The bucket holding `exact` spans [upper/2, upper]; the estimate must
    // land within one bucket of the true value.
    EXPECT_GE(est, exact * 0.5) << "q=" << q;
    EXPECT_LE(est, exact * 2.0) << "q=" << q;
  }
  // max is recorded with microsecond granularity.
  EXPECT_NEAR(snap.max_s, values.back(), 1e-6);
}

TEST_F(ObsMetricsTest, HistogramQuantileNeverExceedsMax) {
  // One sample: interpolation inside its bucket must not read above the
  // recorded max (p50 > max would be nonsense in the status report).
  obs::LatencyHistogram hist;
  hist.Observe(0.0032);
  const auto snap = hist.Snap();
  EXPECT_EQ(snap.count, 1u);
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_LE(snap.QuantileS(q), snap.max_s) << "q=" << q;
    EXPECT_GT(snap.QuantileS(q), 0.0) << "q=" << q;
  }
}

TEST_F(ObsMetricsTest, HistogramEmptySnapshotIsZero) {
  const obs::LatencyHistogram hist;
  const auto snap = hist.Snap();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.QuantileS(0.5), 0.0);
  EXPECT_DOUBLE_EQ(snap.max_s, 0.0);
}

// --------------------------------------------------------------------------
// MetricsRegistry
// --------------------------------------------------------------------------
TEST_F(ObsMetricsTest, RegistryPointersAreStableAndShared) {
  obs::MetricsRegistry registry;
  obs::Counter* a = registry.GetCounter("x");
  // Later registrations must not move earlier instruments (node-stable map).
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("filler." + std::to_string(i));
  }
  EXPECT_EQ(registry.GetCounter("x"), a);
  a->Add(3);
  const auto snap = registry.Snap();
  EXPECT_EQ(snap.counters.at("x"), 3u);
  EXPECT_EQ(snap.counters.size(), 101u);
}

TEST_F(ObsMetricsTest, RegistryConcurrentGetAndRecord) {
  obs::MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 1000; ++i) {
        registry.GetCounter("shared")->Add();
        registry.GetHistogram("lat")->Observe(0.001);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  const auto snap = registry.Snap();
  EXPECT_EQ(snap.counters.at("shared"), 8000u);
  EXPECT_EQ(snap.histograms.at("lat").count, 8000u);
}

// --------------------------------------------------------------------------
// Trace writer
// --------------------------------------------------------------------------
std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::size_t CountOccurrences(const std::string& text,
                             const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(ObsTraceTest, WriterEmitsBalancedWellFormedArray) {
  const std::string path = ::testing::TempDir() + "/obs_trace_test.json";
  std::string error;
  ASSERT_TRUE(obs::StartTrace(path, &error)) << error;
  ASSERT_TRUE(obs::TraceEnabled());
  {
    const obs::ScopedSpan outer("outer", "test");
    const obs::ScopedSpan inner("inner", "test", 7);
    obs::TraceInstant("tick", "test");
  }
  obs::TraceComplete("window", "test", 0.0, 0.001);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      const obs::ScopedSpan span("worker", "test");
      obs::TraceInstantArg("mark", "test", 1);
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  obs::StopTrace();
  EXPECT_FALSE(obs::TraceEnabled());

  const std::string text = ReadAll(path);
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.front(), '[');
  // Closes the array and ends with a newline (one event per line).
  const std::string tail = text.substr(text.find_last_not_of(" \n"));
  EXPECT_EQ(tail.substr(0, 1), "]");
  EXPECT_EQ(CountOccurrences(text, "\"ph\":\"B\""),
            CountOccurrences(text, "\"ph\":\"E\""));
  EXPECT_EQ(CountOccurrences(text, "\"ph\":\"B\""), 6u);  // outer+inner+4 workers
  EXPECT_EQ(CountOccurrences(text, "\"ph\":\"i\""), 5u);  // tick + 4 marks
  EXPECT_EQ(CountOccurrences(text, "\"ph\":\"X\""), 1u);
  EXPECT_NE(text.find("\"name\":\"trace_end\""), std::string::npos);
}

TEST(ObsTraceTest, EveryEventLineEndsWithCommaUntilFooter) {
  // The torn-tail contract: each event line is self-contained and ends
  // with "," so a hard kill truncates at a line boundary and
  // tools/trace_validate.py can repair the file by dropping one line.
  const std::string path = ::testing::TempDir() + "/obs_trace_torn.json";
  std::string error;
  ASSERT_TRUE(obs::StartTrace(path, &error)) << error;
  {
    const obs::ScopedSpan span("span", "test");
    obs::TraceInstant("tick", "test");
  }
  obs::StopTrace();

  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) {
      lines.push_back(line);
    }
  }
  ASSERT_GE(lines.size(), 4u);
  EXPECT_EQ(lines.front(), "[");
  EXPECT_EQ(lines.back(), "]");
  // All events but the footer end with a trailing comma; the footer line
  // (the trace_end meta event) must not, so the array parses when intact.
  for (std::size_t i = 1; i + 2 < lines.size(); ++i) {
    EXPECT_EQ(lines[i].back(), ',') << "line " << i << ": " << lines[i];
  }
  const std::string& footer = lines[lines.size() - 2];
  EXPECT_NE(footer.back(), ',') << footer;
  EXPECT_NE(footer.find("trace_end"), std::string::npos);
}

TEST(ObsTraceTest, StopTraceIsIdempotentAndDisabledSpansAreFree) {
  obs::StopTrace();  // no trace running: must be a safe no-op
  ASSERT_FALSE(obs::TraceEnabled());
  {
    // Spans constructed while disabled never emit, even if a trace were
    // started mid-scope (active_ is latched at construction).
    const obs::ScopedSpan span("ghost", "test");
    obs::TraceInstant("ghost", "test");
  }
  obs::StopTrace();
}

}  // namespace
}  // namespace byterobust

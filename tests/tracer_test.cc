// Unit tests for the tracer: process trees and stack synthesis (Fig. 7).

#include <gtest/gtest.h>

#include <map>

#include "src/tracer/process_tree.h"
#include "src/tracer/stack_synth.h"

namespace byterobust {
namespace {

Topology Fig7Topology() {
  ParallelismConfig cfg;
  cfg.tp = 2;
  cfg.pp = 4;
  cfg.dp = 4;
  cfg.gpus_per_machine = 2;
  return Topology(cfg);
}

TEST(StackTraceTest, KeyIsCanonicalAndDistinct) {
  EXPECT_EQ(HealthyGradSyncStack().Key(), HealthyGradSyncStack().Key());
  EXPECT_NE(HealthyGradSyncStack().Key(), TensorCollectiveStack().Key());
  EXPECT_NE(PipelineIsendStack().Key(), PipelineIrecvStack().Key());
  EXPECT_NE(HealthyGradSyncStack().ToString(), "");
}

TEST(ProcessTreeTest, PodTreeShape) {
  const ProcessTree tree = ProcessTree::BuildPodTree(5, 8);
  EXPECT_EQ(tree.machine(), 5);
  // root + launcher + robust agent + 8 x (trainer + dataloader + ckpt writer)
  EXPECT_EQ(tree.nodes().size(), 3u + 24u);
  EXPECT_EQ(tree.TrainingProcesses().size(), 24u);
  const ProcessNode* trainer = tree.TrainerFor(3);
  ASSERT_NE(trainer, nullptr);
  EXPECT_EQ(trainer->kind, ProcessKind::kTrainer);
  // Each trainer forks exactly a dataloader and a ckpt writer.
  const auto children = tree.ChildrenOf(trainer->pid);
  ASSERT_EQ(children.size(), 2u);
  EXPECT_EQ(children[0]->kind, ProcessKind::kDataLoader);
  EXPECT_EQ(children[1]->kind, ProcessKind::kCheckpointWriter);
  EXPECT_EQ(tree.TrainerFor(99), nullptr);
}

TEST(StackSynthTest, Fig7BackwardHangPattern) {
  // Culprit: rank 30 (tp=0, pp=3, dp=3) on machine 15, stuck in the TP
  // all-gather. Expect exactly the Fig. 7 groups:
  //   machines 0-11 (24 ranks): healthy reduce-scatter stacks
  //   machine 15 (ranks 30, 31): all_gather_into_tensor
  //   machine 14 (pp=2, dp=3): isend
  //   machines 12-13 (pp=0..1, dp=3): irecv
  const Topology topo = Fig7Topology();
  const auto stacks = SynthesizeHangStacks(topo, 30, HangSite::kTensorCollective);
  ASSERT_EQ(stacks.size(), 32u);

  std::map<std::string, int> counts;
  for (const auto& ps : stacks) {
    ++counts[ps.stack.Key()];
  }
  EXPECT_EQ(counts[HealthyGradSyncStack().Key()], 24);
  EXPECT_EQ(counts[TensorCollectiveStack().Key()], 2);
  EXPECT_EQ(counts[PipelineIsendStack().Key()], 2);
  EXPECT_EQ(counts[PipelineIrecvStack().Key()], 4);

  for (const auto& ps : stacks) {
    if (ps.stack == TensorCollectiveStack()) {
      EXPECT_EQ(ps.machine, 15);
    } else if (ps.stack == PipelineIsendStack()) {
      EXPECT_EQ(ps.machine, 14);
    } else if (ps.stack == PipelineIrecvStack()) {
      EXPECT_TRUE(ps.machine == 12 || ps.machine == 13);
    } else {
      EXPECT_LE(ps.machine, 11);
    }
  }
}

TEST(StackSynthTest, MidPipelineCulpritOnlyStallsEarlierStages) {
  const Topology topo = Fig7Topology();
  // Culprit rank 10 = (tp=0, pp=1, dp=1): stage 0 of that column starves;
  // stages 2-3 already finished their backward sends and park in grad sync.
  const auto stacks = SynthesizeHangStacks(topo, 10, HangSite::kTensorCollective);
  std::map<std::string, int> counts;
  for (const auto& ps : stacks) {
    ++counts[ps.stack.Key()];
  }
  EXPECT_EQ(counts[TensorCollectiveStack().Key()], 2);   // culprit TP pair
  EXPECT_EQ(counts[PipelineIsendStack().Key()], 2);      // pp=0 machine (adjacent)
  EXPECT_EQ(counts[PipelineIrecvStack().Key()], 0);      // nothing below pp=0
  EXPECT_EQ(counts[HealthyGradSyncStack().Key()], 28);
}

TEST(StackSynthTest, PipelineP2pSiteMarksCulpritInIrecv) {
  const Topology topo = Fig7Topology();
  const auto stacks = SynthesizeHangStacks(topo, 30, HangSite::kPipelineP2p);
  bool culprit_found = false;
  for (const auto& ps : stacks) {
    if (ps.rank == 30) {
      culprit_found = true;
      EXPECT_EQ(ps.stack, PipelineIrecvStack());
    }
  }
  EXPECT_TRUE(culprit_found);
}

TEST(StackSynthTest, FullPodStacksIncludeSubprocesses) {
  const Topology topo = Fig7Topology();
  const auto stacks = SynthesizeFullPodStacks(topo, 6, HangSite::kDataLoader);
  EXPECT_EQ(stacks.size(), 3u * 32u);
  int stuck_loaders = 0;
  int starving_trainers = 0;
  for (const auto& ps : stacks) {
    if (ps.kind == ProcessKind::kDataLoader && ps.stack == DataLoaderStuckStack()) {
      ++stuck_loaders;
      EXPECT_EQ(ps.rank, 6);
    }
    if (ps.kind == ProcessKind::kTrainer && ps.stack == DataLoaderWaitStack()) {
      ++starving_trainers;
      EXPECT_EQ(ps.rank, 6);
    }
  }
  EXPECT_EQ(stuck_loaders, 1);
  EXPECT_EQ(starving_trainers, 1);
}

TEST(StackSynthTest, CheckpointWriterSiteBlocksOptimizerStep) {
  const Topology topo = Fig7Topology();
  const auto stacks = SynthesizeFullPodStacks(topo, 9, HangSite::kCheckpointWriter);
  int stuck_writers = 0;
  for (const auto& ps : stacks) {
    if (ps.kind == ProcessKind::kCheckpointWriter && ps.stack == CkptWriterStuckStack()) {
      ++stuck_writers;
      EXPECT_EQ(ps.rank, 9);
    }
  }
  EXPECT_EQ(stuck_writers, 1);
}

TEST(StackSynthTest, FailSlowLaggardShowsComputeStack) {
  const Topology topo = Fig7Topology();
  // Pick a seed whose round adds no noise; the laggard machine's two ranks
  // are the only compute stacks.
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    const auto stacks = SynthesizeFailSlowStacks(topo, 7, seed);
    int compute = 0;
    bool machine7_compute = false;
    for (const auto& ps : stacks) {
      if (ps.stack == ComputeKernelStack()) {
        ++compute;
        if (ps.machine == 7) {
          machine7_compute = true;
        }
      }
    }
    EXPECT_TRUE(machine7_compute) << "laggard machine must look busy";
    EXPECT_GE(compute, 2);
    EXPECT_LE(compute, 4);  // at most one extra noisy machine
  }
}

TEST(StackSynthTest, FailSlowNoiseIsDeterministicPerSeed) {
  const Topology topo = Fig7Topology();
  const auto a = SynthesizeFailSlowStacks(topo, 3, 42);
  const auto b = SynthesizeFailSlowStacks(topo, 3, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].stack, b[i].stack);
  }
}

}  // namespace
}  // namespace byterobust

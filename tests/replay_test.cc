// Unit + property tests for dual-phase replay (Algorithm 1, Fig. 6).

#include <gtest/gtest.h>

#include <set>

#include "src/replay/dual_phase_replay.h"

namespace byterobust {
namespace {

TEST(DualPhaseReplayTest, Fig6GroupingAndSolve) {
  // Fig. 6: z = 24, m = 4, n = 6; SDC machine #13.
  DualPhaseReplay replay(24, 4);
  EXPECT_EQ(replay.n(), 6);
  // Machine 13: horizontal group H3 = {12, 13, 14, 15}.
  EXPECT_EQ(replay.HorizontalGroupOf(13), 3);
  EXPECT_EQ(replay.HorizontalGroup(3), (std::vector<MachineId>{12, 13, 14, 15}));
  // Vertical group: 13 mod 6 = 1 -> V1 = {1, 7, 13, 19}.
  EXPECT_EQ(replay.VerticalGroupOf(13), 1);
  EXPECT_EQ(replay.VerticalGroup(1), (std::vector<MachineId>{1, 7, 13, 19}));
  // The constrained system has the unique solution {13}.
  EXPECT_EQ(replay.Solve(3, 1), (std::vector<MachineId>{13}));
  EXPECT_EQ(replay.ExpectedSuspectCardinality(), 1);
}

TEST(DualPhaseReplayTest, LocateFindsEveryMachineDeterministically) {
  DualPhaseReplay replay(24, 4);
  for (MachineId faulty = 0; faulty < 24; ++faulty) {
    Rng rng(1);
    auto oracle = DualPhaseReplay::FaultOracle({faulty}, 1.0, &rng);
    const ReplayOutcome outcome = replay.Locate(oracle, Minutes(10));
    ASSERT_TRUE(outcome.found) << "machine " << faulty;
    EXPECT_EQ(outcome.suspects, (std::vector<MachineId>{faulty}));
    // Two phases => two replay rounds of sim time.
    EXPECT_EQ(outcome.elapsed, Minutes(20));
  }
}

TEST(DualPhaseReplayTest, NonReproducingFaultReturnsNotFound) {
  DualPhaseReplay replay(24, 4);
  Rng rng(1);
  auto oracle = DualPhaseReplay::FaultOracle({13}, 0.0, &rng);
  const ReplayOutcome outcome = replay.Locate(oracle, Minutes(10));
  EXPECT_FALSE(outcome.found);
  EXPECT_EQ(outcome.faulty_horizontal, -1);
  EXPECT_EQ(outcome.elapsed, Minutes(10));  // gave up after phase 1
}

TEST(DualPhaseReplayTest, ValidatesConstruction) {
  EXPECT_THROW(DualPhaseReplay(0, 4), std::invalid_argument);
  EXPECT_THROW(DualPhaseReplay(24, 0), std::invalid_argument);
  EXPECT_THROW(DualPhaseReplay(24, 5), std::invalid_argument);  // 24 % 5 != 0
  EXPECT_THROW(DualPhaseReplay(24, 4).HorizontalGroup(6), std::out_of_range);
  EXPECT_THROW(DualPhaseReplay(24, 4).VerticalGroup(-1), std::out_of_range);
}

struct ReplayCase {
  int z;
  int m;
};

class ReplayProperty : public ::testing::TestWithParam<ReplayCase> {};

TEST_P(ReplayProperty, GroupsPartitionMachines) {
  const auto& c = GetParam();
  DualPhaseReplay replay(c.z, c.m);
  std::set<MachineId> horizontal;
  for (int a = 0; a < replay.n(); ++a) {
    for (MachineId x : replay.HorizontalGroup(a)) {
      EXPECT_TRUE(horizontal.insert(x).second);
    }
  }
  EXPECT_EQ(static_cast<int>(horizontal.size()), c.z);
  std::set<MachineId> vertical;
  for (int b = 0; b < replay.n(); ++b) {
    for (MachineId x : replay.VerticalGroup(b)) {
      EXPECT_TRUE(vertical.insert(x).second);
    }
  }
  EXPECT_EQ(static_cast<int>(vertical.size()), c.z);
}

TEST_P(ReplayProperty, SolveMatchesBruteForce) {
  const auto& c = GetParam();
  DualPhaseReplay replay(c.z, c.m);
  for (int a = 0; a < replay.n(); ++a) {
    for (int b = 0; b < replay.n(); ++b) {
      std::vector<MachineId> expected;
      for (int x = 0; x < c.z; ++x) {
        if (x / c.m == a && x % replay.n() == b) {
          expected.push_back(x);
        }
      }
      EXPECT_EQ(replay.Solve(a, b), expected);
    }
  }
}

TEST_P(ReplayProperty, EverySingleFaultIsLocatedWithinCardinality) {
  const auto& c = GetParam();
  DualPhaseReplay replay(c.z, c.m);
  for (MachineId faulty = 0; faulty < c.z; ++faulty) {
    Rng rng(static_cast<std::uint64_t>(faulty) + 1);
    auto oracle = DualPhaseReplay::FaultOracle({faulty}, 1.0, &rng);
    const ReplayOutcome outcome = replay.Locate(oracle, Minutes(10));
    ASSERT_TRUE(outcome.found);
    EXPECT_LE(static_cast<int>(outcome.suspects.size()),
              replay.ExpectedSuspectCardinality());
    // The true faulty machine is always inside the suspect set.
    EXPECT_NE(std::find(outcome.suspects.begin(), outcome.suspects.end(), faulty),
              outcome.suspects.end());
  }
}

TEST_P(ReplayProperty, UniqueSolutionWhenMLeqN) {
  const auto& c = GetParam();
  DualPhaseReplay replay(c.z, c.m);
  if (c.m > replay.n()) {
    GTEST_SKIP();
  }
  EXPECT_EQ(replay.ExpectedSuspectCardinality(), 1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ReplayProperty,
                         ::testing::Values(ReplayCase{24, 4}, ReplayCase{16, 4}, ReplayCase{64, 8},
                                           ReplayCase{36, 6}, ReplayCase{128, 8},
                                           ReplayCase{100, 10}, ReplayCase{12, 2}));

TEST(DualPhaseReplayTest, StochasticReproductionStillLocatesUsually) {
  // SDC reproduces with probability 0.75 per replay; over many trials the
  // two-phase procedure should still land on the right machine most times.
  DualPhaseReplay replay(24, 4);
  Rng rng(99);
  int located = 0;
  const int trials = 400;
  for (int i = 0; i < trials; ++i) {
    auto oracle = DualPhaseReplay::FaultOracle({13}, 0.75, &rng);
    const ReplayOutcome outcome = replay.Locate(oracle, Minutes(10));
    if (outcome.found && outcome.suspects == std::vector<MachineId>{13}) {
      ++located;
    }
  }
  EXPECT_GT(static_cast<double>(located) / trials, 0.5);
}

}  // namespace
}  // namespace byterobust

// System-level tests: warm-standby shortfall (reschedule path), group
// over-eviction with checkpoint survivability, campaign CSV export, and
// production-preset smoke tests.

#include <gtest/gtest.h>

#include "src/core/production_presets.h"
#include "src/faults/fault_injector.h"
#include "src/metrics/report.h"

namespace byterobust {
namespace {

SystemConfig SmallSystem(std::uint64_t seed) {
  SystemConfig cfg;
  cfg.job.parallelism = {2, 4, 4, 2};
  cfg.job.base_step_time = Seconds(10);
  cfg.job.model_params_b = 0.7;
  cfg.seed = seed;
  cfg.spare_machines = 12;
  cfg.standby.provision_time = Minutes(5);
  cfg.monitor.hang_grace = Minutes(3);
  cfg.diagnoser.eud_recall_explicit = 1.0;
  return cfg;
}

TEST(SystemTest, GroupOverEvictionExceedsStandbyPoolAndStillRecovers) {
  // The standby pool holds P99(16, 0.0012) = 1-2 machines; a hang-driven
  // PP-group over-eviction removes 4 at once, forcing the reschedule
  // shortfall path (Fig. 12's catastrophic branch).
  ByteRobustSystem sys(SmallSystem(13));
  sys.Start();
  sys.sim().RunUntil(Minutes(30));
  const int pool_before = sys.standby_pool().ready_count();
  EXPECT_LE(pool_before, 2);

  Incident inc;
  inc.id = 1;
  inc.symptom = IncidentSymptom::kJobHang;
  inc.root_cause = RootCause::kInfrastructure;
  inc.faulty_machines = {13};
  inc.gpu_index = 0;
  inc.inject_time = sys.sim().Now();
  FaultInjector::ApplyToCluster(inc, &sys.cluster());
  sys.controller().NotifyIncidentInjected(inc);
  sys.job().Hang(26);

  sys.sim().RunUntil(sys.sim().Now() + Hours(2));
  EXPECT_EQ(sys.job().state(), JobRunState::kRunning);
  EXPECT_GE(sys.controller().evictions_total(), 4);
  // Every evicted slot got a working replacement.
  for (int slot = 0; slot < sys.cluster().num_training_slots(); ++slot) {
    EXPECT_FALSE(sys.cluster().IsBlacklisted(sys.cluster().MachineAtSlot(slot)));
  }
  // The pool replenished itself afterwards.
  EXPECT_GE(sys.standby_pool().ready_count() + sys.standby_pool().provisioning_count(), 1);
}

TEST(SystemTest, CheckpointsSurviveTheGroupEvictionThatActuallyHappens) {
  ByteRobustSystem sys(SmallSystem(17));
  sys.Start();
  sys.sim().RunUntil(Minutes(30));
  // The analyzer over-evicts PP groups; the backup plan must guarantee
  // restorability for exactly those machine sets.
  const Topology& topo = sys.job().topology();
  for (const ParallelGroup& g : topo.Groups(GroupKind::kPipeline)) {
    EXPECT_TRUE(sys.ckpt().CanRestoreAfterEviction(topo.MachinesOfGroup(g)));
  }
}

TEST(SystemTest, CampaignExportsWellFormedCsv) {
  ScenarioConfig cfg;
  cfg.system = SmallSystem(19);
  cfg.system.monitor = CampaignMonitorConfig();
  cfg.duration = Days(1);
  cfg.injector.reference_mtbf = Hours(3.0);
  cfg.injector.reference_machines = 16;
  cfg.planned_updates = 3;
  Scenario scenario(cfg);
  scenario.Run();
  ByteRobustSystem& sys = scenario.system();

  const std::string mfu_csv = MfuSeriesCsv(sys.mfu_series(), /*stride=*/50);
  const std::string ettr_csv = EttrCurveCsv(sys.ettr(), sys.sim().Now(), 20);
  const std::string log_csv = ResolutionLogCsv(sys.controller().log());
  EXPECT_GT(mfu_csv.size(), 100u);
  EXPECT_NE(ettr_csv.find("cumulative_ettr"), std::string::npos);
  // Every resolution row has 10 comma-separated fields.
  std::istringstream lines(log_csv);
  std::string line;
  std::getline(lines, line);  // header
  while (std::getline(lines, line)) {
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), 9) << line;
  }
}

TEST(SystemTest, ProductionPresetsSmoke) {
  // One simulated day of each production preset must run clean and stay
  // productive.
  for (int preset = 0; preset < 3; ++preset) {
    ScenarioConfig cfg = preset == 0   ? DenseCampaignConfig(1.0, 23)
                         : preset == 1 ? MoeCampaignConfig(1.0, 29)
                                       : Fig2CampaignConfig(31);
    cfg.duration = Days(1);
    Scenario scenario(cfg);
    scenario.Run();
    ByteRobustSystem& sys = scenario.system();
    EXPECT_GT(sys.job().max_step_reached(), 100) << "preset " << preset;
    EXPECT_GT(sys.ettr().CumulativeEttr(sys.sim().Now()), 0.6) << "preset " << preset;
  }
}

TEST(SystemTest, StandbyPoolPreProvisionedAtStart) {
  ByteRobustSystem sys(SmallSystem(37));
  sys.Start();
  sys.sim().RunUntil(Minutes(10));
  EXPECT_GE(sys.standby_pool().ready_count(), 1);
  // Pool machines are in low-power sleep, not serving.
  for (MachineId id : sys.cluster().ServingMachines()) {
    EXPECT_NE(sys.cluster().machine(id).state(), MachineState::kStandbySleep);
  }
}

}  // namespace
}  // namespace byterobust

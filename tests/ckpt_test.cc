// Unit + property tests for checkpointing: size model, Table 8 cost model,
// cross-parallel-group backup strategy (Fig. 9) and the runtime manager.

#include <gtest/gtest.h>

#include <set>

#include "src/ckpt/backup_strategy.h"
#include "src/ckpt/ckpt_manager.h"
#include "src/ckpt/cost_model.h"
#include "src/ckpt/size_model.h"
#include "src/training/job_config.h"

namespace byterobust {
namespace {

TEST(SizeModelTest, ShardingArithmetic) {
  const JobConfig cfg = Table5Job70B(128);  // TP=8 PP=8 DP=32, 2048 GPUs
  // Model: 70e9 * 2 B / 64 shards ~ 2.19 GB per rank.
  EXPECT_NEAR(CheckpointSizeModel::ModelBytesPerRank(cfg) / 1e9, 2.19, 0.01);
  // Optimizer (ZeRO-1): 70e9 * 12 B / 2048 ~ 0.41 GB per rank.
  EXPECT_NEAR(CheckpointSizeModel::OptimizerBytesPerRank(cfg) / 1e9, 0.41, 0.01);
  EXPECT_NEAR(CheckpointSizeModel::TotalBytesPerRank(cfg) / 1e9, 2.60, 0.02);
  // Whole job: 14 B/param -> ~980 GB.
  EXPECT_NEAR(CheckpointSizeModel::TotalJobBytes(cfg) / 1e9, 980.0, 1.0);
}

TEST(CostModelTest, Table8OrderingHolds) {
  CheckpointCostModel model;
  for (auto scale : {128, 256}) {
    const JobConfig cfg = Table5Job70B(scale);
    const SimDuration step = Seconds(4.3);
    const CkptCost megatron = model.Evaluate(CkptApproach::kMegatronSave, cfg, step);
    const CkptCost memory = model.Evaluate(CkptApproach::kMemorySave, cfg, step);
    const CkptCost ours = model.Evaluate(CkptApproach::kByteRobustSave, cfg, step);
    EXPECT_GT(megatron.blocking_per_step, memory.blocking_per_step);
    EXPECT_GT(memory.blocking_per_step, ours.blocking_per_step);
    EXPECT_LT(megatron.relative_mfu, memory.relative_mfu);
    EXPECT_LT(memory.relative_mfu, ours.relative_mfu);
    // Headline claims: ByteRobust save keeps MFU >= 99% and blocks < 0.1 s.
    EXPECT_GE(ours.relative_mfu, 0.99);
    EXPECT_LE(ToSeconds(ours.blocking_per_step), 0.1);
  }
}

TEST(CostModelTest, MegatronBlockingMatchesPaperMagnitude) {
  CheckpointCostModel model;
  // Paper Table 8: 6.77 s blocking for the 70B job at 128 machines.
  const CkptCost c = model.Evaluate(CkptApproach::kMegatronSave, Table5Job70B(128), Seconds(4.3));
  EXPECT_NEAR(ToSeconds(c.blocking_per_step), 6.5, 1.0);
  // ~13 s for the 256B job (paper: 13.02 s).
  const CkptCost c2 =
      model.Evaluate(CkptApproach::kMegatronSave, Table5Job256B(512), Seconds(9.8));
  EXPECT_NEAR(ToSeconds(c2.blocking_per_step), 11.0, 2.5);
}

TEST(CostModelTest, HiddenWorkFitsWithinTheStep) {
  CheckpointCostModel model;
  const JobConfig cfg = Table5Job256B(1024);
  const SimDuration step = Seconds(9.8);
  const CkptCost ours = model.Evaluate(CkptApproach::kByteRobustSave, cfg, step);
  // The overlap story only holds if the async D2H and backup sends fit in a
  // step; otherwise saves would pile up.
  EXPECT_LT(ours.hidden_d2h, step);
  EXPECT_LT(ours.hidden_backup_send, step);
}

TEST(CostModelTest, ApproachNames) {
  EXPECT_STREQ(CkptApproachName(CkptApproach::kMegatronSave), "Megatron save");
  EXPECT_STREQ(CkptApproachName(CkptApproach::kByteRobustSave), "ByteRobust save");
}

// ---- Backup strategy -------------------------------------------------------

Topology Fig9Topology() {
  ParallelismConfig cfg;
  cfg.tp = 2;
  cfg.pp = 4;
  cfg.dp = 2;
  cfg.gpus_per_machine = 2;
  return Topology(cfg);
}

TEST(BackupPlanTest, Fig9Assignments) {
  const Topology topo = Fig9Topology();
  BackupPlan plan(topo);
  EXPECT_TRUE(plan.cross_group());
  EXPECT_EQ(plan.TargetOf(8), 2);
  EXPECT_EQ(plan.TargetOf(9), 3);
  EXPECT_TRUE(plan.SatisfiesCrossGroupInvariant(topo));
}

TEST(BackupPlanTest, SurvivesEveryGroupEviction) {
  const Topology topo = Fig9Topology();
  BackupPlan plan(topo);
  for (GroupKind kind : {GroupKind::kTensor, GroupKind::kPipeline, GroupKind::kData}) {
    for (const ParallelGroup& g : topo.Groups(kind)) {
      EXPECT_TRUE(plan.SurvivesGroupEviction(topo, g))
          << "shards lost when evicting " << GroupKindName(kind) << " group " << g.index;
    }
  }
}

TEST(BackupPlanTest, DetectsLossWhenEvictingPartnerPairs) {
  const Topology topo = Fig9Topology();
  BackupPlan plan(topo);
  // Evicting a rank's machine AND its backup target's machine loses a shard.
  const Rank owner = 8;
  const MachineId m1 = topo.MachineOfRank(owner);
  const MachineId m2 = topo.MachineOfRank(plan.TargetOf(owner));
  EXPECT_FALSE(plan.SurvivesEviction(topo, {m1, m2}));
}

TEST(BackupPlanTest, DegenerateConfigFallsBackToNeighbor) {
  ParallelismConfig cfg;
  cfg.tp = 1;
  cfg.pp = 1;
  cfg.dp = 8;  // pure ZeRO-style data parallelism
  cfg.gpus_per_machine = 2;
  const Topology topo(cfg);
  BackupPlan plan(topo);
  EXPECT_FALSE(plan.cross_group());
  EXPECT_FALSE(plan.SatisfiesCrossGroupInvariant(topo));
  // Neighbor backup: rank 0 (machine 0) backs up on machine 1, same local slot.
  EXPECT_EQ(plan.TargetOf(0), 2);
  // Single-machine eviction still survives.
  EXPECT_TRUE(plan.SurvivesEviction(topo, {0}));
}

struct PlanCase {
  int tp, pp, dp, gpm;
};

class BackupPlanProperty : public ::testing::TestWithParam<PlanCase> {};

TEST_P(BackupPlanProperty, CrossGroupInvariantAndPpEvictionSafety) {
  const auto& c = GetParam();
  ParallelismConfig cfg;
  cfg.tp = c.tp;
  cfg.pp = c.pp;
  cfg.dp = c.dp;
  cfg.gpus_per_machine = c.gpm;
  const Topology topo(cfg);
  BackupPlan plan(topo);
  if (c.pp >= 2 && c.dp >= 2) {
    EXPECT_TRUE(plan.SatisfiesCrossGroupInvariant(topo));
    // The motivating case: over-evicting any whole PP group (Sec. 5) must
    // never lose a shard.
    for (const ParallelGroup& g : topo.Groups(GroupKind::kPipeline)) {
      EXPECT_TRUE(plan.SurvivesGroupEviction(topo, g));
    }
  }
  // Single-machine evictions are always safe.
  for (MachineId m = 0; m < topo.num_machines(); ++m) {
    EXPECT_TRUE(plan.SurvivesEviction(topo, {m}));
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, BackupPlanProperty,
                         ::testing::Values(PlanCase{2, 4, 2, 2}, PlanCase{2, 4, 4, 2},
                                           PlanCase{8, 8, 4, 16}, PlanCase{4, 2, 2, 4},
                                           PlanCase{1, 4, 4, 2}, PlanCase{2, 2, 8, 8},
                                           PlanCase{1, 1, 8, 2}, PlanCase{8, 16, 4, 16}));

// The pre-bitmask algorithm, kept as a reference: build the owner's forbidden
// machine sets with std::set and walk the same (tier, j, k) candidate order.
// The optimized constructor must pick byte-for-byte identical targets.
Rank ReferenceCrossGroupTarget(const Topology& topo, Rank r) {
  const ParallelismConfig& cfg = topo.config();
  const RankCoord c = topo.CoordOf(r);
  std::set<MachineId> pp_machines;
  for (Rank peer : topo.PipelineGroupOf(r)) {
    pp_machines.insert(topo.MachineOfRank(peer));
  }
  std::set<MachineId> all_machines = pp_machines;
  for (Rank peer : topo.DataGroupOf(r)) {
    all_machines.insert(topo.MachineOfRank(peer));
  }
  for (Rank peer : topo.TensorGroupOf(r)) {
    all_machines.insert(topo.MachineOfRank(peer));
  }
  for (const std::set<MachineId>* forbidden : {&all_machines, &pp_machines}) {
    for (int j = 1; j < cfg.pp; ++j) {
      for (int k = 1; k < cfg.dp; ++k) {
        RankCoord pc = c;
        pc.pp = (c.pp + j) % cfg.pp;
        pc.dp = (c.dp + k) % cfg.dp;
        const Rank candidate = topo.RankOf(pc);
        if (forbidden->count(topo.MachineOfRank(candidate)) == 0) {
          return candidate;
        }
      }
    }
  }
  return -1;  // caller falls back to the neighbor rule
}

TEST_P(BackupPlanProperty, MatchesSetBasedReferenceImplementation) {
  const auto& c = GetParam();
  ParallelismConfig cfg;
  cfg.tp = c.tp;
  cfg.pp = c.pp;
  cfg.dp = c.dp;
  cfg.gpus_per_machine = c.gpm;
  const Topology topo(cfg);
  if (cfg.pp < 2 || cfg.dp < 2) {
    GTEST_SKIP() << "degenerate config: both implementations use the neighbor rule";
  }
  BackupPlan plan(topo);
  for (Rank r = 0; r < topo.world_size(); ++r) {
    const Rank want = ReferenceCrossGroupTarget(topo, r);
    if (want >= 0) {
      EXPECT_EQ(plan.TargetOf(r), want) << "rank " << r;
    }
  }
}

// ---- Runtime manager -------------------------------------------------------

JobConfig SmallJob() {
  JobConfig cfg;
  cfg.parallelism.tp = 2;
  cfg.parallelism.pp = 2;
  cfg.parallelism.dp = 2;
  cfg.parallelism.gpus_per_machine = 2;
  cfg.base_step_time = Seconds(10);
  cfg.model_params_b = 0.7;  // tiny model: 8 ranks hold realistic shard sizes
  return cfg;
}

class CkptManagerTest : public ::testing::Test {
 protected:
  CkptManagerTest()
      : cluster_(4, 2, 1),
        job_(SmallJob(), &sim_, &cluster_, 1),
        mgr_(CkptManagerConfig{}, &sim_, &job_) {}

  Simulator sim_;
  Cluster cluster_;
  TrainJob job_;
  CheckpointManager mgr_;
};

TEST_F(CkptManagerTest, NothingDurableBeforeFirstSave) {
  EXPECT_EQ(mgr_.durable_step(), -1);
  EXPECT_EQ(mgr_.RestorableResumeStep(), 0);
}

TEST_F(CkptManagerTest, EveryStepSaveTracksProgress) {
  job_.Start();
  sim_.RunUntil(Seconds(45));  // 4 steps; saves have sub-second latency
  EXPECT_GE(mgr_.saves_completed(), 3);
  EXPECT_GE(mgr_.durable_step(), 2);
  EXPECT_LE(mgr_.RestorableResumeStep(), job_.resume_step());
  // The unsaved interval is at most the in-flight step (every-step ckpt).
  EXPECT_GE(mgr_.RestorableResumeStep(), job_.resume_step() - 2);
}

TEST_F(CkptManagerTest, SaveLatencyIsSmallVsStep) {
  EXPECT_LT(mgr_.SaveLatency(), Seconds(10) / 4);
}

TEST_F(CkptManagerTest, LocalRestoreBeatsRemote) {
  const SimDuration local = mgr_.LoadTime(/*from_remote=*/false);
  const SimDuration remote = mgr_.LoadTime(/*from_remote=*/true);
  EXPECT_LT(local, remote);
  EXPECT_GT(static_cast<double>(remote) / static_cast<double>(local), 10.0);
}

TEST_F(CkptManagerTest, EvictionSurvivability) {
  EXPECT_TRUE(mgr_.CanRestoreAfterEviction({0}));
  // Machines {0, 1} form a PP group's machines (dp=0 column): the
  // over-eviction-aware plan survives losing the whole group.
  EXPECT_TRUE(mgr_.CanRestoreAfterEviction({0, 1}));
  // Arbitrary machine pairs that pair every primary with its backup are not
  // covered by the guarantee; {1, 2} contains rank 2's primary (machine 1)
  // and its backup target rank 4 (machine 2).
  EXPECT_FALSE(mgr_.CanRestoreAfterEviction({0, 1, 2, 3}));
}

TEST_F(CkptManagerTest, SavesScheduleNoSimulatorEvents) {
  job_.Start();
  sim_.RunUntil(Seconds(45));  // 4 steps; each starts a save
  // Save durability is folded lazily at query time: no completion events sit
  // in the queue capping the batched step loop (only the next step pends).
  EXPECT_LE(sim_.pending_events(), 2u);
  EXPECT_GE(mgr_.saves_started(), 4);
  EXPECT_GE(mgr_.saves_completed(), 3);
  EXPECT_LE(mgr_.in_flight(), 2);
}

TEST_F(CkptManagerTest, SaveEveryNSteps) {
  CkptManagerConfig cfg;
  cfg.save_every_steps = 2;
  CheckpointManager sparse(cfg, &sim_, &job_);
  job_.Start();
  sim_.RunUntil(Seconds(45));  // steps 0..3 complete
  EXPECT_EQ(sparse.saves_started(), 2);  // steps 0 and 2 only
}

// Frozen campaign template: one immutable BackupPlan per parallelism config,
// identical in content to a freshly built plan.
TEST(BackupPlanTest, SharedBackupPlanCachesPerConfig) {
  ParallelismConfig cfg;
  cfg.tp = 2;
  cfg.pp = 4;
  cfg.dp = 2;
  cfg.gpus_per_machine = 2;
  const auto topo = SharedTopology(cfg);
  const auto a = SharedBackupPlan(*topo);
  const auto b = SharedBackupPlan(*topo);
  EXPECT_EQ(a.get(), b.get());

  const BackupPlan fresh(*topo);
  ASSERT_EQ(a->assignments().size(), fresh.assignments().size());
  for (std::size_t i = 0; i < fresh.assignments().size(); ++i) {
    EXPECT_EQ(a->assignments()[i].target, fresh.assignments()[i].target);
  }
  EXPECT_EQ(a->cross_group(), fresh.cross_group());

  ParallelismConfig other = cfg;
  other.dp = 4;
  const auto c = SharedBackupPlan(*SharedTopology(other));
  EXPECT_NE(a.get(), c.get());
}

}  // namespace
}  // namespace byterobust

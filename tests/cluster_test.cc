// Unit tests for the cluster / machine model.

#include <gtest/gtest.h>

#include "src/cluster/cluster.h"

namespace byterobust {
namespace {

TEST(MachineTest, StartsHealthy) {
  Machine m(3, 8);
  EXPECT_EQ(m.id(), 3);
  EXPECT_EQ(m.num_gpus(), 8);
  EXPECT_EQ(m.state(), MachineState::kActive);
  EXPECT_TRUE(m.InService());
  EXPECT_FALSE(m.HasSdc());
  EXPECT_TRUE(m.host().nic_up);
}

TEST(MachineTest, ResetHealthClearsFlags) {
  Machine m(0, 4);
  m.gpu(2).sdc = true;
  m.gpu(1).available = false;
  m.host().nic_up = false;
  EXPECT_TRUE(m.HasSdc());
  m.ResetHealth();
  EXPECT_FALSE(m.HasSdc());
  EXPECT_TRUE(m.gpu(1).available);
  EXPECT_TRUE(m.host().nic_up);
}

TEST(MachineTest, DegradedIsInService) {
  Machine m(0, 4);
  m.set_state(MachineState::kDegraded);
  EXPECT_TRUE(m.InService());
  m.set_state(MachineState::kFaulty);
  EXPECT_FALSE(m.InService());
}

TEST(MachineTest, GpuIndexOutOfRangeThrows) {
  Machine m(0, 4);
  EXPECT_THROW(m.gpu(4), std::out_of_range);
}

TEST(ClusterTest, InitialLayout) {
  Cluster cluster(8, 16, 2);
  EXPECT_EQ(cluster.num_training_slots(), 8);
  EXPECT_EQ(cluster.total_machines(), 10u);
  EXPECT_EQ(cluster.ServingMachines().size(), 8u);
  for (int s = 0; s < 8; ++s) {
    EXPECT_EQ(cluster.MachineAtSlot(s), s);
  }
  // Spares start outside the job as unprovisioned idle machines.
  EXPECT_EQ(cluster.machine(8).state(), MachineState::kIdle);
  EXPECT_EQ(cluster.IdleMachines().size(), 2u);
}

TEST(ClusterTest, RejectsBadDimensions) {
  EXPECT_THROW(Cluster(0, 8), std::invalid_argument);
  EXPECT_THROW(Cluster(4, 0), std::invalid_argument);
  EXPECT_THROW(Cluster(4, 8, -1), std::invalid_argument);
}

TEST(ClusterTest, ReplaceSlotEvictsAndInstalls) {
  Cluster cluster(4, 8, 1);
  cluster.machine(4).set_state(MachineState::kStandbySleep);
  cluster.ReplaceSlot(2, 4);
  EXPECT_EQ(cluster.MachineAtSlot(2), 4);
  EXPECT_TRUE(cluster.IsBlacklisted(2));
  EXPECT_EQ(cluster.machine(2).state(), MachineState::kEvicted);
  EXPECT_EQ(cluster.machine(4).state(), MachineState::kActive);
  EXPECT_EQ(cluster.SlotOfMachine(4), 2);
  EXPECT_EQ(cluster.SlotOfMachine(2), -1);
}

TEST(ClusterTest, ReplaceSlotResetsIncomingHealth) {
  Cluster cluster(2, 8, 1);
  cluster.machine(2).gpu(0).sdc = true;
  cluster.ReplaceSlot(0, 2);
  EXPECT_FALSE(cluster.machine(2).HasSdc());
}

TEST(ClusterTest, ReplaceSlotRejectsBlacklistedOrServing) {
  Cluster cluster(4, 8, 1);
  cluster.Blacklist(4);
  EXPECT_THROW(cluster.ReplaceSlot(0, 4), std::invalid_argument);
  // Machine 1 is serving slot 1; cannot also take slot 0.
  EXPECT_THROW(cluster.ReplaceSlot(0, 1), std::invalid_argument);
  EXPECT_THROW(cluster.ReplaceSlot(-1, 4), std::out_of_range);
  EXPECT_THROW(cluster.ReplaceSlot(4, 4), std::out_of_range);
}

TEST(ClusterTest, AddMachineGrowsPool) {
  Cluster cluster(2, 8);
  const MachineId id = cluster.AddMachine();
  EXPECT_EQ(id, 2);
  EXPECT_EQ(cluster.total_machines(), 3u);
  EXPECT_EQ(cluster.machine(id).state(), MachineState::kIdle);
}

TEST(ClusterTest, UnhealthyServingCount) {
  Cluster cluster(4, 8);
  EXPECT_EQ(cluster.UnhealthyServingCount(), 0);
  cluster.machine(1).set_state(MachineState::kFaulty);
  cluster.machine(3).set_state(MachineState::kDegraded);
  EXPECT_EQ(cluster.UnhealthyServingCount(), 2);
}

TEST(ClusterTest, HealthEpochBumpsOnEveryMutationPath) {
  Cluster cluster(4, 2, 1);
  const std::uint64_t e0 = cluster.health_epoch();
  cluster.machine(0).gpu(1).clock_ratio = 0.5;  // mutable health access
  EXPECT_GT(cluster.health_epoch(), e0);
  const std::uint64_t e1 = cluster.health_epoch();
  cluster.machine(0).set_state(MachineState::kDegraded);
  EXPECT_GT(cluster.health_epoch(), e1);
  const std::uint64_t e2 = cluster.health_epoch();
  cluster.machine(0).ResetHealth();
  EXPECT_GT(cluster.health_epoch(), e2);
  const std::uint64_t e3 = cluster.health_epoch();
  cluster.machine(4).set_state(MachineState::kStandbySleep);
  cluster.ReplaceSlot(1, 4);
  EXPECT_GT(cluster.health_epoch(), e3);
  // Const reads do not bump.
  const std::uint64_t e4 = cluster.health_epoch();
  const Cluster& ccluster = cluster;
  (void)ccluster.machine(0).gpu(1).clock_ratio;
  (void)ccluster.machine(0).host().nic_up;
  EXPECT_EQ(cluster.health_epoch(), e4);
}

TEST(ClusterTest, SuspectIndexTracksDirtyServingMachines) {
  Cluster cluster(4, 2, 1);
  EXPECT_TRUE(cluster.SuspectServingMachines().empty());
  EXPECT_EQ(cluster.UnhealthyServingCount(), 0);

  cluster.machine(2).gpu(0).available = false;  // dirty, state still active
  cluster.machine(1).host().nic_up = false;
  cluster.machine(1).set_state(MachineState::kFaulty);
  ASSERT_EQ(cluster.SuspectServingMachines().size(), 2u);
  // Slot order, not mutation order.
  EXPECT_EQ(cluster.SuspectServingMachines()[0], 1);
  EXPECT_EQ(cluster.SuspectServingMachines()[1], 2);
  EXPECT_TRUE(cluster.SuspectServingSet().Contains(1));
  EXPECT_TRUE(cluster.SuspectServingSet().Contains(2));
  EXPECT_FALSE(cluster.SuspectServingSet().Contains(0));
  EXPECT_EQ(cluster.UnhealthyServingCount(), 1);

  // Healing clears the dirty bit and drops the machine from the index.
  cluster.machine(1).ResetHealth();
  cluster.machine(1).set_state(MachineState::kActive);
  ASSERT_EQ(cluster.SuspectServingMachines().size(), 1u);
  EXPECT_EQ(cluster.SuspectServingMachines()[0], 2);

  // Eviction replaces the dirty machine with a clean standby.
  cluster.machine(4).set_state(MachineState::kStandbySleep);
  cluster.ReplaceSlot(2, 4);
  EXPECT_TRUE(cluster.SuspectServingMachines().empty());
}

TEST(MachineTest, StandaloneMachineTracksDirtyWithoutCluster) {
  Machine m(0, 4);
  EXPECT_FALSE(m.health_dirty());
  m.gpu(2).sdc = true;
  EXPECT_TRUE(m.health_dirty());
  m.ResetHealth();
  EXPECT_FALSE(m.health_dirty());
}

TEST(ClusterTest, IdleExcludesBlacklisted) {
  Cluster cluster(2, 8, 2);
  EXPECT_EQ(cluster.IdleMachines().size(), 2u);
  cluster.Blacklist(2);
  EXPECT_EQ(cluster.IdleMachines().size(), 1u);
}

TEST(ClusterTest, StateNames) {
  EXPECT_STREQ(MachineStateName(MachineState::kActive), "active");
  EXPECT_STREQ(MachineStateName(MachineState::kEvicted), "evicted");
  EXPECT_STREQ(MachineStateName(MachineState::kStandbySleep), "standby-sleep");
}

}  // namespace
}  // namespace byterobust

// Quiescence-driven monitoring: the quiescent schedule must report exactly
// what the periodic reference path reports (same sources, same detect times,
// same machines) while dispatching far fewer simulator events, and the
// cluster's one-shot mutation waker must re-arm parked passes on demand.

#include <gtest/gtest.h>

#include <vector>

#include "src/monitor/monitor.h"

namespace byterobust {
namespace {

JobConfig SmallJob() {
  JobConfig cfg;
  cfg.parallelism.tp = 2;
  cfg.parallelism.pp = 2;
  cfg.parallelism.dp = 2;
  cfg.parallelism.gpus_per_machine = 2;
  cfg.base_step_time = Seconds(10);
  return cfg;
}

MonitorConfig MakeConfig(bool quiescent) {
  MonitorConfig cfg;
  cfg.hang_grace = Minutes(10);
  cfg.quiescent = quiescent;
  return cfg;
}

struct Fixture {
  explicit Fixture(bool quiescent)
      : cluster(4, 2, 1),
        job(SmallJob(), &sim, &cluster, 1),
        monitor(MakeConfig(quiescent), &sim, &cluster, &job) {
    monitor.SetAnomalyHandler([this](const AnomalyReport& r) { reports.push_back(r); });
  }

  Simulator sim;
  Cluster cluster;
  TrainJob job;
  Monitor monitor;
  std::vector<AnomalyReport> reports;
};

// One incident script covering an inspection find, a heal, a crash+restart
// and a hang, applied identically to both fixtures.
void RunIncidentScript(Fixture& f) {
  f.monitor.Start();
  f.job.Start();
  f.sim.Schedule(Seconds(5), [&f] { f.cluster.machine(2).gpu(1).available = false; });
  f.sim.Schedule(Seconds(95), [&f] {
    f.cluster.machine(2).ResetHealth();
    f.cluster.machine(2).set_state(MachineState::kActive);
  });
  f.sim.Schedule(Seconds(120), [&f] { f.job.Crash(); });
  f.sim.Schedule(Seconds(300), [&f] {
    f.job.Start();
    f.monitor.OnJobRestart();
  });
  f.sim.Schedule(Seconds(400), [&f] { f.job.Hang(0); });
  f.sim.RunUntil(Minutes(25));
}

TEST(QuiescentMonitorTest, ReportsMatchPeriodicReferenceExactly) {
  Fixture periodic(false);
  Fixture quiescent(true);
  RunIncidentScript(periodic);
  RunIncidentScript(quiescent);

  ASSERT_EQ(periodic.reports.size(), quiescent.reports.size());
  for (std::size_t i = 0; i < periodic.reports.size(); ++i) {
    EXPECT_EQ(periodic.reports[i].source, quiescent.reports[i].source) << "report " << i;
    EXPECT_EQ(periodic.reports[i].detect_time, quiescent.reports[i].detect_time)
        << "report " << i;
    EXPECT_EQ(periodic.reports[i].machines, quiescent.reports[i].machines) << "report " << i;
    EXPECT_EQ(periodic.reports[i].symptom_hint, quiescent.reports[i].symptom_hint)
        << "report " << i;
  }
  // The script yields an inspection hit, a crash-log report and a hang.
  ASSERT_GE(quiescent.reports.size(), 3u);
  EXPECT_EQ(quiescent.reports[0].source, AnomalySource::kInspection);
  EXPECT_EQ(quiescent.reports[1].source, AnomalySource::kCrashLog);
  EXPECT_EQ(quiescent.reports.back().source, AnomalySource::kHangSuspect);
}

TEST(QuiescentMonitorTest, HealthyRunDispatchesFarFewerEvents) {
  Fixture periodic(false);
  Fixture quiescent(true);
  for (Fixture* f : {&periodic, &quiescent}) {
    f->monitor.Start();
    f->job.Start();
    f->sim.RunUntil(Hours(2));
  }
  EXPECT_TRUE(periodic.reports.empty());
  EXPECT_TRUE(quiescent.reports.empty());
  // Periodic: host passes alone tick every 2 s. Quiescent: one watchdog wake
  // per hang-grace period plus the initial passes.
  EXPECT_GT(periodic.sim.events_dispatched(), quiescent.sim.events_dispatched() * 20);
}

TEST(QuiescentMonitorTest, MutationWakeRearmsParkedInspections) {
  Fixture f(true);
  f.monitor.Start();
  f.job.Start();
  // Long healthy stretch: every inspection pass is parked on the waker.
  f.sim.RunUntil(Hours(1));
  ASSERT_TRUE(f.reports.empty());
  f.sim.Schedule(Seconds(1), [&f] { f.cluster.machine(1).host().os_kernel_ok = false; });
  f.sim.RunUntil(Hours(1) + Seconds(10));
  ASSERT_EQ(f.reports.size(), 1u);
  EXPECT_EQ(f.reports[0].symptom_hint, IncidentSymptom::kOsKernelPanic);
  // Host passes tick every 2 s on the grid: detection within one interval.
  EXPECT_LE(f.reports[0].detect_time, Hours(1) + Seconds(1) + Seconds(2));
}

TEST(QuiescentMonitorTest, ClusterMutationWakeIsOneShot) {
  Cluster cluster(2, 2);
  int fired = 0;
  cluster.RequestMutationWake([&fired] { ++fired; });
  cluster.machine(0).gpu(0).available = false;  // fires and clears the waker
  cluster.machine(1).host().nic_up = false;     // no waker registered anymore
  EXPECT_EQ(fired, 1);
  cluster.RequestMutationWake([&fired] { ++fired; });
  cluster.machine(0).ResetHealth();
  EXPECT_EQ(fired, 2);
}

}  // namespace
}  // namespace byterobust

// Unit + property tests for the 1F1B pipeline schedule.

#include <gtest/gtest.h>

#include "src/training/pipeline_schedule.h"

namespace byterobust {
namespace {

PipelineScheduleConfig Config(int stages, int microbatches) {
  PipelineScheduleConfig cfg;
  cfg.stages = stages;
  cfg.microbatches = microbatches;
  cfg.forward_time = Milliseconds(100);
  cfg.backward_time = Milliseconds(200);
  return cfg;
}

TEST(PipelineScheduleTest, SingleStageIsSequential) {
  PipelineSchedule sched(Config(1, 4));
  EXPECT_TRUE(sched.DependenciesHold());
  // 4 forwards + 4 backwards back to back, no bubble.
  EXPECT_EQ(sched.TotalTime(), 4 * Milliseconds(100) + 4 * Milliseconds(200));
  EXPECT_DOUBLE_EQ(sched.BubbleFraction(), 0.0);
}

TEST(PipelineScheduleTest, OpCountsAreExact) {
  PipelineSchedule sched(Config(4, 8));
  int forwards = 0;
  int backwards = 0;
  for (const MicroOp& op : sched.ops()) {
    (op.kind == MicroOpKind::kForward ? forwards : backwards)++;
  }
  EXPECT_EQ(forwards, 4 * 8);
  EXPECT_EQ(backwards, 4 * 8);
}

TEST(PipelineScheduleTest, DependenciesHoldForFig7Config) {
  PipelineSchedule sched(Config(4, 8));
  EXPECT_TRUE(sched.DependenciesHold());
}

TEST(PipelineScheduleTest, BubbleShrinksWithMoreMicrobatches) {
  const double b4 = PipelineSchedule(Config(4, 4)).BubbleFraction();
  const double b16 = PipelineSchedule(Config(4, 16)).BubbleFraction();
  const double b64 = PipelineSchedule(Config(4, 64)).BubbleFraction();
  EXPECT_GT(b4, b16);
  EXPECT_GT(b16, b64);
  EXPECT_LT(b64, 0.08);
}

TEST(PipelineScheduleTest, BubbleMatchesClosedFormForEqualCosts) {
  // With forward_time == backward_time the 1F1B bubble is exactly
  // (p-1)/(m+p-1).
  PipelineScheduleConfig cfg;
  cfg.stages = 4;
  cfg.microbatches = 8;
  cfg.forward_time = Milliseconds(100);
  cfg.backward_time = Milliseconds(100);
  PipelineSchedule sched(cfg);
  EXPECT_NEAR(sched.BubbleFraction(), IdealBubbleFraction(4, 8), 1e-9);
}

TEST(PipelineScheduleTest, FirstStageHasMidStepIdleWindows) {
  PipelineSchedule sched(Config(4, 8));
  // Stage 0 finishes its warmup forwards and then waits for backwards to
  // arrive: it must have idle windows (the Fig. 8 interleaving opportunity).
  const auto windows = sched.IdleWindowsOf(0);
  EXPECT_FALSE(windows.empty());
  SimDuration idle = 0;
  for (const auto& [lo, hi] : windows) {
    EXPECT_LT(lo, hi);
    idle += hi - lo;
  }
  EXPECT_GT(idle, Milliseconds(100));
}

TEST(PipelineScheduleTest, LastStageStartsAfterPipelineFill) {
  PipelineSchedule sched(Config(4, 8));
  const auto ops = sched.OpsOf(3);
  ASSERT_FALSE(ops.empty());
  // Stage 3's first forward waits for the first micro-batch to traverse
  // stages 0..2: 3 x 100 ms.
  EXPECT_EQ(ops.front().start, 3 * Milliseconds(100));
  EXPECT_EQ(ops.front().kind, MicroOpKind::kForward);
  // Its first backward immediately follows its first forward (1F1B).
  EXPECT_EQ(ops[1].kind, MicroOpKind::kBackward);
  EXPECT_EQ(ops[1].microbatch, 0);
}

struct SchedCase {
  int stages;
  int microbatches;
};

class PipelineScheduleProperty : public ::testing::TestWithParam<SchedCase> {};

TEST_P(PipelineScheduleProperty, DependenciesAndAccountingHold) {
  const auto& c = GetParam();
  PipelineSchedule sched(Config(c.stages, c.microbatches));
  EXPECT_TRUE(sched.DependenciesHold());
  // Total time is at least the critical path: fill + m rounds on one stage.
  const SimDuration f = Milliseconds(100);
  const SimDuration b = Milliseconds(200);
  EXPECT_GE(sched.TotalTime(), (c.stages - 1) * f + c.microbatches * (f + b));
  // Busy time is conserved: every stage does m forwards and m backwards.
  SimDuration busy = 0;
  for (const MicroOp& op : sched.ops()) {
    busy += op.end - op.start;
  }
  EXPECT_EQ(busy, static_cast<SimDuration>(c.stages) * c.microbatches * (f + b));
}

INSTANTIATE_TEST_SUITE_P(Shapes, PipelineScheduleProperty,
                         ::testing::Values(SchedCase{1, 1}, SchedCase{2, 2}, SchedCase{4, 8},
                                           SchedCase{8, 8}, SchedCase{8, 32}, SchedCase{16, 4},
                                           SchedCase{3, 7}));

TEST(PipelineScheduleTest, RenderProducesOneRowPerStage) {
  PipelineSchedule sched(Config(4, 8));
  const std::string chart = sched.Render(64);
  EXPECT_EQ(std::count(chart.begin(), chart.end(), '\n'), 4);
  EXPECT_NE(chart.find('F'), std::string::npos);
  EXPECT_NE(chart.find('B'), std::string::npos);
}

TEST(PipelineScheduleTest, RejectsInvalidConfig) {
  EXPECT_THROW(PipelineSchedule(Config(0, 4)), std::invalid_argument);
  EXPECT_THROW(PipelineSchedule(Config(4, 0)), std::invalid_argument);
}

}  // namespace
}  // namespace byterobust

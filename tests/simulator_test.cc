// Unit tests for the discrete-event simulator.

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulator.h"

namespace byterobust {
namespace {

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(Seconds(3), [&] { order.push_back(3); });
  sim.Schedule(Seconds(1), [&] { order.push_back(1); });
  sim.Schedule(Seconds(2), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), Seconds(3));
}

TEST(SimulatorTest, SameTimestampIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(Seconds(5), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator sim;
  bool fired = false;
  sim.Schedule(-Seconds(10), [&] { fired = true; });
  sim.Run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.Now(), 0);
}

TEST(SimulatorTest, ScheduleAtPastThrows) {
  Simulator sim;
  sim.Schedule(Seconds(2), [] {});
  sim.Run();
  EXPECT_THROW(sim.ScheduleAt(Seconds(1), [] {}), std::invalid_argument);
}

TEST(SimulatorTest, CancelPreventsDispatch) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.Schedule(Seconds(1), [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelInvalidOrTwiceIsNoop) {
  Simulator sim;
  const EventId id = sim.Schedule(Seconds(1), [] {});
  EXPECT_FALSE(sim.Cancel(kInvalidEventId));
  EXPECT_FALSE(sim.Cancel(9999));
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));
}

TEST(SimulatorTest, RunUntilAdvancesClockToDeadline) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(Seconds(1), [&] { ++fired; });
  sim.Schedule(Seconds(10), [&] { ++fired; });
  sim.RunUntil(Seconds(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), Seconds(5));
  sim.RunUntil(Seconds(20));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), Seconds(20));
}

TEST(SimulatorTest, EventsScheduledDuringRunAreDispatched) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.Schedule(Seconds(1), [&] {
    times.push_back(sim.Now());
    sim.Schedule(Seconds(1), [&] { times.push_back(sim.Now()); });
  });
  sim.Run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], Seconds(1));
  EXPECT_EQ(times[1], Seconds(2));
}

TEST(SimulatorTest, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(Seconds(1), [&] {
    ++fired;
    sim.Stop();
  });
  sim.Schedule(Seconds(2), [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  // A later Run resumes with the remaining event.
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, StepDispatchesExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(Seconds(1), [&] { ++fired; });
  sim.Schedule(Seconds(2), [&] { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, DispatchCountAndPending) {
  Simulator sim;
  sim.Schedule(Seconds(1), [] {});
  sim.Schedule(Seconds(2), [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.Run();
  EXPECT_EQ(sim.events_dispatched(), 2u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, RunUntilSkipsCancelledHead) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.Schedule(Seconds(1), [&] { fired = true; });
  sim.Schedule(Seconds(2), [&] {});
  sim.Cancel(id);
  sim.RunUntil(Seconds(3));
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_dispatched(), 1u);
}

TEST(SimulatorTest, CancelOfDispatchedIdIsRejectedAndStoresNothing) {
  Simulator sim;
  const EventId id = sim.Schedule(Seconds(1), [] {});
  sim.Run();
  EXPECT_FALSE(sim.Cancel(id));
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.cancelled_pending(), 0u);
}

// Regression for the old unordered_set design, where cancelling an
// already-dispatched id inserted a permanent entry: repeated schedule /
// dispatch / cancel cycles must leave no pending state and must keep
// recycling the same slab slot instead of growing memory.
TEST(SimulatorTest, CancellingDispatchedIdsInALoopStaysBounded) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 10000; ++i) {
    const EventId id = sim.Schedule(Seconds(1), [&] { ++fired; });
    sim.Run();
    EXPECT_FALSE(sim.Cancel(id));
  }
  EXPECT_EQ(fired, 10000);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.cancelled_pending(), 0u);
  EXPECT_EQ(sim.slab_slots(), 1u) << "dispatch must recycle slab slots";
}

TEST(SimulatorTest, CancelledEventsAreReclaimedWhenTheirTimeArrives) {
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(sim.Schedule(Seconds(i), [] {}));
  }
  for (EventId id : ids) {
    EXPECT_TRUE(sim.Cancel(id));
  }
  EXPECT_EQ(sim.pending_events(), 100u);
  EXPECT_EQ(sim.cancelled_pending(), 100u);
  sim.Run();
  EXPECT_EQ(sim.events_dispatched(), 0u);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.cancelled_pending(), 0u);
}

// Schedule/cancel churn with live traffic must reuse slots rather than grow
// the slab proportionally to the number of cancellations.
TEST(SimulatorTest, ScheduleCancelChurnReusesSlabSlots) {
  Simulator sim;
  for (int i = 0; i < 10000; ++i) {
    const EventId id = sim.Schedule(Seconds(1), [] {});
    EXPECT_TRUE(sim.Cancel(id));
    sim.RunUntil(sim.Now() + Seconds(2));  // reclaims the tombstone
  }
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_LE(sim.slab_slots(), 2u);
}

TEST(SimulatorTest, StaleIdOfReusedSlotDoesNotCancelNewEvent) {
  Simulator sim;
  const EventId stale = sim.Schedule(Seconds(1), [] {});
  sim.Run();
  bool fired = false;
  const EventId fresh = sim.Schedule(Seconds(1), [&] { fired = true; });
  EXPECT_NE(stale, fresh);  // same slot, different generation
  EXPECT_FALSE(sim.Cancel(stale));
  sim.Run();
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, SameTimestampOrderSurvivesInterleavedCancels) {
  Simulator sim;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(sim.Schedule(Seconds(5), [&order, i] { order.push_back(i); }));
  }
  // Cancel the odd events; the even ones must still fire in schedule order.
  for (int i = 1; i < 10; i += 2) {
    EXPECT_TRUE(sim.Cancel(ids[static_cast<std::size_t>(i)]));
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 4, 6, 8}));
}

TEST(SimulatorTest, EventScheduledAtNowDuringDispatchFiresAfterQueuedPeers) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(Seconds(5), [&] {
    order.push_back(0);
    // Same timestamp as the two already-queued events below: it was
    // scheduled later, so it must fire after them.
    sim.Schedule(0, [&] { order.push_back(3); });
  });
  sim.Schedule(Seconds(5), [&] { order.push_back(1); });
  sim.Schedule(Seconds(5), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(SimulatorTest, NextEventTimePeeksEarliestLiveEvent) {
  Simulator sim;
  EXPECT_EQ(sim.NextEventTime(), Simulator::kNoPendingEvent);
  const EventId early = sim.Schedule(Seconds(2), [] {});
  sim.Schedule(Seconds(5), [] {});
  EXPECT_EQ(sim.NextEventTime(), Seconds(2));
  // Cancelling the head exposes the next live event (tombstones reclaimed).
  sim.Cancel(early);
  EXPECT_EQ(sim.NextEventTime(), Seconds(5));
  sim.Run();
  EXPECT_EQ(sim.NextEventTime(), Simulator::kNoPendingEvent);
}

TEST(SimulatorTest, AdvanceToMovesClockWithoutDispatching) {
  Simulator sim;
  bool fired = false;
  sim.Schedule(Seconds(10), [&] { fired = true; });
  sim.AdvanceTo(Seconds(7));
  EXPECT_EQ(sim.Now(), Seconds(7));
  EXPECT_FALSE(fired);
  // Advancing exactly to the pending event's time is allowed (nothing is
  // skipped); overtaking it is not, and time cannot move backwards.
  sim.AdvanceTo(Seconds(10));
  EXPECT_THROW(sim.AdvanceTo(Seconds(11)), std::invalid_argument);
  EXPECT_THROW(sim.AdvanceTo(Seconds(5)), std::invalid_argument);
  sim.Run();
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, HorizonTracksRunUntilDeadline) {
  Simulator sim;
  EXPECT_EQ(sim.horizon(), Simulator::kNoPendingEvent);
  SimTime seen_horizon = 0;
  sim.Schedule(Seconds(1), [&] { seen_horizon = sim.horizon(); });
  sim.RunUntil(Seconds(30));
  EXPECT_EQ(seen_horizon, Seconds(30));
  EXPECT_EQ(sim.horizon(), Simulator::kNoPendingEvent);

  sim.Schedule(Seconds(1), [&] { seen_horizon = sim.horizon(); });
  sim.Run();
  EXPECT_EQ(seen_horizon, Simulator::kNoPendingEvent);
}

TEST(SimulatorTest, StopRequestVisibleInsideHandler) {
  Simulator sim;
  bool requested_inside = false;
  sim.Schedule(Seconds(1), [&] {
    sim.Stop();
    requested_inside = sim.stop_requested();
  });
  bool later_fired = false;
  sim.Schedule(Seconds(2), [&] { later_fired = true; });
  sim.Run();
  EXPECT_TRUE(requested_inside);
  EXPECT_FALSE(later_fired);
}

TEST(SimulatorTest, ManyDistinctTimestampsDispatchInTimeOrder) {
  Simulator sim;
  std::vector<SimTime> times;
  // A deterministic shuffle of distinct timestamps exercises the bucket
  // heap + hash table (every event creates and drains its own bucket).
  for (int i = 0; i < 1000; ++i) {
    const SimTime t = Seconds((i * 613) % 1000);
    sim.ScheduleAt(t, [&times, &sim] { times.push_back(sim.Now()); });
  }
  sim.Run();
  ASSERT_EQ(times.size(), 1000u);
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_LT(times[i - 1], times[i]);
  }
  EXPECT_EQ(sim.pending_events(), 0u);
}

}  // namespace
}  // namespace byterobust

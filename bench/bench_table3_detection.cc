// Table 3 reproduction: time to detect infrastructure failures with the
// real-time inspection mechanism vs the timeout-only baseline.
//
// Inspection intervals follow the paper: network 30 s (switch down needs two
// consecutive events), GPU 10 s, host 2 s. The baseline waits for the
// PyTorch-Distributed collective timeout (~10 min; switch failures burn two
// timeouts) or, for thermal throttling, for the MFU-decline monitor.

#include <cstdio>
#include <functional>
#include <optional>

#include "src/common/table.h"
#include "src/core/byterobust_system.h"

using namespace byterobust;

namespace {

struct DetectionCase {
  const char* category;
  const char* root_cause;
  std::function<void(Machine&)> apply;
  const char* baseline;  // w/o inspection column
};

// Measures the time from fault application to the first anomaly report.
std::optional<SimDuration> MeasureDetection(const std::function<void(Machine&)>& apply) {
  SystemConfig cfg;
  cfg.job.parallelism = {2, 4, 4, 2};
  cfg.job.base_step_time = Seconds(10);
  cfg.job.model_params_b = 0.7;
  cfg.seed = 5;
  ByteRobustSystem sys(cfg);
  // Monitor only: capture the first report instead of acting on it.
  std::optional<SimTime> detected;
  sys.monitor().SetAnomalyHandler([&detected](const AnomalyReport& r) {
    if (!detected.has_value()) {
      detected = r.detect_time;
    }
  });
  sys.monitor().Start();
  sys.job().Start();
  sys.sim().RunUntil(Minutes(2));
  const SimTime inject = sys.sim().Now();
  apply(sys.cluster().machine(7));
  sys.sim().RunUntil(inject + Hours(1));
  if (!detected.has_value()) {
    return std::nullopt;
  }
  return *detected - inject;
}

}  // namespace

int main() {
  const DetectionCase cases[] = {
      {"Network", "NIC crash", [](Machine& m) { m.host().nic_up = false; }, "T_timeout"},
      {"Network", "Port Flapping", [](Machine& m) { m.host().packet_loss_rate = 0.3; },
       "T_timeout"},
      {"Network", "Switch Down", [](Machine& m) { m.host().switch_reachable = false; },
       "2*T_timeout"},
      {"GPU", "Driver Hang", [](Machine& m) { m.gpu(0).dcgm_responsive = false; },
       "T_timeout"},
      {"GPU", "High Temperature", [](Machine& m) { m.gpu(0).temperature_c = 92.0; },
       "T_monitor"},
      {"GPU", "GPU Lost", [](Machine& m) { m.gpu(0).available = false; }, "T_timeout"},
      {"Host", "OS Kernel Fault", [](Machine& m) { m.host().os_kernel_ok = false; },
       "T_timeout"},
  };

  std::printf("=== Table 3: time to detect infrastructure failures ===\n");
  std::printf("(T_timeout ~ %.0f min PyTorch-Distributed collective timeout)\n\n", 10.0);

  TablePrinter table(
      {"Category", "Root Cause", "w/ Inspection (s)", "Paper (s)", "w/o Inspection"});
  const char* paper[] = {"30", "30", "30*2", "10", "10", "10", "2"};
  int i = 0;
  for (const DetectionCase& c : cases) {
    const auto detection = MeasureDetection(c.apply);
    table.AddRow({c.category, c.root_cause,
                  detection ? FormatDouble(ToSeconds(*detection), 0) : "not detected",
                  paper[i++], c.baseline});
  }
  table.Print();

  std::printf("\nDetection with inspection lands within one polling interval of the\n");
  std::printf("fault; the baseline burns a collective timeout (~600 s) before anyone\n");
  std::printf("notices — a 20-300x reduction in detection time.\n");
  return 0;
}

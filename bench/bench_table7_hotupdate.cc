// Table 7 reproduction: scheduling time of full-job requeue vs in-place
// hot-update across four training scales, upon code-update events.

#include <cstdio>

#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/core/byterobust_system.h"

using namespace byterobust;

namespace {

// Measures end-to-end hot-update scheduling time (request -> job resumed) in
// a live system, averaged over five code-update events.
double MeasureHotUpdate(int machines) {
  SystemConfig cfg;
  // TP=2 x PP=4 x DP=machines on 8-GPU hosts => exactly `machines` machines.
  cfg.job.parallelism = {2, 4, machines, 8};
  cfg.job.base_step_time = Seconds(10);
  cfg.job.model_params_b = 7.0;
  cfg.seed = 3;
  ByteRobustSystem sys(cfg);
  sys.Start();
  RunningStat stat;
  for (int event = 0; event < 5; ++event) {
    sys.sim().RunUntil(sys.sim().Now() + Minutes(30));
    const SimTime request = sys.sim().Now();
    const int runs_before = sys.job().run_count();
    sys.hot_updates().Submit({event + 1, 1.0 + 0.02 * event, false, 0, true, "update"});
    while (sys.job().run_count() == runs_before && sys.sim().Now() < request + Hours(1)) {
      sys.sim().RunUntil(sys.sim().Now() + Seconds(5));
    }
    stat.Add(ToSeconds(sys.sim().Now() - request));
  }
  return stat.mean();
}

}  // namespace

int main() {
  std::printf("=== Table 7: scheduling time, requeue vs hot update (5 events) ===\n\n");

  const RestartCostModel model;
  TablePrinter table({"Scale (# GPUs)", "Requeue (s)", "Hot update (s)", "Speedup",
                      "Paper requeue/hot-update"});
  const char* paper[] = {"454 / 46", "545 / 51", "635 / 54", "768 / 65"};
  int i = 0;
  for (int machines : {128, 256, 512, 1024}) {
    const double requeue = ToSeconds(model.RequeueTime(machines));
    const double hot = ToSeconds(model.HotUpdateTime(machines));
    char scale[32];
    std::snprintf(scale, sizeof(scale), "%dx16", machines);
    table.AddRow({scale, FormatDouble(requeue, 0), FormatDouble(hot, 0),
                  FormatDouble(requeue / hot, 2) + "x", paper[i++]});
  }
  table.Print();

  // End-to-end validation in a live simulated system: the measured hot-update
  // time includes the checkpoint reload on top of the scheduling cost.
  const double measured = MeasureHotUpdate(16);
  std::printf("\nlive-system validation (16 machines, incl. in-memory ckpt reload): "
              "%.0f s per hot update\n", measured);
  std::printf("\nShape check vs paper: hot update is ~11x faster than requeue and its\n");
  std::printf("cost stays nearly flat with scale, while requeue grows by ~100 s per\n");
  std::printf("doubling (metadata clearing, quota reallocation, pod rebuilds).\n");
  return 0;
}

// Baseline comparison: implicit-failure (job hang) detection + localization
// across three approaches the paper discusses:
//   1. timeout-only (log-based systems): detection waits for the NCCL
//      collective timeout, localization needs manual stop-time work;
//   2. MegaScale-style RDMA traffic monitoring: early detection, but "cannot
//      automatically isolate suspected machines ... necessitating manual
//      investigations" (Sec. 10);
//   3. ByteRobust: progress watchdog + stack aggregation, automatic
//      over-eviction at parallel-group granularity.

#include <cstdio>

#include "src/analyzer/aggregation.h"
#include "src/common/table.h"
#include "src/core/byterobust_system.h"
#include "src/faults/fault_injector.h"
#include "src/monitor/rdma_monitor.h"

using namespace byterobust;

int main() {
  std::printf("=== Baseline: job-hang detection and localization ===\n\n");

  // One representative hang on a TP=2 x PP=4 x DP=4 job.
  SystemConfig cfg;
  cfg.job.parallelism = {2, 4, 4, 2};
  cfg.job.base_step_time = Seconds(10);
  cfg.job.model_params_b = 0.7;
  cfg.seed = 9;
  ByteRobustSystem sys(cfg);
  sys.Start();
  sys.sim().RunUntil(Minutes(30));

  const SimTime hang_time = sys.sim().Now();
  Incident inc;
  inc.id = 1;
  inc.symptom = IncidentSymptom::kJobHang;
  inc.root_cause = RootCause::kInfrastructure;
  inc.faulty_machines = {13};
  inc.gpu_index = 0;
  inc.inject_time = hang_time;
  FaultInjector::ApplyToCluster(inc, &sys.cluster());
  sys.controller().NotifyIncidentInjected(inc);
  sys.job().Hang(26);

  // MegaScale-style detector sampling the (synthetic) RDMA traffic signal.
  RdmaHangDetector rdma;
  SimTime rdma_detect = 0;
  for (SimTime t = hang_time; t < hang_time + Hours(1) && rdma_detect == 0; t += Seconds(10)) {
    const double traffic = t < hang_time ? 1.0
                                         : SyntheticRdmaTraffic(sys.job().state(), t, 11);
    if (auto fired = rdma.OnSample(t, traffic)) {
      rdma_detect = *fired;
    }
  }

  // Let ByteRobust run its own pipeline to completion.
  sys.sim().RunUntil(hang_time + Hours(2));
  SimDuration br_detect = 0;
  SimDuration br_total = 0;
  bool br_automatic = false;
  for (const auto& r : sys.controller().log().entries()) {
    if (r.incident.symptom == IncidentSymptom::kJobHang) {
      br_detect = r.DetectionTime();
      br_total = r.TotalUnproductive();
      br_automatic = r.mechanism == ResolutionMechanism::kAnalyzerEvictRestart;
      break;
    }
  }

  TablePrinter table({"Approach", "Detection", "Localization", "Localized set"});
  table.AddRow({"Timeout-only (logs)", "30m00s (NCCL timeout)", "manual stop-time work",
                "unknown"});
  table.AddRow({"MegaScale RDMA monitor", FormatDuration(rdma_detect - hang_time),
                "manual investigation", "none (traffic drops everywhere)"});
  table.AddRow({"ByteRobust", FormatDuration(br_detect),
                br_automatic ? "automatic (stack aggregation)" : "automatic",
                "one PP group (over-eviction)"});
  table.Print();

  std::printf("\nByteRobust end-to-end (detect -> aggregate -> over-evict -> warm-standby\n");
  std::printf("restart): %s of unproductive time; machine 13 blacklisted: %s.\n",
              FormatDuration(br_total).c_str(),
              sys.cluster().IsBlacklisted(13) ? "yes" : "no");
  std::printf("\nRDMA monitoring detects the stall earliest, but every machine's traffic\n");
  std::printf("collapses simultaneously, so it cannot say *which* machines to evict —\n");
  std::printf("the paper's motivation for stack-trace aggregation (Secs. 2.3, 5, 10).\n");
  return 0;
}

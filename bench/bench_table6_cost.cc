// Table 6 reproduction: incident-resolution cost (time from failure
// localization to successful restart) of ByteRobust's automated framework vs
// the selective-stress-testing baseline, plus the Fig. 3 unproductive-time
// breakdown.

#include <cstdio>
#include <optional>
#include <vector>

#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/core/byterobust_system.h"
#include "src/diagnoser/stress_baseline.h"
#include "src/faults/fault_injector.h"

using namespace byterobust;

namespace {

struct CostCase {
  IncidentSymptom symptom;
  RootCause root_cause;
};

struct Measured {
  RunningStat resolution;  // localization -> restart
  RunningStat detection;
  RunningStat localization;
  SimDuration max_resolution = 0;
};

Measured MeasureSymptom(const CostCase& c, int trials) {
  Measured out;
  for (int t = 0; t < trials; ++t) {
    SystemConfig cfg;
    cfg.job.parallelism = {2, 4, 4, 2};
    cfg.job.base_step_time = Seconds(10);
    cfg.job.model_params_b = 0.7;
    cfg.seed = 1000 + static_cast<std::uint64_t>(t) * 7 +
               static_cast<std::uint64_t>(c.symptom) * 131;
    cfg.spare_machines = 10;
    cfg.standby.provision_time = Minutes(5);
    ByteRobustSystem sys(cfg);
    sys.Start();
    sys.sim().RunUntil(Minutes(20));

    if (c.symptom == IncidentSymptom::kCodeDataAdjustment) {
      // Manual restart through the hot-update path: measure request -> resume.
      const SimTime request = sys.sim().Now();
      const int runs_before = sys.job().run_count();
      sys.hot_updates().Submit({t + 1, 1.1, false, 0, /*urgent=*/true, "adjustment"});
      while (sys.job().run_count() == runs_before && sys.sim().Now() < request + Hours(1)) {
        sys.sim().RunUntil(sys.sim().Now() + Seconds(5));
      }
      out.resolution.Add(ToSeconds(sys.sim().Now() - request));
      out.detection.Add(0.0);
      out.localization.Add(0.0);
      out.max_resolution = std::max(out.max_resolution, sys.sim().Now() - request);
      continue;
    } else {
      Incident inc;
      inc.id = static_cast<std::uint64_t>(t) + 1;
      inc.symptom = c.symptom;
      inc.root_cause = c.root_cause;
      if (c.root_cause != RootCause::kUserCode) {
        inc.faulty_machines = {static_cast<MachineId>(3 + t % 8)};
      }
      inc.gpu_index = 1;
      inc.inject_time = sys.sim().Now();
      FaultInjector::ApplyToCluster(inc, &sys.cluster());
      sys.controller().NotifyIncidentInjected(inc);
      switch (c.symptom) {
        case IncidentSymptom::kJobHang:
          sys.job().Hang(6);
          break;
        case IncidentSymptom::kNanValue:
          sys.job().SetNanLoss(true);
          break;
        default:
          sys.job().Crash();
          break;
      }
      if (c.root_cause == RootCause::kUserCode) {
        sys.job().ApplyCodeVersion({99, 1.1, true, Minutes(5), false, "bad change"});
      }
    }
    sys.sim().RunUntil(Hours(6));
    for (const IncidentResolution& r : sys.controller().log().entries()) {
      if (!r.resolved) {
        continue;
      }
      // The paper's Table 6 metric ("failure localization to successful
      // restart") covers the whole post-detection pipeline: diagnostics,
      // eviction scheduling and restart.
      const SimDuration res = r.restart_done_time - r.detect_time;
      out.resolution.Add(ToSeconds(res));
      out.detection.Add(ToSeconds(r.DetectionTime()));
      out.localization.Add(ToSeconds(r.LocalizationTime()));
      out.max_resolution = std::max(out.max_resolution, res);
      break;  // first resolution belongs to the injected incident
    }
  }
  return out;
}

}  // namespace

int main() {
  const CostCase cases[] = {
      {IncidentSymptom::kCudaError, RootCause::kInfrastructure},
      {IncidentSymptom::kInfinibandError, RootCause::kTransient},
      {IncidentSymptom::kHdfsError, RootCause::kInfrastructure},
      {IncidentSymptom::kOsKernelPanic, RootCause::kInfrastructure},
      {IncidentSymptom::kGpuMemoryError, RootCause::kInfrastructure},
      {IncidentSymptom::kNanValue, RootCause::kSdc},
      {IncidentSymptom::kGpuUnavailable, RootCause::kInfrastructure},
      {IncidentSymptom::kCodeDataAdjustment, RootCause::kUserCode},
  };

  std::printf("=== Table 6: incident resolution cost comparison ===\n");
  std::printf("(ours: localization -> successful restart; baseline: selective stress\n");
  std::printf(" testing guided by logs/exit codes; INF = cannot localize)\n\n");

  TablePrinter table({"Incident Symptom", "Ours Mean (s)", "Ours Max (s)", "Selective (s)",
                      "Paper Ours Mean (s)"});
  const char* paper_mean[] = {"93", "60", "58", "109", "10", "4289", "10", "57"};
  TablePrinter breakdown({"Incident Symptom", "Detection (s)", "Localization (s)"});
  int i = 0;
  for (const CostCase& c : cases) {
    const Measured m = MeasureSymptom(c, 5);
    const auto baseline = SelectiveStressResolutionTime(c.symptom, c.root_cause);
    table.AddRow({SymptomName(c.symptom), FormatDouble(m.resolution.mean(), 0),
                  FormatDouble(ToSeconds(m.max_resolution), 0),
                  baseline ? FormatDouble(ToSeconds(*baseline), 0) : "INF",
                  paper_mean[i++]});
    breakdown.AddRow({SymptomName(c.symptom), FormatDouble(m.detection.mean(), 0),
                      FormatDouble(m.localization.mean(), 0)});
  }
  table.Print();

  std::printf("\n=== Fig. 3 style: unproductive-time breakdown (means) ===\n");
  breakdown.Print();
  std::printf("\nShape check: ByteRobust's automated path beats selective stress testing\n");
  std::printf("on every symptom class, and handles the human-mistake / storage cases\n");
  std::printf("where stress tests cannot localize at all.\n");
  return 0;
}

// Table 4 reproduction: distribution of resolved incidents across ByteRobust
// mechanisms for the two production pretraining jobs (three-month dense 70+B
// and one-month MoE 200+B, both on 9,600 GPUs), plus the Sec. 4.2 lesson's
// mechanism shares.

#include <cstdio>

#include "src/common/table.h"
#include "src/core/production_presets.h"

using namespace byterobust;

namespace {

void ReportJob(const char* name, Scenario& scenario) {
  const ResolutionLog& log = scenario.system().controller().log();

  // Table 4 groups reattempts and dual-phase replays under the automated
  // fault-tolerance (AutoFT-ER) umbrella: both are AutoFT outcomes.
  auto autoft_er = [&log](IncidentCategory cat) {
    return log.CountBy(ResolutionMechanism::kAutoFtEvictRestart, cat) +
           log.CountBy(ResolutionMechanism::kReattempt, cat) +
           log.CountBy(ResolutionMechanism::kDualPhaseReplay, cat) +
           log.CountBy(ResolutionMechanism::kUnresolvedHuman, cat);
  };
  const int total = static_cast<int>(log.size());
  auto pct = [total](int n) {
    return std::string(FormatInt(n)) + " (" + FormatPercent(total ? static_cast<double>(n) / total : 0.0, 1) + ")";
  };

  std::printf("\n--- %s job ---\n", name);
  TablePrinter table({"Mechanism", "Explicit", "Implicit", "Manual Restart"});
  using C = IncidentCategory;
  table.AddRow({"AutoFT-ER", pct(autoft_er(C::kExplicit)), pct(autoft_er(C::kImplicit)), "-"});
  table.AddRow({"AutoFT-HU", "-", "-",
                pct(log.CountBy(ResolutionMechanism::kAutoFtHotUpdate, C::kManualRestart))});
  table.AddRow({"Analyzer-ER",
                pct(log.CountBy(ResolutionMechanism::kAnalyzerEvictRestart, C::kExplicit)),
                pct(log.CountBy(ResolutionMechanism::kAnalyzerEvictRestart, C::kImplicit)),
                "-"});
  table.AddRow({"Rollback", pct(log.CountBy(ResolutionMechanism::kRollback, C::kExplicit)),
                pct(log.CountBy(ResolutionMechanism::kRollback, C::kImplicit)), "-"});
  table.Print();

  std::printf("total resolutions: %d over %d injected incidents; cumulative ETTR %.3f\n",
              total, scenario.stats().incidents_injected,
              scenario.system().ettr().CumulativeEttr(scenario.system().sim().Now()));

  // Sec. 4.2 lesson: mechanism shares across large-scale jobs.
  const int failures = total - log.CountBy(ResolutionMechanism::kAutoFtHotUpdate);
  if (failures > 0) {
    auto share = [failures](int n) {
      return FormatPercent(static_cast<double>(n) / failures, 2);
    };
    std::printf("lesson shares (paper: ER 32.52%%, reattempt 22.70%%, rollback 9.20%%, "
                "replay 1.23%%):\n");
    std::printf("  direct eviction %s, reattempt %s, rollback %s, dual-phase replay %s\n",
                share(log.CountBy(ResolutionMechanism::kAutoFtEvictRestart) +
                      log.CountBy(ResolutionMechanism::kAnalyzerEvictRestart))
                    .c_str(),
                share(log.CountBy(ResolutionMechanism::kReattempt)).c_str(),
                share(log.CountBy(ResolutionMechanism::kRollback)).c_str(),
                share(log.CountBy(ResolutionMechanism::kDualPhaseReplay)).c_str());
  }
}

}  // namespace

int main() {
  std::printf("=== Table 4: incidents resolved per mechanism (production campaigns) ===\n");
  std::printf("(dense: 90-day campaign; MoE: 30-day campaign; 9,600 GPUs each)\n");

  Scenario dense(DenseCampaignConfig(90.0, /*seed=*/17));
  dense.Run();
  ReportJob("Dense 70B (3 months)", dense);

  Scenario moe(MoeCampaignConfig(30.0, /*seed=*/23));
  moe.Run();
  ReportJob("MoE 200B (1 month)", moe);

  std::printf("\nShape check vs paper: AutoFT-ER dominates explicit failures, all manual\n");
  std::printf("restarts flow through AutoFT-HU, the analyzer resolves implicit failures\n");
  std::printf("without human intervention, and rollback handles a small share, larger\n");
  std::printf("for the heavily-customized MoE job.\n");
  return 0;
}

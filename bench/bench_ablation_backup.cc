// Ablation: cross-parallel-group backup vs naive neighbor-machine backup
// (DESIGN.md item 5) — shard survival under the over-eviction patterns the
// runtime analyzer actually produces (whole PP/TP/DP groups).

#include <cstdio>
#include <set>

#include "src/ckpt/backup_strategy.h"
#include "src/common/table.h"

using namespace byterobust;

namespace {

// A naive plan: every rank backs up on the next machine (what Gemini-style
// in-memory checkpointing does without eviction awareness).
class NeighborPlan {
 public:
  explicit NeighborPlan(const Topology& topo) : topo_(topo) {}

  Rank TargetOf(Rank r) const {
    const auto& cfg = topo_.config();
    const MachineId neighbor = (topo_.MachineOfRank(r) + 1) % topo_.num_machines();
    return neighbor * cfg.gpus_per_machine + r % cfg.gpus_per_machine;
  }

  bool SurvivesEviction(const std::vector<MachineId>& machines) const {
    const std::set<MachineId> evicted(machines.begin(), machines.end());
    for (Rank r = 0; r < topo_.world_size(); ++r) {
      if (evicted.count(topo_.MachineOfRank(r)) > 0 &&
          evicted.count(topo_.MachineOfRank(TargetOf(r))) > 0) {
        return false;
      }
    }
    return true;
  }

 private:
  const Topology& topo_;
};

struct Survival {
  int survived = 0;
  int total = 0;

  std::string Format() const {
    return std::string(FormatInt(survived)) + "/" + FormatInt(total);
  }
};

}  // namespace

int main() {
  std::printf("=== Ablation: cross-group vs neighbor backup under group eviction ===\n");
  std::printf("(for every parallel group of each kind: does evicting the whole group\n");
  std::printf(" preserve all shards? restart is impossible otherwise)\n\n");

  TablePrinter table({"Topology", "Kind", "Cross-group survives", "Neighbor survives"});
  const ParallelismConfig configs[] = {
      {2, 4, 2, 2}, {2, 4, 4, 2}, {8, 8, 4, 16}, {4, 2, 8, 8}, {8, 16, 4, 16},
  };
  for (const ParallelismConfig& cfg : configs) {
    const Topology topo(cfg);
    const BackupPlan cross(topo);
    const NeighborPlan neighbor(topo);
    for (GroupKind kind : {GroupKind::kPipeline, GroupKind::kData, GroupKind::kTensor}) {
      Survival cross_s;
      Survival neighbor_s;
      for (const ParallelGroup& g : topo.Groups(kind)) {
        const std::vector<MachineId> machines = topo.MachinesOfGroup(g);
        ++cross_s.total;
        ++neighbor_s.total;
        if (cross.SurvivesEviction(topo, machines)) {
          ++cross_s.survived;
        }
        if (neighbor.SurvivesEviction(machines)) {
          ++neighbor_s.survived;
        }
      }
      char name[64];
      std::snprintf(name, sizeof(name), "TP%d PP%d DP%d (%dg/m)", cfg.tp, cfg.pp, cfg.dp,
                    cfg.gpus_per_machine);
      table.AddRow({name, GroupKindName(kind), cross_s.Format(), neighbor_s.Format()});
    }
  }
  table.Print();

  std::printf("\nThe cross-parallel-group strategy (Sec. 6.3, Fig. 9) survives every\n");
  std::printf("single-group over-eviction; neighbor backup loses shards whenever a\n");
  std::printf("group's machines are adjacent (exactly the PP-group evictions the\n");
  std::printf("analyzer performs), forcing a remote-storage restore. The one failing\n");
  std::printf("row (TP4 PP2 DP8, DP kind) is structural: that DP group's machines are\n");
  std::printf("the entire cluster, so no placement can survive evicting it.\n");
  return 0;
}

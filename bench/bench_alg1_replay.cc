// Algorithm 1 / Fig. 6 harness: dual-phase replay localization sweep.
// Measures localization success rate, suspect-set size, and diagnosis time
// across machine counts, group sizes and SDC reproduction probabilities.

#include <cstdio>
#include <set>

#include "src/common/table.h"
#include "src/replay/dual_phase_replay.h"

using namespace byterobust;

int main() {
  std::printf("=== Alg. 1: dual-phase replay localization sweep ===\n\n");

  TablePrinter table({"z (machines)", "m", "n", "|S| bound", "repro p", "located",
                      "avg suspects", "diagnosis time"});
  struct Case {
    int z;
    int m;
    double reproduce;
  };
  const Case cases[] = {
      {24, 4, 1.0}, {24, 4, 0.75}, {64, 8, 1.0},  {64, 8, 0.75},
      {128, 8, 0.9}, {256, 16, 0.9}, {1200, 24, 0.9}, {36, 12, 1.0},
  };
  Rng rng(2025);
  for (const Case& c : cases) {
    DualPhaseReplay replay(c.z, c.m);
    const int trials = 200;
    int located = 0;
    double suspects = 0.0;
    SimDuration elapsed = 0;
    for (int t = 0; t < trials; ++t) {
      const MachineId faulty = static_cast<MachineId>(rng.UniformInt(0, c.z - 1));
      auto oracle = DualPhaseReplay::FaultOracle({faulty}, c.reproduce, &rng);
      const ReplayOutcome outcome = replay.Locate(oracle, Minutes(10));
      elapsed += outcome.elapsed;
      if (outcome.found) {
        bool contains = false;
        for (MachineId s : outcome.suspects) {
          if (s == faulty) {
            contains = true;
          }
        }
        if (contains) {
          ++located;
          suspects += static_cast<double>(outcome.suspects.size());
        }
      }
    }
    char zs[16];
    std::snprintf(zs, sizeof(zs), "%d", c.z);
    table.AddRow({zs, FormatInt(c.m), FormatInt(replay.n()),
                  FormatInt(replay.ExpectedSuspectCardinality()),
                  FormatDouble(c.reproduce, 2),
                  FormatPercent(static_cast<double>(located) / trials, 1),
                  located ? FormatDouble(suspects / located, 2) : "-",
                  FormatDuration(elapsed / trials)});
  }
  table.Print();

  std::printf("\nWith m <= n the constrained system has a unique solution: one faulty\n");
  std::printf("machine is isolated in exactly two replay rounds (~20 min), vs the 8+\n");
  std::printf("hours of offline stress testing the paper reports for manual SDC\n");
  std::printf("diagnosis. Deterministic reproduction localizes 100%% of faults; at\n");
  std::printf("p=0.75 the success rate is bounded by p^2 and the ladder falls back to\n");
  std::printf("human diagnosis for the remainder.\n");
  return 0;
}

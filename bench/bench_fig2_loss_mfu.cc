// Fig. 2 reproduction: normalized loss and relative MFU of a 1,000-GPU job
// over a ~10-day span with frequent manual restarts and engineering updates.
// Each restart may roll training back a few steps; the loss curves of
// successive runs overlap bit-wise (the paper's correctness check).

#include <algorithm>
#include <cstdio>

#include "src/common/table.h"
#include "src/core/production_presets.h"

using namespace byterobust;

int main() {
  std::printf("=== Fig. 2: loss + relative MFU, 1000-GPU job over 10 days ===\n\n");

  Scenario scenario(Fig2CampaignConfig(/*seed=*/29));
  scenario.Run();
  ByteRobustSystem& sys = scenario.system();
  const auto& samples = sys.mfu_series().samples();
  if (samples.empty()) {
    std::printf("no samples\n");
    return 1;
  }

  const double min_mfu = samples.front().mfu;  // naive-code baseline
  const double max_step = static_cast<double>(samples.back().step);
  const double loss0 = samples.front().loss;

  std::printf("runs (restarts): %d   steps: %lld   updates: %d\n", sys.job().run_count(),
              static_cast<long long>(sys.job().max_step_reached()),
              scenario.stats().updates_submitted);
  std::printf("(paper: 28 runs over the 10-day span)\n\n");

  TablePrinter table({"Normalized Step", "Normalized Loss", "Relative MFU", "Run #"});
  const std::size_t points = 25;
  for (std::size_t i = 0; i < points; ++i) {
    const std::size_t idx = i * (samples.size() - 1) / (points - 1);
    const MfuSample& s = samples[idx];
    table.AddRow({FormatDouble(static_cast<double>(s.step) / max_step, 2),
                  FormatDouble(s.loss / loss0, 3), FormatDouble(s.mfu / min_mfu, 2),
                  FormatInt(s.run_id)});
  }
  table.Print();

  // Shape checks: loss decreases, relative MFU increases across runs.
  const double final_rel_mfu = samples.back().mfu / min_mfu;
  std::printf("\nloss dropped %.1f%%; relative MFU reached %.2fx (paper: up to ~2x)\n",
              (1.0 - samples.back().loss / loss0) * 100.0, final_rel_mfu);
  std::printf("Each MFU leap corresponds to an engineering update deployed through the\n");
  std::printf("hot-update pipeline; loss continuity across restarts comes from every-step\n");
  std::printf("checkpointing plus the deterministic loss model (bit-wise curve overlap).\n");
  return 0;
}

// Micro-benchmarks (google-benchmark) for the hot paths of the reproduction:
// event dispatch, stack aggregation, topology queries, backup planning and
// dual-phase replay. These bound the simulation cost of campaign benches.

#include <benchmark/benchmark.h>

#include "src/analyzer/aggregation.h"
#include "src/ckpt/backup_strategy.h"
#include "src/replay/dual_phase_replay.h"
#include "src/sim/simulator.h"
#include "src/tracer/stack_synth.h"

namespace byterobust {
namespace {

void BM_SimulatorScheduleDispatch(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    long sink = 0;
    for (int i = 0; i < events; ++i) {
      sim.Schedule(Seconds(i % 100), [&sink] { ++sink; });
    }
    sim.Run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_SimulatorScheduleDispatch)->Arg(1000)->Arg(10000)->Arg(100000);

Topology MakeTopo(int dp) {
  ParallelismConfig cfg;
  cfg.tp = 2;
  cfg.pp = 4;
  cfg.dp = dp;
  cfg.gpus_per_machine = 8;
  return Topology(cfg);
}

void BM_StackAggregation(benchmark::State& state) {
  const Topology topo = MakeTopo(static_cast<int>(state.range(0)));
  const auto stacks = SynthesizeFullPodStacks(topo, topo.world_size() - 1,
                                              HangSite::kTensorCollective);
  AggregationAnalyzer analyzer;
  for (auto _ : state) {
    auto result = analyzer.Analyze(stacks, topo);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int>(stacks.size()));
  state.counters["ranks"] = topo.world_size();
}
BENCHMARK(BM_StackAggregation)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_FindCoveringGroup(benchmark::State& state) {
  const Topology topo = MakeTopo(static_cast<int>(state.range(0)));
  const std::vector<MachineId> machines = topo.MachinesOfGroup(topo.Groups(GroupKind::kPipeline)[0]);
  for (auto _ : state) {
    ParallelGroup group;
    bool found = topo.FindCoveringGroup(machines, &group);
    benchmark::DoNotOptimize(found);
  }
}
BENCHMARK(BM_FindCoveringGroup)->Arg(16)->Arg(64)->Arg(256);

void BM_BackupPlanConstruction(benchmark::State& state) {
  const Topology topo = MakeTopo(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    BackupPlan plan(topo);
    benchmark::DoNotOptimize(plan);
  }
  state.counters["ranks"] = topo.world_size();
}
BENCHMARK(BM_BackupPlanConstruction)->Arg(16)->Arg(64)->Arg(256);

void BM_DualPhaseReplayLocate(benchmark::State& state) {
  const int z = static_cast<int>(state.range(0));
  int m = 1;
  for (int cand = 2; cand * cand <= z; ++cand) {
    if (z % cand == 0) {
      m = cand;
    }
  }
  DualPhaseReplay replay(z, m);
  Rng rng(1);
  for (auto _ : state) {
    auto oracle = DualPhaseReplay::FaultOracle({z / 2}, 1.0, &rng);
    auto outcome = replay.Locate(oracle, Minutes(10));
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_DualPhaseReplayLocate)->Arg(24)->Arg(144)->Arg(1200);

}  // namespace
}  // namespace byterobust

BENCHMARK_MAIN();

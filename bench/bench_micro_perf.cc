// Micro-benchmarks (google-benchmark) for the hot paths of the reproduction:
// event dispatch, the training step loop, stack aggregation, topology
// queries, backup planning, dual-phase replay, and one end-to-end campaign
// seed. These bound the simulation cost of campaign benches.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdint>
#include <string>

#include "src/analyzer/aggregation.h"
#include "src/ckpt/backup_strategy.h"
#include "src/core/production_presets.h"
#include "src/core/scenario.h"
#include "src/faults/domain_injector.h"
#include "src/fleet/fleet_presets.h"
#include "src/topology/fault_domains.h"
#include "src/replay/dual_phase_replay.h"
#include "src/serve/client.h"
#include "src/serve/protocol.h"
#include "src/serve/server.h"
#include "src/sim/simulator.h"
#include "src/tracer/stack_synth.h"
#include "src/training/train_job.h"

namespace byterobust {
namespace {

void BM_SimulatorScheduleDispatch(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    long sink = 0;
    for (int i = 0; i < events; ++i) {
      sim.Schedule(Seconds(i % 100), [&sink] { ++sink; });
    }
    sim.Run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_SimulatorScheduleDispatch)->Arg(1000)->Arg(10000)->Arg(100000);

// The simulated training-step hot path: epoch-cached perf-model queries plus
// batched inline step execution (no interfering events, so every step after
// the first runs without a heap round-trip).
void BM_TrainJobStepLoop(benchmark::State& state) {
  const std::int64_t steps = state.range(0);
  JobConfig cfg;
  cfg.name = "bench-step-loop";
  cfg.parallelism.tp = 2;
  cfg.parallelism.pp = 4;
  cfg.parallelism.dp = 16;
  cfg.parallelism.gpus_per_machine = 8;  // 128 ranks on 16 machines
  cfg.base_step_time = Seconds(10);
  for (auto _ : state) {
    Simulator sim;
    Cluster cluster(cfg.parallelism.num_machines(), cfg.parallelism.gpus_per_machine);
    TrainJob job(cfg, &sim, &cluster, 7);
    std::int64_t sink = 0;
    job.AddStepObserver([&sink](const StepRecord& rec) { sink += rec.step; });
    job.Start();
    sim.RunUntil(cfg.base_step_time * steps);
    benchmark::DoNotOptimize(sink);
    if (job.steps_completed() != steps) {
      state.SkipWithError("unexpected step count");
    }
  }
  state.SetItemsProcessed(state.iterations() * steps);
}
BENCHMARK(BM_TrainJobStepLoop)->Arg(10000)->Arg(100000);

// One full dense-campaign seed (Sec. 8.1 production scenario, 9,600 GPUs) at
// one simulated day: fault injection, monitoring, diagnosis, recovery and the
// step loop together — the end-to-end cost the campaign CLI pays per seed.
void BM_DenseCampaignSeed(benchmark::State& state) {
  for (auto _ : state) {
    Scenario scenario(DenseCampaignConfig(/*days=*/1.0, /*seed=*/2024));
    scenario.Run();
    benchmark::DoNotOptimize(scenario.stats().incidents_injected);
  }
}
BENCHMARK(BM_DenseCampaignSeed)->Unit(benchmark::kMillisecond);

// One month-scale dense seed: 30 simulated days on 9,600 GPUs. Exercises the
// quiescence-driven schedule end to end — with monitoring parked while the
// cluster is healthy and checkpoint durability folded lazily, the cost is
// dominated by the ~170 incidents, not the ~130k simulated steps.
void BM_DenseMonthCampaignSeed(benchmark::State& state) {
  for (auto _ : state) {
    ScenarioConfig cfg = DenseCampaignConfig(/*days=*/30.0, /*seed=*/2024);
    cfg.system.metrics_retention = Hours(2);
    Scenario scenario(cfg);
    scenario.Run();
    benchmark::DoNotOptimize(scenario.stats().incidents_injected);
  }
}
BENCHMARK(BM_DenseMonthCampaignSeed)->Unit(benchmark::kMillisecond);

// One fleet-mixed campaign seed: three concurrent jobs (52 machines total)
// with their full per-job control-plane stacks, a shared spare arbiter and
// staggered starts, at half a simulated day — the end-to-end cost the fleet
// CLI pays per seed.
void BM_FleetCampaignSeed(benchmark::State& state) {
  for (auto _ : state) {
    Fleet fleet(FleetMixedConfig(/*days=*/0.5, /*seed=*/2024));
    fleet.Run();
    benchmark::DoNotOptimize(fleet.arbiter().preemptions_total());
  }
}
BENCHMARK(BM_FleetCampaignSeed)->Unit(benchmark::kMillisecond);

// One request/response roundtrip against a live serve daemon on a local
// socket: connect, send, one-seed quickstart campaign (0.02 simulated days),
// receive + decode. This is the service-layer overhead a client pays on top
// of the engine itself (BM_DenseCampaignSeed et al. measure the engine).
void BM_ServeRequestRoundtrip(benchmark::State& state) {
  // One daemon per process, torn down at exit: function-local static so the
  // benchmark registers cheaply and the socket path is per-process unique.
  struct Fixture {
    ServeDaemon daemon;
    std::string socket_path;
    bool ok;
    Fixture()
        : daemon([] {
            ServeOptions opts;
            opts.socket_path =
                "/tmp/byterobust_bench_" + std::to_string(getpid()) + ".sock";
            opts.workers = 1;
            opts.jobs = 1;
            return opts;
          }()),
          socket_path("/tmp/byterobust_bench_" + std::to_string(getpid()) + ".sock") {
      std::string error;
      ok = daemon.Start(&error);
    }
    ~Fixture() { daemon.Drain(); }
  };
  static Fixture fixture;
  if (!fixture.ok) {
    state.SkipWithError("serve daemon failed to start");
    return;
  }
  const std::string request =
      "{\"op\":\"campaign\",\"scenario\":\"quickstart\",\"seeds\":1,\"days\":0.02}";
  for (auto _ : state) {
    std::string response;
    std::string error;
    if (!ServeRoundtrip(fixture.socket_path, request, /*connect_wait_s=*/5.0,
                        /*io_timeout_s=*/60.0, &response, &error)) {
      state.SkipWithError("roundtrip failed");
      return;
    }
    std::string body;
    if (!ExtractJsonStringField(response, "body", &body) || body.empty()) {
      state.SkipWithError("response carried no body");
      return;
    }
    benchmark::DoNotOptimize(body.size());
  }
}
BENCHMARK(BM_ServeRequestRoundtrip)->Unit(benchmark::kMillisecond);

// Sustained service throughput: four concurrent clients hammer one daemon
// (4 executor workers, --jobs 1 engines) with one-seed quickstart campaigns.
// items/sec in the report is campaigns/sec — the service-level throughput
// number ROADMAP's campaign-service item calls for, covering admission,
// queueing, engine execution and response framing under real contention.
void BM_ServeThroughput(benchmark::State& state) {
  struct Fixture {
    ServeDaemon daemon;
    std::string socket_path;
    bool ok;
    Fixture()
        : daemon([] {
            ServeOptions opts;
            opts.socket_path = "/tmp/byterobust_bench_tp_" +
                               std::to_string(getpid()) + ".sock";
            opts.workers = 4;
            opts.jobs = 1;
            return opts;
          }()),
          socket_path("/tmp/byterobust_bench_tp_" + std::to_string(getpid()) +
                      ".sock") {
      std::string error;
      ok = daemon.Start(&error);
    }
    ~Fixture() { daemon.Drain(); }
  };
  static Fixture fixture;
  if (!fixture.ok) {
    state.SkipWithError("serve daemon failed to start");
    return;
  }
  const std::string request =
      "{\"op\":\"campaign\",\"scenario\":\"quickstart\",\"seeds\":1,\"days\":0.02}";
  for (auto _ : state) {
    std::string response;
    std::string error;
    if (!ServeRoundtrip(fixture.socket_path, request, /*connect_wait_s=*/5.0,
                        /*io_timeout_s=*/60.0, &response, &error)) {
      state.SkipWithError("roundtrip failed");
      return;
    }
    std::string body;
    if (!ExtractJsonStringField(response, "body", &body) || body.empty()) {
      state.SkipWithError("response carried no body");
      return;
    }
    benchmark::DoNotOptimize(body.size());
  }
  state.SetItemsProcessed(state.iterations());  // one campaign per iteration
}
BENCHMARK(BM_ServeThroughput)
    ->Threads(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

Topology MakeTopo(int dp) {
  ParallelismConfig cfg;
  cfg.tp = 2;
  cfg.pp = 4;
  cfg.dp = dp;
  cfg.gpus_per_machine = 8;
  return Topology(cfg);
}

void BM_StackAggregation(benchmark::State& state) {
  const Topology topo = MakeTopo(static_cast<int>(state.range(0)));
  const auto stacks = SynthesizeFullPodStacks(topo, topo.world_size() - 1,
                                              HangSite::kTensorCollective);
  AggregationAnalyzer analyzer;
  for (auto _ : state) {
    auto result = analyzer.Analyze(stacks, topo);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int>(stacks.size()));
  state.counters["ranks"] = topo.world_size();
}
BENCHMARK(BM_StackAggregation)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_FindCoveringGroup(benchmark::State& state) {
  const Topology topo = MakeTopo(static_cast<int>(state.range(0)));
  const std::vector<MachineId> machines = topo.MachinesOfGroup(topo.Groups(GroupKind::kPipeline)[0]);
  for (auto _ : state) {
    ParallelGroup group;
    bool found = topo.FindCoveringGroup(machines, &group);
    benchmark::DoNotOptimize(found);
  }
}
BENCHMARK(BM_FindCoveringGroup)->Arg(16)->Arg(64)->Arg(256);

void BM_BackupPlanConstruction(benchmark::State& state) {
  const Topology topo = MakeTopo(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    BackupPlan plan(topo);
    benchmark::DoNotOptimize(plan);
  }
  state.counters["ranks"] = topo.world_size();
}
BENCHMARK(BM_BackupPlanConstruction)->Arg(16)->Arg(64)->Arg(256);

void BM_DualPhaseReplayLocate(benchmark::State& state) {
  const int z = static_cast<int>(state.range(0));
  int m = 1;
  for (int cand = 2; cand * cand <= z; ++cand) {
    if (z % cand == 0) {
      m = cand;
    }
  }
  DualPhaseReplay replay(z, m);
  Rng rng(1);
  for (auto _ : state) {
    auto oracle = DualPhaseReplay::FaultOracle({z / 2}, 1.0, &rng);
    auto outcome = replay.Locate(oracle, Minutes(10));
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_DualPhaseReplayLocate)->Arg(24)->Arg(144)->Arg(1200);

// One correlated fault round-trip over the fault-domain graph at cluster
// scale: strike a spine (flipping the health of every machine beneath it),
// force the health-index + congestion refresh a monitor pass would pay, then
// heal. Bounds the per-event cost of the domain streams in campaign seeds.
void BM_DomainFaultPropagation(benchmark::State& state) {
  const int machines = static_cast<int>(state.range(0));
  Cluster cluster(machines, 8);
  FaultDomainConfig domains;
  domains.machines_per_tor = 8;
  domains.tors_per_spine = 4;
  cluster.AttachFaultDomains(domains);
  const DomainId spine = cluster.fault_domains()->DomainIdAt(DomainLevel::kSpine, 0);
  for (auto _ : state) {
    const DomainFaultEffect effect = DomainInjector::ApplyToDomain(
        DomainFaultKind::kSpineFlap, spine, /*degradation_factor=*/1.0, &cluster, 0);
    benchmark::DoNotOptimize(cluster.SuspectServingMachines().size());
    benchmark::DoNotOptimize(cluster.CongestionFactor());
    DomainInjector::HealDomain(DomainFaultKind::kSpineFlap, spine, &cluster, 0);
    benchmark::DoNotOptimize(effect.affected.size());
  }
  state.SetItemsProcessed(state.iterations() * 32);  // machines per spine
}
BENCHMARK(BM_DomainFaultPropagation)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace byterobust

BENCHMARK_MAIN();

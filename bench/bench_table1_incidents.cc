// Table 1 + Table 2 reproduction: incident-symptom distribution of the fault
// injector against the paper's three-month production statistics, and the
// root-cause mix of Table 2.

#include <cstdio>
#include <map>

#include "src/common/table.h"
#include "src/faults/fault_injector.h"

using namespace byterobust;

int main() {
  std::printf("=== Table 1: distribution of training incidents ===\n");
  std::printf("(sampled from the fault injector; paper column = production data)\n\n");

  FaultInjectorConfig cfg;
  FaultInjector injector(cfg, Rng(1));
  std::vector<MachineId> serving(1200);
  for (int i = 0; i < 1200; ++i) {
    serving[static_cast<std::size_t>(i)] = i;
  }

  // Match the paper's manual-restart share (17.3%) by drawing both clocks.
  const int total = 100000;
  const int manual = static_cast<int>(total * 0.173);
  std::map<int, int> counts;
  std::map<int, int> user_code;
  for (int i = 0; i < total - manual; ++i) {
    const Incident inc = injector.SampleFailure(0, serving);
    ++counts[static_cast<int>(inc.symptom)];
    if (inc.root_cause == RootCause::kUserCode) {
      ++user_code[static_cast<int>(inc.symptom)];
    }
  }
  counts[static_cast<int>(IncidentSymptom::kCodeDataAdjustment)] = manual;

  TablePrinter table({"Category", "Incident Symptom", "Sampled %", "Paper %"});
  for (const SymptomStats& s : PaperSymptomStats()) {
    const double sampled =
        static_cast<double>(counts[static_cast<int>(s.symptom)]) / total;
    table.AddRow({CategoryName(CategoryOf(s.symptom)), SymptomName(s.symptom),
                  FormatPercent(sampled, 1), FormatPercent(s.paper_fraction, 1)});
  }
  table.Print();

  std::printf("\n=== Table 2: root cause of incidents (user-code share) ===\n");
  std::printf("(paper's Table 2 samples >2000-GPU jobs; the injector scales the\n");
  std::printf(" per-symptom probabilities by %.2f to match the campaign-wide rollback\n",
              cfg.user_code_scale);
  std::printf(" share of Table 4)\n\n");
  TablePrinter t2({"Symptom", "Sampled user-code share", "Table 2 raw share"});
  for (IncidentSymptom s : {IncidentSymptom::kJobHang, IncidentSymptom::kCudaError,
                            IncidentSymptom::kNanValue}) {
    const int n = counts[static_cast<int>(s)];
    const double share =
        n > 0 ? static_cast<double>(user_code[static_cast<int>(s)]) / n : 0.0;
    t2.AddRow({SymptomName(s), FormatPercent(share, 1),
               FormatPercent(UserCodeProbability(s), 1)});
  }
  t2.Print();
  return 0;
}

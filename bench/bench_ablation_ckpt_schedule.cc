// Ablation: the Fig. 8 checkpoint operation schedule — chunked backup
// interleaving inside idle communication windows vs bulk transfer, and the
// sensitivity of the checkpoint stall to PCIe bandwidth.

#include <cstdio>

#include "src/ckpt/op_schedule.h"
#include "src/ckpt/size_model.h"
#include "src/common/table.h"
#include "src/training/job_config.h"

using namespace byterobust;

int main() {
  std::printf("=== Ablation: checkpoint operation scheduling (Fig. 8) ===\n\n");

  const JobConfig job = Table5Job70B(128);
  OpScheduleInputs in;
  in.forward = Seconds(1.4);
  in.backward = Seconds(2.6);
  in.optimizer = Seconds(0.3);
  in.model_bytes = CheckpointSizeModel::ModelBytesPerRank(job);
  in.optimizer_bytes = CheckpointSizeModel::OptimizerBytesPerRank(job);

  const OpSchedule interleaved = BuildCheckpointSchedule(in, /*interleave_backup=*/true);
  const OpSchedule bulk = BuildCheckpointSchedule(in, /*interleave_backup=*/false);

  std::printf("one training step (%s), per-rank payload %.2f GB:\n\n", job.name.c_str(),
              (in.model_bytes + in.optimizer_bytes) / 1e9);
  std::printf("-- interleaved schedule (ByteRobust, Fig. 8) --\n%s\n",
              interleaved.Render().c_str());
  std::printf("-- bulk-backup baseline --\n%s\n", bulk.Render().c_str());

  TablePrinter table({"Schedule", "Step w/o ckpt (s)", "Step w/ ckpt (s)", "Blocking (s)",
                      "Feasible"});
  for (const auto* s : {&interleaved, &bulk}) {
    table.AddRow({s == &interleaved ? "chunked interleave" : "bulk backup",
                  FormatDouble(ToSeconds(s->step_time_without_ckpt), 2),
                  FormatDouble(ToSeconds(s->step_time_with_ckpt), 2),
                  FormatDouble(ToSeconds(s->BlockingTime()), 3),
                  s->ResourceFeasible() ? "yes" : "NO"});
  }
  table.Print();

  std::printf("\nsensitivity: blocking vs PCIe bandwidth (chunked interleave)\n");
  TablePrinter sweep({"PCIe (GB/s)", "D2H time (s)", "Blocking (s)"});
  for (double pcie : {30.0, 16.0, 8.0, 4.0, 2.0, 1.0}) {
    OpScheduleInputs v = in;
    v.pcie_gbps = pcie;
    const OpSchedule s = BuildCheckpointSchedule(v, true);
    sweep.AddRow({FormatDouble(pcie, 0),
                  FormatDouble((v.model_bytes + v.optimizer_bytes) / (pcie * 1e9), 2),
                  FormatDouble(ToSeconds(s.BlockingTime()), 3)});
  }
  sweep.Print();

  std::printf("\nThe chunked interleave hides both the backup exchange (in idle comm\n");
  std::printf("windows) and the D2H copy (on the dedicated stream): blocking stays\n");
  std::printf("near zero until D2H itself outlasts forward+backward. The bulk baseline\n");
  std::printf("monopolizes the training channel after backward and pays the transfer\n");
  std::printf("on the critical path — the gap Table 8 attributes to ByteRobust save.\n");
  return 0;
}

// Table 8 reproduction: checkpointing efficiency of ByteRobust save vs
// Memory save (Gemini-style) and Megatron save, on the Table 5 sparse-LLM
// setups. Blocking time is the per-iteration checkpoint stall; MFU is
// relative to training without checkpointing.

#include <cstdio>

#include "src/ckpt/cost_model.h"
#include "src/ckpt/size_model.h"
#include "src/common/table.h"
#include "src/training/job_config.h"

using namespace byterobust;

int main() {
  std::printf("=== Table 8: checkpointing efficiency (every-iteration saves) ===\n\n");

  struct Setup {
    JobConfig config;
    SimDuration step_time;
    const char* paper_rows;  // paper blocking (s) megatron/memory/byterobust
  };
  const Setup setups[] = {
      {Table5Job70B(128), Seconds(4.3), "6.77 / 1.84 / 0.04"},
      {Table5Job70B(256), Seconds(4.3), "7.14 / 1.69 / 0.03"},
      {Table5Job256B(512), Seconds(9.8), "13.02 / 0.22 / 0.01"},
      {Table5Job256B(1024), Seconds(9.8), "12.98 / 0.18 / 0.02"},
  };

  const CheckpointCostModel model;
  TablePrinter table({"Model/Scale", "Approach", "Blocking Time (s)", "MFU (%)",
                      "Paper blocking M/G/B (s)"});
  for (const Setup& s : setups) {
    bool first = true;
    for (CkptApproach approach : {CkptApproach::kMegatronSave, CkptApproach::kMemorySave,
                                  CkptApproach::kByteRobustSave}) {
      const CkptCost cost = model.Evaluate(approach, s.config, s.step_time);
      table.AddRow({first ? s.config.name : "", CkptApproachName(approach),
                    FormatDouble(ToSeconds(cost.blocking_per_step), 2),
                    FormatDouble(cost.relative_mfu * 100.0, 2),
                    first ? s.paper_rows : ""});
      first = false;
    }
  }
  table.Print();

  std::printf("\nper-rank checkpoint payloads (model + ZeRO-1 optimizer shards):\n");
  for (const Setup& s : setups) {
    std::printf("  %-13s %.2f GB model + %.2f GB optimizer per rank, %.0f GB whole job\n",
                s.config.name.c_str(), CheckpointSizeModel::ModelBytesPerRank(s.config) / 1e9,
                CheckpointSizeModel::OptimizerBytesPerRank(s.config) / 1e9,
                CheckpointSizeModel::TotalJobBytes(s.config) / 1e9);
  }

  std::printf("\nShape check vs paper: ByteRobust save blocks for hundredths of a second\n");
  std::printf("(>99%% relative MFU) by isolating D2H on a dedicated stream and gating the\n");
  std::printf("optimizer step only on its own save; Memory save blocks for the full D2H\n");
  std::printf("snapshot; Megatron save serializes synchronously and loses ~60%% MFU.\n");
  std::printf("Known deviation: the paper's Memory-save blocking *shrinks* at 256B scale\n");
  std::printf("(0.22 s), which depends on unpublished MoE sharding details; our model\n");
  std::printf("keeps it proportional to the per-rank payload (see EXPERIMENTS.md).\n");
  return 0;
}

// Ablation: data-driven over-eviction design choices (DESIGN.md items 3/4).
//
// (a) Fail-slow voting rounds: single-round aggregation vs the paper's
//     5-round cumulative voting, under sampling noise.
// (b) Over-eviction vs exact localization: machines evicted and culprit
//     containment when isolating at parallel-group granularity.

#include <cstdio>

#include "src/analyzer/aggregation.h"
#include "src/common/table.h"
#include "src/tracer/stack_synth.h"

using namespace byterobust;

namespace {

Topology MakeTopology() {
  ParallelismConfig cfg;
  cfg.tp = 2;
  cfg.pp = 4;
  cfg.dp = 8;
  cfg.gpus_per_machine = 2;
  return Topology(cfg);
}

bool GroupContains(const Topology& topo, GroupKind kind, int index, MachineId machine) {
  for (const ParallelGroup& g : topo.Groups(kind)) {
    if (g.index != index) {
      continue;
    }
    for (MachineId m : topo.MachinesOfGroup(g)) {
      if (m == machine) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

int main() {
  const Topology topo = MakeTopology();
  AggregationAnalyzer analyzer;

  std::printf("=== Ablation (a): fail-slow voting rounds vs localization accuracy ===\n");
  std::printf("(degrader on a random machine; every ~3rd stack snapshot contains one\n");
  std::printf(" noisy false outlier)\n\n");
  TablePrinter rounds_table({"Voting rounds", "Correct isolation", "Wrong/none"});
  for (int rounds : {1, 2, 3, 5, 7}) {
    int correct = 0;
    const int trials = 300;
    for (int t = 0; t < trials; ++t) {
      const MachineId degrader = static_cast<MachineId>(t % topo.num_machines());
      FailSlowVoter voter(rounds);
      for (int r = 0; r < rounds; ++r) {
        const auto stacks = SynthesizeFailSlowStacks(
            topo, degrader, static_cast<std::uint64_t>(t) * 1000 + static_cast<std::uint64_t>(r));
        voter.AddRound(analyzer.Analyze(stacks, topo));
      }
      GroupKind kind;
      int index;
      if (voter.Decide(&kind, &index) && GroupContains(topo, kind, index, degrader)) {
        ++correct;
      }
    }
    rounds_table.AddRow({FormatInt(rounds), FormatPercent(static_cast<double>(correct) / trials, 1),
                         FormatPercent(1.0 - static_cast<double>(correct) / trials, 1)});
  }
  rounds_table.Print();

  std::printf("\n=== Ablation (b): over-eviction vs exact localization ===\n");
  std::printf("(hang seeded at each rank in turn; aggregation isolates the shared\n");
  std::printf(" parallel group)\n\n");
  int culprit_contained = 0;
  int total_evicted = 0;
  int runs = 0;
  for (Rank culprit = 0; culprit < topo.world_size(); ++culprit) {
    const auto stacks = SynthesizeHangStacks(topo, culprit, HangSite::kTensorCollective);
    const AggregationResult result = analyzer.Analyze(stacks, topo);
    if (result.machines_to_evict.empty()) {
      continue;
    }
    ++runs;
    total_evicted += static_cast<int>(result.machines_to_evict.size());
    const MachineId culprit_machine = topo.MachineOfRank(culprit);
    for (MachineId m : result.machines_to_evict) {
      if (m == culprit_machine) {
        ++culprit_contained;
        break;
      }
    }
  }
  TablePrinter evict_table({"Metric", "Value"});
  evict_table.AddRow({"hang cases isolated", FormatInt(runs)});
  evict_table.AddRow({"culprit machine inside evicted set",
                      FormatPercent(static_cast<double>(culprit_contained) / runs, 1)});
  evict_table.AddRow({"avg machines evicted (over-eviction)",
                      FormatDouble(static_cast<double>(total_evicted) / runs, 2)});
  evict_table.AddRow({"exact localization would evict", "1.00"});
  evict_table.Print();

  std::printf("\nTrade-off (paper Sec. 9): over-eviction spends ~%d false-positive\n",
              total_evicted / runs - 1);
  std::printf("machines per incident but always contains the culprit, converting hours\n");
  std::printf("of root-cause hunting into a minutes-scale warm-standby swap. Multi-round\n");
  std::printf("voting is what makes fail-slow isolation reliable under snapshot noise;\n");
  std::printf("single-round aggregation misfires on the noisy rounds.\n");
  return 0;
}

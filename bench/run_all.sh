#!/usr/bin/env bash
# Runs the full bench/ binary set from a finished build.
#
#   bench/run_all.sh [build_dir]
#
# - bench_micro_perf (google-benchmark) runs with --benchmark_format=json and
#   its results land in BENCH_micro.json at the repo root — the machine-
#   readable perf trajectory that future optimisation PRs diff against.
# - The table/figure reproduction reports write their stdout under
#   <build_dir>/bench_reports/ for eyeballing.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
bench_dir="${build_dir}/bench"

if [[ ! -d "${bench_dir}" ]]; then
  echo "error: ${bench_dir} not found — build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

report_dir="${build_dir}/bench_reports"
mkdir -p "${report_dir}"

micro="${bench_dir}/bench_micro_perf"
if [[ -x "${micro}" ]]; then
  echo "== bench_micro_perf -> BENCH_micro.json"
  "${micro}" --benchmark_format=json --benchmark_out="${repo_root}/BENCH_micro.json" \
      --benchmark_out_format=json > /dev/null
else
  echo "error: ${micro} not built" >&2
  exit 1
fi

for bin in "${bench_dir}"/bench_*; do
  name="$(basename "${bin}")"
  [[ -x "${bin}" && "${name}" != "bench_micro_perf" ]] || continue
  echo "== ${name} -> bench_reports/${name}.txt"
  "${bin}" > "${report_dir}/${name}.txt"
done

echo "done: $(wc -c < "${repo_root}/BENCH_micro.json") bytes in BENCH_micro.json," \
     "reports in ${report_dir}/"

// Fig. 10 + Fig. 11 reproduction: cumulative ETTR, sliding-window ETTR and
// relative MFU for the dense and MoE production pretraining jobs.

#include <cstdio>

#include "src/common/table.h"
#include "src/core/production_presets.h"

using namespace byterobust;

namespace {

void Report(const char* name, Scenario& scenario) {
  ByteRobustSystem& sys = scenario.system();
  const SimTime end = sys.sim().Now();

  std::printf("\n--- %s ---\n", name);
  TablePrinter table({"Normalized Step", "Cumulative ETTR", "Sliding ETTR (1h)",
                      "Relative MFU"});
  const auto& samples = sys.mfu_series().samples();
  // Relative MFU is baselined on the initial (naive-code) MFU; degraded
  // stretches would otherwise drag the denominator below the Fig. 11 curve.
  const double min_mfu = samples.empty() ? 0.0 : samples.front().mfu;
  const int points = 20;
  for (int i = 1; i <= points; ++i) {
    const SimTime t = end / points * i;
    // Find the MFU sample nearest to t.
    double mfu = 0.0;
    for (const auto& s : samples) {
      if (s.time <= t) {
        mfu = s.mfu;
      } else {
        break;
      }
    }
    // Cumulative ETTR at time t == productive time within [0, t] over t,
    // which is a sliding window of width t ending at t.
    table.AddRow({FormatDouble(static_cast<double>(i) / points, 2),
                  FormatDouble(sys.ettr().SlidingEttr(t, t), 3),
                  FormatDouble(sys.ettr().SlidingEttr(t, Hours(1)), 3),
                  min_mfu > 0 ? FormatDouble(mfu / min_mfu, 2) : "-"});
  }
  table.Print();
  std::printf("final cumulative ETTR: %.3f (paper plateau: up to 0.97)\n",
              sys.ettr().CumulativeEttr(end));
  std::printf("relative MFU gain: %.2fx (paper: 1.25x dense, 1.58x MoE)\n",
              sys.mfu_series().MaxMfu() / (min_mfu > 0 ? min_mfu : 1.0));
  std::printf("incidents: %d, runs: %d, evictions: %d\n",
              scenario.stats().incidents_injected, scenario.system().job().run_count(),
              scenario.system().controller().evictions_total());
}

}  // namespace

int main() {
  std::printf("=== Fig. 10/11: ETTR and relative MFU, production campaigns ===\n");
  std::printf("(dense 70B: 90 days; MoE 200B: 30 days; 9,600 GPUs each)\n");

  Scenario dense(DenseCampaignConfig(90.0, /*seed=*/41));
  dense.Run();
  Report("Dense 70B, 3 months", dense);

  Scenario moe(MoeCampaignConfig(30.0, /*seed=*/43));
  moe.Run();
  Report("MoE 200B, 1 month", moe);

  std::printf("\nShape check vs paper: cumulative ETTR plateaus near 0.97 with dips on\n");
  std::printf("incident clusters; sliding-window ETTR fluctuates with each recovery;\n");
  std::printf("MoE ETTR trails dense (more custom optimizations => more rollbacks and\n");
  std::printf("manual restarts) while its relative MFU gain is larger (1.58x vs 1.25x).\n");
  return 0;
}

// Fig. 12 reproduction: weighted-average scheduling (WAS) time upon machine
// eviction events for requeue / reschedule / oracle / ByteRobust.
//
// Per the paper's methodology (Sec. 8.2.1): identify the P99 faulty-machine
// count N per scale, simulate evictions of 1..N machines, add a catastrophic
// switch failure (32 machines evicted) fixed at 1% probability, and weight
// the scenarios by the binomial failure model of Sec. 6.2. The model itself
// lives in src/recovery/was_model.h (shared with the byterobust CLI).

#include <cstdio>
#include <string>

#include "src/common/table.h"
#include "src/recovery/was_model.h"

using namespace byterobust;

int main() {
  std::printf("=== Fig. 12: weighted average scheduling (WAS) time on eviction ===\n\n");

  TablePrinter table({"Scale", "P99 N", "Requeue (s)", "Reschedule (s)", "Oracle (s)",
                      "ByteRobust (s)", "BR vs requeue", "BR vs oracle"});
  for (int machines : {128, 256, 512, 1024}) {
    const WasEstimate est = EstimateWas(machines);
    char scale[32];
    std::snprintf(scale, sizeof(scale), "%dx16", machines);
    std::string br_vs_oracle = "+";
    br_vs_oracle += FormatPercent(est.byterobust_s / est.oracle_s - 1.0, 2);
    table.AddRow({scale, FormatInt(est.p99_evictions), FormatDouble(est.requeue_s, 0),
                  FormatDouble(est.reschedule_s, 0), FormatDouble(est.oracle_s, 0),
                  FormatDouble(est.byterobust_s, 0),
                  FormatDouble(est.requeue_s / est.byterobust_s, 2) + "x",
                  br_vs_oracle});
  }
  table.Print();

  std::printf("\nShape check vs paper: warm standby cuts recovery ~10.9x vs requeue and\n");
  std::printf("~5.4x vs reschedule, and lands within ~5%% of the unlimited-standby\n");
  std::printf("oracle; requeue's WAS grows markedly with scale while ByteRobust's\n");
  std::printf("stays nearly constant.\n");
  return 0;
}

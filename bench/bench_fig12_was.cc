// Fig. 12 reproduction: weighted-average scheduling (WAS) time upon machine
// eviction events for requeue / reschedule / oracle / ByteRobust.
//
// Per the paper's methodology (Sec. 8.2.1): identify the P99 faulty-machine
// count N per scale, simulate evictions of 1..N machines, add a catastrophic
// switch failure (32 machines evicted) fixed at 1% probability, and weight
// the scenarios by the binomial failure model of Sec. 6.2.

#include <cmath>
#include <cstdio>
#include <vector>

#include "src/common/rng.h"
#include "src/common/table.h"
#include "src/recovery/restart_model.h"
#include "src/recovery/warm_standby.h"

using namespace byterobust;

namespace {

// Binomial pmf via the same recurrence the quantile uses.
std::vector<double> BinomialPmf(int n, double p, int up_to) {
  std::vector<double> pmf(static_cast<std::size_t>(up_to) + 1);
  double v = std::pow(1.0 - p, n);
  pmf[0] = v;
  for (int k = 0; k < up_to; ++k) {
    v *= static_cast<double>(n - k) / static_cast<double>(k + 1) * (p / (1.0 - p));
    pmf[static_cast<std::size_t>(k) + 1] = v;
  }
  return pmf;
}

}  // namespace

int main() {
  std::printf("=== Fig. 12: weighted average scheduling (WAS) time on eviction ===\n\n");

  const RestartCostModel model;
  const StandbyConfig standby;
  const double p = standby.daily_machine_failure_prob;
  const int catastrophic_machines = 32;
  const double catastrophic_weight = 0.01;

  TablePrinter table({"Scale", "P99 N", "Requeue (s)", "Reschedule (s)", "Oracle (s)",
                      "ByteRobust (s)", "BR vs requeue", "BR vs oracle"});
  for (int machines : {128, 256, 512, 1024}) {
    const int n_p99 = std::max(1, BinomialQuantile(machines, p, standby.quantile));
    // Weights for k = 1..N evictions, conditioned on at least one failure,
    // scaled to 99%; the catastrophic case takes the remaining 1%.
    std::vector<double> pmf = BinomialPmf(machines, p, n_p99);
    double mass = 0.0;
    for (int k = 1; k <= n_p99; ++k) {
      mass += pmf[static_cast<std::size_t>(k)];
    }
    double requeue = 0.0;
    double reschedule = 0.0;
    double oracle = 0.0;
    double ours = 0.0;
    for (int k = 1; k <= n_p99; ++k) {
      const double w =
          (1.0 - catastrophic_weight) * pmf[static_cast<std::size_t>(k)] / mass;
      requeue += w * ToSeconds(model.RequeueTime(machines));
      reschedule += w * ToSeconds(model.RescheduleTime(machines, k));
      oracle += w * ToSeconds(model.StandbyWakeTime(k));
      // k <= N evictions: warm standbys cover everything.
      ours += w * ToSeconds(model.StandbyWakeTime(k));
    }
    // Catastrophic switch failure: all 32 machines behind the switch evicted.
    requeue += catastrophic_weight * ToSeconds(model.RequeueTime(machines));
    reschedule +=
        catastrophic_weight * ToSeconds(model.RescheduleTime(machines, catastrophic_machines));
    oracle += catastrophic_weight * ToSeconds(model.StandbyWakeTime(catastrophic_machines));
    // ByteRobust reschedules only the shortfall beyond the standby pool.
    ours += catastrophic_weight *
            ToSeconds(model.RescheduleTime(machines, catastrophic_machines - n_p99));

    char scale[32];
    std::snprintf(scale, sizeof(scale), "%dx16", machines);
    table.AddRow({scale, FormatInt(n_p99), FormatDouble(requeue, 0),
                  FormatDouble(reschedule, 0), FormatDouble(oracle, 0), FormatDouble(ours, 0),
                  FormatDouble(requeue / ours, 2) + "x",
                  "+" + FormatPercent(ours / oracle - 1.0, 2)});
  }
  table.Print();

  std::printf("\nShape check vs paper: warm standby cuts recovery ~10.9x vs requeue and\n");
  std::printf("~5.4x vs reschedule, and lands within ~5%% of the unlimited-standby\n");
  std::printf("oracle; requeue's WAS grows markedly with scale while ByteRobust's\n");
  std::printf("stays nearly constant.\n");
  return 0;
}

# Sanitizer-mode resolution and mutual-exclusion validation for
# BYTEROBUST_SANITIZE.
#
# Modes (case-insensitive):
#   OFF             no sanitizer (also FALSE/0/empty)
#   ON | address    AddressSanitizer + UBSan (the legacy boolean meant this)
#   thread | tsan   ThreadSanitizer
#
# byterobust_resolve_sanitize(<mode> <out_compile_list> <out_link_list>)
# maps the mode to compile/link flag lists and FATAL_ERRORs on contradictory
# combinations: TSan and ASan each claim the whole shadow address space, so a
# process cannot run both — configuring BYTEROBUST_SANITIZE=thread while ASan
# flags ride in via CMAKE_CXX_FLAGS (or vice versa) must fail loudly at
# configure time, not link time.
#
# The module doubles as its own unit under test (ctest
# `cmake_sanitize_exclusion`, driver tools/check_sanitize_config.cmake): in
# script mode it resolves -DBR_SANITIZE_MODE against -DBR_AMBIENT_FLAGS and
# prints the result, so both the accept and reject paths are exercised
# without configuring a whole project.

function(byterobust_resolve_sanitize mode out_compile out_link)
  string(TOLOWER "${mode}" kind)
  if(kind STREQUAL "on" OR kind STREQUAL "true" OR kind STREQUAL "1"
     OR kind STREQUAL "address" OR kind STREQUAL "asan")
    set(kind "address")
  elseif(kind STREQUAL "thread" OR kind STREQUAL "tsan")
    set(kind "thread")
  elseif(kind STREQUAL "off" OR kind STREQUAL "false" OR kind STREQUAL "0"
         OR kind STREQUAL "")
    set(kind "off")
  else()
    message(FATAL_ERROR
        "BYTEROBUST_SANITIZE=${mode} is not a recognized sanitizer mode. "
        "Use OFF, address (or the legacy ON) for ASan+UBSan, or thread for TSan.")
  endif()

  # Flags arriving from the environment/toolchain, outside our option.
  set(ambient "${CMAKE_CXX_FLAGS} ${CMAKE_C_FLAGS} ${CMAKE_EXE_LINKER_FLAGS} "
              "${CMAKE_SHARED_LINKER_FLAGS}")
  if(kind STREQUAL "thread" AND ambient MATCHES "-fsanitize=[a-z_,]*address")
    message(FATAL_ERROR
        "BYTEROBUST_SANITIZE=thread is mutually exclusive with the "
        "AddressSanitizer flags already present in your compiler/linker flags "
        "(found '-fsanitize=...address...'): TSan and ASan each shadow the "
        "entire address space and cannot share a process. Drop the ASan flags "
        "or configure BYTEROBUST_SANITIZE=address instead.")
  endif()
  if(kind STREQUAL "address" AND ambient MATCHES "-fsanitize=[a-z_,]*thread")
    message(FATAL_ERROR
        "BYTEROBUST_SANITIZE=${mode} (ASan+UBSan) is mutually exclusive with "
        "the ThreadSanitizer flags already present in your compiler/linker "
        "flags (found '-fsanitize=...thread...'). Drop the TSan flags or "
        "configure BYTEROBUST_SANITIZE=thread instead.")
  endif()

  if(kind STREQUAL "address")
    set(${out_compile} "-fsanitize=address,undefined;-fno-omit-frame-pointer;-g" PARENT_SCOPE)
    set(${out_link} "-fsanitize=address,undefined" PARENT_SCOPE)
  elseif(kind STREQUAL "thread")
    set(${out_compile} "-fsanitize=thread;-fno-omit-frame-pointer;-g" PARENT_SCOPE)
    set(${out_link} "-fsanitize=thread" PARENT_SCOPE)
  else()
    set(${out_compile} "" PARENT_SCOPE)
    set(${out_link} "" PARENT_SCOPE)
  endif()
  set(BYTEROBUST_SANITIZE_KIND "${kind}" PARENT_SCOPE)
endfunction()

# Script-mode unit hook:
#   cmake -DBR_SANITIZE_MODE=<mode> [-DBR_AMBIENT_FLAGS=<flags>] -P SanitizeFlags.cmake
if(CMAKE_SCRIPT_MODE_FILE AND CMAKE_SCRIPT_MODE_FILE STREQUAL CMAKE_CURRENT_LIST_FILE)
  set(CMAKE_CXX_FLAGS "${BR_AMBIENT_FLAGS}")
  byterobust_resolve_sanitize("${BR_SANITIZE_MODE}" unit_compile unit_link)
  message(STATUS "resolved mode=${BYTEROBUST_SANITIZE_KIND} "
                 "compile=[${unit_compile}] link=[${unit_link}]")
endif()

#include "src/training/train_job.h"

#include <cmath>
#include <stdexcept>

#include "src/common/log.h"

namespace byterobust {

const char* JobRunStateName(JobRunState state) {
  switch (state) {
    case JobRunState::kStopped:
      return "stopped";
    case JobRunState::kRunning:
      return "running";
    case JobRunState::kHung:
      return "hung";
    case JobRunState::kCrashed:
      return "crashed";
  }
  return "unknown";
}

TrainJob::TrainJob(const JobConfig& config, Simulator* sim, Cluster* cluster, std::uint64_t seed)
    : config_(config),
      sim_(sim),
      cluster_(cluster),
      topology_(SharedTopology(config.parallelism)),
      perf_(config),
      loss_(config, seed) {
  if (cluster_->num_training_slots() < config.parallelism.num_machines()) {
    throw std::invalid_argument("cluster smaller than the job's machine demand");
  }
  versions_.push_back(CodeVersion{0, 1.0, false, 0, false, "initial naive version"});
}

void TrainJob::Start() {
  if (state_ == JobRunState::kRunning) {
    return;
  }
  state_ = JobRunState::kRunning;
  ++run_count_;
  nan_loss_ = false;  // a restart clears transient NaN inputs
  hang_culprit_ = -1;
  last_progress_time_ = sim_->Now();
  BR_LOG_INFO("job", "%s run #%d starting at step %lld (code v%d, eff=%.2f)",
              config_.name.c_str(), run_count_, static_cast<long long>(resume_step_),
              current_version().id, current_version().efficiency);
  ScheduleNextStep();
  NotifyStateObservers();
}

void TrainJob::Stop() {
  if (pending_step_ != kInvalidEventId) {
    sim_->Cancel(pending_step_);
    pending_step_ = kInvalidEventId;
  }
  state_ = JobRunState::kStopped;
  NotifyStateObservers();
}

void TrainJob::Crash() {
  if (pending_step_ != kInvalidEventId) {
    sim_->Cancel(pending_step_);
    pending_step_ = kInvalidEventId;
  }
  state_ = JobRunState::kCrashed;
  NotifyStateObservers();
}

void TrainJob::Hang(Rank culprit) {
  if (pending_step_ != kInvalidEventId) {
    sim_->Cancel(pending_step_);
    pending_step_ = kInvalidEventId;
  }
  state_ = JobRunState::kHung;
  hang_culprit_ = culprit;
  NotifyStateObservers();
}

void TrainJob::NotifyStateObservers() {
  for (const auto& obs : state_observers_) {
    obs(state_);
  }
}

void TrainJob::RollbackToStep(std::int64_t step) {
  if (step < 0 || step > max_step_reached_) {
    throw std::invalid_argument("rollback step outside [0, max_step_reached]");
  }
  resume_step_ = step;
}

void TrainJob::ApplyCodeVersion(const CodeVersion& version) { versions_.push_back(version); }

bool TrainJob::HasVersion(int id) const {
  for (const CodeVersion& v : versions_) {
    if (v.id == id) {
      return true;
    }
  }
  return false;
}

bool TrainJob::RollbackCodeVersion() {
  if (versions_.size() <= 1) {
    return false;
  }
  versions_.pop_back();
  return true;
}

double TrainJob::CurrentMfu() const {
  return perf_.Mfu(current_version().efficiency, *cluster_);
}

SimDuration TrainJob::CurrentStepTime() const {
  return perf_.StepTime(current_version().efficiency, *cluster_);
}

void TrainJob::ScheduleNextStep() {
  step_start_ = sim_->Now();
  pending_step_ = sim_->Schedule(CurrentStepTime(), [this] { CompleteStep(); });
}

void TrainJob::CompleteStep() {
  pending_step_ = kInvalidEventId;
  if (state_ != JobRunState::kRunning) {
    return;
  }
  FinishOneStep();

  // Batched execution: while the job stays healthy, run every whole step that
  // ends strictly before the next pending simulator event (and within the run
  // horizon) inline, advancing the clock directly instead of paying one
  // closure + heap round-trip per step. Strict inequality preserves dispatch
  // semantics exactly: a step ending *at* the next event's timestamp goes
  // through the scheduler, so (time, schedule order) ties resolve as before.
  // Observers run at the step's own end time (the clock is advanced first)
  // and may schedule events or mutate the job; the loop re-reads both bounds
  // every iteration, so the moment an observer schedules something earlier or
  // stops/crashes/hangs the job, batching ends.
  if (config_.batched_stepping) {
    while (state_ == JobRunState::kRunning && !sim_->stop_requested()) {
      const SimDuration step_time = CurrentStepTime();
      const SimTime end = sim_->Now() + step_time;
      if (end > sim_->horizon() || end >= sim_->NextEventTime()) {
        break;
      }
      step_start_ = sim_->Now();
      sim_->AdvanceTo(end);
      FinishOneStep();
    }
  }
  if (state_ == JobRunState::kRunning) {
    ScheduleNextStep();
  }
}

void TrainJob::FinishOneStep() {
  StepRecord rec;
  rec.step = resume_step_;
  rec.start = step_start_;
  rec.end = sim_->Now();
  rec.mfu = CurrentMfu();
  rec.is_nan = nan_loss_;
  rec.loss = nan_loss_ ? std::nan("") : loss_.LossAt(rec.step);
  rec.grad_norm = nan_loss_ ? std::nan("") : loss_.GradNormFromLoss(rec.step, rec.loss);
  rec.recompute = rec.step < max_step_reached_;
  rec.run_id = run_count_;

  ++resume_step_;
  ++steps_completed_;
  max_step_reached_ = std::max(max_step_reached_, resume_step_);
  last_progress_time_ = rec.end;

  for (const auto& obs : observers_) {
    obs(rec);
  }
}

}  // namespace byterobust

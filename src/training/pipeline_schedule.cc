#include "src/training/pipeline_schedule.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

namespace byterobust {

double IdealBubbleFraction(int stages, int microbatches) {
  if (stages <= 0 || microbatches <= 0) {
    return 0.0;
  }
  return static_cast<double>(stages - 1) / static_cast<double>(microbatches + stages - 1);
}

PipelineSchedule::PipelineSchedule(const PipelineScheduleConfig& config) : config_(config) {
  if (config.stages < 1 || config.microbatches < 1 || config.forward_time <= 0 ||
      config.backward_time <= 0) {
    throw std::invalid_argument("invalid pipeline schedule config");
  }
  Build();
}

void PipelineSchedule::Build() {
  const int p = config_.stages;
  const int m = config_.microbatches;

  // Per-stage 1F1B op order: W_s = min(p - s, m) warmup forwards, then
  // alternating backward/forward, then the backward drain.
  std::vector<std::vector<MicroOp>> plan(static_cast<std::size_t>(p));
  for (int s = 0; s < p; ++s) {
    const int warmup = std::min(p - s, m);
    int next_f = 0;
    int next_b = 0;
    auto& seq = plan[static_cast<std::size_t>(s)];
    for (int i = 0; i < warmup; ++i) {
      seq.push_back({MicroOpKind::kForward, s, next_f++, 0, 0});
    }
    while (next_b < m) {
      seq.push_back({MicroOpKind::kBackward, s, next_b++, 0, 0});
      if (next_f < m) {
        seq.push_back({MicroOpKind::kForward, s, next_f++, 0, 0});
      }
    }
  }

  // Relax start times until the DAG stabilizes. Each op waits for the
  // previous op on its own stage, plus its cross-stage dependency:
  // forward(mb, s) after forward(mb, s-1); backward(mb, s) after
  // backward(mb, s+1) (the last stage's backward follows its own forward).
  auto end_of = [&plan](MicroOpKind kind, int stage, int mb) -> SimTime {
    for (const MicroOp& op : plan[static_cast<std::size_t>(stage)]) {
      if (op.kind == kind && op.microbatch == mb) {
        return op.end;
      }
    }
    return 0;
  };

  bool changed = true;
  int guard = 0;
  while (changed && guard++ < 4 * p * m + 8) {
    changed = false;
    for (int s = 0; s < p; ++s) {
      SimTime stage_cursor = 0;
      for (MicroOp& op : plan[static_cast<std::size_t>(s)]) {
        SimTime dep = 0;
        if (op.kind == MicroOpKind::kForward) {
          if (s > 0) {
            dep = end_of(MicroOpKind::kForward, s - 1, op.microbatch);
          }
        } else {
          dep = s + 1 < p ? end_of(MicroOpKind::kBackward, s + 1, op.microbatch)
                          : end_of(MicroOpKind::kForward, s, op.microbatch);
        }
        const SimTime start = std::max(stage_cursor, dep);
        const SimDuration dur = op.kind == MicroOpKind::kForward ? config_.forward_time
                                                                 : config_.backward_time;
        if (start != op.start || start + dur != op.end) {
          op.start = start;
          op.end = start + dur;
          changed = true;
        }
        stage_cursor = op.end;
      }
    }
  }

  ops_.clear();
  for (const auto& seq : plan) {
    ops_.insert(ops_.end(), seq.begin(), seq.end());
  }
}

SimDuration PipelineSchedule::TotalTime() const {
  SimTime total = 0;
  for (const MicroOp& op : ops_) {
    total = std::max(total, op.end);
  }
  return total;
}

double PipelineSchedule::BubbleFraction() const {
  const SimDuration total = TotalTime();
  if (total <= 0) {
    return 0.0;
  }
  SimDuration busy = 0;
  for (const MicroOp& op : ops_) {
    busy += op.end - op.start;
  }
  const double capacity = static_cast<double>(total) * config_.stages;
  return 1.0 - static_cast<double>(busy) / capacity;
}

std::vector<MicroOp> PipelineSchedule::OpsOf(int stage) const {
  std::vector<MicroOp> out;
  for (const MicroOp& op : ops_) {
    if (op.stage == stage) {
      out.push_back(op);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MicroOp& a, const MicroOp& b) { return a.start < b.start; });
  return out;
}

std::vector<std::pair<SimTime, SimTime>> PipelineSchedule::IdleWindowsOf(int stage) const {
  std::vector<std::pair<SimTime, SimTime>> windows;
  SimTime cursor = 0;
  for (const MicroOp& op : OpsOf(stage)) {
    if (op.start > cursor) {
      windows.push_back({cursor, op.start});
    }
    cursor = std::max(cursor, op.end);
  }
  const SimTime total = TotalTime();
  if (cursor < total) {
    windows.push_back({cursor, total});
  }
  return windows;
}

bool PipelineSchedule::DependenciesHold() const {
  std::map<std::pair<int, int>, SimTime> f_end;
  std::map<std::pair<int, int>, SimTime> b_end;
  for (const MicroOp& op : ops_) {
    (op.kind == MicroOpKind::kForward ? f_end : b_end)[{op.stage, op.microbatch}] = op.end;
  }
  for (const MicroOp& op : ops_) {
    if (op.kind == MicroOpKind::kForward) {
      if (op.stage > 0 && op.start < f_end.at({op.stage - 1, op.microbatch})) {
        return false;
      }
    } else {
      if (op.stage + 1 < config_.stages &&
          op.start < b_end.at({op.stage + 1, op.microbatch})) {
        return false;
      }
      if (op.stage + 1 == config_.stages &&
          op.start < f_end.at({op.stage, op.microbatch})) {
        return false;
      }
    }
  }
  // Per-stage ops must not overlap.
  for (int s = 0; s < config_.stages; ++s) {
    SimTime cursor = 0;
    for (const MicroOp& op : OpsOf(s)) {
      if (op.start < cursor) {
        return false;
      }
      cursor = op.end;
    }
  }
  return true;
}

std::string PipelineSchedule::Render(int columns) const {
  const SimDuration total = TotalTime();
  if (total <= 0 || columns < 8) {
    return "";
  }
  std::ostringstream out;
  for (int s = 0; s < config_.stages; ++s) {
    std::string row(static_cast<std::size_t>(columns), '.');
    for (const MicroOp& op : OpsOf(s)) {
      const auto lo = static_cast<std::size_t>(op.start * columns / total);
      auto hi = static_cast<std::size_t>(op.end * columns / total);
      hi = std::min(hi, static_cast<std::size_t>(columns));
      for (std::size_t i = lo; i < std::max(hi, lo + 1) && i < row.size(); ++i) {
        row[i] = op.kind == MicroOpKind::kForward ? 'F' : 'B';
      }
    }
    out << "stage " << s << " |" << row << "|\n";
  }
  return out.str();
}

}  // namespace byterobust

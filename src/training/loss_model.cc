#include "src/training/loss_model.h"

#include <cmath>

namespace byterobust {

namespace {
// SplitMix64: cheap stateless hash giving high-quality 64-bit mixing.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}
}  // namespace

double LossModel::NoiseAt(std::int64_t step) const {
  const std::uint64_t h = Mix(seed_ ^ static_cast<std::uint64_t>(step) * 0x2545F4914F6CDD1DULL);
  return (static_cast<double>(h >> 11) / static_cast<double>(1ULL << 53)) * 2.0 - 1.0;
}

double LossModel::LossAt(std::int64_t step) const {
  const double s = static_cast<double>(step);
  const double decay = std::pow(1.0 + s / config_.loss_decay_steps, -config_.loss_decay_alpha);
  const double base = config_.loss_floor + (config_.loss_initial - config_.loss_floor) * decay;
  return base * (1.0 + config_.loss_noise_stddev * NoiseAt(step));
}

double LossModel::GradNormAt(std::int64_t step) const {
  return GradNormFromLoss(step, LossAt(step));
}

double LossModel::GradNormFromLoss(std::int64_t step, double loss) const {
  // Gradient norm roughly tracks the loss slope; keep it simple and positive.
  return 0.5 + 0.1 * loss * (1.0 + 0.05 * NoiseAt(step + 1));
}

}  // namespace byterobust

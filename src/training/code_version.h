// Code versions: LLM pretraining continuously integrates engineering and
// algorithmic changes (Sec. 2.1). A version carries an efficiency multiplier
// (kernel fusion, comm/computation overlap, ...) and possibly a latent bug
// that only manifests at production scale.

#ifndef SRC_TRAINING_CODE_VERSION_H_
#define SRC_TRAINING_CODE_VERSION_H_

#include <string>

#include "src/common/sim_time.h"

namespace byterobust {

struct CodeVersion {
  int id = 0;
  // Step-time / MFU multiplier relative to the naive initial version (>= 1).
  double efficiency = 1.0;
  // Latent user-code bug: after this version is applied, training fails
  // `bug_latency` into the next run. Cleared by rolling the version back.
  bool buggy = false;
  SimDuration bug_latency = 0;
  // Whether the change is urgent (bug fix: apply immediately) or can be
  // merged lazily into the next failure recovery (Sec. 6.1).
  bool urgent = false;
  std::string description;
};

}  // namespace byterobust

#endif  // SRC_TRAINING_CODE_VERSION_H_

#include "src/training/job_config.h"

#include <cstdio>
#include <stdexcept>

namespace byterobust {

std::string JobConfig::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf), "%s: %.0fB %s, %s, batch=%d", name.c_str(), model_params_b,
                arch == ModelArch::kDense ? "dense" : "MoE", parallelism.ToString().c_str(),
                global_batch_size);
  return buf;
}

JobConfig Table5Job70B(int scale_machines) {
  JobConfig cfg;
  cfg.arch = ModelArch::kMoe;  // Table 5 evaluates sparse LLMs (Sec. 8.2.2)
  cfg.model_params_b = 70.0;
  cfg.parallelism.gpus_per_machine = 16;
  cfg.parallelism.tp = 8;
  cfg.parallelism.pp = 8;
  switch (scale_machines) {
    case 128:
      cfg.name = "70B-128x16";
      cfg.parallelism.dp = 32;
      cfg.global_batch_size = 512;
      break;
    case 256:
      cfg.name = "70B-256x16";
      cfg.parallelism.dp = 64;
      cfg.global_batch_size = 1024;
      break;
    default:
      throw std::invalid_argument("70B setup exists for 128 or 256 machines");
  }
  return cfg;
}

JobConfig Table5Job256B(int scale_machines) {
  JobConfig cfg;
  cfg.arch = ModelArch::kMoe;
  cfg.model_params_b = 256.0;
  cfg.parallelism.gpus_per_machine = 16;
  cfg.parallelism.tp = 8;
  cfg.parallelism.pp = 16;
  switch (scale_machines) {
    case 512:
      cfg.name = "256B-512x16";
      cfg.parallelism.dp = 64;
      cfg.global_batch_size = 1024;
      break;
    case 1024:
      cfg.name = "256B-1024x16";
      cfg.parallelism.dp = 128;
      cfg.global_batch_size = 2048;
      break;
    default:
      throw std::invalid_argument("256B setup exists for 512 or 1024 machines");
  }
  return cfg;
}

JobConfig ProductionDenseJob() {
  JobConfig cfg;
  cfg.name = "dense-70B";
  cfg.arch = ModelArch::kDense;
  cfg.model_params_b = 70.0;
  cfg.parallelism.gpus_per_machine = 8;
  cfg.parallelism.tp = 8;
  cfg.parallelism.pp = 8;
  cfg.parallelism.dp = 150;  // 9,600 GPUs total
  cfg.global_batch_size = 1200;
  cfg.base_step_time = Seconds(20);
  return cfg;
}

JobConfig ProductionMoeJob() {
  JobConfig cfg;
  cfg.name = "moe-200B";
  cfg.arch = ModelArch::kMoe;
  cfg.model_params_b = 200.0;
  cfg.parallelism.gpus_per_machine = 8;
  cfg.parallelism.tp = 8;
  cfg.parallelism.pp = 10;
  cfg.parallelism.dp = 120;  // 9,600 GPUs total
  cfg.global_batch_size = 960;
  cfg.base_step_time = Seconds(25);
  cfg.base_mfu = 0.24;  // naive MoE code starts less optimized (Sec. 8.1.3)
  return cfg;
}

}  // namespace byterobust

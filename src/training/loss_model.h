// Loss-curve model: deterministic power-law decay with seeded noise.
//
// Because the curve is a pure function of (step, seed), a rollback that
// replays steps reproduces bit-identical loss values — the "curve overlap"
// the paper uses to verify engineering changes (Fig. 2, Sec. 2.1).

#ifndef SRC_TRAINING_LOSS_MODEL_H_
#define SRC_TRAINING_LOSS_MODEL_H_

#include <cstdint>

#include "src/training/job_config.h"

namespace byterobust {

class LossModel {
 public:
  LossModel(const JobConfig& config, std::uint64_t seed) : config_(config), seed_(seed) {}

  // Loss at a given global step. Pure function: same step => same value.
  double LossAt(std::int64_t step) const;

  // Gradient norm proxy at a step (used by the monitor's 5x-spike rule).
  double GradNormAt(std::int64_t step) const;

  // Same as GradNormAt for callers that already hold LossAt(step): skips the
  // redundant power-law evaluation on the per-step hot path.
  double GradNormFromLoss(std::int64_t step, double loss) const;

 private:
  // Deterministic per-step noise in [-1, 1].
  double NoiseAt(std::int64_t step) const;

  JobConfig config_;
  std::uint64_t seed_;
};

}  // namespace byterobust

#endif  // SRC_TRAINING_LOSS_MODEL_H_

// Training-job configuration and the paper's concrete setups (Table 5).

#ifndef SRC_TRAINING_JOB_CONFIG_H_
#define SRC_TRAINING_JOB_CONFIG_H_

#include <string>

#include "src/common/sim_time.h"
#include "src/topology/parallelism.h"

namespace byterobust {

enum class ModelArch {
  kDense,  // Llama-like dense transformer
  kMoe,    // sparse mixture-of-experts
};

struct JobConfig {
  std::string name = "job";
  ModelArch arch = ModelArch::kDense;
  double model_params_b = 70.0;  // parameter count, billions
  ParallelismConfig parallelism;
  int global_batch_size = 512;
  int num_microbatches = 8;

  // Nominal per-step wall time at efficiency 1.0 with healthy hardware.
  SimDuration base_step_time = Seconds(15);

  // Model FLOPs Utilization of the initial (naive) code version. Hot updates
  // raise the relative MFU over the campaign (Fig. 11: 1.25x dense, 1.58x MoE).
  double base_mfu = 0.32;

  // Batched step execution: a completing step runs every follow-on step that
  // fits strictly before the next pending simulator event inline, instead of
  // scheduling one event per step. Observable behavior (StepRecord streams,
  // campaign JSON) is identical either way; the switch exists so equivalence
  // tests can pin the per-step reference path.
  bool batched_stepping = true;

  // Loss-curve parameters (power-law decay, Fig. 2).
  double loss_initial = 11.0;
  double loss_floor = 1.75;
  double loss_decay_steps = 2000.0;  // scale of the power-law knee
  double loss_decay_alpha = 0.35;
  double loss_noise_stddev = 0.006;

  std::string ToString() const;
};

// Table 5 setups. `scale_machines` in {128, 256} for the 70B model and
// {512, 1024} for the 256B model; 16 GPUs per machine (L20 testbed).
JobConfig Table5Job70B(int scale_machines);
JobConfig Table5Job256B(int scale_machines);

// The two production pretraining jobs of Sec. 8.1: a three-month dense 70+B
// job and a one-month MoE 200+B job, both on 9,600 Hopper GPUs (8/machine).
JobConfig ProductionDenseJob();
JobConfig ProductionMoeJob();

}  // namespace byterobust

#endif  // SRC_TRAINING_JOB_CONFIG_H_

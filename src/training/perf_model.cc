#include "src/training/perf_model.h"

#include <algorithm>

namespace byterobust {

double PerfModel::SlowestClockRatio(const Cluster& cluster) {
  // Machines absent from the suspect index are provably nominal (clock ratio
  // 1.0, the identity of min), so the scan over suspects returns exactly what
  // a full serving scan would at O(|suspects|) instead of O(cluster x GPUs).
  double slowest = 1.0;
  for (MachineId id : cluster.SuspectServingMachines()) {
    const Machine& m = cluster.machine(id);
    for (int g = 0; g < m.num_gpus(); ++g) {
      slowest = std::min(slowest, m.gpu(g).clock_ratio);
    }
  }
  return slowest;
}

double PerfModel::CachedSlowestClockRatio(const Cluster& cluster) const {
  if (cached_cluster_ != &cluster || clock_epoch_ != cluster.health_epoch()) {
    cached_slowest_ = SlowestClockRatio(cluster);
    cached_congestion_ = cluster.CongestionFactor();
    cached_cluster_ = &cluster;
    clock_epoch_ = cluster.health_epoch();
    perf_epoch_ = kNoEpoch;  // derived step-time/MFU cache is stale too
  }
  return cached_slowest_;
}

SimDuration PerfModel::StepTime(double code_efficiency, const Cluster& cluster) const {
  const double clock = std::max(CachedSlowestClockRatio(cluster), 1e-3);
  if (perf_epoch_ != clock_epoch_ || perf_efficiency_ != code_efficiency) {
    const double eff = std::max(code_efficiency, 1e-6);
    cached_step_time_ =
        static_cast<SimDuration>(static_cast<double>(config_.base_step_time) / (eff * clock));
    cached_mfu_ = config_.base_mfu * code_efficiency * cached_slowest_;
    if (cached_congestion_ < 1.0) {
      // A fail-slow link crossed by the job's collectives stretches every
      // step (and MFU) by the congestion factor. Guarded so flat topologies
      // keep the exact pre-domain arithmetic.
      cached_step_time_ = static_cast<SimDuration>(
          static_cast<double>(config_.base_step_time) / (eff * clock * cached_congestion_));
      cached_mfu_ *= cached_congestion_;
    }
    perf_epoch_ = clock_epoch_;
    perf_efficiency_ = code_efficiency;
  }
  return cached_step_time_;
}

double PerfModel::Mfu(double code_efficiency, const Cluster& cluster) const {
  StepTime(code_efficiency, cluster);  // refreshes cached_mfu_ when stale
  return cached_mfu_;
}

}  // namespace byterobust

#include "src/training/perf_model.h"

#include <algorithm>

namespace byterobust {

double PerfModel::SlowestClockRatio(const Cluster& cluster) {
  double slowest = 1.0;
  for (MachineId id : cluster.ServingMachines()) {
    const Machine& m = cluster.machine(id);
    for (int g = 0; g < m.num_gpus(); ++g) {
      slowest = std::min(slowest, m.gpu(g).clock_ratio);
    }
  }
  return slowest;
}

SimDuration PerfModel::StepTime(double code_efficiency, const Cluster& cluster) const {
  const double eff = std::max(code_efficiency, 1e-6);
  const double clock = std::max(SlowestClockRatio(cluster), 1e-3);
  const double t = static_cast<double>(config_.base_step_time) / (eff * clock);
  return static_cast<SimDuration>(t);
}

double PerfModel::Mfu(double code_efficiency, const Cluster& cluster) const {
  return config_.base_mfu * code_efficiency * SlowestClockRatio(cluster);
}

}  // namespace byterobust

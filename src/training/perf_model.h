// Step-time / MFU performance model.
//
// Step duration is synchronous across the whole job (collective communication
// barriers every step), so the slowest serving machine sets the pace: a single
// thermally-throttled GPU drags global MFU down — exactly the gray-failure
// behaviour that makes MFU decline hard to localize (Sec. 5).

#ifndef SRC_TRAINING_PERF_MODEL_H_
#define SRC_TRAINING_PERF_MODEL_H_

#include "src/cluster/cluster.h"
#include "src/common/sim_time.h"
#include "src/training/job_config.h"

namespace byterobust {

class PerfModel {
 public:
  explicit PerfModel(const JobConfig& config) : config_(config) {}

  // Minimum GPU clock ratio across machines currently serving `slots`; 1.0
  // when everything is healthy.
  static double SlowestClockRatio(const Cluster& cluster);

  // Wall time of one training step given the current code efficiency
  // (>= 1.0, raised by hot updates) and cluster health.
  SimDuration StepTime(double code_efficiency, const Cluster& cluster) const;

  // Absolute MFU for the same inputs.
  double Mfu(double code_efficiency, const Cluster& cluster) const;

  const JobConfig& config() const { return config_; }

 private:
  JobConfig config_;
};

}  // namespace byterobust

#endif  // SRC_TRAINING_PERF_MODEL_H_

// Step-time / MFU performance model.
//
// Step duration is synchronous across the whole job (collective communication
// barriers every step), so the slowest serving machine sets the pace: a single
// thermally-throttled GPU drags global MFU down — exactly the gray-failure
// behaviour that makes MFU decline hard to localize (Sec. 5).
//
// The machines×GPUs slowest-clock scan is cached against the cluster's health
// epoch: the training step loop queries StepTime/Mfu every simulated step, but
// cluster health only changes on fault injection / heal / slot swap, so the
// scan reruns once per mutation instead of twice per step.

#ifndef SRC_TRAINING_PERF_MODEL_H_
#define SRC_TRAINING_PERF_MODEL_H_

#include <cstdint>

#include "src/cluster/cluster.h"
#include "src/common/sim_time.h"
#include "src/training/job_config.h"

namespace byterobust {

class PerfModel {
 public:
  explicit PerfModel(const JobConfig& config) : config_(config) {}

  // Minimum GPU clock ratio across machines currently serving `slots`; 1.0
  // when everything is healthy. Uncached reference scan.
  static double SlowestClockRatio(const Cluster& cluster);

  // Wall time of one training step given the current code efficiency
  // (>= 1.0, raised by hot updates) and cluster health.
  SimDuration StepTime(double code_efficiency, const Cluster& cluster) const;

  // Absolute MFU for the same inputs.
  double Mfu(double code_efficiency, const Cluster& cluster) const;

  const JobConfig& config() const { return config_; }

 private:
  // SlowestClockRatio memoized on (cluster identity, health epoch).
  double CachedSlowestClockRatio(const Cluster& cluster) const;

  static constexpr std::uint64_t kNoEpoch = ~std::uint64_t{0};

  JobConfig config_;

  mutable const Cluster* cached_cluster_ = nullptr;
  mutable std::uint64_t clock_epoch_ = kNoEpoch;
  mutable double cached_slowest_ = 1.0;
  // Fault-domain congestion term (Cluster::CongestionFactor), refreshed on
  // the same epoch cadence. 1.0 on flat topologies, where the step-time
  // arithmetic must stay bit-identical to the pre-domain model.
  mutable double cached_congestion_ = 1.0;
  // StepTime/Mfu additionally key on the code-efficiency input.
  mutable std::uint64_t perf_epoch_ = kNoEpoch;
  mutable double perf_efficiency_ = -1.0;
  mutable SimDuration cached_step_time_ = 0;
  mutable double cached_mfu_ = 0.0;
};

}  // namespace byterobust

#endif  // SRC_TRAINING_PERF_MODEL_H_

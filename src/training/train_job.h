// Training-job runtime: drives the step loop on the simulator and exposes the
// state that ByteRobust's data plane observes (steps, loss, MFU, hang state).

#ifndef SRC_TRAINING_TRAIN_JOB_H_
#define SRC_TRAINING_TRAIN_JOB_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/sim/simulator.h"
#include "src/training/code_version.h"
#include "src/training/job_config.h"
#include "src/training/loss_model.h"
#include "src/training/perf_model.h"

namespace byterobust {

enum class JobRunState {
  kStopped,  // not running (pre-start, or stopped by the controller)
  kRunning,  // stepping normally
  kHung,     // silently stopped making progress (implicit failure)
  kCrashed,  // fail-stop: processes exited
};

const char* JobRunStateName(JobRunState state);

// Emitted on every completed training step.
struct StepRecord {
  std::int64_t step = 0;
  SimTime start = 0;
  SimTime end = 0;
  double mfu = 0.0;
  double loss = 0.0;
  double grad_norm = 0.0;
  bool is_nan = false;
  bool recompute = false;  // re-doing work lost to an unsaved-progress restart
  int run_id = 0;
};

class TrainJob {
 public:
  TrainJob(const JobConfig& config, Simulator* sim, Cluster* cluster, std::uint64_t seed);

  TrainJob(const TrainJob&) = delete;
  TrainJob& operator=(const TrainJob&) = delete;

  // Observer invoked on each step completion (monitor, metrics, checkpoints).
  using StepObserver = std::function<void(const StepRecord&)>;
  void AddStepObserver(StepObserver observer) { observers_.push_back(std::move(observer)); }

  // Observer invoked after every run-state transition (Start/Stop/Crash/Hang).
  // The quiescent monitor uses it to re-arm its watchdog on demand instead of
  // polling the state on a fixed cadence.
  using StateObserver = std::function<void(JobRunState)>;
  void AddStateObserver(StateObserver observer) {
    state_observers_.push_back(std::move(observer));
  }

  // -- control ---------------------------------------------------------------

  // Begins (or resumes) stepping from `resume_step()`. Increments run_count.
  void Start();

  // Controller-initiated stop: cancels the in-flight step.
  void Stop();

  // Fail-stop failure: processes die; the in-flight step is lost.
  void Crash();

  // Silent hang: progress stops but processes stay alive. `culprit` is the
  // rank whose stuck operation seeded the hang (for stack-trace synthesis).
  void Hang(Rank culprit);

  // Loss turns NaN (SDC / bad data / code bug); stepping continues.
  void SetNanLoss(bool nan) { nan_loss_ = nan; }
  bool nan_loss() const { return nan_loss_; }

  // Sets the step to resume from (checkpoint restore). Must be <= the max
  // step reached; steps in (resume, max] will be flagged as recompute.
  void RollbackToStep(std::int64_t step);

  // -- code versions (hot-update / rollback support) --------------------------

  void ApplyCodeVersion(const CodeVersion& version);
  // Reverts to the previous version; returns false if already at the base.
  bool RollbackCodeVersion();
  const CodeVersion& current_version() const { return versions_.back(); }
  int version_depth() const { return static_cast<int>(versions_.size()); }
  // True if a version with this id is currently applied (anywhere on the
  // version stack).
  bool HasVersion(int id) const;

  // -- observable state --------------------------------------------------------

  JobRunState state() const { return state_; }
  std::int64_t resume_step() const { return resume_step_; }
  std::int64_t steps_completed() const { return steps_completed_; }
  std::int64_t max_step_reached() const { return max_step_reached_; }
  int run_count() const { return run_count_; }
  Rank hang_culprit() const { return hang_culprit_; }
  SimTime last_progress_time() const { return last_progress_time_; }

  double CurrentMfu() const;
  SimDuration CurrentStepTime() const;

  const JobConfig& config() const { return config_; }
  const Topology& topology() const { return *topology_; }
  Cluster* cluster() { return cluster_; }

 private:
  void ScheduleNextStep();
  void CompleteStep();
  void FinishOneStep();
  void NotifyStateObservers();

  JobConfig config_;
  Simulator* sim_;
  Cluster* cluster_;
  // Frozen campaign template: shared, immutable per parallelism config.
  std::shared_ptr<const Topology> topology_;
  PerfModel perf_;
  LossModel loss_;

  JobRunState state_ = JobRunState::kStopped;
  std::vector<CodeVersion> versions_;
  std::vector<StepObserver> observers_;
  std::vector<StateObserver> state_observers_;

  std::int64_t resume_step_ = 0;       // next step index to execute
  std::int64_t steps_completed_ = 0;   // total completions incl. recompute
  std::int64_t max_step_reached_ = 0;  // high-water mark of progress
  int run_count_ = 0;
  bool nan_loss_ = false;
  Rank hang_culprit_ = -1;
  SimTime last_progress_time_ = 0;
  SimTime step_start_ = 0;
  EventId pending_step_ = kInvalidEventId;
};

}  // namespace byterobust

#endif  // SRC_TRAINING_TRAIN_JOB_H_

// 1F1B pipeline schedule model (Megatron-LM style, paper Sec. 2.1).
//
// Generates the per-stage timeline of forward/backward micro-batch work for
// one training step: a warmup ramp of forwards, the steady one-forward-one-
// backward phase, and the cooldown drain of backwards. The derived bubble
// fraction (p-1)/(m+p-1) is what determines the idle communication windows
// the checkpoint scheduler (Fig. 8) and the backup interleaving exploit, and
// the stage dependency graph is what hang propagation (Fig. 7) follows.

#ifndef SRC_TRAINING_PIPELINE_SCHEDULE_H_
#define SRC_TRAINING_PIPELINE_SCHEDULE_H_

#include <string>
#include <vector>

#include "src/common/sim_time.h"

namespace byterobust {

enum class MicroOpKind {
  kForward,
  kBackward,
};

// One unit of micro-batch work on one pipeline stage.
struct MicroOp {
  MicroOpKind kind = MicroOpKind::kForward;
  int stage = 0;       // pipeline stage index, 0-based
  int microbatch = 0;  // micro-batch index, 0-based
  SimTime start = 0;
  SimTime end = 0;
};

struct PipelineScheduleConfig {
  int stages = 4;           // PP size
  int microbatches = 8;     // m
  SimDuration forward_time = Milliseconds(100);   // per micro-batch, per stage
  SimDuration backward_time = Milliseconds(200);  // typically ~2x forward
};

class PipelineSchedule {
 public:
  explicit PipelineSchedule(const PipelineScheduleConfig& config);

  const std::vector<MicroOp>& ops() const { return ops_; }
  const PipelineScheduleConfig& config() const { return config_; }

  // Wall time of the whole step (max end over all ops).
  SimDuration TotalTime() const;

  // Fraction of stage-time slots spent idle: the pipeline bubble. For equal
  // forward+backward cost this approaches (p-1)/(m+p-1).
  double BubbleFraction() const;

  // Idle intervals of one stage within [0, TotalTime()), the windows
  // available for interleaved checkpoint/backup traffic.
  std::vector<std::pair<SimTime, SimTime>> IdleWindowsOf(int stage) const;

  // Ops of a single stage in execution order.
  std::vector<MicroOp> OpsOf(int stage) const;

  // Validates the data dependencies: forward(mb) on stage s starts only
  // after forward(mb) on stage s-1 ends; backward(mb) on stage s starts only
  // after backward(mb) on stage s+1 ends; per-stage ops never overlap.
  bool DependenciesHold() const;

  // Compact ASCII Gantt chart (one row per stage) for docs/examples.
  std::string Render(int columns = 80) const;

 private:
  void Build();

  PipelineScheduleConfig config_;
  std::vector<MicroOp> ops_;
};

// Closed-form 1F1B bubble fraction: (p - 1) / (m + p - 1).
double IdealBubbleFraction(int stages, int microbatches);

}  // namespace byterobust

#endif  // SRC_TRAINING_PIPELINE_SCHEDULE_H_

#include "src/cluster/cluster.h"

#include <stdexcept>

namespace byterobust {

Cluster::Cluster(int num_machines, int gpus_per_machine, int num_spares)
    : num_training_slots_(num_machines), gpus_per_machine_(gpus_per_machine) {
  if (num_machines <= 0 || gpus_per_machine <= 0 || num_spares < 0) {
    throw std::invalid_argument("invalid cluster dimensions");
  }
  machines_.reserve(static_cast<std::size_t>(num_machines + num_spares));
  for (int i = 0; i < num_machines + num_spares; ++i) {
    machines_.push_back(std::make_unique<Machine>(i, gpus_per_machine));
    machines_.back()->BindHealthEpoch(&health_epoch_);
    if (i >= num_machines) {
      machines_.back()->set_state(MachineState::kIdle);
    }
  }
  slot_to_machine_.resize(static_cast<std::size_t>(num_machines));
  for (int i = 0; i < num_machines; ++i) {
    slot_to_machine_[static_cast<std::size_t>(i)] = i;
  }
}

int Cluster::SlotOfMachine(MachineId id) const {
  for (std::size_t s = 0; s < slot_to_machine_.size(); ++s) {
    if (slot_to_machine_[s] == id) {
      return static_cast<int>(s);
    }
  }
  return -1;
}

void Cluster::ReplaceSlot(int slot, MachineId replacement) {
  if (slot < 0 || slot >= num_training_slots_) {
    throw std::out_of_range("slot out of range");
  }
  if (IsBlacklisted(replacement)) {
    throw std::invalid_argument("replacement machine is blacklisted");
  }
  Machine& incoming = machine(replacement);
  if (incoming.InService()) {
    throw std::invalid_argument("replacement machine already in service");
  }
  const MachineId old = slot_to_machine_[static_cast<std::size_t>(slot)];
  Blacklist(old);
  machine(old).set_state(MachineState::kEvicted);
  incoming.ResetHealth();
  incoming.set_state(MachineState::kActive);
  slot_to_machine_[static_cast<std::size_t>(slot)] = replacement;
  health_epoch_.Bump();  // serving membership changed
}

void Cluster::Blacklist(MachineId id) {
  blacklist_.insert(id);
  machine(id).set_state(MachineState::kEvicted);
}

MachineId Cluster::AddMachine() {
  const MachineId id = static_cast<MachineId>(machines_.size());
  machines_.push_back(std::make_unique<Machine>(id, gpus_per_machine_));
  machines_.back()->BindHealthEpoch(&health_epoch_);
  machines_.back()->set_state(MachineState::kIdle);
  return id;
}

std::vector<MachineId> Cluster::IdleMachines() const {
  // Only truly idle spares: machines already provisioning (kStandbyInit),
  // sleeping in the warm pool (kStandbySleep) or claimed are not candidates.
  std::vector<MachineId> out;
  for (const auto& m : machines_) {
    if (m->state() == MachineState::kIdle && blacklist_.count(m->id()) == 0) {
      out.push_back(m->id());
    }
  }
  return out;
}

int Cluster::UnhealthyServingCount() const {
  RefreshHealthIndex();
  return unhealthy_serving_;
}

const std::vector<MachineId>& Cluster::SuspectServingMachines() const {
  RefreshHealthIndex();
  return suspect_serving_;
}

const MachineSet& Cluster::SuspectServingSet() const {
  RefreshHealthIndex();
  return suspect_set_;
}

void Cluster::RefreshHealthIndex() const {
  if (index_epoch_ == health_epoch_.value) {
    return;
  }
  suspect_serving_.clear();
  suspect_set_ = MachineSet(static_cast<int>(machines_.size()));
  unhealthy_serving_ = 0;
  for (MachineId id : slot_to_machine_) {
    const Machine& m = machine(id);
    if (m.health_dirty()) {
      suspect_serving_.push_back(id);
      suspect_set_.Insert(id);
    }
    const MachineState s = m.state();
    if (s == MachineState::kFaulty || s == MachineState::kDegraded) {
      ++unhealthy_serving_;
    }
  }
  index_epoch_ = health_epoch_.value;
}

}  // namespace byterobust

#include "src/cluster/cluster.h"

#include <algorithm>
#include <stdexcept>

#include "src/topology/fault_domains.h"

namespace byterobust {

Cluster::Core::~Core() = default;

void Cluster::RegisterWithCore() {
  core_->members.push_back(this);
  if (!core_->health_epoch.on_bump) {
    Core* core = core_.get();
    core_->health_epoch.on_bump = [core] {
      // Fire each member view's one-shot waker. Move-out before invoking so a
      // waker that itself mutates health (recursive bump) or re-parks sees a
      // clean slot; iterate by index because a waker may add a view.
      for (std::size_t i = 0; i < core->members.size(); ++i) {
        Cluster* member = core->members[i];
        if (member->mutation_waker_) {
          std::function<void()> w = std::move(member->mutation_waker_);
          member->mutation_waker_ = nullptr;
          w();
        }
      }
    };
  }
}

Cluster::Cluster(int num_machines, int gpus_per_machine, int num_spares)
    : core_(std::make_shared<Core>()), num_training_slots_(num_machines) {
  if (num_machines <= 0 || gpus_per_machine <= 0 || num_spares < 0) {
    throw std::invalid_argument("invalid cluster dimensions");
  }
  core_->gpus_per_machine = gpus_per_machine;
  RegisterWithCore();
  core_->machines.reserve(static_cast<std::size_t>(num_machines + num_spares));
  for (int i = 0; i < num_machines + num_spares; ++i) {
    core_->machines.push_back(std::make_unique<Machine>(i, gpus_per_machine));
    core_->machines.back()->BindHealthEpoch(&core_->health_epoch);
    if (i >= num_machines) {
      core_->machines.back()->set_state(MachineState::kIdle);
    }
  }
  slot_to_machine_.resize(static_cast<std::size_t>(num_machines));
  for (int i = 0; i < num_machines; ++i) {
    slot_to_machine_[static_cast<std::size_t>(i)] = i;
  }
}

Cluster::Cluster(FleetPoolTag, int total_machines, int gpus_per_machine)
    : core_(std::make_shared<Core>()), num_training_slots_(0) {
  if (total_machines <= 0 || gpus_per_machine <= 0) {
    throw std::invalid_argument("invalid fleet pool dimensions");
  }
  core_->gpus_per_machine = gpus_per_machine;
  RegisterWithCore();
  core_->machines.reserve(static_cast<std::size_t>(total_machines));
  for (int i = 0; i < total_machines; ++i) {
    core_->machines.push_back(std::make_unique<Machine>(i, gpus_per_machine));
    core_->machines.back()->BindHealthEpoch(&core_->health_epoch);
    core_->machines.back()->set_state(MachineState::kIdle);
  }
}

Cluster::Cluster(Cluster& parent, int num_slots)
    : core_(parent.core_), num_training_slots_(num_slots) {
  if (num_slots <= 0) {
    throw std::invalid_argument("view needs at least one training slot");
  }
  // Select before mutating anything: a failed carve must leave no trace — a
  // throwing constructor never runs its destructor, so registering with the
  // core (or flipping machines kActive) first would leave a dangling member
  // pointer behind the exception.
  std::vector<MachineId> selected;
  selected.reserve(static_cast<std::size_t>(num_slots));
  for (const auto& m : core_->machines) {
    if (static_cast<int>(selected.size()) == num_slots) {
      break;
    }
    if (m->state() == MachineState::kIdle && core_->blacklist.count(m->id()) == 0) {
      selected.push_back(m->id());
    }
  }
  if (static_cast<int>(selected.size()) != num_slots) {
    throw std::invalid_argument("fleet pool cannot supply the job's machine demand");
  }
  RegisterWithCore();
  slot_to_machine_ = std::move(selected);
  for (MachineId id : slot_to_machine_) {
    core_->machines[static_cast<std::size_t>(id)]->set_state(MachineState::kActive);
  }
  core_->health_epoch.Bump();  // serving membership changed
}

Cluster::~Cluster() {
  auto& members = core_->members;
  members.erase(std::remove(members.begin(), members.end(), this), members.end());
}

int Cluster::SlotOfMachine(MachineId id) const {
  for (std::size_t s = 0; s < slot_to_machine_.size(); ++s) {
    if (slot_to_machine_[s] == id) {
      return static_cast<int>(s);
    }
  }
  return -1;
}

void Cluster::InstallSlotMachine(int slot, MachineId replacement) {
  if (slot < 0 || slot >= num_training_slots_) {
    throw std::out_of_range("slot out of range");
  }
  if (IsBlacklisted(replacement)) {
    throw std::invalid_argument("replacement machine is blacklisted");
  }
  Machine& incoming = machine(replacement);
  if (incoming.InService()) {
    throw std::invalid_argument("replacement machine already in service");
  }
  incoming.ResetHealth();
  incoming.set_state(MachineState::kActive);
  slot_to_machine_[static_cast<std::size_t>(slot)] = replacement;
}

void Cluster::ReplaceSlot(int slot, MachineId replacement) {
  // Validate before evicting the old machine so a bad replacement leaves the
  // slot untouched; InstallSlotMachine re-checks harmlessly.
  if (slot < 0 || slot >= num_training_slots_) {
    throw std::out_of_range("slot out of range");
  }
  if (IsBlacklisted(replacement)) {
    throw std::invalid_argument("replacement machine is blacklisted");
  }
  if (machine(replacement).InService()) {
    throw std::invalid_argument("replacement machine already in service");
  }
  const MachineId old = slot_to_machine_[static_cast<std::size_t>(slot)];
  Blacklist(old);
  machine(old).set_state(MachineState::kEvicted);
  InstallSlotMachine(slot, replacement);
  core_->health_epoch.Bump();  // serving membership changed
}

MachineId Cluster::DetachSlotMachine(int slot, MachineId replacement) {
  if (slot < 0 || slot >= num_training_slots_) {
    throw std::out_of_range("slot out of range");
  }
  const MachineId detached = slot_to_machine_[static_cast<std::size_t>(slot)];
  InstallSlotMachine(slot, replacement);
  machine(detached).set_state(MachineState::kIdle);
  core_->health_epoch.Bump();  // serving membership changed
  return detached;
}

void Cluster::Blacklist(MachineId id) {
  core_->blacklist.insert(id);
  machine(id).set_state(MachineState::kEvicted);
}

MachineId Cluster::AddMachine() {
  const MachineId id = static_cast<MachineId>(core_->machines.size());
  core_->machines.push_back(std::make_unique<Machine>(id, core_->gpus_per_machine));
  core_->machines.back()->BindHealthEpoch(&core_->health_epoch);
  core_->machines.back()->set_state(MachineState::kIdle);
  if (core_->domains != nullptr) {
    // Late-provisioned machines clamp into the graph's outermost bands.
    core_->machines.back()->set_domain_path(core_->domains->PathOfMachine(id));
  }
  return id;
}

void Cluster::AttachFaultDomains(const FaultDomainConfig& config) {
  if (!config.enabled) {
    return;
  }
  core_->domains =
      std::make_unique<FaultDomains>(config, static_cast<int>(core_->machines.size()));
  core_->domains->BindHealthEpoch(&core_->health_epoch);
  for (const auto& m : core_->machines) {
    m->set_domain_path(core_->domains->PathOfMachine(m->id()));
  }
}

double Cluster::CongestionFactor() const {
  if (core_->domains == nullptr) {
    return 1.0;
  }
  RefreshHealthIndex();
  return congestion_factor_;
}

std::vector<MachineId> Cluster::IdleMachines() const {
  // Only truly idle spares: machines already provisioning (kStandbyInit),
  // sleeping in the warm pool (kStandbySleep) or claimed are not candidates.
  std::vector<MachineId> out;
  for (const auto& m : core_->machines) {
    if (m->state() == MachineState::kIdle && core_->blacklist.count(m->id()) == 0) {
      out.push_back(m->id());
    }
  }
  return out;
}

int Cluster::UnhealthyServingCount() const {
  RefreshHealthIndex();
  return unhealthy_serving_;
}

const std::vector<MachineId>& Cluster::SuspectServingMachines() const {
  RefreshHealthIndex();
  return suspect_serving_;
}

const MachineSet& Cluster::SuspectServingSet() const {
  RefreshHealthIndex();
  return suspect_set_;
}

void Cluster::RefreshHealthIndex() const {
  if (index_epoch_ == core_->health_epoch.value) {
    return;
  }
  suspect_serving_.clear();
  suspect_set_ = MachineSet(static_cast<int>(core_->machines.size()));
  unhealthy_serving_ = 0;
  for (MachineId id : slot_to_machine_) {
    const Machine& m = machine(id);
    if (m.health_dirty()) {
      suspect_serving_.push_back(id);
      suspect_set_.Insert(id);
    }
    const MachineState s = m.state();
    if (s == MachineState::kFaulty || s == MachineState::kDegraded) {
      ++unhealthy_serving_;
    }
  }
  congestion_factor_ = core_->domains != nullptr && core_->domains->AnyImpaired()
                           ? core_->domains->CongestionFactorFor(slot_to_machine_)
                           : 1.0;
  index_epoch_ = core_->health_epoch.value;
}

}  // namespace byterobust

// Cluster model: the set of machines serving a training job plus the
// blacklist of evicted machines. Warm-standby pool management lives in
// src/recovery; the cluster only tracks membership and health.

#ifndef SRC_CLUSTER_CLUSTER_H_
#define SRC_CLUSTER_CLUSTER_H_

#include <memory>
#include <set>
#include <vector>

#include "src/cluster/machine.h"
#include "src/topology/parallelism.h"

namespace byterobust {

class Cluster {
 public:
  // Creates `num_machines` active machines with `gpus_per_machine` GPUs each,
  // plus `num_spares` machines that start life outside the job (used to
  // refill training slots after evictions).
  Cluster(int num_machines, int gpus_per_machine, int num_spares = 0);

  int num_training_slots() const { return num_training_slots_; }
  int gpus_per_machine() const { return gpus_per_machine_; }
  std::size_t total_machines() const { return machines_.size(); }

  Machine& machine(MachineId id) { return *machines_.at(static_cast<std::size_t>(id)); }
  const Machine& machine(MachineId id) const {
    return *machines_.at(static_cast<std::size_t>(id));
  }

  // Machine currently serving training slot `slot` (slot indices are what the
  // Topology maps ranks onto). After a replacement, the slot points at the
  // standby machine that took over.
  MachineId MachineAtSlot(int slot) const { return slot_to_machine_.at(static_cast<std::size_t>(slot)); }
  int SlotOfMachine(MachineId id) const;  // -1 if not serving

  // Evicts the machine at `slot` (blacklists it) and installs `replacement`
  // into the slot. The replacement must not be blacklisted or in service.
  void ReplaceSlot(int slot, MachineId replacement);

  // Marks a machine blacklisted without installing a replacement yet.
  void Blacklist(MachineId id);
  bool IsBlacklisted(MachineId id) const { return blacklist_.count(id) > 0; }
  const std::set<MachineId>& blacklist() const { return blacklist_; }

  // Adds a brand-new machine record (e.g. freshly provisioned standby);
  // returns its id.
  MachineId AddMachine();

  // Machines not serving, not blacklisted (candidates for standby pool or
  // rescheduling).
  std::vector<MachineId> IdleMachines() const;

  // All machines currently serving the job, in slot order.
  std::vector<MachineId> ServingMachines() const { return slot_to_machine_; }

  // Count of serving machines whose state is kFaulty or kDegraded.
  int UnhealthyServingCount() const;

 private:
  int num_training_slots_;
  int gpus_per_machine_;
  std::vector<std::unique_ptr<Machine>> machines_;
  std::vector<MachineId> slot_to_machine_;
  std::set<MachineId> blacklist_;
};

}  // namespace byterobust

#endif  // SRC_CLUSTER_CLUSTER_H_

// Cluster model: the set of machines serving one or more training jobs plus
// the blacklist of evicted machines. Warm-standby pool management lives in
// src/recovery; the cluster only tracks membership and health.
//
// Fleet mode (PR 5): machines, the blacklist and the health epoch live in a
// shared core so several Cluster objects can host concurrent jobs on one
// physical pool. The classic single-job constructor builds a root cluster
// that owns its core and all training slots; a *view* constructor carves a
// job-sized slot table out of a parent cluster's idle machines while sharing
// the parent's machine records, blacklist and health epoch. Components
// (TrainJob, Monitor, Diagnoser, RobustController) keep taking a plain
// `Cluster*` — a job handed its view sees only its own serving slots, while
// health mutations anywhere in the shared pool keep a single fleet-wide
// epoch, so cross-job phenomena (a ToR fault degrading machines of two jobs)
// are observable by both monitors.
//
// Threading model: a cluster core and every view carved from it belong to
// one campaign worker thread (the simulator that drives them is
// single-threaded; fleet-mode "sharing" is between jobs interleaved on that
// one thread, never between OS threads). Mutation wakers fire synchronously
// on the owning thread. Nothing here is locked, and the determinism lint +
// TSan gates exist to keep cross-thread state out of this layer.

#ifndef SRC_CLUSTER_CLUSTER_H_
#define SRC_CLUSTER_CLUSTER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "src/cluster/machine.h"
#include "src/topology/parallelism.h"

namespace byterobust {

class FaultDomains;
struct FaultDomainConfig;

// Tag type selecting the fleet-pool constructor: all machines start idle and
// the root owns no training slots (jobs carve views out of it).
struct FleetPoolTag {};
inline constexpr FleetPoolTag kFleetPool{};

class Cluster {
 public:
  // Creates `num_machines` active machines with `gpus_per_machine` GPUs each,
  // plus `num_spares` machines that start life outside the job (used to
  // refill training slots after evictions). The cluster owns its core and all
  // `num_machines` training slots (the classic single-job layout).
  Cluster(int num_machines, int gpus_per_machine, int num_spares = 0);

  // Fleet pool root: `total_machines` idle machines, zero training slots.
  // Job views carve their slot tables out of this pool.
  Cluster(FleetPoolTag, int total_machines, int gpus_per_machine);

  // Job view: shares `parent`'s machines/blacklist/health epoch and claims
  // `num_slots` idle machines (in id order) as its training slots. Throws if
  // the parent pool cannot supply that many idle machines.
  Cluster(Cluster& parent, int num_slots);

  ~Cluster();

  // Machines hold raw hooks into this cluster's health epoch, so the cluster
  // must never relocate.
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int num_training_slots() const { return num_training_slots_; }
  int gpus_per_machine() const { return core_->gpus_per_machine; }
  std::size_t total_machines() const { return core_->machines.size(); }

  Machine& machine(MachineId id) { return *core_->machines.at(static_cast<std::size_t>(id)); }
  const Machine& machine(MachineId id) const {
    return *core_->machines.at(static_cast<std::size_t>(id));
  }

  // Machine currently serving training slot `slot` (slot indices are what the
  // Topology maps ranks onto; view slots are numbered from 0 within the
  // view). After a replacement, the slot points at the standby machine that
  // took over.
  MachineId MachineAtSlot(int slot) const { return slot_to_machine_.at(static_cast<std::size_t>(slot)); }
  int SlotOfMachine(MachineId id) const;  // -1 if not serving *this* cluster

  // Evicts the machine at `slot` (blacklists it) and installs `replacement`
  // into the slot. The replacement must not be blacklisted or in service.
  void ReplaceSlot(int slot, MachineId replacement);

  // Preemption support (fleet spare arbiter): removes the machine at `slot`
  // WITHOUT blacklisting it — the machine is healthy and is being transferred
  // to another job — and installs `replacement`. Returns the detached
  // machine, left in kIdle state for the claimant to install.
  MachineId DetachSlotMachine(int slot, MachineId replacement);

  // Marks a machine blacklisted without installing a replacement yet.
  void Blacklist(MachineId id);
  bool IsBlacklisted(MachineId id) const { return core_->blacklist.count(id) > 0; }
  const std::set<MachineId>& blacklist() const { return core_->blacklist; }

  // Adds a brand-new machine record (e.g. freshly provisioned standby);
  // returns its id.
  MachineId AddMachine();

  // Machines not serving, not blacklisted (candidates for standby pool or
  // rescheduling). Shared across views: a machine serving any job is not
  // idle.
  std::vector<MachineId> IdleMachines() const;

  // All machines currently serving this cluster's job, in slot order.
  std::vector<MachineId> ServingMachines() const { return slot_to_machine_; }

  // Same membership as ServingMachines() without the copy; hot paths (perf
  // model, inspections, fault sampling) iterate this instead.
  const std::vector<MachineId>& serving_slots() const { return slot_to_machine_; }

  // Count of serving machines whose state is kFaulty or kDegraded. Served
  // from the epoch-keyed health index, so repeated calls between mutations
  // are O(1).
  int UnhealthyServingCount() const;

  // -- health epoch + suspect index -----------------------------------------
  //
  // Every health mutation (fault injection, heal, slot swap, eviction,
  // restart, or any mutable Machine::gpu()/host() access) bumps a
  // monotonically increasing epoch shared by every view of the core.
  // Consumers key caches on it: the perf model's slowest-clock scan and the
  // inspection suspect index below are recomputed at most once per epoch
  // instead of once per query.

  std::uint64_t health_epoch() const { return core_->health_epoch.value; }

  // Registers a one-shot callback fired by the next health mutation (any
  // epoch bump, whichever view's machine mutated). The quiescent monitor uses
  // it to stop re-arming periodic inspection passes while the cluster is
  // provably healthy: instead of polling, it parks here and is re-armed on
  // demand. Single consumer *per view* — a new request replaces any pending
  // one on the same view; in a fleet each job's monitor parks on its own
  // view. The callback runs synchronously inside the mutating call (possibly
  // mid-mutation), so it must only *schedule* work, never read health
  // attributes directly.
  void RequestMutationWake(std::function<void()> waker) {
    mutation_waker_ = std::move(waker);
  }

  // Serving machines of *this* cluster whose health may deviate from nominal
  // (health_dirty()), in slot order. Machines absent from this list are
  // guaranteed nominal, so inspections iterate only these instead of the
  // whole cluster.
  const std::vector<MachineId>& SuspectServingMachines() const;

  // Bitmask over the same suspects, for word-parallel membership queries.
  const MachineSet& SuspectServingSet() const;

  // -- hierarchical fault domains -------------------------------------------

  // Builds the NIC -> ToR -> spine -> pod domain graph over the core's
  // current machine set and assigns every machine its domain path. Call once
  // on the root/pool cluster before carving views; a no-op when
  // `config.enabled` is false. Attaching is epoch-neutral (a healthy graph
  // changes nothing observable), so flat campaigns stay byte-identical.
  void AttachFaultDomains(const FaultDomainConfig& config);

  // The shared graph, or nullptr on flat-topology clusters. Shared by every
  // view of the core, like the blacklist.
  FaultDomains* fault_domains() { return core_->domains.get(); }
  const FaultDomains* fault_domains() const { return core_->domains.get(); }

  // Congestion term for this view's serving set: the minimum degradation
  // factor over impaired domains whose machine band the serving set crosses
  // (see FaultDomains::CongestionFactorFor). 1.0 without a graph or without
  // impairment. Served from the epoch-keyed health index, so repeated calls
  // between mutations are O(1).
  double CongestionFactor() const;

 private:
  // State shared by a root cluster and every view carved from it.
  struct Core {
    int gpus_per_machine = 0;
    std::vector<std::unique_ptr<Machine>> machines;
    std::set<MachineId> blacklist;
    // Bumped by Cluster mutators and (through the bound hooks) by every
    // Machine state/health mutation; dispatches each member view's one-shot
    // waker.
    HealthEpoch health_epoch;
    // Root + views sharing this core, in registration order (root first).
    std::vector<Cluster*> members;
    // Hierarchical fault-domain graph (nullptr = flat legacy topology).
    std::unique_ptr<FaultDomains> domains;

    ~Core();  // defined in cluster.cc, where FaultDomains is complete
  };

  void RegisterWithCore();
  void FireMutationWakers();
  void InstallSlotMachine(int slot, MachineId replacement);
  void RefreshHealthIndex() const;

  std::shared_ptr<Core> core_;
  int num_training_slots_;
  std::vector<MachineId> slot_to_machine_;
  std::function<void()> mutation_waker_;  // one-shot, per view

  // Lazily rebuilt once per epoch on first query (mutations are rare next to
  // the per-step / per-inspection reads that consume the index).
  mutable std::uint64_t index_epoch_ = ~std::uint64_t{0};
  mutable std::vector<MachineId> suspect_serving_;
  mutable MachineSet suspect_set_;
  mutable int unhealthy_serving_ = 0;
  mutable double congestion_factor_ = 1.0;
};

}  // namespace byterobust

#endif  // SRC_CLUSTER_CLUSTER_H_

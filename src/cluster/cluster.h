// Cluster model: the set of machines serving a training job plus the
// blacklist of evicted machines. Warm-standby pool management lives in
// src/recovery; the cluster only tracks membership and health.

#ifndef SRC_CLUSTER_CLUSTER_H_
#define SRC_CLUSTER_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "src/cluster/machine.h"
#include "src/topology/parallelism.h"

namespace byterobust {

class Cluster {
 public:
  // Creates `num_machines` active machines with `gpus_per_machine` GPUs each,
  // plus `num_spares` machines that start life outside the job (used to
  // refill training slots after evictions).
  Cluster(int num_machines, int gpus_per_machine, int num_spares = 0);

  // Machines hold raw hooks into this cluster's health epoch, so the cluster
  // must never relocate.
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int num_training_slots() const { return num_training_slots_; }
  int gpus_per_machine() const { return gpus_per_machine_; }
  std::size_t total_machines() const { return machines_.size(); }

  Machine& machine(MachineId id) { return *machines_.at(static_cast<std::size_t>(id)); }
  const Machine& machine(MachineId id) const {
    return *machines_.at(static_cast<std::size_t>(id));
  }

  // Machine currently serving training slot `slot` (slot indices are what the
  // Topology maps ranks onto). After a replacement, the slot points at the
  // standby machine that took over.
  MachineId MachineAtSlot(int slot) const { return slot_to_machine_.at(static_cast<std::size_t>(slot)); }
  int SlotOfMachine(MachineId id) const;  // -1 if not serving

  // Evicts the machine at `slot` (blacklists it) and installs `replacement`
  // into the slot. The replacement must not be blacklisted or in service.
  void ReplaceSlot(int slot, MachineId replacement);

  // Marks a machine blacklisted without installing a replacement yet.
  void Blacklist(MachineId id);
  bool IsBlacklisted(MachineId id) const { return blacklist_.count(id) > 0; }
  const std::set<MachineId>& blacklist() const { return blacklist_; }

  // Adds a brand-new machine record (e.g. freshly provisioned standby);
  // returns its id.
  MachineId AddMachine();

  // Machines not serving, not blacklisted (candidates for standby pool or
  // rescheduling).
  std::vector<MachineId> IdleMachines() const;

  // All machines currently serving the job, in slot order.
  std::vector<MachineId> ServingMachines() const { return slot_to_machine_; }

  // Same membership as ServingMachines() without the copy; hot paths (perf
  // model, inspections, fault sampling) iterate this instead.
  const std::vector<MachineId>& serving_slots() const { return slot_to_machine_; }

  // Count of serving machines whose state is kFaulty or kDegraded. Served
  // from the epoch-keyed health index, so repeated calls between mutations
  // are O(1).
  int UnhealthyServingCount() const;

  // -- health epoch + suspect index -----------------------------------------
  //
  // Every health mutation (fault injection, heal, slot swap, eviction,
  // restart, or any mutable Machine health access) bumps a monotonically
  // increasing epoch. Consumers key caches on it: the perf model's
  // slowest-clock scan and the inspection suspect index below are recomputed
  // at most once per epoch instead of once per query.

  std::uint64_t health_epoch() const { return health_epoch_.value; }

  // Registers a one-shot callback fired by the next health mutation (any
  // epoch bump). The quiescent monitor uses it to stop re-arming periodic
  // inspection passes while the cluster is provably healthy: instead of
  // polling, it parks here and is re-armed on demand. Single consumer — a new
  // request replaces any pending one. The callback runs synchronously inside
  // the mutating call (possibly mid-mutation), so it must only *schedule*
  // work, never read health attributes directly.
  void RequestMutationWake(std::function<void()> waker) {
    health_epoch_.waker = std::move(waker);
  }

  // Serving machines whose health may deviate from nominal (health_dirty()),
  // in slot order. Machines absent from this list are guaranteed nominal, so
  // inspections iterate only these instead of the whole cluster.
  const std::vector<MachineId>& SuspectServingMachines() const;

  // Bitmask over the same suspects, for word-parallel membership queries.
  const MachineSet& SuspectServingSet() const;

 private:
  void RefreshHealthIndex() const;

  int num_training_slots_;
  int gpus_per_machine_;
  std::vector<std::unique_ptr<Machine>> machines_;
  std::vector<MachineId> slot_to_machine_;
  std::set<MachineId> blacklist_;

  // Bumped by Cluster mutators and (through the bound hooks) by every Machine
  // state/health mutation; fires the one-shot waker, if registered.
  HealthEpoch health_epoch_;

  // Lazily rebuilt once per epoch on first query (mutations are rare next to
  // the per-step / per-inspection reads that consume the index).
  mutable std::uint64_t index_epoch_ = ~std::uint64_t{0};
  mutable std::vector<MachineId> suspect_serving_;
  mutable MachineSet suspect_set_;
  mutable int unhealthy_serving_ = 0;
};

}  // namespace byterobust

#endif  // SRC_CLUSTER_CLUSTER_H_

// Machine model: one multi-GPU host in the training cluster.

#ifndef SRC_CLUSTER_MACHINE_H_
#define SRC_CLUSTER_MACHINE_H_

#include <string>
#include <vector>

#include "src/common/sim_time.h"
#include "src/topology/parallelism.h"

namespace byterobust {

enum class MachineState {
  kActive,        // serving the training job
  kDegraded,      // serving, but with a gray fault (fail-slow, SDC, ...)
  kFaulty,        // a fault fired; job processes on it are dead or stuck
  kEvicted,       // removed from the job and blacklisted
  kIdle,          // platform spare, not yet provisioned for anything
  kStandbySleep,  // pre-validated warm standby in low-power sleep (Sec. 6.2)
  kStandbyInit,   // standby being provisioned (self-check, image, libraries)
};

const char* MachineStateName(MachineState state);

// Per-GPU health attributes polled by the monitor's inspection threads.
struct GpuHealth {
  double temperature_c = 55.0;  // nominal operating temperature
  bool dcgm_responsive = true;
  bool available = true;        // false => "GPU Unavailable"
  bool hbm_ok = true;           // false => GPU memory (HBM) error
  bool sdc = false;             // silent data corruption: wrong math, no signal
  bool comm_defect = false;     // defective CUDA cores blocking P2P (Sec. 5.2)
  double clock_ratio = 1.0;     // < 1.0 => thermal throttling / downclock
};

// Host/NIC health attributes.
struct HostHealth {
  bool nic_up = true;
  double packet_loss_rate = 0.0;
  bool switch_reachable = true;
  bool os_kernel_ok = true;     // false => kernel panic / Xid in dmesg
  bool disk_ok = true;
  double free_disk_fraction = 0.8;
  double cpu_load = 0.3;        // fraction of cores busy
  double free_host_mem_fraction = 0.7;
};

class Machine {
 public:
  Machine(MachineId id, int num_gpus);

  MachineId id() const { return id_; }
  int num_gpus() const { return num_gpus_; }

  MachineState state() const { return state_; }
  void set_state(MachineState state) { state_ = state; }
  bool InService() const {
    return state_ == MachineState::kActive || state_ == MachineState::kDegraded;
  }

  GpuHealth& gpu(int i) { return gpus_.at(static_cast<std::size_t>(i)); }
  const GpuHealth& gpu(int i) const { return gpus_.at(static_cast<std::size_t>(i)); }
  HostHealth& host() { return host_; }
  const HostHealth& host() const { return host_; }

  // Resets all health attributes to nominal values (standby delivery,
  // post-repair return to the pool).
  void ResetHealth();

  // True if any GPU has an SDC flag set.
  bool HasSdc() const;

  // Incremented whenever this machine is implicated in an incident; used by
  // campaign reports.
  int incident_count = 0;

 private:
  MachineId id_;
  int num_gpus_;
  MachineState state_ = MachineState::kActive;
  std::vector<GpuHealth> gpus_;
  HostHealth host_;
};

}  // namespace byterobust

#endif  // SRC_CLUSTER_MACHINE_H_

// Machine model: one multi-GPU host in the training cluster.

#ifndef SRC_CLUSTER_MACHINE_H_
#define SRC_CLUSTER_MACHINE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/sim_time.h"
#include "src/topology/parallelism.h"

namespace byterobust {

// Index into the cluster's fault-domain table (src/topology/fault_domains.h).
using DomainId = int;

// Shared mutation channel between a Cluster core and its Machines: a
// monotonically increasing health epoch plus a permanent dispatch hook. The
// owning Cluster installs `on_bump` to fire each member view's one-shot
// mutation waker (consumers that disarm their periodic work while the
// cluster is provably healthy — the quiescent monitor — park there and are
// re-armed by the next mutation). Each view's waker is cleared before being
// invoked, so a storm of mutations costs one call per parked consumer.
struct HealthEpoch {
  std::uint64_t value = 0;
  std::function<void()> on_bump;

  void Bump() {
    ++value;
    if (on_bump) {
      on_bump();
    }
  }
};

enum class MachineState {
  kActive,        // serving the training job
  kDegraded,      // serving, but with a gray fault (fail-slow, SDC, ...)
  kFaulty,        // a fault fired; job processes on it are dead or stuck
  kEvicted,       // removed from the job and blacklisted
  kIdle,          // platform spare, not yet provisioned for anything
  kStandbySleep,  // pre-validated warm standby in low-power sleep (Sec. 6.2)
  kStandbyInit,   // standby being provisioned (self-check, image, libraries)
};

const char* MachineStateName(MachineState state);

// Per-GPU health attributes polled by the monitor's inspection threads.
struct GpuHealth {
  double temperature_c = 55.0;  // nominal operating temperature
  bool dcgm_responsive = true;
  bool available = true;        // false => "GPU Unavailable"
  bool hbm_ok = true;           // false => GPU memory (HBM) error
  bool sdc = false;             // silent data corruption: wrong math, no signal
  bool comm_defect = false;     // defective CUDA cores blocking P2P (Sec. 5.2)
  double clock_ratio = 1.0;     // < 1.0 => thermal throttling / downclock
};

// Host/NIC health attributes.
struct HostHealth {
  bool nic_up = true;
  double packet_loss_rate = 0.0;
  bool switch_reachable = true;
  bool os_kernel_ok = true;     // false => kernel panic / Xid in dmesg
  bool disk_ok = true;
  double free_disk_fraction = 0.8;
  double cpu_load = 0.3;        // fraction of cores busy
  double free_host_mem_fraction = 0.7;
};

class Machine {
 public:
  Machine(MachineId id, int num_gpus);

  MachineId id() const { return id_; }
  int num_gpus() const { return num_gpus_; }

  MachineState state() const { return state_; }
  void set_state(MachineState state) {
    state_ = state;
    BumpMutationCounter();
  }
  bool InService() const {
    return state_ == MachineState::kActive || state_ == MachineState::kDegraded;
  }

  // Mutable health access conservatively marks the machine "health-dirty" and
  // bumps the owning cluster's health epoch: the caller *may* write through
  // the reference. A machine that is not dirty is guaranteed nominal, which
  // is what lets inspections and the perf model skip it without a scan.
  GpuHealth& gpu(int i) {
    MarkHealthDirty();
    return gpus_.at(static_cast<std::size_t>(i));
  }
  const GpuHealth& gpu(int i) const { return gpus_.at(static_cast<std::size_t>(i)); }
  HostHealth& host() {
    MarkHealthDirty();
    return host_;
  }
  const HostHealth& host() const { return host_; }

  // Resets all health attributes to nominal values (standby delivery,
  // post-repair return to the pool). Clears the dirty flag: nominal health
  // needs no inspection.
  void ResetHealth();

  // True if any GPU has an SDC flag set.
  bool HasSdc() const;

  // True when mutable health access happened since construction/ResetHealth,
  // i.e. the health attributes may deviate from nominal.
  bool health_dirty() const { return health_dirty_; }

  // Installed by the owning Cluster so every state/health mutation bumps the
  // cluster-wide health epoch (cache invalidation for the perf model and the
  // inspection suspect index) and fires the epoch's one-shot waker, if any.
  // Standalone machines (unit tests) keep nullptr.
  void BindHealthEpoch(HealthEpoch* epoch) { health_epoch_hook_ = epoch; }

  // Fault-domain path, innermost (host NIC) to outermost (pod power domain).
  // Assigned by Cluster::AttachFaultDomains; empty on flat-topology clusters.
  // Placement is static wiring, not a health attribute, so setting it neither
  // dirties health nor bumps the epoch.
  const std::vector<DomainId>& domain_path() const { return domain_path_; }
  void set_domain_path(std::vector<DomainId> path) { domain_path_ = std::move(path); }

  // Incremented whenever this machine is implicated in an incident; used by
  // campaign reports.
  int incident_count = 0;

 private:
  void BumpMutationCounter() {
    if (health_epoch_hook_ != nullptr) {
      health_epoch_hook_->Bump();
    }
  }
  void MarkHealthDirty() {
    health_dirty_ = true;
    BumpMutationCounter();
  }

  MachineId id_;
  int num_gpus_;
  MachineState state_ = MachineState::kActive;
  std::vector<GpuHealth> gpus_;
  HostHealth host_;
  std::vector<DomainId> domain_path_;
  bool health_dirty_ = false;
  HealthEpoch* health_epoch_hook_ = nullptr;
};

}  // namespace byterobust

#endif  // SRC_CLUSTER_MACHINE_H_

#include "src/cluster/machine.h"

namespace byterobust {

const char* MachineStateName(MachineState state) {
  switch (state) {
    case MachineState::kActive:
      return "active";
    case MachineState::kDegraded:
      return "degraded";
    case MachineState::kFaulty:
      return "faulty";
    case MachineState::kEvicted:
      return "evicted";
    case MachineState::kIdle:
      return "idle";
    case MachineState::kStandbySleep:
      return "standby-sleep";
    case MachineState::kStandbyInit:
      return "standby-init";
  }
  return "unknown";
}

Machine::Machine(MachineId id, int num_gpus)
    : id_(id), num_gpus_(num_gpus), gpus_(static_cast<std::size_t>(num_gpus)) {}

void Machine::ResetHealth() {
  for (auto& g : gpus_) {
    g = GpuHealth{};
  }
  host_ = HostHealth{};
  health_dirty_ = false;
  BumpMutationCounter();
}

bool Machine::HasSdc() const {
  for (const auto& g : gpus_) {
    if (g.sdc) {
      return true;
    }
  }
  return false;
}

}  // namespace byterobust

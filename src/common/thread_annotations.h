// Clang thread-safety analysis annotations (no-ops elsewhere).
//
// These macros expose clang's `-Wthread-safety` static analysis to the
// codebase: mutex-guarded members are declared with BR_GUARDED_BY, functions
// that must run under a lock with BR_REQUIRES, and lock/unlock primitives
// with BR_ACQUIRE/BR_RELEASE. GCC (the default toolchain here) does not
// implement the attributes, so every macro compiles away to nothing there;
// the dedicated clang CI job builds with `-Wthread-safety -Werror` and turns
// annotation violations into build failures.
//
// The annotated wrappers that actually carry these attributes live in
// src/common/sync.h (byterobust::Mutex / byterobust::MutexLock /
// byterobust::CondVar); libstdc++'s
// std::mutex is not annotated, so raw standard-library locking is invisible
// to the analysis and should not be used for shared mutable state.

#ifndef SRC_COMMON_THREAD_ANNOTATIONS_H_
#define SRC_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define BR_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define BR_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op on GCC/MSVC
#endif

// A type that acts as a lockable capability (a mutex).
#define BR_CAPABILITY(x) BR_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

// An RAII type that acquires a capability in its constructor and releases it
// in its destructor.
#define BR_SCOPED_CAPABILITY BR_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

// Data member readable/writable only while holding the given capability.
#define BR_GUARDED_BY(x) BR_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

// Pointer member whose *pointee* is guarded by the given capability.
#define BR_PT_GUARDED_BY(x) BR_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

// Function that may only be called while holding the given capabilities.
#define BR_REQUIRES(...) \
  BR_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

// Function that acquires / releases the given capabilities.
#define BR_ACQUIRE(...) \
  BR_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define BR_RELEASE(...) \
  BR_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

// Function that acquires the capability only when it returns `ret`.
#define BR_TRY_ACQUIRE(ret, ...) \
  BR_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(ret, __VA_ARGS__))

// Function that must NOT be called while holding the given capabilities
// (deadlock prevention for non-reentrant locks).
#define BR_EXCLUDES(...) BR_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

// Function returning a reference to the given capability.
#define BR_RETURN_CAPABILITY(x) BR_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

// Escape hatch: turns the analysis off for one function. Every use must carry
// a comment explaining why the function is safe regardless.
#define BR_NO_THREAD_SAFETY_ANALYSIS \
  BR_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // SRC_COMMON_THREAD_ANNOTATIONS_H_

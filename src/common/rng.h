// Deterministic random number generation.
//
// Every stochastic component in the reproduction draws from an Rng that is
// seeded explicitly. Re-running a scenario with the same seed produces a
// bit-identical event trace, which the property tests rely on.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace byterobust {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] (inclusive).
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  // Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0);

  // True with probability p.
  bool Bernoulli(double p);

  // Exponentially distributed value with the given mean (> 0).
  double Exponential(double mean);

  // Normally distributed value.
  double Normal(double mean, double stddev);

  // Log-normal with the given underlying mu/sigma.
  double LogNormal(double mu, double sigma);

  // Binomially distributed count of successes from n trials at probability p.
  int Binomial(int n, double p);

  // Samples an index in [0, weights.size()) proportionally to weights.
  // Weights must be non-negative and not all zero.
  std::size_t WeightedIndex(const std::vector<double>& weights);

  // Derives an independent child generator; used so each subsystem consumes
  // its own stream and does not perturb the others' determinism.
  Rng Fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

// Quantile of the Binomial(n, p) distribution: the smallest k such that
// P(X <= k) >= q. Used for P99 warm-standby sizing (paper Sec. 6.2).
int BinomialQuantile(int n, double p, double q);

}  // namespace byterobust

#endif  // SRC_COMMON_RNG_H_

// Streaming statistics helpers used by the metrics and reporting layers.

#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstddef>
#include <limits>
#include <vector>

namespace byterobust {

// Welford-style running mean/variance with min/max tracking.
class RunningStat {
 public:
  void Add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Percentile of a sample set using linear interpolation between order
// statistics. `q` in [0, 1]. The input is copied and sorted.
double Percentile(std::vector<double> values, double q);

// Fixed-width histogram over [lo, hi); values outside are clamped into the
// first/last buckets. Used to report latency distributions in benches.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void Add(double x);

  std::size_t total() const { return total_; }
  const std::vector<std::size_t>& counts() const { return counts_; }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace byterobust

#endif  // SRC_COMMON_STATS_H_

// Minimal leveled logger with simulated-time prefixes.
//
// The logger is intentionally tiny: a global severity threshold, printf-style
// formatting, and an optional SimTime stamp so log lines read like the
// production traces the paper analyzes. Tests set the threshold to kError to
// keep output quiet.

#ifndef SRC_COMMON_LOG_H_
#define SRC_COMMON_LOG_H_

#include <atomic>
#include <string>

#include "src/common/sim_time.h"

namespace byterobust {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

// Sets/gets the process-wide severity threshold. Messages below the threshold
// are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Installs a simulated clock source so log lines carry sim timestamps.
// Pass nullptr to revert to untimed output. The pointer must outlive its use.
// The binding is thread-local: each thread (e.g. each parallel campaign
// worker) binds its own simulator clock without racing the others.
void SetLogClock(const SimTime* now);

// Reverts to untimed output, but only if `now` is still the thread's bound
// clock. Lets a Simulator destructor release its own binding without
// clobbering a newer simulator's clock on the same thread.
void ClearLogClock(const SimTime* now);

// Core logging call; prefer the LOG_* macros below.
void LogMessage(LogLevel level, const char* module, const char* format, ...)
    __attribute__((format(printf, 3, 4)));

namespace log_internal {
// The threshold lives in the header so the macros' enabled-check inlines to a
// single relaxed atomic load. Write through SetLogLevel(), never directly.
//
// Concurrency contract: this atomic and the thread_local clock binding in
// log.cc are the logger's entire cross-thread surface. The threshold is
// process-wide and read by every campaign worker; relaxed ordering is
// sufficient because the value is a monotonic filter, not a synchronization
// flag — no reader infers anything about other memory from it. Being a
// std::atomic it needs no mutex (and thus no BR_GUARDED_BY); the clang
// -Wthread-safety job and the TSan suite both run over this path.
extern std::atomic<int> g_severity_threshold;
}  // namespace log_internal

// True when a message at `level` would be emitted. The BR_LOG_* macros test
// this before evaluating their arguments, so disabled log sites never pay for
// string building (e.g. Incident::ToString on the per-injection hot path).
inline bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >=
         log_internal::g_severity_threshold.load(std::memory_order_relaxed);
}

}  // namespace byterobust

// Module-tagged logging macros. `module` is a short component name such as
// "monitor" or "controller". The level check runs first: macro arguments are
// not evaluated when the message would be discarded.
#define BR_LOG_AT(level, module, ...)                  \
  do {                                                 \
    if (::byterobust::LogEnabled(level)) {             \
      ::byterobust::LogMessage(level, module, __VA_ARGS__); \
    }                                                  \
  } while (0)

#define BR_LOG_DEBUG(module, ...) \
  BR_LOG_AT(::byterobust::LogLevel::kDebug, module, __VA_ARGS__)
#define BR_LOG_INFO(module, ...) \
  BR_LOG_AT(::byterobust::LogLevel::kInfo, module, __VA_ARGS__)
#define BR_LOG_WARN(module, ...) \
  BR_LOG_AT(::byterobust::LogLevel::kWarning, module, __VA_ARGS__)
#define BR_LOG_ERROR(module, ...) \
  BR_LOG_AT(::byterobust::LogLevel::kError, module, __VA_ARGS__)

#endif  // SRC_COMMON_LOG_H_

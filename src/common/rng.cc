#include "src/common/rng.h"

#include <cmath>
#include <stdexcept>

namespace byterobust {

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::Uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

double Rng::Exponential(double mean) {
  if (mean <= 0.0) {
    throw std::invalid_argument("Exponential mean must be positive");
  }
  std::exponential_distribution<double> dist(1.0 / mean);
  return dist(engine_);
}

double Rng::Normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

double Rng::LogNormal(double mu, double sigma) {
  std::lognormal_distribution<double> dist(mu, sigma);
  return dist(engine_);
}

int Rng::Binomial(int n, double p) {
  if (n <= 0 || p <= 0.0) {
    return 0;
  }
  if (p >= 1.0) {
    return n;
  }
  std::binomial_distribution<int> dist(n, p);
  return dist(engine_);
}

std::size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  if (weights.empty()) {
    throw std::invalid_argument("WeightedIndex requires at least one weight");
  }
  std::discrete_distribution<std::size_t> dist(weights.begin(), weights.end());
  return dist(engine_);
}

Rng Rng::Fork() {
  // Consume one value to derive a decorrelated child seed. The golden-ratio
  // constant breaks up the correlation between parent and child streams.
  const std::uint64_t child_seed = engine_() ^ 0x9E3779B97F4A7C15ULL;
  return Rng(child_seed);
}

int BinomialQuantile(int n, double p, double q) {
  if (n <= 0 || p <= 0.0) {
    return 0;
  }
  if (p >= 1.0) {
    return n;
  }
  // Direct CDF walk. n is the machine count (<= tens of thousands) so the
  // incremental pmf recurrence is both exact enough and fast.
  double pmf = std::pow(1.0 - p, n);  // P(X = 0)
  double cdf = pmf;
  int k = 0;
  while (cdf < q && k < n) {
    // pmf(k+1) = pmf(k) * (n-k)/(k+1) * p/(1-p)
    pmf *= static_cast<double>(n - k) / static_cast<double>(k + 1) * (p / (1.0 - p));
    cdf += pmf;
    ++k;
  }
  return k;
}

}  // namespace byterobust

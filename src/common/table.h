// ASCII table printer used by the benchmark harnesses to emit the paper's
// tables/figure series in a uniform format.

#ifndef SRC_COMMON_TABLE_H_
#define SRC_COMMON_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace byterobust {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  // Renders the table with aligned columns and a header separator.
  std::string Render() const;

  // Convenience: renders and writes to stdout.
  void Print() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Number formatting helpers for table cells.
std::string FormatDouble(double v, int precision);
std::string FormatPercent(double fraction, int precision = 1);
std::string FormatInt(std::int64_t v);

}  // namespace byterobust

#endif  // SRC_COMMON_TABLE_H_

#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace byterobust {

void RunningStat::Add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) {
    return 0.0;
  }
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("Percentile q must be in [0, 1]");
  }
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets) : lo_(lo), hi_(hi) {
  if (buckets == 0 || hi <= lo) {
    throw std::invalid_argument("Histogram requires buckets > 0 and hi > lo");
  }
  counts_.assign(buckets, 0);
}

void Histogram::Add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::int64_t>((x - lo_) / width);
  idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const { return bucket_lo(i + 1); }

}  // namespace byterobust

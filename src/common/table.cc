#include "src/common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace byterobust {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    out << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << " " << cells[c];
      out << std::string(widths[c] - cells[c].size(), ' ') << " |";
    }
    out << "\n";
  };

  emit_row(headers_);
  out << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

void TablePrinter::Print() const { std::fputs(Render().c_str(), stdout); }

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string FormatPercent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string FormatInt(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

}  // namespace byterobust

// Simulated-time primitives shared by every module.
//
// All simulation timestamps and durations are expressed as signed 64-bit
// microsecond counts. Using a single integral representation keeps the
// discrete-event simulator deterministic (no floating-point drift when
// summing durations) and makes event ordering total.

#ifndef SRC_COMMON_SIM_TIME_H_
#define SRC_COMMON_SIM_TIME_H_

#include <cstdint>
#include <string>

namespace byterobust {

// A point in simulated time, in microseconds since simulation start.
using SimTime = std::int64_t;

// A span of simulated time, in microseconds.
using SimDuration = std::int64_t;

inline constexpr SimDuration kMicrosecond = 1;
inline constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;
inline constexpr SimDuration kMinute = 60 * kSecond;
inline constexpr SimDuration kHour = 60 * kMinute;
inline constexpr SimDuration kDay = 24 * kHour;

// Converts a (possibly fractional) number of seconds to a SimDuration.
constexpr SimDuration Seconds(double s) { return static_cast<SimDuration>(s * kSecond); }
constexpr SimDuration Milliseconds(double ms) {
  return static_cast<SimDuration>(ms * kMillisecond);
}
constexpr SimDuration Minutes(double m) { return static_cast<SimDuration>(m * kMinute); }
constexpr SimDuration Hours(double h) { return static_cast<SimDuration>(h * kHour); }
constexpr SimDuration Days(double d) { return static_cast<SimDuration>(d * kDay); }

// Converts a SimDuration back to floating-point units for reporting.
constexpr double ToSeconds(SimDuration d) { return static_cast<double>(d) / kSecond; }
constexpr double ToMinutes(SimDuration d) { return static_cast<double>(d) / kMinute; }
constexpr double ToHours(SimDuration d) { return static_cast<double>(d) / kHour; }
constexpr double ToDays(SimDuration d) { return static_cast<double>(d) / kDay; }

// Renders a duration as a compact human-readable string, e.g. "2h03m", "45.0s",
// "120ms". Used by logs and table output.
std::string FormatDuration(SimDuration d);

}  // namespace byterobust

#endif  // SRC_COMMON_SIM_TIME_H_

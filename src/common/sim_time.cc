#include "src/common/sim_time.h"

#include <cstdio>

namespace byterobust {

std::string FormatDuration(SimDuration d) {
  char buf[64];
  const bool negative = d < 0;
  if (negative) {
    d = -d;
  }
  if (d >= kHour) {
    const std::int64_t hours = d / kHour;
    const std::int64_t minutes = (d % kHour) / kMinute;
    std::snprintf(buf, sizeof(buf), "%s%lldh%02lldm", negative ? "-" : "",
                  static_cast<long long>(hours), static_cast<long long>(minutes));
  } else if (d >= kMinute) {
    const std::int64_t minutes = d / kMinute;
    const double seconds = ToSeconds(d % kMinute);
    std::snprintf(buf, sizeof(buf), "%s%lldm%04.1fs", negative ? "-" : "",
                  static_cast<long long>(minutes), seconds);
  } else if (d >= kSecond) {
    std::snprintf(buf, sizeof(buf), "%s%.2fs", negative ? "-" : "", ToSeconds(d));
  } else if (d >= kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%s%.2fms", negative ? "-" : "",
                  static_cast<double>(d) / kMillisecond);
  } else {
    std::snprintf(buf, sizeof(buf), "%s%lldus", negative ? "-" : "", static_cast<long long>(d));
  }
  return buf;
}

}  // namespace byterobust

// Annotated synchronization primitives for clang thread-safety analysis.
//
// libstdc++ ships std::mutex without capability annotations, so code locking
// a raw std::mutex is invisible to `-Wthread-safety`. These thin wrappers
// carry the annotations (src/common/thread_annotations.h) and compile to the
// same code: Mutex is a std::mutex, MutexLock is a lock_guard, CondVar is a
// std::condition_variable that waits on an already-held Mutex.
//
// Usage pattern — shared mutable state is a member guarded by a member
// Mutex, and the analysis proves every access holds it:
//
//   class Queue {
//    public:
//     void Push(Item item) {
//       const MutexLock lock(&mu_);
//       items_.push_back(std::move(item));
//       cv_.NotifyOne();
//     }
//    private:
//     Mutex mu_;
//     CondVar cv_;
//     std::vector<Item> items_ BR_GUARDED_BY(mu_);
//   };
//
// Annotations attach to class members and globals, not function locals, so
// worker-pool state shared via lambda captures must be hoisted into a small
// struct/class for the analysis to see it (see the campaign engine in
// tools/byterobust_cli.cc).

#ifndef SRC_COMMON_SYNC_H_
#define SRC_COMMON_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "src/common/thread_annotations.h"

namespace byterobust {

// std::mutex with capability annotations. Non-reentrant.
class BR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() BR_ACQUIRE() { mu_.lock(); }
  void Unlock() BR_RELEASE() { mu_.unlock(); }
  bool TryLock() BR_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII lock over a Mutex (a lock_guard the analysis understands).
class BR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) BR_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() BR_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

// Condition variable waiting on an already-held Mutex. Wait() atomically
// releases the mutex while blocked and reacquires it before returning, so
// callers annotate with BR_REQUIRES(mu) and the guarded-state invariant holds
// on both sides of the call.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // No predicate overload on purpose: a predicate lambda is a separate
  // function to the analysis, so its guarded reads would not see the held
  // mutex. Write the standard `while (!condition) cv.Wait(&mu);` loop —
  // the analysis checks the condition's accesses directly.
  void Wait(Mutex* mu) BR_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller still holds the mutex, as annotated
  }

  // Timed wait: returns false if `seconds` elapsed without a notification.
  // Same contract as Wait() — mutex held on entry and on return, spurious
  // wakeups possible, so callers loop on their condition and their own
  // deadline (see the seed supervisor's watchdog in src/harness/supervisor.cc).
  bool WaitFor(Mutex* mu, double seconds) BR_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    const std::cv_status status =
        cv_.wait_for(lock, std::chrono::duration<double>(seconds));
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace byterobust

#endif  // SRC_COMMON_SYNC_H_

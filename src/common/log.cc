#include "src/common/log.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>

namespace byterobust {

namespace log_internal {
// The severity threshold is process-wide (campaign workers share it); see
// log.h for why it is header-visible.
std::atomic<int> g_severity_threshold{static_cast<int>(LogLevel::kWarning)};
}  // namespace log_internal

namespace {

// The clock binding is per-thread so each campaign worker's simulator stamps
// its own log lines.
thread_local const SimTime* t_clock = nullptr;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarning:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  log_internal::g_severity_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(
      log_internal::g_severity_threshold.load(std::memory_order_relaxed));
}

void SetLogClock(const SimTime* now) { t_clock = now; }

void ClearLogClock(const SimTime* now) {
  if (t_clock == now) {
    t_clock = nullptr;
  }
}

void LogMessage(LogLevel level, const char* module, const char* format, ...) {
  if (static_cast<int>(level) < static_cast<int>(GetLogLevel())) {
    return;
  }
  char body[1024];
  va_list args;
  va_start(args, format);
  std::vsnprintf(body, sizeof(body), format, args);
  va_end(args);

  if (t_clock != nullptr) {
    std::fprintf(stderr, "[%s][t=%s][%s] %s\n", LevelName(level),
                 FormatDuration(*t_clock).c_str(), module, body);
  } else {
    std::fprintf(stderr, "[%s][%s] %s\n", LevelName(level), module, body);
  }
}

}  // namespace byterobust

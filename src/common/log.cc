#include "src/common/log.h"

#include <cstdarg>
#include <cstdio>

namespace byterobust {
namespace {

LogLevel g_level = LogLevel::kWarning;
const SimTime* g_clock = nullptr;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarning:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }

LogLevel GetLogLevel() { return g_level; }

void SetLogClock(const SimTime* now) { g_clock = now; }

void LogMessage(LogLevel level, const char* module, const char* format, ...) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) {
    return;
  }
  char body[1024];
  va_list args;
  va_start(args, format);
  std::vsnprintf(body, sizeof(body), format, args);
  va_end(args);

  if (g_clock != nullptr) {
    std::fprintf(stderr, "[%s][t=%s][%s] %s\n", LevelName(level),
                 FormatDuration(*g_clock).c_str(), module, body);
  } else {
    std::fprintf(stderr, "[%s][%s] %s\n", LevelName(level), module, body);
  }
}

}  // namespace byterobust

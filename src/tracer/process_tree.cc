#include "src/tracer/process_tree.h"

#include <cstdio>

namespace byterobust {

ProcessTree ProcessTree::BuildPodTree(MachineId machine, int gpus_per_machine) {
  ProcessTree tree;
  tree.machine_ = machine;
  int next_pid = 1;
  auto add = [&tree, &next_pid](int parent, std::string cmd, std::optional<ProcessKind> kind,
                                int local_rank) {
    ProcessNode node;
    node.pid = next_pid++;
    node.parent_pid = parent;
    node.cmdline = std::move(cmd);
    node.kind = kind;
    node.local_rank = local_rank;
    tree.nodes_.push_back(std::move(node));
    return tree.nodes_.back().pid;
  };

  const int root = add(0, "root", std::nullopt, -1);
  const int launcher = add(root, "python3 launch.sh", std::nullopt, -1);
  add(launcher, "robust_agent --daemon", std::nullopt, -1);  // not a capture target
  for (int g = 0; g < gpus_per_machine; ++g) {
    char cmd[64];
    std::snprintf(cmd, sizeof(cmd), "torchrun worker --local-rank=%d", g);
    const int trainer = add(launcher, cmd, ProcessKind::kTrainer, g);
    add(trainer, "dataloader-worker", ProcessKind::kDataLoader, g);
    add(trainer, "ckpt-io-worker", ProcessKind::kCheckpointWriter, g);
  }
  return tree;
}

std::vector<const ProcessNode*> ProcessTree::ChildrenOf(int pid) const {
  std::vector<const ProcessNode*> out;
  for (const auto& n : nodes_) {
    if (n.parent_pid == pid) {
      out.push_back(&n);
    }
  }
  return out;
}

std::vector<const ProcessNode*> ProcessTree::TrainingProcesses() const {
  std::vector<const ProcessNode*> out;
  for (const auto& n : nodes_) {
    if (n.kind.has_value()) {
      out.push_back(&n);
    }
  }
  return out;
}

const ProcessNode* ProcessTree::TrainerFor(int local_rank) const {
  for (const auto& n : nodes_) {
    if (n.kind == ProcessKind::kTrainer && n.local_rank == local_rank) {
      return &n;
    }
  }
  return nullptr;
}

}  // namespace byterobust

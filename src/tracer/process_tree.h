// Pod process-tree model (Fig. 7 step 1): the tracer first parses each pod's
// process tree to find training-related processes — torchrun workers plus the
// dataloader and checkpoint subprocesses they fork — and skips unrelated
// daemons.

#ifndef SRC_TRACER_PROCESS_TREE_H_
#define SRC_TRACER_PROCESS_TREE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/tracer/stack_trace.h"
#include "src/topology/parallelism.h"

namespace byterobust {

struct ProcessNode {
  int pid = 0;
  int parent_pid = 0;
  std::string cmdline;
  // Training role, if this process is training-related.
  std::optional<ProcessKind> kind;
  // Local GPU rank for trainer processes (-1 otherwise).
  int local_rank = -1;
};

class ProcessTree {
 public:
  // Builds the canonical pod tree: root -> launch.sh -> {robust daemon,
  // trainer x gpus (each forking a dataloader and a ckpt writer)}.
  static ProcessTree BuildPodTree(MachineId machine, int gpus_per_machine);

  const std::vector<ProcessNode>& nodes() const { return nodes_; }
  MachineId machine() const { return machine_; }

  // Children of a pid, in creation order.
  std::vector<const ProcessNode*> ChildrenOf(int pid) const;

  // Training-related processes (kind set), the tracer's capture targets.
  std::vector<const ProcessNode*> TrainingProcesses() const;

  // The trainer process owning `local_rank`, or nullptr.
  const ProcessNode* TrainerFor(int local_rank) const;

 private:
  MachineId machine_ = 0;
  std::vector<ProcessNode> nodes_;
};

}  // namespace byterobust

#endif  // SRC_TRACER_PROCESS_TREE_H_

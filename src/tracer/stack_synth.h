// Stack synthesis: produces the per-rank stacks the on-demand tracer would
// capture for a given runtime condition, implementing the hang-propagation
// pattern of Fig. 7.
//
// When one rank stalls, its TP peers block in the same tensor-parallel
// collective; the adjacent upstream pipeline stage blocks in isend, earlier
// stages in irecv; every other rank finishes its backward pass and parks in
// the data-parallel gradient sync (reduce-scatter) — the dominant "healthy"
// stack group.

#ifndef SRC_TRACER_STACK_SYNTH_H_
#define SRC_TRACER_STACK_SYNTH_H_

#include <cstdint>
#include <vector>

#include "src/topology/parallelism.h"
#include "src/tracer/stack_trace.h"

namespace byterobust {

// Where the hang originates.
enum class HangSite {
  kTensorCollective,  // stuck in all_gather_into_tensor (Fig. 7: machine 15)
  kPipelineP2p,       // stuck in pipeline send/recv (evaluation hang, Sec. 5.2)
  kDataLoader,        // culprit's dataloader subprocess wedged (e.g. HDFS read)
  kCheckpointWriter,  // culprit's checkpoint I/O subprocess wedged
};

// Canonical stacks (shared with tests so expectations stay in one place).
// Each is a single interned instance: copies share the frame storage, so
// assembling a whole-pod snapshot costs a refcount bump per process.
const StackTrace& HealthyGradSyncStack();
const StackTrace& TensorCollectiveStack();
const StackTrace& PipelineIsendStack();
const StackTrace& PipelineIrecvStack();
const StackTrace& DataLoaderWaitStack();   // trainer waiting on the data queue
const StackTrace& DataLoaderStuckStack();  // dataloader wedged in storage read
const StackTrace& DataLoaderIdleStack();   // healthy dataloader stack
const StackTrace& CkptWriterIdleStack();
const StackTrace& CkptWriterStuckStack();
const StackTrace& ComputeKernelStack();    // mid-backward compute (fail-slow laggard)

// Trainer-process stacks for a hang seeded at `culprit` with the given site.
// One ProcessStack per rank in the topology.
std::vector<ProcessStack> SynthesizeHangStacks(const Topology& topology, Rank culprit,
                                               HangSite site);

// Trainer + subprocess stacks (3 per rank), used when the root cause may sit
// in a subprocess.
std::vector<ProcessStack> SynthesizeFullPodStacks(const Topology& topology, Rank culprit,
                                                  HangSite site);

// Fail-slow snapshot: the ranks on `slow_machine` appear mid-compute while
// the rest wait at the synchronization barrier. `round_seed` adds one noisy
// false outlier every few rounds, modelling sampling jitter; the analyzer's
// multi-round voting (Sec. 5.1) must see through it.
std::vector<ProcessStack> SynthesizeFailSlowStacks(const Topology& topology,
                                                   MachineId slow_machine,
                                                   std::uint64_t round_seed);

// The sampling-jitter machine a fail-slow round with this seed would also
// catch mid-compute, or -1 for a clean round. Shared with the voting cache
// (src/analyzer/aggregation.h) so a round's snapshot is fully determined by
// (slow_machine, noise machine) and can be memoized.
MachineId FailSlowNoiseMachine(std::uint64_t round_seed, int num_machines);

}  // namespace byterobust

#endif  // SRC_TRACER_STACK_SYNTH_H_

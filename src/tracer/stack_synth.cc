#include "src/tracer/stack_synth.h"

namespace byterobust {

namespace {

// SplitMix64 hash for round jitter.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

const StackTrace& HealthyGradSyncStack() {
  static const StackTrace trace{{
      {"train_step", "my_megatron/training.py", 412},
      {"start_grad_sync", "my_megatron/distributed/param_grad_buffer.py", 597},
      {"_reduce_scatter_tensor", "torch/distributed/distributed_c10d.py", 3379},
  }};
  return trace;
}

const StackTrace& TensorCollectiveStack() {
  static const StackTrace trace{{
      {"backward", "my_megatron/large_centralized_op_v8.py", 6770},
      {"all_gather_into_tensor", "torch/distributed/distributed_c10d.py", 2898},
  }};
  return trace;
}

const StackTrace& PipelineIsendStack() {
  static const StackTrace trace{{
      {"send_backward_recv_backward", "my_megatron/communicate.py", 474},
      {"isend", "torch/distributed/distributed_c10d.py", 1529},
  }};
  return trace;
}

const StackTrace& PipelineIrecvStack() {
  static const StackTrace trace{{
      {"send_backward_recv_backward", "my_megatron/communicate.py", 474},
      {"irecv", "torch/distributed/distributed_c10d.py", 1569},
  }};
  return trace;
}

const StackTrace& DataLoaderWaitStack() {
  static const StackTrace trace{{
      {"train_step", "my_megatron/training.py", 398},
      {"get_batch", "my_megatron/data/loader.py", 122},
      {"queue_get", "multiprocessing/queues.py", 103},
  }};
  return trace;
}

const StackTrace& DataLoaderStuckStack() {
  static const StackTrace trace{{
      {"fetch_shard", "my_megatron/data/hdfs_reader.py", 233},
      {"read", "hdfs/client.py", 410},
  }};
  return trace;
}

const StackTrace& DataLoaderIdleStack() {
  static const StackTrace trace{{
      {"worker_loop", "my_megatron/data/loader.py", 58},
      {"poll", "multiprocessing/connection.py", 257},
  }};
  return trace;
}

const StackTrace& CkptWriterIdleStack() {
  static const StackTrace trace{{
      {"ckpt_io_loop", "my_megatron/ckpt/writer.py", 71},
      {"wait", "threading.py", 331},
  }};
  return trace;
}

const StackTrace& CkptWriterStuckStack() {
  static const StackTrace trace{{
      {"serialize_shard", "my_megatron/ckpt/writer.py", 144},
      {"write", "hdfs/client.py", 502},
  }};
  return trace;
}

const StackTrace& ComputeKernelStack() {
  static const StackTrace trace{{
      {"backward", "my_megatron/fused_kernels/attention.py", 512},
      {"_flash_attn_backward", "flash_attn/flash_attn_interface.py", 181},
  }};
  return trace;
}

namespace {

// Trainer-process stack for one rank during a hang seeded at `culprit`.
// Every branch returns an interned instance, so the caller's copy is shared.
const StackTrace& TrainerStackDuringHang(const Topology& topo, Rank rank, Rank culprit,
                                         HangSite site) {
  const RankCoord rc = topo.CoordOf(rank);
  const RankCoord cc = topo.CoordOf(culprit);

  if (site == HangSite::kDataLoader && rank == culprit) {
    return DataLoaderWaitStack();  // trainer starves waiting for the batch
  }
  if (site == HangSite::kCheckpointWriter && rank == culprit) {
    // Optimizer step gated on the wedged checkpoint save (Sec. 6.3: the step
    // waits for each rank's own save to complete).
    static const StackTrace kWaitCkptFlush{{
        {"optimizer_step", "my_megatron/training.py", 455},
        {"wait_ckpt_flush", "my_megatron/ckpt/manager.py", 203},
    }};
    return kWaitCkptFlush;
  }

  const bool same_tp_group = rc.pp == cc.pp && rc.dp == cc.dp;
  // Pipeline starvation hits the whole stage: both TP ranks of each earlier
  // stage in the culprit's DP column block together (Fig. 7, machines 12-14).
  const bool upstream_stage = rc.dp == cc.dp && rc.pp < cc.pp;

  if (site == HangSite::kTensorCollective || site == HangSite::kDataLoader ||
      site == HangSite::kCheckpointWriter) {
    if (same_tp_group) {
      // The culprit's TP peers wait in the same tensor-parallel collective.
      return TensorCollectiveStack();
    }
  } else if (site == HangSite::kPipelineP2p && rank == culprit) {
    return PipelineIrecvStack();
  } else if (site == HangSite::kPipelineP2p && same_tp_group) {
    return TensorCollectiveStack();
  }

  if (upstream_stage) {
    // Backward gradients flow from later stages toward stage 0; stages below
    // the stalled one starve. The adjacent stage is caught mid fused
    // send/recv in isend, earlier stages in irecv (Fig. 7).
    return rc.pp == cc.pp - 1 ? PipelineIsendStack() : PipelineIrecvStack();
  }

  // Everyone else completed backward kernels and parks in DP gradient sync.
  return HealthyGradSyncStack();
}

}  // namespace

std::vector<ProcessStack> SynthesizeHangStacks(const Topology& topology, Rank culprit,
                                               HangSite site) {
  std::vector<ProcessStack> out;
  out.reserve(static_cast<std::size_t>(topology.world_size()));
  for (Rank r = 0; r < topology.world_size(); ++r) {
    ProcessStack ps;
    ps.rank = r;
    ps.machine = topology.MachineOfRank(r);
    ps.kind = ProcessKind::kTrainer;
    ps.stack = TrainerStackDuringHang(topology, r, culprit, site);
    out.push_back(std::move(ps));
  }
  return out;
}

std::vector<ProcessStack> SynthesizeFullPodStacks(const Topology& topology, Rank culprit,
                                                  HangSite site) {
  std::vector<ProcessStack> out = SynthesizeHangStacks(topology, culprit, site);
  for (Rank r = 0; r < topology.world_size(); ++r) {
    ProcessStack loader;
    loader.rank = r;
    loader.machine = topology.MachineOfRank(r);
    loader.kind = ProcessKind::kDataLoader;
    loader.stack = (site == HangSite::kDataLoader && r == culprit) ? DataLoaderStuckStack()
                                                                   : DataLoaderIdleStack();
    out.push_back(std::move(loader));

    ProcessStack writer;
    writer.rank = r;
    writer.machine = topology.MachineOfRank(r);
    writer.kind = ProcessKind::kCheckpointWriter;
    writer.stack = (site == HangSite::kCheckpointWriter && r == culprit)
                       ? CkptWriterStuckStack()
                       : CkptWriterIdleStack();
    out.push_back(std::move(writer));
  }
  return out;
}

MachineId FailSlowNoiseMachine(std::uint64_t round_seed, int num_machines) {
  // Roughly every third round, one random healthy machine is also caught
  // mid-compute (sampling jitter): single-round aggregation would misfire.
  const std::uint64_t h = Mix(round_seed);
  if ((h % 3) != 0) {
    return -1;
  }
  return static_cast<MachineId>(Mix(h) % static_cast<std::uint64_t>(num_machines));
}

std::vector<ProcessStack> SynthesizeFailSlowStacks(const Topology& topology,
                                                   MachineId slow_machine,
                                                   std::uint64_t round_seed) {
  std::vector<ProcessStack> out;
  out.reserve(static_cast<std::size_t>(topology.world_size()));
  const MachineId noisy = FailSlowNoiseMachine(round_seed, topology.num_machines());

  for (Rank r = 0; r < topology.world_size(); ++r) {
    const MachineId m = topology.MachineOfRank(r);
    ProcessStack ps;
    ps.rank = r;
    ps.machine = m;
    ps.kind = ProcessKind::kTrainer;
    const bool laggard = m == slow_machine || (m == noisy && m != slow_machine);
    ps.stack = laggard ? ComputeKernelStack() : HealthyGradSyncStack();
    out.push_back(std::move(ps));
  }
  return out;
}

}  // namespace byterobust

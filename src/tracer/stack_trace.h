// Stack-trace representation: what the on-demand tracer (py-spy +
// flight-recorder in production, Sec. 7) captures from training processes.

#ifndef SRC_TRACER_STACK_TRACE_H_
#define SRC_TRACER_STACK_TRACE_H_

#include <string>
#include <vector>

#include "src/topology/parallelism.h"

namespace byterobust {

struct StackFrame {
  std::string function;
  std::string file;
  int line = 0;

  bool operator==(const StackFrame&) const = default;
};

struct StackTrace {
  std::vector<StackFrame> frames;  // outermost first

  // Canonical string form; aggregation groups stacks by exact key match
  // (paper Sec. 5.1 "aggregated into multiple groups via string matching").
  std::string Key() const;
  std::string ToString() const;

  bool operator==(const StackTrace&) const = default;
};

// Which process in the pod's tree the stack came from. Root causes may live
// in subprocesses (data fetching, checkpointing), so the tracer captures all
// training-related processes, not just the trainer (Sec. 5.1).
enum class ProcessKind {
  kTrainer,
  kDataLoader,
  kCheckpointWriter,
};

const char* ProcessKindName(ProcessKind kind);

struct ProcessStack {
  Rank rank = 0;
  MachineId machine = 0;
  ProcessKind kind = ProcessKind::kTrainer;
  StackTrace stack;
};

}  // namespace byterobust

#endif  // SRC_TRACER_STACK_TRACE_H_

// Stack-trace representation: what the on-demand tracer (py-spy +
// flight-recorder in production, Sec. 7) captures from training processes.

#ifndef SRC_TRACER_STACK_TRACE_H_
#define SRC_TRACER_STACK_TRACE_H_

#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "src/topology/parallelism.h"

namespace byterobust {

struct StackFrame {
  std::string function;
  std::string file;
  int line = 0;

  bool operator==(const StackFrame&) const = default;
};

// An immutable stack shared by value. A whole-pod trace holds one stack per
// process (world_size x 3 of them), but almost all of those are copies of a
// handful of canned patterns — sharing the frame storage makes synthesizing
// and aggregating a 9,600-rank pod a refcount bump per process instead of a
// string-allocation storm.
class StackTrace {
 public:
  StackTrace() = default;
  StackTrace(std::initializer_list<StackFrame> frames)
      : frames_(std::make_shared<const std::vector<StackFrame>>(frames)) {}
  explicit StackTrace(std::vector<StackFrame> frames)
      : frames_(std::make_shared<const std::vector<StackFrame>>(std::move(frames))) {}

  const std::vector<StackFrame>& frames() const {
    static const std::vector<StackFrame> kEmpty;
    return frames_ ? *frames_ : kEmpty;
  }

  // Stable identity of the shared frame storage (null for empty traces).
  // Copies of one canned stack share it, so aggregation can hash it instead
  // of the frame strings. CAVEAT: aggregation groups by this identity —
  // structurally equal traces built as *separate* objects land in separate
  // groups (with equal keys). Every producer must intern its patterns (the
  // stack_synth.cc builders do); operator== below still deep-compares, so
  // direct equality checks are unaffected.
  const void* identity() const { return frames_.get(); }

  // Canonical string form; aggregation groups stacks by exact key match
  // (paper Sec. 5.1 "aggregated into multiple groups via string matching").
  std::string Key() const;
  std::string ToString() const;

  bool operator==(const StackTrace& other) const {
    return frames_ == other.frames_ || frames() == other.frames();
  }

 private:
  std::shared_ptr<const std::vector<StackFrame>> frames_;
};

// Which process in the pod's tree the stack came from. Root causes may live
// in subprocesses (data fetching, checkpointing), so the tracer captures all
// training-related processes, not just the trainer (Sec. 5.1).
enum class ProcessKind {
  kTrainer,
  kDataLoader,
  kCheckpointWriter,
};

const char* ProcessKindName(ProcessKind kind);

struct ProcessStack {
  Rank rank = 0;
  MachineId machine = 0;
  ProcessKind kind = ProcessKind::kTrainer;
  StackTrace stack;
};

}  // namespace byterobust

#endif  // SRC_TRACER_STACK_TRACE_H_

#include "src/tracer/flight_recorder.h"

#include <algorithm>
#include <set>

namespace byterobust {

const char* CollectiveOpName(CollectiveOp op) {
  switch (op) {
    case CollectiveOp::kAllGather:
      return "all_gather";
    case CollectiveOp::kReduceScatter:
      return "reduce_scatter";
    case CollectiveOp::kAllReduce:
      return "all_reduce";
    case CollectiveOp::kSend:
      return "send";
    case CollectiveOp::kRecv:
      return "recv";
  }
  return "unknown";
}

void FlightRecorder::Record(CollectiveRecord record) {
  records_.push_back(record);
  while (records_.size() > capacity_) {
    records_.pop_front();
  }
}

std::uint64_t FlightRecorder::LatestSeq(GroupKind kind, int index) const {
  std::uint64_t latest = 0;
  for (const CollectiveRecord& r : records_) {
    if (r.group_kind == kind && r.group_index == index) {
      latest = std::max(latest, r.seq);
    }
  }
  return latest;
}

std::vector<CollectiveMismatch> AnalyzeFlightRecords(
    const std::vector<FlightRecorder>& per_rank, const Topology& topology) {
  std::vector<CollectiveMismatch> mismatches;
  for (GroupKind kind : {GroupKind::kTensor, GroupKind::kPipeline, GroupKind::kData}) {
    for (const ParallelGroup& group : topology.Groups(kind)) {
      std::uint64_t max_seq = 0;
      std::uint64_t min_seq = UINT64_MAX;
      for (Rank r : group.ranks) {
        const std::uint64_t seq =
            per_rank[static_cast<std::size_t>(r)].LatestSeq(kind, group.index);
        max_seq = std::max(max_seq, seq);
        min_seq = std::min(min_seq, seq);
      }
      if (max_seq == min_seq) {
        continue;  // consistent: everyone reached the same collective
      }
      CollectiveMismatch mismatch;
      mismatch.group_kind = kind;
      mismatch.group_index = group.index;
      mismatch.expected_seq = max_seq;
      std::set<MachineId> machines;
      for (Rank r : group.ranks) {
        if (per_rank[static_cast<std::size_t>(r)].LatestSeq(kind, group.index) < max_seq) {
          mismatch.lagging_ranks.push_back(r);
          machines.insert(topology.MachineOfRank(r));
        }
      }
      mismatch.lagging_machines.assign(machines.begin(), machines.end());
      mismatches.push_back(std::move(mismatch));
    }
  }
  return mismatches;
}

std::vector<FlightRecorder> SynthesizeHangFlightRecords(const Topology& topology, Rank culprit,
                                                        std::uint64_t healthy_seq,
                                                        std::uint64_t lag) {
  std::vector<FlightRecorder> recorders(static_cast<std::size_t>(topology.world_size()));
  const RankCoord cc = topology.CoordOf(culprit);
  for (Rank r = 0; r < topology.world_size(); ++r) {
    const RankCoord rc = topology.CoordOf(r);
    FlightRecorder& rec = recorders[static_cast<std::size_t>(r)];
    // TP collectives: the culprit's TP group stalled `lag` collectives ago;
    // within the group everyone agrees (they all wait on the same launch).
    const bool tp_stalled = rc.pp == cc.pp && rc.dp == cc.dp;
    rec.Record({tp_stalled ? healthy_seq - lag : healthy_seq, CollectiveOp::kAllGather,
                GroupKind::kTensor, topology.GroupIndexOf(r, GroupKind::kTensor),
                !tp_stalled});
    // Pipeline sends/recvs: within the culprit's DP column, the culprit's
    // stage (and later stages feeding it) never launched the current
    // backward send, while earlier stages already entered their recv — the
    // mismatch the NCCL flight recorder shows on timeouts.
    const bool pp_stalled = rc.dp == cc.dp && rc.pp >= cc.pp;
    rec.Record({pp_stalled ? healthy_seq - lag : healthy_seq,
                rc.pp >= cc.pp ? CollectiveOp::kSend : CollectiveOp::kRecv,
                GroupKind::kPipeline, topology.GroupIndexOf(r, GroupKind::kPipeline),
                !pp_stalled});
    // DP gradient sync: the stalled column never joins this step's
    // reduce-scatter; its DP peers in other columns already entered it.
    const bool dp_stalled = rc.dp == cc.dp;
    rec.Record({dp_stalled ? healthy_seq - lag : healthy_seq, CollectiveOp::kReduceScatter,
                GroupKind::kData, topology.GroupIndexOf(r, GroupKind::kData), !dp_stalled});
  }
  return recorders;
}

}  // namespace byterobust

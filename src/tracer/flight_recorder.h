// Flight recorder (paper Sec. 7): a per-rank ring buffer of recent collective
// operations, mirroring PyTorch's flight recorder. On an NCCL timeout the
// runtime analyzer collects the buffers and finds the collective where some
// ranks of a communication group entered and others did not — the laggards
// are the suspects.

#ifndef SRC_TRACER_FLIGHT_RECORDER_H_
#define SRC_TRACER_FLIGHT_RECORDER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "src/topology/parallelism.h"

namespace byterobust {

enum class CollectiveOp {
  kAllGather,
  kReduceScatter,
  kAllReduce,
  kSend,
  kRecv,
};

const char* CollectiveOpName(CollectiveOp op);

// One collective launch observed on a rank.
struct CollectiveRecord {
  std::uint64_t seq = 0;  // per-(rank, group) monotonically increasing
  CollectiveOp op = CollectiveOp::kAllReduce;
  GroupKind group_kind = GroupKind::kData;
  int group_index = 0;
  bool completed = false;  // false: entered but never finished
};

// Ring buffer of the most recent collectives on one rank.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 64) : capacity_(capacity) {}

  void Record(CollectiveRecord record);

  const std::deque<CollectiveRecord>& records() const { return records_; }

  // Latest sequence number this rank reached in the given group
  // (0 when the rank never touched the group).
  std::uint64_t LatestSeq(GroupKind kind, int index) const;

 private:
  std::size_t capacity_;
  std::deque<CollectiveRecord> records_;
};

// Result of cross-rank flight-record analysis for one mismatched collective.
struct CollectiveMismatch {
  GroupKind group_kind = GroupKind::kData;
  int group_index = 0;
  std::uint64_t expected_seq = 0;        // the seq most ranks reached
  std::vector<Rank> lagging_ranks;       // ranks stuck before expected_seq
  std::vector<MachineId> lagging_machines;
};

// Compares per-rank recorders across each communication group and reports
// groups whose members disagree on the latest sequence number. Ranks at the
// minimum are the laggards blocking the collective.
std::vector<CollectiveMismatch> AnalyzeFlightRecords(
    const std::vector<FlightRecorder>& per_rank, const Topology& topology);

// Synthesizes per-rank flight records for a hang seeded at `culprit`: the
// culprit's groups stall `lag` collectives early while healthy groups
// progress to `healthy_seq`.
std::vector<FlightRecorder> SynthesizeHangFlightRecords(const Topology& topology, Rank culprit,
                                                        std::uint64_t healthy_seq = 128,
                                                        std::uint64_t lag = 2);

}  // namespace byterobust

#endif  // SRC_TRACER_FLIGHT_RECORDER_H_

#include "src/tracer/stack_trace.h"

#include <sstream>

namespace byterobust {

std::string StackTrace::Key() const {
  std::ostringstream out;
  for (const StackFrame& f : frames()) {
    out << f.function << "@" << f.file << ":" << f.line << ";";
  }
  return out.str();
}

std::string StackTrace::ToString() const {
  std::ostringstream out;
  for (const StackFrame& f : frames()) {
    out << "  " << f.function << " (" << f.file << ":" << f.line << ")\n";
  }
  return out.str();
}

const char* ProcessKindName(ProcessKind kind) {
  switch (kind) {
    case ProcessKind::kTrainer:
      return "trainer";
    case ProcessKind::kDataLoader:
      return "dataloader";
    case ProcessKind::kCheckpointWriter:
      return "ckpt-writer";
  }
  return "unknown";
}

}  // namespace byterobust

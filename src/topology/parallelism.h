// 3D-parallel training topology: rank <-> (tp, pp, dp) coordinates, machine
// placement, and parallel-group enumeration (paper Sec. 2.1, Figs. 7 and 9).
//
// Rank layout: rank = tp + TP * (pp + PP * dp), i.e. TP innermost, PP middle,
// DP outermost. This matches the paper's figures: with TP=2, PP=4, DP=4 and
// 2 GPUs/machine, the PP group at dp=3 spans machines {12, 13, 14, 15}
// (Fig. 7), and with TP=2, PP=4, DP=2 the cross-group backup partner of ranks
// {8, 9} is {2, 3} (Fig. 9).
//
// All rank->coord, rank->machine and group-membership queries are answered
// from tables precomputed at construction (the topology is immutable), and
// every group's machine footprint is additionally kept as a MachineSet
// bitmask so covering-group search and backup planning run on word-parallel
// set operations instead of per-call std::set building.

#ifndef SRC_TOPOLOGY_PARALLELISM_H_
#define SRC_TOPOLOGY_PARALLELISM_H_

#include <array>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/common/sync.h"
#include "src/common/thread_annotations.h"

namespace byterobust {

using Rank = int;
using MachineId = int;

// Static parallelism configuration of a training job.
struct ParallelismConfig {
  int tp = 1;  // tensor-parallel size
  int pp = 1;  // pipeline-parallel size
  int dp = 1;  // data-parallel size
  int gpus_per_machine = 8;

  int world_size() const { return tp * pp * dp; }
  int num_machines() const { return world_size() / gpus_per_machine; }

  // True when world_size is a positive multiple of gpus_per_machine and all
  // degrees are >= 1.
  bool Valid() const;

  std::string ToString() const;

  bool operator==(const ParallelismConfig&) const = default;
};

// Position of a rank in the 3D grid.
struct RankCoord {
  int tp = 0;
  int pp = 0;
  int dp = 0;

  bool operator==(const RankCoord&) const = default;
};

// The kind of communication group a set of ranks forms.
enum class GroupKind {
  kTensor,    // varies tp; same (pp, dp)
  kPipeline,  // varies pp; same (tp, dp)
  kData,      // varies dp; same (tp, pp)
};

const char* GroupKindName(GroupKind kind);

// A concrete parallel group: its kind, its index among groups of that kind,
// and its member ranks in increasing coordinate order.
struct ParallelGroup {
  GroupKind kind;
  int index = 0;
  std::vector<Rank> ranks;
};

// Fixed-universe bitmask over machine ids [0, num_machines). Used for group
// machine footprints so coverage and backup-forbidden-set queries are a few
// word operations instead of tree-set lookups.
class MachineSet {
 public:
  MachineSet() = default;
  explicit MachineSet(int num_machines)
      : words_(static_cast<std::size_t>((num_machines + 63) / 64), 0) {}

  void Insert(MachineId m) {
    const std::size_t w = static_cast<std::size_t>(m) >> 6;
    if (m < 0 || w >= words_.size()) {
      throw std::out_of_range("machine id outside MachineSet universe");
    }
    words_[w] |= std::uint64_t{1} << (m & 63);
  }

  bool Contains(MachineId m) const {
    const std::size_t w = static_cast<std::size_t>(m) >> 6;
    return w < words_.size() && (words_[w] >> (m & 63)) & 1;
  }

  // Adds every machine in `other`; the sets must share a universe size.
  void UnionWith(const MachineSet& other) {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      words_[i] |= other.words_[i];
    }
  }

  // True when every machine in `other` is also in this set.
  bool IsSupersetOf(const MachineSet& other) const {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if ((other.words_[i] & ~words_[i]) != 0) {
        return false;
      }
    }
    return true;
  }

  int Count() const;

 private:
  std::vector<std::uint64_t> words_;
};

class Topology {
 public:
  explicit Topology(const ParallelismConfig& config);

  const ParallelismConfig& config() const { return config_; }
  int world_size() const { return config_.world_size(); }
  int num_machines() const { return config_.num_machines(); }

  RankCoord CoordOf(Rank rank) const;
  Rank RankOf(const RankCoord& coord) const;

  MachineId MachineOfRank(Rank rank) const;
  std::vector<Rank> RanksOnMachine(MachineId machine) const;

  // Member ranks of the group containing `rank`, for each kind.
  std::vector<Rank> TensorGroupOf(Rank rank) const;
  std::vector<Rank> PipelineGroupOf(Rank rank) const;
  std::vector<Rank> DataGroupOf(Rank rank) const;
  std::vector<Rank> GroupOf(Rank rank, GroupKind kind) const;

  // Index of the group of `kind` that `rank` belongs to. Groups of a kind are
  // numbered densely from 0.
  int GroupIndexOf(Rank rank, GroupKind kind) const;
  int NumGroups(GroupKind kind) const;

  // All groups of a given kind.
  std::vector<ParallelGroup> Groups(GroupKind kind) const;

  // Zero-copy variant of Groups(): the precomputed table itself.
  const std::vector<ParallelGroup>& AllGroups(GroupKind kind) const;

  // Machines hosting at least one rank of the given group.
  std::vector<MachineId> MachinesOfGroup(const ParallelGroup& group) const;

  // Precomputed machine footprint of the group with this kind and dense
  // index, as a sorted id list and as a bitmask.
  const std::vector<MachineId>& GroupMachines(GroupKind kind, int index) const;
  const MachineSet& GroupMachineSet(GroupKind kind, int index) const;

  // Cross-parallel-group backup partner (paper Sec. 6.3): the rank at
  // pp' = (pp+1) mod PP, dp' = (dp+1) mod DP, same tp. Whenever PP >= 2 and
  // DP >= 2 the partner shares none of the rank's TP/PP/DP groups. For
  // degenerate configs (PP == 1 or DP == 1, e.g. pure ZeRO parallelism) the
  // caller should fall back to neighbor-machine backup; SharesAnyGroup tells
  // it whether the fallback is needed.
  Rank BackupPartnerOf(Rank rank) const;

  // True if a and b are in the same TP, PP, or DP group.
  bool SharesAnyGroup(Rank a, Rank b) const;

  // Smallest single parallel group (by member count, preferring PP) whose
  // machines cover every machine in `machines`; returns false if no single
  // group covers them. Used by the runtime analyzer for over-eviction.
  bool FindCoveringGroup(const std::vector<MachineId>& machines, ParallelGroup* out) const;

 private:
  static std::size_t KindIndex(GroupKind kind) { return static_cast<std::size_t>(kind); }

  void CheckRank(Rank rank) const;

  ParallelismConfig config_;
  std::vector<RankCoord> coords_;          // rank -> coordinate
  std::vector<MachineId> machine_of_;      // rank -> machine
  std::array<std::vector<ParallelGroup>, 3> groups_;            // kind -> groups
  std::array<std::vector<std::vector<MachineId>>, 3> group_machines_;
  std::array<std::vector<MachineSet>, 3> group_machine_sets_;
};

// Process-wide frozen-template cache: one immutable `T` per distinct
// ParallelismConfig, built on first request by `build` (returning
// shared_ptr<const T>). A handful of distinct configs exist per process (one
// per scenario), so a linear scan under a mutex beats hashing; entries are
// kept for the process lifetime — that is the point of a frozen template.
// All consumers only run const queries, so sharing across concurrent
// campaign workers is safe. The entry list is the one piece of process-wide
// mutable state on the campaign hot path; clang's thread-safety analysis
// proves every access holds the cache mutex (BR_GUARDED_BY).
template <typename T>
struct FrozenConfigCache {
  Mutex mutex;
  std::vector<std::pair<ParallelismConfig, std::shared_ptr<const T>>> entries
      BR_GUARDED_BY(mutex);
};

template <typename T, typename Builder>
std::shared_ptr<const T> FrozenByConfig(const ParallelismConfig& config, Builder build) {
  // Leaked on purpose: frozen templates live for the process, and a leaked
  // heap object sidesteps destruction-order races at exit.
  static auto* cache = new FrozenConfigCache<T>();
  const MutexLock lock(&cache->mutex);
  for (const auto& [cached_config, value] : cache->entries) {
    if (cached_config == config) {
      return value;
    }
  }
  cache->entries.emplace_back(config, build());
  return cache->entries.back().second;
}

// Frozen campaign template: the rank/machine/group tables above are a pure
// function of the config, yet every campaign seed used to rebuild them
// (~2.5 ms of the per-seed cost on the 9,600-GPU presets). Hands every
// TrainJob one immutable shared instance per config; per-seed output is
// unchanged.
std::shared_ptr<const Topology> SharedTopology(const ParallelismConfig& config);

}  // namespace byterobust

#endif  // SRC_TOPOLOGY_PARALLELISM_H_

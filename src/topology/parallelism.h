// 3D-parallel training topology: rank <-> (tp, pp, dp) coordinates, machine
// placement, and parallel-group enumeration (paper Sec. 2.1, Figs. 7 and 9).
//
// Rank layout: rank = tp + TP * (pp + PP * dp), i.e. TP innermost, PP middle,
// DP outermost. This matches the paper's figures: with TP=2, PP=4, DP=4 and
// 2 GPUs/machine, the PP group at dp=3 spans machines {12, 13, 14, 15}
// (Fig. 7), and with TP=2, PP=4, DP=2 the cross-group backup partner of ranks
// {8, 9} is {2, 3} (Fig. 9).

#ifndef SRC_TOPOLOGY_PARALLELISM_H_
#define SRC_TOPOLOGY_PARALLELISM_H_

#include <string>
#include <vector>

namespace byterobust {

using Rank = int;
using MachineId = int;

// Static parallelism configuration of a training job.
struct ParallelismConfig {
  int tp = 1;  // tensor-parallel size
  int pp = 1;  // pipeline-parallel size
  int dp = 1;  // data-parallel size
  int gpus_per_machine = 8;

  int world_size() const { return tp * pp * dp; }
  int num_machines() const { return world_size() / gpus_per_machine; }

  // True when world_size is a positive multiple of gpus_per_machine and all
  // degrees are >= 1.
  bool Valid() const;

  std::string ToString() const;
};

// Position of a rank in the 3D grid.
struct RankCoord {
  int tp = 0;
  int pp = 0;
  int dp = 0;

  bool operator==(const RankCoord&) const = default;
};

// The kind of communication group a set of ranks forms.
enum class GroupKind {
  kTensor,    // varies tp; same (pp, dp)
  kPipeline,  // varies pp; same (tp, dp)
  kData,      // varies dp; same (tp, pp)
};

const char* GroupKindName(GroupKind kind);

// A concrete parallel group: its kind, its index among groups of that kind,
// and its member ranks in increasing coordinate order.
struct ParallelGroup {
  GroupKind kind;
  int index = 0;
  std::vector<Rank> ranks;
};

class Topology {
 public:
  explicit Topology(const ParallelismConfig& config);

  const ParallelismConfig& config() const { return config_; }
  int world_size() const { return config_.world_size(); }
  int num_machines() const { return config_.num_machines(); }

  RankCoord CoordOf(Rank rank) const;
  Rank RankOf(const RankCoord& coord) const;

  MachineId MachineOfRank(Rank rank) const;
  std::vector<Rank> RanksOnMachine(MachineId machine) const;

  // Member ranks of the group containing `rank`, for each kind.
  std::vector<Rank> TensorGroupOf(Rank rank) const;
  std::vector<Rank> PipelineGroupOf(Rank rank) const;
  std::vector<Rank> DataGroupOf(Rank rank) const;
  std::vector<Rank> GroupOf(Rank rank, GroupKind kind) const;

  // Index of the group of `kind` that `rank` belongs to. Groups of a kind are
  // numbered densely from 0.
  int GroupIndexOf(Rank rank, GroupKind kind) const;
  int NumGroups(GroupKind kind) const;

  // All groups of a given kind.
  std::vector<ParallelGroup> Groups(GroupKind kind) const;

  // Machines hosting at least one rank of the given group.
  std::vector<MachineId> MachinesOfGroup(const ParallelGroup& group) const;

  // Cross-parallel-group backup partner (paper Sec. 6.3): the rank at
  // pp' = (pp+1) mod PP, dp' = (dp+1) mod DP, same tp. Whenever PP >= 2 and
  // DP >= 2 the partner shares none of the rank's TP/PP/DP groups. For
  // degenerate configs (PP == 1 or DP == 1, e.g. pure ZeRO parallelism) the
  // caller should fall back to neighbor-machine backup; SharesAnyGroup tells
  // it whether the fallback is needed.
  Rank BackupPartnerOf(Rank rank) const;

  // True if a and b are in the same TP, PP, or DP group.
  bool SharesAnyGroup(Rank a, Rank b) const;

  // Smallest single parallel group (by member count, preferring PP) whose
  // machines cover every machine in `machines`; returns false if no single
  // group covers them. Used by the runtime analyzer for over-eviction.
  bool FindCoveringGroup(const std::vector<MachineId>& machines, ParallelGroup* out) const;

 private:
  ParallelismConfig config_;
};

}  // namespace byterobust

#endif  // SRC_TOPOLOGY_PARALLELISM_H_

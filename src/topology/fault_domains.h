// Hierarchical fault-domain topology (ROADMAP item 1): the physical failure
// structure above the flat machine list. Every machine sits under a path of
// nested domains — its host NIC, the ToR switch of its rack, the spine switch
// aggregating several racks, and the pod power domain feeding them — and
// correlated infrastructure faults strike a *domain*, degrading or killing
// every machine beneath it at once (spine flaps, pod power loss, link-level
// fail-slow with congestion backpressure on collectives).
//
// Machine ids are laid out rack-contiguously (the fleet allocator carves jobs
// from the lowest idle ids), so every domain covers one contiguous machine-id
// range and the ToR bands coincide with the legacy switch-storm band math
// (`machines_per_switch` in src/fleet) that this graph replaces.
//
// Domain health is tri-state (up / degraded / down) with a degradation factor
// for fail-slow links; any state change bumps the owning cluster's
// HealthEpoch, so the perf model, suspect index and quiescent monitor observe
// domain faults through the exact same cache-invalidation channel as
// per-machine health mutations.

#ifndef SRC_TOPOLOGY_FAULT_DOMAINS_H_
#define SRC_TOPOLOGY_FAULT_DOMAINS_H_

#include <vector>

#include "src/cluster/machine.h"
#include "src/common/sim_time.h"
#include "src/topology/parallelism.h"

namespace byterobust {

// Index into FaultDomains' domain table.
using DomainId = int;

// Domain levels, innermost first. Each machine's path holds exactly one
// domain per level.
enum class DomainLevel : int {
  kNic = 0,    // the machine's own host NIC (single-machine domain)
  kTor = 1,    // top-of-rack switch
  kSpine = 2,  // spine switch aggregating tors_per_spine racks
  kPod = 3,    // pod power domain feeding spines_per_pod spines
};
inline constexpr int kNumDomainLevels = 4;

const char* DomainLevelName(DomainLevel level);

enum class DomainState {
  kUp,        // nominal
  kDegraded,  // serving but impaired (flapping switch, congested link)
  kDown,      // hard-failed (power loss); machines beneath it are dead
};

const char* DomainStateName(DomainState state);

// Shape of the domain tree over a machine pool. Division is by contiguous
// machine-id bands; ragged tails (a last rack with fewer machines) are fine.
struct FaultDomainConfig {
  // When false, no graph is attached anywhere: the cluster behaves exactly
  // like the flat pre-domain model (legacy band math in the fleet storm
  // generator, no congestion term in the perf model).
  bool enabled = true;
  int machines_per_tor = 6;
  int tors_per_spine = 4;
  int spines_per_pod = 2;
};

// One node of the domain tree.
struct Domain {
  DomainId id = -1;
  DomainLevel level = DomainLevel::kNic;
  int index = 0;         // index within its level
  DomainId parent = -1;  // -1 for pods (roots)
  // Contiguous machine-id range covered, [begin, end).
  MachineId machine_begin = 0;
  MachineId machine_end = 0;
  DomainState state = DomainState::kUp;
  // < 1.0 slows communication crossing this domain (fail-slow link); applied
  // multiplicatively by the perf model through Cluster::CongestionFactor().
  double degradation_factor = 1.0;
  SimTime state_since = 0;
};

// Process-wide escape hatch: BYTEROBUST_FAULT_DOMAINS=0 pins the legacy flat
// topology (no graph attached anywhere) so campaign JSON can be byte-compared
// against the pre-domain binary by the cli_fault_domain_equivalence ctest.
bool FaultDomainsEnvEnabled();

class FaultDomains {
 public:
  // Builds the tree over machine ids [0, num_machines). Machines added later
  // (standby provisioning) clamp into the last domain of each level.
  FaultDomains(const FaultDomainConfig& config, int num_machines);

  FaultDomains(const FaultDomains&) = delete;
  FaultDomains& operator=(const FaultDomains&) = delete;

  // Installed by the owning Cluster so every SetState/Heal bumps the shared
  // health epoch. Standalone graphs (unit tests) keep nullptr.
  void BindHealthEpoch(HealthEpoch* epoch) { health_epoch_hook_ = epoch; }

  const FaultDomainConfig& config() const { return config_; }
  int num_machines() const { return num_machines_; }
  int num_domains() const { return static_cast<int>(domains_.size()); }
  int CountAtLevel(DomainLevel level) const;

  const Domain& domain(DomainId id) const {
    return domains_.at(static_cast<std::size_t>(id));
  }
  DomainId DomainIdAt(DomainLevel level, int index) const;
  const Domain& DomainAt(DomainLevel level, int index) const {
    return domain(DomainIdAt(level, index));
  }

  MachineId machine_begin(DomainId id) const { return domain(id).machine_begin; }
  MachineId machine_end(DomainId id) const { return domain(id).machine_end; }

  // Path of domain ids for `machine`, innermost (NIC) to outermost (pod).
  // Ids beyond the constructed range clamp into the last domain per level.
  std::vector<DomainId> PathOfMachine(MachineId machine) const;

  // Health transitions. Both bump the bound health epoch.
  void SetState(DomainId id, DomainState state, double degradation_factor, SimTime now);
  void Heal(DomainId id, SimTime now) { SetState(id, DomainState::kUp, 1.0, now); }

  bool AnyImpaired() const { return !impaired_.empty(); }
  // Impaired domain ids (state != kUp), ascending.
  const std::vector<DomainId>& impaired() const { return impaired_; }

  // Congestion term for a job whose serving machines are `serving`: the
  // minimum degradation factor over impaired domains whose machine range the
  // serving set *crosses* (members both inside and outside — collectives then
  // traverse the degraded link). 1.0 when nothing applies.
  double CongestionFactorFor(const std::vector<MachineId>& serving) const;

 private:
  FaultDomainConfig config_;
  int num_machines_;
  std::vector<Domain> domains_;
  // First domain id of each level (levels are id-contiguous), plus a
  // terminating total for CountAtLevel.
  int level_offset_[kNumDomainLevels + 1] = {};
  std::vector<DomainId> impaired_;  // ascending ids with state != kUp
  HealthEpoch* health_epoch_hook_ = nullptr;
};

}  // namespace byterobust

#endif  // SRC_TOPOLOGY_FAULT_DOMAINS_H_

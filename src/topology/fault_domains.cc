#include "src/topology/fault_domains.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace byterobust {

const char* DomainLevelName(DomainLevel level) {
  switch (level) {
    case DomainLevel::kNic:
      return "nic";
    case DomainLevel::kTor:
      return "tor";
    case DomainLevel::kSpine:
      return "spine";
    case DomainLevel::kPod:
      return "pod";
  }
  return "unknown";
}

const char* DomainStateName(DomainState state) {
  switch (state) {
    case DomainState::kUp:
      return "up";
    case DomainState::kDegraded:
      return "degraded";
    case DomainState::kDown:
      return "down";
  }
  return "unknown";
}

bool FaultDomainsEnvEnabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("BYTEROBUST_FAULT_DOMAINS");
    return env == nullptr || std::string(env) != "0";
  }();
  return enabled;
}

namespace {
int DivUp(int a, int b) { return (a + b - 1) / b; }
}  // namespace

FaultDomains::FaultDomains(const FaultDomainConfig& config, int num_machines)
    : config_(config), num_machines_(num_machines) {
  if (num_machines <= 0) {
    throw std::invalid_argument("fault-domain graph needs at least one machine");
  }
  config_.machines_per_tor = std::max(config_.machines_per_tor, 1);
  config_.tors_per_spine = std::max(config_.tors_per_spine, 1);
  config_.spines_per_pod = std::max(config_.spines_per_pod, 1);

  const int num_nics = num_machines;
  const int num_tors = DivUp(num_machines, config_.machines_per_tor);
  const int num_spines = DivUp(num_tors, config_.tors_per_spine);
  const int num_pods = DivUp(num_spines, config_.spines_per_pod);
  const int counts[kNumDomainLevels] = {num_nics, num_tors, num_spines, num_pods};
  level_offset_[0] = 0;
  for (int l = 0; l < kNumDomainLevels; ++l) {
    level_offset_[l + 1] = level_offset_[l] + counts[l];
  }
  domains_.reserve(static_cast<std::size_t>(level_offset_[kNumDomainLevels]));

  // Machines covered per domain at each level (contiguous-id bands; the
  // ToR band width equals the legacy fleet `machines_per_switch` math).
  const int span_tor = config_.machines_per_tor;
  const int span_spine = span_tor * config_.tors_per_spine;
  const int span_pod = span_spine * config_.spines_per_pod;
  const int spans[kNumDomainLevels] = {1, span_tor, span_spine, span_pod};

  for (int l = 0; l < kNumDomainLevels; ++l) {
    for (int i = 0; i < counts[l]; ++i) {
      Domain d;
      d.id = level_offset_[l] + i;
      d.level = static_cast<DomainLevel>(l);
      d.index = i;
      d.machine_begin = i * spans[l];
      d.machine_end = std::min(d.machine_begin + spans[l], num_machines);
      if (l + 1 < kNumDomainLevels) {
        // Parent index: which band one level up covers this domain's machines.
        const int parent_index =
            std::min(d.machine_begin / spans[l + 1], counts[l + 1] - 1);
        d.parent = level_offset_[l + 1] + parent_index;
      }
      domains_.push_back(d);
    }
  }
}

int FaultDomains::CountAtLevel(DomainLevel level) const {
  const int l = static_cast<int>(level);
  return level_offset_[l + 1] - level_offset_[l];
}

DomainId FaultDomains::DomainIdAt(DomainLevel level, int index) const {
  const int l = static_cast<int>(level);
  if (index < 0 || index >= CountAtLevel(level)) {
    throw std::out_of_range("domain index out of range for level");
  }
  return level_offset_[l] + index;
}

std::vector<DomainId> FaultDomains::PathOfMachine(MachineId machine) const {
  std::vector<DomainId> path;
  path.reserve(kNumDomainLevels);
  const int span_tor = config_.machines_per_tor;
  const int span_spine = span_tor * config_.tors_per_spine;
  const int span_pod = span_spine * config_.spines_per_pod;
  const int spans[kNumDomainLevels] = {1, span_tor, span_spine, span_pod};
  const int m = std::max(machine, 0);
  for (int l = 0; l < kNumDomainLevels; ++l) {
    const int count = level_offset_[l + 1] - level_offset_[l];
    const int index = std::min(m / spans[l], count - 1);
    path.push_back(level_offset_[l] + index);
  }
  return path;
}

void FaultDomains::SetState(DomainId id, DomainState state, double degradation_factor,
                            SimTime now) {
  Domain& d = domains_.at(static_cast<std::size_t>(id));
  d.state = state;
  d.degradation_factor = state == DomainState::kUp ? 1.0 : degradation_factor;
  d.state_since = now;
  const auto it = std::lower_bound(impaired_.begin(), impaired_.end(), id);
  const bool listed = it != impaired_.end() && *it == id;
  if (state == DomainState::kUp) {
    if (listed) {
      impaired_.erase(it);
    }
  } else if (!listed) {
    impaired_.insert(it, id);
  }
  if (health_epoch_hook_ != nullptr) {
    health_epoch_hook_->Bump();
  }
}

double FaultDomains::CongestionFactorFor(const std::vector<MachineId>& serving) const {
  if (impaired_.empty() || serving.size() < 2) {
    return 1.0;
  }
  double factor = 1.0;
  for (DomainId id : impaired_) {
    const Domain& d = domains_[static_cast<std::size_t>(id)];
    if (d.degradation_factor >= 1.0) {
      continue;  // degraded but not a fail-slow link (e.g. a flapping spine)
    }
    int inside = 0;
    for (MachineId m : serving) {
      if (m >= d.machine_begin && m < d.machine_end) {
        ++inside;
      }
    }
    // Only traffic *crossing* the domain boundary rides the degraded link; a
    // job entirely inside (or entirely outside) the band keeps local links.
    if (inside > 0 && inside < static_cast<int>(serving.size())) {
      factor = std::min(factor, d.degradation_factor);
    }
  }
  return factor;
}

}  // namespace byterobust

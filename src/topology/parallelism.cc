#include "src/topology/parallelism.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <stdexcept>

namespace byterobust {

bool ParallelismConfig::Valid() const {
  if (tp < 1 || pp < 1 || dp < 1 || gpus_per_machine < 1) {
    return false;
  }
  return world_size() % gpus_per_machine == 0;
}

std::string ParallelismConfig::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "TP=%d, PP=%d, DP=%d (%d GPUs on %d machines)", tp, pp, dp,
                world_size(), num_machines());
  return buf;
}

const char* GroupKindName(GroupKind kind) {
  switch (kind) {
    case GroupKind::kTensor:
      return "TP";
    case GroupKind::kPipeline:
      return "PP";
    case GroupKind::kData:
      return "DP";
  }
  return "??";
}

Topology::Topology(const ParallelismConfig& config) : config_(config) {
  if (!config.Valid()) {
    throw std::invalid_argument("invalid parallelism config: " + config.ToString());
  }
}

RankCoord Topology::CoordOf(Rank rank) const {
  if (rank < 0 || rank >= world_size()) {
    throw std::out_of_range("rank out of range");
  }
  RankCoord c;
  c.tp = rank % config_.tp;
  c.pp = (rank / config_.tp) % config_.pp;
  c.dp = rank / (config_.tp * config_.pp);
  return c;
}

Rank Topology::RankOf(const RankCoord& coord) const {
  return coord.tp + config_.tp * (coord.pp + config_.pp * coord.dp);
}

MachineId Topology::MachineOfRank(Rank rank) const {
  if (rank < 0 || rank >= world_size()) {
    throw std::out_of_range("rank out of range");
  }
  return rank / config_.gpus_per_machine;
}

std::vector<Rank> Topology::RanksOnMachine(MachineId machine) const {
  if (machine < 0 || machine >= num_machines()) {
    throw std::out_of_range("machine out of range");
  }
  std::vector<Rank> ranks(static_cast<std::size_t>(config_.gpus_per_machine));
  for (int i = 0; i < config_.gpus_per_machine; ++i) {
    ranks[static_cast<std::size_t>(i)] = machine * config_.gpus_per_machine + i;
  }
  return ranks;
}

std::vector<Rank> Topology::GroupOf(Rank rank, GroupKind kind) const {
  RankCoord c = CoordOf(rank);
  std::vector<Rank> out;
  switch (kind) {
    case GroupKind::kTensor:
      out.reserve(static_cast<std::size_t>(config_.tp));
      for (int t = 0; t < config_.tp; ++t) {
        out.push_back(RankOf({t, c.pp, c.dp}));
      }
      break;
    case GroupKind::kPipeline:
      out.reserve(static_cast<std::size_t>(config_.pp));
      for (int p = 0; p < config_.pp; ++p) {
        out.push_back(RankOf({c.tp, p, c.dp}));
      }
      break;
    case GroupKind::kData:
      out.reserve(static_cast<std::size_t>(config_.dp));
      for (int d = 0; d < config_.dp; ++d) {
        out.push_back(RankOf({c.tp, c.pp, d}));
      }
      break;
  }
  return out;
}

std::vector<Rank> Topology::TensorGroupOf(Rank rank) const {
  return GroupOf(rank, GroupKind::kTensor);
}
std::vector<Rank> Topology::PipelineGroupOf(Rank rank) const {
  return GroupOf(rank, GroupKind::kPipeline);
}
std::vector<Rank> Topology::DataGroupOf(Rank rank) const { return GroupOf(rank, GroupKind::kData); }

int Topology::GroupIndexOf(Rank rank, GroupKind kind) const {
  RankCoord c = CoordOf(rank);
  switch (kind) {
    case GroupKind::kTensor:
      return c.pp + config_.pp * c.dp;
    case GroupKind::kPipeline:
      return c.tp + config_.tp * c.dp;
    case GroupKind::kData:
      return c.tp + config_.tp * c.pp;
  }
  return -1;
}

int Topology::NumGroups(GroupKind kind) const {
  switch (kind) {
    case GroupKind::kTensor:
      return config_.pp * config_.dp;
    case GroupKind::kPipeline:
      return config_.tp * config_.dp;
    case GroupKind::kData:
      return config_.tp * config_.pp;
  }
  return 0;
}

std::vector<ParallelGroup> Topology::Groups(GroupKind kind) const {
  const int n = NumGroups(kind);
  std::vector<ParallelGroup> groups(static_cast<std::size_t>(n));
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (Rank r = 0; r < world_size(); ++r) {
    const int idx = GroupIndexOf(r, kind);
    auto& g = groups[static_cast<std::size_t>(idx)];
    if (!seen[static_cast<std::size_t>(idx)]) {
      seen[static_cast<std::size_t>(idx)] = true;
      g.kind = kind;
      g.index = idx;
      g.ranks = GroupOf(r, kind);
    }
  }
  return groups;
}

std::vector<MachineId> Topology::MachinesOfGroup(const ParallelGroup& group) const {
  std::set<MachineId> machines;
  for (Rank r : group.ranks) {
    machines.insert(MachineOfRank(r));
  }
  return {machines.begin(), machines.end()};
}

Rank Topology::BackupPartnerOf(Rank rank) const {
  RankCoord c = CoordOf(rank);
  RankCoord partner = c;
  partner.pp = (c.pp + 1) % config_.pp;
  partner.dp = (c.dp + 1) % config_.dp;
  return RankOf(partner);
}

bool Topology::SharesAnyGroup(Rank a, Rank b) const {
  const RankCoord ca = CoordOf(a);
  const RankCoord cb = CoordOf(b);
  const bool same_tp_group = ca.pp == cb.pp && ca.dp == cb.dp;
  const bool same_pp_group = ca.tp == cb.tp && ca.dp == cb.dp;
  const bool same_dp_group = ca.tp == cb.tp && ca.pp == cb.pp;
  return same_tp_group || same_pp_group || same_dp_group;
}

bool Topology::FindCoveringGroup(const std::vector<MachineId>& machines,
                                 ParallelGroup* out) const {
  if (machines.empty()) {
    return false;
  }
  const std::set<MachineId> targets(machines.begin(), machines.end());

  // Prefer pipeline groups: the paper over-evicts whole PP groups (Sec. 9),
  // then fall back to DP / TP groups if a smaller kind covers.
  const GroupKind order[] = {GroupKind::kPipeline, GroupKind::kData, GroupKind::kTensor};
  const ParallelGroup* best = nullptr;
  std::vector<std::vector<ParallelGroup>> all;
  all.reserve(3);
  for (GroupKind kind : order) {
    all.push_back(Groups(kind));
  }
  std::size_t best_machines = 0;
  for (const auto& groups : all) {
    for (const auto& g : groups) {
      std::vector<MachineId> group_machines = MachinesOfGroup(g);
      const std::set<MachineId> gm(group_machines.begin(), group_machines.end());
      const bool covers = std::all_of(targets.begin(), targets.end(),
                                      [&gm](MachineId m) { return gm.count(m) > 0; });
      if (covers && (best == nullptr || gm.size() < best_machines)) {
        best = &g;
        best_machines = gm.size();
      }
    }
    if (best != nullptr) {
      break;  // groups of the preferred kind cover; do not widen further
    }
  }
  if (best == nullptr) {
    return false;
  }
  *out = *best;
  return true;
}

}  // namespace byterobust

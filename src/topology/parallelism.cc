#include "src/topology/parallelism.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <stdexcept>

namespace byterobust {

bool ParallelismConfig::Valid() const {
  if (tp < 1 || pp < 1 || dp < 1 || gpus_per_machine < 1) {
    return false;
  }
  return world_size() % gpus_per_machine == 0;
}

std::string ParallelismConfig::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "TP=%d, PP=%d, DP=%d (%d GPUs on %d machines)", tp, pp, dp,
                world_size(), num_machines());
  return buf;
}

const char* GroupKindName(GroupKind kind) {
  switch (kind) {
    case GroupKind::kTensor:
      return "TP";
    case GroupKind::kPipeline:
      return "PP";
    case GroupKind::kData:
      return "DP";
  }
  return "??";
}

int MachineSet::Count() const {
  int count = 0;
  for (std::uint64_t w : words_) {
    count += std::popcount(w);
  }
  return count;
}

Topology::Topology(const ParallelismConfig& config) : config_(config) {
  if (!config.Valid()) {
    throw std::invalid_argument("invalid parallelism config: " + config.ToString());
  }
  const int world = world_size();
  coords_.resize(static_cast<std::size_t>(world));
  machine_of_.resize(static_cast<std::size_t>(world));
  for (Rank r = 0; r < world; ++r) {
    RankCoord c;
    c.tp = r % config_.tp;
    c.pp = (r / config_.tp) % config_.pp;
    c.dp = r / (config_.tp * config_.pp);
    coords_[static_cast<std::size_t>(r)] = c;
    machine_of_[static_cast<std::size_t>(r)] = r / config_.gpus_per_machine;
  }

  for (GroupKind kind : {GroupKind::kTensor, GroupKind::kPipeline, GroupKind::kData}) {
    const std::size_t k = KindIndex(kind);
    const int n = NumGroups(kind);
    groups_[k].resize(static_cast<std::size_t>(n));
    group_machines_[k].resize(static_cast<std::size_t>(n));
    group_machine_sets_[k].assign(static_cast<std::size_t>(n), MachineSet(num_machines()));
    for (Rank r = 0; r < world; ++r) {
      const std::size_t idx = static_cast<std::size_t>(GroupIndexOf(r, kind));
      ParallelGroup& g = groups_[k][idx];
      if (g.ranks.empty()) {
        g.kind = kind;
        g.index = static_cast<int>(idx);
      }
      // Rank iteration order is increasing coordinate order within a group.
      g.ranks.push_back(r);
      group_machine_sets_[k][idx].Insert(machine_of_[static_cast<std::size_t>(r)]);
    }
    for (int i = 0; i < n; ++i) {
      std::vector<MachineId>& machines = group_machines_[k][static_cast<std::size_t>(i)];
      for (Rank r : groups_[k][static_cast<std::size_t>(i)].ranks) {
        machines.push_back(machine_of_[static_cast<std::size_t>(r)]);
      }
      std::sort(machines.begin(), machines.end());
      machines.erase(std::unique(machines.begin(), machines.end()), machines.end());
    }
  }
}

void Topology::CheckRank(Rank rank) const {
  if (rank < 0 || rank >= world_size()) {
    throw std::out_of_range("rank out of range");
  }
}

RankCoord Topology::CoordOf(Rank rank) const {
  CheckRank(rank);
  return coords_[static_cast<std::size_t>(rank)];
}

Rank Topology::RankOf(const RankCoord& coord) const {
  return coord.tp + config_.tp * (coord.pp + config_.pp * coord.dp);
}

MachineId Topology::MachineOfRank(Rank rank) const {
  CheckRank(rank);
  return machine_of_[static_cast<std::size_t>(rank)];
}

std::vector<Rank> Topology::RanksOnMachine(MachineId machine) const {
  if (machine < 0 || machine >= num_machines()) {
    throw std::out_of_range("machine out of range");
  }
  std::vector<Rank> ranks(static_cast<std::size_t>(config_.gpus_per_machine));
  for (int i = 0; i < config_.gpus_per_machine; ++i) {
    ranks[static_cast<std::size_t>(i)] = machine * config_.gpus_per_machine + i;
  }
  return ranks;
}

std::vector<Rank> Topology::GroupOf(Rank rank, GroupKind kind) const {
  CheckRank(rank);
  const std::size_t idx = static_cast<std::size_t>(GroupIndexOf(rank, kind));
  return groups_[KindIndex(kind)][idx].ranks;
}

std::vector<Rank> Topology::TensorGroupOf(Rank rank) const {
  return GroupOf(rank, GroupKind::kTensor);
}
std::vector<Rank> Topology::PipelineGroupOf(Rank rank) const {
  return GroupOf(rank, GroupKind::kPipeline);
}
std::vector<Rank> Topology::DataGroupOf(Rank rank) const { return GroupOf(rank, GroupKind::kData); }

int Topology::GroupIndexOf(Rank rank, GroupKind kind) const {
  CheckRank(rank);
  const RankCoord& c = coords_[static_cast<std::size_t>(rank)];
  switch (kind) {
    case GroupKind::kTensor:
      return c.pp + config_.pp * c.dp;
    case GroupKind::kPipeline:
      return c.tp + config_.tp * c.dp;
    case GroupKind::kData:
      return c.tp + config_.tp * c.pp;
  }
  return -1;
}

int Topology::NumGroups(GroupKind kind) const {
  switch (kind) {
    case GroupKind::kTensor:
      return config_.pp * config_.dp;
    case GroupKind::kPipeline:
      return config_.tp * config_.dp;
    case GroupKind::kData:
      return config_.tp * config_.pp;
  }
  return 0;
}

std::vector<ParallelGroup> Topology::Groups(GroupKind kind) const {
  return groups_[KindIndex(kind)];
}

const std::vector<ParallelGroup>& Topology::AllGroups(GroupKind kind) const {
  return groups_[KindIndex(kind)];
}

std::vector<MachineId> Topology::MachinesOfGroup(const ParallelGroup& group) const {
  // Groups handed out by this topology resolve to their precomputed machine
  // list; hand-built groups (foreign index or edited ranks) fall back to a
  // direct computation so the answer is always correct.
  const std::size_t k = KindIndex(group.kind);
  if (group.index >= 0 && static_cast<std::size_t>(group.index) < groups_[k].size() &&
      groups_[k][static_cast<std::size_t>(group.index)].ranks == group.ranks) {
    return group_machines_[k][static_cast<std::size_t>(group.index)];
  }
  std::vector<MachineId> machines;
  machines.reserve(group.ranks.size());
  for (Rank r : group.ranks) {
    machines.push_back(MachineOfRank(r));
  }
  std::sort(machines.begin(), machines.end());
  machines.erase(std::unique(machines.begin(), machines.end()), machines.end());
  return machines;
}

const std::vector<MachineId>& Topology::GroupMachines(GroupKind kind, int index) const {
  return group_machines_[KindIndex(kind)].at(static_cast<std::size_t>(index));
}

const MachineSet& Topology::GroupMachineSet(GroupKind kind, int index) const {
  return group_machine_sets_[KindIndex(kind)].at(static_cast<std::size_t>(index));
}

Rank Topology::BackupPartnerOf(Rank rank) const {
  RankCoord c = CoordOf(rank);
  RankCoord partner = c;
  partner.pp = (c.pp + 1) % config_.pp;
  partner.dp = (c.dp + 1) % config_.dp;
  return RankOf(partner);
}

bool Topology::SharesAnyGroup(Rank a, Rank b) const {
  CheckRank(a);
  CheckRank(b);
  const RankCoord& ca = coords_[static_cast<std::size_t>(a)];
  const RankCoord& cb = coords_[static_cast<std::size_t>(b)];
  const bool same_tp_group = ca.pp == cb.pp && ca.dp == cb.dp;
  const bool same_pp_group = ca.tp == cb.tp && ca.dp == cb.dp;
  const bool same_dp_group = ca.tp == cb.tp && ca.pp == cb.pp;
  return same_tp_group || same_pp_group || same_dp_group;
}

bool Topology::FindCoveringGroup(const std::vector<MachineId>& machines,
                                 ParallelGroup* out) const {
  if (machines.empty()) {
    return false;
  }
  MachineSet targets(num_machines());
  for (MachineId m : machines) {
    if (m < 0 || m >= num_machines()) {
      return false;  // a foreign machine can never be covered
    }
    targets.Insert(m);
  }

  // Prefer pipeline groups: the paper over-evicts whole PP groups (Sec. 9),
  // then fall back to DP / TP groups if a smaller kind covers.
  const GroupKind order[] = {GroupKind::kPipeline, GroupKind::kData, GroupKind::kTensor};
  for (GroupKind kind : order) {
    const std::size_t k = KindIndex(kind);
    const ParallelGroup* best = nullptr;
    int best_machines = 0;
    for (std::size_t i = 0; i < groups_[k].size(); ++i) {
      const MachineSet& gm = group_machine_sets_[k][i];
      if (!gm.IsSupersetOf(targets)) {
        continue;
      }
      const int count = static_cast<int>(group_machines_[k][i].size());
      if (best == nullptr || count < best_machines) {
        best = &groups_[k][i];
        best_machines = count;
      }
    }
    if (best != nullptr) {
      *out = *best;  // groups of the preferred kind cover; do not widen further
      return true;
    }
  }
  return false;
}

std::shared_ptr<const Topology> SharedTopology(const ParallelismConfig& config) {
  return FrozenByConfig<Topology>(config,
                                  [&] { return std::make_shared<const Topology>(config); });
}

}  // namespace byterobust

// Fleet mode (PR 5): N concurrent training jobs on one shared simulator and
// machine pool, each with its own Monitor / Diagnoser / Controller /
// CkptManager stack and fault-scenario driver, arbitrated by a shared
// spare-pool (src/fleet/spare_arbiter.h).
//
// The fleet also owns the cross-job fault surface the single-job path cannot
// express: a ToR switch-storm generator takes out a contiguous band of
// machines that may serve several jobs at once (the per-storm *blast radius*
// is the number of jobs hit), and every recovery claims spares from the same
// contended pool.
//
// Threading model: one Fleet (all N jobs, the shared simulator, the arbiter)
// belongs to a single campaign worker thread; "concurrent jobs" are
// interleaved deterministically by the discrete-event simulator, not by OS
// threads. Cross-seed parallelism happens strictly above this layer in the
// CLI worker pool, which shares nothing mutable between seeds.

#ifndef SRC_FLEET_FLEET_H_
#define SRC_FLEET_FLEET_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/scenario.h"
#include "src/fleet/spare_arbiter.h"

namespace byterobust {

// One job of the fleet. `scenario.system` carries the full per-job stack
// configuration (job shape, monitor/diagnoser/controller tuning, seed); the
// rest of `scenario` drives that job's fault mix and code evolution.
struct FleetJobSpec {
  std::string name = "job";
  ScenarioConfig scenario;
  // Higher values matter more: spare claims may preempt strictly
  // lower-priority jobs.
  int priority = 0;
  // When the job launches on the fleet (its machines are reserved from t=0).
  SimDuration start_time = 0;
};

// ToR switch-storm generator configuration (0 mean gap disables it).
struct SwitchStormConfig {
  SimDuration mean_gap = 0;
  // Machines per ToR switch on the *legacy* flat-band path (no fault-domain
  // graph attached). With a graph, storm bands are the graph's ToR domains
  // instead — presets keep `fault_domains.machines_per_tor` equal to this so
  // both paths generate identical bands.
  int machines_per_switch = 4;
  // Fraction of storms that self-heal (before the controller's network
  // debounce elapses) vs persistent switch faults requiring eviction.
  double transient_fraction = 0.5;
};

struct FleetConfig {
  std::vector<FleetJobSpec> jobs;
  // Idle machines in the shared pool beyond the jobs' aggregate demand.
  int shared_spares = 4;
  SpareArbiterConfig arbiter;
  SwitchStormConfig storm;
  // Hierarchical fault-domain graph attached to the shared pool (and thereby
  // every job view). Storm bands then come from the graph's ToR domains.
  FaultDomainConfig fault_domains;
  SimDuration duration = Days(1);
  // Seeds the fleet-level generators (storm placement); per-job seeds live in
  // each job's system config.
  std::uint64_t seed = 42;
};

// Time-weighted summary of the spare-pool occupancy timeline.
struct SpareOccupancySummary {
  double mean_ready = 0.0;  // time-weighted over [0, duration]
  int min_ready = 0;
  int max_ready = 0;
  int samples = 0;
};

class Fleet {
 public:
  explicit Fleet(const FleetConfig& config);

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  // Runs every job's campaign on the shared simulator to config.duration.
  void Run();

  const FleetConfig& config() const { return config_; }
  int num_jobs() const { return static_cast<int>(systems_.size()); }
  const FleetJobSpec& spec(int i) const { return config_.jobs.at(static_cast<std::size_t>(i)); }
  ByteRobustSystem& system(int i) { return *systems_.at(static_cast<std::size_t>(i)); }
  Scenario& scenario(int i) { return *scenarios_.at(static_cast<std::size_t>(i)); }
  SpareArbiter& arbiter() { return *arbiter_; }
  Cluster& pool() { return *pool_; }
  Simulator& sim() { return sim_; }

  // -- fleet-level metrics ---------------------------------------------------

  int storms_injected() const { return storms_injected_; }
  // Per-storm blast radius (number of jobs hit) -> storm count.
  const std::map<int, int>& blast_radius_counts() const { return blast_radius_counts_; }
  // Per-domain blast accounting for graph-driven storms (empty on the legacy
  // flat-band path, keeping pre-domain fleet JSON byte-identical).
  const DomainBlastStats& domain_blast() const { return domain_blast_; }
  // Storms that degraded machines of two or more jobs at once.
  int cross_job_storms() const;

  // Aggregate effective-GPU-time ratio: per-job productive time weighted by
  // world size, over each job's scheduled span (start_time .. duration).
  double EffectiveGpuTimeRatio() const;

  SpareOccupancySummary OccupancySummary() const;

 private:
  void ScheduleNextStorm();
  void InjectStorm();

  FleetConfig config_;
  Simulator sim_;
  std::unique_ptr<Cluster> pool_;
  std::unique_ptr<SpareArbiter> arbiter_;
  std::vector<std::unique_ptr<ByteRobustSystem>> systems_;
  std::vector<std::unique_ptr<Scenario>> scenarios_;
  Rng storm_rng_;
  std::uint64_t next_storm_id_ = 1;
  int storms_injected_ = 0;
  std::map<int, int> blast_radius_counts_;
  DomainBlastStats domain_blast_;
};

}  // namespace byterobust

#endif  // SRC_FLEET_FLEET_H_

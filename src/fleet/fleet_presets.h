// Canned fleet configurations for the `byterobust fleet` subcommand, the
// micro-bench and the tests.
//
//   fleet-mixed        three heterogeneous jobs (sizes, priorities, staggered
//                      starts) with the full Table 1 fault mix each, sharing
//                      a small standby pool.
//   fleet-contention   four jobs under an accelerated fault clock with a
//                      single shared spare: recoveries collide, high-priority
//                      jobs preempt, low-priority jobs queue.
//   fleet-switch-storm two rack-adjacent jobs under a ToR switch-storm
//                      generator whose blast bands straddle the allocation
//                      boundary (cross-job blast radius >= 2).

#ifndef SRC_FLEET_FLEET_PRESETS_H_
#define SRC_FLEET_FLEET_PRESETS_H_

#include "src/fleet/fleet.h"

namespace byterobust {

FleetConfig FleetMixedConfig(double days, std::uint64_t seed);
FleetConfig FleetContentionConfig(double days, std::uint64_t seed);
FleetConfig FleetSwitchStormConfig(double days, std::uint64_t seed);

}  // namespace byterobust

#endif  // SRC_FLEET_FLEET_PRESETS_H_

#include "src/fleet/fleet_presets.h"

#include "src/core/byterobust_system.h"

namespace byterobust {

namespace {

// SplitMix64: decorrelates per-job seeds from the fleet base seed so sibling
// jobs never share fault/update streams.
std::uint64_t MixSeed(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// A fleet-member job: quickstart-class machines (2 GPUs each) so multi-job
// campaigns stay fast, with the standard accelerated fault clock.
FleetJobSpec MakeJob(const char* name, int tp, int pp, int dp, int priority,
                     SimDuration start_time, std::uint64_t seed, int job_index) {
  FleetJobSpec spec;
  spec.name = name;
  spec.priority = priority;
  spec.start_time = start_time;
  SystemConfig& sys = spec.scenario.system;
  sys.job.name = name;
  sys.job.model_params_b = 7.0 * pp;
  sys.job.parallelism.tp = tp;
  sys.job.parallelism.pp = pp;
  sys.job.parallelism.dp = dp;
  sys.job.parallelism.gpus_per_machine = 2;
  sys.job.base_step_time = Seconds(10);
  sys.monitor = CampaignMonitorConfig();
  sys.seed = MixSeed(seed + static_cast<std::uint64_t>(job_index) * 0x51ED270BULL);
  spec.scenario.injector.reference_mtbf = Hours(1.0);
  spec.scenario.injector.reference_machines = 64;
  spec.scenario.planned_updates = 2;
  return spec;
}

void ApplyCommon(FleetConfig* cfg, double days, std::uint64_t seed) {
  cfg->duration = Days(days);
  cfg->seed = seed;
  for (FleetJobSpec& spec : cfg->jobs) {
    spec.scenario.duration = cfg->duration;  // Fleet re-clips per start time
  }
}

}  // namespace

FleetConfig FleetMixedConfig(double days, std::uint64_t seed) {
  FleetConfig cfg;
  // A production-priority 32-machine job, a mid-tier 16-machine job arriving
  // two hours in, and a low-priority 4-machine experiment arriving at hour 6.
  cfg.jobs.push_back(MakeJob("prod-70b", 2, 4, 8, /*priority=*/2, 0, seed, 0));
  cfg.jobs.push_back(MakeJob("mid-30b", 2, 4, 4, /*priority=*/1, Hours(2), seed, 1));
  cfg.jobs.push_back(MakeJob("exp-7b", 2, 2, 2, /*priority=*/0, Hours(6), seed, 2));
  cfg.shared_spares = 4;
  ApplyCommon(&cfg, days, seed);
  return cfg;
}

FleetConfig FleetContentionConfig(double days, std::uint64_t seed) {
  FleetConfig cfg;
  cfg.jobs.push_back(MakeJob("tier0-imm", 2, 4, 4, /*priority=*/3, 0, seed, 0));
  cfg.jobs.push_back(MakeJob("tier1-a", 2, 2, 4, /*priority=*/2, 0, seed, 1));
  cfg.jobs.push_back(MakeJob("tier1-b", 2, 2, 4, /*priority=*/1, Hours(1), seed, 2));
  cfg.jobs.push_back(MakeJob("tier2-exp", 2, 2, 2, /*priority=*/0, Hours(2), seed, 3));
  // One shared spare against four jobs under a 4x-accelerated fault clock:
  // simultaneous recoveries must contend, so claims preempt and queue.
  cfg.shared_spares = 1;
  for (FleetJobSpec& spec : cfg.jobs) {
    spec.scenario.injector.reference_mtbf = Minutes(15);
  }
  ApplyCommon(&cfg, days, seed);
  return cfg;
}

FleetConfig FleetSwitchStormConfig(double days, std::uint64_t seed) {
  FleetConfig cfg;
  // Two rack-adjacent 16-machine jobs under 6-machine ToR bands: band
  // [12, 18) straddles the allocation boundary at machine 16, so storms
  // landing there degrade machines of both jobs at once.
  cfg.jobs.push_back(MakeJob("rack-a", 2, 4, 4, /*priority=*/1, 0, seed, 0));
  cfg.jobs.push_back(MakeJob("rack-b", 2, 4, 4, /*priority=*/0, 0, seed, 1));
  cfg.shared_spares = 3;
  cfg.storm.mean_gap = Hours(1.5);
  cfg.storm.machines_per_switch = 6;
  cfg.storm.transient_fraction = 0.5;
  // Keep the graph's ToR bands congruent with the legacy band math above so
  // storms land on identical machine ranges on both paths.
  cfg.fault_domains.machines_per_tor = 6;
  for (FleetJobSpec& spec : cfg.jobs) {
    // Storms dominate; keep the per-job background mix sparse, and let
    // transient storms self-heal before the 150 s network debounce expires.
    spec.scenario.injector.reference_mtbf = Hours(4.0);
    spec.scenario.transient_heal = Minutes(2);
  }
  ApplyCommon(&cfg, days, seed);
  return cfg;
}

}  // namespace byterobust

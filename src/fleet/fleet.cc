#include "src/fleet/fleet.h"

#include <algorithm>
#include <stdexcept>

#include "src/common/log.h"
#include "src/faults/fault_injector.h"

namespace byterobust {

Fleet::Fleet(const FleetConfig& config)
    : config_(config), storm_rng_(config.seed ^ 0xF1EE7F1EE7ULL) {
  if (config_.jobs.empty()) {
    throw std::invalid_argument("fleet needs at least one job");
  }
  const int gpus = config_.jobs.front().scenario.system.job.parallelism.gpus_per_machine;
  int demand = 0;
  for (const FleetJobSpec& spec : config_.jobs) {
    if (spec.scenario.system.job.parallelism.gpus_per_machine != gpus) {
      throw std::invalid_argument("fleet jobs must share gpus_per_machine");
    }
    demand += spec.scenario.system.job.parallelism.num_machines();
  }
  pool_ = std::make_unique<Cluster>(kFleetPool, demand + config_.shared_spares, gpus);
  if (config_.fault_domains.enabled && FaultDomainsEnvEnabled()) {
    pool_->AttachFaultDomains(config_.fault_domains);
  }
  arbiter_ = std::make_unique<SpareArbiter>(config_.arbiter, &sim_, pool_.get());

  // Register every job first (the arbiter needs the full priority table),
  // then build the per-job stacks in spec order: each system carves its slot
  // table from the pool's lowest idle machine ids, so allocations are
  // rack-contiguous and a storm band can straddle two adjacent jobs.
  std::vector<SparePool*> clients;
  clients.reserve(config_.jobs.size());
  for (const FleetJobSpec& spec : config_.jobs) {
    clients.push_back(arbiter_->RegisterJob(spec.name, spec.priority));
  }
  for (std::size_t i = 0; i < config_.jobs.size(); ++i) {
    const FleetJobSpec& spec = config_.jobs[i];
    FleetMemberWiring wiring;
    wiring.sim = &sim_;
    wiring.pool = pool_.get();
    wiring.spares = clients[i];
    wiring.ettr_origin = spec.start_time;
    systems_.push_back(std::make_unique<ByteRobustSystem>(spec.scenario.system, wiring));
    arbiter_->AttachJobRuntime(static_cast<int>(i), &systems_.back()->cluster(),
                               &systems_.back()->job());
    // The per-job scenario spreads its updates over the job's own span.
    ScenarioConfig scenario_cfg = spec.scenario;
    scenario_cfg.duration = std::max<SimDuration>(config_.duration - spec.start_time, 1);
    scenarios_.push_back(std::make_unique<Scenario>(scenario_cfg, systems_.back().get()));
  }
}

void Fleet::Run() {
  // Warm the shared pool from t=0 so early claims find ready spares.
  arbiter_->Replenish();
  for (std::size_t i = 0; i < scenarios_.size(); ++i) {
    const FleetJobSpec& spec = config_.jobs[i];
    if (spec.start_time >= config_.duration) {
      continue;  // never launches inside this campaign
    }
    Scenario* scenario = scenarios_[i].get();
    sim_.ScheduleAt(spec.start_time, [scenario] { scenario->Begin(); });
  }
  if (config_.storm.mean_gap > 0) {
    ScheduleNextStorm();
  }
  sim_.RunUntil(config_.duration);
}

void Fleet::ScheduleNextStorm() {
  const SimDuration delay = static_cast<SimDuration>(
      storm_rng_.Exponential(static_cast<double>(config_.storm.mean_gap)));
  sim_.Schedule(delay, [this] { InjectStorm(); });
}

void Fleet::InjectStorm() {
  // Storm band: a ToR domain of the fault-domain graph when one is attached,
  // else the legacy flat band math. Graph ToR bands are constructed with the
  // same contiguous division, so with machines_per_tor == machines_per_switch
  // both paths draw from the same band count and land on identical bands —
  // the cli_fault_domain_equivalence gate and the fleet_test.cc band-layout
  // assertion pin that migration.
  // Band width comes from the graph's ToR span when one is attached, else
  // from the legacy storm knob. Band count and ranges are always computed
  // over the *current* pool size with the same contiguous division the graph
  // uses: the pool grows as standbys provision, and machines past the graph's
  // construction-time range fall into overflow bands exactly like the legacy
  // math placed them (the graph clamps those machines into its outermost
  // domains only for path/congestion purposes).
  const FaultDomains* domains = pool_->fault_domains();
  const int total = static_cast<int>(pool_->total_machines());
  const int per = std::max(
      domains != nullptr ? domains->config().machines_per_tor
                         : config_.storm.machines_per_switch,
      1);
  const int num_bands = (total + per - 1) / per;
  const int s = static_cast<int>(storm_rng_.UniformInt(0, num_bands - 1));
  const MachineId lo = s * per;
  const MachineId hi = std::min<MachineId>(lo + per, total);
  const bool transient = storm_rng_.Bernoulli(config_.storm.transient_fraction);
  const std::uint64_t storm_id = next_storm_id_++;

  // Everything under the dead ToR loses the switch — serving machines of any
  // job, idle spares, provisioning standbys alike. (Spares re-validate and
  // reset health when provisioned/installed, so a healed or replaced band
  // returns to service clean.) Deliberately per-machine flags only, no domain
  // state change: storms must stay byte-identical across the legacy and
  // graph-driven paths, and a domain-state bump exists only on the latter.
  int machines_hit = 0;
  for (MachineId id = lo; id < hi; ++id) {
    Machine& m = pool_->machine(id);
    if (pool_->IsBlacklisted(id)) {
      continue;
    }
    ++machines_hit;
    m.host().switch_reachable = false;
    m.host().packet_loss_rate = 0.3;
    if (m.state() == MachineState::kActive) {
      m.set_state(MachineState::kDegraded);  // gray network fault, still serving
    }
  }

  int jobs_hit = 0;
  for (std::size_t j = 0; j < systems_.size(); ++j) {
    Cluster& view = systems_[j]->cluster();
    std::vector<MachineId> mine;
    for (MachineId id = lo; id < hi; ++id) {
      if (view.SlotOfMachine(id) >= 0) {
        mine.push_back(id);
      }
    }
    if (mine.empty()) {
      continue;
    }
    ++jobs_hit;
    for (MachineId id : mine) {
      ++pool_->machine(id).incident_count;
    }
    Incident inc;
    // Storm incident ids live far above the per-job injectors' ranges; one id
    // per (storm, job) so each controller attributes its own share.
    inc.id = 5000000 + storm_id * 64 + static_cast<std::uint64_t>(j);
    inc.symptom = IncidentSymptom::kInfinibandError;
    inc.root_cause = transient ? RootCause::kTransient : RootCause::kInfrastructure;
    inc.faulty_machines = std::move(mine);
    inc.inject_time = sim_.Now();
    scenarios_[j]->InjectExternal(inc);
  }
  // Radius-0 storms (band covered only spares/backfills) still count: the
  // machines were degraded and the distribution should not be silently
  // conditioned on radius >= 1.
  ++storms_injected_;
  ++blast_radius_counts_[jobs_hit];
  if (domains != nullptr) {
    domain_blast_.RecordInjection(DomainLevel::kTor, DomainFaultKind::kSwitchStorm,
                                  machines_hit, jobs_hit, transient, sim_.Now());
  }
  BR_LOG_INFO("fleet", "switch storm #%llu on machines [%d, %d) hit %d job(s)%s",
              static_cast<unsigned long long>(storm_id), lo, hi, jobs_hit,
              transient ? " (transient)" : "");
  ScheduleNextStorm();
}

int Fleet::cross_job_storms() const {
  int count = 0;
  for (const auto& [radius, storms] : blast_radius_counts_) {
    if (radius >= 2) {
      count += storms;
    }
  }
  return count;
}

double Fleet::EffectiveGpuTimeRatio() const {
  double productive_gpu_s = 0.0;
  double scheduled_gpu_s = 0.0;
  for (std::size_t i = 0; i < systems_.size(); ++i) {
    const FleetJobSpec& spec = config_.jobs[i];
    const SimDuration span = config_.duration > spec.start_time
                                 ? config_.duration - spec.start_time
                                 : 0;
    const double world = spec.scenario.system.job.parallelism.world_size();
    productive_gpu_s += ToSeconds(systems_[i]->ettr().productive_time()) * world;
    scheduled_gpu_s += ToSeconds(span) * world;
  }
  return scheduled_gpu_s > 0.0 ? productive_gpu_s / scheduled_gpu_s : 0.0;
}

SpareOccupancySummary Fleet::OccupancySummary() const {
  SpareOccupancySummary summary;
  const std::vector<SpareOccupancySample>& samples = arbiter_->occupancy();
  summary.samples = static_cast<int>(samples.size());
  if (samples.empty()) {
    return summary;
  }
  summary.min_ready = summary.max_ready = samples.front().ready;
  double weighted = 0.0;
  // The pool starts empty at t=0; each sample holds until the next one.
  SimTime prev_time = 0;
  int prev_ready = 0;
  for (const SpareOccupancySample& s : samples) {
    weighted += ToSeconds(s.time - prev_time) * prev_ready;
    prev_time = s.time;
    prev_ready = s.ready;
    summary.min_ready = std::min(summary.min_ready, s.ready);
    summary.max_ready = std::max(summary.max_ready, s.ready);
  }
  weighted += ToSeconds(config_.duration - prev_time) * prev_ready;
  const double total = ToSeconds(config_.duration);
  summary.mean_ready = total > 0.0 ? weighted / total : 0.0;
  return summary;
}

}  // namespace byterobust

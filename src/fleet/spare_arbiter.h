// Shared spare-pool arbiter for fleet mode (PR 5).
//
// At fleet scale, exclusive per-job warm-standby pools waste machines: spares
// sit idle against each job's P99 while another job's recovery starves. The
// arbiter replaces them with one fleet-global standby pool over the shared
// machine pool. Claims are served first-come from the ready pool; when the
// pool runs dry, a high-priority job may *preempt* a healthy serving machine
// from the lowest-priority running job (which is crashed and recovers through
// its own controller, typically on the slower reschedule path), and any
// remaining shortfall is recorded as a queued claim before the claimant falls
// back to platform rescheduling. Replenishment is fleet-global, sized at the
// P99 quantile of the binomial failure model over the whole fleet's serving
// footprint (paper Sec. 6.2, applied fleet-wide).
//
// Each job talks to the arbiter through a JobClient implementing the
// SparePool interface, so the RobustController is oblivious to whether its
// spares are exclusive or contended.

#ifndef SRC_FLEET_SPARE_ARBITER_H_
#define SRC_FLEET_SPARE_ARBITER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/sim_time.h"
#include "src/recovery/warm_standby.h"
#include "src/sim/simulator.h"
#include "src/training/train_job.h"

namespace byterobust {

struct SpareArbiterConfig {
  // Binomial sizing + provision latency, shared with the single-job pool.
  StandbyConfig standby;
  // When the ready pool is short, allow claims to preempt healthy serving
  // machines from strictly lower-priority running jobs.
  bool allow_preemption = true;
};

// Per-job contention counters, emitted in the fleet JSON.
struct SpareJobStats {
  int claims = 0;               // Claim() calls issued by this job
  int machines_requested = 0;
  int machines_granted = 0;     // served from the ready pool
  int preemptions_gained = 0;   // machines taken from lower-priority jobs
  int preemptions_lost = 0;     // serving machines lost to higher-priority jobs
  int queued_claims = 0;        // claims the pool could not fully serve
  int shortfall_machines = 0;   // machines the claimant had to reschedule
};

// One point of the spare-pool occupancy timeline (recorded on every pool
// mutation: claim, preemption, provision start/finish).
struct SpareOccupancySample {
  SimTime time = 0;
  int ready = 0;
  int provisioning = 0;
};

class SpareArbiter {
 public:
  SpareArbiter(const SpareArbiterConfig& config, Simulator* sim, Cluster* pool);

  SpareArbiter(const SpareArbiter&) = delete;
  SpareArbiter& operator=(const SpareArbiter&) = delete;

  // Per-job facade handed to the RobustController. TargetSize/Replenish act
  // fleet-globally; Claim carries the job's identity (and thus priority).
  class JobClient : public SparePool {
   public:
    int TargetSize(int serving_machines) const override;
    void Replenish(int target) override;
    std::vector<MachineId> Claim(int count) override;

   private:
    friend class SpareArbiter;
    JobClient(SpareArbiter* arbiter, int job_index)
        : arbiter_(arbiter), job_index_(job_index) {}
    SpareArbiter* arbiter_;
    int job_index_;
  };

  // Registers a job (before its system exists; priority comes from the fleet
  // spec). Returns the SparePool facade to wire into the job's controller;
  // the arbiter retains ownership.
  SparePool* RegisterJob(const std::string& name, int priority);

  // Attaches the job's runtime objects once its system is built. The view
  // and job must outlive the arbiter's use.
  void AttachJobRuntime(int job_index, Cluster* view, TrainJob* job);

  // Fleet-global P99 standby target over every attached job's serving
  // footprint.
  int FleetTargetSize() const;

  // Brings ready + provisioning toward FleetTargetSize() from the shared
  // pool's idle machines (adding fresh machines when the pool is exhausted).
  void Replenish();

  // Claims up to `count` machines for `job_index`: ready pool first, then
  // preemption of lower-priority running jobs (if enabled), then records the
  // shortfall as a queued claim.
  std::vector<MachineId> Claim(int job_index, int count);

  int ready_count() const { return standbys_.ready_count(); }
  int provisioning_count() const { return standbys_.provisioning_count(); }
  int num_jobs() const { return static_cast<int>(jobs_.size()); }
  const SpareJobStats& job_stats(int job_index) const {
    return jobs_.at(static_cast<std::size_t>(job_index)).stats;
  }
  int preemptions_total() const;
  int queued_claims_total() const;
  const std::vector<SpareOccupancySample>& occupancy() const { return occupancy_; }

  const SpareArbiterConfig& config() const { return config_; }

 private:
  struct JobEntry {
    std::string name;
    int priority = 0;
    Cluster* view = nullptr;   // null until AttachJobRuntime
    TrainJob* job = nullptr;
    std::unique_ptr<JobClient> client;
    SpareJobStats stats;
  };

  void RecordOccupancy();
  // Takes one provably nominal serving machine from the best victim: the
  // lowest-priority job strictly below `claimant_priority` (running or not —
  // a job that is already down, or not yet launched, is the cheapest donor;
  // only a running victim is crashed). The victim's slot is backfilled with a
  // fresh platform machine, modelling the reschedule whose latency lands on
  // the victim's own recovery. Returns -1 when no preemption is possible.
  MachineId PreemptOne(int claimant_index, int claimant_priority);

  SpareArbiterConfig config_;
  Simulator* sim_;
  Cluster* pool_;
  std::vector<JobEntry> jobs_;
  // Ready/provisioning standby machinery shared with the single-job path;
  // the arbiter adds fleet-global sizing, priority claims and occupancy
  // tracking on top.
  WarmStandbyPool standbys_;
  std::vector<SpareOccupancySample> occupancy_;
};

}  // namespace byterobust

#endif  // SRC_FLEET_SPARE_ARBITER_H_

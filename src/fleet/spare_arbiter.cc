#include "src/fleet/spare_arbiter.h"

#include <algorithm>

#include "src/common/log.h"
#include "src/common/rng.h"

namespace byterobust {

int SpareArbiter::JobClient::TargetSize(int serving_machines) const {
  (void)serving_machines;  // fleet sizing ignores the single job's footprint
  return arbiter_->FleetTargetSize();
}

void SpareArbiter::JobClient::Replenish(int target) {
  (void)target;
  arbiter_->Replenish();
}

std::vector<MachineId> SpareArbiter::JobClient::Claim(int count) {
  return arbiter_->Claim(job_index_, count);
}

SpareArbiter::SpareArbiter(const SpareArbiterConfig& config, Simulator* sim, Cluster* pool)
    : config_(config), sim_(sim), pool_(pool), standbys_(config.standby, sim, pool) {
  standbys_.SetChangeListener([this] { RecordOccupancy(); });
}

SparePool* SpareArbiter::RegisterJob(const std::string& name, int priority) {
  const int index = static_cast<int>(jobs_.size());
  JobEntry entry;
  entry.name = name;
  entry.priority = priority;
  entry.client.reset(new JobClient(this, index));
  jobs_.push_back(std::move(entry));
  return jobs_.back().client.get();
}

void SpareArbiter::AttachJobRuntime(int job_index, Cluster* view, TrainJob* job) {
  JobEntry& entry = jobs_.at(static_cast<std::size_t>(job_index));
  entry.view = view;
  entry.job = job;
}

int SpareArbiter::FleetTargetSize() const {
  int serving = 0;
  for (const JobEntry& entry : jobs_) {
    if (entry.view != nullptr) {
      serving += entry.view->num_training_slots();
    }
  }
  const int p99 = BinomialQuantile(serving, config_.standby.daily_machine_failure_prob,
                                   config_.standby.quantile);
  return std::max(p99, 1);
}

void SpareArbiter::Replenish() { standbys_.Replenish(FleetTargetSize()); }

MachineId SpareArbiter::PreemptOne(int claimant_index, int claimant_priority) {
  // Victims in preference order: ascending priority (strictly below the
  // claimant); among equals, the later-registered job loses. A victim with no
  // nominal machine to give is skipped in favour of the next donor.
  std::vector<int> victims;
  for (int j = 0; j < static_cast<int>(jobs_.size()); ++j) {
    const JobEntry& entry = jobs_[static_cast<std::size_t>(j)];
    if (j == claimant_index || entry.view == nullptr || entry.job == nullptr) {
      continue;
    }
    if (entry.priority < claimant_priority) {
      victims.push_back(j);
    }
  }
  std::sort(victims.begin(), victims.end(), [this](int a, int b) {
    const JobEntry& ja = jobs_[static_cast<std::size_t>(a)];
    const JobEntry& jb = jobs_[static_cast<std::size_t>(b)];
    return ja.priority != jb.priority ? ja.priority < jb.priority : a > b;
  });
  int victim = -1;
  int slot = -1;
  for (int j : victims) {
    // Hand over a provably nominal machine: preempting a suspect one would
    // gift the claimant a fault. Scan from the highest slot so slot 0 (often
    // rank 0) is disturbed last.
    const std::vector<MachineId>& slots = jobs_[static_cast<std::size_t>(j)].view->serving_slots();
    for (int s = static_cast<int>(slots.size()) - 1; s >= 0; --s) {
      if (!pool_->machine(slots[static_cast<std::size_t>(s)]).health_dirty()) {
        victim = j;
        slot = s;
        break;
      }
    }
    if (victim >= 0) {
      break;
    }
  }
  if (victim < 0) {
    return -1;
  }
  JobEntry& loser = jobs_[static_cast<std::size_t>(victim)];
  const MachineId fresh = pool_->AddMachine();  // cold reschedule for the victim
  const MachineId taken = loser.view->DetachSlotMachine(slot, fresh);
  // Reserve the machine for the claimant: kStandbySleep keeps it out of
  // IdleMachines() until the claimant's ReplaceSlot installs it.
  pool_->machine(taken).set_state(MachineState::kStandbySleep);
  ++loser.stats.preemptions_lost;
  BR_LOG_INFO("arbiter", "job %s (prio %d) preempts machine %d from %s (prio %d)",
              jobs_[static_cast<std::size_t>(claimant_index)].name.c_str(), claimant_priority,
              taken, loser.name.c_str(), loser.priority);
  // A running victim loses a serving machine mid-step: its processes die and
  // its own controller drives the recovery (reattempt on a now-healthy
  // cluster). A victim that is already down just finds a fresh machine in the
  // slot when it restarts.
  if (loser.job->state() == JobRunState::kRunning) {
    loser.job->Crash();
  }
  return taken;
}

std::vector<MachineId> SpareArbiter::Claim(int job_index, int count) {
  JobEntry& entry = jobs_.at(static_cast<std::size_t>(job_index));
  ++entry.stats.claims;
  entry.stats.machines_requested += count;
  std::vector<MachineId> out = standbys_.Claim(count);
  entry.stats.machines_granted += static_cast<int>(out.size());
  count -= static_cast<int>(out.size());
  while (count > 0 && config_.allow_preemption) {
    const MachineId taken = PreemptOne(job_index, entry.priority);
    if (taken < 0) {
      break;
    }
    out.push_back(taken);
    ++entry.stats.preemptions_gained;
    --count;
  }
  if (count > 0) {
    // The pool (plus preemption) could not cover the claim; the controller
    // falls back to platform rescheduling for the remainder.
    ++entry.stats.queued_claims;
    entry.stats.shortfall_machines += count;
  }
  RecordOccupancy();
  return out;
}

void SpareArbiter::RecordOccupancy() {
  const SpareOccupancySample sample{sim_->Now(), ready_count(), provisioning_count()};
  if (!occupancy_.empty() && occupancy_.back().time == sample.time &&
      occupancy_.back().ready == sample.ready &&
      occupancy_.back().provisioning == sample.provisioning) {
    return;
  }
  occupancy_.push_back(sample);
}

int SpareArbiter::preemptions_total() const {
  int total = 0;
  for (const JobEntry& entry : jobs_) {
    total += entry.stats.preemptions_gained;
  }
  return total;
}

int SpareArbiter::queued_claims_total() const {
  int total = 0;
  for (const JobEntry& entry : jobs_) {
    total += entry.stats.queued_claims;
  }
  return total;
}

}  // namespace byterobust

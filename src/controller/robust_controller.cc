#include "src/controller/robust_controller.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "src/common/log.h"

namespace byterobust {

namespace {

// Largest divisor of z no greater than sqrt(z), preferring multiples of
// `preferred` (the per-pipeline machine count) per Alg. 1's recommendation.
int PickReplayGroupSize(int z, int preferred) {
  int best = 1;
  for (int m = 1; m * m <= z; ++m) {
    if (z % m != 0) {
      continue;
    }
    const bool best_pref = preferred > 0 && best % preferred == 0;
    const bool m_pref = preferred > 0 && m % preferred == 0;
    if ((m_pref && !best_pref) || (m_pref == best_pref && m > best)) {
      best = m;
    }
  }
  return best;
}

}  // namespace

RobustController::RobustController(const ControllerConfig& config, Simulator* sim,
                                   Cluster* cluster, TrainJob* job, Monitor* monitor,
                                   Diagnoser* diagnoser, SparePool* standby_pool,
                                   HotUpdateManager* hot_updates, CheckpointManager* ckpt,
                                   Rng rng)
    : config_(config),
      sim_(sim),
      cluster_(cluster),
      job_(job),
      monitor_(monitor),
      diagnoser_(diagnoser),
      standby_pool_(standby_pool),
      hot_updates_(hot_updates),
      ckpt_(ckpt),
      rng_(rng) {}

void RobustController::Start() {
  monitor_->SetAnomalyHandler([this](const AnomalyReport& report) { OnAnomaly(report); });
  hot_updates_->SetRestartRequester([this] { RequestHotUpdateRestart(); });
  monitor_->Start();
  standby_pool_->Replenish(standby_pool_->TargetSize(cluster_->num_training_slots()));
}

void RobustController::NotifyIncidentInjected(const Incident& incident) {
  pending_incidents_.push_back(incident);
}

Incident RobustController::TakeGroundTruth(const AnomalyReport& report) {
  // Prefer the pending incident whose symptom class matches the anomaly: a
  // NaN metric alert belongs to a NaN incident, a hang suspect to a hang, and
  // log/inspection signals to explicit failures. This keeps attribution sane
  // when multiple incidents overlap.
  auto matches = [&report](const Incident& inc) {
    switch (report.source) {
      case AnomalySource::kMetricNan:
      case AnomalySource::kMetricSpike:
        return inc.symptom == IncidentSymptom::kNanValue;
      case AnomalySource::kHangSuspect:
        return inc.symptom == IncidentSymptom::kJobHang;
      case AnomalySource::kMfuDecline:
        return inc.symptom == IncidentSymptom::kMfuDecline;
      case AnomalySource::kInspection:
        // Inspection findings name a machine; only incidents implicating that
        // machine qualify.
        if (!report.machines.empty()) {
          return !inc.faulty_machines.empty() &&
                 inc.faulty_machines.front() == report.machines.front();
        }
        return inc.category() == IncidentCategory::kExplicit;
      case AnomalySource::kCrashLog:
        return inc.category() == IncidentCategory::kExplicit;
    }
    return false;
  };
  for (auto it = pending_incidents_.begin(); it != pending_incidents_.end(); ++it) {
    if (matches(*it)) {
      Incident inc = *it;
      pending_incidents_.erase(it);
      return inc;
    }
  }
  if (!pending_incidents_.empty()) {
    Incident inc = pending_incidents_.front();
    pending_incidents_.pop_front();
    return inc;
  }
  // Unattributed anomaly (e.g. a false positive): synthesize a record.
  Incident inc;
  inc.symptom = report.symptom_hint;
  inc.root_cause = RootCause::kInfrastructure;
  inc.inject_time = report.detect_time;
  inc.faulty_machines = report.machines;
  return inc;
}

void RobustController::OnAnomaly(const AnomalyReport& report) {
  if (episode_.has_value() && episode_->restart_in_progress) {
    return;  // already mid-recovery; new signals are the same storm
  }
  if (episode_.has_value() && episode_->debounce_pending &&
      report.source == AnomalySource::kInspection &&
      report.symptom_hint == IncidentSymptom::kInfinibandError && !report.high_confidence) {
    // Sibling alerts of one correlated network event (a domain fault flips
    // every machine under a spine in the same inspection pass): widen the
    // pending hold-off to cover them instead of escalating per machine, so
    // the post-debounce recheck judges — and, if persistent, evicts — the
    // whole blast radius at once.
    for (MachineId m : report.machines) {
      if (std::find(episode_->debounce_machines.begin(), episode_->debounce_machines.end(),
                    m) == episode_->debounce_machines.end()) {
        episode_->debounce_machines.push_back(m);
      }
    }
    return;
  }
  // Any anomaly invalidates outstanding stability checks: the episode is not
  // allowed to close as resolved while new handling is in flight.
  ++stability_epoch_;
  if (!episode_.has_value()) {
    Episode ep;
    ep.incident = TakeGroundTruth(report);
    ep.first_source = report.source;
    ep.first_symptom = report.symptom_hint;
    ep.detect_time = report.detect_time;
    episode_ = ep;
    BR_LOG_INFO("controller", "episode open: %s via %s", ep.incident.ToString().c_str(),
                AnomalySourceName(report.source));
    RouteFresh(report);
    return;
  }

  // Episode already open and restart finished: decide recurrence vs new
  // incident. If a freshly injected incident matching this anomaly is queued,
  // this is a *different* failure arriving mid-episode — the previous action
  // evidently held for the old one.
  bool new_incident_queued = false;
  for (const Incident& pending : pending_incidents_) {
    const bool category_match =
        (report.source == AnomalySource::kMetricNan &&
         pending.symptom == IncidentSymptom::kNanValue) ||
        (report.source == AnomalySource::kHangSuspect &&
         pending.symptom == IncidentSymptom::kJobHang) ||
        (report.source == AnomalySource::kMfuDecline &&
         pending.symptom == IncidentSymptom::kMfuDecline) ||
        ((report.source == AnomalySource::kCrashLog ||
          report.source == AnomalySource::kInspection) &&
         pending.category() == IncidentCategory::kExplicit);
    if (category_match) {
      new_incident_queued = true;
      break;
    }
  }
  if (new_incident_queued) {
    CloseEpisode(true);
    OnAnomaly(report);
    return;
  }

  // Same anomaly family => the failure survived our action.
  const bool same_family =
      report.source == episode_->first_source ||
      (CategoryOf(episode_->first_symptom) == IncidentCategory::kExplicit &&
       (report.source == AnomalySource::kCrashLog || report.source == AnomalySource::kInspection));
  if (same_family) {
    BR_LOG_INFO("controller", "failure recurred after %s; escalating",
                MechanismName(episode_->last_mechanism));
    Escalate(report);
  } else {
    // Different failure class: the previous action evidently held.
    CloseEpisode(true);
    OnAnomaly(report);
  }
}

void RobustController::RouteFresh(const AnomalyReport& report) {
  switch (report.source) {
    case AnomalySource::kInspection: {
      if (report.symptom_hint == IncidentSymptom::kInfinibandError && !report.high_confidence) {
        // Tolerate network alerts briefly: NIC and switch flaps often
        // self-recover (Sec. 4.1). Re-check after the debounce hold-off;
        // sibling alerts arriving meanwhile widen the rechecked set
        // (OnAnomaly above).
        episode_->debounce_pending = true;
        episode_->debounce_machines = report.machines;
        job_->Stop();
        sim_->Schedule(config_.network_debounce, [this] { RecheckNetworkDebounce(); });
        return;
      }
      // Machine-pinpointing inspection signals evict directly (step 1), with
      // high-confidence events skipping every further check.
      EvictAndRestart(report.machines, ResolutionMechanism::kAutoFtEvictRestart, 0);
      return;
    }
    case AnomalySource::kCrashLog: {
      // User-space errors traceable to code modules roll back directly
      // (step 2).
      if (episode_->incident.root_cause == RootCause::kUserCode &&
          rng_.Bernoulli(config_.log_attribution_recall)) {
        RollbackRestart(0);
        return;
      }
      // Explicit infrastructure failures usually name the faulty host in the
      // error messages (Sec. 2.2: detection ~60 s, localization 2-15 min);
      // evict directly without stop-time diagnostics.
      if (episode_->incident.root_cause == RootCause::kInfrastructure &&
          !episode_->incident.faulty_machines.empty() &&
          rng_.Bernoulli(config_.log_attribution_recall)) {
        EvictAndRestart(episode_->incident.faulty_machines,
                        ResolutionMechanism::kAutoFtEvictRestart, Minutes(3));
        return;
      }
      // No clear culprit: suspend training for stop-time checks (step 3).
      RunStopTimeChecks(/*nan_suite=*/false);
      return;
    }
    case AnomalySource::kMetricNan:
    case AnomalySource::kMetricSpike:
      RunStopTimeChecks(/*nan_suite=*/true);
      return;
    case AnomalySource::kHangSuspect:
      RunAggregationAnalysis();
      return;
    case AnomalySource::kMfuDecline:
      RunFailSlowVoting(0, std::make_shared<FailSlowVoter>(config_.failslow_rounds));
      return;
  }
}

void RobustController::RecheckNetworkDebounce() {
  if (!episode_.has_value() || !episode_->debounce_pending) {
    return;  // the episode moved on (e.g. closed for a different incident)
  }
  episode_->debounce_pending = false;
  const std::vector<MachineId> machines = std::move(episode_->debounce_machines);
  episode_->debounce_machines.clear();
  bool still_bad = false;
  for (MachineId m : machines) {
    const Machine& machine = cluster_->machine(m);
    if (cluster_->SlotOfMachine(m) >= 0 &&
        (!machine.host().nic_up || !machine.host().switch_reachable ||
         machine.host().packet_loss_rate > config_.debounce_packet_loss_threshold)) {
      still_bad = true;
    }
  }
  if (still_bad) {
    EvictAndRestart(machines, ResolutionMechanism::kAutoFtEvictRestart, 0);
  } else {
    ReattemptRestart(0);  // the flap healed itself
  }
}

void RobustController::Escalate(const AnomalyReport& report) {
  (void)report;
  ++episode_->escalation;
  if (!episode_->tried_stop_time) {
    RunStopTimeChecks(episode_->first_symptom == IncidentSymptom::kNanValue);
    return;
  }
  if (!episode_->tried_rollback) {
    RollbackRestart(0);
    return;
  }
  if (!episode_->tried_replay) {
    RunDualPhaseReplay();
    return;
  }
  GiveUpToHumans();
}

void RobustController::EvictAndRestart(std::vector<MachineId> machines,
                                       ResolutionMechanism mechanism, SimDuration localization) {
  job_->Stop();
  episode_->restart_in_progress = true;
  episode_->tried_eviction = true;
  episode_->localize_done_time = sim_->Now() + localization;

  // Keep only machines actually serving the job.
  std::vector<int> slots;
  for (MachineId m : machines) {
    const int slot = cluster_->SlotOfMachine(m);
    if (slot >= 0) {
      slots.push_back(slot);
    }
  }
  const int k = static_cast<int>(slots.size());
  evictions_total_ += k;

  std::vector<MachineId> replacements = standby_pool_->Claim(k);
  const int shortfall = k - static_cast<int>(replacements.size());
  for (int i = 0; i < shortfall; ++i) {
    replacements.push_back(cluster_->AddMachine());  // reschedule path
  }

  const int scale = cluster_->num_training_slots();
  SimDuration scheduling =
      shortfall > 0 ? config_.restart_costs.RescheduleTime(scale, shortfall)
                    : config_.restart_costs.StandbyWakeTime(k);
  if (k == 0) {
    scheduling = config_.restart_costs.HotUpdateTime(scale);  // nothing to swap
  }
  const SimDuration failover =
      scheduling + ckpt_->LoadTime(!config_.local_checkpoint_restore);

  sim_->Schedule(localization, [this, slots, replacements, mechanism, failover] {
    for (std::size_t i = 0; i < slots.size(); ++i) {
      cluster_->ReplaceSlot(slots[i], replacements[i]);
    }
    standby_pool_->Replenish(standby_pool_->TargetSize(cluster_->num_training_slots()));
    RestartJob(failover, mechanism);
  });
}

void RobustController::ReattemptRestart(SimDuration localization) {
  job_->Stop();
  episode_->restart_in_progress = true;
  episode_->tried_reattempt = true;
  episode_->localize_done_time = sim_->Now() + localization;
  const SimDuration failover =
      config_.restart_costs.HotUpdateTime(cluster_->num_training_slots()) +
      ckpt_->LoadTime(!config_.local_checkpoint_restore);
  sim_->Schedule(localization, [this, failover] {
    RestartJob(failover, ResolutionMechanism::kReattempt);
  });
}

void RobustController::RollbackRestart(SimDuration localization) {
  job_->Stop();
  episode_->restart_in_progress = true;
  episode_->tried_rollback = true;
  episode_->localize_done_time = sim_->Now() + localization;
  const SimDuration failover =
      config_.restart_costs.HotUpdateTime(cluster_->num_training_slots()) +
      ckpt_->LoadTime(!config_.local_checkpoint_restore);
  sim_->Schedule(localization, [this, failover] {
    job_->RollbackCodeVersion();
    RestartJob(failover, ResolutionMechanism::kRollback);
  });
}

void RobustController::RunStopTimeChecks(bool nan_suite) {
  job_->Stop();
  episode_->restart_in_progress = true;
  episode_->tried_stop_time = true;
  // The suite consumes simulated time before the verdict lands; evaluate the
  // cluster at verdict time so transient faults that healed meanwhile come
  // back clean and flow into the reattempt path (step 5).
  const SimDuration probe =
      nan_suite ? diagnoser_->config().eud_duration + diagnoser_->config().intra_machine_duration +
                      diagnoser_->config().inter_machine_duration +
                      diagnoser_->config().bitwise_alignment_duration
                : diagnoser_->config().eud_duration + diagnoser_->config().intra_machine_duration;
  sim_->Schedule(probe, [this, nan_suite] {
    const DiagnosisResult result =
        nan_suite ? diagnoser_->RunNanSuite(*cluster_) : diagnoser_->RunNcclSuite(*cluster_);
    BR_LOG_INFO("controller", "stop-time checks ran %zu tests, %zu suspects",
                result.tests_run.size(), result.suspects.size());
    if (result.HasSuspects()) {
      EvictAndRestart(result.suspects, ResolutionMechanism::kAutoFtEvictRestart, 0);
    } else {
      ReattemptRestart(0);
    }
  });
}

void RobustController::RunAggregationAnalysis() {
  sim_->Schedule(config_.aggregation_latency, [this] {
    const Rank culprit = job_->hang_culprit();
    if (culprit < 0) {
      RunStopTimeChecks(false);
      return;
    }
    HangSite site = HangSite::kTensorCollective;
    // Topology "machines" are training slots; translate to the cluster
    // machine currently serving that slot.
    const int culprit_slot = job_->topology().MachineOfRank(culprit);
    if (episode_->incident.root_cause == RootCause::kUserCode) {
      site = HangSite::kDataLoader;
    } else {
      const Machine& m = cluster_->machine(cluster_->MachineAtSlot(culprit_slot));
      for (int g = 0; g < m.num_gpus(); ++g) {
        if (m.gpu(g).comm_defect) {
          site = HangSite::kPipelineP2p;
        }
      }
    }
    const auto stacks = SynthesizeFullPodStacks(job_->topology(), culprit, site);
    const AggregationResult result = analyzer_.Analyze(stacks, job_->topology());
    if (result.machines_to_evict.empty()) {
      RunStopTimeChecks(false);
      return;
    }
    std::vector<MachineId> machines;
    machines.reserve(result.machines_to_evict.size());
    for (MachineId slot : result.machines_to_evict) {
      machines.push_back(cluster_->MachineAtSlot(slot));
    }
    BR_LOG_INFO("controller", "aggregation isolated %zu machines (%s group)", machines.size(),
                result.found_group ? GroupKindName(result.isolated_group.kind) : "no");
    EvictAndRestart(machines, ResolutionMechanism::kAnalyzerEvictRestart, 0);
  });
}

void RobustController::RunFailSlowVoting(int round, std::shared_ptr<FailSlowVoter> voter) {
  sim_->Schedule(config_.failslow_round_interval, [this, round, voter] {
    // Ground truth for the synthesized snapshot: the slowest serving machine.
    // A machine absent from the suspect index is provably nominal (clock
    // ratio 1.0, never below the 0.95 gate), so scanning only suspects finds
    // exactly what a full serving scan would.
    MachineId slow = -1;
    double slowest = 0.95;
    for (MachineId id : cluster_->SuspectServingMachines()) {
      const Machine& m = cluster_->machine(id);
      for (int g = 0; g < m.num_gpus(); ++g) {
        if (m.gpu(g).clock_ratio < slowest) {
          slowest = m.gpu(g).clock_ratio;
          slow = id;
        }
      }
    }
    static const AggregationResult kCleanRound{};
    const AggregationResult* result = &kCleanRound;
    if (slow >= 0) {
      // Memoized per (slow, jitter) pair: only the noisy machine changes
      // between rounds, so the pod is synthesized once and repeated rounds
      // skip the aggregation entirely (identical results either way).
      result = &failslow_cache_.Round(analyzer_, job_->topology(), cluster_->SlotOfMachine(slow),
                                      static_cast<std::uint64_t>(sim_->Now() + round));
    }
    voter->AddRound(*result);
    if (!voter->Ready()) {
      RunFailSlowVoting(round + 1, voter);
      return;
    }
    GroupKind kind;
    int index;
    if (!voter->Decide(&kind, &index)) {
      ReattemptRestart(0);
      return;
    }
    // Over-evict the flagged group's machines.
    for (const ParallelGroup& g : job_->topology().Groups(kind)) {
      if (g.index == index) {
        std::vector<MachineId> machines;
        for (MachineId slot : job_->topology().MachinesOfGroup(g)) {
          machines.push_back(cluster_->MachineAtSlot(slot));
        }
        EvictAndRestart(machines, ResolutionMechanism::kAnalyzerEvictRestart, 0);
        return;
      }
    }
    ReattemptRestart(0);
  });
}

void RobustController::RunDualPhaseReplay() {
  job_->Stop();
  episode_->restart_in_progress = true;
  episode_->tried_replay = true;
  const int z = cluster_->num_training_slots();
  const ParallelismConfig& par = job_->config().parallelism;
  const int m = PickReplayGroupSize(z, par.pp);
  DualPhaseReplay replay(z, m);

  auto oracle = [this](const std::vector<MachineId>& slots) {
    for (MachineId slot : slots) {
      const Machine& machine = cluster_->machine(cluster_->MachineAtSlot(slot));
      // Replaying the reduced job on a group containing the faulty machine
      // reproduces the failure (probabilistically, for SDC).
      bool bad = machine.HasSdc() || machine.state() == MachineState::kFaulty ||
                 machine.state() == MachineState::kDegraded;
      for (int g = 0; g < machine.num_gpus(); ++g) {
        bad = bad || machine.gpu(g).comm_defect || !machine.gpu(g).hbm_ok;
      }
      if (bad && rng_.Bernoulli(config_.replay_reproduce_prob)) {
        return true;
      }
    }
    return false;
  };
  const ReplayOutcome outcome = replay.Locate(oracle, config_.replay_duration);
  sim_->Schedule(outcome.elapsed, [this, outcome] {
    if (outcome.found) {
      std::vector<MachineId> machines;
      for (MachineId slot : outcome.suspects) {
        machines.push_back(cluster_->MachineAtSlot(slot));
      }
      BR_LOG_INFO("controller", "dual-phase replay isolated %zu suspects", machines.size());
      EvictAndRestart(machines, ResolutionMechanism::kDualPhaseReplay, 0);
    } else {
      GiveUpToHumans();
    }
  });
}

void RobustController::GiveUpToHumans() {
  // No automated conclusion (Fig. 5 "No Conclusion -> Human"). Humans run
  // long offline stress testing (the paper cites 1.5 h of manual diagnosis
  // and 8+ h for one SDC) and eventually isolate the true faulty machines.
  job_->Stop();
  const SimDuration manual_diagnosis = Hours(1.5);
  const std::vector<MachineId> machines = episode_->incident.faulty_machines;
  if (machines.empty()) {
    sim_->Schedule(manual_diagnosis, [this] {
      job_->RollbackCodeVersion();
      RestartJob(config_.restart_costs.HotUpdateTime(cluster_->num_training_slots()),
                 ResolutionMechanism::kUnresolvedHuman);
    });
  } else {
    EvictAndRestart(machines, ResolutionMechanism::kUnresolvedHuman, manual_diagnosis);
  }
}

void RobustController::RestartJob(SimDuration failover, ResolutionMechanism mechanism) {
  episode_->restart_in_progress = true;
  episode_->last_mechanism = mechanism;
  if (episode_->localize_done_time == 0) {
    episode_->localize_done_time = sim_->Now();
  }
  sim_->Schedule(failover, [this, mechanism] { FinishRestart(mechanism); });
}

void RobustController::FinishRestart(ResolutionMechanism mechanism) {
  // Lazy hot updates ride along with the recovery (Sec. 6.1).
  for (const CodeVersion& v : hot_updates_->TakePending(/*merged_into_recovery=*/true)) {
    job_->ApplyCodeVersion(v);
    IncidentResolution manual;
    manual.incident.symptom = IncidentSymptom::kCodeDataAdjustment;
    manual.incident.root_cause = RootCause::kUserCode;
    manual.incident.inject_time = sim_->Now();
    manual.mechanism = ResolutionMechanism::kAutoFtHotUpdate;
    manual.detect_time = sim_->Now();
    manual.localize_done_time = sim_->Now();
    manual.restart_done_time = sim_->Now();
    manual.resolved = true;
    log_.Add(manual);
  }

  job_->RollbackToStep(std::min(ckpt_->RestorableResumeStep(), job_->max_step_reached()));
  job_->Start();
  monitor_->OnJobRestart();
  if (episode_.has_value()) {
    episode_->restart_in_progress = false;
    episode_->last_restart_time = sim_->Now();
    episode_->last_mechanism = mechanism;
    if (mechanism == ResolutionMechanism::kUnresolvedHuman) {
      // Human intervention is the terminal rung of the ladder: the episode
      // closes immediately (humans isolated the fault offline).
      CloseEpisode(true);
    } else {
      ScheduleStabilityCheck();
    }
  }
  if (restart_listener_) {
    restart_listener_(mechanism);
  }
}

void RobustController::ScheduleStabilityCheck() {
  const std::uint64_t epoch = ++stability_epoch_;
  sim_->Schedule(config_.stable_window, [this, epoch] {
    if (!episode_.has_value() || episode_->restart_in_progress || epoch != stability_epoch_) {
      return;
    }
    if (sim_->Now() - episode_->last_restart_time >= config_.stable_window) {
      CloseEpisode(true);
    }
  });
}

void RobustController::CloseEpisode(bool resolved) {
  if (!episode_.has_value()) {
    return;
  }
  IncidentResolution res;
  res.incident = episode_->incident;
  res.mechanism = episode_->last_mechanism;
  res.inject_time = episode_->incident.inject_time;
  res.detect_time = episode_->detect_time;
  res.localize_done_time = std::max(episode_->localize_done_time, episode_->detect_time);
  res.restart_done_time = std::max(episode_->last_restart_time, res.localize_done_time);
  res.escalations = episode_->escalation;
  res.resolved = resolved;
  log_.Add(res);
  BR_LOG_INFO("controller", "episode closed (%s, %s, unproductive=%s)",
              MechanismName(res.mechanism), resolved ? "resolved" : "unresolved",
              FormatDuration(res.TotalUnproductive()).c_str());
  episode_.reset();
}

void RobustController::RequestHotUpdateRestart() {
  if (episode_.has_value()) {
    return;  // pending updates will merge into the in-flight recovery
  }
  job_->Stop();
  const SimDuration failover =
      config_.restart_costs.HotUpdateTime(cluster_->num_training_slots()) +
      ckpt_->LoadTime(!config_.local_checkpoint_restore);
  sim_->Schedule(failover, [this] {
    for (const CodeVersion& v : hot_updates_->TakePending(/*merged_into_recovery=*/false)) {
      job_->ApplyCodeVersion(v);
      IncidentResolution manual;
      manual.incident.symptom = IncidentSymptom::kCodeDataAdjustment;
      manual.incident.root_cause = RootCause::kUserCode;
      manual.incident.inject_time = sim_->Now();
      manual.mechanism = ResolutionMechanism::kAutoFtHotUpdate;
      manual.detect_time = sim_->Now();
      manual.localize_done_time = sim_->Now();
      manual.restart_done_time = sim_->Now();
      manual.resolved = true;
      log_.Add(manual);
    }
    job_->RollbackToStep(std::min(ckpt_->RestorableResumeStep(), job_->max_step_reached()));
    job_->Start();
    monitor_->OnJobRestart();
    if (restart_listener_) {
      restart_listener_(ResolutionMechanism::kAutoFtHotUpdate);
    }
  });
}

}  // namespace byterobust

// Robust Controller: the control-plane brain orchestrating the automated
// fault-tolerance framework of Fig. 5.
//
// Routing on a fresh anomaly:
//   - high-confidence machine signals  -> evict + restart         (step 1)
//   - user-space errors traceable from logs -> code rollback      (step 2)
//   - crashes / NaN without a culprit  -> stop-time checks        (step 3)
//       suspects  -> evict + restart                              (step 4)
//       clean     -> reattempt (transient assumption)             (step 5)
//   - hang / MFU decline -> aggregation analysis, over-evict      (Sec. 5)
// Escalation when the failure recurs after a restart:
//   evict -> stop-time checks -> reattempt -> rollback            (steps 6/7)
//   -> dual-phase replay -> evict suspects                        (steps 8/9)
//   -> no conclusion: hand to humans.

#ifndef SRC_CONTROLLER_ROBUST_CONTROLLER_H_
#define SRC_CONTROLLER_ROBUST_CONTROLLER_H_

#include <deque>
#include <functional>
#include <memory>
#include <optional>

#include "src/analyzer/aggregation.h"
#include "src/ckpt/ckpt_manager.h"
#include "src/cluster/cluster.h"
#include "src/common/rng.h"
#include "src/diagnoser/diagnoser.h"
#include "src/faults/incident.h"
#include "src/metrics/resolution.h"
#include "src/monitor/monitor.h"
#include "src/recovery/hot_update.h"
#include "src/recovery/restart_model.h"
#include "src/recovery/warm_standby.h"
#include "src/replay/dual_phase_replay.h"
#include "src/sim/simulator.h"
#include "src/tracer/stack_synth.h"
#include "src/training/train_job.h"

namespace byterobust {

struct ControllerConfig {
  // Network alerts tolerated before eviction (some NIC/switch flaps
  // self-recover, Sec. 4.1); checked again after this hold-off.
  SimDuration network_debounce = Seconds(150);

  // Packet-loss rate above which the post-debounce recheck still considers a
  // machine network-faulty. Defaults to the monitor's alert threshold so
  // detection and the recheck agree on what "healed" means.
  double debounce_packet_loss_threshold = 0.1;

  // A restart that survives this long without a recurring anomaly closes the
  // episode as resolved. Must exceed the slowest re-detection path (hang
  // grace + watchdog + detection latency), otherwise recurring failures look
  // like fresh episodes and the Fig. 5 escalation ladder never engages.
  SimDuration stable_window = Minutes(20);

  // Probability that log/exit-code analysis traces a user-code failure to a
  // specific module (triggering direct rollback, Fig. 5 step 2).
  double log_attribution_recall = 0.8;

  // On-demand tracer capture + aggregation analysis latency.
  SimDuration aggregation_latency = Seconds(30);

  // Fail-slow voting (Sec. 5.1): aggregation repeats at this interval for
  // this many rounds before the degrader group is over-evicted.
  SimDuration failslow_round_interval = Seconds(10);
  int failslow_rounds = 5;

  // Dual-phase replay parameters.
  SimDuration replay_duration = Minutes(10);
  double replay_reproduce_prob = 0.75;

  // Load checkpoints from CPU-memory/local backups (ByteRobust) or from the
  // remote filesystem (prior practice).
  bool local_checkpoint_restore = true;

  RestartCostModel restart_costs;
};

class RobustController {
 public:
  RobustController(const ControllerConfig& config, Simulator* sim, Cluster* cluster,
                   TrainJob* job, Monitor* monitor, Diagnoser* diagnoser,
                   SparePool* standby_pool, HotUpdateManager* hot_updates,
                   CheckpointManager* ckpt, Rng rng);

  RobustController(const RobustController&) = delete;
  RobustController& operator=(const RobustController&) = delete;

  // Hooks the monitor and the hot-update manager, then starts them.
  void Start();

  // Ground-truth plumbing from the scenario runner: registers the incident a
  // following anomaly should be attributed to.
  void NotifyIncidentInjected(const Incident& incident);

  // Invoked after every job restart with the mechanism that drove it (the
  // scenario runner uses this to re-apply persisting faults and to resolve
  // code-rollback ground truth).
  using RestartListener = std::function<void(ResolutionMechanism)>;
  void SetRestartListener(RestartListener listener) { restart_listener_ = std::move(listener); }

  // Manual code/data adjustment entry point (urgent update or window expiry).
  void RequestHotUpdateRestart();

  const ResolutionLog& log() const { return log_; }
  int evictions_total() const { return evictions_total_; }
  int episodes_open() const { return episode_.has_value() ? 1 : 0; }

 private:
  struct Episode {
    Incident incident;                    // best-known ground truth
    AnomalySource first_source;
    IncidentSymptom first_symptom;
    SimTime detect_time = 0;
    SimTime localize_done_time = 0;
    int escalation = 0;                   // Fig. 5 stages traversed
    ResolutionMechanism last_mechanism = ResolutionMechanism::kAutoFtEvictRestart;
    SimTime last_restart_time = 0;
    bool restart_in_progress = false;
    // Network debounce hold-off in flight: sibling alerts (a flapping spine
    // degrades every machine beneath it in the same inspection pass) fold
    // into `debounce_machines` instead of escalating, so one correlated
    // network event is handled as one episode covering its whole blast
    // radius.
    bool debounce_pending = false;
    std::vector<MachineId> debounce_machines;
    bool tried_eviction = false;
    bool tried_stop_time = false;
    bool tried_reattempt = false;
    bool tried_rollback = false;
    bool tried_replay = false;
  };

  void OnAnomaly(const AnomalyReport& report);
  void RouteFresh(const AnomalyReport& report);
  void Escalate(const AnomalyReport& report);
  void RecheckNetworkDebounce();

  // Fig. 5 actions. Each consumes `localization` sim-time before restarting.
  void EvictAndRestart(std::vector<MachineId> machines, ResolutionMechanism mechanism,
                       SimDuration localization);
  void ReattemptRestart(SimDuration localization);
  void RollbackRestart(SimDuration localization);
  void RunStopTimeChecks(bool nan_suite);
  void RunAggregationAnalysis();
  void RunFailSlowVoting(int round, std::shared_ptr<FailSlowVoter> voter);
  void RunDualPhaseReplay();
  void GiveUpToHumans();

  // Restart plumbing shared by every action.
  void RestartJob(SimDuration failover, ResolutionMechanism mechanism);
  void FinishRestart(ResolutionMechanism mechanism);
  void ScheduleStabilityCheck();
  void CloseEpisode(bool resolved);

  Incident TakeGroundTruth(const AnomalyReport& report);

  ControllerConfig config_;
  Simulator* sim_;
  Cluster* cluster_;
  TrainJob* job_;
  Monitor* monitor_;
  Diagnoser* diagnoser_;
  SparePool* standby_pool_;
  HotUpdateManager* hot_updates_;
  CheckpointManager* ckpt_;
  Rng rng_;
  AggregationAnalyzer analyzer_;
  // Memoized fail-slow voting rounds (pure in (slow, jitter) per topology).
  FailSlowVoteCache failslow_cache_;

  RestartListener restart_listener_;
  std::deque<Incident> pending_incidents_;  // injected, not yet attributed
  std::optional<Episode> episode_;
  ResolutionLog log_;
  int evictions_total_ = 0;
  std::uint64_t stability_epoch_ = 0;  // invalidates stale stability checks
};

}  // namespace byterobust

#endif  // SRC_CONTROLLER_ROBUST_CONTROLLER_H_

#include "src/campaign/engine.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <utility>

#include "src/common/sync.h"
#include "src/common/thread_annotations.h"
#include "src/harness/exit_codes.h"
#include "src/harness/supervisor.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace byterobust {

bool StreamCampaignEnabled() {
  const char* env = std::getenv("BYTEROBUST_STREAM_CAMPAIGN");
  return env == nullptr || std::string(env) != "0";
}

void WriteAggregate(JsonWriter* w, const std::string& key, const Aggregate& a) {
  w->Key(key);
  w->BeginObject();
  w->Field("mean", a.mean);
  w->Field("min", a.min);
  w->Field("max", a.max);
  w->EndObject();
}

Aggregate FoldAggregateAt(const std::vector<std::vector<double>>& summaries, std::size_t slot) {
  Aggregate a;
  if (summaries.empty()) {
    return a;
  }
  a.min = a.max = summaries.front().at(slot);
  for (const std::vector<double>& s : summaries) {
    const double v = s.at(slot);
    a.mean += v;
    a.min = std::min(a.min, v);
    a.max = std::max(a.max, v);
  }
  a.mean /= static_cast<double>(summaries.size());
  return a;
}

namespace {

// Rendered as a primed depth-1 block so it splices after the closed "runs"
// array; emitted only when non-empty, so clean campaigns keep their exact
// byte layout.
std::string RenderFailedRuns(const std::vector<FailedRun>& failures) {
  JsonWriter w(/*depth=*/1, /*need_comma=*/true);
  w.Key("failed_runs");
  w.BeginArray();
  for (const FailedRun& f : failures) {
    w.BeginObject();
    w.Field("index", f.index);
    w.Field("seed", f.seed);
    w.Field("attempts", f.attempts);
    w.Field("timed_out", f.timed_out);
    w.Field("error", f.error);
    w.EndObject();
  }
  w.EndArray();
  return w.Take();
}

// ---------------------------------------------------------------------------
// Worker-pool plumbing. All cross-thread mutable state lives in the two small
// classes below with BR_GUARDED_BY-annotated members, so the clang
// `-Wthread-safety` CI job statically proves every access holds the right
// lock. (Annotations only attach to members and globals — lambda-captured
// locals are invisible to the analysis — which is why this state is hoisted
// out of the engine functions.) Per-seed slots such as `summaries[i]` and the
// spill index are written by exactly one worker each (disjoint indices of
// pre-sized vectors) and read only after the pool joins; they need no lock.
// ---------------------------------------------------------------------------

// First-failure latch for a worker pool: the first captured exception wins,
// and failed() flips so the other workers stop claiming seeds.
class FailureLatch {
 public:
  // Records an exception (usually std::current_exception(), or one re-wrapped
  // with seed/worker context); the first capture wins.
  void Capture(std::exception_ptr error) {
    failed_.store(true, std::memory_order_relaxed);
    const MutexLock lock(&mu_);
    if (!first_error_) {
      first_error_ = std::move(error);
    }
  }

  bool failed() const { return failed_.load(std::memory_order_relaxed); }

  // Rethrows the first captured exception, if any. Call after the pool joined.
  void RethrowIfFailed() {
    std::exception_ptr error;
    {
      const MutexLock lock(&mu_);
      error = first_error_;
    }
    if (error) {
      std::rethrow_exception(error);
    }
  }

 private:
  Mutex mu_;
  std::atomic<bool> failed_{false};
  std::exception_ptr first_error_ BR_GUARDED_BY(mu_);
};

// Claims seed indices off the shared ticket until they run out, a worker has
// failed, or `stop` asks for a graceful drain (in-flight seeds finish, no new
// claims); runs `run` for each claim, latching the first exception wrapped
// with campaign/seed/worker context. The optional `on_failure` hook runs
// after the latch captures (e.g. to wake a committer blocked on a condition
// variable).
void DrainSeeds(int seeds, std::atomic<int>* next_seed, FailureLatch* latch,
                const std::string& label, int worker,
                const std::function<bool()>& stop,
                const std::function<void(int)>& run,
                const std::function<void()>& on_failure = {}) {
  for (int i = next_seed->fetch_add(1); i < seeds && !latch->failed();
       i = next_seed->fetch_add(1)) {
    if (stop && stop()) {
      return;
    }
    try {
      // Worker-occupancy span: one "seed" interval per claim on this
      // worker's trace track, so idle gaps between seeds are visible.
      const obs::ScopedSpan seed_span("seed", "campaign", i);
      run(i);
    } catch (const std::exception& e) {
      latch->Capture(std::make_exception_ptr(std::runtime_error(
          label + ", seed index " + std::to_string(i) + ", worker " +
          std::to_string(worker) + ": " + e.what())));
      if (on_failure) {
        on_failure();
      }
      return;
    } catch (...) {
      latch->Capture(std::current_exception());
      if (on_failure) {
        on_failure();
      }
      return;
    }
  }
}

// Out-of-order producers, strictly seed-ordered consumer: workers Push each
// rendered element as it finishes; the committer Pops 0, 1, 2, ... so the
// document is written in seed order while only the out-of-order tail is ever
// resident. A latched failure wakes the committer immediately.
class OrderedCommitQueue {
 public:
  OrderedCommitQueue(const FailureLatch* latch, int producers)
      : latch_(latch), active_producers_(producers) {}

  void Push(int index, std::string element) {
    {
      const MutexLock lock(&mu_);
      done_.emplace(index, std::move(element));
    }
    cv_.NotifyOne();
  }

  // Each producer thread calls this exactly once on exit. When the last one
  // leaves, any committer still waiting for an unproduced seed (graceful
  // stop, or a quarantine race) unblocks instead of waiting forever.
  void ProducerExited() {
    {
      const MutexLock lock(&mu_);
      --active_producers_;
      if (active_producers_ > 0) {
        return;
      }
    }
    cv_.NotifyAll();
  }

  // Wakes the committer after the latch recorded a failure. Acquiring mu_
  // (even briefly) orders the notification after the committer's failed()
  // check in Pop(): either the committer already observed the failure, or it
  // has released mu_ inside cv_.Wait() and the NotifyAll cannot be lost.
  // Notifying without the lock could fire between the check and the wait,
  // leaving the committer blocked forever once producers stop pushing.
  void NotifyFailure() {
    { const MutexLock lock(&mu_); }
    cv_.NotifyAll();
  }

  // Blocks until element `index` is available (true), or until it can never
  // arrive — the pool failed, or every producer exited without pushing it
  // (false).
  bool Pop(int index, std::string* element) {
    // Ordered-commit wait: how long the committer idled for this seed to be
    // produced (instant when the element is already queued).
    const obs::ScopedSpan wait_span("commit_wait", "campaign", index);
    const MutexLock lock(&mu_);
    while (true) {
      const auto it = done_.find(index);
      if (it != done_.end()) {
        *element = std::move(it->second);
        done_.erase(it);
        return true;
      }
      if (latch_->failed() || active_producers_ == 0) {
        return false;
      }
      cv_.Wait(&mu_);
    }
  }

 private:
  const FailureLatch* latch_;
  Mutex mu_;
  CondVar cv_;
  int active_producers_ BR_GUARDED_BY(mu_);
  std::map<int, std::string> done_ BR_GUARDED_BY(mu_);
};

// Runs `body(worker_index)` on `workers` threads — the calling thread doubles
// as worker 0 unless `caller_participates` is false — and joins them all.
void RunWorkerPool(int workers, bool caller_participates,
                   const std::function<void(int)>& body) {
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int t = caller_participates ? 1 : 0; t < workers; ++t) {
    pool.emplace_back(body, t);
  }
  if (caller_participates) {
    body(0);
  }
  for (std::thread& t : pool) {
    t.join();
  }
}

// Incremental output: everything goes to stdout — or the spec's capture
// string — and (optionally) to --out, written as produced instead of
// accumulated in one string. Construct — and check ok() — BEFORE spawning
// workers, so an unwritable --out fails fast instead of after minutes of
// simulation.
class OutputSink {
 public:
  OutputSink(const std::string& out_path, std::string* capture)
      : path_(out_path), capture_(capture) {
    if (!path_.empty()) {
      file_ = std::fopen(path_.c_str(), "wb");
      if (file_ == nullptr) {
        ok_ = false;
      }
    }
  }
  ~OutputSink() {
    if (file_ != nullptr) {
      std::fclose(file_);
    }
  }
  OutputSink(const OutputSink&) = delete;
  OutputSink& operator=(const OutputSink&) = delete;

  // False when --out could not be opened; Finish() reports it.
  bool ok() const { return ok_; }

  void Write(const std::string& text) {
    if (capture_ != nullptr) {
      capture_->append(text);
    } else if (std::fwrite(text.data(), 1, text.size(), stdout) != text.size()) {
      // SIGPIPE is ignored, so a reader hanging up surfaces as a short write
      // here instead of killing the process mid-campaign.
      stdout_ok_ = false;
    }
    if (file_ != nullptr && std::fwrite(text.data(), 1, text.size(), file_) != text.size()) {
      ok_ = false;
    }
  }

  // kExitOk on success, mirroring the CLI Emit() contract.
  int Finish() {
    if (capture_ == nullptr && (std::fflush(stdout) != 0 || std::ferror(stdout) != 0)) {
      stdout_ok_ = false;
    }
    if (!stdout_ok_) {
      std::fprintf(stderr, "error: short write on stdout\n");
      return kExitIoError;
    }
    if (!ok_) {
      std::fprintf(stderr, "error: could not write %s\n", path_.c_str());
      return kExitIoError;
    }
    return kExitOk;
  }

 private:
  std::string path_;
  std::string* capture_ = nullptr;
  std::FILE* file_ = nullptr;
  bool ok_ = true;
  bool stdout_ok_ = true;
};

// ---------------------------------------------------------------------------
// CampaignHarness: the per-seed fault-tolerance wrapper shared by all three
// engine paths. RunSeed(i) short-circuits seeds already committed in a
// --resume journal, runs fresh seeds under the SeedSupervisor (watchdog,
// deterministic retry/backoff, self-fault-injection), journals each success,
// and converts persistent failures into quarantine outcomes instead of
// exceptions. Thread-safe: workers call RunSeed concurrently.
// ---------------------------------------------------------------------------
class CampaignHarness {
 public:
  explicit CampaignHarness(const CampaignEngineSpec& spec) : spec_(spec) {
    SupervisorConfig config;
    std::string error;
    if (!SupervisorConfig::FromEnv(spec.identity.base_seed, &config, &error)) {
      throw EngineSetupError(error);
    }
    if (spec.retries_override >= 0) {
      config.max_attempts = 1 + spec.retries_override;
    }
    config.external_stop = spec.external_stop;
    supervisor_.emplace(config);
    if (!spec.resume_path.empty()) {
      if (!journal_.OpenForResume(spec.resume_path, spec.identity, &resumed_, &error,
                                  spec.journal_sync)) {
        throw EngineSetupError(error);
      }
    } else if (!spec.journal_path.empty()) {
      if (!journal_.Create(spec.journal_path, spec.identity, &error, spec.journal_sync)) {
        throw EngineSetupError(error);
      }
    }
  }

  SeedOutcome RunSeed(int i) {
    // resumed_ is read-only after construction — safe without a lock.
    const auto it = resumed_.find(i);
    if (it != resumed_.end()) {
      NoteSeedDone();
      return SeedOutcome{it->second.element, it->second.summary, false};
    }
    SeedOutcome outcome;
    SeedFailure failure;
    const std::function<SeedOutcome(const CancelToken&)> attempt =
        [this, i](const CancelToken&) { return spec_.run_seed(i); };
    if (supervisor_->Supervise<SeedOutcome>(i, attempt, &outcome, &failure)) {
      if (journal_.open()) {
        static obs::Counter* const commit_counter =
            obs::GlobalMetrics().GetCounter("harness.journal_commits");
        commit_counter->Add();
        const obs::ScopedSpan commit_span("journal_commit", "harness", i);
        if (!journal_.Append({i, outcome.summary, outcome.element})) {
          throw std::runtime_error("journal append failed for seed index " +
                                   std::to_string(i));
        }
      }
      supervisor_->NoteCommitted();
      NoteSeedDone();
      return outcome;
    }
    {
      const MutexLock lock(&mu_);
      failures_.push_back({i,
                           spec_.identity.base_seed + static_cast<std::uint64_t>(i),
                           failure.attempts, failure.timed_out, failure.error});
    }
    outcome.element.clear();
    outcome.summary.clear();
    outcome.failed = true;
    NoteSeedDone();
    return outcome;
  }

  bool stop_requested() const { return supervisor_->stop_requested(); }

  // Quarantined seeds in index order. Call after the pool joins.
  std::vector<FailedRun> failures() const {
    const MutexLock lock(&mu_);
    std::vector<FailedRun> sorted = failures_;
    std::sort(sorted.begin(), sorted.end(),
              [](const FailedRun& a, const FailedRun& b) { return a.index < b.index; });
    return sorted;
  }

  // Where to point the user when a run was interrupted mid-campaign.
  std::string ResumeHint() const {
    const std::string& path =
        spec_.resume_path.empty() ? spec_.journal_path : spec_.resume_path;
    if (path.empty()) {
      return "; rerun with --journal FILE to make campaigns resumable";
    }
    return "; resume with --resume " + path;
  }

 private:
  void NoteSeedDone() {
    if (spec_.seeds_done != nullptr) {
      spec_.seeds_done->fetch_add(1, std::memory_order_relaxed);
    }
  }

  const CampaignEngineSpec& spec_;
  std::optional<SeedSupervisor> supervisor_;
  CampaignJournal journal_;
  std::map<int, JournalEntry> resumed_;
  mutable Mutex mu_;
  std::vector<FailedRun> failures_ BR_GUARDED_BY(mu_);
};

// Reports a graceful interrupt (stderr note + kExitInterrupted), shared by
// the three engine paths.
int FinishInterrupted(const CampaignHarness& harness, int processed, int seeds) {
  std::fprintf(stderr, "note: campaign interrupted after %d of %d seeds%s\n",
               processed, seeds, harness.ResumeHint().c_str());
  return kExitInterrupted;
}

// Exit code for a campaign that ran to completion: any I/O error wins, then
// quarantined seeds map to the distinct completed-with-failures code.
int FinishCompleted(OutputSink* sink, const std::vector<FailedRun>& failures) {
  const int io = sink->Finish();
  if (io != kExitOk) {
    return io;
  }
  return failures.empty() ? kExitOk : kExitQuarantine;
}

// Where one rendered seed landed inside its worker's spill file.
struct SpillLocation {
  std::uint32_t worker = 0;
  long offset = 0;
  std::uint32_t length = 0;
};

// Owns the per-worker spill tmpfiles; every exit path (success, spill I/O
// error, worker exception, interrupt) closes them through this one
// destructor instead of hand-rolled cleanup loops.
class SpillSet {
 public:
  explicit SpillSet(int workers) : files_(static_cast<std::size_t>(workers), nullptr) {
    for (std::FILE*& f : files_) {
      f = std::tmpfile();
      if (f == nullptr) {
        ok_ = false;
        return;
      }
    }
  }
  ~SpillSet() {
    for (std::FILE* f : files_) {
      if (f != nullptr) {
        std::fclose(f);
      }
    }
  }
  SpillSet(const SpillSet&) = delete;
  SpillSet& operator=(const SpillSet&) = delete;

  bool ok() const { return ok_; }
  std::FILE* at(std::size_t worker) const { return files_[worker]; }

  void FlushAll() {
    for (std::FILE* f : files_) {
      std::fflush(f);
    }
  }

 private:
  std::vector<std::FILE*> files_;
  bool ok_ = true;
};

// Default streaming path: each worker appends its finished seeds' JSON to a
// private tmpfile; the merger then concatenates the elements in seed order
// (seeking by the per-seed index) while the aggregate block folds from the
// per-seed summaries. Peak memory: one rendered element per worker.
int RunEngineSpillStreaming(const CampaignEngineSpec& spec) {
  const int seeds = spec.seeds;
  const int workers = std::max(1, std::min(spec.jobs, seeds));
  CampaignHarness harness(spec);
  OutputSink sink(spec.out_path, spec.capture);
  if (!sink.ok()) {
    return sink.Finish();  // fail fast: --out unwritable, nothing simulated
  }
  SpillSet spills(workers);
  if (!spills.ok()) {
    std::fprintf(stderr, "error: could not create campaign spill file\n");
    return kExitIoError;
  }
  std::vector<std::vector<double>> summaries(static_cast<std::size_t>(seeds));
  std::vector<SpillLocation> index(static_cast<std::size_t>(seeds));
  std::vector<unsigned char> failed(static_cast<std::size_t>(seeds), 0);

  std::atomic<int> next{0};
  std::atomic<int> processed{0};
  FailureLatch latch;
  const auto worker = [&](int w) {
    // Each worker appends to its own spill file and writes disjoint
    // summaries/index/failed slots; only the latch is cross-thread state.
    long offset = 0;
    DrainSeeds(seeds, &next, &latch, spec.label, w,
               [&] { return harness.stop_requested(); }, [&](int i) {
      SeedOutcome outcome = harness.RunSeed(i);
      processed.fetch_add(1, std::memory_order_relaxed);
      if (outcome.failed) {
        failed[static_cast<std::size_t>(i)] = 1;
        return;
      }
      summaries[static_cast<std::size_t>(i)] = std::move(outcome.summary);
      const std::string element = std::move(outcome.element);
      if (std::fwrite(element.data(), 1, element.size(),
                      spills.at(static_cast<std::size_t>(w))) != element.size()) {
        throw std::runtime_error("campaign spill write failed");
      }
      index[static_cast<std::size_t>(i)] = {static_cast<std::uint32_t>(w), offset,
                                            static_cast<std::uint32_t>(element.size())};
      offset += static_cast<long>(element.size());
    });
  };
  RunWorkerPool(workers, /*caller_participates=*/true, worker);
  latch.RethrowIfFailed();
  if (harness.stop_requested() && processed.load(std::memory_order_relaxed) < seeds) {
    // Interrupted before every seed finished: nothing merged — the journal
    // (not a half-document) is the restart artifact.
    return FinishInterrupted(harness, processed.load(std::memory_order_relaxed), seeds);
  }

  spills.FlushAll();
  std::vector<std::vector<double>> folded;
  folded.reserve(summaries.size());
  for (int i = 0; i < seeds; ++i) {
    if (failed[static_cast<std::size_t>(i)] == 0) {
      folded.push_back(std::move(summaries[static_cast<std::size_t>(i)]));
    }
  }
  JsonWriter header;
  header.BeginObject();
  spec.header_fields(&header);
  spec.aggregates(&header, folded);
  header.Key("runs");
  header.BeginArray();
  sink.Write(header.Take());
  {
    // The sequential re-read/concatenate pass over the per-worker spills.
    const obs::ScopedSpan merge_span("spill_merge", "campaign");
    std::string element;
    int emitted = 0;
    for (int i = 0; i < seeds; ++i) {
      if (failed[static_cast<std::size_t>(i)] != 0) {
        continue;
      }
      const SpillLocation& loc = index[static_cast<std::size_t>(i)];
      element.resize(loc.length);
      std::FILE* f = spills.at(loc.worker);
      if (std::fseek(f, loc.offset, SEEK_SET) != 0 ||
          std::fread(element.data(), 1, element.size(), f) != element.size()) {
        std::fprintf(stderr, "error: campaign spill read failed\n");
        return kExitIoError;
      }
      if (emitted++ > 0) {
        sink.Write(",");
      }
      sink.Write(element);
    }
  }
  sink.Write("\n  ]");
  const std::vector<FailedRun> failures = harness.failures();
  if (!failures.empty()) {
    sink.Write(RenderFailedRuns(failures));
  }
  sink.Write("\n}\n");
  return FinishCompleted(&sink, failures);
}

// --stream: fully incremental document for live consumption. Runs are written
// the moment their seed is next in order (nothing is spilled), so the
// "aggregate" block — which needs every seed — moves to the end of the
// document; all values are identical to the default layout's.
int RunEngineDirectStreaming(const CampaignEngineSpec& spec) {
  const int seeds = spec.seeds;
  CampaignHarness harness(spec);
  OutputSink sink(spec.out_path, spec.capture);
  if (!sink.ok()) {
    return sink.Finish();  // fail fast: --out unwritable, nothing simulated
  }
  JsonWriter header;
  header.BeginObject();
  spec.header_fields(&header);
  header.Key("runs");
  header.BeginArray();
  sink.Write(header.Take());

  std::vector<std::vector<double>> summaries(static_cast<std::size_t>(seeds));
  std::vector<unsigned char> failed(static_cast<std::size_t>(seeds), 0);
  int emitted = 0;
  // Quarantined seeds travel through the queue as empty sentinels so the
  // in-order committer advances past them without emitting an element.
  const auto commit = [&](const std::string& element) {
    if (element.empty()) {
      return;
    }
    if (emitted++ > 0) {
      sink.Write(",");
    }
    sink.Write(element);
  };

  const int workers = std::max(1, std::min(spec.jobs, seeds));
  int committed = 0;  // seeds whose outcome reached the committer, in order
  if (workers <= 1) {
    for (; committed < seeds; ++committed) {
      if (harness.stop_requested()) {
        break;
      }
      SeedOutcome outcome = harness.RunSeed(committed);
      if (outcome.failed) {
        failed[static_cast<std::size_t>(committed)] = 1;
      } else {
        summaries[static_cast<std::size_t>(committed)] = std::move(outcome.summary);
      }
      commit(outcome.element);
    }
  } else {
    // Workers render out of order; the main thread commits strictly in seed
    // order, holding at most the out-of-order tail in memory.
    std::atomic<int> next{0};
    FailureLatch latch;
    OrderedCommitQueue queue(&latch, workers);
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int t = 0; t < workers; ++t) {
      pool.emplace_back([&, t] {
        DrainSeeds(
            seeds, &next, &latch, spec.label, t,
            [&] { return harness.stop_requested(); },
            [&](int i) {
              SeedOutcome outcome = harness.RunSeed(i);
              if (outcome.failed) {
                failed[static_cast<std::size_t>(i)] = 1;
              } else {
                summaries[static_cast<std::size_t>(i)] = std::move(outcome.summary);
              }
              queue.Push(i, std::move(outcome.element));
            },
            /*on_failure=*/[&] { queue.NotifyFailure(); });
        queue.ProducerExited();
      });
    }
    std::string element;
    for (; committed < seeds; ++committed) {
      if (!queue.Pop(committed, &element)) {
        break;  // failed, or drained out before producing this seed
      }
      commit(element);
    }
    for (std::thread& t : pool) {
      t.join();
    }
    latch.RethrowIfFailed();
  }

  // Close a valid (possibly partial) document either way: aggregates fold
  // over exactly the seeds that made it into the runs array.
  std::vector<std::vector<double>> folded;
  folded.reserve(static_cast<std::size_t>(committed));
  for (int i = 0; i < committed; ++i) {
    if (failed[static_cast<std::size_t>(i)] == 0) {
      folded.push_back(std::move(summaries[static_cast<std::size_t>(i)]));
    }
  }
  sink.Write("\n  ]");
  const std::vector<FailedRun> failures = harness.failures();
  if (!failures.empty()) {
    sink.Write(RenderFailedRuns(failures));
  }
  JsonWriter tail(/*depth=*/1, /*need_comma=*/true);
  spec.aggregates(&tail, folded);
  sink.Write(tail.Take());
  sink.Write("\n}\n");
  if (harness.stop_requested() && committed < seeds) {
    sink.Finish();
    return FinishInterrupted(harness, committed, seeds);
  }
  return FinishCompleted(&sink, failures);
}

// Buffered reference path (BYTEROBUST_STREAM_CAMPAIGN=0): every rendered
// element held in memory, emitted in one pass. The streaming paths above must
// be byte-identical to this (ctest cli_campaign_streaming_equivalence).
int RunEngineBuffered(const CampaignEngineSpec& spec) {
  const int seeds = spec.seeds;
  CampaignHarness harness(spec);
  OutputSink sink(spec.out_path, spec.capture);
  if (!sink.ok()) {
    return sink.Finish();  // fail fast: --out unwritable, nothing simulated
  }
  std::vector<SeedOutcome> outcomes(static_cast<std::size_t>(seeds));
  std::atomic<int> next{0};
  std::atomic<int> processed{0};
  FailureLatch latch;
  const auto worker = [&](int w) {
    DrainSeeds(seeds, &next, &latch, spec.label, w,
               [&] { return harness.stop_requested(); }, [&](int i) {
                 outcomes[static_cast<std::size_t>(i)] = harness.RunSeed(i);
                 processed.fetch_add(1, std::memory_order_relaxed);
               });
  };
  const int workers = std::max(1, std::min(spec.jobs, seeds));
  RunWorkerPool(workers, /*caller_participates=*/true, worker);
  latch.RethrowIfFailed();
  if (harness.stop_requested() && processed.load(std::memory_order_relaxed) < seeds) {
    return FinishInterrupted(harness, processed.load(std::memory_order_relaxed), seeds);
  }

  std::vector<std::vector<double>> summaries;
  summaries.reserve(outcomes.size());
  for (const SeedOutcome& o : outcomes) {
    if (!o.failed) {
      summaries.push_back(o.summary);
    }
  }
  JsonWriter header;
  header.BeginObject();
  spec.header_fields(&header);
  spec.aggregates(&header, summaries);
  header.Key("runs");
  header.BeginArray();
  sink.Write(header.Take());
  int emitted = 0;
  for (int i = 0; i < seeds; ++i) {
    if (outcomes[static_cast<std::size_t>(i)].failed) {
      continue;
    }
    if (emitted++ > 0) {
      sink.Write(",");
    }
    sink.Write(outcomes[static_cast<std::size_t>(i)].element);
  }
  sink.Write("\n  ]");
  const std::vector<FailedRun> failures = harness.failures();
  if (!failures.empty()) {
    sink.Write(RenderFailedRuns(failures));
  }
  sink.Write("\n}\n");
  return FinishCompleted(&sink, failures);
}

}  // namespace

int RunCampaignEngine(const CampaignEngineSpec& spec, std::string* setup_error) {
  try {
    if (spec.stream) {
      return RunEngineDirectStreaming(spec);
    }
    if (StreamCampaignEnabled()) {
      return RunEngineSpillStreaming(spec);
    }
    return RunEngineBuffered(spec);
  } catch (const EngineSetupError& e) {
    if (setup_error != nullptr) {
      *setup_error = e.what();
    } else {
      std::fprintf(stderr, "error: %s\n", e.what());
    }
    return kExitUsage;
  }
}

}  // namespace byterobust

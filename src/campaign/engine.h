// Campaign engine: the seed-parallel worker pool and streaming merger shared
// by the `campaign` and `fleet` CLI subcommands and by the `serve` daemon. It
// is generic over the per-seed runner (one RunResult per seed, or a whole
// multi-job fleet per seed) and over the output target (stdout/--out for the
// CLI, an in-memory capture string for serve responses), and every path is
// byte-identical for the same request: across --jobs values, across the
// spill/direct/buffered layouts, and across an interrupt + journal resume.
//
// Campaigns run under the src/harness fault-tolerance layer: every seed is
// supervised (watchdog + deterministic retry/backoff), persistently failing
// seeds are quarantined into a "failed_runs" block instead of aborting the
// campaign, journal/resume give crash-safe restartability, and a cooperative
// stop (signal, serve deadline or client disconnect) drains in-flight seeds
// before exiting with kExitInterrupted.

#ifndef SRC_CAMPAIGN_ENGINE_H_
#define SRC_CAMPAIGN_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/campaign/json_writer.h"
#include "src/harness/journal.h"

namespace byterobust {

// What one seed contributes to the document: its rendered "runs" array
// element (depth 2, byte-identical to the same element written inline by a
// full-document writer) and the numbers the aggregate block consumes, in a
// fixed per-command order.
struct SeedOutcome {
  std::string element;
  std::vector<double> summary;
  bool failed = false;  // quarantined: no element, no summary slot
};

struct CampaignEngineSpec {
  int seeds = 0;
  int jobs = 1;
  bool stream = false;
  std::string out_path;
  std::string label;           // "campaign:dense" etc — exception context
  CampaignIdentity identity;   // what --journal records / --resume verifies
  std::string journal_path;    // --journal: record committed seeds here
  std::string resume_path;     // --resume: skip seeds already journaled here
  int retries_override = -1;   // --retries; < 0 defers to env/default
  bool journal_sync = false;   // --journal-sync: fdatasync per committed record
  // Cooperative stop flag (the CLI's signal flag, or a serve request's cancel
  // flag): when it flips, workers stop claiming seeds, in-flight seeds drain,
  // and the engine exits kExitInterrupted. May be null (never stops).
  std::atomic<bool>* external_stop = nullptr;
  // When set, the document is appended here instead of being written to
  // stdout (serve responses). --out still works alongside.
  std::string* capture = nullptr;
  // Optional progress gauge: incremented once per seed processed (resumed,
  // committed or quarantined). Serve uses it for in-flight accounting and the
  // partial-response seed count.
  std::atomic<int>* seeds_done = nullptr;
  // Runs seed index i (workers call this concurrently; every run must bind
  // only thread-local / run-local state).
  std::function<SeedOutcome(int)> run_seed;
  std::function<void(JsonWriter*)> header_fields;
  std::function<void(JsonWriter*, const std::vector<std::vector<double>>&)> aggregates;
};

// A setup-stage problem (bad env knob, unreadable or mismatched journal):
// reported before any worker spawns, exit code kExitUsage.
class EngineSetupError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// One quarantined seed, rendered into the document's "failed_runs" block.
struct FailedRun {
  int index = 0;
  std::uint64_t seed = 0;
  int attempts = 0;
  bool timed_out = false;
  std::string error;
};

struct Aggregate {
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
};

void WriteAggregate(JsonWriter* w, const std::string& key, const Aggregate& a);

// Seed-order fold over one summary slot, shared by the buffered and
// streaming paths — one implementation, so byte-identity cannot drift.
Aggregate FoldAggregateAt(const std::vector<std::vector<double>>& summaries, std::size_t slot);

// BYTEROBUST_STREAM_CAMPAIGN=0 pins the buffered reference path (all
// RunResults held in memory before emission) so the streaming merger can be
// byte-compared against it. The default streams per-seed JSON through
// per-worker spill files, bounding campaign memory at O(window) per worker
// regardless of --seeds.
bool StreamCampaignEnabled();

// Runs the campaign and returns the process exit code (src/harness/
// exit_codes.h). A setup-stage failure returns kExitUsage: the message goes
// to *setup_error when non-null, to stderr otherwise. Worker exceptions
// (already wrapped with campaign/seed/worker context) propagate to the
// caller.
int RunCampaignEngine(const CampaignEngineSpec& spec, std::string* setup_error = nullptr);

}  // namespace byterobust

#endif  // SRC_CAMPAIGN_ENGINE_H_

#include "src/campaign/scenarios.h"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/core/production_presets.h"
#include "src/faults/fault_injector.h"
#include "src/fleet/fleet.h"
#include "src/fleet/fleet_presets.h"
#include "src/harness/journal.h"
#include "src/obs/dashboard.h"
#include "src/recovery/was_model.h"
#include "src/topology/fault_domains.h"

namespace byterobust {

const std::vector<ScenarioSpec>& Specs() {
  static const std::vector<ScenarioSpec> specs = {
      {"quickstart", "16-machine 7B job with the full Table 1 fault mix", false,
       IncidentSymptom::kCudaError, 0.5},
      {"dense", "9,600-GPU dense 70+B production campaign (Sec. 8.1)", false,
       IncidentSymptom::kCudaError, 7.0},
      {"dense-month", "30-day 9,600-GPU dense robustness campaign (month scale)", false,
       IncidentSymptom::kCudaError, 30.0},
      {"moe", "9,600-GPU MoE 200+B production campaign (Sec. 8.1)", false,
       IncidentSymptom::kCudaError, 7.0},
      {"fig2", "1,000-GPU job with heavy manual adjustment (Fig. 2)", false,
       IncidentSymptom::kCudaError, 10.0},
      {"gpu-fault", "targeted kGpuUnavailable injection campaign", true,
       IncidentSymptom::kGpuUnavailable, 0.5},
      {"nic-fault", "targeted kInfinibandError injection campaign", true,
       IncidentSymptom::kInfinibandError, 0.5},
      {"cuda-error", "targeted kCudaError injection campaign", true,
       IncidentSymptom::kCudaError, 0.5},
      {"job-hang", "targeted kJobHang injection campaign", true,
       IncidentSymptom::kJobHang, 0.5},
      {"nan-loss", "targeted kNanValue injection campaign", true,
       IncidentSymptom::kNanValue, 0.5},
      {"spine-flap", "correlated spine flaps: gray network faults over whole sub-trees", false,
       IncidentSymptom::kInfinibandError, 0.5, true, DomainFaultKind::kSpineFlap},
      {"power-domain", "pod power-domain losses killing every machine beneath", false,
       IncidentSymptom::kOsKernelPanic, 0.5, true, DomainFaultKind::kPowerLoss},
      {"link-failslow", "silent ToR fail-slow: congestion backpressure, MFU-only signal", false,
       IncidentSymptom::kMfuDecline, 0.5, true, DomainFaultKind::kLinkFailSlow},
  };
  return specs;
}

const ScenarioSpec* FindSpec(const std::string& name) {
  for (const ScenarioSpec& s : Specs()) {
    if (name == s.name) {
      return &s;
    }
  }
  return nullptr;
}

const std::vector<FleetSpec>& FleetSpecs() {
  static const std::vector<FleetSpec> specs = {
      {"fleet-mixed",
       "three heterogeneous jobs (priorities, staggered starts) on one shared spare pool",
       &FleetMixedConfig, 0.5},
      {"fleet-contention",
       "four jobs, one shared spare, accelerated faults: claims preempt and queue",
       &FleetContentionConfig, 0.5},
      {"fleet-switch-storm",
       "two rack-adjacent jobs under ToR switch storms whose bands span both",
       &FleetSwitchStormConfig, 1.0},
  };
  return specs;
}

const FleetSpec* FindFleetSpec(const std::string& name) {
  for (const FleetSpec& s : FleetSpecs()) {
    if (name == s.name) {
      return &s;
    }
  }
  return nullptr;
}

namespace {

// Escape hatch for the batched-stepping equivalence ctest: BYTEROBUST_STEP_BATCHING=0
// pins the per-step reference path. Output must be byte-identical either way.
bool StepBatchingEnabled() {
  const char* env = std::getenv("BYTEROBUST_STEP_BATCHING");
  return env == nullptr || std::string(env) != "0";
}

// Trailing retention window for per-run ETTR-span / MFU-sample compaction.
// BYTEROBUST_METRIC_WINDOW gives seconds (0 = unbounded); the default keeps
// two hours, comfortably above the 1 h sliding-ETTR window, so campaign
// metrics are bit-identical windowed or not while month-scale runs hold
// O(window) metric state instead of O(steps).
SimDuration MetricsRetentionFromEnv() {
  static const SimDuration retention = [] {
    const char* env = std::getenv("BYTEROBUST_METRIC_WINDOW");
    if (env == nullptr) {
      return Hours(2);
    }
    const double seconds = std::strtod(env, nullptr);
    return seconds <= 0.0 ? SimDuration{0} : Seconds(seconds);
  }();
  return retention;
}

SystemConfig QuickstartSystem(std::uint64_t seed) {
  SystemConfig config;
  config.job.name = "quickstart-7B";
  config.job.model_params_b = 7.0;
  config.job.parallelism.tp = 2;
  config.job.parallelism.pp = 4;
  config.job.parallelism.dp = 4;
  config.job.parallelism.gpus_per_machine = 2;
  config.job.base_step_time = Seconds(10);
  config.seed = seed;
  config.spare_machines = 4;
  config.job.batched_stepping = StepBatchingEnabled();
  config.metrics_retention = MetricsRetentionFromEnv();
  return config;
}

ScenarioConfig MixedConfig(const std::string& name, double days, std::uint64_t seed) {
  if (name == "dense" || name == "dense-month") {
    return DenseCampaignConfig(days, seed);
  }
  if (name == "moe") {
    return MoeCampaignConfig(days, seed);
  }
  if (name == "fig2") {
    ScenarioConfig cfg = Fig2CampaignConfig(seed);
    cfg.duration = Days(days);
    return cfg;
  }
  // quickstart: small cluster, accelerated fault clock so a half-day run
  // still sees a handful of incidents.
  ScenarioConfig cfg;
  cfg.system = QuickstartSystem(seed);
  cfg.duration = Days(days);
  cfg.injector.reference_mtbf = Hours(1.0);
  cfg.injector.reference_machines = 64;
  cfg.planned_updates = 2;
  return cfg;
}

// Correlated fault-domain campaigns: the quickstart cluster with the domain
// stream dominant and the Table 1 background mix throttled way down, so the
// blast-radius metrics reflect the correlated faults rather than the mix.
ScenarioConfig DomainConfig(const ScenarioSpec& spec, double days, std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.system = QuickstartSystem(seed);
  cfg.duration = Days(days);
  // Quickstart has 20 machines (16 serving + 4 spares); the default 6/4 tree
  // would collapse to a single spine covering everything. 4 machines per ToR
  // and 2 ToRs per spine gives 5 ToRs / 3 spines / 2 pods, so domain faults
  // strike proper sub-trees instead of the whole cluster.
  cfg.system.fault_domains.machines_per_tor = 4;
  cfg.system.fault_domains.tors_per_spine = 2;
  cfg.injector.reference_mtbf = Hours(6.0);
  cfg.injector.reference_machines = 64;
  cfg.planned_updates = 0;
  cfg.domain_faults.kind = spec.domain_kind;
  cfg.domain_faults.mean_gap = Minutes(45);
  switch (spec.domain_kind) {
    case DomainFaultKind::kPowerLoss:
      // Power loss never self-heals inside a debounce; every event is a
      // persistent whole-pod outage (shortened so a half-day run recovers).
      cfg.domain_faults.transient_fraction = 0.0;
      cfg.domain_faults.persistent_hold = Hours(1);
      break;
    case DomainFaultKind::kLinkFailSlow:
      cfg.domain_faults.transient_fraction = 0.5;
      cfg.domain_faults.persistent_hold = Hours(1);
      cfg.domain_faults.degradation_factor = 0.55;
      break;
    default:
      break;  // spine-flap: default 70% transient, healing inside the debounce
  }
  return cfg;
}

LatencyStats Summarize(const std::vector<double>& xs) {
  LatencyStats s;
  s.count = static_cast<int>(xs.size());
  for (double x : xs) {
    s.mean_s += x;
    s.max_s = std::max(s.max_s, x);
  }
  if (s.count > 0) {
    s.mean_s /= s.count;
  }
  return s;
}

// Weighted-average scheduling time at this scale under the Sec. 6.2 binomial
// failure model (the Fig. 12 methodology, src/recovery/was_model.h).
void ComputeWas(int machines, RunResult* r) {
  const WasEstimate est = EstimateWas(machines);
  r->was_byterobust_s = est.byterobust_s;
  r->was_requeue_s = est.requeue_s;
}

void CollectSystemMetrics(ByteRobustSystem& sys, RunResult* r) {
  r->machines = sys.config().job.parallelism.num_machines();
  r->world_size = sys.config().job.parallelism.world_size();
  r->steps = sys.job().max_step_reached();
  r->runs = sys.job().run_count();
  r->evictions = sys.controller().evictions_total();
  r->ettr_cumulative = sys.ettr().CumulativeEttr(sys.sim().Now());
  r->productive_s = ToSeconds(sys.ettr().productive_time());
  r->recompute_s = ToSeconds(sys.ettr().recompute_time());
  r->final_mfu = sys.job().CurrentMfu();

  std::vector<double> detect;
  std::vector<double> localize;
  std::vector<double> failover;
  std::vector<double> total;
  for (const IncidentResolution& res : sys.controller().log().entries()) {
    detect.push_back(ToSeconds(res.DetectionTime()));
    localize.push_back(ToSeconds(res.LocalizationTime()));
    failover.push_back(ToSeconds(res.FailoverTime()));
    total.push_back(ToSeconds(res.TotalUnproductive()));
    if (res.resolved) {
      ++r->incidents_resolved;
    }
    ++r->mechanisms[MechanismName(res.mechanism)];
  }
  r->detection = Summarize(detect);
  r->localization = Summarize(localize);
  r->failover = Summarize(failover);
  r->resolution = Summarize(total);
  ComputeWas(r->machines, r);
}

RunResult RunMixed(const ScenarioSpec& spec, double days, std::uint64_t seed) {
  RunResult r;
  r.scenario = spec.name;
  r.seed = seed;
  r.days = days;
  ScenarioConfig cfg =
      spec.domain ? DomainConfig(spec, days, seed) : MixedConfig(spec.name, days, seed);
  cfg.system.job.batched_stepping = StepBatchingEnabled();
  cfg.system.metrics_retention = MetricsRetentionFromEnv();
  Scenario scenario(cfg);
  scenario.Run();
  r.incidents_injected = scenario.stats().incidents_injected;
  r.refails = scenario.stats().refails;
  r.updates_submitted = scenario.stats().updates_submitted;
  r.domain_faults_injected = scenario.stats().domain_faults_injected;
  r.domain_blast = scenario.domain_blast();
  CollectSystemMetrics(scenario.system(), &r);
  if (obs::DashboardEnabled()) {
    ByteRobustSystem& sys = scenario.system();
    obs::RecordDashboardJob(obs::SampleDashboardJob(
        std::string(spec.name) + " seed " + std::to_string(seed), seed,
        /*ordinal=*/0, sys.ettr(), sys.mfu_series(), sys.sim().Now()));
  }
  return r;
}

// A targeted campaign: one symptom, injected at exponential intervals onto a
// random serving machine, with the infrastructure root cause (the controller
// must evict the machine to clear it).
class TargetedCampaign {
 public:
  TargetedCampaign(const ScenarioSpec& spec, double days, std::uint64_t seed)
      : spec_(spec),
        sys_(QuickstartSystem(seed)),
        rng_(seed ^ 0xF00DULL),
        duration_(Days(days)),
        mean_gap_(Minutes(40)) {}

  int Run() {
    sys_.Start();
    ScheduleNext();
    sys_.sim().RunUntil(duration_);
    return injected_;
  }

  ByteRobustSystem& system() { return sys_; }

 private:
  void ScheduleNext() {
    const SimDuration delay =
        static_cast<SimDuration>(rng_.Exponential(static_cast<double>(mean_gap_)));
    sys_.sim().Schedule(delay, [this] { Inject(); });
  }

  void Inject() {
    if (sys_.job().state() != JobRunState::kRunning) {
      sys_.sim().Schedule(Minutes(2), [this] { Inject(); });
      return;
    }
    // Same slot-ordered membership as ServingMachines(), without the
    // per-incident copy.
    const std::vector<MachineId>& serving = sys_.cluster().serving_slots();
    if (serving.empty()) {
      return;
    }
    Incident inc;
    inc.id = static_cast<std::uint64_t>(++injected_);
    inc.symptom = spec_.symptom;
    inc.root_cause = RootCause::kInfrastructure;
    inc.faulty_machines = {serving[static_cast<std::size_t>(
        rng_.UniformInt(0, static_cast<std::int64_t>(serving.size()) - 1))]};
    inc.gpu_index = spec_.symptom == IncidentSymptom::kGpuUnavailable
                        ? static_cast<int>(rng_.UniformInt(
                              0, sys_.config().job.parallelism.gpus_per_machine - 1))
                        : -1;
    inc.inject_time = sys_.sim().Now();
    FaultInjector::ApplyToCluster(inc, &sys_.cluster());
    sys_.controller().NotifyIncidentInjected(inc);
    switch (inc.symptom) {
      case IncidentSymptom::kJobHang: {
        const Topology& topo = sys_.job().topology();
        const int slot = sys_.cluster().SlotOfMachine(inc.faulty_machines.front());
        sys_.job().Hang(std::max(slot, 0) * topo.config().gpus_per_machine);
        break;
      }
      case IncidentSymptom::kNanValue:
        sys_.job().SetNanLoss(true);
        break;
      case IncidentSymptom::kMfuDecline:
        break;  // monitor picks up the degraded clock on the next step
      default:
        sys_.job().Crash();
        break;
    }
    ScheduleNext();
  }

  ScenarioSpec spec_;
  ByteRobustSystem sys_;
  Rng rng_;
  SimDuration duration_;
  SimDuration mean_gap_;
  int injected_ = 0;
};

RunResult RunTargeted(const ScenarioSpec& spec, double days, std::uint64_t seed) {
  RunResult r;
  r.scenario = spec.name;
  r.seed = seed;
  r.days = days;
  TargetedCampaign campaign(spec, days, seed);
  r.incidents_injected = campaign.Run();
  CollectSystemMetrics(campaign.system(), &r);
  if (obs::DashboardEnabled()) {
    ByteRobustSystem& sys = campaign.system();
    obs::RecordDashboardJob(obs::SampleDashboardJob(
        std::string(spec.name) + " seed " + std::to_string(seed), seed,
        /*ordinal=*/0, sys.ettr(), sys.mfu_series(), sys.sim().Now()));
  }
  return r;
}

// ---------------------------------------------------------------------------
// JSON emission.
// ---------------------------------------------------------------------------
void WriteLatency(JsonWriter* w, const std::string& key, const LatencyStats& s) {
  w->Key(key);
  w->BeginObject();
  w->Field("mean_s", s.mean_s);
  w->Field("max_s", s.max_s);
  w->Field("count", s.count);
  w->EndObject();
}

// Per-domain-level blast-radius block, shared by campaign runs and the fleet
// seed element. Only emitted when at least one domain fault fired, so flat
// (or BYTEROBUST_FAULT_DOMAINS=0) campaigns keep their PR 6 byte layout.
void WriteDomainBlast(JsonWriter* w, const std::string& key, const DomainBlastStats& stats) {
  w->Key(key);
  w->BeginObject();
  w->Field("events", static_cast<int>(stats.events().size()));
  w->Key("levels");
  w->BeginObject();
  for (const auto& [level, s] : stats.SummaryByLevel()) {
    w->Key(DomainLevelName(static_cast<DomainLevel>(level)));
    w->BeginObject();
    w->Field("events", s.events);
    w->Field("transient", s.transient_events);
    w->Field("healed", s.healed_events);
    w->Field("mean_ettr_delta", s.MeanEttrDelta());
    w->Key("machines_hist");
    w->BeginObject();
    for (const auto& [machines, count] : s.machines_hist) {
      w->Field(std::to_string(machines), count);
    }
    w->EndObject();
    w->Key("jobs_hist");
    w->BeginObject();
    for (const auto& [jobs, count] : s.jobs_hist) {
      w->Field(std::to_string(jobs), count);
    }
    w->EndObject();
    w->EndObject();
  }
  w->EndObject();
  w->EndObject();
}

void WriteRunFields(JsonWriter* w, const RunResult& r) {
  w->Field("scenario", r.scenario);
  w->Field("seed", r.seed);
  w->Field("days", r.days);
  w->Field("machines", r.machines);
  w->Field("world_size", r.world_size);
  w->Field("steps", r.steps);
  w->Field("runs", r.runs);
  w->Field("evictions", r.evictions);
  w->Key("incidents");
  w->BeginObject();
  w->Field("injected", r.incidents_injected);
  w->Field("resolved", r.incidents_resolved);
  w->Field("refails", r.refails);
  w->Field("updates_submitted", r.updates_submitted);
  w->EndObject();
  w->Key("ettr");
  w->BeginObject();
  w->Field("cumulative", r.ettr_cumulative);
  w->Field("productive_s", r.productive_s);
  w->Field("recompute_s", r.recompute_s);
  w->EndObject();
  WriteLatency(w, "detection_s", r.detection);
  WriteLatency(w, "localization_s", r.localization);
  WriteLatency(w, "failover_s", r.failover);
  WriteLatency(w, "resolution_s", r.resolution);
  w->Key("was_s");
  w->BeginObject();
  w->Field("byterobust", r.was_byterobust_s);
  w->Field("requeue", r.was_requeue_s);
  w->EndObject();
  w->Field("final_mfu", r.final_mfu);
  w->Key("mechanisms");
  w->BeginObject();
  for (const auto& [name, count] : r.mechanisms) {
    w->Field(name, count);
  }
  w->EndObject();
  if (!r.domain_blast.empty()) {
    w->Field("domain_faults_injected", r.domain_faults_injected);
    WriteDomainBlast(w, "fault_domains", r.domain_blast);
  }
}

// Campaign aggregate slots: one source of truth for the pairing between the
// per-seed summary vector (CampaignSummaryOf) and the emitted labels
// (WriteCampaignAggregates) — reordering one without the other cannot happen.
enum CampaignAggSlot : std::size_t {
  kCampaignAggEttr = 0,
  kCampaignAggDetection,
  kCampaignAggResolution,
  kCampaignAggFailover,
  kCampaignAggIncidents,
  kCampaignAggEvictions,
  kCampaignAggCount,
};

std::vector<double> CampaignSummaryOf(const RunResult& r) {
  std::vector<double> s(kCampaignAggCount);
  s[kCampaignAggEttr] = r.ettr_cumulative;
  s[kCampaignAggDetection] = r.detection.mean_s;
  s[kCampaignAggResolution] = r.resolution.mean_s;
  s[kCampaignAggFailover] = r.failover.mean_s;
  s[kCampaignAggIncidents] = static_cast<double>(r.incidents_injected);
  s[kCampaignAggEvictions] = static_cast<double>(r.evictions);
  return s;
}

// One "runs" array element, byte-identical to the same element rendered
// inline by the full-document writer (leading newline + indent, no comma).
std::string RenderRunElement(const RunResult& r) {
  JsonWriter w(/*depth=*/2, /*need_comma=*/false);
  WriteRun(&w, r);
  return w.Take();
}

void WriteCampaignAggregates(JsonWriter* w, const std::vector<std::vector<double>>& summaries) {
  w->Key("aggregate");
  w->BeginObject();
  WriteAggregate(w, "ettr_cumulative", FoldAggregateAt(summaries, kCampaignAggEttr));
  WriteAggregate(w, "detection_mean_s", FoldAggregateAt(summaries, kCampaignAggDetection));
  WriteAggregate(w, "resolution_mean_s", FoldAggregateAt(summaries, kCampaignAggResolution));
  WriteAggregate(w, "failover_mean_s", FoldAggregateAt(summaries, kCampaignAggFailover));
  WriteAggregate(w, "incidents_injected", FoldAggregateAt(summaries, kCampaignAggIncidents));
  WriteAggregate(w, "evictions", FoldAggregateAt(summaries, kCampaignAggEvictions));
  w->EndObject();
}

// ---------------------------------------------------------------------------
// Fleet emission: N concurrent jobs on one shared pool (src/fleet).
// ---------------------------------------------------------------------------

// Fleet aggregate slots: same single-sourcing as the campaign slots above.
enum FleetAggSlot : std::size_t {
  kFleetAggGpuRatio = 0,
  kFleetAggPreemptions,
  kFleetAggQueuedClaims,
  kFleetAggStorms,
  kFleetAggCrossJobStorms,
  kFleetAggIncidents,
  kFleetAggEvictions,
  kFleetAggCount,
};

void WriteFleetAggregates(JsonWriter* w, const std::vector<std::vector<double>>& summaries) {
  w->Key("aggregate");
  w->BeginObject();
  WriteAggregate(w, "effective_gpu_time_ratio", FoldAggregateAt(summaries, kFleetAggGpuRatio));
  WriteAggregate(w, "preemptions", FoldAggregateAt(summaries, kFleetAggPreemptions));
  WriteAggregate(w, "queued_claims", FoldAggregateAt(summaries, kFleetAggQueuedClaims));
  WriteAggregate(w, "storms_injected", FoldAggregateAt(summaries, kFleetAggStorms));
  WriteAggregate(w, "cross_job_storms", FoldAggregateAt(summaries, kFleetAggCrossJobStorms));
  WriteAggregate(w, "incidents_injected", FoldAggregateAt(summaries, kFleetAggIncidents));
  WriteAggregate(w, "evictions", FoldAggregateAt(summaries, kFleetAggEvictions));
  w->EndObject();
}

// Runs one fleet seed and renders its "runs" element: fleet-level metrics
// (effective GPU-time ratio, spare-pool occupancy timeline, blast radius)
// plus one per-job block reusing the campaign RunResult schema extended with
// priority / start time / spare-claim counters.
SeedOutcome RunFleetSeed(const FleetSpec& spec, double days, std::uint64_t seed) {
  FleetConfig cfg = spec.make(days, seed);
  for (FleetJobSpec& job : cfg.jobs) {
    job.scenario.system.job.batched_stepping = StepBatchingEnabled();
    job.scenario.system.metrics_retention = MetricsRetentionFromEnv();
  }
  Fleet fleet(cfg);
  fleet.Run();

  int incidents_total = 0;
  int evictions_total = 0;
  JsonWriter w(/*depth=*/2, /*need_comma=*/false);
  w.BeginObject();
  w.Field("scenario", spec.name);
  w.Field("seed", seed);
  w.Field("days", days);
  w.Field("num_jobs", fleet.num_jobs());
  w.Key("fleet");
  w.BeginObject();
  w.Field("machines_total", static_cast<int>(fleet.pool().total_machines()));
  w.Field("effective_gpu_time_ratio", fleet.EffectiveGpuTimeRatio());
  w.Field("storms_injected", fleet.storms_injected());
  w.Field("cross_job_storms", fleet.cross_job_storms());
  w.Key("blast_radius");
  w.BeginObject();
  for (const auto& [radius, count] : fleet.blast_radius_counts()) {
    w.Field(std::to_string(radius), count);
  }
  w.EndObject();
  if (!fleet.domain_blast().empty()) {
    WriteDomainBlast(&w, "domain_blast", fleet.domain_blast());
  }
  const SpareOccupancySummary occ = fleet.OccupancySummary();
  w.Key("spare_pool");
  w.BeginObject();
  w.Field("preemptions", fleet.arbiter().preemptions_total());
  w.Field("queued_claims", fleet.arbiter().queued_claims_total());
  w.Field("ready_mean", occ.mean_ready);
  w.Field("ready_min", occ.min_ready);
  w.Field("ready_max", occ.max_ready);
  w.Field("occupancy_samples", occ.samples);
  // Occupancy timeline: every pool mutation up to a fixed emission cap.
  const std::vector<SpareOccupancySample>& timeline = fleet.arbiter().occupancy();
  constexpr std::size_t kTimelineCap = 256;
  w.Field("timeline_truncated", timeline.size() > kTimelineCap);
  w.Key("timeline");
  w.BeginArray();
  for (std::size_t i = 0; i < timeline.size() && i < kTimelineCap; ++i) {
    w.BeginObject();
    w.Field("t_s", ToSeconds(timeline[i].time));
    w.Field("ready", timeline[i].ready);
    w.Field("provisioning", timeline[i].provisioning);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();  // spare_pool
  w.EndObject();  // fleet
  w.Key("jobs");
  w.BeginArray();
  for (int i = 0; i < fleet.num_jobs(); ++i) {
    const FleetJobSpec& job_spec = fleet.spec(i);
    RunResult r;
    r.scenario = spec.name;
    r.seed = fleet.system(i).config().seed;
    r.days = ToDays(std::max<SimDuration>(cfg.duration - job_spec.start_time, 0));
    r.incidents_injected = fleet.scenario(i).stats().incidents_injected;
    r.refails = fleet.scenario(i).stats().refails;
    r.updates_submitted = fleet.scenario(i).stats().updates_submitted;
    CollectSystemMetrics(fleet.system(i), &r);
    if (obs::DashboardEnabled()) {
      ByteRobustSystem& sys = fleet.system(i);
      obs::RecordDashboardJob(obs::SampleDashboardJob(
          std::string(spec.name) + " seed " + std::to_string(seed) + "/" +
              job_spec.name,
          seed, /*ordinal=*/i, sys.ettr(), sys.mfu_series(), sys.sim().Now()));
    }
    if (fleet.system(i).job().run_count() == 0) {
      // A job that never launched inside the campaign window has no
      // availability to report; CumulativeEttr's zero-wall convention would
      // otherwise claim a perfect 1.0 for it.
      r.ettr_cumulative = 0.0;
    }
    incidents_total += r.incidents_injected;
    evictions_total += r.evictions;
    const SpareJobStats& spares = fleet.arbiter().job_stats(i);
    w.BeginObject();
    w.Field("name", job_spec.name);
    w.Field("priority", job_spec.priority);
    w.Field("start_day", ToDays(job_spec.start_time));
    WriteRunFields(&w, r);
    w.Key("spares");
    w.BeginObject();
    w.Field("claims", spares.claims);
    w.Field("machines_requested", spares.machines_requested);
    w.Field("machines_granted", spares.machines_granted);
    w.Field("preemptions_gained", spares.preemptions_gained);
    w.Field("preemptions_lost", spares.preemptions_lost);
    w.Field("queued_claims", spares.queued_claims);
    w.Field("shortfall_machines", spares.shortfall_machines);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();

  SeedOutcome outcome;
  outcome.element = w.Take();
  outcome.summary.resize(kFleetAggCount);
  outcome.summary[kFleetAggGpuRatio] = fleet.EffectiveGpuTimeRatio();
  outcome.summary[kFleetAggPreemptions] = fleet.arbiter().preemptions_total();
  outcome.summary[kFleetAggQueuedClaims] = fleet.arbiter().queued_claims_total();
  outcome.summary[kFleetAggStorms] = fleet.storms_injected();
  outcome.summary[kFleetAggCrossJobStorms] = fleet.cross_job_storms();
  outcome.summary[kFleetAggIncidents] = incidents_total;
  outcome.summary[kFleetAggEvictions] = evictions_total;
  return outcome;
}

}  // namespace

RunResult RunOne(const ScenarioSpec& spec, double days, std::uint64_t seed) {
  return spec.targeted ? RunTargeted(spec, days, seed) : RunMixed(spec, days, seed);
}

void WriteRun(JsonWriter* w, const RunResult& r) {
  w->BeginObject();
  WriteRunFields(w, r);
  w->EndObject();
}

void WriteRunSetHeaderFields(JsonWriter* w, const char* command, const char* scenario,
                             int seeds, std::uint64_t base_seed, double days) {
  w->Field("tool", "byterobust");
  w->Field("command", command);
  w->Field("scenario", scenario);
  w->Field("seeds", seeds);
  w->Field("base_seed", base_seed);
  w->Field("days", days);
}

bool BuildCampaignEngineSpec(const CampaignRequest& req, CampaignEngineSpec* spec,
                             std::string* error) {
  const bool is_fleet = req.command == "fleet";
  const ScenarioSpec* scenario = nullptr;
  const FleetSpec* fleet = nullptr;
  double default_days = 0.0;
  const char* scenario_name = nullptr;
  if (is_fleet) {
    fleet = FindFleetSpec(req.scenario);
    if (fleet == nullptr) {
      *error = "unknown fleet scenario '" + req.scenario + "' (try: byterobust list)";
      return false;
    }
    default_days = fleet->default_days;
    scenario_name = fleet->name;
  } else {
    scenario = FindSpec(req.scenario);
    if (scenario == nullptr) {
      *error = "unknown scenario '" + req.scenario + "' (try: byterobust list)";
      return false;
    }
    default_days = scenario->default_days;
    scenario_name = scenario->name;
  }
  if (req.seeds < 1) {
    *error = "--seeds must be >= 1";
    return false;
  }
  const double days = req.days > 0.0 ? req.days : default_days;
  const char* command = is_fleet ? "fleet" : "campaign";
  const std::uint64_t base_seed = req.base_seed;
  const int seeds = req.seeds;

  spec->seeds = seeds;
  spec->jobs = req.jobs;
  spec->stream = req.stream;
  spec->out_path = req.out_path;
  spec->label = std::string(command) + ":" + scenario_name;
  spec->identity = {command, scenario_name, seeds, base_seed, days, BinaryFingerprint()};
  spec->journal_path = req.journal_path;
  spec->resume_path = req.resume_path;
  spec->retries_override = req.retries;
  spec->journal_sync = req.journal_sync;
  // Everything below captures by value (registry entries have static storage
  // duration), so the spec is self-contained: serve keeps it alive across the
  // request's worker pool long after the request struct is gone.
  if (is_fleet) {
    spec->run_seed = [fleet, days, base_seed](int i) {
      return RunFleetSeed(*fleet, days, base_seed + static_cast<std::uint64_t>(i));
    };
    spec->aggregates = [](JsonWriter* w, const std::vector<std::vector<double>>& summaries) {
      WriteFleetAggregates(w, summaries);
    };
  } else {
    spec->run_seed = [scenario, days, base_seed](int i) {
      const RunResult r = RunOne(*scenario, days, base_seed + static_cast<std::uint64_t>(i));
      return SeedOutcome{RenderRunElement(r), CampaignSummaryOf(r), false};
    };
    spec->aggregates = [](JsonWriter* w, const std::vector<std::vector<double>>& summaries) {
      WriteCampaignAggregates(w, summaries);
    };
  }
  spec->header_fields = [command, scenario_name, seeds, base_seed, days](JsonWriter* w) {
    WriteRunSetHeaderFields(w, command, scenario_name, seeds, base_seed, days);
  };
  return true;
}

}  // namespace byterobust

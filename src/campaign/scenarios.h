// The named scenario / fleet-scenario registries and the per-seed runners
// behind them, shared by the byterobust CLI subcommands and the serve daemon.
// BuildCampaignEngineSpec turns one validated campaign/fleet request into a
// self-contained CampaignEngineSpec (lambdas capture by value), so the CLI
// and every serve request produce byte-identical documents from the same
// parameters.

#ifndef SRC_CAMPAIGN_SCENARIOS_H_
#define SRC_CAMPAIGN_SCENARIOS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/campaign/engine.h"
#include "src/campaign/json_writer.h"
#include "src/core/scenario.h"
#include "src/faults/domain_injector.h"
#include "src/fleet/fleet.h"
#include "src/metrics/domain_blast.h"

namespace byterobust {

// ---------------------------------------------------------------------------
// Named scenarios.
// ---------------------------------------------------------------------------
struct ScenarioSpec {
  const char* name;
  const char* summary;
  bool targeted;                  // single-symptom campaign vs full mix
  IncidentSymptom symptom;        // targeted only
  double default_days;
  // Correlated fault-domain campaigns: when set, the scenario's dominant
  // stream is a Poisson process of *domain* faults of this kind over the
  // hierarchical topology graph (src/topology/fault_domains.h), with a sparse
  // background Table 1 mix underneath.
  bool domain = false;
  DomainFaultKind domain_kind = DomainFaultKind::kSpineFlap;
};

const std::vector<ScenarioSpec>& Specs();
const ScenarioSpec* FindSpec(const std::string& name);

// Named fleet scenarios (multi-job, shared spare pool; see src/fleet).
struct FleetSpec {
  const char* name;
  const char* summary;
  FleetConfig (*make)(double days, std::uint64_t seed);
  double default_days;
};

const std::vector<FleetSpec>& FleetSpecs();
const FleetSpec* FindFleetSpec(const std::string& name);

// ---------------------------------------------------------------------------
// One campaign run -> metrics.
// ---------------------------------------------------------------------------
struct LatencyStats {
  double mean_s = 0.0;
  double max_s = 0.0;
  int count = 0;
};

struct RunResult {
  std::string scenario;
  std::uint64_t seed = 0;
  double days = 0.0;
  int machines = 0;
  int world_size = 0;
  std::int64_t steps = 0;
  int runs = 0;
  int evictions = 0;
  int incidents_injected = 0;
  int incidents_resolved = 0;
  int refails = 0;
  int updates_submitted = 0;
  double ettr_cumulative = 0.0;
  double productive_s = 0.0;
  double recompute_s = 0.0;
  double final_mfu = 0.0;
  LatencyStats detection;
  LatencyStats localization;
  LatencyStats failover;
  LatencyStats resolution;  // total unproductive time per incident
  double was_byterobust_s = 0.0;
  double was_requeue_s = 0.0;
  std::map<std::string, int> mechanisms;
  int domain_faults_injected = 0;
  DomainBlastStats domain_blast;  // empty unless the scenario injects domain faults
};

// Runs one scenario seed (targeted or mixed) to a RunResult.
RunResult RunOne(const ScenarioSpec& spec, double days, std::uint64_t seed);

// Renders one RunResult as a JSON object at the writer's current position
// (the `run` subcommand's "result" block, and each "runs" array element).
void WriteRun(JsonWriter* w, const RunResult& r);

// Header fields shared by every seed-campaign document (campaign and fleet).
void WriteRunSetHeaderFields(JsonWriter* w, const char* command, const char* scenario,
                             int seeds, std::uint64_t base_seed, double days);

// ---------------------------------------------------------------------------
// One validated request -> a self-contained engine spec.
// ---------------------------------------------------------------------------

// The parameters a campaign or fleet run is a pure function of: same request
// body + base seed -> byte-identical document, whatever the transport (CLI
// flags or a serve request line) and whatever --jobs is.
struct CampaignRequest {
  std::string command;  // "campaign" or "fleet"
  std::string scenario;
  int seeds = 4;
  std::uint64_t base_seed = 42;
  double days = -1.0;  // < 0: use the scenario default
  int jobs = 1;
  bool stream = false;
  std::string out_path;
  std::string journal_path;
  std::string resume_path;
  int retries = -1;  // < 0 defers to env/default
  bool journal_sync = false;
};

// Resolves the request against the registries and fills *spec (run_seed /
// header_fields / aggregates capture by value — the spec outlives the
// request). On a bad scenario name or seed count, fills *error (no "error: "
// prefix) and returns false without touching *spec's callbacks.
bool BuildCampaignEngineSpec(const CampaignRequest& req, CampaignEngineSpec* spec,
                             std::string* error);

}  // namespace byterobust

#endif  // SRC_CAMPAIGN_SCENARIOS_H_

// Minimal JSON writer: enough for flat objects, nested objects and arrays,
// with the exact two-space indentation every byterobust document uses. The
// byte layout this class produces is pinned by the CLI determinism ctests —
// change it and every equivalence gate fails.

#ifndef SRC_CAMPAIGN_JSON_WRITER_H_
#define SRC_CAMPAIGN_JSON_WRITER_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

namespace byterobust {

class JsonWriter {
 public:
  JsonWriter() = default;

  // Primed writer: emits text as if `depth` scopes were already open, with
  // `need_comma` saying whether the enclosing scope already holds a value.
  // Lets workers render one "runs" array element (depth 2) byte-identically
  // to an element written inline by the full-document writer.
  JsonWriter(int depth, bool need_comma) : depth_(depth) { need_comma_.push_back(need_comma); }

  std::string Take() { return out_.str(); }

  void BeginObject() { Open('{'); }
  void EndObject() { Close('}'); }
  void BeginArray() { Open('['); }
  void EndArray() { Close(']'); }

  void Key(const std::string& k) {
    Comma();
    Indent();
    out_ << '"' << Escape(k) << "\": ";
    pending_value_ = true;
  }

  void Value(const std::string& v) { Scalar('"' + Escape(v) + '"'); }
  void Value(const char* v) { Value(std::string(v)); }
  void Value(double v) {
    if (!std::isfinite(v)) {
      Scalar("null");
      return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    Scalar(buf);
  }
  void Value(std::int64_t v) { Scalar(std::to_string(v)); }
  void Value(int v) { Scalar(std::to_string(v)); }
  void Value(std::uint64_t v) { Scalar(std::to_string(v)); }
  void Value(bool v) { Scalar(v ? "true" : "false"); }

  template <typename T>
  void Field(const std::string& k, T v) {
    Key(k);
    Value(v);
  }

 private:
  static std::string Escape(const std::string& s) {
    std::string r;
    for (char c : s) {
      if (c == '"' || c == '\\') {
        r += '\\';
        r += c;
      } else if (c == '\n') {
        r += "\\n";
      } else {
        r += c;
      }
    }
    return r;
  }

  void Open(char c) {
    if (!pending_value_) {
      Comma();
      Indent();
    }
    pending_value_ = false;
    out_ << c;
    ++depth_;
    need_comma_.push_back(false);
  }

  void Close(char c) {
    --depth_;
    need_comma_.pop_back();
    out_ << '\n';
    Indent();
    out_ << c;
    if (!need_comma_.empty()) {
      need_comma_.back() = true;
    }
    pending_value_ = false;
  }

  void Scalar(const std::string& text) {
    if (!pending_value_) {
      Comma();
      Indent();
    }
    pending_value_ = false;
    out_ << text;
    if (!need_comma_.empty()) {
      need_comma_.back() = true;
    }
  }

  void Comma() {
    if (!need_comma_.empty() && need_comma_.back()) {
      out_ << ',';
    }
    if (depth_ > 0) {
      out_ << '\n';
    }
    if (!need_comma_.empty()) {
      need_comma_.back() = false;
    }
  }

  void Indent() {
    for (int i = 0; i < depth_; ++i) {
      out_ << "  ";
    }
  }

  std::ostringstream out_;
  int depth_ = 0;
  bool pending_value_ = false;
  std::vector<bool> need_comma_;
};

}  // namespace byterobust

#endif  // SRC_CAMPAIGN_JSON_WRITER_H_

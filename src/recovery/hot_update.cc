#include "src/recovery/hot_update.h"

#include "src/common/log.h"

namespace byterobust {

HotUpdateManager::HotUpdateManager(const HotUpdateConfig& config, Simulator* sim)
    : config_(config), sim_(sim) {}

void HotUpdateManager::Submit(const CodeVersion& version) {
  Pending p;
  p.version = version;
  p.submitted = sim_->Now();
  if (!version.urgent) {
    const int id = version.id;
    p.window_event =
        sim_->Schedule(config_.trigger_window, [this, id] { OnWindowExpired(id); });
  }
  pending_.push_back(std::move(p));
  BR_LOG_INFO("hot-update", "update v%d submitted (%s)", version.id,
              version.urgent ? "urgent: restart now" : "lazy: merge into next recovery");
  if (version.urgent && requester_) {
    requester_();
  }
}

std::vector<CodeVersion> HotUpdateManager::TakePending(bool merged_into_recovery) {
  std::vector<CodeVersion> out;
  for (Pending& p : pending_) {
    if (p.window_event != kInvalidEventId) {
      sim_->Cancel(p.window_event);
    }
    AppliedUpdateRecord rec;
    rec.version = p.version;
    rec.submitted = p.submitted;
    rec.applied = sim_->Now();
    rec.merged_into_failure_recovery = merged_into_recovery;
    history_.push_back(rec);
    out.push_back(p.version);
  }
  pending_.clear();
  return out;
}

int HotUpdateManager::merged_count() const {
  int n = 0;
  for (const auto& rec : history_) {
    if (rec.merged_into_failure_recovery) {
      ++n;
    }
  }
  return n;
}

void HotUpdateManager::OnWindowExpired(int version_id) {
  // Still pending after the trigger window? Force a hot-update restart.
  for (const Pending& p : pending_) {
    if (p.version.id == version_id) {
      BR_LOG_INFO("hot-update", "trigger window expired for v%d; forcing apply", version_id);
      if (requester_) {
        requester_();
      }
      return;
    }
  }
}

}  // namespace byterobust

// Weighted-average scheduling (WAS) time on machine eviction, per the
// Fig. 12 methodology (Sec. 8.2.1): weight eviction sizes 1..P99 by the
// binomial failure model of Sec. 6.2, add a catastrophic switch failure at a
// fixed probability, and price each recovery strategy with RestartCostModel.
// Shared by bench/bench_fig12_was.cc and the byterobust CLI.

#ifndef SRC_RECOVERY_WAS_MODEL_H_
#define SRC_RECOVERY_WAS_MODEL_H_

#include "src/recovery/restart_model.h"
#include "src/recovery/warm_standby.h"

namespace byterobust {

struct WasEstimate {
  int p99_evictions = 0;   // P99 faulty-machine count N at this scale
  double requeue_s = 0.0;
  double reschedule_s = 0.0;
  double oracle_s = 0.0;      // unlimited warm standbys
  double byterobust_s = 0.0;  // standby wake up to N, reschedule the shortfall
};

WasEstimate EstimateWas(int num_machines, const RestartCostModel& model = {},
                        const StandbyConfig& standby = {},
                        int catastrophic_machines = 32,
                        double catastrophic_weight = 0.01);

}  // namespace byterobust

#endif  // SRC_RECOVERY_WAS_MODEL_H_

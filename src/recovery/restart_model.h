// Restart / scheduling cost model (paper Secs. 6.1-6.2, Table 7, Fig. 12).
//
// Calibrated to the production measurements: full requeue pays for clearing
// job metadata, reallocating instance quotas, reinstalling images and
// rebuilding the pod environment — costs that grow with job scale — whereas
// waking a pre-validated warm standby or hot-updating in place is a constant,
// small cost.

#ifndef SRC_RECOVERY_RESTART_MODEL_H_
#define SRC_RECOVERY_RESTART_MODEL_H_

#include "src/common/sim_time.h"

namespace byterobust {

struct RestartCostModel {
  // -- requeue: kill and resubmit the whole job ------------------------------
  double requeue_base_s = 454.0;        // 128-machine job (Table 7)
  double requeue_per_doubling_s = 105.0;

  // -- reschedule: new pods only for evicted machines ------------------------
  double reschedule_base_s = 340.0;     // pod build + image on a fresh machine
  double reschedule_per_doubling_s = 18.0;
  double reschedule_per_machine_s = 2.0;

  // -- warm standby wake ------------------------------------------------------
  double standby_wake_s = 58.0;         // resume past the pre-set barrier
  double standby_wake_per_machine_s = 1.5;

  // -- in-place hot update -----------------------------------------------------
  double hot_update_base_s = 46.0;      // swap code, restart processes in-pod
  double hot_update_per_doubling_s = 6.3;

  // Doublings of scale relative to the 128-machine reference.
  static double Doublings(int num_machines);

  SimDuration RequeueTime(int num_machines) const;
  SimDuration RescheduleTime(int num_machines, int evicted) const;
  SimDuration StandbyWakeTime(int evicted) const;
  SimDuration HotUpdateTime(int num_machines) const;
};

}  // namespace byterobust

#endif  // SRC_RECOVERY_RESTART_MODEL_H_

// In-place lazy hot-update manager (paper Sec. 6.1).
//
// Urgent changes (bug fixes) halt training immediately; non-critical changes
// are merged into the next failure recovery — exploiting the inevitability of
// interruptions at scale — or force-applied when the trigger window (default
// 24 h) expires. All applied modifications are persisted for traceability.

#ifndef SRC_RECOVERY_HOT_UPDATE_H_
#define SRC_RECOVERY_HOT_UPDATE_H_

#include <functional>
#include <vector>

#include "src/common/sim_time.h"
#include "src/sim/simulator.h"
#include "src/training/code_version.h"

namespace byterobust {

struct HotUpdateConfig {
  SimDuration trigger_window = Hours(24);
};

// A persisted record of an applied update (the paper's database entry).
struct AppliedUpdateRecord {
  CodeVersion version;
  SimTime submitted = 0;
  SimTime applied = 0;
  bool merged_into_failure_recovery = false;
};

class HotUpdateManager {
 public:
  HotUpdateManager(const HotUpdateConfig& config, Simulator* sim);

  // Invoked when an urgent update or window expiry needs an immediate
  // hot-update restart. The callee (controller/scenario) stops the job,
  // calls TakePending(), applies the versions and restarts in place.
  using RestartRequester = std::function<void()>;
  void SetRestartRequester(RestartRequester requester) { requester_ = std::move(requester); }

  // Queues a code change. Urgent updates fire the restart requester now;
  // lazy ones wait for the next recovery or the trigger window.
  void Submit(const CodeVersion& version);

  // Drains the pending queue; called during any restart so code changes ride
  // along with failure recovery. `merged` tags the persisted records.
  std::vector<CodeVersion> TakePending(bool merged_into_recovery);

  bool HasPending() const { return !pending_.empty(); }
  int pending_count() const { return static_cast<int>(pending_.size()); }
  const std::vector<AppliedUpdateRecord>& history() const { return history_; }
  int applied_count() const { return static_cast<int>(history_.size()); }
  int merged_count() const;

 private:
  struct Pending {
    CodeVersion version;
    SimTime submitted;
    EventId window_event = kInvalidEventId;
  };

  void OnWindowExpired(int version_id);

  HotUpdateConfig config_;
  Simulator* sim_;
  RestartRequester requester_;
  std::vector<Pending> pending_;
  std::vector<AppliedUpdateRecord> history_;
};

}  // namespace byterobust

#endif  // SRC_RECOVERY_HOT_UPDATE_H_

#include "src/recovery/restart_model.h"

#include <algorithm>
#include <cmath>

namespace byterobust {

double RestartCostModel::Doublings(int num_machines) {
  const double m = std::max(num_machines, 1);
  return std::max(0.0, std::log2(m / 128.0));
}

SimDuration RestartCostModel::RequeueTime(int num_machines) const {
  return Seconds(requeue_base_s + requeue_per_doubling_s * Doublings(num_machines));
}

SimDuration RestartCostModel::RescheduleTime(int num_machines, int evicted) const {
  return Seconds(reschedule_base_s + reschedule_per_doubling_s * Doublings(num_machines) +
                 reschedule_per_machine_s * std::max(evicted, 0));
}

SimDuration RestartCostModel::StandbyWakeTime(int evicted) const {
  return Seconds(standby_wake_s + standby_wake_per_machine_s * std::max(evicted, 0));
}

SimDuration RestartCostModel::HotUpdateTime(int num_machines) const {
  return Seconds(hot_update_base_s + hot_update_per_doubling_s * Doublings(num_machines));
}

}  // namespace byterobust

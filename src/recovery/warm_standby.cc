#include "src/recovery/warm_standby.h"

#include <algorithm>

#include "src/common/log.h"
#include "src/common/rng.h"

namespace byterobust {

WarmStandbyPool::WarmStandbyPool(const StandbyConfig& config, Simulator* sim, Cluster* cluster)
    : config_(config), sim_(sim), cluster_(cluster) {}

int WarmStandbyPool::TargetSize(int serving_machines) const {
  const int p99 =
      BinomialQuantile(serving_machines, config_.daily_machine_failure_prob, config_.quantile);
  return std::max(p99, 1);
}

void WarmStandbyPool::Replenish(int target) {
  int have = ready_count() + provisioning_;
  if (have >= target) {
    return;
  }
  std::vector<MachineId> idle = cluster_->IdleMachines();
  std::size_t next_idle = 0;
  while (have < target) {
    MachineId id;
    if (next_idle < idle.size()) {
      id = idle[next_idle++];
    } else {
      id = cluster_->AddMachine();  // request a fresh machine from the platform
    }
    ProvisionOne(id);
    ++have;
  }
}

void WarmStandbyPool::ProvisionOne(MachineId id) {
  cluster_->machine(id).set_state(MachineState::kStandbyInit);
  ++provisioning_;
  NotifyChanged();
  sim_->Schedule(config_.provision_time, [this, id] {
    --provisioning_;
    Machine& m = cluster_->machine(id);
    // The machine may have been blacklisted while provisioning.
    if (cluster_->IsBlacklisted(id)) {
      NotifyChanged();
      return;
    }
    m.ResetHealth();
    m.set_state(MachineState::kStandbySleep);
    ready_.push_back(id);
    NotifyChanged();
    BR_LOG_DEBUG("standby", "machine %d entered the warm pool (ready=%d)", id, ready_count());
  });
}

std::vector<MachineId> WarmStandbyPool::Claim(int count) {
  std::vector<MachineId> out;
  while (count-- > 0 && !ready_.empty()) {
    out.push_back(ready_.front());
    ready_.pop_front();
  }
  if (!out.empty()) {
    NotifyChanged();
  }
  return out;
}

}  // namespace byterobust

#include "src/recovery/was_model.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/rng.h"

namespace byterobust {

namespace {

// Binomial pmf via the same recurrence BinomialQuantile uses.
std::vector<double> BinomialPmf(int n, double p, int up_to) {
  std::vector<double> pmf(static_cast<std::size_t>(up_to) + 1);
  double v = std::pow(1.0 - p, n);
  pmf[0] = v;
  for (int k = 0; k < up_to; ++k) {
    v *= static_cast<double>(n - k) / static_cast<double>(k + 1) * (p / (1.0 - p));
    pmf[static_cast<std::size_t>(k) + 1] = v;
  }
  return pmf;
}

}  // namespace

WasEstimate EstimateWas(int num_machines, const RestartCostModel& model,
                        const StandbyConfig& standby, int catastrophic_machines,
                        double catastrophic_weight) {
  const double p = standby.daily_machine_failure_prob;
  WasEstimate est;
  est.p99_evictions = std::max(1, BinomialQuantile(num_machines, p, standby.quantile));
  const int n_p99 = est.p99_evictions;

  // Weights for k = 1..N evictions, conditioned on at least one failure,
  // scaled to 1 - catastrophic_weight; the catastrophic case (all machines
  // behind one switch evicted) takes the rest.
  const std::vector<double> pmf = BinomialPmf(num_machines, p, n_p99);
  double mass = 0.0;
  for (int k = 1; k <= n_p99; ++k) {
    mass += pmf[static_cast<std::size_t>(k)];
  }
  for (int k = 1; k <= n_p99; ++k) {
    const double w = (1.0 - catastrophic_weight) * pmf[static_cast<std::size_t>(k)] / mass;
    est.requeue_s += w * ToSeconds(model.RequeueTime(num_machines));
    est.reschedule_s += w * ToSeconds(model.RescheduleTime(num_machines, k));
    est.oracle_s += w * ToSeconds(model.StandbyWakeTime(k));
    // k <= N evictions: warm standbys cover everything.
    est.byterobust_s += w * ToSeconds(model.StandbyWakeTime(k));
  }
  est.requeue_s += catastrophic_weight * ToSeconds(model.RequeueTime(num_machines));
  est.reschedule_s +=
      catastrophic_weight * ToSeconds(model.RescheduleTime(num_machines, catastrophic_machines));
  est.oracle_s += catastrophic_weight * ToSeconds(model.StandbyWakeTime(catastrophic_machines));
  // ByteRobust reschedules only the shortfall beyond the standby pool; when
  // the pool covers even the catastrophic eviction, standby wake suffices.
  const int shortfall = catastrophic_machines - n_p99;
  est.byterobust_s +=
      catastrophic_weight *
      ToSeconds(shortfall > 0 ? model.RescheduleTime(num_machines, shortfall)
                              : model.StandbyWakeTime(catastrophic_machines));
  return est;
}

}  // namespace byterobust

// Warm-standby machine pool (paper Sec. 6.2).
//
// The pool is sized at the P99 quantile of the Binomial(z, p_daily) model of
// simultaneous machine failures, pre-validates machines with self-checks, and
// parks them in low-power sleep behind a code barrier. Evictions claim ready
// standbys (seconds); the pool replenishes asynchronously.

#ifndef SRC_RECOVERY_WARM_STANDBY_H_
#define SRC_RECOVERY_WARM_STANDBY_H_

#include <deque>
#include <functional>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/sim_time.h"
#include "src/sim/simulator.h"

namespace byterobust {

struct StandbyConfig {
  // Estimated daily failure probability of an individual machine, from
  // historical data (Sec. 6.2). 0.0012/day reproduces Table 5's #P99 column
  // exactly: 2, 2, 3 and 4 backup machines at 128/256/512/1024 hosts.
  double daily_machine_failure_prob = 0.0012;
  double quantile = 0.99;

  // Pod-environment initialization: machine self-checks, image installation,
  // library downloads — paid off the critical path.
  SimDuration provision_time = Minutes(20);
};

// Abstract spare-machine supplier consumed by the RobustController. The
// classic single-job system plugs in a WarmStandbyPool; fleet mode plugs in a
// per-job client of the shared SpareArbiter (src/fleet/spare_arbiter.h), so
// the controller's eviction path is oblivious to whether spares are exclusive
// or contended across jobs.
class SparePool {
 public:
  virtual ~SparePool() = default;

  // Standby count the pool should hold for a job of `serving_machines`
  // machines (fleet implementations may ignore the argument and size on the
  // fleet-wide footprint).
  virtual int TargetSize(int serving_machines) const = 0;

  // Brings the pool toward `target` by provisioning idle machines.
  virtual void Replenish(int target) = 0;

  // Claims up to `count` ready standbys (removed from the pool and returned
  // in claim order). Fewer may be returned if the pool is short.
  virtual std::vector<MachineId> Claim(int count) = 0;
};

class WarmStandbyPool : public SparePool {
 public:
  WarmStandbyPool(const StandbyConfig& config, Simulator* sim, Cluster* cluster);

  // P99 standby count for a job of `serving_machines` machines. Matches the
  // paper's Table 5 column "#P99" shape (2-4 machines for 128-1024 hosts at
  // 16 GPUs each).
  int TargetSize(int serving_machines) const override;

  // Brings the pool toward `target` by provisioning idle machines (or newly
  // added ones). Provisioning completes after config.provision_time.
  void Replenish(int target) override;

  // Claims up to `count` ready standbys (removed from the pool and returned
  // in claim order). Fewer may be returned if the pool is short.
  std::vector<MachineId> Claim(int count) override;

  int ready_count() const { return static_cast<int>(ready_.size()); }
  int provisioning_count() const { return provisioning_; }

  // Invoked after every ready/provisioning count change (provision start,
  // completion, claim). The fleet arbiter uses it to record its occupancy
  // timeline; unset by default, so the single-job path is untouched.
  void SetChangeListener(std::function<void()> listener) { listener_ = std::move(listener); }

  const StandbyConfig& config() const { return config_; }

 private:
  void ProvisionOne(MachineId id);
  void NotifyChanged() {
    if (listener_) {
      listener_();
    }
  }

  StandbyConfig config_;
  Simulator* sim_;
  Cluster* cluster_;
  std::deque<MachineId> ready_;
  int provisioning_ = 0;
  std::function<void()> listener_;
};

}  // namespace byterobust

#endif  // SRC_RECOVERY_WARM_STANDBY_H_

// MiniGPT verification suite (paper Sec. 9): deterministic workloads for
// intra-machine SDC validation.
//
// Each machine initializes a reference model with predefined weights, runs
// one training step on fixed input, and the outputs are compared bit-wise
// across machines (Sec. 4.3). Here the "model" is a small integer transformer
// block stack evaluated in exact 64-bit arithmetic, so a healthy machine's
// output is bit-identical to the golden value by construction; an SDC GPU
// flips a bit in an intermediate accumulator with some probability per run
// (SDC is stochastic and input-sensitive).

#ifndef SRC_DIAGNOSER_MINIGPT_H_
#define SRC_DIAGNOSER_MINIGPT_H_

#include <cstdint>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/rng.h"

namespace byterobust {

struct MiniGptConfig {
  int layers = 4;
  int dim = 16;               // state-vector width
  std::uint64_t weight_seed = 0xB17E5EEDULL;
  // Probability that an SDC GPU corrupts this run's computation (the paper's
  // bit-wise test is not a perfect detector: faults are input-sensitive).
  double sdc_manifest_prob = 0.9;
};

class MiniGptVerifier {
 public:
  explicit MiniGptVerifier(const MiniGptConfig& config = {});

  // The golden (reference) output, computed once on healthy arithmetic.
  const std::vector<std::uint64_t>& GoldenOutput() const { return golden_; }

  // Simulates executing the deterministic step on `machine`. Healthy
  // machines reproduce the golden output exactly; machines with an SDC GPU
  // corrupt an intermediate value with sdc_manifest_prob.
  std::vector<std::uint64_t> RunOnMachine(const Machine& machine, Rng* rng) const;

  // Runs the suite on every serving machine and returns those whose output
  // mismatches the golden value bit-wise.
  std::vector<MachineId> FindMismatchedMachines(const Cluster& cluster, Rng* rng) const;

  const MiniGptConfig& config() const { return config_; }

 private:
  // Exact integer forward pass; `corrupt_at` >= 0 flips one bit of that
  // intermediate accumulator index (-1 = healthy run).
  std::vector<std::uint64_t> Evaluate(std::int64_t corrupt_at, int corrupt_bit) const;

  MiniGptConfig config_;
  std::vector<std::uint64_t> weights_;  // layers * dim * dim
  std::vector<std::uint64_t> input_;    // dim
  std::vector<std::uint64_t> golden_;
};

}  // namespace byterobust

#endif  // SRC_DIAGNOSER_MINIGPT_H_

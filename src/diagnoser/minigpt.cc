#include "src/diagnoser/minigpt.h"

namespace byterobust {

namespace {

// SplitMix64 for deterministic weight/input generation.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// Cheap odd-constant "nonlinearity": keeps the computation exact while mixing
// bits the way an activation would mix magnitudes.
std::uint64_t Activate(std::uint64_t x) { return (x ^ (x >> 17)) * 0x9E6D62D06F6A9A9ULL; }

}  // namespace

MiniGptVerifier::MiniGptVerifier(const MiniGptConfig& config) : config_(config) {
  const std::size_t dim = static_cast<std::size_t>(config_.dim);
  weights_.resize(static_cast<std::size_t>(config_.layers) * dim * dim);
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    weights_[i] = Mix(config_.weight_seed + i);
  }
  input_.resize(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    input_[i] = Mix(config_.weight_seed ^ (0xABCD0000ULL + i));
  }
  golden_ = Evaluate(/*corrupt_at=*/-1, /*corrupt_bit=*/0);
}

std::vector<std::uint64_t> MiniGptVerifier::Evaluate(std::int64_t corrupt_at,
                                                     int corrupt_bit) const {
  const std::size_t dim = static_cast<std::size_t>(config_.dim);
  std::vector<std::uint64_t> state = input_;
  std::vector<std::uint64_t> next(dim);
  std::int64_t acc_index = 0;
  for (int layer = 0; layer < config_.layers; ++layer) {
    const std::size_t base = static_cast<std::size_t>(layer) * dim * dim;
    for (std::size_t row = 0; row < dim; ++row) {
      std::uint64_t acc = 0;
      for (std::size_t col = 0; col < dim; ++col) {
        acc += weights_[base + row * dim + col] * state[col];  // exact mod 2^64
      }
      if (acc_index == corrupt_at) {
        acc ^= 1ULL << (corrupt_bit & 63);  // the silent bit flip
      }
      ++acc_index;
      next[row] = Activate(acc);
    }
    state.swap(next);
  }
  // Residual connection with the input keeps every lane live.
  for (std::size_t i = 0; i < dim; ++i) {
    state[i] += input_[i];
  }
  return state;
}

std::vector<std::uint64_t> MiniGptVerifier::RunOnMachine(const Machine& machine,
                                                         Rng* rng) const {
  if (machine.HasSdc() && rng->Bernoulli(config_.sdc_manifest_prob)) {
    const std::int64_t total_accs =
        static_cast<std::int64_t>(config_.layers) * config_.dim;
    const std::int64_t at = rng->UniformInt(0, total_accs - 1);
    const int bit = static_cast<int>(rng->UniformInt(0, 63));
    return Evaluate(at, bit);
  }
  return golden_;
}

std::vector<MachineId> MiniGptVerifier::FindMismatchedMachines(const Cluster& cluster,
                                                               Rng* rng) const {
  std::vector<MachineId> mismatched;
  // Only suspect (health-dirty) machines can carry SDC; a nominal machine
  // returns the golden output and draws nothing from the RNG (the Bernoulli
  // in RunOnMachine sits behind HasSdc()), so iterating the slot-ordered
  // suspect index is exactly equivalent to a full serving scan.
  for (MachineId id : cluster.SuspectServingMachines()) {
    if (RunOnMachine(cluster.machine(id), rng) != golden_) {
      mismatched.push_back(id);
    }
  }
  return mismatched;
}

}  // namespace byterobust

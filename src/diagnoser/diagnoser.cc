#include "src/diagnoser/diagnoser.h"

namespace byterobust {

namespace {
MiniGptConfig MakeMiniGptConfig(const DiagnoserConfig& config) {
  MiniGptConfig cfg;
  cfg.sdc_manifest_prob = config.bitwise_recall_sdc;
  return cfg;
}
}  // namespace

Diagnoser::Diagnoser(const DiagnoserConfig& config, Rng rng)
    : config_(config), rng_(rng), minigpt_(MakeMiniGptConfig(config)) {}

// The three scan loops below iterate the cluster's slot-ordered suspect index
// instead of all serving machines: a machine absent from it is provably
// nominal, so it could neither become a suspect nor draw from the RNG (every
// Bernoulli below is short-circuited behind a deviation check), keeping both
// the result set and the RNG stream identical to a full scan.

std::vector<MachineId> Diagnoser::RunEud(const Cluster& cluster) {
  std::vector<MachineId> suspects;
  for (MachineId id : cluster.SuspectServingMachines()) {
    const Machine& m = cluster.machine(id);
    for (int g = 0; g < m.num_gpus(); ++g) {
      const GpuHealth& gpu = m.gpu(g);
      const bool explicit_fault = !gpu.dcgm_responsive || !gpu.available || !gpu.hbm_ok;
      if (explicit_fault && rng_.Bernoulli(config_.eud_recall_explicit)) {
        suspects.push_back(id);
        break;
      }
      if (gpu.sdc && rng_.Bernoulli(config_.eud_recall_sdc)) {
        suspects.push_back(id);
        break;
      }
    }
  }
  return suspects;
}

std::vector<MachineId> Diagnoser::RunIntraMachineAllToAll(const Cluster& cluster) {
  std::vector<MachineId> suspects;
  for (MachineId id : cluster.SuspectServingMachines()) {
    const Machine& m = cluster.machine(id);
    for (int g = 0; g < m.num_gpus(); ++g) {
      // Inter-GPU bandwidth below expectation: broken HBM shows up here too,
      // and a defective-CUDA-core machine occasionally trips the test.
      const GpuHealth& gpu = m.gpu(g);
      if ((!gpu.hbm_ok && rng_.Bernoulli(config_.intra_recall)) ||
          (gpu.comm_defect && rng_.Bernoulli(config_.intra_recall_comm_defect))) {
        suspects.push_back(id);
        break;
      }
    }
  }
  return suspects;
}

std::vector<MachineId> Diagnoser::RunInterMachineAllGather(const Cluster& cluster) {
  std::vector<MachineId> suspects;
  for (MachineId id : cluster.SuspectServingMachines()) {
    const Machine& m = cluster.machine(id);
    const bool net_fault = !m.host().nic_up ||
                           m.host().packet_loss_rate > config_.inter_packet_loss_threshold ||
                           !m.host().switch_reachable;
    if (net_fault && rng_.Bernoulli(config_.inter_recall)) {
      suspects.push_back(id);
    }
  }
  return suspects;
}

std::vector<MachineId> Diagnoser::RunBitwiseAlignment(const Cluster& cluster) {
  // Every machine executes the deterministic MiniGPT step; outputs are
  // compared bit-wise against the golden value (Secs. 4.3 and 9).
  return minigpt_.FindMismatchedMachines(cluster, &rng_);
}

DiagnosisResult Diagnoser::RunNcclSuite(const Cluster& cluster) {
  DiagnosisResult result;

  result.tests_run.push_back("EUD");
  result.elapsed += config_.eud_duration;
  result.suspects = RunEud(cluster);
  if (result.HasSuspects()) {
    return result;
  }

  result.tests_run.push_back("intra-machine all-to-all");
  result.elapsed += config_.intra_machine_duration;
  result.suspects = RunIntraMachineAllToAll(cluster);
  if (result.HasSuspects()) {
    return result;
  }

  result.tests_run.push_back("inter-machine all-gather");
  result.elapsed += config_.inter_machine_duration;
  result.suspects = RunInterMachineAllGather(cluster);
  return result;
}

DiagnosisResult Diagnoser::RunNanSuite(const Cluster& cluster) {
  DiagnosisResult result = RunNcclSuite(cluster);
  if (result.HasSuspects()) {
    return result;
  }
  result.tests_run.push_back("bit-wise alignment (MiniGPT)");
  result.elapsed += config_.bitwise_alignment_duration;
  result.suspects = RunBitwiseAlignment(cluster);
  return result;
}

}  // namespace byterobust

#include "src/diagnoser/stress_baseline.h"

namespace byterobust {

std::optional<SimDuration> SelectiveStressResolutionTime(IncidentSymptom symptom,
                                                         RootCause root_cause) {
  // Human mistakes defeat hardware stress testing regardless of symptom: the
  // tests pass and the investigation stalls (Table 6 footnotes "(INF)").
  const bool human_mistake = root_cause == RootCause::kUserCode;
  switch (symptom) {
    case IncidentSymptom::kCudaError:
      if (human_mistake) {
        return std::nullopt;
      }
      return Seconds(518);  // GPU-targeted stress pass
    case IncidentSymptom::kInfinibandError:
      return Seconds(288);  // network loopback + pairwise bandwidth tests
    case IncidentSymptom::kHdfsError:
      return std::nullopt;  // remote-storage outage: nothing local to stress
    case IncidentSymptom::kOsKernelPanic:
      return Seconds(168);  // host burn-in quickly re-trips the panic
    case IncidentSymptom::kGpuMemoryError:
      return Seconds(600);  // full HBM pattern sweep
    case IncidentSymptom::kNanValue:
      if (human_mistake) {
        return std::nullopt;
      }
      return Seconds(7200);  // SDC needs hours-long offline stress (Sec. 2.2)
    case IncidentSymptom::kGpuUnavailable:
      return Seconds(120);  // immediate: device enumeration fails
    case IncidentSymptom::kCodeDataAdjustment:
      return std::nullopt;  // not a fault; stress testing is useless
    default:
      // Other symptoms get a generic machine-level stress pass.
      return Seconds(400);
  }
}

}  // namespace byterobust

// Stop-time diagnostics (paper Sec. 4.2 "Diagnose" and the Sec. 4.3 NaN case
// study): NVIDIA EUD, intra-machine all-to-all, inter-machine all-gather, and
// the MiniGPT bit-wise alignment suite. Tests consume simulated time and have
// imperfect recall (Sec. 9 reports EUD at 70% recall in production).

#ifndef SRC_DIAGNOSER_DIAGNOSER_H_
#define SRC_DIAGNOSER_DIAGNOSER_H_

#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/diagnoser/minigpt.h"
#include "src/faults/incident.h"

namespace byterobust {

struct DiagnoserConfig {
  // Test durations (whole-fleet pass; tests run in parallel across machines).
  SimDuration eud_duration = Minutes(4);
  SimDuration intra_machine_duration = Minutes(2);
  SimDuration inter_machine_duration = Minutes(4);
  SimDuration bitwise_alignment_duration = Minutes(8);

  // Recall of each test against the fault classes it targets.
  double eud_recall_explicit = 0.95;  // visible GPU faults (DCGM, HBM, lost)
  double eud_recall_sdc = 0.20;       // SDC rarely reproduces under EUD
  double intra_recall = 0.90;         // intra-machine interconnect faults
  double intra_recall_comm_defect = 0.10;  // defective CUDA cores seldom trip it
  double inter_recall = 0.92;         // NIC / switch / link faults
  double bitwise_recall_sdc = 0.90;   // deterministic workload vs golden output

  // Packet-loss rate above which the inter-machine all-gather flags a host.
  // Tighter than the monitor's alert threshold (kNetworkPacketLossAlert):
  // the dedicated stop-time collective notices degradation the lightweight
  // inspection tolerates. Domain-degradation tests tune this.
  double inter_packet_loss_threshold = 0.05;
};

// Outcome of one stop-time diagnostic session.
struct DiagnosisResult {
  std::vector<MachineId> suspects;
  SimDuration elapsed = 0;
  std::vector<std::string> tests_run;

  bool HasSuspects() const { return !suspects.empty(); }
};

class Diagnoser {
 public:
  Diagnoser(const DiagnoserConfig& config, Rng rng);

  // NCCL-error path: EUD first; if clean, intra-machine all-to-all; if clean,
  // inter-machine all-gather with neighbors. Stops at the first test that
  // yields suspects.
  DiagnosisResult RunNcclSuite(const Cluster& cluster);

  // NaN path: EUD + NCCL tests, then the bit-wise alignment test, which loads
  // predefined weights, runs one deterministic step and compares outputs.
  DiagnosisResult RunNanSuite(const Cluster& cluster);

  // Individual tests, exposed for unit testing and for the baseline harness.
  std::vector<MachineId> RunEud(const Cluster& cluster);
  std::vector<MachineId> RunIntraMachineAllToAll(const Cluster& cluster);
  std::vector<MachineId> RunInterMachineAllGather(const Cluster& cluster);
  std::vector<MachineId> RunBitwiseAlignment(const Cluster& cluster);

  const DiagnoserConfig& config() const { return config_; }
  const MiniGptVerifier& minigpt() const { return minigpt_; }

 private:
  DiagnoserConfig config_;
  Rng rng_;
  MiniGptVerifier minigpt_;
};

}  // namespace byterobust

#endif  // SRC_DIAGNOSER_DIAGNOSER_H_

// Baseline troubleshooting practice: selective stress testing guided by log /
// exit-code indicators (paper Sec. 8.1.4, Table 6). Used only for comparison
// benches — ByteRobust itself never monopolizes machines for stress tests.

#ifndef SRC_DIAGNOSER_STRESS_BASELINE_H_
#define SRC_DIAGNOSER_STRESS_BASELINE_H_

#include <optional>

#include "src/common/sim_time.h"
#include "src/faults/incident.h"

namespace byterobust {

// Resolution time of the selective-stress-testing baseline for one incident.
// Returns nullopt when the baseline cannot localize the fault at all (INF in
// Table 6): stress tests cannot reproduce human mistakes, storage-service
// outages, or proactive code/data adjustments.
std::optional<SimDuration> SelectiveStressResolutionTime(IncidentSymptom symptom,
                                                         RootCause root_cause);

}  // namespace byterobust

#endif  // SRC_DIAGNOSER_STRESS_BASELINE_H_

// Wire protocol for the `byterobust serve` campaign service: newline-
// delimited JSON over a local socket. One request line in, one response line
// out; the campaign document itself travels as an escaped string in the
// response's "body" field and is byte-identical to what the CLI's
// `campaign --stream` / `fleet --stream` would print for the same
// parameters — that equivalence is pinned by ctest cli_serve_determinism.
//
// Requests are flat JSON objects (string / number / bool / null values
// only); unknown fields and nested values are rejected so a typo'd request
// fails loudly instead of silently running defaults. Ops:
//
//   {"op":"campaign","scenario":"quickstart","seeds":4,"base_seed":42}
//   {"op":"fleet","scenario":"fleet-mixed","seeds":2,"deadline_s":5.5}
//   {"op":"status"}
//   {"op":"shutdown"}
//
// Responses carry "status" ("ok" | "quarantined" | "interrupted" |
// "rejected" | "shed" | "error") and the matching CLI "exit_code"
// (src/harness/exit_codes.h), so a response maps 1:1 onto what the
// equivalent CLI invocation would have exited with.

#ifndef SRC_SERVE_PROTOCOL_H_
#define SRC_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>

namespace byterobust {

// One parsed request line. Defaults mirror the CLI flag defaults so a
// request body is exactly as sparse as the equivalent command line.
struct ServeRequest {
  std::string op;        // "campaign" | "fleet" | "status" | "shutdown"
  std::string scenario;
  int seeds = 4;
  std::uint64_t base_seed = 42;
  double days = -1.0;        // < 0: scenario default
  int jobs = 1;              // capped by the daemon's --jobs
  double deadline_s = 0.0;   // > 0: cancel (drain) the request after this long
  std::string journal;       // server-side path, like --journal
  std::string resume;        // server-side path, like --resume
  int retries = -1;
  bool journal_sync = false;
};

// Strict parse of one request line. On failure fills *error (no "error: "
// prefix) and returns false; *request may be partially filled.
bool ParseServeRequest(const std::string& line, ServeRequest* request, std::string* error);

// JSON string escaping that round-trips arbitrary bytes (the campaign
// document embeds newlines): quotes, backslashes, and every control
// character (\n \t \r \b \f, \u00XX otherwise).
std::string JsonEscapeFull(const std::string& s);

// "ok" | "quarantined" | "interrupted" | "rejected" | "shed" | "error" for
// the given exit code.
const char* ServeStatusLabel(int exit_code);

// Completed campaign/fleet request (possibly partial: deadline or drain).
// `body` is the raw campaign document; `seeds_done` counts seeds processed
// (committed, resumed or quarantined) before the response was cut.
std::string RenderResultResponse(const std::string& op, const std::string& scenario,
                                 int exit_code, int seeds_requested, int seeds_done,
                                 const std::string& body);

// Request that never ran: parse/validation failure (kExitUsage -> "rejected")
// or an internal error (kExitIoError -> "error").
std::string RenderErrorResponse(const std::string& op, const std::string& message,
                                int exit_code);

// Structured load-shed: admission control refused the request (queue full,
// seed cap, or daemon draining). Nothing ran; clients may retry later.
std::string RenderShedResponse(const std::string& op, const std::string& reason,
                               int queue_depth, int max_queue);

// /healthz-style snapshot for {"op":"status"} responses. Per-state request
// accounting: queue_depth (admitted, waiting) + active_requests (executing)
// are the live states; admitted/completed/shed/cancelled are the lifetime
// counters the soak script asserts on. The latency fields summarize the
// daemon's request-latency histogram (src/obs/metrics.h): admission to
// completion, in milliseconds.
struct ServeStatus {
  bool draining = false;
  std::uint64_t uptime_ticks = 0;  // 200ms supervision ticks since Start()
  int queue_depth = 0;             // admitted, not yet executing
  int max_queue = 0;
  int active_requests = 0;         // executing right now
  int inflight_seeds = 0;          // seeds still owed by active requests
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  // Completed requests whose stop flag had flipped first (deadline, client
  // disconnect, or daemon drain) — they still returned a valid partial body.
  std::uint64_t cancelled = 0;
  int workers = 0;
  int max_seeds = 0;
  std::uint64_t latency_count = 0;  // completed requests measured
  double latency_p50_ms = 0.0;
  double latency_p90_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;
};

std::string RenderStatusResponse(const ServeStatus& status);

// Response-side field extraction for clients (the `request` subcommand,
// tests, the roundtrip bench): minimal, keyed lookups over one response
// line. Return false when the key is absent or not of the asked-for type.
bool ExtractJsonStringField(const std::string& line, const std::string& key,
                            std::string* out);
bool ExtractJsonIntField(const std::string& line, const std::string& key, long* out);

}  // namespace byterobust

#endif  // SRC_SERVE_PROTOCOL_H_

// The `byterobust serve` daemon: campaigns as a service on a local (unix
// domain) socket, layered on the same fault-bounded campaign engine the CLI
// uses. Robustness layers:
//
//  - every request runs as a supervised campaign (src/harness supervisor:
//    watchdog, deterministic retry/backoff, quarantine into "failed_runs"),
//    so a crashing or hanging seed stays contained inside its request;
//  - admission control: a bounded request queue and a per-request seed cap,
//    with structured load-shed responses when either is exceeded — an
//    overloaded daemon degrades by rejecting crisply, never by dying;
//  - per-request deadlines and cooperative cancel: a request's `deadline_s`
//    or its client hanging up flips that request's stop flag, in-flight
//    seeds drain, and the client gets a valid partial document;
//  - graceful whole-daemon drain (SIGTERM/SIGINT or {"op":"shutdown"}):
//    stop admitting, cancel-and-finish in-flight requests (journaled
//    requests stay resumable), exit kExitInterrupted.
//
// Determinism: a response body is a pure function of the request parameters
// — byte-identical across the daemon's --jobs, concurrent client count,
// injected harness faults, and a drain + restart + resume cycle.

#ifndef SRC_SERVE_SERVER_H_
#define SRC_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <list>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/common/sync.h"
#include "src/common/thread_annotations.h"
#include "src/obs/metrics.h"
#include "src/serve/protocol.h"

namespace byterobust {

struct ServeOptions {
  std::string socket_path;
  int workers = 2;          // concurrent requests executing
  int jobs = 8;             // per-request seed-worker cap (request jobs is clamped)
  int max_queue = 16;       // waiting slots beyond the workers' before shedding
  int max_seeds = 4096;     // per-request seed cap
  int max_connections = 64; // concurrent client connections before shedding
};

class ServeDaemon {
 public:
  explicit ServeDaemon(const ServeOptions& opts) : opts_(opts) {}
  ~ServeDaemon();
  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  // Binds the socket and spawns the accept + executor threads. False +
  // *error if the socket cannot be bound.
  bool Start(std::string* error);

  // Flips draining: admission stops (new campaign requests get a draining
  // shed response) and every queued or executing request's stop flag is set,
  // so in-flight seeds drain and clients get valid partial responses.
  // Idempotent, safe from any thread (including a signal-watching loop).
  void RequestDrain();

  // RequestDrain + join everything + close the socket. Returns
  // kExitInterrupted (the daemon only exits by being asked to stop).
  int Drain();

  // CLI driver: 200ms supervision loop until *signal_stop flips (SIGTERM /
  // SIGINT handler) or a shutdown request arrives, then Drain().
  int RunUntilStopped(const std::atomic<bool>* signal_stop);

  // /healthz snapshot (also served to {"op":"status"} requests).
  ServeStatus Snapshot() const;

 private:
  // One admitted campaign/fleet request, owned by its connection thread's
  // stack; the queue and executors only borrow the pointer, and the
  // connection thread cannot return before `done` flips.
  struct PendingRequest {
    explicit PendingRequest(const ServeRequest& r) : request(r) {}
    const ServeRequest request;
    std::atomic<bool> stop{false};     // engine external_stop for this request
    std::atomic<int> seeds_done{0};
    // Observability only (never in the response): admission wall time feeds
    // the queue_wait trace span and the request-latency histogram, and the
    // admission ordinal labels this request's trace events.
    double admitted_wall_s = 0.0;
    std::uint64_t admit_ordinal = 0;
    Mutex mu;
    CondVar cv;
    bool done BR_GUARDED_BY(mu) = false;
    std::string response BR_GUARDED_BY(mu);
  };

  void AcceptLoop();
  void ExecutorLoop();
  void HandleConnection(int fd);
  // Runs one admitted request on this executor thread and returns its
  // response line (result, partial result, or error envelope).
  std::string Execute(PendingRequest* request);
  // Admission decision + enqueue; returns the response to send immediately
  // (shed/draining), or empty when admitted (caller then waits on *request).
  std::string Admit(PendingRequest* request);
  void CompleteRequest(PendingRequest* request, std::string response);
  void ReapConnections(bool join_all);
  // Journal/resume path reservation: two in-flight requests writing (or one
  // writing while another resumes) the same server-side file would truncate
  // and interleave each other's records, silently corrupting the crash-safe
  // journal. Admission reserves a request's paths; completion releases them.
  // Returns the first already-reserved path, or empty when all are free.
  std::string FindBusyRequestPathLocked(const ServeRequest& req) const
      BR_REQUIRES(mu_);
  void ReserveRequestPathsLocked(const ServeRequest& req) BR_REQUIRES(mu_);
  void ReleaseRequestPathsLocked(const ServeRequest& req) BR_REQUIRES(mu_);

  const ServeOptions opts_;
  int listen_fd_ = -1;
  std::atomic<bool> running_flag_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> shutdown_requested_{false};  // {"op":"shutdown"} arrived
  std::atomic<std::uint64_t> uptime_ticks_{0};

  mutable Mutex mu_;
  CondVar work_cv_;   // executors: queue non-empty or closed
  CondVar idle_cv_;   // drain: queue and running both empty
  std::deque<PendingRequest*> queue_ BR_GUARDED_BY(mu_);
  std::vector<PendingRequest*> running_ BR_GUARDED_BY(mu_);
  bool closed_ BR_GUARDED_BY(mu_) = false;  // executors may exit
  std::uint64_t admitted_ BR_GUARDED_BY(mu_) = 0;
  std::uint64_t completed_ BR_GUARDED_BY(mu_) = 0;
  std::uint64_t shed_ BR_GUARDED_BY(mu_) = 0;
  // Completed with the stop flag already set (deadline/disconnect/drain).
  std::uint64_t cancelled_ BR_GUARDED_BY(mu_) = 0;
  // Admission-to-completion latency. Internally sharded atomics (its own
  // concurrency story, src/obs/metrics.h), so no BR_GUARDED_BY needed.
  obs::LatencyHistogram request_latency_;
  // Journal/resume paths of queued + running requests (see Find/Reserve/
  // ReleaseRequestPathsLocked above).
  std::set<std::string> busy_paths_ BR_GUARDED_BY(mu_);

  // Connection threads: reaped opportunistically on accept, joined on Drain.
  struct ConnSlot {
    std::thread thread;
    std::atomic<bool> finished{false};
  };
  mutable Mutex conn_mu_;
  std::list<ConnSlot> conns_ BR_GUARDED_BY(conn_mu_);

  std::thread accept_thread_;
  std::vector<std::thread> executors_;
};

}  // namespace byterobust

#endif  // SRC_SERVE_SERVER_H_

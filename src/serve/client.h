// Minimal blocking client for the serve daemon: one request line in, one
// response line out, with a bounded connect-retry window so callers can
// point it at a daemon that is still starting up. Used by the `byterobust
// request` subcommand, the serve tests and the roundtrip benchmark.

#ifndef SRC_SERVE_CLIENT_H_
#define SRC_SERVE_CLIENT_H_

#include <string>

namespace byterobust {

// Sends `request_line` (a '\n' is appended if missing) to the daemon at
// `socket_path` and reads one '\n'-terminated response line into
// *response_line (terminator stripped). Retries the connect for up to
// `connect_wait_s` seconds (daemon still binding); `io_timeout_s` bounds the
// send and the response wait. False + *error on failure.
bool ServeRoundtrip(const std::string& socket_path, const std::string& request_line,
                    double connect_wait_s, double io_timeout_s,
                    std::string* response_line, std::string* error);

}  // namespace byterobust

#endif  // SRC_SERVE_CLIENT_H_

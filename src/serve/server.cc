#include "src/serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <exception>
#include <utility>

#include "src/campaign/engine.h"
#include "src/campaign/scenarios.h"
#include "src/harness/exit_codes.h"
#include "src/harness/wallclock.h"
#include "src/obs/trace.h"

namespace byterobust {
namespace {

// A request line bigger than this is a broken client, not a campaign.
constexpr std::size_t kMaxRequestBytes = 1 << 20;

// Supervision granularity: the accept loop, connection read loops and the
// CLI driver all poll at this period, so drains and deadlines are noticed
// within one tick.
constexpr int kTickMs = 200;

bool SendAll(int fd, const std::string& text) {
  std::size_t off = 0;
  while (off < text.size()) {
    // MSG_NOSIGNAL: a vanished client must surface as a send error here,
    // never as a SIGPIPE — the daemon also runs in-process under gtest,
    // where no signal disposition is installed for it.
    const ssize_t n = send(fd, text.data() + off, text.size() - off, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::string ShutdownAck() {
  return "{\"tool\":\"byterobust\",\"op\":\"shutdown\",\"status\":\"ok\",\"exit_code\":0}\n";
}

}  // namespace

ServeDaemon::~ServeDaemon() {
  if (running_flag_.load(std::memory_order_acquire)) {
    Drain();
  }
}

bool ServeDaemon::Start(std::string* error) {
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  if (opts_.socket_path.empty()) {
    *error = "serve requires a socket path";
    return false;
  }
  if (opts_.socket_path.size() >= sizeof(addr.sun_path)) {
    *error = "socket path " + opts_.socket_path + " is too long (max " +
             std::to_string(sizeof(addr.sun_path) - 1) + " bytes)";
    return false;
  }
  listen_fd_ = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    *error = std::string("could not create socket: ") + std::strerror(errno);
    return false;
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, opts_.socket_path.c_str(), opts_.socket_path.size());
  unlink(opts_.socket_path.c_str());  // a stale socket from a dead daemon
  if (bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(listen_fd_, 64) != 0) {
    *error = "could not bind " + opts_.socket_path + ": " + std::strerror(errno);
    close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  running_flag_.store(true, std::memory_order_release);
  // The daemon always measures itself ({"op":"status"} serves the latency
  // histogram); response bytes for campaign/fleet ops are unaffected.
  obs::SetMetricsEnabled(true);
  accept_thread_ = std::thread(&ServeDaemon::AcceptLoop, this);
  const int workers = std::max(1, opts_.workers);
  executors_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    executors_.emplace_back(&ServeDaemon::ExecutorLoop, this);
  }
  return true;
}

void ServeDaemon::RequestDrain() {
  draining_.store(true, std::memory_order_release);
  {
    const MutexLock lock(&mu_);
    // Queued and executing requests drain cooperatively: their engines stop
    // claiming seeds, finish in-flight ones, and emit valid partial
    // documents (journaled requests stay resumable after restart).
    for (PendingRequest* p : queue_) {
      p->stop.store(true, std::memory_order_release);
    }
    for (PendingRequest* p : running_) {
      p->stop.store(true, std::memory_order_release);
    }
  }
  work_cv_.NotifyAll();
  idle_cv_.NotifyAll();
}

int ServeDaemon::Drain() {
  if (!running_flag_.exchange(false, std::memory_order_acq_rel)) {
    return kExitInterrupted;  // never started, or already drained
  }
  RequestDrain();
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  {
    const MutexLock lock(&mu_);
    while (!queue_.empty() || !running_.empty()) {
      idle_cv_.Wait(&mu_);
    }
    closed_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : executors_) {
    t.join();
  }
  executors_.clear();
  ReapConnections(/*join_all=*/true);
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    unlink(opts_.socket_path.c_str());
  }
  return kExitInterrupted;
}

int ServeDaemon::RunUntilStopped(const std::atomic<bool>* signal_stop) {
  while (!shutdown_requested_.load(std::memory_order_acquire) &&
         !(signal_stop != nullptr && signal_stop->load(std::memory_order_acquire))) {
    SleepMs(kTickMs);
  }
  return Drain();
}

ServeStatus ServeDaemon::Snapshot() const {
  ServeStatus s;
  s.draining = draining_.load(std::memory_order_acquire);
  s.uptime_ticks = uptime_ticks_.load(std::memory_order_relaxed);
  s.max_queue = opts_.max_queue;
  s.workers = std::max(1, opts_.workers);
  s.max_seeds = opts_.max_seeds;
  const MutexLock lock(&mu_);
  s.queue_depth = static_cast<int>(queue_.size());
  s.active_requests = static_cast<int>(running_.size());
  for (const PendingRequest* p : running_) {
    s.inflight_seeds +=
        std::max(0, p->request.seeds - p->seeds_done.load(std::memory_order_relaxed));
  }
  s.admitted = admitted_;
  s.completed = completed_;
  s.shed = shed_;
  s.cancelled = cancelled_;
  const obs::LatencyHistogram::Snapshot latency = request_latency_.Snap();
  s.latency_count = latency.count;
  s.latency_p50_ms = latency.QuantileS(0.50) * 1e3;
  s.latency_p90_ms = latency.QuantileS(0.90) * 1e3;
  s.latency_p99_ms = latency.QuantileS(0.99) * 1e3;
  s.latency_max_ms = latency.max_s * 1e3;
  return s;
}

void ServeDaemon::AcceptLoop() {
  // Keep accepting while draining (clients get a crisp "daemon is draining"
  // shed instead of a hung connect); only the final Drain() stops the loop.
  while (running_flag_.load(std::memory_order_acquire)) {
    pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = poll(&pfd, 1, kTickMs);
    uptime_ticks_.fetch_add(1, std::memory_order_relaxed);
    if (ready <= 0) {
      // Tick (or EINTR): re-check draining, and reap finished connection
      // threads so an idle daemon doesn't hold exited threads until the next
      // accept.
      ReapConnections(/*join_all=*/false);
      continue;
    }
    const int fd = accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      continue;
    }
    ReapConnections(/*join_all=*/false);
    bool over_cap = false;
    {
      const MutexLock lock(&conn_mu_);
      over_cap = static_cast<int>(conns_.size()) >= opts_.max_connections;
    }
    if (over_cap) {
      {
        const MutexLock lock(&mu_);
        ++shed_;
      }
      SendAll(fd, RenderShedResponse("connect", "connection limit reached", 0,
                                     opts_.max_queue));
      close(fd);
      continue;
    }
    const MutexLock lock(&conn_mu_);
    conns_.emplace_back();
    ConnSlot& slot = conns_.back();  // list nodes are address-stable
    slot.thread = std::thread([this, fd, &slot] {
      HandleConnection(fd);
      slot.finished.store(true, std::memory_order_release);
    });
  }
}

void ServeDaemon::ReapConnections(bool join_all) {
  const MutexLock lock(&conn_mu_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    if (join_all || it->finished.load(std::memory_order_acquire)) {
      if (it->thread.joinable()) {
        it->thread.join();
      }
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

std::string ServeDaemon::FindBusyRequestPathLocked(const ServeRequest& req) const {
  if (!req.journal.empty() && busy_paths_.count(req.journal) > 0) {
    return req.journal;
  }
  if (!req.resume.empty() && busy_paths_.count(req.resume) > 0) {
    return req.resume;
  }
  return std::string();
}

void ServeDaemon::ReserveRequestPathsLocked(const ServeRequest& req) {
  if (!req.journal.empty()) {
    busy_paths_.insert(req.journal);
  }
  if (!req.resume.empty()) {
    busy_paths_.insert(req.resume);
  }
}

void ServeDaemon::ReleaseRequestPathsLocked(const ServeRequest& req) {
  if (!req.journal.empty()) {
    busy_paths_.erase(req.journal);
  }
  if (!req.resume.empty()) {
    busy_paths_.erase(req.resume);
  }
}

std::string ServeDaemon::Admit(PendingRequest* request) {
  const ServeRequest& req = request->request;
  if (req.seeds > opts_.max_seeds) {
    return RenderErrorResponse(req.op,
                               "seeds " + std::to_string(req.seeds) +
                                   " exceeds the server's per-request cap of " +
                                   std::to_string(opts_.max_seeds),
                               kExitUsage);
  }
  int depth = 0;
  const char* reason = nullptr;
  std::string busy_path;
  {
    const MutexLock lock(&mu_);
    depth = static_cast<int>(queue_.size());
    // Total-in-system admission: the executors provide `workers` slots and the
    // queue `max_queue` more, so an idle daemon always admits (even with
    // --max-queue 0) and in-flight requests are never affected by a shed.
    const int in_system = depth + static_cast<int>(running_.size());
    if (draining_.load(std::memory_order_acquire)) {
      reason = "daemon is draining";
    } else if (in_system >= opts_.max_queue + std::max(1, opts_.workers)) {
      reason = "request queue is full";
    } else {
      busy_path = FindBusyRequestPathLocked(req);
      if (busy_path.empty()) {
        ReserveRequestPathsLocked(req);
        request->admitted_wall_s = WallSeconds();
        request->admit_ordinal = admitted_;
        queue_.push_back(request);
        ++admitted_;
      }
    }
    if (reason != nullptr) {
      ++shed_;
    }
  }
  if (reason != nullptr) {
    obs::TraceInstant("request_shed", "serve");
    return RenderShedResponse(req.op, reason, depth, opts_.max_queue);
  }
  if (!busy_path.empty()) {
    // A client error, not load: concurrent writers would corrupt the journal.
    return RenderErrorResponse(
        req.op, "journal/resume path " + busy_path +
                    " is already in use by another in-flight request",
        kExitUsage);
  }
  obs::TraceInstantArg("request_admit", "serve",
                       static_cast<std::int64_t>(request->admit_ordinal));
  work_cv_.NotifyOne();
  return std::string();
}

std::string ServeDaemon::Execute(PendingRequest* request) {
  const ServeRequest& req = request->request;
  CampaignRequest creq;
  creq.command = req.op;
  creq.scenario = req.scenario;
  creq.seeds = req.seeds;
  creq.base_seed = req.base_seed;
  creq.days = req.days;
  creq.jobs = std::min(req.jobs, std::max(1, opts_.jobs));
  // Direct streaming always: a deadline / disconnect / drain mid-request
  // then still yields a valid partial document (closed runs array,
  // failed_runs, aggregates over committed seeds) — and --jobs or partiality
  // never change the bytes of what did commit.
  creq.stream = true;
  creq.journal_path = req.journal;
  creq.resume_path = req.resume;
  creq.retries = req.retries;
  creq.journal_sync = req.journal_sync;

  CampaignEngineSpec spec;
  std::string error;
  if (!BuildCampaignEngineSpec(creq, &spec, &error)) {
    return RenderErrorResponse(req.op, error, kExitUsage);
  }
  std::string body;
  spec.capture = &body;
  spec.external_stop = &request->stop;
  spec.seeds_done = &request->seeds_done;
  std::string setup_error;
  int code = kExitIoError;
  try {
    code = RunCampaignEngine(spec, &setup_error);
  } catch (const std::exception& e) {
    // A worker-pool failure (already wrapped with campaign/seed/worker
    // context) is this request's failure, not the daemon's.
    return RenderErrorResponse(req.op, e.what(), kExitIoError);
  }
  if (code == kExitUsage) {
    return RenderErrorResponse(
        req.op, setup_error.empty() ? "request setup failed" : setup_error, kExitUsage);
  }
  return RenderResultResponse(req.op, req.scenario, code, req.seeds,
                              request->seeds_done.load(std::memory_order_relaxed), body);
}

void ServeDaemon::CompleteRequest(PendingRequest* request, std::string response) {
  // Drop the request from the daemon's books before flipping `done`: the
  // moment the connection thread can observe done==true it may return and
  // destroy the stack-owned *request, so nothing — running_ bookkeeping,
  // Snapshot(), path release — may touch the pointer after that point.
  request_latency_.Observe(WallSeconds() - request->admitted_wall_s);
  {
    const MutexLock lock(&mu_);
    running_.erase(std::find(running_.begin(), running_.end(), request));
    ReleaseRequestPathsLocked(request->request);
    ++completed_;
    if (request->stop.load(std::memory_order_acquire)) {
      ++cancelled_;
    }
  }
  idle_cv_.NotifyAll();
  {
    const MutexLock lock(&request->mu);
    request->done = true;
    request->response = std::move(response);
    // Notify while still holding request->mu: the waiter cannot wake from
    // its timed wait, see done, and destroy the CondVar until this block
    // releases the mutex — notifying after unlock would race destruction.
    request->cv.NotifyAll();
  }
}

void ServeDaemon::ExecutorLoop() {
  while (true) {
    PendingRequest* request = nullptr;
    {
      const MutexLock lock(&mu_);
      while (queue_.empty() && !closed_) {
        work_cv_.Wait(&mu_);
      }
      if (queue_.empty()) {
        return;  // closed_ after the drain emptied the queue
      }
      request = queue_.front();
      queue_.pop_front();
      running_.push_back(request);
    }
    // Retroactive queue-wait span (admission to pickup), then the execute
    // span proper, both on this executor's trace track.
    if (obs::TraceEnabled()) {
      obs::TraceComplete("queue_wait", "serve", request->admitted_wall_s,
                         WallSeconds());
    }
    std::string response;
    {
      const obs::ScopedSpan execute_span(
          "execute", "serve",
          static_cast<std::int64_t>(request->admit_ordinal));
      response = Execute(request);
    }
    CompleteRequest(request, std::move(response));
  }
}

void ServeDaemon::HandleConnection(int fd) {
  std::string buffer;
  bool alive = true;
  while (alive) {
    const std::size_t nl = buffer.find('\n');
    if (nl == std::string::npos) {
      if (buffer.size() > kMaxRequestBytes) {
        SendAll(fd, RenderErrorResponse("", "request line exceeds 1 MiB", kExitUsage));
        break;
      }
      // While draining, still collect a request the client already sent (it
      // gets a structured "daemon is draining" shed, and one poll tick of
      // grace covers a connect-then-send race), but an idle tick ends the
      // connection so Drain() can join this thread.
      const bool draining = draining_.load(std::memory_order_acquire);
      pollfd pfd;
      pfd.fd = fd;
      pfd.events = POLLIN;
      pfd.revents = 0;
      const int ready = poll(&pfd, 1, kTickMs);
      if (ready < 0 && errno != EINTR) {
        break;
      }
      if (ready <= 0) {
        if (draining) {
          break;  // nothing pending: the connection ends with the daemon
        }
        continue;  // tick: re-check draining
      }
      char chunk[4096];
      const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        break;  // client hung up (or hard error) before completing a line
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    std::string line = buffer.substr(0, nl);
    buffer.erase(0, nl + 1);
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (line.empty()) {
      continue;
    }

    ServeRequest req;
    std::string error;
    if (!ParseServeRequest(line, &req, &error)) {
      alive = SendAll(fd, RenderErrorResponse(req.op, error, kExitUsage));
      continue;
    }
    if (req.op == "status") {
      alive = SendAll(fd, RenderStatusResponse(Snapshot()));
      continue;
    }
    if (req.op == "shutdown") {
      // Ack first: RequestDrain would otherwise race this connection's own
      // teardown against the send.
      alive = SendAll(fd, ShutdownAck());
      shutdown_requested_.store(true, std::memory_order_release);
      RequestDrain();
      continue;
    }

    PendingRequest pending(req);
    // Connection-side span: admission attempt through response send (sheds
    // close it immediately; admitted requests hold it across the wait).
    const obs::ScopedSpan request_span("request", "serve");
    const std::string immediate = Admit(&pending);
    if (!immediate.empty()) {
      alive = SendAll(fd, immediate);
      continue;
    }
    // Admitted: wait for completion, watching this request's deadline and
    // the client's liveness. The request cannot be abandoned — the queue and
    // executors hold a pointer onto this stack — so even after a cancel we
    // wait for the executor to hand back the (partial) response.
    const double deadline_wall =
        req.deadline_s > 0.0 ? WallSeconds() + req.deadline_s : 0.0;
    std::string response;
    {
      const MutexLock lock(&pending.mu);
      while (!pending.done) {
        pending.cv.WaitFor(&pending.mu, 0.1);
        if (pending.done) {
          break;
        }
        if (deadline_wall > 0.0 && WallSeconds() >= deadline_wall &&
            !pending.stop.load(std::memory_order_relaxed)) {
          pending.stop.store(true, std::memory_order_release);
          obs::TraceInstantArg(
              "request_cancel", "serve",
              static_cast<std::int64_t>(pending.admit_ordinal));
        }
        char probe;
        const ssize_t peeked = recv(fd, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
        if (peeked == 0 || (peeked < 0 && errno != EAGAIN &&
                            errno != EWOULDBLOCK && errno != EINTR)) {
          // Client disconnected — orderly (EOF) or abortive (ECONNRESET et
          // al.): cancel the request's remaining seeds; the journal (if any)
          // keeps what already committed.
          if (!pending.stop.load(std::memory_order_relaxed)) {
            obs::TraceInstantArg(
                "request_cancel", "serve",
                static_cast<std::int64_t>(pending.admit_ordinal));
          }
          pending.stop.store(true, std::memory_order_release);
        }
      }
      response = pending.response;
    }
    alive = SendAll(fd, response);
  }
  close(fd);
}

}  // namespace byterobust

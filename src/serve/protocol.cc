#include "src/serve/protocol.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/harness/exit_codes.h"

namespace byterobust {
namespace {

// ---------------------------------------------------------------------------
// Strict flat-JSON tokenizer: strings, numbers, true/false/null. Nested
// objects or arrays are rejected — a request is a flat bag of scalars, and
// anything else is a malformed request, not data to guess at.
// ---------------------------------------------------------------------------

void SkipWs(const std::string& s, std::size_t* pos) {
  while (*pos < s.size() && std::isspace(static_cast<unsigned char>(s[*pos])) != 0) {
    ++*pos;
  }
}

bool ParseJsonString(const std::string& s, std::size_t* pos, std::string* out,
                     std::string* error) {
  out->clear();
  if (*pos >= s.size() || s[*pos] != '"') {
    *error = "expected a string";
    return false;
  }
  ++*pos;
  while (*pos < s.size()) {
    const char c = s[(*pos)++];
    if (c == '"') {
      return true;
    }
    if (c != '\\') {
      out->push_back(c);
      continue;
    }
    if (*pos >= s.size()) {
      break;
    }
    const char esc = s[(*pos)++];
    switch (esc) {
      case '"': out->push_back('"'); break;
      case '\\': out->push_back('\\'); break;
      case '/': out->push_back('/'); break;
      case 'n': out->push_back('\n'); break;
      case 't': out->push_back('\t'); break;
      case 'r': out->push_back('\r'); break;
      case 'b': out->push_back('\b'); break;
      case 'f': out->push_back('\f'); break;
      case 'u': {
        if (*pos + 4 > s.size()) {
          *error = "truncated \\u escape";
          return false;
        }
        // All four characters must be hex digits: strtol alone would skip
        // leading whitespace and accept a sign, letting "\u+12f" through.
        long code = 0;
        bool hex_ok = true;
        for (std::size_t i = 0; i < 4; ++i) {
          const unsigned char h = static_cast<unsigned char>(s[*pos + i]);
          if (std::isxdigit(h) == 0) {
            hex_ok = false;
            break;
          }
          const long digit = std::isdigit(h) != 0
                                 ? h - '0'
                                 : 10 + (std::tolower(h) - 'a');
          code = code * 16 + digit;
        }
        if (!hex_ok) {
          *error = "malformed \\u escape";
          return false;
        }
        if (code > 0xFF) {
          *error = "unsupported \\u escape (only \\u00XX byte escapes accepted)";
          return false;
        }
        out->push_back(static_cast<char>(code));
        *pos += 4;
        break;
      }
      default:
        *error = std::string("unsupported escape '\\") + esc + "'";
        return false;
    }
  }
  *error = "unterminated string";
  return false;
}

struct JsonScalar {
  enum Kind { kString, kNumber, kBool, kNull } kind = kNull;
  std::string str;
  double num = 0.0;
  bool boolean = false;
};

bool ParseJsonScalar(const std::string& s, std::size_t* pos, JsonScalar* out,
                     std::string* error) {
  SkipWs(s, pos);
  if (*pos >= s.size()) {
    *error = "truncated request";
    return false;
  }
  const char c = s[*pos];
  if (c == '"') {
    out->kind = JsonScalar::kString;
    return ParseJsonString(s, pos, &out->str, error);
  }
  if (c == '{' || c == '[') {
    *error = "nested values are not allowed in a request";
    return false;
  }
  if (s.compare(*pos, 4, "true") == 0) {
    out->kind = JsonScalar::kBool;
    out->boolean = true;
    *pos += 4;
    return true;
  }
  if (s.compare(*pos, 5, "false") == 0) {
    out->kind = JsonScalar::kBool;
    out->boolean = false;
    *pos += 5;
    return true;
  }
  if (s.compare(*pos, 4, "null") == 0) {
    out->kind = JsonScalar::kNull;
    *pos += 4;
    return true;
  }
  char* end = nullptr;
  out->num = std::strtod(s.c_str() + *pos, &end);
  if (end == s.c_str() + *pos) {
    *error = "malformed value";
    return false;
  }
  out->kind = JsonScalar::kNumber;
  *pos = static_cast<std::size_t>(end - s.c_str());
  return true;
}

bool ExpectNumber(const JsonScalar& v, const std::string& key, double* out,
                  std::string* error) {
  if (v.kind != JsonScalar::kNumber) {
    *error = "field '" + key + "' must be a number";
    return false;
  }
  *out = v.num;
  return true;
}

bool ExpectString(const JsonScalar& v, const std::string& key, std::string* out,
                  std::string* error) {
  if (v.kind != JsonScalar::kString) {
    *error = "field '" + key + "' must be a string";
    return false;
  }
  *out = v.str;
  return true;
}

std::string FormatCount(std::uint64_t n) { return std::to_string(n); }

}  // namespace

bool ParseServeRequest(const std::string& line, ServeRequest* request, std::string* error) {
  std::size_t pos = 0;
  SkipWs(line, &pos);
  if (pos >= line.size() || line[pos] != '{') {
    *error = "request must be a JSON object";
    return false;
  }
  ++pos;
  bool saw_op = false;
  SkipWs(line, &pos);
  if (pos < line.size() && line[pos] == '}') {
    ++pos;
  } else {
    while (true) {
      SkipWs(line, &pos);
      std::string key;
      if (!ParseJsonString(line, &pos, &key, error)) {
        return false;
      }
      SkipWs(line, &pos);
      if (pos >= line.size() || line[pos] != ':') {
        *error = "expected ':' after field '" + key + "'";
        return false;
      }
      ++pos;
      JsonScalar value;
      if (!ParseJsonScalar(line, &pos, &value, error)) {
        return false;
      }
      double num = 0.0;
      if (key == "op") {
        if (!ExpectString(value, key, &request->op, error)) {
          return false;
        }
        saw_op = true;
      } else if (key == "scenario") {
        if (!ExpectString(value, key, &request->scenario, error)) {
          return false;
        }
      } else if (key == "seeds") {
        if (!ExpectNumber(value, key, &num, error)) {
          return false;
        }
        if (num < 1.0 || num > 100000.0) {
          *error = "seeds must be in [1, 100000]";
          return false;
        }
        request->seeds = static_cast<int>(num);
      } else if (key == "base_seed") {
        if (!ExpectNumber(value, key, &num, error)) {
          return false;
        }
        if (num < 0.0 || num > 9.0e15) {
          *error = "base_seed must be in [0, 9e15]";
          return false;
        }
        request->base_seed = static_cast<std::uint64_t>(num);
      } else if (key == "days") {
        if (value.kind == JsonScalar::kNull) {
          request->days = -1.0;  // scenario default
        } else {
          if (!ExpectNumber(value, key, &num, error)) {
            return false;
          }
          if (num <= 0.0) {
            *error = "days must be > 0";
            return false;
          }
          request->days = num;
        }
      } else if (key == "jobs") {
        if (!ExpectNumber(value, key, &num, error)) {
          return false;
        }
        if (num < 1.0 || num > 256.0) {
          *error = "jobs must be in [1, 256]";
          return false;
        }
        request->jobs = static_cast<int>(num);
      } else if (key == "deadline_s") {
        if (!ExpectNumber(value, key, &num, error)) {
          return false;
        }
        if (num < 0.0 || !std::isfinite(num)) {
          *error = "deadline_s must be >= 0";
          return false;
        }
        request->deadline_s = num;
      } else if (key == "journal") {
        if (!ExpectString(value, key, &request->journal, error)) {
          return false;
        }
      } else if (key == "resume") {
        if (!ExpectString(value, key, &request->resume, error)) {
          return false;
        }
      } else if (key == "retries") {
        if (!ExpectNumber(value, key, &num, error)) {
          return false;
        }
        if (num < 0.0 || num > 100.0) {
          *error = "retries must be in [0, 100]";
          return false;
        }
        request->retries = static_cast<int>(num);
      } else if (key == "journal_sync") {
        if (value.kind != JsonScalar::kBool) {
          *error = "field 'journal_sync' must be a boolean";
          return false;
        }
        request->journal_sync = value.boolean;
      } else {
        *error = "unknown request field '" + key + "'";
        return false;
      }
      SkipWs(line, &pos);
      if (pos < line.size() && line[pos] == ',') {
        ++pos;
        continue;
      }
      if (pos < line.size() && line[pos] == '}') {
        ++pos;
        break;
      }
      *error = "expected ',' or '}' in request object";
      return false;
    }
  }
  SkipWs(line, &pos);
  if (pos != line.size()) {
    *error = "trailing bytes after request object";
    return false;
  }
  if (!saw_op) {
    *error = "request is missing 'op'";
    return false;
  }
  if (request->op != "campaign" && request->op != "fleet" && request->op != "status" &&
      request->op != "shutdown") {
    *error = "unknown op '" + request->op +
             "' (expected campaign, fleet, status or shutdown)";
    return false;
  }
  if (!request->journal.empty() && !request->resume.empty()) {
    *error =
        "journal and resume are mutually exclusive "
        "(resume already appends to the journal it resumes)";
    return false;
  }
  return true;
}

std::string JsonEscapeFull(const std::string& s) {
  std::string r;
  r.reserve(s.size() + s.size() / 8);
  for (const char c : s) {
    switch (c) {
      case '"': r += "\\\""; break;
      case '\\': r += "\\\\"; break;
      case '\n': r += "\\n"; break;
      case '\t': r += "\\t"; break;
      case '\r': r += "\\r"; break;
      case '\b': r += "\\b"; break;
      case '\f': r += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          r += buf;
        } else {
          r.push_back(c);
        }
    }
  }
  return r;
}

const char* ServeStatusLabel(int exit_code) {
  switch (exit_code) {
    case kExitOk: return "ok";
    case kExitQuarantine: return "quarantined";
    case kExitInterrupted: return "interrupted";
    case kExitUsage: return "rejected";
    case kExitShed: return "shed";
    default: return "error";
  }
}

std::string RenderResultResponse(const std::string& op, const std::string& scenario,
                                 int exit_code, int seeds_requested, int seeds_done,
                                 const std::string& body) {
  std::string r = "{\"tool\":\"byterobust\",\"op\":\"" + JsonEscapeFull(op) +
                  "\",\"status\":\"" + ServeStatusLabel(exit_code) +
                  "\",\"exit_code\":" + std::to_string(exit_code) + ",\"scenario\":\"" +
                  JsonEscapeFull(scenario) +
                  "\",\"seeds_requested\":" + std::to_string(seeds_requested) +
                  ",\"seeds_done\":" + std::to_string(seeds_done) + ",\"body\":\"" +
                  JsonEscapeFull(body) + "\"}\n";
  return r;
}

std::string RenderErrorResponse(const std::string& op, const std::string& message,
                                int exit_code) {
  return "{\"tool\":\"byterobust\",\"op\":\"" + JsonEscapeFull(op) + "\",\"status\":\"" +
         ServeStatusLabel(exit_code) + "\",\"exit_code\":" + std::to_string(exit_code) +
         ",\"error\":\"" + JsonEscapeFull(message) + "\"}\n";
}

std::string RenderShedResponse(const std::string& op, const std::string& reason,
                               int queue_depth, int max_queue) {
  return "{\"tool\":\"byterobust\",\"op\":\"" + JsonEscapeFull(op) +
         "\",\"status\":\"shed\",\"exit_code\":" + std::to_string(kExitShed) +
         ",\"error\":\"" + JsonEscapeFull(reason) +
         "\",\"queue_depth\":" + std::to_string(queue_depth) +
         ",\"max_queue\":" + std::to_string(max_queue) + "}\n";
}

namespace {
std::string FormatMs(double ms) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", ms);
  return buf;
}
}  // namespace

std::string RenderStatusResponse(const ServeStatus& status) {
  return std::string("{\"tool\":\"byterobust\",\"op\":\"status\",\"status\":\"ok\"") +
         ",\"exit_code\":" + std::to_string(kExitOk) +
         ",\"draining\":" + (status.draining ? "true" : "false") +
         ",\"uptime_ticks\":" + FormatCount(status.uptime_ticks) +
         ",\"queue_depth\":" + std::to_string(status.queue_depth) +
         ",\"max_queue\":" + std::to_string(status.max_queue) +
         ",\"active_requests\":" + std::to_string(status.active_requests) +
         ",\"inflight_seeds\":" + std::to_string(status.inflight_seeds) +
         ",\"admitted\":" + FormatCount(status.admitted) +
         ",\"completed\":" + FormatCount(status.completed) +
         ",\"shed\":" + FormatCount(status.shed) +
         ",\"cancelled\":" + FormatCount(status.cancelled) +
         ",\"workers\":" + std::to_string(status.workers) +
         ",\"max_seeds\":" + std::to_string(status.max_seeds) +
         ",\"latency_count\":" + FormatCount(status.latency_count) +
         ",\"latency_p50_ms\":" + FormatMs(status.latency_p50_ms) +
         ",\"latency_p90_ms\":" + FormatMs(status.latency_p90_ms) +
         ",\"latency_p99_ms\":" + FormatMs(status.latency_p99_ms) +
         ",\"latency_max_ms\":" + FormatMs(status.latency_max_ms) + "}\n";
}

bool ExtractJsonStringField(const std::string& line, const std::string& key,
                            std::string* out) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) {
    return false;
  }
  std::size_t pos = at + needle.size() - 1;  // the opening quote
  std::string error;
  return ParseJsonString(line, &pos, out, &error);
}

bool ExtractJsonIntField(const std::string& line, const std::string& key, long* out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) {
    return false;
  }
  const char* start = line.c_str() + at + needle.size();
  char* end = nullptr;
  const long value = std::strtol(start, &end, 10);
  if (end == start) {
    return false;
  }
  *out = value;
  return true;
}

}  // namespace byterobust

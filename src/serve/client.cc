#include "src/serve/client.h"

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/harness/wallclock.h"

namespace byterobust {
namespace {

int ConnectWithRetry(const std::string& socket_path, double connect_wait_s,
                     std::string* error) {
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    *error = "bad socket path";
    return -1;
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size());
  const double give_up = WallSeconds() + connect_wait_s;
  while (true) {
    const int fd = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      *error = std::string("could not create socket: ") + std::strerror(errno);
      return -1;
    }
    if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) {
      return fd;
    }
    const int saved = errno;
    close(fd);
    if (WallSeconds() >= give_up) {
      *error = "could not connect to " + socket_path + ": " + std::strerror(saved);
      return -1;
    }
    SleepMs(50.0);  // daemon still binding; retry inside the wait window
  }
}

bool SetIoTimeout(int fd, double seconds) {
  if (seconds <= 0.0) {
    return true;
  }
  timeval tv;
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  return setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) == 0 &&
         setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) == 0;
}

}  // namespace

bool ServeRoundtrip(const std::string& socket_path, const std::string& request_line,
                    double connect_wait_s, double io_timeout_s,
                    std::string* response_line, std::string* error) {
  response_line->clear();
  const int fd = ConnectWithRetry(socket_path, connect_wait_s, error);
  if (fd < 0) {
    return false;
  }
  if (!SetIoTimeout(fd, io_timeout_s)) {
    close(fd);
    *error = "could not set socket timeouts";
    return false;
  }
  std::string line = request_line;
  if (line.empty() || line.back() != '\n') {
    line += '\n';
  }
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = send(fd, line.data() + off, line.size() - off, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      close(fd);
      *error = std::string("send failed: ") + std::strerror(errno);
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  char chunk[1 << 16];
  while (true) {
    const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n < 0) {
      close(fd);
      *error = std::string("recv failed (response timeout?): ") + std::strerror(errno);
      return false;
    }
    if (n == 0) {
      close(fd);
      *error = "daemon closed the connection before a full response line";
      return false;
    }
    response_line->append(chunk, static_cast<std::size_t>(n));
    const std::size_t nl = response_line->find('\n');
    if (nl != std::string::npos) {
      response_line->resize(nl);
      break;
    }
  }
  close(fd);
  return true;
}

}  // namespace byterobust

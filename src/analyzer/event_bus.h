// Unified event bus (paper Sec. 7): the Runtime Analyzer "standardizes
// anomalies by aggregating logs, I/O operations, host anomalies, on-demand
// tracer output, and pod anomalies into unified events" and runs event-driven
// real-time analysis over them. This module provides that substrate: typed
// events, publish/subscribe dispatch, a bounded history ring, and the
// correlation query the gray-failure verification uses (e.g. pairing a
// GPU-overheating host anomaly with an MFU-decline metric event).
//
// Dispatch is O(subscribers of that kind): handlers live in a flat array
// indexed by UnifiedEventKind (no map lookup), and history is a fixed-capacity
// ring that overwrites in place (no deque node churn per publish).

#ifndef SRC_ANALYZER_EVENT_BUS_H_
#define SRC_ANALYZER_EVENT_BUS_H_

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/sim_time.h"
#include "src/faults/incident.h"
#include "src/topology/parallelism.h"

namespace byterobust {

enum class UnifiedEventKind {
  kLog,           // stdout/stderr/exit-code extract
  kIoOperation,   // storage / dataloader I/O anomaly
  kHostAnomaly,   // dmesg / Xid / host health
  kTracerOutput,  // stack or flight-record capture completed
  kPodAnomaly,    // pod / container lifecycle issue
  kMetric,        // training-metric event (loss, MFU, grad norm)
};

inline constexpr int kNumUnifiedEventKinds = 6;
static_assert(static_cast<int>(UnifiedEventKind::kMetric) + 1 == kNumUnifiedEventKinds,
              "update kNumUnifiedEventKinds when extending UnifiedEventKind");

const char* UnifiedEventKindName(UnifiedEventKind kind);

struct UnifiedEvent {
  UnifiedEventKind kind = UnifiedEventKind::kLog;
  SimTime time = 0;
  MachineId machine = -1;  // -1: not machine-specific
  IncidentSymptom hint = IncidentSymptom::kCudaError;
  std::string detail;
};

class EventBus {
 public:
  explicit EventBus(std::size_t history_capacity = 4096)
      : capacity_(history_capacity == 0 ? 1 : history_capacity) {}

  using Handler = std::function<void(const UnifiedEvent&)>;

  // Subscribes to one event kind, or to everything.
  void Subscribe(UnifiedEventKind kind, Handler handler);
  void SubscribeAll(Handler handler);

  // Dispatches to subscribers and appends to the bounded history.
  void Publish(UnifiedEvent event);

  // Oldest-first indexed view over the retained history (at most the
  // construction-time capacity; older events are overwritten in place).
  class HistoryView {
   public:
    std::size_t size() const { return bus_->size_; }
    bool empty() const { return bus_->size_ == 0; }
    const UnifiedEvent& operator[](std::size_t i) const { return bus_->HistoryAt(i); }
    const UnifiedEvent& front() const { return bus_->HistoryAt(0); }
    const UnifiedEvent& back() const { return bus_->HistoryAt(bus_->size_ - 1); }

   private:
    friend class EventBus;
    explicit HistoryView(const EventBus* bus) : bus_(bus) {}
    const EventBus* bus_;
  };

  HistoryView history() const { return HistoryView(this); }
  std::uint64_t published() const { return published_; }

  // Events mentioning `machine` within the trailing `window` ending at `now`
  // (newest first). The gray-failure rule correlates a host anomaly with a
  // metric decline on the same machine inside a short window.
  std::vector<UnifiedEvent> Correlate(MachineId machine, SimTime now,
                                      SimDuration window) const;

  // True when the window holds events of both kinds for the machine — the
  // thermal-throttling verification of Sec. 8.1.1.
  bool HasCorrelatedPair(MachineId machine, SimTime now, SimDuration window,
                         UnifiedEventKind a, UnifiedEventKind b) const;

 private:
  // i-th retained event, 0 = oldest.
  const UnifiedEvent& HistoryAt(std::size_t i) const {
    return ring_[(start_ + i) % capacity_];
  }

  std::size_t capacity_;            // fixed at construction
  std::vector<UnifiedEvent> ring_;  // grows to capacity_, then wraps in place
  std::size_t start_ = 0;           // index of the oldest retained event
  std::size_t size_ = 0;            // retained count, <= capacity_
  std::array<std::vector<Handler>, kNumUnifiedEventKinds> handlers_;
  std::vector<Handler> all_handlers_;
  std::uint64_t published_ = 0;
};

}  // namespace byterobust

#endif  // SRC_ANALYZER_EVENT_BUS_H_

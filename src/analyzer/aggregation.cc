#include "src/analyzer/aggregation.h"

#include <algorithm>
#include <cstddef>
#include <set>
#include <unordered_map>

#include "src/tracer/stack_synth.h"

namespace byterobust {

namespace {

// FNV-1a over (kind, shared-storage identity). Stacks are shared-immutable
// copies of a handful of canned patterns, so hashing the storage pointer is
// O(1) per stack instead of re-hashing every frame string. This makes
// grouping identity-based: structurally equal traces built as separate
// objects would form separate groups (see StackTrace::identity()), so every
// producer must intern its patterns — all of stack_synth.cc's builders do.
// Group *order* is first-encounter order followed by a deterministic
// (size, key) sort, so the result never depends on the hash values
// themselves. The pointer mix below is the one BR-POINTER-ORDER suppression
// in tools/determinism_lint_allow.txt — keep this invariant if you touch it.
std::size_t HashStack(ProcessKind kind, const StackTrace& stack) {
  std::size_t h = 14695981039346656037ull;
  const auto mix = [&h](std::size_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::size_t>(kind));
  mix(reinterpret_cast<std::size_t>(stack.identity()));
  return h;
}

}  // namespace

AggregationResult AggregationAnalyzer::Analyze(const std::vector<ProcessStack>& stacks,
                                               const Topology& topology) const {
  AggregationResult result;
  if (stacks.empty()) {
    return result;
  }

  // Step 2: group stacks by exact (kind, frames) identity. Subprocess stacks
  // participate too; a wedged dataloader on one machine forms its own
  // singleton group. Hash buckets hold indices into `result.groups`;
  // collisions fall back to structural comparison against the
  // representative.
  std::unordered_map<std::size_t, std::vector<std::size_t>> buckets;
  buckets.reserve(stacks.size() * 2);
  std::vector<ProcessKind> group_kinds;
  for (const ProcessStack& ps : stacks) {
    const std::size_t h = HashStack(ps.kind, ps.stack);
    std::vector<std::size_t>& bucket = buckets[h];
    StackGroup* group = nullptr;
    for (std::size_t idx : bucket) {
      if (group_kinds[idx] == ps.kind && result.groups[idx].representative == ps.stack) {
        group = &result.groups[idx];
        break;
      }
    }
    if (group == nullptr) {
      bucket.push_back(result.groups.size());
      group_kinds.push_back(ps.kind);
      result.groups.emplace_back();
      group = &result.groups.back();
      group->representative = ps.stack;
    }
    group->ranks.push_back(ps.rank);
    group->machines.push_back(ps.machine);
  }

  for (std::size_t i = 0; i < result.groups.size(); ++i) {
    StackGroup& group = result.groups[i];
    group.key = std::string(ProcessKindName(group_kinds[i])) + "|" + group.representative.Key();
    std::sort(group.machines.begin(), group.machines.end());
    group.machines.erase(std::unique(group.machines.begin(), group.machines.end()),
                         group.machines.end());
  }
  std::sort(result.groups.begin(), result.groups.end(),
            [](const StackGroup& a, const StackGroup& b) {
              if (a.ranks.size() != b.ranks.size()) {
                return a.ranks.size() > b.ranks.size();
              }
              return a.key < b.key;  // deterministic tie-break
            });

  // Dominant groups are healthy; subprocess groups covering every machine
  // (idle loaders/writers) are dominant by construction.
  const std::size_t max_size = result.groups.front().ranks.size();
  std::set<MachineId> outliers;
  std::set<MachineId> healthy_machines;
  for (StackGroup& g : result.groups) {
    g.healthy = static_cast<double>(g.ranks.size()) >=
                config_.dominant_fraction * static_cast<double>(max_size);
    for (MachineId m : g.machines) {
      (g.healthy ? healthy_machines : outliers).insert(m);
    }
  }
  // A machine is an outlier if *any* of its processes shows an outlier stack,
  // even if other processes on it look healthy.
  result.outlier_machines.assign(outliers.begin(), outliers.end());
  if (result.outlier_machines.empty()) {
    return result;
  }

  // Step 3: shared parallel group of the outliers.
  result.found_group = topology.FindCoveringGroup(result.outlier_machines,
                                                  &result.isolated_group);
  if (result.found_group) {
    result.machines_to_evict = topology.MachinesOfGroup(result.isolated_group);
  } else {
    result.machines_to_evict = result.outlier_machines;
  }
  return result;
}

bool FailSlowVoter::AddRound(const AggregationResult& result) {
  ++rounds_seen_;
  if (result.found_group) {
    const auto key = std::make_pair(static_cast<int>(result.isolated_group.kind),
                                    result.isolated_group.index);
    ++flags_[key];
  }
  return Ready();
}

bool FailSlowVoter::Decide(GroupKind* kind, int* index) const {
  if (flags_.empty()) {
    return false;
  }
  auto best = flags_.begin();
  for (auto it = flags_.begin(); it != flags_.end(); ++it) {
    if (it->second > best->second) {
      best = it;
    }
  }
  *kind = static_cast<GroupKind>(best->first.first);
  *index = best->first.second;
  return true;
}

const AggregationResult& FailSlowVoteCache::Round(const AggregationAnalyzer& analyzer,
                                                  const Topology& topology,
                                                  MachineId slow_machine,
                                                  std::uint64_t round_seed) {
  MachineId noisy = FailSlowNoiseMachine(round_seed, topology.num_machines());
  if (noisy == slow_machine) {
    noisy = -1;  // jitter on the laggard itself changes nothing
  }
  const std::pair<MachineId, MachineId> key{slow_machine, noisy};
  const auto it = results_.find(key);
  if (it != results_.end()) {
    return it->second;
  }
  if (pod_slow_ != slow_machine) {
    // One synthesis per distinct slow machine: the noise-free round (built
    // directly so no jitter draw is involved).
    pod_.clear();
    pod_.reserve(static_cast<std::size_t>(topology.world_size()));
    for (Rank r = 0; r < topology.world_size(); ++r) {
      ProcessStack ps;
      ps.rank = r;
      ps.machine = topology.MachineOfRank(r);
      ps.kind = ProcessKind::kTrainer;
      ps.stack = ps.machine == slow_machine ? ComputeKernelStack() : HealthyGradSyncStack();
      pod_.push_back(std::move(ps));
    }
    pod_slow_ = slow_machine;
  }
  AggregationResult result;
  if (noisy < 0) {
    result = analyzer.Analyze(pod_, topology);
  } else {
    // Patch only the noisy machine's ranks; stacks stay interned, so the
    // aggregation sees storage-identical frames to a fresh synthesis.
    std::vector<ProcessStack> round_pod = pod_;
    for (ProcessStack& ps : round_pod) {
      if (ps.machine == noisy) {
        ps.stack = ComputeKernelStack();
      }
    }
    result = analyzer.Analyze(round_pod, topology);
  }
  return results_.emplace(key, std::move(result)).first->second;
}

}  // namespace byterobust

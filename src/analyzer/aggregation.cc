#include "src/analyzer/aggregation.h"

#include <algorithm>
#include <set>

namespace byterobust {

AggregationResult AggregationAnalyzer::Analyze(const std::vector<ProcessStack>& stacks,
                                               const Topology& topology) const {
  AggregationResult result;
  if (stacks.empty()) {
    return result;
  }

  // Step 2: group stacks by exact key. Subprocess stacks participate too; a
  // wedged dataloader on one machine forms its own singleton group.
  std::map<std::string, StackGroup> by_key;
  for (const ProcessStack& ps : stacks) {
    const std::string key = std::string(ProcessKindName(ps.kind)) + "|" + ps.stack.Key();
    StackGroup& g = by_key[key];
    if (g.ranks.empty()) {
      g.key = key;
      g.representative = ps.stack;
    }
    g.ranks.push_back(ps.rank);
    g.machines.push_back(ps.machine);
  }

  for (auto& [key, group] : by_key) {
    std::sort(group.machines.begin(), group.machines.end());
    group.machines.erase(std::unique(group.machines.begin(), group.machines.end()),
                         group.machines.end());
    result.groups.push_back(std::move(group));
  }
  std::sort(result.groups.begin(), result.groups.end(),
            [](const StackGroup& a, const StackGroup& b) {
              if (a.ranks.size() != b.ranks.size()) {
                return a.ranks.size() > b.ranks.size();
              }
              return a.key < b.key;  // deterministic tie-break
            });

  // Dominant groups are healthy; subprocess groups covering every machine
  // (idle loaders/writers) are dominant by construction.
  const std::size_t max_size = result.groups.front().ranks.size();
  std::set<MachineId> outliers;
  std::set<MachineId> healthy_machines;
  for (StackGroup& g : result.groups) {
    g.healthy = static_cast<double>(g.ranks.size()) >=
                config_.dominant_fraction * static_cast<double>(max_size);
    for (MachineId m : g.machines) {
      (g.healthy ? healthy_machines : outliers).insert(m);
    }
  }
  // A machine is an outlier if *any* of its processes shows an outlier stack,
  // even if other processes on it look healthy.
  result.outlier_machines.assign(outliers.begin(), outliers.end());
  if (result.outlier_machines.empty()) {
    return result;
  }

  // Step 3: shared parallel group of the outliers.
  result.found_group = topology.FindCoveringGroup(result.outlier_machines,
                                                  &result.isolated_group);
  if (result.found_group) {
    result.machines_to_evict = topology.MachinesOfGroup(result.isolated_group);
  } else {
    result.machines_to_evict = result.outlier_machines;
  }
  return result;
}

bool FailSlowVoter::AddRound(const AggregationResult& result) {
  ++rounds_seen_;
  if (result.found_group) {
    const auto key = std::make_pair(static_cast<int>(result.isolated_group.kind),
                                    result.isolated_group.index);
    ++flags_[key];
  }
  return Ready();
}

bool FailSlowVoter::Decide(GroupKind* kind, int* index) const {
  if (flags_.empty()) {
    return false;
  }
  auto best = flags_.begin();
  for (auto it = flags_.begin(); it != flags_.end(); ++it) {
    if (it->second > best->second) {
      best = it;
    }
  }
  *kind = static_cast<GroupKind>(best->first.first);
  *index = best->first.second;
  return true;
}

}  // namespace byterobust

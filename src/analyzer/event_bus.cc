#include "src/analyzer/event_bus.h"

#include <utility>

namespace byterobust {

const char* UnifiedEventKindName(UnifiedEventKind kind) {
  switch (kind) {
    case UnifiedEventKind::kLog:
      return "log";
    case UnifiedEventKind::kIoOperation:
      return "io";
    case UnifiedEventKind::kHostAnomaly:
      return "host";
    case UnifiedEventKind::kTracerOutput:
      return "tracer";
    case UnifiedEventKind::kPodAnomaly:
      return "pod";
    case UnifiedEventKind::kMetric:
      return "metric";
  }
  return "unknown";
}

void EventBus::Subscribe(UnifiedEventKind kind, Handler handler) {
  handlers_[static_cast<std::size_t>(kind)].push_back(std::move(handler));
}

void EventBus::SubscribeAll(Handler handler) { all_handlers_.push_back(std::move(handler)); }

void EventBus::Publish(UnifiedEvent event) {
  ++published_;
  if (size_ < capacity_) {
    // Grow on demand up to the fixed capacity (short runs publish far fewer
    // events than the ring could hold), then wrap in place forever after.
    // size_ never decreases, so in this phase start_ is 0 and size_ ==
    // ring_.size(): new events always land at the vector's end.
    ring_.push_back(event);
    ++size_;
  } else {
    // Full: overwrite the oldest slot in place and advance the window.
    ring_[start_] = event;
    start_ = (start_ + 1) % capacity_;
  }
  // Dispatch the local copy: a handler that publishes recursively may rotate
  // the ring out from under a slot reference.
  for (const Handler& handler : handlers_[static_cast<std::size_t>(event.kind)]) {
    handler(event);
  }
  for (const Handler& handler : all_handlers_) {
    handler(event);
  }
}

std::vector<UnifiedEvent> EventBus::Correlate(MachineId machine, SimTime now,
                                              SimDuration window) const {
  std::vector<UnifiedEvent> out;
  for (std::size_t i = size_; i > 0; --i) {
    const UnifiedEvent& e = HistoryAt(i - 1);
    if (e.time < now - window) {
      break;  // history is time-ordered; nothing older qualifies
    }
    if (e.machine == machine && e.time <= now) {
      out.push_back(e);
    }
  }
  return out;
}

bool EventBus::HasCorrelatedPair(MachineId machine, SimTime now, SimDuration window,
                                 UnifiedEventKind a, UnifiedEventKind b) const {
  bool saw_a = false;
  bool saw_b = false;
  for (const UnifiedEvent& e : Correlate(machine, now, window)) {
    saw_a = saw_a || e.kind == a;
    saw_b = saw_b || e.kind == b;
  }
  return saw_a && saw_b;
}

}  // namespace byterobust

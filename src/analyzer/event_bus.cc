#include "src/analyzer/event_bus.h"

namespace byterobust {

const char* UnifiedEventKindName(UnifiedEventKind kind) {
  switch (kind) {
    case UnifiedEventKind::kLog:
      return "log";
    case UnifiedEventKind::kIoOperation:
      return "io";
    case UnifiedEventKind::kHostAnomaly:
      return "host";
    case UnifiedEventKind::kTracerOutput:
      return "tracer";
    case UnifiedEventKind::kPodAnomaly:
      return "pod";
    case UnifiedEventKind::kMetric:
      return "metric";
  }
  return "unknown";
}

void EventBus::Subscribe(UnifiedEventKind kind, Handler handler) {
  handlers_[static_cast<int>(kind)].push_back(std::move(handler));
}

void EventBus::SubscribeAll(Handler handler) { all_handlers_.push_back(std::move(handler)); }

void EventBus::Publish(UnifiedEvent event) {
  ++published_;
  history_.push_back(event);
  while (history_.size() > history_capacity_) {
    history_.pop_front();
  }
  auto it = handlers_.find(static_cast<int>(event.kind));
  if (it != handlers_.end()) {
    for (const Handler& handler : it->second) {
      handler(event);
    }
  }
  for (const Handler& handler : all_handlers_) {
    handler(event);
  }
}

std::vector<UnifiedEvent> EventBus::Correlate(MachineId machine, SimTime now,
                                              SimDuration window) const {
  std::vector<UnifiedEvent> out;
  for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
    if (it->time < now - window) {
      break;  // history is time-ordered; nothing older qualifies
    }
    if (it->machine == machine && it->time <= now) {
      out.push_back(*it);
    }
  }
  return out;
}

bool EventBus::HasCorrelatedPair(MachineId machine, SimTime now, SimDuration window,
                                 UnifiedEventKind a, UnifiedEventKind b) const {
  bool saw_a = false;
  bool saw_b = false;
  for (const UnifiedEvent& e : Correlate(machine, now, window)) {
    saw_a = saw_a || e.kind == a;
    saw_b = saw_b || e.kind == b;
  }
  return saw_a && saw_b;
}

}  // namespace byterobust

// Runtime Analyzer: data-driven over-eviction via stack-trace aggregation
// (paper Sec. 5).
//
// Three steps, mirroring Fig. 7: (1) the tracer has already parsed process
// trees and captured stacks from all training-related processes; (2) stacks
// are aggregated into groups by exact string matching — dominant groups are
// healthy, the rest are outliers; (3) the shared parallel group covering the
// outlier machines is isolated and over-evicted.
//
// Grouping hashes (process kind, stack frames) directly instead of
// concatenating a key string per stack; the canonical key string is built
// once per distinct group, purely for reporting and deterministic ordering.

#ifndef SRC_ANALYZER_AGGREGATION_H_
#define SRC_ANALYZER_AGGREGATION_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/topology/parallelism.h"
#include "src/tracer/stack_trace.h"

namespace byterobust {

struct AggregationConfig {
  // A stack group is "dominant" (healthy) when its size is at least this
  // fraction of the largest group's size.
  double dominant_fraction = 0.5;
};

// One aggregated stack group.
struct StackGroup {
  std::string key;
  StackTrace representative;
  std::vector<Rank> ranks;
  std::vector<MachineId> machines;  // deduplicated, sorted
  bool healthy = false;
};

struct AggregationResult {
  std::vector<StackGroup> groups;  // sorted by size, descending
  std::vector<MachineId> outlier_machines;

  // The shared parallel group of the outliers (step 3), when one covers them.
  bool found_group = false;
  ParallelGroup isolated_group;

  // Machines the controller should (over-)evict: the isolated group's
  // machines, or the bare outliers when no single group covers them.
  std::vector<MachineId> machines_to_evict;
};

class AggregationAnalyzer {
 public:
  explicit AggregationAnalyzer(const AggregationConfig& config = {}) : config_(config) {}

  AggregationResult Analyze(const std::vector<ProcessStack>& stacks,
                            const Topology& topology) const;

 private:
  AggregationConfig config_;
};

// Fail-slow localization (Sec. 5.1 last paragraph): aggregation repeats every
// 10 seconds; each round flags the parallel group with the most outliers, and
// after `rounds` rounds the group with the highest cumulative flag count is
// the degrader.
class FailSlowVoter {
 public:
  explicit FailSlowVoter(int rounds = 5) : rounds_needed_(rounds) {}

  // Feeds one aggregation round. Returns true once enough rounds accumulated.
  bool AddRound(const AggregationResult& result);

  bool Ready() const { return rounds_seen_ >= rounds_needed_; }

  // The winning group (highest cumulative flags). Only valid when Ready().
  bool Decide(GroupKind* kind, int* index) const;

  int rounds_seen() const { return rounds_seen_; }

 private:
  int rounds_needed_;
  int rounds_seen_ = 0;
  std::map<std::pair<int, int>, int> flags_;  // (kind, index) -> count
};

// Memoized fail-slow rounds. A voting round's snapshot is fully determined
// by (slow machine, jitter machine): the pod stacks are a pure function of
// that pair, so instead of re-synthesising and re-aggregating the full pod
// every 10-second round, the cache keeps one synthesized base pod per slow
// machine (patched in place when the round adds a noisy machine) and memoizes
// each pair's AggregationResult for the controller's lifetime — the topology
// never changes under a job. Round() returns exactly what
// analyzer.Analyze(SynthesizeFailSlowStacks(topology, slow, seed), topology)
// would (the stacks share the same interned storage), so voting decisions
// are unchanged.
//
// Threading model: despite being a cache, this is *not* process-wide shared
// state — each RobustController owns one instance, and a controller (with
// its whole per-seed system stack) is confined to a single campaign worker
// thread. It is deliberately unsynchronized; do not lift an instance into a
// static or share it across systems without adding a Mutex and
// BR_GUARDED_BY annotations (src/common/sync.h).
class FailSlowVoteCache {
 public:
  const AggregationResult& Round(const AggregationAnalyzer& analyzer, const Topology& topology,
                                 MachineId slow_machine, std::uint64_t round_seed);

 private:
  MachineId pod_slow_ = -2;          // slow machine the cached pod models
  std::vector<ProcessStack> pod_;    // laggard = slow machine only
  std::map<std::pair<MachineId, MachineId>, AggregationResult> results_;
};

}  // namespace byterobust

#endif  // SRC_ANALYZER_AGGREGATION_H_

// Correlated fault injection over the hierarchical fault-domain graph
// (src/topology/fault_domains.h): instead of striking one machine, a domain
// fault flips the health of every machine beneath a ToR / spine / pod at
// once, mirroring the paper's correlated infrastructure incidents (switch
// storms, power events) and the graceful-degradation ladder — transient
// domain faults heal inside the controller's network debounce without
// eviction, persistent ones escalate to per-machine incidents exactly like
// the single-machine injector's.

#ifndef SRC_FAULTS_DOMAIN_INJECTOR_H_
#define SRC_FAULTS_DOMAIN_INJECTOR_H_

#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/sim_time.h"
#include "src/faults/incident.h"
#include "src/topology/fault_domains.h"

namespace byterobust {

// The correlated fault classes the graph can express.
enum class DomainFaultKind : int {
  // Spine switch flapping: every machine under the spine loses switch
  // reachability and sees packet loss (gray network fault; the network
  // inspection + debounce path decides eviction vs reattempt).
  kSpineFlap = 0,
  // Pod power-domain loss: every machine under the pod hard-fails (kernel
  // panic signal; high-confidence inspection evicts the whole sub-tree).
  kPowerLoss,
  // ToR uplink fail-slow: no per-machine health signal at all — the degraded
  // link applies congestion backpressure to the step time of every job whose
  // collectives cross the band, surfacing only as an MFU decline.
  kLinkFailSlow,
  // Fleet ToR switch storm (src/fleet): the legacy band storm re-expressed on
  // the graph; per-machine effects match kSpineFlap but scoped to one rack.
  kSwitchStorm,
};

const char* DomainFaultKindName(DomainFaultKind kind);

// Level the kind strikes at.
DomainLevel DomainFaultLevel(DomainFaultKind kind);

// Symptom the affected jobs' monitors should attribute (kMfuDecline for
// fail-slow, which never produces an explicit incident).
IncidentSymptom DomainFaultSymptom(DomainFaultKind kind);

// One Poisson stream of correlated domain faults for a scenario.
struct DomainFaultStreamConfig {
  DomainFaultKind kind = DomainFaultKind::kSpineFlap;
  // Mean gap between domain faults (0 disables the stream).
  SimDuration mean_gap = 0;
  // Fraction of faults that self-heal after transient_hold (the rest persist
  // for persistent_hold and force eviction of the serving sub-tree).
  double transient_fraction = 0.7;
  // Must undercut the controller's network debounce (150 s default) for the
  // graceful no-eviction path to engage.
  SimDuration transient_hold = Seconds(90);
  SimDuration persistent_hold = Hours(2);
  // Congestion factor a fail-slow link applies to crossing collectives.
  double degradation_factor = 0.55;
};

// Machines a domain fault touched (non-blacklisted machines under the
// domain; empty for kLinkFailSlow, which flips no machine health).
struct DomainFaultEffect {
  DomainId domain = -1;
  std::vector<MachineId> affected;
};

// Stateless apply/heal helpers, unit-testable without a Scenario. The cluster
// must have a fault-domain graph attached (Cluster::AttachFaultDomains).
class DomainInjector {
 public:
  // Flips the domain's health state and the per-machine health flags of every
  // non-blacklisted machine beneath it, per kind.
  static DomainFaultEffect ApplyToDomain(DomainFaultKind kind, DomainId id,
                                         double degradation_factor, Cluster* cluster,
                                         SimTime now);

  // Restores the domain to kUp and resets the health of the non-blacklisted
  // machines beneath it (blacklisted machines stay evicted: a healed domain
  // does not resurrect eviction decisions).
  static void HealDomain(DomainFaultKind kind, DomainId id, Cluster* cluster, SimTime now);

  // Machines under `id` currently serving `view`'s training slots, in id
  // order — the ground-truth faulty set for the per-job incident.
  static std::vector<MachineId> ServingUnder(const Cluster& view, DomainId id);
};

}  // namespace byterobust

#endif  // SRC_FAULTS_DOMAIN_INJECTOR_H_

#include "src/faults/incident.h"

#include <cstdio>

namespace byterobust {

const char* SymptomName(IncidentSymptom symptom) {
  switch (symptom) {
    case IncidentSymptom::kCudaError:
      return "CUDA Error";
    case IncidentSymptom::kCpuOverload:
      return "CPU Overload";
    case IncidentSymptom::kCpuOom:
      return "CPU OOM";
    case IncidentSymptom::kInsufficientDiskSpace:
      return "Insufficient Disk Space";
    case IncidentSymptom::kInfinibandError:
      return "Infiniband Error";
    case IncidentSymptom::kFilesystemMount:
      return "Filesystem Mount";
    case IncidentSymptom::kHdfsError:
      return "HDFS Error";
    case IncidentSymptom::kContainerError:
      return "Container Error";
    case IncidentSymptom::kOsKernelPanic:
      return "OS Kernel Panic";
    case IncidentSymptom::kGpuMemoryError:
      return "GPU Memory Error";
    case IncidentSymptom::kExternalServiceError:
      return "External Service Error";
    case IncidentSymptom::kGpuUnavailable:
      return "GPU Unavailable";
    case IncidentSymptom::kDiskFault:
      return "Disk Fault";
    case IncidentSymptom::kJobHang:
      return "Job Hang";
    case IncidentSymptom::kMfuDecline:
      return "MFU Decline";
    case IncidentSymptom::kNanValue:
      return "NaN value";
    case IncidentSymptom::kCodeDataAdjustment:
      return "Code/Data Adjustment";
    case IncidentSymptom::kNumSymptoms:
      break;
  }
  return "Unknown";
}

const char* CategoryName(IncidentCategory category) {
  switch (category) {
    case IncidentCategory::kExplicit:
      return "Explicit";
    case IncidentCategory::kImplicit:
      return "Implicit";
    case IncidentCategory::kManualRestart:
      return "Manual Restart";
  }
  return "Unknown";
}

const char* RootCauseName(RootCause cause) {
  switch (cause) {
    case RootCause::kInfrastructure:
      return "Infrastructure";
    case RootCause::kUserCode:
      return "User Code";
    case RootCause::kTransient:
      return "Transient";
    case RootCause::kSdc:
      return "SDC";
  }
  return "Unknown";
}

IncidentCategory CategoryOf(IncidentSymptom symptom) {
  switch (symptom) {
    case IncidentSymptom::kJobHang:
    case IncidentSymptom::kMfuDecline:
    case IncidentSymptom::kNanValue:
      return IncidentCategory::kImplicit;
    case IncidentSymptom::kCodeDataAdjustment:
      return IncidentCategory::kManualRestart;
    default:
      return IncidentCategory::kExplicit;
  }
}

const std::vector<SymptomStats>& PaperSymptomStats() {
  // Table 1 of the paper, verbatim.
  static const std::vector<SymptomStats> kStats = {
      {IncidentSymptom::kCudaError, 19968, 0.361},
      {IncidentSymptom::kCpuOverload, 6095, 0.110},
      {IncidentSymptom::kCpuOom, 5567, 0.101},
      {IncidentSymptom::kInsufficientDiskSpace, 2755, 0.050},
      {IncidentSymptom::kInfinibandError, 1599, 0.029},
      {IncidentSymptom::kFilesystemMount, 1176, 0.021},
      {IncidentSymptom::kHdfsError, 1104, 0.020},
      {IncidentSymptom::kContainerError, 781, 0.014},
      {IncidentSymptom::kOsKernelPanic, 203, 0.004},
      {IncidentSymptom::kGpuMemoryError, 188, 0.003},
      {IncidentSymptom::kExternalServiceError, 128, 0.002},
      {IncidentSymptom::kGpuUnavailable, 76, 0.001},
      {IncidentSymptom::kDiskFault, 47, 0.001},
      {IncidentSymptom::kJobHang, 5506, 0.099},
      {IncidentSymptom::kMfuDecline, 442, 0.008},
      {IncidentSymptom::kNanValue, 148, 0.003},
      {IncidentSymptom::kCodeDataAdjustment, 9582, 0.173},
  };
  return kStats;
}

double UserCodeProbability(IncidentSymptom symptom) {
  switch (symptom) {
    case IncidentSymptom::kJobHang:
      return 5.0 / 26.0;  // Table 2: 21 infrastructure vs 5 user code
    case IncidentSymptom::kCudaError:
    case IncidentSymptom::kGpuMemoryError:
      return 41.0 / 62.0;  // Table 2 "Illegal memory access": 21 vs 41
    case IncidentSymptom::kNanValue:
      return 1.0 / 4.0;  // Table 2: 3 vs 1
    case IncidentSymptom::kCodeDataAdjustment:
      return 1.0;  // by definition a user-initiated change
    case IncidentSymptom::kCpuOom:
    case IncidentSymptom::kCpuOverload:
      return 0.5;  // data pipeline / user process pressure as often as infra
    default:
      return 0.0;  // hardware/platform symptoms
  }
}

std::string Incident::ToString() const {
  char buf[160];
  std::string machines;
  for (MachineId m : faulty_machines) {
    if (!machines.empty()) {
      machines += ',';
    }
    machines += std::to_string(m);
  }
  std::snprintf(buf, sizeof(buf), "incident#%llu %s (%s, cause=%s, machines=[%s])",
                static_cast<unsigned long long>(id), SymptomName(symptom),
                CategoryName(category()), RootCauseName(root_cause), machines.c_str());
  return buf;
}

}  // namespace byterobust

#include "src/faults/fault_injector.h"

#include <stdexcept>

namespace byterobust {

FaultInjector::FaultInjector(const FaultInjectorConfig& config, Rng rng)
    : config_(config), rng_(rng) {
  for (const SymptomStats& s : PaperSymptomStats()) {
    if (s.symptom == IncidentSymptom::kCodeDataAdjustment) {
      continue;  // manual restarts follow their own clock
    }
    failure_symptoms_.push_back(s.symptom);
    failure_weights_.push_back(static_cast<double>(s.paper_count));
  }
}

namespace {

// Casting a double above INT64_MAX to SimDuration is undefined behaviour (and
// in practice wraps negative, which Schedule() clamps to an *immediate* event
// -- the exact opposite of a huge delay). Saturate instead so extreme MTBF
// configs mean "effectively never".
SimDuration SaturatingDuration(double microseconds) {
  constexpr double kMax = 9.2e18;  // just below INT64_MAX
  if (microseconds >= kMax) {
    return static_cast<SimDuration>(kMax);
  }
  return static_cast<SimDuration>(microseconds);
}

}  // namespace

SimDuration FaultInjector::MtbfFor(int num_machines) const {
  if (num_machines <= 0) {
    throw std::invalid_argument("num_machines must be positive");
  }
  const double scale =
      static_cast<double>(config_.reference_machines) / static_cast<double>(num_machines);
  return SaturatingDuration(static_cast<double>(config_.reference_mtbf) * scale);
}

SimDuration FaultInjector::NextFailureDelay(int num_machines) {
  const double mean = static_cast<double>(MtbfFor(num_machines));
  return SaturatingDuration(rng_.Exponential(mean));
}

SimDuration FaultInjector::NextManualRestartDelay() {
  const double mean = static_cast<double>(config_.manual_restart_interval);
  return SaturatingDuration(rng_.Exponential(mean));
}

RootCause FaultInjector::SampleRootCause(IncidentSymptom symptom) {
  if (rng_.Bernoulli(UserCodeProbability(symptom) * config_.user_code_scale)) {
    return RootCause::kUserCode;
  }
  // Infrastructure-rooted; some symptom classes are frequently transient.
  switch (symptom) {
    case IncidentSymptom::kInfinibandError:
    case IncidentSymptom::kHdfsError:
    case IncidentSymptom::kExternalServiceError:
    case IncidentSymptom::kFilesystemMount:
      if (rng_.Bernoulli(config_.transient_fraction * 1.5)) {
        return RootCause::kTransient;
      }
      break;
    case IncidentSymptom::kCudaError:
    case IncidentSymptom::kContainerError:
    case IncidentSymptom::kCpuOverload:
      if (rng_.Bernoulli(config_.transient_fraction)) {
        return RootCause::kTransient;
      }
      break;
    case IncidentSymptom::kNanValue:
      if (rng_.Bernoulli(config_.nan_sdc_fraction)) {
        return RootCause::kSdc;
      }
      break;
    default:
      break;
  }
  return RootCause::kInfrastructure;
}

Incident FaultInjector::SampleFailure(SimTime now, const std::vector<MachineId>& serving) {
  if (serving.empty()) {
    throw std::invalid_argument("no serving machines to fail");
  }
  Incident inc;
  inc.id = next_incident_id_++;
  inc.inject_time = now;
  inc.symptom = failure_symptoms_[rng_.WeightedIndex(failure_weights_)];
  inc.root_cause = SampleRootCause(inc.symptom);

  // Failures are independent single-node events (Sec. 6.2); user-code bugs
  // manifest cluster-wide and carry no faulty machine.
  if (inc.root_cause != RootCause::kUserCode) {
    const auto pick = static_cast<std::size_t>(
        rng_.UniformInt(0, static_cast<std::int64_t>(serving.size()) - 1));
    inc.faulty_machines.push_back(serving[pick]);
    inc.gpu_index = static_cast<int>(rng_.UniformInt(0, 7)) % 8;
  }
  return inc;
}

Incident FaultInjector::SampleManualRestart(SimTime now) {
  Incident inc;
  inc.id = next_incident_id_++;
  inc.inject_time = now;
  inc.symptom = IncidentSymptom::kCodeDataAdjustment;
  inc.root_cause = RootCause::kUserCode;
  return inc;
}

void FaultInjector::ApplyToCluster(const Incident& incident, Cluster* cluster) {
  if (incident.faulty_machines.empty()) {
    return;
  }
  if (incident.root_cause == RootCause::kTransient) {
    // Transient faults (link flaps, connection resets) crash or stall the job
    // but leave no persistent machine-level signal for inspections to find;
    // stop-time checks come back clean and a plain reattempt recovers.
    return;
  }
  Machine& m = cluster->machine(incident.faulty_machines.front());
  const int gpu = incident.gpu_index >= 0 ? incident.gpu_index % m.num_gpus() : 0;
  ++m.incident_count;
  switch (incident.symptom) {
    case IncidentSymptom::kCudaError:
      m.gpu(gpu).dcgm_responsive = false;
      m.set_state(MachineState::kFaulty);
      break;
    case IncidentSymptom::kGpuUnavailable:
      m.gpu(gpu).available = false;
      m.set_state(MachineState::kFaulty);
      break;
    case IncidentSymptom::kGpuMemoryError:
      m.gpu(gpu).hbm_ok = false;
      m.set_state(MachineState::kFaulty);
      break;
    case IncidentSymptom::kInfinibandError:
      m.host().nic_up = false;
      m.host().packet_loss_rate = 0.4;
      m.set_state(MachineState::kFaulty);
      break;
    case IncidentSymptom::kOsKernelPanic:
      m.host().os_kernel_ok = false;
      m.set_state(MachineState::kFaulty);
      break;
    case IncidentSymptom::kDiskFault:
      m.host().disk_ok = false;
      m.set_state(MachineState::kFaulty);
      break;
    case IncidentSymptom::kInsufficientDiskSpace:
      m.host().free_disk_fraction = 0.01;
      m.set_state(MachineState::kFaulty);
      break;
    case IncidentSymptom::kCpuOverload:
      m.host().cpu_load = 0.99;
      m.set_state(MachineState::kDegraded);
      break;
    case IncidentSymptom::kCpuOom:
      m.host().free_host_mem_fraction = 0.005;
      m.set_state(MachineState::kFaulty);
      break;
    case IncidentSymptom::kJobHang:
      // Defective CUDA cores block P2P ops without any host-visible signal
      // (case study in Sec. 5.2). The machine looks healthy to inspections.
      m.gpu(gpu).comm_defect = true;
      m.set_state(MachineState::kDegraded);
      break;
    case IncidentSymptom::kMfuDecline:
      // Half the fail-slow incidents are thermal (overheating is visible to
      // the GPU inspection, which correlates it with MFU degradation); the
      // rest are silent downclocks that only the aggregation analyzer's
      // multi-round voting can localize (Sec. 5.1).
      if (incident.gpu_index % 2 == 0) {
        m.gpu(gpu).temperature_c = 92.0;
      }
      m.gpu(gpu).clock_ratio = 0.55;
      m.set_state(MachineState::kDegraded);
      break;
    case IncidentSymptom::kNanValue:
      if (incident.root_cause == RootCause::kSdc) {
        m.gpu(gpu).sdc = true;
      }
      m.set_state(MachineState::kDegraded);
      break;
    case IncidentSymptom::kFilesystemMount:
    case IncidentSymptom::kHdfsError:
    case IncidentSymptom::kContainerError:
    case IncidentSymptom::kExternalServiceError:
      m.set_state(MachineState::kFaulty);
      break;
    case IncidentSymptom::kCodeDataAdjustment:
    case IncidentSymptom::kNumSymptoms:
      break;
  }
}

void FaultInjector::ClearFromCluster(const Incident& incident, Cluster* cluster) {
  for (MachineId id : incident.faulty_machines) {
    Machine& m = cluster->machine(id);
    if (m.state() == MachineState::kFaulty || m.state() == MachineState::kDegraded) {
      m.ResetHealth();
      m.set_state(MachineState::kActive);
    }
  }
}

}  // namespace byterobust

#include "src/faults/domain_injector.h"

#include <stdexcept>

namespace byterobust {

const char* DomainFaultKindName(DomainFaultKind kind) {
  switch (kind) {
    case DomainFaultKind::kSpineFlap:
      return "spine-flap";
    case DomainFaultKind::kPowerLoss:
      return "power-loss";
    case DomainFaultKind::kLinkFailSlow:
      return "link-failslow";
    case DomainFaultKind::kSwitchStorm:
      return "switch-storm";
  }
  return "unknown";
}

DomainLevel DomainFaultLevel(DomainFaultKind kind) {
  switch (kind) {
    case DomainFaultKind::kSpineFlap:
      return DomainLevel::kSpine;
    case DomainFaultKind::kPowerLoss:
      return DomainLevel::kPod;
    case DomainFaultKind::kLinkFailSlow:
    case DomainFaultKind::kSwitchStorm:
      return DomainLevel::kTor;
  }
  return DomainLevel::kTor;
}

IncidentSymptom DomainFaultSymptom(DomainFaultKind kind) {
  switch (kind) {
    case DomainFaultKind::kSpineFlap:
    case DomainFaultKind::kSwitchStorm:
      return IncidentSymptom::kInfinibandError;
    case DomainFaultKind::kPowerLoss:
      return IncidentSymptom::kOsKernelPanic;
    case DomainFaultKind::kLinkFailSlow:
      return IncidentSymptom::kMfuDecline;
  }
  return IncidentSymptom::kInfinibandError;
}

DomainFaultEffect DomainInjector::ApplyToDomain(DomainFaultKind kind, DomainId id,
                                                double degradation_factor,
                                                Cluster* cluster, SimTime now) {
  FaultDomains* domains = cluster->fault_domains();
  if (domains == nullptr) {
    throw std::logic_error("cluster has no fault-domain graph attached");
  }
  DomainFaultEffect effect;
  effect.domain = id;

  if (kind == DomainFaultKind::kLinkFailSlow) {
    // Pure link degradation: congestion backpressure through the perf model,
    // no machine-visible signal (the hallmark gray failure of Sec. 5).
    domains->SetState(id, DomainState::kDegraded, degradation_factor, now);
    return effect;
  }

  domains->SetState(id, kind == DomainFaultKind::kPowerLoss ? DomainState::kDown
                                                            : DomainState::kDegraded,
                    1.0, now);
  const MachineId end = domains->machine_end(id);
  for (MachineId m = domains->machine_begin(id); m < end; ++m) {
    if (cluster->IsBlacklisted(m)) {
      continue;
    }
    Machine& machine = cluster->machine(m);
    switch (kind) {
      case DomainFaultKind::kSpineFlap:
      case DomainFaultKind::kSwitchStorm:
        machine.host().switch_reachable = false;
        machine.host().packet_loss_rate = 0.3;
        if (machine.state() == MachineState::kActive) {
          machine.set_state(MachineState::kDegraded);  // gray fault, still serving
        }
        break;
      case DomainFaultKind::kPowerLoss:
        machine.host().os_kernel_ok = false;
        if (machine.InService()) {
          machine.set_state(MachineState::kFaulty);
        }
        break;
      case DomainFaultKind::kLinkFailSlow:
        break;  // handled above
    }
    effect.affected.push_back(m);
  }
  return effect;
}

void DomainInjector::HealDomain(DomainFaultKind kind, DomainId id, Cluster* cluster,
                                SimTime now) {
  FaultDomains* domains = cluster->fault_domains();
  if (domains == nullptr) {
    throw std::logic_error("cluster has no fault-domain graph attached");
  }
  domains->Heal(id, now);
  if (kind == DomainFaultKind::kLinkFailSlow) {
    return;  // no machine state was touched
  }
  // Mirror FaultInjector::ClearFromCluster's semantics per machine: nominal
  // health again, and still-serving degraded/faulty machines return to
  // active. Evicted (blacklisted) machines stay out.
  const MachineId end = domains->machine_end(id);
  for (MachineId m = domains->machine_begin(id); m < end; ++m) {
    if (cluster->IsBlacklisted(m)) {
      continue;
    }
    Machine& machine = cluster->machine(m);
    machine.ResetHealth();
    if (machine.state() == MachineState::kFaulty ||
        machine.state() == MachineState::kDegraded) {
      machine.set_state(MachineState::kActive);
    }
  }
}

std::vector<MachineId> DomainInjector::ServingUnder(const Cluster& view, DomainId id) {
  const FaultDomains* domains = view.fault_domains();
  if (domains == nullptr) {
    return {};
  }
  std::vector<MachineId> serving;
  const MachineId end = domains->machine_end(id);
  for (MachineId m = domains->machine_begin(id); m < end; ++m) {
    if (view.SlotOfMachine(m) >= 0) {
      serving.push_back(m);
    }
  }
  return serving;
}

}  // namespace byterobust

// Stochastic fault injector.
//
// Generates incidents whose symptom mix follows the paper's production
// distribution (Table 1), whose root causes follow Table 2, and whose
// inter-arrival times follow an exponential clock scaled to cluster size
// (failures in large-scale training are independent single-node events,
// Sec. 6.2; Meta reports one hardware failure every 2.78 h at 16k GPUs).

#ifndef SRC_FAULTS_FAULT_INJECTOR_H_
#define SRC_FAULTS_FAULT_INJECTOR_H_

#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/faults/incident.h"

namespace byterobust {

struct FaultInjectorConfig {
  // Mean time between *infrastructure/implicit* incidents for a reference
  // cluster of `reference_machines`. 2.78 h at 2048 machines mirrors the
  // Llama-3 observation cited in the paper.
  SimDuration reference_mtbf = Hours(2.78);
  int reference_machines = 2048;

  // Mean time between manual code/data adjustments (independent of scale;
  // driven by the engineering team, not the hardware).
  SimDuration manual_restart_interval = Hours(10.0);
  bool include_manual_restarts = true;

  // Probability that an infrastructure-caused network/storage symptom is
  // transient (self-healing; resolved by plain reattempt, Sec. 4.2). The
  // Sec. 4.2 lesson attributes 22.7% of failures to reattempt-recoverable
  // transients.
  double transient_fraction = 0.45;

  // Scale on Table 2's per-symptom user-code probabilities. Table 2 samples
  // only three symptom classes on >2000-GPU jobs; campaign-wide, rollbacks
  // resolve just 6.9-11.2% of incidents (Table 4), implying a much smaller
  // user-code share across the full Table 1 mix.
  double user_code_scale = 0.22;

  // Probability that a NaN incident with an infrastructure root is an SDC
  // (vs. a reproducible hardware fault). Table 2 shows 3 of 4 NaN incidents
  // were infrastructure; Sec. 9 describes SDC as their dominant mechanism.
  double nan_sdc_fraction = 1.0;
};

class FaultInjector {
 public:
  FaultInjector(const FaultInjectorConfig& config, Rng rng);

  // Scaled MTBF for a cluster of `num_machines` (failure rate is proportional
  // to machine count).
  SimDuration MtbfFor(int num_machines) const;

  // Draws the delay until the next infrastructure/implicit incident.
  SimDuration NextFailureDelay(int num_machines);

  // Draws the delay until the next manual restart request.
  SimDuration NextManualRestartDelay();

  // Samples a failure incident (explicit or implicit, never manual) striking
  // one of `serving` machines.
  Incident SampleFailure(SimTime now, const std::vector<MachineId>& serving);

  // Builds a manual-restart incident.
  Incident SampleManualRestart(SimTime now);

  // Mutates cluster health state so that monitors/diagnosers can observe the
  // incident. User-code and manual incidents leave machines untouched.
  static void ApplyToCluster(const Incident& incident, Cluster* cluster);

  // Clears the health flags that `incident` set (post-repair or when a
  // transient fault self-heals).
  static void ClearFromCluster(const Incident& incident, Cluster* cluster);

  std::uint64_t incidents_generated() const { return next_incident_id_ - 1; }

 private:
  RootCause SampleRootCause(IncidentSymptom symptom);

  FaultInjectorConfig config_;
  Rng rng_;
  std::vector<double> failure_weights_;  // Table 1 mix minus manual restarts
  std::vector<IncidentSymptom> failure_symptoms_;
  std::uint64_t next_incident_id_ = 1;
};

}  // namespace byterobust

#endif  // SRC_FAULTS_FAULT_INJECTOR_H_

// Incident taxonomy from the paper's three-month production study
// (Table 1: symptom distribution; Table 2: root-cause mix).

#ifndef SRC_FAULTS_INCIDENT_H_
#define SRC_FAULTS_INCIDENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/sim_time.h"
#include "src/topology/parallelism.h"

namespace byterobust {

// Incident symptoms, in Table 1 order.
enum class IncidentSymptom : int {
  // Explicit failures: clear diagnostic indicators in logs / exit codes.
  kCudaError = 0,
  kCpuOverload,
  kCpuOom,
  kInsufficientDiskSpace,
  kInfinibandError,
  kFilesystemMount,
  kHdfsError,
  kContainerError,
  kOsKernelPanic,
  kGpuMemoryError,
  kExternalServiceError,
  kGpuUnavailable,
  kDiskFault,
  // Implicit failures: elusive root causes, no fail-stop signal.
  kJobHang,
  kMfuDecline,
  kNanValue,
  // Proactive interruption for algorithm / engineering changes.
  kCodeDataAdjustment,
  kNumSymptoms,
};

inline constexpr int kNumIncidentSymptoms = static_cast<int>(IncidentSymptom::kNumSymptoms);

enum class IncidentCategory {
  kExplicit,
  kImplicit,
  kManualRestart,
};

// Root cause classes (Table 2 + Sec. 4 narrative).
enum class RootCause {
  kInfrastructure,  // hardware or platform software fault on specific machines
  kUserCode,        // bug or misconfiguration in the evolving training code
  kTransient,       // self-healing fault (link flap, connection reset, ...)
  kSdc,             // silent data corruption: stochastic, hard to reproduce
};

const char* SymptomName(IncidentSymptom symptom);
const char* CategoryName(IncidentCategory category);
const char* RootCauseName(RootCause cause);
IncidentCategory CategoryOf(IncidentSymptom symptom);

// Empirical Table 1 statistics: production incident count per symptom over
// three months (778,135 jobs). Drives the injector's symptom mix.
struct SymptomStats {
  IncidentSymptom symptom;
  int paper_count;        // Table 1 "Count"
  double paper_fraction;  // Table 1 "Percentage" / 100
};

// The full Table 1 row set, in paper order.
const std::vector<SymptomStats>& PaperSymptomStats();

// Table 2: root-cause mix for the three analyzed symptoms. Returns the
// probability that an incident with `symptom` is caused by user code rather
// than infrastructure (symptoms outside Table 2 get a taxonomy default).
double UserCodeProbability(IncidentSymptom symptom);

// One concrete incident in a simulated campaign.
struct Incident {
  std::uint64_t id = 0;
  IncidentSymptom symptom = IncidentSymptom::kCudaError;
  RootCause root_cause = RootCause::kInfrastructure;
  // Machines at fault (empty for pure user-code / manual incidents).
  std::vector<MachineId> faulty_machines;
  // The GPU index on the first faulty machine, when GPU-specific (-1 = host).
  int gpu_index = -1;
  SimTime inject_time = 0;

  IncidentCategory category() const { return CategoryOf(symptom); }
  std::string ToString() const;
};

}  // namespace byterobust

#endif  // SRC_FAULTS_INCIDENT_H_

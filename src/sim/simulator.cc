#include "src/sim/simulator.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "src/common/log.h"

namespace byterobust {

namespace {

// splitmix64: cheap, well-mixed hash for timestamps (which are often highly
// regular — step boundaries, scrape cadences).
std::uint64_t HashTime(SimTime t) {
  std::uint64_t x = static_cast<std::uint64_t>(t) + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

Simulator::Simulator() { SetLogClock(&now_); }

Simulator::~Simulator() { ClearLogClock(&now_); }

EventId Simulator::Schedule(SimDuration delay, std::function<void()> fn) {
  if (delay < 0) {
    delay = 0;
  }
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventId Simulator::ScheduleAt(SimTime when, std::function<void()> fn) {
  if (when < now_) {
    throw std::invalid_argument("ScheduleAt in the past");
  }
  const std::uint32_t bucket_index = MapFindOrInsert(when);
  const std::uint32_t slot = AllocateNode();
  EventNode& node = NodeAt(slot);
  node.fn = std::move(fn);
  node.active = true;
  node.cancelled = false;
  node.next = kNullIndex;
  Bucket& bucket = buckets_[bucket_index];
  if (bucket.tail == kNullIndex) {
    bucket.head = slot;
  } else {
    NodeAt(bucket.tail).next = slot;
  }
  bucket.tail = slot;
  ++queued_;
  ++live_;
  return MakeId(slot, node.gen);
}

bool Simulator::Cancel(EventId id) {
  if (id == kInvalidEventId) {
    return false;
  }
  const std::uint32_t slot = SlotOf(id);
  if (slot >= node_count_) {
    return false;
  }
  EventNode& node = NodeAt(slot);
  if (!node.active || node.cancelled || node.gen != GenOf(id)) {
    return false;
  }
  node.cancelled = true;
  node.fn = nullptr;  // release the closure eagerly
  --live_;
  return true;
}

std::uint32_t Simulator::AllocateNode() {
  if (free_node_ != kNullIndex) {
    const std::uint32_t slot = free_node_;
    free_node_ = NodeAt(slot).next;
    return slot;
  }
  if (node_count_ >= static_cast<std::size_t>(kNullIndex) - 1) {
    throw std::length_error("Simulator event slab exhausted");
  }
  if (node_count_ == chunks_.size() * kChunkSize) {
    chunks_.push_back(std::make_unique<EventNode[]>(kChunkSize));
  }
  return static_cast<std::uint32_t>(node_count_++);
}

void Simulator::FreeNode(std::uint32_t slot) {
  EventNode& node = NodeAt(slot);
  node.active = false;
  node.cancelled = false;
  ++node.gen;  // invalidate outstanding EventIds for this slot
  node.next = free_node_;
  free_node_ = slot;
}

std::uint32_t Simulator::AllocateBucket(SimTime time) {
  std::uint32_t index;
  if (free_bucket_ != kNullIndex) {
    index = free_bucket_;
    free_bucket_ = buckets_[index].next_free;
  } else {
    buckets_.emplace_back();
    index = static_cast<std::uint32_t>(buckets_.size() - 1);
  }
  Bucket& bucket = buckets_[index];
  bucket.time = time;
  bucket.head = kNullIndex;
  bucket.tail = kNullIndex;
  return index;
}

void Simulator::FreeBucket(std::uint32_t index) {
  buckets_[index].next_free = free_bucket_;
  free_bucket_ = index;
}

void Simulator::HeapPush(HeapEntry entry) {
  heap_.push_back(entry);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (heap_[parent].time <= entry.time) {
      break;
    }
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

void Simulator::HeapPopRoot() {
  const HeapEntry moved = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) {
    return;
  }
  std::size_t i = 0;
  while (true) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) {
      break;
    }
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (heap_[c].time < heap_[best].time) {
        best = c;
      }
    }
    if (heap_[best].time >= moved.time) {
      break;
    }
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = moved;
}

void Simulator::MapGrow() {
  const std::size_t new_size = map_.empty() ? 64 : map_.size() * 2;
  std::vector<MapSlot> old = std::move(map_);
  map_.assign(new_size, MapSlot{});
  map_used_ = 0;
  const std::size_t mask = new_size - 1;
  for (const MapSlot& slot : old) {
    if (slot.bucket == kNullIndex) {
      continue;
    }
    std::size_t i = HashTime(slot.time) & mask;
    while (map_[i].bucket != kNullIndex) {
      i = (i + 1) & mask;
    }
    map_[i] = slot;
    ++map_used_;
  }
}

std::uint32_t Simulator::MapFindOrInsert(SimTime time) {
  if ((map_used_ + 1) * 2 > map_.size()) {
    MapGrow();  // keep load factor <= 1/2 so probes stay short
  }
  const std::size_t mask = map_.size() - 1;
  std::size_t i = HashTime(time) & mask;
  while (map_[i].bucket != kNullIndex) {
    if (map_[i].time == time) {
      return map_[i].bucket;
    }
    i = (i + 1) & mask;
  }
  const std::uint32_t bucket = AllocateBucket(time);
  map_[i] = MapSlot{time, bucket};
  ++map_used_;
  HeapPush(HeapEntry{time, bucket});
  return bucket;
}

void Simulator::MapErase(SimTime time) {
  const std::size_t mask = map_.size() - 1;
  std::size_t i = HashTime(time) & mask;
  while (map_[i].bucket == kNullIndex || map_[i].time != time) {
    i = (i + 1) & mask;
  }
  // Backward-shift deletion keeps probe chains intact without tombstones.
  std::size_t j = i;
  while (true) {
    j = (j + 1) & mask;
    if (map_[j].bucket == kNullIndex) {
      break;
    }
    const std::size_t home = HashTime(map_[j].time) & mask;
    if (((j - home) & mask) >= ((j - i) & mask)) {
      map_[i] = map_[j];
      i = j;
    }
  }
  map_[i] = MapSlot{};
  --map_used_;
}

std::uint32_t Simulator::LiveHeadBucket() {
  while (!heap_.empty()) {
    const std::uint32_t bucket_index = heap_.front().bucket;
    Bucket& bucket = buckets_[bucket_index];
    while (bucket.head != kNullIndex && NodeAt(bucket.head).cancelled) {
      const std::uint32_t slot = bucket.head;
      bucket.head = NodeAt(slot).next;
      FreeNode(slot);
      --queued_;
    }
    if (bucket.head != kNullIndex) {
      return bucket_index;
    }
    bucket.tail = kNullIndex;
    MapErase(bucket.time);
    FreeBucket(bucket_index);
    HeapPopRoot();
  }
  return kNullIndex;
}

bool Simulator::DispatchNext() {
  const std::uint32_t bucket_index = LiveHeadBucket();
  if (bucket_index == kNullIndex) {
    return false;
  }
  Bucket& bucket = buckets_[bucket_index];
  now_ = bucket.time;
  const std::uint32_t slot = bucket.head;
  bucket.head = NodeAt(slot).next;
  if (bucket.head == kNullIndex) {
    bucket.tail = kNullIndex;
  }
  std::function<void()> fn = std::move(NodeAt(slot).fn);
  FreeNode(slot);
  --queued_;
  --live_;
  ++dispatched_;
  // No slab/bucket references may be held across the callback: it is free to
  // schedule (and thus reallocate) arbitrarily.
  fn();
  return true;
}

SimTime Simulator::NextEventTime() {
  const std::uint32_t bucket_index = LiveHeadBucket();
  return bucket_index == kNullIndex ? kNoPendingEvent : buckets_[bucket_index].time;
}

void Simulator::AdvanceTo(SimTime when) {
  if (when < now_) {
    throw std::invalid_argument("AdvanceTo in the past");
  }
  if (NextEventTime() < when) {
    throw std::invalid_argument("AdvanceTo would skip a pending event");
  }
  now_ = when;
}

void Simulator::Run() {
  stopped_ = false;
  const SimTime saved_horizon = horizon_;
  horizon_ = kNoPendingEvent;
  while (!stopped_ && DispatchNext()) {
  }
  horizon_ = saved_horizon;
}

void Simulator::RunUntil(SimTime deadline) {
  stopped_ = false;
  const SimTime saved_horizon = horizon_;
  horizon_ = deadline;
  while (!stopped_) {
    const std::uint32_t bucket_index = LiveHeadBucket();
    if (bucket_index == kNullIndex || buckets_[bucket_index].time > deadline) {
      break;
    }
    DispatchNext();
  }
  horizon_ = saved_horizon;
  if (now_ < deadline) {
    now_ = deadline;
  }
}

bool Simulator::Step() { return DispatchNext(); }

}  // namespace byterobust

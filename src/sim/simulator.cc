#include "src/sim/simulator.h"

#include <stdexcept>
#include <utility>

#include "src/common/log.h"

namespace byterobust {

Simulator::Simulator() { SetLogClock(&now_); }

Simulator::~Simulator() { SetLogClock(nullptr); }

EventId Simulator::Schedule(SimDuration delay, std::function<void()> fn) {
  if (delay < 0) {
    delay = 0;
  }
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventId Simulator::ScheduleAt(SimTime when, std::function<void()> fn) {
  if (when < now_) {
    throw std::invalid_argument("ScheduleAt in the past");
  }
  const EventId id = next_id_++;
  queue_.push(Event{when, id, std::move(fn)});
  return id;
}

bool Simulator::Cancel(EventId id) {
  if (id == kInvalidEventId || id >= next_id_) {
    return false;
  }
  // Lazy cancellation: the event stays in the heap and is skipped when popped.
  return cancelled_.insert(id).second;
}

bool Simulator::DispatchNext() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (cancelled_.erase(ev.id) > 0) {
      continue;  // skip cancelled event
    }
    now_ = ev.time;
    ++dispatched_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::Run() {
  stopped_ = false;
  while (!stopped_ && DispatchNext()) {
  }
}

void Simulator::RunUntil(SimTime deadline) {
  stopped_ = false;
  while (!stopped_) {
    // Peek past cancelled events to find the next live one.
    while (!queue_.empty() && cancelled_.count(queue_.top().id) > 0) {
      cancelled_.erase(queue_.top().id);
      queue_.pop();
    }
    if (queue_.empty() || queue_.top().time > deadline) {
      break;
    }
    DispatchNext();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

bool Simulator::Step() { return DispatchNext(); }

std::size_t Simulator::pending_events() const { return queue_.size(); }

}  // namespace byterobust

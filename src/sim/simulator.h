// Deterministic discrete-event simulator.
//
// The simulator is the substrate that replaces wall-clock time and the
// physical cluster in this reproduction. Events are ordered by (time,
// sequence number) so that two events at the same timestamp always fire in
// scheduling order, making every run bit-reproducible for a fixed seed.

#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/common/sim_time.h"

namespace byterobust {

// Handle for a scheduled event; can be used to cancel it before it fires.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEventId = 0;

class Simulator {
 public:
  Simulator();
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current simulated time.
  SimTime Now() const { return now_; }

  // Schedules `fn` to run `delay` after Now(). Negative delays clamp to zero
  // (the event fires "immediately", after already-queued events at Now()).
  EventId Schedule(SimDuration delay, std::function<void()> fn);

  // Schedules `fn` at an absolute time, which must be >= Now().
  EventId ScheduleAt(SimTime when, std::function<void()> fn);

  // Cancels a pending event. Returns true if the event existed and had not
  // fired yet. Cancelling an already-fired or invalid id is a no-op.
  bool Cancel(EventId id);

  // Runs until the event queue is empty or Stop() is called.
  void Run();

  // Runs events with time <= deadline, then advances the clock to exactly
  // `deadline` (even if no event fired there).
  void RunUntil(SimTime deadline);

  // Runs exactly one event if available; returns false when the queue is
  // empty. Useful for fine-grained tests.
  bool Step();

  // Requests that Run()/RunUntil() return after the current event completes.
  void Stop() { stopped_ = true; }

  // Number of events dispatched so far.
  std::uint64_t events_dispatched() const { return dispatched_; }

  // Number of events still pending (including cancelled-but-unpopped ones).
  std::size_t pending_events() const;

 private:
  struct Event {
    SimTime time;
    EventId id;
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;  // min-heap on time
      }
      return a.id > b.id;  // FIFO among equal timestamps
    }
  };

  bool DispatchNext();

  SimTime now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t dispatched_ = 0;
  bool stopped_ = false;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace byterobust

#endif  // SRC_SIM_SIMULATOR_H_
